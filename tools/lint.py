#!/usr/bin/env python3
"""Project-specific lints for the pilot-abstraction repository.

Five disciplines, each enforced mechanically because each has burned us
(or real middleware like it) before:

 1. Synchronization goes through pa::check. Raw std::mutex /
    std::lock_guard / std::unique_lock / std::scoped_lock /
    std::condition_variable outside include/pa/check + src/check bypass
    both the clang thread-safety annotations and the runtime lock-rank
    validator, so a single raw site silently re-opens the whole class of
    ordering deadlocks the wrappers exist to catch.

 2. Determinism. Simulation results must replay bit-identically, so wall
    clocks and nondeterministic seeds are confined to two approved files
    (time_utils.h for pa::wall_seconds, rng.h for the seeded SplitMix64).
    std::random_device, rand()/srand(), and system_clock/high_resolution
    _clock reads anywhere else break replay.

 3. Socket hygiene. Raw socket/poll syscalls live in exactly one file,
    src/net/tcp_transport.cpp (plus the headers that declare nothing but
    types). Everything else goes through pa::net::Transport, so there is
    one place to audit fd lifetimes, EINTR handling, and SIGPIPE
    suppression — and the sandbox/port-availability probe stays in one
    translation unit.

 4. Validated state transitions. Pilot/unit lifecycle state changes must
    flow through StateMachine::transition so the transition table (and the
    journal observers hanging off it) see every change. Direct writes to
    `state_` outside state_machine.h, or wholesale machine replacement
    without an explicit `lint:allow-state-reset` justification, bypass
    validation and silently desynchronize the write-ahead journal.

 5. Callbacks post commands. Runtime callbacks (pilot lifecycle, unit
    completion, stage-in) fire on substrate threads — a thread pool
    worker, the network receive loop, the simulation driver. Service
    state is owned by the control-plane apply thread, so a callback body
    that touches it races by construction. The only legal callback shape
    in src/core is a wait-free `ctrl_->post(<command>)`; middleware
    logic happens when the apply thread handles the command.

 5b. Cross-shard traffic rides forward envelopes. The sharded control
    plane's invariant is that a shard's state is only ever touched by
    its own apply thread; the facade routes, the shard engine forwards.
    Code outside the sharding layer that names a ServiceShard or calls
    post_forward() directly has reached around that routing and can
    deliver a command to a shard that does not own the entity.

 6. Store transport confinement. The data plane (pa::store) speaks
    net::Message and paces itself with the BatchFlusher, but never sees a
    Connection, a Transport, or a concrete transport header — egress goes
    through the ObjSender installed by rt::RemoteRuntime, ingress through
    replies returned to rt::AgentEndpoint. One owner for every socket
    (rule 3) only holds if the layers above it can't reach around.

Plus one meta-rule: every suppression (NOLINT or
PA_NO_THREAD_SAFETY_ANALYSIS) must carry a justification, so suppressions
stay auditable.

Exit status 0 = clean, 1 = findings (one per line: path:line: message).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Directories scanned (library + tests + examples; build trees excluded).
SCAN_DIRS = ["include", "src", "tests", "examples", "tools"]
CXX_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}

# --- rule 1: raw synchronization primitives ---------------------------------
SYNC_ALLOWED = {
    "include/pa/check/mutex.h",
    "include/pa/check/thread_safety.h",
    "src/check/mutex.cpp",
}
RAW_SYNC = re.compile(
    r"\bstd::(mutex|recursive_mutex|timed_mutex|shared_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable(_any)?)\b"
)

# --- rule 2: nondeterminism sources ------------------------------------------
TIME_ALLOWED = {
    "include/pa/common/time_utils.h",
    "include/pa/common/rng.h",
}
NONDETERMINISM = re.compile(
    r"\bstd::random_device\b|\brand\s*\(\s*\)|\bsrand\s*\(|"
    r"\bsystem_clock\b|\bhigh_resolution_clock\b"
)

# --- rule 3: socket syscalls confined to the TCP transport -------------------
SOCKET_ALLOWED = {
    "src/net/tcp_transport.cpp",
}
# Global-namespace-qualified syscall spelling (`::send(fd, ...)`), the
# idiom the transport uses; `Class::send(` definitions don't match.
SOCKET_SYSCALLS = re.compile(
    r"(?<![\w>])::(socket|bind|listen|accept4?|connect|recv|recvfrom|"
    r"send|sendto|sendmsg|recvmsg|sendmmsg|recvmmsg|writev|readv|sendfile|"
    r"poll|ppoll|epoll_create1?|"
    r"epoll_ctl|epoll_wait|setsockopt|getsockopt|getsockname|getpeername|"
    r"inet_pton|inet_ntop)\s*\("
)
SOCKET_HEADERS = re.compile(
    r'#\s*include\s*<(sys/socket\.h|netinet/[^>]+|arpa/inet\.h|poll\.h|'
    r'sys/epoll\.h|sys/uio\.h|sys/sendfile\.h)>'
)

# --- rule 6: store stays behind the message boundary -------------------------
STORE_SCOPE = ("include/pa/store/", "src/store/")
STORE_NET_ALLOWED = {"pa/net/message.h", "pa/net/flusher.h"}
STORE_NET_INCLUDE = re.compile(r'#\s*include\s*"(pa/net/[^"]+)"')
STORE_FORBIDDEN_NET = re.compile(
    r"\bnet::(Transport|Connection|ConnectionPtr|TcpTransport|"
    r"InProcTransport|FrameDecoder)\b"
)

# --- rule 4: state-machine bypasses ------------------------------------------
SM_FILE = "include/pa/core/state_machine.h"
STATE_WRITE = re.compile(r"\bstate_\s*=[^=]")
SM_REPLACE = re.compile(r"=\s*(UnitStateMachine|PilotStateMachine)\s*\(")
SM_RESET_MARKER = "lint:allow-state-reset"

# --- rule 5: runtime callbacks post commands, never touch state --------------
CALLBACK_SCOPE = "src/core/"
CALLBACK_TRIGGERS = re.compile(
    r"callbacks\.on_\w+\s*=|runtime_\.execute_unit\s*\(|"
    r"data_->stage_to_site\s*\("
)
CALLBACK_FORBIDDEN = re.compile(
    r"\b(workload_|units_|pilots_|journal_|tracer_|obs_metrics_|model_|"
    r"delta_|dirty_pilots_|dirty_units_|unit_observers_|snapshot_mutex_|"
    r"run_schedule_cycle|publish_snapshot|finalize_unit_apply|"
    r"dispatch_unit_apply|execute_unit_apply)\b"
)
CALLBACK_MUST_POST = "->post("

# --- rule 5b: cross-shard access stays inside the sharding layer -------------
SHARD_ALLOWED = {
    "include/pa/core/control_plane.h",
    "include/pa/core/pilot_compute_service.h",
    "include/pa/core/service_shard.h",
    "src/core/pilot_compute_service.cpp",
    "src/core/service_shard.cpp",
}
SHARD_FORBIDDEN = re.compile(r"\bServiceShard\b|\bpost_forward\s*\(")


def lambda_body(text: str, start: int) -> tuple[int, int] | None:
    """(open, close) indices of the first brace-balanced block after
    `start` that is preceded by a nearby lambda introducer `[`. None when
    the trigger takes no lambda (nullptr, named function)."""
    intro = text.find("[", start)
    if intro == -1 or intro - start > 200:
        return None
    open_idx = text.find("{", intro)
    if open_idx == -1:
        return None
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return (open_idx, i)
    return None


def lint_callback_regions(rel: str, text: str) -> list[tuple[int, str]]:
    if not rel.startswith(CALLBACK_SCOPE) or not rel.endswith(".cpp"):
        return []
    findings: list[tuple[int, str]] = []
    for m in CALLBACK_TRIGGERS.finditer(text):
        region = lambda_body(text, m.end())
        if region is None:
            continue
        body = text[region[0]:region[1] + 1]
        lineno = text.count("\n", 0, m.start()) + 1
        fm = CALLBACK_FORBIDDEN.search(body)
        if fm:
            findings.append((
                lineno,
                f"runtime callback touches service state `{fm.group(1)}` — "
                f"callbacks run on substrate threads; post a command "
                f"(ctrl_->post) and let the apply thread do the work",
            ))
        if CALLBACK_MUST_POST not in body:
            findings.append((
                lineno,
                "runtime callback never posts a command — the only legal "
                "callback body is a wait-free ctrl_->post(<command>)",
            ))
    return findings


# --- meta-rule: suppressions need justification ------------------------------
NOLINT = re.compile(r"NOLINT(NEXTLINE)?\b")
NOLINT_JUSTIFIED = re.compile(r"NOLINT(NEXTLINE)?(\([^)]*\))?\s*[:]\s*\S")
NO_TSA = re.compile(r"\bPA_NO_THREAD_SAFETY_ANALYSIS\b")


def is_comment_only(line: str) -> bool:
    stripped = line.lstrip()
    return stripped.startswith("//") or stripped.startswith("*") or \
        stripped.startswith("/*")


def nearby_comment_mentions(lines: list[str], idx: int, needle: str,
                            radius: int = 6) -> bool:
    """True when `needle` appears in a *comment* within the window. Only
    comment text counts: the flagged line itself is inside the window, so
    matching its code portion would make the rule unable to ever fire
    (the suppression macro contains the needle it must be justified by)."""
    lo = max(0, idx - radius)
    hi = min(len(lines), idx + 2)
    for i in range(lo, hi):
        parts = lines[i].split("//", 1)
        if len(parts) == 2 and needle in parts[1]:
            return True
        stripped = lines[i].lstrip()
        if stripped.startswith(("*", "/*")) and needle in stripped:
            return True
    return False


def lint_file(rel: str, text: str) -> list[tuple[int, str]]:
    findings: list[tuple[int, str]] = lint_callback_regions(rel, text)
    lines = text.splitlines()
    for i, line in enumerate(lines):
        lineno = i + 1
        code = line.split("//", 1)[0]

        if rel not in SYNC_ALLOWED and rel != "tools/lint.py":
            m = RAW_SYNC.search(code)
            if m:
                findings.append((
                    lineno,
                    f"raw std::{m.group(1)} — use pa::check::Mutex/"
                    f"MutexLock/CondVar (see include/pa/check/mutex.h)",
                ))

        if rel not in TIME_ALLOWED and rel != "tools/lint.py":
            m = NONDETERMINISM.search(code)
            if m:
                findings.append((
                    lineno,
                    f"nondeterminism source `{m.group(0).strip()}` — use "
                    f"pa::wall_seconds (time_utils.h) or pa::Rng (rng.h)",
                ))

        if rel not in SOCKET_ALLOWED and rel != "tools/lint.py":
            m = SOCKET_SYSCALLS.search(code)
            if m:
                findings.append((
                    lineno,
                    f"raw socket syscall `::{m.group(1)}` — socket I/O is "
                    f"confined to src/net/tcp_transport.cpp; go through "
                    f"pa::net::Transport",
                ))
            m = SOCKET_HEADERS.search(code)
            if m:
                findings.append((
                    lineno,
                    f"socket header <{m.group(1)}> — socket I/O is confined "
                    f"to src/net/tcp_transport.cpp",
                ))

        if rel not in SHARD_ALLOWED and rel != "tools/lint.py":
            m = SHARD_FORBIDDEN.search(code)
            if m:
                findings.append((
                    lineno,
                    f"cross-shard access `{m.group(0).strip()}` outside the "
                    f"sharding layer — shard state belongs to its own apply "
                    f"thread; go through the PilotComputeService facade and "
                    f"let the shard engine build forward envelopes",
                ))

        if rel.startswith(STORE_SCOPE):
            m = STORE_NET_INCLUDE.search(code)
            if m and m.group(1) not in STORE_NET_ALLOWED:
                findings.append((
                    lineno,
                    f'transport-facing include "{m.group(1)}" in pa::store — '
                    f"the store speaks net::Message only; connections belong "
                    f"to rt::RemoteRuntime / rt::AgentEndpoint",
                ))
            m = STORE_FORBIDDEN_NET.search(code)
            if m:
                findings.append((
                    lineno,
                    f"net::{m.group(1)} referenced in pa::store — egress "
                    f"goes through the attached ObjSender, ingress through "
                    f"returned replies; the store never touches a "
                    f"connection or transport",
                ))

        if rel != SM_FILE and rel != "tools/lint.py":
            if STATE_WRITE.search(code) and not is_comment_only(line):
                findings.append((
                    lineno,
                    "direct write to `state_` — lifecycle changes must go "
                    "through StateMachine::transition",
                ))
            if SM_REPLACE.search(code):
                if not nearby_comment_mentions(lines, i, SM_RESET_MARKER):
                    findings.append((
                        lineno,
                        "state machine replaced without a nearby "
                        f"`{SM_RESET_MARKER}` justification comment",
                    ))

        if rel != "tools/lint.py":
            if NOLINT.search(line) and not NOLINT_JUSTIFIED.search(line):
                findings.append((
                    lineno,
                    "NOLINT without justification — write "
                    "`NOLINT(<check>): <reason>`",
                ))
            if NO_TSA.search(code) and "#define" not in code and \
                    rel != "include/pa/check/thread_safety.h":
                if not nearby_comment_mentions(lines, i,
                                               "NO_THREAD_SAFETY_ANALYSIS"):
                    findings.append((
                        lineno,
                        "PA_NO_THREAD_SAFETY_ANALYSIS without an adjacent "
                        "justification comment naming it",
                    ))
    return findings


def main() -> int:
    failures = 0
    for d in SCAN_DIRS:
        root = REPO / d
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix not in CXX_SUFFIXES:
                continue
            rel = path.relative_to(REPO).as_posix()
            if "/fixtures/" in rel:
                # Analyzer self-test trees (tests/tools/fixtures/) carry
                # seeded violations checked by tests/tools/run_tests.py.
                continue
            try:
                text = path.read_text(encoding="utf-8")
            except UnicodeDecodeError:
                continue
            for lineno, message in lint_file(rel, text):
                print(f"{rel}:{lineno}: {message}")
                failures += 1
    if failures:
        print(f"\nlint: {failures} finding(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
