"""Pass 3: command exhaustiveness and callback discipline.

The control plane admits exactly the `core::cmd::Command` variant; the
apply thread dispatches via std::visit over `apply(cmd::CmdX&)`
overloads, so a missing overload is a compile error — but a struct that
never joins the variant, a variant member nothing ever constructs, or a
handler for a retired command all compile fine and rot silently. This
pass closes the loop:

  * every `struct CmdX` in core/command.h is a member of the Command
    variant, and vice versa;
  * every variant member has an `apply(cmd::CmdX&)` definition in
    src/core (the apply-thread handler), and no handler exists for a
    non-member;
  * every command is constructed somewhere outside command.h — a
    command nobody posts is dead vocabulary;
  * when the taxonomy carries the cross-shard CmdForward envelope, the
    envelope is well-formed: it names its destination (`target_shard`)
    and carries a hop cap (`hops`) so forwarding cannot loop between
    shards forever, and its apply handler re-dispatches the inner
    command through `apply_command(...)` so forwarded commands hit the
    same handler table as locally-posted ones;
  * every runtime callback body in src/core is the lint-rule-5 shape,
    checked structurally rather than by regex: the body may contain only
    wait-free `...->post(...)` statements, bare `return`s, and guard
    `if`s whose bodies are nothing but returns — and must post at least
    once. Any other statement (state mutation, logging, scheduling) runs
    middleware logic on a substrate thread and is a finding. This
    subsumes and deepens lint.py rule 5, which only greps for forbidden
    identifiers.
"""

from __future__ import annotations

import re

from . import Finding
from .source import Index, iter_code, line_of, match_brace, match_paren

PASS = "commands"

COMMAND_HEADER = "include/pa/core/command.h"
HANDLER_SCOPE = "src/core/"

STRUCT_RE = re.compile(r"\bstruct\s+(Cmd\w+)\b")
VARIANT_RE = re.compile(
    r"using\s+Command\s*=\s*std::variant<(.*?)>\s*;", re.DOTALL)
HANDLER_RE = re.compile(
    r"::\s*apply\s*\(\s*(?:const\s+)?cmd::(Cmd\w+)\s*&")
CONSTRUCT_RE = re.compile(r"\bcmd::(Cmd\w+)\s*\{")

# Same trigger set as lint.py rule 5 — the three places src/core hands a
# lambda to a substrate that will invoke it on a foreign thread.
CALLBACK_TRIGGERS = re.compile(
    r"callbacks\.on_\w+\s*=|runtime_\.execute_unit\s*\(|"
    r"data_->stage_to_site\s*\(")
POST_STMT_RE = re.compile(r"^\s*\w+\s*->\s*post\s*\(")
RETURN_STMT_RE = re.compile(r"^\s*return\b[^;{}]*;\s*$")
IF_HEAD_RE = re.compile(r"^\s*if\s*\(")
FORBIDDEN_RE = re.compile(
    r"\b(workload_|units_|pilots_|journal_|tracer_|obs_metrics_|model_|"
    r"delta_|dirty_pilots_|dirty_units_|unit_observers_|snapshot_mutex_|"
    r"run_schedule_cycle|publish_snapshot|finalize_unit_apply|"
    r"dispatch_unit_apply|execute_unit_apply)\b")


def statements(code: str, start: int, end: int) -> list[tuple[int, str]]:
    """Top-level statements of a block body as (offset, text): split at
    `;` and at block-closing `}` when nesting returns to zero, so an
    `if (...) { ... }` arrives as one statement."""
    out = []
    depth = 0
    begin = start
    for pos, ch in iter_code(code, start, end):
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
            if ch == "}" and depth == 0:
                out.append((begin, code[begin:pos + 1]))
                begin = pos + 1
        elif ch == ";" and depth == 0:
            out.append((begin, code[begin:pos + 1]))
            begin = pos + 1
    tail = code[begin:end].strip()
    if tail:
        out.append((begin, tail))
    return out


def guard_is_clean(stmt: str) -> bool:
    """True for `if (cond) return...;` / `if (cond) { return...; }` —
    the only control flow a callback may add around its post."""
    m = IF_HEAD_RE.match(stmt)
    if m is None:
        return False
    close = match_paren(stmt, m.end() - 1)
    rest = stmt[close + 1:].strip()
    if rest.startswith("{") and rest.endswith("}"):
        inner = rest[1:-1]
        parts = [s for _, s in statements(inner, 0, len(inner))]
        return bool(parts) and all(RETURN_STMT_RE.match(p) for p in parts)
    return RETURN_STMT_RE.match(rest) is not None


def check_callback_body(rel: str, code: str, body_start: int,
                        body_end: int, trigger_line: int,
                        findings: list[Finding]) -> None:
    posted = False
    for off, stmt in statements(code, body_start + 1, body_end):
        text = stmt.strip()
        if not text:
            continue
        line = line_of(code, off + len(stmt) - len(stmt.lstrip()))
        fm = FORBIDDEN_RE.search(stmt)
        if fm:
            findings.append(Finding(
                rel, line, PASS,
                f"runtime callback touches service state "
                f"`{fm.group(1)}` — callbacks run on substrate threads; "
                f"post a command and let the apply thread do the work"))
            continue
        if POST_STMT_RE.match(text):
            posted = True
            continue
        if RETURN_STMT_RE.match(text):
            continue
        if guard_is_clean(text):
            continue
        head = " ".join(text.split())
        if len(head) > 60:
            head = head[:57] + "..."
        findings.append(Finding(
            rel, line, PASS,
            f"runtime callback statement `{head}` is not the wait-free "
            f"post shape — a callback body may only guard, return, and "
            f"`ctrl_->post(...)`"))
    if not posted:
        findings.append(Finding(
            rel, trigger_line, PASS,
            "runtime callback never posts a command — the only legal "
            "callback body is a wait-free ctrl_->post(<command>)"))


def callback_lambda(code: str, start: int) -> tuple[int, int] | None:
    """(open_brace, close_brace) of the lambda handed to a trigger at
    `start`, or None when the argument is not a lambda."""
    intro = code.find("[", start)
    if intro < 0 or intro - start > 200:
        return None
    open_idx = code.find("{", intro)
    if open_idx < 0:
        return None
    return open_idx, match_brace(code, open_idx)


def run(index: Index) -> list[Finding]:
    findings: list[Finding] = []
    header = index.get(COMMAND_HEADER)
    if header is None:
        findings.append(Finding(COMMAND_HEADER, 1, PASS,
                                "command taxonomy header missing"))
        return findings

    structs = {}
    for m in STRUCT_RE.finditer(header.code):
        structs[m.group(1)] = line_of(header.code, m.start())
    vm = VARIANT_RE.search(header.code)
    if vm is None:
        findings.append(Finding(
            COMMAND_HEADER, 1, PASS,
            "`using Command = std::variant<...>` not found"))
        return findings
    variant = re.findall(r"\b(Cmd\w+)\b", vm.group(1))
    variant_line = line_of(header.code, vm.start())
    dupes = {v for v in variant if variant.count(v) > 1}
    for v in sorted(dupes):
        findings.append(Finding(COMMAND_HEADER, variant_line, PASS,
                                f"{v} appears twice in the Command "
                                f"variant"))
    vset = set(variant)
    for name, line in sorted(structs.items()):
        if name not in vset:
            findings.append(Finding(
                COMMAND_HEADER, line, PASS,
                f"struct {name} is not a member of the Command variant — "
                f"it can never be posted"))
    for name in sorted(vset - set(structs)):
        findings.append(Finding(
            COMMAND_HEADER, variant_line, PASS,
            f"Command variant names {name}, which command.h does not "
            f"define"))

    # --- apply-thread handlers ------------------------------------------
    handlers: dict[str, tuple[str, int]] = {}
    for rel, sf in sorted(index.files.items()):
        if not rel.startswith(HANDLER_SCOPE) or not rel.endswith(".cpp"):
            continue
        for m in HANDLER_RE.finditer(sf.code):
            handlers[m.group(1)] = (rel, line_of(sf.code, m.start()))
    for name in sorted(vset - set(handlers)):
        findings.append(Finding(
            COMMAND_HEADER, variant_line, PASS,
            f"{name} has no apply-thread handler (`apply(cmd::{name}&)`) "
            f"in {HANDLER_SCOPE} — posting it would not compile or not "
            f"be handled"))
    for name, (rel, line) in sorted(handlers.items()):
        if name not in vset:
            findings.append(Finding(
                rel, line, PASS,
                f"handler for {name} exists but the command is not in "
                f"the Command variant — dead handler"))

    # --- forward envelope (sharded control plane) ------------------------
    # Gated on CmdForward membership: a taxonomy without the envelope has
    # no cross-shard routing to validate.
    if "CmdForward" in vset and "CmdForward" in structs:
        sm = re.search(r"struct\s+CmdForward\b[^{;]*\{", header.code)
        if sm is not None:
            body_open = sm.end() - 1
            body = header.code[
                body_open:match_brace(header.code, body_open) + 1]
            for field in ("target_shard", "hops"):
                if re.search(rf"\b{field}\b", body) is None:
                    findings.append(Finding(
                        COMMAND_HEADER, structs["CmdForward"], PASS,
                        f"CmdForward lacks the `{field}` field — the "
                        f"envelope must carry its destination and a hop "
                        f"cap, or forwarded commands can loop between "
                        f"shards forever"))
        if "CmdForward" in handlers:
            hrel, hline = handlers["CmdForward"]
            hsf = index.get(hrel)
            hm = re.search(
                r"::\s*apply\s*\(\s*(?:const\s+)?cmd::CmdForward\s*&"
                r"[^{;]*\{", hsf.code)
            if hm is not None:
                hopen = hm.end() - 1
                hbody = hsf.code[hopen:match_brace(hsf.code, hopen) + 1]
                if "apply_command(" not in hbody:
                    findings.append(Finding(
                        hrel, hline, PASS,
                        "the CmdForward handler does not re-dispatch via "
                        "apply_command(...) — the unwrapped inner command "
                        "would bypass the shard's own handler table"))

    # --- every command is constructed somewhere -------------------------
    constructed: set[str] = set()
    for rel, sf in index.files.items():
        if rel == COMMAND_HEADER:
            continue
        constructed.update(CONSTRUCT_RE.findall(sf.code))
    for name in sorted(vset & set(structs)):
        if name not in constructed:
            findings.append(Finding(
                COMMAND_HEADER, structs[name], PASS,
                f"{name} is never constructed outside command.h — dead "
                f"command vocabulary"))

    # --- callback shape (structural lint rule 5) ------------------------
    for rel, sf in sorted(index.files.items()):
        if not rel.startswith(HANDLER_SCOPE) or not rel.endswith(".cpp"):
            continue
        for m in CALLBACK_TRIGGERS.finditer(sf.code):
            region = callback_lambda(sf.code, m.end())
            if region is None:
                continue
            check_callback_body(rel, sf.code, region[0], region[1],
                                line_of(sf.code, m.start()), findings)
    return findings
