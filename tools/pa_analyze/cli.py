"""Command-line driver: load the index once, run the requested passes.

    python3 tools/pa_analyze                    # all four passes
    python3 tools/pa_analyze --pass lock-order  # one pass
    python3 tools/pa_analyze --emit-lock-table  # print the generated table
    python3 tools/pa_analyze --fix-lock-table   # rewrite DESIGN.md block
    python3 tools/pa_analyze --root <dir>       # analyze another tree

Exit status 0 = clean, 1 = findings, 2 = usage / setup error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import PASS_NAMES, Finding
from .source import Index
from . import codec, commands, lock_order, metrics

PASSES = {
    "lock-order": lock_order.run,
    "codec": codec.run,
    "commands": commands.run,
    "metrics": metrics.run,
}
assert tuple(PASSES) == PASS_NAMES


def run_passes(root: Path, names: list[str]) -> list[Finding]:
    index = Index(root)
    findings: list[Finding] = []
    for name in names:
        findings.extend(PASSES[name](index))
    findings.sort(key=lambda f: (f.path, f.line, f.pass_name, f.message))
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pa_analyze",
        description="whole-program invariant analyzer (lock-order graph, "
                    "codec symmetry, command exhaustiveness, metric "
                    "manifest)")
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        .parent,
                        help="repository root to analyze (default: this "
                             "repo)")
    parser.add_argument("--pass", dest="passes", action="append",
                        choices=PASS_NAMES, metavar="NAME",
                        help="run only this pass (repeatable; default: "
                             "all of %s)" % ", ".join(PASS_NAMES))
    parser.add_argument("--emit-lock-table", action="store_true",
                        help="print the generated lock table and exit")
    parser.add_argument("--fix-lock-table", action="store_true",
                        help="rewrite the DESIGN.md marker block with the "
                             "generated lock table")
    args = parser.parse_args(argv)

    if not args.root.is_dir():
        print(f"pa_analyze: no such root: {args.root}", file=sys.stderr)
        return 2

    if args.emit_lock_table:
        sys.stdout.write(lock_order.emit_lock_table(Index(args.root)))
        return 0
    if args.fix_lock_table:
        if not lock_order.fix_design_table(Index(args.root)):
            print("pa_analyze: DESIGN.md markers not found — add "
                  f"`{lock_order.TABLE_BEGIN}` and "
                  f"`{lock_order.TABLE_END}` around the table first",
                  file=sys.stderr)
            return 2
        print("pa_analyze: DESIGN.md lock table regenerated")
        return 0

    findings = run_passes(args.root, args.passes or list(PASS_NAMES))
    for f in findings:
        print(f)
    if findings:
        print(f"\npa_analyze: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print("pa_analyze: clean")
    return 0
