"""pa_analyze: whole-program invariant analyzer for the pilot-abstraction
repository.

tools/lint.py enforces *per-file* disciplines with per-line regexes; the
four passes here check invariants that span files — the things a reviewer
has to hold in their head across the whole tree:

  lock-order   every `check::MutexLock` acquisition site, the rank its
               mutex declares, and the locks held around it form a global
               acquisition graph; any edge that does not strictly increase
               declared ranks is a potential deadlock on *some* path,
               executed or not — strictly stronger than the runtime
               lock-rank validator, which only sees executed paths. Also
               regenerates the DESIGN.md lock table and fails on drift.

  codec        every `net::MessageType`'s encode and decode logic in
               src/net/message.cpp must agree on field order, width, and
               version gating; an encoded-but-not-decoded field, a
               reordered field, or a v3 type handled without the version
               guard is a finding.

  commands     every variant member of `core::cmd::Command` has an
               apply-side handler, every handler handles a real variant
               member, every command is actually posted somewhere, and
               every runtime callback body in src/core is nothing but
               wait-free `ctrl_->post(...)` statements (subsumes and
               deepens lint.py rule 5).

  metrics      every metric-name string passed to the `pa::obs` registry
               in the library (include/ + src/) must appear in the
               docs/METRICS.md manifest with the same instrument kind;
               unknown names, typo'd names (edit distance 1 from a known
               series), kind forks, and stale manifest rows all fail.

Every pass takes a repository root, so the golden fixtures under
tests/tools/fixtures/ can run the identical code over miniature trees.
Exit status 0 = clean, 1 = findings (one per line: path:line: [pass] msg).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Finding:
    """One analyzer finding, printable as path:line: [pass] message."""

    path: str  # repo-relative, posix
    line: int
    pass_name: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.pass_name}] {self.message}"


PASS_NAMES = ("lock-order", "codec", "commands", "metrics")
