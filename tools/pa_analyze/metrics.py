"""Pass 4: metric-name manifest.

`pa::obs` series are string-keyed, so a typo'd name silently forks a
series and dashboards watch the dead twin. This pass collects every name
expression passed to `counter(...)` / `gauge(...)` / `histogram(...)` in
the library (include/ + src/ — tests and benches may create ad-hoc
series) and diffs against the checked-in docs/METRICS.md manifest:

  * dynamic name parts (`"stream." + topic + ".messages_in"`,
    `metric_prefix_ + "queue_wait"`) are resolved structurally — string
    literals kept, one level of same-file variable assignment followed,
    everything else a `*` wildcard that must line up with a `<param>`
    placeholder in the manifest;
  * a name with no manifest row fails; at edit distance 1 from a known
    row it fails as a probable typo naming the intended series;
  * a call whose instrument kind disagrees with the manifest row fails,
    as do two call sites that disagree with each other (a kind fork);
  * a manifest row no call site produces is stale documentation and
    fails, so the manifest can never drift above the code.
"""

from __future__ import annotations

import re
from pathlib import Path

from . import Finding
from .source import Index, SourceFile, iter_code, line_of, match_paren

PASS = "metrics"

MANIFEST_FILE = "docs/METRICS.md"
# The registry's own implementation defines these methods; everything
# else only calls them.
REGISTRY_PREFIXES = ("include/pa/obs/", "src/obs/")

CALL_RE = re.compile(r"(?:->|\.)\s*(counter|gauge|histogram)\s*\(")
LITERAL_RE = re.compile(r'^"((?:[^"\\]|\\.)*)"$')
WRAPPED_LITERAL_RE = re.compile(
    r'^std::string\s*\(\s*"((?:[^"\\]|\\.)*)"\s*\)$')
MANIFEST_ROW_RE = re.compile(
    r"^\|\s*`([^`]+)`\s*\|\s*(counter|gauge|histogram)\s*\|")


def split_top(expr: str, sep: str) -> list[str]:
    """Splits on `sep` at paren/angle depth zero, string-aware."""
    parts = []
    depth = 0
    begin = 0
    for i, c in iter_code(expr):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == sep and depth == 0:
            parts.append(expr[begin:i])
            begin = i + 1
    parts.append(expr[begin:])
    return parts


def resolve_term(term: str, sf: SourceFile, depth: int) -> str:
    term = term.strip()
    m = LITERAL_RE.match(term) or WRAPPED_LITERAL_RE.match(term)
    if m:
        return m.group(1)
    if depth > 0 and re.fullmatch(r"\w+", term):
        am = re.search(r"\b" + re.escape(term) + r"\s*=\s*([^;=][^;]*);",
                       sf.code)
        if am:
            return name_pattern(am.group(1), sf, depth - 1)
    return "*"


def name_pattern(expr: str, sf: SourceFile, depth: int = 2) -> str:
    """Wildcard pattern of a metric-name expression: literals verbatim,
    one `*` per dynamic segment, runs of `*` collapsed."""
    pattern = "".join(resolve_term(t, sf, depth)
                      for t in split_top(expr, "+"))
    return re.sub(r"\*+", "*", pattern)


def collect_calls(index: Index):
    """(pattern, kind, rel, line) for every registry call in the
    library."""
    out = []
    for sf in index.library_files():
        if sf.rel.startswith(REGISTRY_PREFIXES):
            continue
        for m in CALL_RE.finditer(sf.code):
            open_idx = m.end() - 1
            close = match_paren(sf.code, open_idx)
            first_arg = split_top(sf.code[open_idx + 1:close], ",")[0]
            first_arg = " ".join(first_arg.split())
            out.append((name_pattern(first_arg, sf), m.group(1), sf.rel,
                        line_of(sf.code, m.start())))
    return out


def parse_manifest(root: Path):
    """name-pattern -> (kind, line); `<param>` placeholders normalize to
    the same `*` wildcard the collector emits. None when the manifest
    file is missing."""
    path = root / MANIFEST_FILE
    if not path.is_file():
        return None
    rows: dict[str, tuple[str, int]] = {}
    for i, line in enumerate(path.read_text(encoding="utf-8")
                             .splitlines(), start=1):
        m = MANIFEST_ROW_RE.match(line.strip())
        if m:
            pattern = re.sub(r"\*+", "*",
                             re.sub(r"<[^<>]+>", "*", m.group(1)))
            rows[pattern] = (m.group(2), i)
    return rows


def edit_distance_leq_1(a: str, b: str) -> bool:
    if a == b:
        return True
    if abs(len(a) - len(b)) > 1:
        return False
    if len(a) == len(b):
        return sum(1 for x, y in zip(a, b) if x != y) == 1
    if len(a) > len(b):
        a, b = b, a
    i = 0
    while i < len(a) and a[i] == b[i]:
        i += 1
    return a[i:] == b[i + 1:]


def run(index: Index) -> list[Finding]:
    findings: list[Finding] = []
    manifest = parse_manifest(Path(index.root))
    calls = collect_calls(index)
    if manifest is None:
        findings.append(Finding(
            MANIFEST_FILE, 1, PASS,
            f"metric manifest missing — {MANIFEST_FILE} must list every "
            f"library series ({len(calls)} call sites found)"))
        return findings

    seen_kinds: dict[str, tuple[str, str, int]] = {}
    used_rows: set[str] = set()
    for pattern, kind, rel, line in sorted(calls, key=lambda c: (c[2],
                                                                 c[3])):
        prior = seen_kinds.setdefault(pattern, (kind, rel, line))
        if prior[0] != kind:
            findings.append(Finding(
                rel, line, PASS,
                f"metric `{pattern}` registered as {kind} here but as "
                f"{prior[0]} at {prior[1]}:{prior[2]} — a kind fork "
                f"splits the series"))
        row = manifest.get(pattern)
        if row is None:
            near = [n for n in manifest
                    if edit_distance_leq_1(pattern, n)]
            if near:
                findings.append(Finding(
                    rel, line, PASS,
                    f"metric `{pattern}` looks like a typo of documented "
                    f"`{near[0]}` — a one-character drift forks the "
                    f"series"))
            else:
                findings.append(Finding(
                    rel, line, PASS,
                    f"metric `{pattern}` is not in {MANIFEST_FILE} — add "
                    f"a manifest row (name, kind, one-line meaning)"))
            continue
        used_rows.add(pattern)
        if row[0] != kind:
            findings.append(Finding(
                rel, line, PASS,
                f"metric `{pattern}` registered as {kind} but the "
                f"manifest documents it as {row[0]}"))
    for pattern, (kind, line) in sorted(manifest.items()):
        if pattern not in used_rows:
            findings.append(Finding(
                MANIFEST_FILE, line, PASS,
                f"manifest documents `{pattern}` ({kind}) but no library "
                f"call site produces it — stale row"))
    return findings
