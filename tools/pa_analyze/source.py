"""Shared source model: load every C++ file once, strip comments with
line structure preserved, and walk brace/string structure without being
fooled by literals.

The passes are regex-plus-scope analyses, not a real parser; the helpers
here centralize the two things naive regexes get wrong on C++ — comments
and string literals — so every pass sees the same sanitized view.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

CXX_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}
SCAN_DIRS = ("include", "src", "tests", "bench", "examples")


def strip_comments(text: str) -> str:
    """Replaces // and /* */ comment bodies with spaces, preserving every
    newline (so offsets → line numbers survive) and leaving string and
    character literals intact."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
            i += 1
        else:  # string or char literal
            if c == "\\" and i + 1 < n:
                out.append(c)
                out.append(text[i + 1])
                i += 2
                continue
            if (state == "string" and c == '"') or (
                state == "char" and c == "'"
            ):
                state = "code"
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    """1-based line number of byte offset `pos`."""
    return text.count("\n", 0, pos) + 1


def iter_code(text: str, start: int = 0, end: int | None = None):
    """Yields (index, char) over comment-stripped text, skipping the
    *contents* of string and character literals (the quotes themselves are
    yielded), so brace matching never trips on `"{"`."""
    if end is None:
        end = len(text)
    i = start
    state = "code"
    while i < end:
        c = text[i]
        if state == "code":
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            yield i, c
            i += 1
        else:
            if c == "\\" and i + 1 < end:
                i += 2
                continue
            if (state == "string" and c == '"') or (
                state == "char" and c == "'"
            ):
                state = "code"
                yield i, c
            i += 1


def match_brace(text: str, open_idx: int) -> int:
    """Index of the '}' closing the '{' at `open_idx` (comment-stripped
    text). Returns len(text) - 1 when unbalanced (truncated file)."""
    depth = 0
    last = open_idx
    for i, c in iter_code(text, open_idx):
        last = i
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i
    return last


def match_paren(text: str, open_idx: int) -> int:
    """Index of the ')' closing the '(' at `open_idx`."""
    depth = 0
    last = open_idx
    for i, c in iter_code(text, open_idx):
        last = i
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i
    return last


@dataclasses.dataclass
class SourceFile:
    rel: str  # repo-relative posix path
    raw: str
    code: str  # comment-stripped, newline-preserving


class Index:
    """All scanned sources of one repository root, loaded once."""

    def __init__(self, root: Path, scan_dirs: tuple[str, ...] = SCAN_DIRS):
        self.root = Path(root)
        self.files: dict[str, SourceFile] = {}
        for d in scan_dirs:
            base = self.root / d
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix not in CXX_SUFFIXES or not path.is_file():
                    continue
                rel = path.relative_to(self.root).as_posix()
                if "/fixtures/" in rel:
                    # Analyzer self-test trees (tests/tools/fixtures/)
                    # carry seeded violations; each is analyzed as its own
                    # root by the self-tests, never as part of this one.
                    continue
                try:
                    raw = path.read_text(encoding="utf-8")
                except UnicodeDecodeError:
                    continue
                self.files[rel] = SourceFile(rel, raw, strip_comments(raw))

    def get(self, rel: str) -> SourceFile | None:
        return self.files.get(rel)

    def library_files(self):
        """The shipped library only (include/ + src/) — the scope for
        manifest-style checks where tests and benches may create ad-hoc
        series or fixtures."""
        for rel, sf in self.files.items():
            if rel.startswith("include/") or rel.startswith("src/"):
                yield sf
