"""Entry point for both spellings:

    python3 tools/pa_analyze        (directory on sys.path[0]'s parent)
    python3 -m tools.pa_analyze     (repo root on sys.path)
"""

import sys

if __package__ in (None, ""):  # invoked as `python3 tools/pa_analyze`
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent.parent))
    from tools.pa_analyze.cli import main
else:
    from .cli import main

sys.exit(main())
