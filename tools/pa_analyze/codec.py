"""Pass 2: wire-codec symmetry.

The v1/v2/v3 protocol codec in src/net/message.cpp is hand-written
encode/decode pairs; nothing but round-trip tests enforces that both
sides agree. This pass pairs the two switches mechanically:

  * every `net::MessageType` enum member appears in the encode switch,
    the decode switch, and to_string();
  * per type, the ordered sequence of codec operations matches in kind
    (u8/u16/u32/u64/i32/f64/string/string_list/count/unit) — an
    encoded-but-not-decoded field, a dropped field, or a width change on
    one side only is a finding;
  * where both sides name the field (`m.foo` / `u.foo` / `d.foo`), the
    names must match — catches reordered fields whose widths happen to
    line up;
  * the put_unit/take_unit sub-codec gets the same treatment;
  * version gating is closed-loop: the `(v2+)`/`(v3+)` tags on the enum,
    the is_batch_type/is_object_type membership sets, and the version
    guards in *both* encode and decode must all agree — a v3 type
    decodable without a version check is a finding;
  * every field of Message / WireUnitDescription / WireUnitDone is
    referenced by both the encoder and the decoder (no silently dead
    wire fields).
"""

from __future__ import annotations

import re

from . import Finding
from .source import Index, SourceFile, line_of, match_brace, match_paren

PASS = "codec"

HEADER_FILE = "include/pa/net/message.h"
IMPL_FILE = "src/net/message.cpp"

ENC_OP_RE = re.compile(
    r"\bput_(u8|u16|u32|u64|i32|f64|string_list|string|unit)\s*\(")
DEC_OP_RE = re.compile(
    r"\.take<\s*(?:std::)?(\w+)\s*>\s*\(|\.take_string_list\s*\(|"
    r"\.take_string\s*\(|\btake_unit\s*\(|\btake_batch_count\s*\(")
CASE_RE = re.compile(r"\bcase\s+MessageType::k(\w+)\s*:")
ENUM_MEMBER_RE = re.compile(r"\bk(\w+)\s*=\s*(\d+)")
VERSION_TAG_RE = re.compile(r"\(v(\d+)\+\)")
FIELD_NAME_RE = re.compile(r"\b[mudw]\.(\w+)")

TAKE_KIND = {
    "uint8_t": "u8", "uint16_t": "u16", "uint32_t": "u32",
    "uint64_t": "u64", "int8_t": "i8", "int16_t": "i16",
    "int32_t": "i32", "int64_t": "i64", "double": "f64", "float": "f32",
}


def func_body(code: str, signature: str) -> tuple[int, int] | None:
    """(open_brace_idx, close_brace_idx) of the first definition whose
    signature matches `signature` (a regex anchored at the return type, so
    call sites don't match)."""
    m = re.search(signature, code)
    if m is None:
        return None
    open_idx = code.find("{", m.end() - 1)
    if open_idx < 0:
        return None
    return open_idx, match_brace(code, open_idx)


def encode_ops(code: str, start: int, end: int):
    """Ordered (kind, field_name_or_None, line) ops in a region of the
    encoder. A put_u32 of `.size()` is the batch-count pseudo-op."""
    ops = []
    for m in ENC_OP_RE.finditer(code, start, end):
        kind = m.group(1)
        close = match_paren(code, code.find("(", m.end() - 1))
        args = code[m.end():close]
        name_m = FIELD_NAME_RE.search(args)
        name = name_m.group(1) if name_m else None
        if kind == "u32" and ".size()" in args.replace(" ", "").replace(
                "\n", ""):
            kind = "count"
        ops.append((kind, name, line_of(code, m.start())))
    return ops


def decode_ops(code: str, start: int, end: int):
    """Ordered (kind, field_name_or_None, line) ops in a region of the
    decoder. The assigned field is read off the statement prefix
    (`m.foo = c.take...`)."""
    ops = []
    for m in DEC_OP_RE.finditer(code, start, end):
        text = m.group(0)
        if m.group(1):
            kind = TAKE_KIND.get(m.group(1), m.group(1))
        elif "take_string_list" in text:
            kind = "string_list"
        elif "take_string" in text:
            kind = "string"
        elif "take_unit" in text:
            kind = "unit"
        else:
            kind = "count"
        stmt = max(code.rfind(";", start, m.start()),
                   code.rfind("{", start, m.start()),
                   code.rfind("}", start, m.start()),
                   start - 1)
        prefix = code[stmt + 1:m.start()]
        name_m = FIELD_NAME_RE.search(prefix)
        name = name_m.group(1) if name_m else None
        ops.append((kind, name, line_of(code, m.start())))
    return ops


def split_cases(code: str, sw_start: int, sw_end: int):
    """Case groups of one switch body: [(type_names, body_start,
    body_end, line)], with stacked labels sharing one body."""
    labels = [(m.group(1), m.start(), m.end())
              for m in CASE_RE.finditer(code, sw_start, sw_end)]
    groups = []
    i = 0
    while i < len(labels):
        names = [labels[i][0]]
        j = i
        while (j + 1 < len(labels)
               and code[labels[j][2]:labels[j + 1][1]].strip() == ""):
            j += 1
            names.append(labels[j][0])
        body_start = labels[j][2]
        body_end = labels[j + 1][1] if j + 1 < len(labels) else sw_end
        groups.append((names, body_start, body_end,
                       line_of(code, labels[i][1])))
        i = j + 1
    return groups


def switch_region(code: str, body: tuple[int, int],
                  scrutinee: str) -> tuple[int, int] | None:
    m = re.search(r"\bswitch\s*\(\s*" + re.escape(scrutinee) + r"\s*\)\s*\{",
                  code[body[0]:body[1]])
    if m is None:
        return None
    open_idx = body[0] + m.end() - 1
    return open_idx, match_brace(code, open_idx)


def parse_enum(sf: SourceFile):
    """name -> (value, min_version) from the MessageType enum; version
    tags are read from the raw text's `(vN+)` doc comments (stripping
    preserves offsets, so enum spans line up between raw and code)."""
    m = re.search(r"enum\s+class\s+MessageType[^{]*\{", sf.code)
    if m is None:
        return None
    end = match_brace(sf.code, m.end() - 1)
    out = {}
    for em in ENUM_MEMBER_RE.finditer(sf.code, m.end(), end):
        eol = sf.raw.find("\n", em.start())
        if eol < 0:
            eol = len(sf.raw)
        tag = VERSION_TAG_RE.search(sf.raw, em.start(), eol)
        out[em.group(1)] = (int(em.group(2)),
                            int(tag.group(1)) if tag else 1)
    return out or None


def struct_fields(sf: SourceFile, name: str) -> list[str]:
    m = re.search(r"\bstruct\s+" + re.escape(name) + r"\s*\{", sf.code)
    if m is None:
        return []
    end = match_brace(sf.code, m.end() - 1)
    fields = []
    for line in sf.code[m.end():end].split("\n"):
        if "(" in line or ")" in line:
            continue
        fm = re.match(r"\s*[\w:]+(?:<[^;>]*>)?[&*\s]+(\w+)\s*(?:=[^;]*)?;",
                      line)
        if fm:
            fields.append(fm.group(1))
    return fields


def guard_threshold(code: str, body: tuple[int, int],
                    fn: str) -> int | None:
    """The N of `is_xxx_type(...) && [m.]version < N` inside a function
    body, or None when no such guard exists."""
    for m in re.finditer(r"\b" + re.escape(fn) + r"\s*\(", code):
        if not body[0] <= m.start() <= body[1]:
            continue
        close = match_paren(code, m.end() - 1)
        after = re.match(r"\s*&&\s*[\w.]*version\s*<\s*(\d+)",
                         code[close + 1:close + 80])
        if after:
            return int(after.group(1))
    return None


def type_set(code: str, body: tuple[int, int]) -> set[str]:
    return set(re.findall(r"MessageType::k(\w+)",
                          code[body[0]:body[1]]))


def compare_ops(rel: str, label: str, enc, dec,
                findings: list[Finding]) -> None:
    n = min(len(enc), len(dec))
    for i in range(n):
        ek, en, el = enc[i]
        dk, dn, dl = dec[i]
        ename = f" (`{en}`)" if en else ""
        dname = f" (`{dn}`)" if dn else ""
        if ek != dk:
            findings.append(Finding(
                rel, dl, PASS,
                f"{label}: field #{i + 1} is encoded as {ek}{ename} but "
                f"decoded as {dk}{dname} — width or order mismatch"))
            return
        if en and dn and en != dn:
            findings.append(Finding(
                rel, dl, PASS,
                f"{label}: field #{i + 1} encodes `{en}` but decodes into "
                f"`{dn}` — fields reordered or mispaired"))
            return
    if len(enc) > len(dec):
        k, nm, ln = enc[n]
        findings.append(Finding(
            rel, ln, PASS,
            f"{label}: {len(enc) - n} encoded field(s) never decoded, "
            f"starting with {k}" + (f" `{nm}`" if nm else "") +
            " — the decoder will see them as trailing bytes"))
    elif len(dec) > len(enc):
        k, nm, ln = dec[n]
        findings.append(Finding(
            rel, ln, PASS,
            f"{label}: decoder reads {len(dec) - n} field(s) the encoder "
            f"never writes, starting with {k}" +
            (f" `{nm}`" if nm else "") + " — decode will throw on every "
            "well-formed frame"))


def run(index: Index) -> list[Finding]:
    findings: list[Finding] = []
    header = index.get(HEADER_FILE)
    impl = index.get(IMPL_FILE)
    if header is None or impl is None:
        for rel, sf in ((HEADER_FILE, header), (IMPL_FILE, impl)):
            if sf is None:
                findings.append(Finding(rel, 1, PASS,
                                        "codec source missing"))
        return findings
    enum = parse_enum(header)
    if not enum:
        findings.append(Finding(HEADER_FILE, 1, PASS,
                                "could not parse the MessageType enum"))
        return findings

    code = impl.code
    enc_body = func_body(code, r"\bvoid\s+encode_message_into\s*\(")
    dec_body = func_body(code, r"\bMessage\s+decode_message\s*\(")
    if enc_body is None or dec_body is None:
        findings.append(Finding(
            IMPL_FILE, 1, PASS,
            "encode_message_into / decode_message definitions not found"))
        return findings

    # --- per-type op symmetry -------------------------------------------
    enc_sw = switch_region(code, enc_body, "m.type")
    dec_sw = switch_region(code, dec_body, "m.type")
    if enc_sw is None or dec_sw is None:
        findings.append(Finding(IMPL_FILE, line_of(code, enc_body[0]), PASS,
                                "switch (m.type) not found in the codec"))
        return findings

    def case_map(sw):
        out = {}
        for names, bs, be, line in split_cases(code, sw[0] + 1, sw[1]):
            for name in names:
                out[name] = (bs, be, line)
        return out

    enc_cases = case_map(enc_sw)
    dec_cases = case_map(dec_sw)

    for side, cases in (("encode", enc_cases), ("decode", dec_cases)):
        for name, (_, _, line) in sorted(cases.items()):
            if name not in enum:
                findings.append(Finding(
                    IMPL_FILE, line, PASS,
                    f"{side} switch handles MessageType::k{name}, which "
                    f"the enum does not declare"))
        for name in sorted(enum):
            if name not in cases:
                findings.append(Finding(
                    IMPL_FILE, line_of(code, (enc_sw if side == "encode"
                                              else dec_sw)[0]), PASS,
                    f"MessageType::k{name} has no case in the {side} "
                    f"switch — frames of that type cannot be "
                    f"{'sent' if side == 'encode' else 'received'}"))

    for name in sorted(set(enc_cases) & set(dec_cases) & set(enum)):
        ebs, ebe, _ = enc_cases[name]
        dbs, dbe, _ = dec_cases[name]
        compare_ops(IMPL_FILE, f"k{name}",
                    encode_ops(code, ebs, ebe),
                    decode_ops(code, dbs, dbe), findings)

    # --- header symmetry (ops before each switch) -----------------------
    compare_ops(IMPL_FILE, "message header",
                encode_ops(code, enc_body[0], enc_sw[0]),
                decode_ops(code, dec_body[0], dec_sw[0]), findings)

    # --- put_unit / take_unit sub-codec ---------------------------------
    pu = func_body(code, r"\bvoid\s+put_unit\s*\(")
    tu = func_body(code, r"\bWireUnitDescription\s+take_unit\s*\(")
    if pu and tu:
        compare_ops(IMPL_FILE, "WireUnitDescription",
                    encode_ops(code, pu[0], pu[1]),
                    decode_ops(code, tu[0], tu[1]), findings)

    # --- to_string coverage ---------------------------------------------
    ts = func_body(code, r"\bconst\s+char\s*\*\s*to_string\s*\(")
    if ts:
        covered = type_set(code, ts)
        for name in sorted(set(enum) - covered):
            findings.append(Finding(
                IMPL_FILE, line_of(code, ts[0]), PASS,
                f"to_string() has no case for MessageType::k{name}"))

    # --- version gating: enum tags <-> membership sets <-> guards -------
    for fn, want_version, label in (
            ("is_batch_type", 2, "batch"),
            ("is_object_type", 3, "object")):
        tagged = {n for n, (_, v) in enum.items() if v == want_version}
        body = func_body(code, r"\bbool\s+" + fn + r"\s*\(")
        if body is None:
            if tagged:
                findings.append(Finding(
                    IMPL_FILE, 1, PASS,
                    f"{fn}() not found but the enum tags "
                    f"{', '.join('k' + t for t in sorted(tagged))} as "
                    f"(v{want_version}+)"))
            continue
        members = type_set(code, body)
        if members != tagged:
            extra = ", ".join("k" + t for t in sorted(members - tagged))
            missing = ", ".join("k" + t for t in sorted(tagged - members))
            parts = []
            if missing:
                parts.append(f"enum tags {missing} as (v{want_version}+) "
                             f"but {fn}() omits them")
            if extra:
                parts.append(f"{fn}() lists {extra}, which the enum does "
                             f"not tag (v{want_version}+)")
            findings.append(Finding(IMPL_FILE, line_of(code, body[0]),
                                    PASS, "; ".join(parts)))
        for side, fbody in (("encode", enc_body), ("decode", dec_body)):
            got = guard_threshold(code, fbody, fn)
            if got is None:
                findings.append(Finding(
                    IMPL_FILE, line_of(code, fbody[0]), PASS,
                    f"{side} path has no `{fn}(...) && version < "
                    f"{want_version}` guard — {label} types would be "
                    f"{side}d at v{want_version - 1} peers"))
            elif got != want_version:
                findings.append(Finding(
                    IMPL_FILE, line_of(code, fbody[0]), PASS,
                    f"{side} path gates {label} types at version "
                    f"{got}, expected {want_version}"))

    # --- struct-field coverage ------------------------------------------
    enc_text = code[enc_body[0]:enc_body[1]]
    dec_text = code[dec_body[0]:dec_body[1]]
    checks = [("Message", r"\bm\.(\w+)", enc_text, dec_text)]
    if pu and tu:
        checks.append(("WireUnitDescription", r"\bu\.(\w+)",
                       code[pu[0]:pu[1]], code[tu[0]:tu[1]]))
    checks.append(("WireUnitDone", r"\bd\.(\w+)", enc_text, dec_text))
    for struct, pat, etext, dtext in checks:
        fields = struct_fields(header, struct)
        if not fields:
            continue
        enc_names = set(re.findall(pat, etext))
        dec_names = set(re.findall(pat, dtext))
        for f in fields:
            if f not in enc_names:
                findings.append(Finding(
                    HEADER_FILE, 1, PASS,
                    f"{struct}::{f} is never encoded — dead wire field "
                    f"or a forgotten put"))
            if f not in dec_names:
                findings.append(Finding(
                    HEADER_FILE, 1, PASS,
                    f"{struct}::{f} is never decoded — receivers drop it "
                    f"silently"))
    return findings
