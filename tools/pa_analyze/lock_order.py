"""Pass 1: static lock-order graph.

Extracts every `pa::check` mutex declaration (its LockRank and printable
name), every `MutexLock`/`RecursiveMutexLock` acquisition site, and the
set of locks held at each site — RAII scopes tracked through brace
structure, balanced `lock.unlock()`/`lock.lock()` drops honored, lambda
bodies analyzed as fresh contexts (their bodies run on whichever thread
invokes them, not under the enclosing scope's locks), and functions whose
declarations carry `PA_REQUIRES(mu)` analyzed with `mu` held at entry.

Every acquisition edge (held mutex -> acquired mutex) must strictly
increase declared ranks; an inversion or a tie on *any* path — executed or
not — is a finding. This is strictly stronger than the runtime lock-rank
validator, which only sees paths a given run happens to execute.

Acquisition expressions resolve to declarations class-aware (several
classes name their lock `mutex_` at different ranks): same class first,
then same file, then directly-included project headers, then a repo-wide
unique rank; a genuinely ambiguous name is itself a finding, because a
reader suffers the same ambiguity.

The pass also regenerates the DESIGN.md lock table from code (ranks from
lock_rank.h, instances and observed nesting from the acquisition graph)
and fails when the checked-in, marker-delimited block disagrees.
"""

from __future__ import annotations

import dataclasses
import re
from pathlib import Path

from . import Finding
from .source import Index, SourceFile, iter_code, line_of, match_brace, \
    match_paren

PASS = "lock-order"

LOCK_RANK_HEADER = "include/pa/check/lock_rank.h"
DESIGN_FILE = "DESIGN.md"
TABLE_BEGIN = "<!-- pa_analyze:lock-table:begin -->"
TABLE_END = "<!-- pa_analyze:lock-table:end -->"

RANK_ENUM_RE = re.compile(r"\bk(\w+)\s*=\s*(\d+)")

# check::Mutex name{check::LockRank::kX, "printable"} — member or local,
# brace or paren init, optional namespace qualification on either token.
MUTEX_DECL_RE = re.compile(
    r"\b(?:check::)?(Mutex|RecursiveMutex)\s+(\w+)\s*[{(]\s*"
    r"(?:check::)?LockRank::k(\w+)\s*,\s*\"([^\"]*)\"",
    re.DOTALL,
)
# auto var = std::make_shared<check::Mutex>(check::LockRank::kX, "name")
MUTEX_MAKE_RE = re.compile(
    r"\b(\w+)\s*=\s*std::make_(?:shared|unique)<\s*(?:check::)?"
    r"(Mutex|RecursiveMutex)\s*>\s*\(\s*(?:check::)?LockRank::k(\w+)\s*,\s*"
    r"\"([^\"]*)\"",
    re.DOTALL,
)

ACQ_RE = re.compile(
    r"\b(?:check::)?(Recursive)?MutexLock\s+(\w+)\s*[({]\s*"
    r"([^;{}]+?)\s*[)}]\s*;"
)
RELOCK_RE = re.compile(r"\b(\w+)\s*\.\s*(un)?lock\s*\(\s*\)")

# function-name -> required mutex exprs, harvested from declarations.
REQUIRES_DECL_RE = re.compile(
    r"\b(\w+)\s*\(((?:[^()]|\([^()]*\))*)\)\s*(?:const\s*)?(?:noexcept\s*)?"
    r"(?:PA_\w+\s*\([^()]*\)\s*)*PA_REQUIRES\s*\(([^()]*)\)"
)
# ... and inline definitions where the annotation abuts the body.
REQUIRES_INLINE_RE = re.compile(r"PA_REQUIRES\s*\(([^()]*)\)\s*\{")

CLASS_RE = re.compile(r"\b(?:class|struct)\s+(?:PA_\w+\s*\([^)]*\)\s*)?"
                      r"(\w+)[^;{()]*\{")
METHOD_DEF_RE = re.compile(
    r"\b(\w+)::(~?\w+)\s*\(((?:[^()]|\([^()]*\))*)\)")

INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')

LAMBDA_BRACE_RE = re.compile(
    r"\]\s*(?:\([^()]*(?:\([^()]*\)[^()]*)*\))?\s*(?:mutable\s*)?"
    r"(?:noexcept\s*)?(?:->\s*[\w:<>,&*\s]+?)?\s*\{$"
)


@dataclasses.dataclass(frozen=True)
class MutexDecl:
    rel: str
    line: int
    kind: str  # "Mutex" | "RecursiveMutex"
    var: str
    rank_name: str
    rank: int
    printable: str
    cls: str | None  # innermost enclosing class/struct, if any


@dataclasses.dataclass
class Edge:
    held: MutexDecl
    acquired: MutexDecl
    rel: str
    line: int


def parse_ranks(index: Index) -> dict[str, int]:
    sf = index.get(LOCK_RANK_HEADER)
    if sf is None:
        return {}
    m = re.search(r"enum\s+class\s+LockRank[^{]*\{(.*?)\}", sf.code,
                  re.DOTALL)
    if m is None:
        return {}
    return {name: int(value)
            for name, value in RANK_ENUM_RE.findall(m.group(1))}


def class_spans(sf: SourceFile) -> list[tuple[str, int, int]]:
    spans = []
    for m in CLASS_RE.finditer(sf.code):
        open_idx = m.end() - 1
        spans.append((m.group(1), open_idx, match_brace(sf.code, open_idx)))
    return spans


def innermost_class(spans: list[tuple[str, int, int]],
                    pos: int) -> str | None:
    best = None
    best_len = None
    for name, start, end in spans:
        if start <= pos <= end and (best_len is None
                                    or end - start < best_len):
            best, best_len = name, end - start
    return best


def collect_decls(index: Index, ranks: dict[str, int],
                  findings: list[Finding]) -> list[MutexDecl]:
    decls: list[MutexDecl] = []
    for sf in index.files.values():
        spans = class_spans(sf)
        for m in MUTEX_DECL_RE.finditer(sf.code):
            kind, var, rank_name, printable = m.groups()
            _add_decl(decls, findings, ranks, sf, spans, m.start(), kind,
                      var, rank_name, printable)
        for m in MUTEX_MAKE_RE.finditer(sf.code):
            var, kind, rank_name, printable = m.groups()
            _add_decl(decls, findings, ranks, sf, spans, m.start(), kind,
                      var, rank_name, printable)
    return decls


def _add_decl(decls, findings, ranks, sf: SourceFile, spans, pos: int,
              kind: str, var: str, rank_name: str, printable: str) -> None:
    line = line_of(sf.code, pos)
    if rank_name not in ranks:
        findings.append(Finding(sf.rel, line, PASS,
                                f"mutex `{var}` declares unknown rank "
                                f"LockRank::k{rank_name}"))
        return
    decls.append(MutexDecl(sf.rel, line, kind, var, rank_name,
                           ranks[rank_name], printable,
                           innermost_class(spans, pos)))


def collect_requires(index: Index) -> dict[str, list[str]]:
    """function name -> mutex member exprs its declarations require held."""
    out: dict[str, list[str]] = {}
    for sf in index.files.values():
        for m in REQUIRES_DECL_RE.finditer(sf.code):
            name, caps = m.group(1), m.group(3)
            exprs = [c.strip() for c in caps.split(",") if c.strip()]
            if exprs:
                out.setdefault(name, [])
                for e in exprs:
                    if e not in out[name]:
                        out[name].append(e)
    return out


def base_name(expr: str) -> str:
    """Last identifier of a mutex expression: `impl_->mu` -> mu,
    `p.mutex` -> mutex, `*window_mutex` -> window_mutex, `mutex()` ->
    mutex."""
    expr = expr.strip()
    expr = re.sub(r"\(\s*\)\s*$", "", expr)
    parts = re.split(r"->|\.|::", expr)
    m = re.search(r"(\w+)\s*$", parts[-1].strip().lstrip("*&"))
    return m.group(1) if m else expr


class Resolver:
    """Maps an acquisition expression to a MutexDecl with class context."""

    def __init__(self, index: Index, decls: list[MutexDecl]):
        self.by_name: dict[str, list[MutexDecl]] = {}
        self.by_file: dict[str, list[MutexDecl]] = {}
        for d in decls:
            self.by_name.setdefault(d.var, []).append(d)
            self.by_file.setdefault(d.rel, []).append(d)
        self.includes: dict[str, list[str]] = {}
        for sf in index.files.values():
            incs = []
            for inc in INCLUDE_RE.findall(sf.code):
                rel = f"include/{inc}"
                if rel in index.files:
                    incs.append(rel)
            self.includes[sf.rel] = incs

    def resolve(self, rel: str, cls: str | None, expr: str,
                line: int) -> MutexDecl | list[MutexDecl] | None:
        """A MutexDecl on success, a non-empty candidate list when the
        name stays ambiguous across ranks, None when entirely unknown."""
        name = base_name(expr)
        if expr.rstrip().endswith("()"):
            # Accessor form (`mutex()`): the name is a function, not the
            # member — a file with exactly one declared mutex is
            # unambiguous whatever the accessor is called.
            own = self.by_file.get(rel, [])
            if len({d.rank for d in own}) == 1 and own:
                return own[0]
        candidates = self.by_name.get(name, [])
        reachable = set(self.includes.get(rel, ())) | {rel}
        pools = [
            [d for d in candidates if d.rel == rel and d.cls == cls],
            [d for d in candidates if d.rel in reachable and d.cls == cls],
            [d for d in candidates if d.rel == rel],
            [d for d in candidates if d.rel in reachable],
            candidates,
        ]
        for k, pool in enumerate(pools):
            if not pool:
                continue
            if len({d.rank for d in pool}) == 1:
                return pool[0]
            if k in (0, 2):
                # Same-file collision: several function-local mutexes may
                # share a name (one per test body). Lexically nearest
                # preceding declaration wins, like actual scoping.
                preceding = [d for d in pool if d.line <= line]
                if preceding:
                    return max(preceding, key=lambda d: d.line)
            if pool is pools[-1]:
                return pool  # ambiguous everywhere
        return None


@dataclasses.dataclass
class Held:
    decl: MutexDecl
    lock_var: str
    depth: int
    active: bool = True


def analyze_file(sf: SourceFile, resolver: Resolver,
                 requires: dict[str, list[str]],
                 findings: list[Finding], edges: list[Edge]) -> None:
    code = sf.code
    spans = class_spans(sf)

    acq_at = {m.start(): m for m in ACQ_RE.finditer(code)}
    relock_at = {m.start(): m for m in RELOCK_RE.finditer(code)}

    # Method-definition spans give acquisitions their class context, and
    # annotated methods their entry-held locks.
    method_cls_at: list[tuple[int, int, str]] = []  # (open, close, class)
    entry_held_at: dict[int, list[str]] = {}
    for m in METHOD_DEF_RE.finditer(code):
        cls, fname = m.group(1), m.group(2)
        close = match_paren(code, code.find("(", m.start(1)))
        brace = re.match(
            r"\s*(?:const\s*)?(?:noexcept\s*)?"
            r"(?:PA_\w+\s*\([^()]*\)\s*)*(?::\s*[^{;]*)?\{",
            code[close + 1:close + 400])
        if not brace:
            continue
        open_idx = close + 1 + brace.end() - 1
        method_cls_at.append((open_idx, match_brace(code, open_idx), cls))
        if fname in requires:
            entry_held_at.setdefault(open_idx, []).extend(requires[fname])
    # Inline definitions whose PA_REQUIRES abuts the body.
    for m in REQUIRES_INLINE_RE.finditer(code):
        exprs = [c.strip() for c in m.group(1).split(",") if c.strip()]
        if exprs:
            entry_held_at.setdefault(m.end() - 1, []).extend(exprs)

    def context_class(pos: int) -> str | None:
        for open_idx, close_idx, cls in method_cls_at:
            if open_idx <= pos <= close_idx:
                return cls
        return innermost_class(spans, pos)

    held: list[Held] = []
    barriers: list[int] = []  # depths at which a lambda body starts
    depth = 0

    def visible_held() -> list[Held]:
        floor = barriers[-1] if barriers else 0
        return [h for h in held if h.active and h.depth >= floor]

    def check_edge(h: Held, acq: MutexDecl, line: int) -> None:
        if acq.rank > h.decl.rank:
            return
        if h.decl is acq and acq.kind == "RecursiveMutex":
            return  # legal re-entry by the holding thread
        if acq.rank < h.decl.rank:
            findings.append(Finding(
                sf.rel, line, PASS,
                f"lock-order inversion: acquires `{acq.printable}` "
                f"(rank {acq.rank}, k{acq.rank_name}) while holding "
                f"`{h.decl.printable}` (rank {h.decl.rank}, "
                f"k{h.decl.rank_name}) — ranks must strictly increase"))
        else:
            findings.append(Finding(
                sf.rel, line, PASS,
                f"lock-order tie: acquires `{acq.printable}` at rank "
                f"{acq.rank} while already holding `{h.decl.printable}` "
                f"at the same rank — equal ranks never nest"))

    def do_acquire(m: re.Match) -> None:
        lock_var, expr = m.group(2), m.group(3)
        line = line_of(code, m.start())
        resolved = resolver.resolve(sf.rel, context_class(m.start()), expr,
                                    line)
        if resolved is None:
            findings.append(Finding(
                sf.rel, line, PASS,
                f"cannot resolve mutex `{expr}` to a ranked declaration — "
                f"declare it as check::Mutex{{LockRank::..., \"name\"}}"))
            return
        if isinstance(resolved, list):
            ranks = sorted({f"k{d.rank_name}({d.rank})" for d in resolved})
            findings.append(Finding(
                sf.rel, line, PASS,
                f"mutex `{expr}` is ambiguous across ranks "
                f"{', '.join(ranks)} — rename the member so the "
                f"acquisition resolves uniquely"))
            return
        visible = visible_held()
        reentry = resolved.kind == "RecursiveMutex" and any(
            h.decl is resolved for h in visible)
        if not reentry:
            # Re-entry by the holding thread is exempt from the rank rule
            # (the runtime validator exempts it too); a fresh acquisition
            # is checked against every lock visible in this context.
            for h in visible:
                edges.append(Edge(h.decl, resolved, sf.rel, line))
                check_edge(h, resolved, line)
        held.append(Held(resolved, lock_var, depth))

    for pos, c in iter_code(code):
        if pos in acq_at:
            do_acquire(acq_at[pos])
        elif pos in relock_at:
            m = relock_at[pos]
            var, is_unlock = m.group(1), m.group(2) is not None
            for h in reversed(held):
                if h.lock_var == var:
                    h.active = not is_unlock
                    break
        if c == "{":
            depth += 1
            if pos in entry_held_at:
                for expr in entry_held_at[pos]:
                    r = resolver.resolve(sf.rel, context_class(pos), expr,
                                         line_of(code, pos))
                    if isinstance(r, MutexDecl):
                        # Best-effort: unresolved entry annotations (the
                        # name collides with another class's helper) are
                        # skipped, not reported.
                        held.append(Held(r, f"<entry:{expr}>", depth))
            else:
                window = code[max(0, pos - 240):pos + 1]
                if LAMBDA_BRACE_RE.search(window):
                    barriers.append(depth)
        elif c == "}":
            while held and held[-1].depth >= depth:
                held.pop()
            if barriers and barriers[-1] >= depth:
                barriers.pop()
            depth -= 1


def library_table(ranks: dict[str, int], decls: list[MutexDecl],
                  edges: list[Edge]) -> str:
    """The generated lock table: one row per declared rank with the
    library mutexes at that rank and the ranks observed acquired while one
    of them is held. Derived entirely from code; DESIGN.md embeds it
    between markers and this pass fails on drift."""

    def is_library(rel: str) -> bool:
        return rel.startswith("include/") or rel.startswith("src/")

    instances: dict[int, set[str]] = {}
    for d in decls:
        if is_library(d.rel):
            instances.setdefault(d.rank, set()).add(d.printable)
    nests: dict[int, set[int]] = {}
    for e in edges:
        if is_library(e.rel):
            nests.setdefault(e.held.rank, set()).add(e.acquired.rank)

    lines = [
        "| Rank | Enum (`check::LockRank`) | Library mutexes | "
        "Acquires while held (observed ranks) |",
        "|-----:|------|------|------|",
    ]
    for name, value in sorted(ranks.items(), key=lambda kv: kv[1]):
        names = ", ".join(f"`{n}`" for n in sorted(instances.get(value, ())))
        over = ", ".join(str(r) for r in sorted(nests.get(value, ())))
        lines.append(f"| {value} | `k{name}` | {names or '—'} | "
                     f"{over or '—'} |")
    return "\n".join(lines) + "\n"


def build(index: Index) -> tuple[list[Finding], str]:
    """Runs the graph analysis; returns (findings, generated table)."""
    findings: list[Finding] = []
    ranks = parse_ranks(index)
    if not ranks:
        findings.append(Finding(LOCK_RANK_HEADER, 1, PASS,
                                "could not parse the LockRank enum"))
        return findings, ""
    decls = collect_decls(index, ranks, findings)
    resolver = Resolver(index, decls)
    requires = collect_requires(index)
    edges: list[Edge] = []
    for sf in index.files.values():
        analyze_file(sf, resolver, requires, findings, edges)
    return findings, library_table(ranks, decls, edges)


def emit_lock_table(index: Index) -> str:
    return build(index)[1]


def check_design_table(index: Index, table: str,
                       findings: list[Finding]) -> None:
    design_path = Path(index.root) / DESIGN_FILE
    if not design_path.is_file():
        findings.append(Finding(DESIGN_FILE, 1, PASS,
                                "DESIGN.md missing — the lock table lives "
                                "there between pa_analyze markers"))
        return
    text = design_path.read_text(encoding="utf-8")
    begin = text.find(TABLE_BEGIN)
    end = text.find(TABLE_END)
    if begin < 0 or end < 0 or end < begin:
        findings.append(Finding(
            DESIGN_FILE, 1, PASS,
            f"lock-table markers not found — wrap the generated table in "
            f"`{TABLE_BEGIN}` / `{TABLE_END}` (regenerate with "
            f"`python3 tools/pa_analyze --emit-lock-table`)"))
        return
    current = text[begin + len(TABLE_BEGIN):end].strip("\n")
    expected = table.strip("\n")
    if current == expected:
        return
    line = line_of(text, begin) + 1
    cur_lines = current.splitlines()
    exp_lines = expected.splitlines()
    detail = ""
    for k in range(max(len(cur_lines), len(exp_lines))):
        c = cur_lines[k] if k < len(cur_lines) else "<missing>"
        e = exp_lines[k] if k < len(exp_lines) else "<missing>"
        if c != e:
            detail = f" (first drift: checked-in `{c}` vs code `{e}`)"
            line += k
            break
    findings.append(Finding(
        DESIGN_FILE, line, PASS,
        f"lock table drifted from code{detail} — regenerate with "
        f"`python3 tools/pa_analyze --fix-lock-table`"))


def fix_design_table(index: Index) -> bool:
    """Rewrites the DESIGN.md marker block in place. True on success."""
    design_path = Path(index.root) / DESIGN_FILE
    if not design_path.is_file():
        return False
    text = design_path.read_text(encoding="utf-8")
    begin = text.find(TABLE_BEGIN)
    end = text.find(TABLE_END)
    if begin < 0 or end < 0 or end < begin:
        return False
    table = emit_lock_table(index)
    new = (text[:begin + len(TABLE_BEGIN)] + "\n" + table +
           text[end:])
    design_path.write_text(new, encoding="utf-8")
    return True


# Deliberate violations (the runtime validator's own death tests) carry a
# justified suppression on or just above the acquisition, mirroring the
# lint.py meta-rule that every suppression names its reason:
#     // pa_analyze:allow(lock-order): <reason>
ALLOW_RE = re.compile(r"pa_analyze:allow\(lock-order\)\s*:\s*\S")


def suppressed(index: Index, f: Finding) -> bool:
    sf = index.get(f.path)
    if sf is None:
        return False
    lines = sf.raw.splitlines()
    lo = max(0, f.line - 3)
    return any(ALLOW_RE.search(lines[i])
               for i in range(lo, min(f.line, len(lines))))


def run(index: Index) -> list[Finding]:
    findings, table = build(index)
    if table:
        check_design_table(index, table, findings)
    seen: set[tuple[str, int, str]] = set()
    unique: list[Finding] = []
    for f in findings:
        key = (f.path, f.line, f.message)
        if key not in seen and not suppressed(index, f):
            seen.add(key)
            unique.append(f)
    return unique
