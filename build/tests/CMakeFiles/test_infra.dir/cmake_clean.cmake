file(REMOVE_RECURSE
  "CMakeFiles/test_infra.dir/infra/test_background_load.cpp.o"
  "CMakeFiles/test_infra.dir/infra/test_background_load.cpp.o.d"
  "CMakeFiles/test_infra.dir/infra/test_batch_cluster.cpp.o"
  "CMakeFiles/test_infra.dir/infra/test_batch_cluster.cpp.o.d"
  "CMakeFiles/test_infra.dir/infra/test_cloud.cpp.o"
  "CMakeFiles/test_infra.dir/infra/test_cloud.cpp.o.d"
  "CMakeFiles/test_infra.dir/infra/test_htc_pool.cpp.o"
  "CMakeFiles/test_infra.dir/infra/test_htc_pool.cpp.o.d"
  "CMakeFiles/test_infra.dir/infra/test_network.cpp.o"
  "CMakeFiles/test_infra.dir/infra/test_network.cpp.o.d"
  "CMakeFiles/test_infra.dir/infra/test_serverless.cpp.o"
  "CMakeFiles/test_infra.dir/infra/test_serverless.cpp.o.d"
  "CMakeFiles/test_infra.dir/infra/test_storage.cpp.o"
  "CMakeFiles/test_infra.dir/infra/test_storage.cpp.o.d"
  "test_infra"
  "test_infra.pdb"
  "test_infra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_infra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
