file(REMOVE_RECURSE
  "CMakeFiles/test_saga.dir/saga/test_session_job.cpp.o"
  "CMakeFiles/test_saga.dir/saga/test_session_job.cpp.o.d"
  "CMakeFiles/test_saga.dir/saga/test_url.cpp.o"
  "CMakeFiles/test_saga.dir/saga/test_url.cpp.o.d"
  "test_saga"
  "test_saga.pdb"
  "test_saga[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_saga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
