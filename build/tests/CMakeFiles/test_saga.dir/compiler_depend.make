# Empty compiler generated dependencies file for test_saga.
# This may be replaced when dependencies are built.
