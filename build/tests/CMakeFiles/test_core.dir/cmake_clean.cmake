file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_fault_tolerance.cpp.o"
  "CMakeFiles/test_core.dir/core/test_fault_tolerance.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_runtimes.cpp.o"
  "CMakeFiles/test_core.dir/core/test_runtimes.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_scheduler.cpp.o"
  "CMakeFiles/test_core.dir/core/test_scheduler.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_service_local.cpp.o"
  "CMakeFiles/test_core.dir/core/test_service_local.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_service_sim.cpp.o"
  "CMakeFiles/test_core.dir/core/test_service_sim.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_state_machine.cpp.o"
  "CMakeFiles/test_core.dir/core/test_state_machine.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_workload_manager.cpp.o"
  "CMakeFiles/test_core.dir/core/test_workload_manager.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
