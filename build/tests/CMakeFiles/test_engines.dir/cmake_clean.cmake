file(REMOVE_RECURSE
  "CMakeFiles/test_engines.dir/engines/test_dataflow.cpp.o"
  "CMakeFiles/test_engines.dir/engines/test_dataflow.cpp.o.d"
  "CMakeFiles/test_engines.dir/engines/test_enkf.cpp.o"
  "CMakeFiles/test_engines.dir/engines/test_enkf.cpp.o.d"
  "CMakeFiles/test_engines.dir/engines/test_ensemble.cpp.o"
  "CMakeFiles/test_engines.dir/engines/test_ensemble.cpp.o.d"
  "CMakeFiles/test_engines.dir/engines/test_iterative.cpp.o"
  "CMakeFiles/test_engines.dir/engines/test_iterative.cpp.o.d"
  "CMakeFiles/test_engines.dir/engines/test_kmeans.cpp.o"
  "CMakeFiles/test_engines.dir/engines/test_kmeans.cpp.o.d"
  "CMakeFiles/test_engines.dir/engines/test_mapreduce.cpp.o"
  "CMakeFiles/test_engines.dir/engines/test_mapreduce.cpp.o.d"
  "test_engines"
  "test_engines.pdb"
  "test_engines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
