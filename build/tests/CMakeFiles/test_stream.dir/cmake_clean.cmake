file(REMOVE_RECURSE
  "CMakeFiles/test_stream.dir/stream/test_broker.cpp.o"
  "CMakeFiles/test_stream.dir/stream/test_broker.cpp.o.d"
  "CMakeFiles/test_stream.dir/stream/test_consumer_group.cpp.o"
  "CMakeFiles/test_stream.dir/stream/test_consumer_group.cpp.o.d"
  "CMakeFiles/test_stream.dir/stream/test_pipeline.cpp.o"
  "CMakeFiles/test_stream.dir/stream/test_pipeline.cpp.o.d"
  "CMakeFiles/test_stream.dir/stream/test_windowing.cpp.o"
  "CMakeFiles/test_stream.dir/stream/test_windowing.cpp.o.d"
  "test_stream"
  "test_stream.pdb"
  "test_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
