# Empty dependencies file for test_miniapp.
# This may be replaced when dependencies are built.
