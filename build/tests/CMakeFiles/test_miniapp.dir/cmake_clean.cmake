file(REMOVE_RECURSE
  "CMakeFiles/test_miniapp.dir/miniapp/test_experiment.cpp.o"
  "CMakeFiles/test_miniapp.dir/miniapp/test_experiment.cpp.o.d"
  "CMakeFiles/test_miniapp.dir/miniapp/test_task_profile.cpp.o"
  "CMakeFiles/test_miniapp.dir/miniapp/test_task_profile.cpp.o.d"
  "CMakeFiles/test_miniapp.dir/miniapp/test_workloads.cpp.o"
  "CMakeFiles/test_miniapp.dir/miniapp/test_workloads.cpp.o.d"
  "test_miniapp"
  "test_miniapp.pdb"
  "test_miniapp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_miniapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
