# Empty compiler generated dependencies file for lightsource_streaming.
# This may be replaced when dependencies are built.
