file(REMOVE_RECURSE
  "CMakeFiles/lightsource_streaming.dir/lightsource_streaming.cpp.o"
  "CMakeFiles/lightsource_streaming.dir/lightsource_streaming.cpp.o.d"
  "lightsource_streaming"
  "lightsource_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightsource_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
