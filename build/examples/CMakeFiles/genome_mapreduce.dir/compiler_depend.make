# Empty compiler generated dependencies file for genome_mapreduce.
# This may be replaced when dependencies are built.
