file(REMOVE_RECURSE
  "CMakeFiles/genome_mapreduce.dir/genome_mapreduce.cpp.o"
  "CMakeFiles/genome_mapreduce.dir/genome_mapreduce.cpp.o.d"
  "genome_mapreduce"
  "genome_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genome_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
