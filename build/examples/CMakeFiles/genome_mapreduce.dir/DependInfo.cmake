
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/genome_mapreduce.cpp" "examples/CMakeFiles/genome_mapreduce.dir/genome_mapreduce.cpp.o" "gcc" "examples/CMakeFiles/genome_mapreduce.dir/genome_mapreduce.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/pa_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/saga/CMakeFiles/pa_saga.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pa_data.dir/DependInfo.cmake"
  "/root/repo/build/src/infra/CMakeFiles/pa_infra.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/pa_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/engines/CMakeFiles/pa_engines.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pa_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/pa_models.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/miniapp/CMakeFiles/pa_miniapp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
