# Empty compiler generated dependencies file for replica_exchange.
# This may be replaced when dependencies are built.
