file(REMOVE_RECURSE
  "CMakeFiles/replica_exchange.dir/replica_exchange.cpp.o"
  "CMakeFiles/replica_exchange.dir/replica_exchange.cpp.o.d"
  "replica_exchange"
  "replica_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
