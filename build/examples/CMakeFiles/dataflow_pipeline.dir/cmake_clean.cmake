file(REMOVE_RECURSE
  "CMakeFiles/dataflow_pipeline.dir/dataflow_pipeline.cpp.o"
  "CMakeFiles/dataflow_pipeline.dir/dataflow_pipeline.cpp.o.d"
  "dataflow_pipeline"
  "dataflow_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataflow_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
