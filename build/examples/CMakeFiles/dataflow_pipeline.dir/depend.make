# Empty dependencies file for dataflow_pipeline.
# This may be replaced when dependencies are built.
