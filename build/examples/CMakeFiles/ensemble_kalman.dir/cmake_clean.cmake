file(REMOVE_RECURSE
  "CMakeFiles/ensemble_kalman.dir/ensemble_kalman.cpp.o"
  "CMakeFiles/ensemble_kalman.dir/ensemble_kalman.cpp.o.d"
  "ensemble_kalman"
  "ensemble_kalman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_kalman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
