# Empty dependencies file for ensemble_kalman.
# This may be replaced when dependencies are built.
