file(REMOVE_RECURSE
  "CMakeFiles/cloud_bursting.dir/cloud_bursting.cpp.o"
  "CMakeFiles/cloud_bursting.dir/cloud_bursting.cpp.o.d"
  "cloud_bursting"
  "cloud_bursting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_bursting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
