# Empty dependencies file for cloud_bursting.
# This may be replaced when dependencies are built.
