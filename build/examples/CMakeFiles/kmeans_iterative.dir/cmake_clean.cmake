file(REMOVE_RECURSE
  "CMakeFiles/kmeans_iterative.dir/kmeans_iterative.cpp.o"
  "CMakeFiles/kmeans_iterative.dir/kmeans_iterative.cpp.o.d"
  "kmeans_iterative"
  "kmeans_iterative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmeans_iterative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
