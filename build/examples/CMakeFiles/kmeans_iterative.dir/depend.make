# Empty dependencies file for kmeans_iterative.
# This may be replaced when dependencies are built.
