
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bursting.cpp" "src/core/CMakeFiles/pa_core.dir/bursting.cpp.o" "gcc" "src/core/CMakeFiles/pa_core.dir/bursting.cpp.o.d"
  "/root/repo/src/core/pilot_compute_service.cpp" "src/core/CMakeFiles/pa_core.dir/pilot_compute_service.cpp.o" "gcc" "src/core/CMakeFiles/pa_core.dir/pilot_compute_service.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/pa_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/pa_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/state_machine.cpp" "src/core/CMakeFiles/pa_core.dir/state_machine.cpp.o" "gcc" "src/core/CMakeFiles/pa_core.dir/state_machine.cpp.o.d"
  "/root/repo/src/core/workload_manager.cpp" "src/core/CMakeFiles/pa_core.dir/workload_manager.cpp.o" "gcc" "src/core/CMakeFiles/pa_core.dir/workload_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
