# Empty dependencies file for pa_core.
# This may be replaced when dependencies are built.
