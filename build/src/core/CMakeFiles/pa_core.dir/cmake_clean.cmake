file(REMOVE_RECURSE
  "CMakeFiles/pa_core.dir/bursting.cpp.o"
  "CMakeFiles/pa_core.dir/bursting.cpp.o.d"
  "CMakeFiles/pa_core.dir/pilot_compute_service.cpp.o"
  "CMakeFiles/pa_core.dir/pilot_compute_service.cpp.o.d"
  "CMakeFiles/pa_core.dir/scheduler.cpp.o"
  "CMakeFiles/pa_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/pa_core.dir/state_machine.cpp.o"
  "CMakeFiles/pa_core.dir/state_machine.cpp.o.d"
  "CMakeFiles/pa_core.dir/workload_manager.cpp.o"
  "CMakeFiles/pa_core.dir/workload_manager.cpp.o.d"
  "libpa_core.a"
  "libpa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
