file(REMOVE_RECURSE
  "CMakeFiles/pa_infra.dir/background_load.cpp.o"
  "CMakeFiles/pa_infra.dir/background_load.cpp.o.d"
  "CMakeFiles/pa_infra.dir/batch_cluster.cpp.o"
  "CMakeFiles/pa_infra.dir/batch_cluster.cpp.o.d"
  "CMakeFiles/pa_infra.dir/cloud.cpp.o"
  "CMakeFiles/pa_infra.dir/cloud.cpp.o.d"
  "CMakeFiles/pa_infra.dir/htc_pool.cpp.o"
  "CMakeFiles/pa_infra.dir/htc_pool.cpp.o.d"
  "CMakeFiles/pa_infra.dir/network.cpp.o"
  "CMakeFiles/pa_infra.dir/network.cpp.o.d"
  "CMakeFiles/pa_infra.dir/serverless.cpp.o"
  "CMakeFiles/pa_infra.dir/serverless.cpp.o.d"
  "CMakeFiles/pa_infra.dir/storage.cpp.o"
  "CMakeFiles/pa_infra.dir/storage.cpp.o.d"
  "libpa_infra.a"
  "libpa_infra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_infra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
