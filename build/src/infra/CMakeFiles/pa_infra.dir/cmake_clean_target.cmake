file(REMOVE_RECURSE
  "libpa_infra.a"
)
