
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/infra/background_load.cpp" "src/infra/CMakeFiles/pa_infra.dir/background_load.cpp.o" "gcc" "src/infra/CMakeFiles/pa_infra.dir/background_load.cpp.o.d"
  "/root/repo/src/infra/batch_cluster.cpp" "src/infra/CMakeFiles/pa_infra.dir/batch_cluster.cpp.o" "gcc" "src/infra/CMakeFiles/pa_infra.dir/batch_cluster.cpp.o.d"
  "/root/repo/src/infra/cloud.cpp" "src/infra/CMakeFiles/pa_infra.dir/cloud.cpp.o" "gcc" "src/infra/CMakeFiles/pa_infra.dir/cloud.cpp.o.d"
  "/root/repo/src/infra/htc_pool.cpp" "src/infra/CMakeFiles/pa_infra.dir/htc_pool.cpp.o" "gcc" "src/infra/CMakeFiles/pa_infra.dir/htc_pool.cpp.o.d"
  "/root/repo/src/infra/network.cpp" "src/infra/CMakeFiles/pa_infra.dir/network.cpp.o" "gcc" "src/infra/CMakeFiles/pa_infra.dir/network.cpp.o.d"
  "/root/repo/src/infra/serverless.cpp" "src/infra/CMakeFiles/pa_infra.dir/serverless.cpp.o" "gcc" "src/infra/CMakeFiles/pa_infra.dir/serverless.cpp.o.d"
  "/root/repo/src/infra/storage.cpp" "src/infra/CMakeFiles/pa_infra.dir/storage.cpp.o" "gcc" "src/infra/CMakeFiles/pa_infra.dir/storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pa_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
