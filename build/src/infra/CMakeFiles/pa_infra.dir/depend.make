# Empty dependencies file for pa_infra.
# This may be replaced when dependencies are built.
