file(REMOVE_RECURSE
  "CMakeFiles/pa_sim.dir/engine.cpp.o"
  "CMakeFiles/pa_sim.dir/engine.cpp.o.d"
  "libpa_sim.a"
  "libpa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
