file(REMOVE_RECURSE
  "libpa_sim.a"
)
