# Empty dependencies file for pa_saga.
# This may be replaced when dependencies are built.
