
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/saga/job.cpp" "src/saga/CMakeFiles/pa_saga.dir/job.cpp.o" "gcc" "src/saga/CMakeFiles/pa_saga.dir/job.cpp.o.d"
  "/root/repo/src/saga/session.cpp" "src/saga/CMakeFiles/pa_saga.dir/session.cpp.o" "gcc" "src/saga/CMakeFiles/pa_saga.dir/session.cpp.o.d"
  "/root/repo/src/saga/url.cpp" "src/saga/CMakeFiles/pa_saga.dir/url.cpp.o" "gcc" "src/saga/CMakeFiles/pa_saga.dir/url.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/infra/CMakeFiles/pa_infra.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pa_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
