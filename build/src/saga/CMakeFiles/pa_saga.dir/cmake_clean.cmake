file(REMOVE_RECURSE
  "CMakeFiles/pa_saga.dir/job.cpp.o"
  "CMakeFiles/pa_saga.dir/job.cpp.o.d"
  "CMakeFiles/pa_saga.dir/session.cpp.o"
  "CMakeFiles/pa_saga.dir/session.cpp.o.d"
  "CMakeFiles/pa_saga.dir/url.cpp.o"
  "CMakeFiles/pa_saga.dir/url.cpp.o.d"
  "libpa_saga.a"
  "libpa_saga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_saga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
