file(REMOVE_RECURSE
  "libpa_saga.a"
)
