
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/planner.cpp" "src/models/CMakeFiles/pa_models.dir/planner.cpp.o" "gcc" "src/models/CMakeFiles/pa_models.dir/planner.cpp.o.d"
  "/root/repo/src/models/queueing.cpp" "src/models/CMakeFiles/pa_models.dir/queueing.cpp.o" "gcc" "src/models/CMakeFiles/pa_models.dir/queueing.cpp.o.d"
  "/root/repo/src/models/regression.cpp" "src/models/CMakeFiles/pa_models.dir/regression.cpp.o" "gcc" "src/models/CMakeFiles/pa_models.dir/regression.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pa_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
