file(REMOVE_RECURSE
  "CMakeFiles/pa_models.dir/planner.cpp.o"
  "CMakeFiles/pa_models.dir/planner.cpp.o.d"
  "CMakeFiles/pa_models.dir/queueing.cpp.o"
  "CMakeFiles/pa_models.dir/queueing.cpp.o.d"
  "CMakeFiles/pa_models.dir/regression.cpp.o"
  "CMakeFiles/pa_models.dir/regression.cpp.o.d"
  "libpa_models.a"
  "libpa_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
