file(REMOVE_RECURSE
  "libpa_models.a"
)
