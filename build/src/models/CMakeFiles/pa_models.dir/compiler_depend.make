# Empty compiler generated dependencies file for pa_models.
# This may be replaced when dependencies are built.
