# Empty compiler generated dependencies file for pa_engines.
# This may be replaced when dependencies are built.
