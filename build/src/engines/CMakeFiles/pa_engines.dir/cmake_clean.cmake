file(REMOVE_RECURSE
  "CMakeFiles/pa_engines.dir/dataflow.cpp.o"
  "CMakeFiles/pa_engines.dir/dataflow.cpp.o.d"
  "CMakeFiles/pa_engines.dir/enkf.cpp.o"
  "CMakeFiles/pa_engines.dir/enkf.cpp.o.d"
  "CMakeFiles/pa_engines.dir/ensemble.cpp.o"
  "CMakeFiles/pa_engines.dir/ensemble.cpp.o.d"
  "CMakeFiles/pa_engines.dir/iterative.cpp.o"
  "CMakeFiles/pa_engines.dir/iterative.cpp.o.d"
  "CMakeFiles/pa_engines.dir/kmeans.cpp.o"
  "CMakeFiles/pa_engines.dir/kmeans.cpp.o.d"
  "libpa_engines.a"
  "libpa_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
