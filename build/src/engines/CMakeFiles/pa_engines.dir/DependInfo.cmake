
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engines/dataflow.cpp" "src/engines/CMakeFiles/pa_engines.dir/dataflow.cpp.o" "gcc" "src/engines/CMakeFiles/pa_engines.dir/dataflow.cpp.o.d"
  "/root/repo/src/engines/enkf.cpp" "src/engines/CMakeFiles/pa_engines.dir/enkf.cpp.o" "gcc" "src/engines/CMakeFiles/pa_engines.dir/enkf.cpp.o.d"
  "/root/repo/src/engines/ensemble.cpp" "src/engines/CMakeFiles/pa_engines.dir/ensemble.cpp.o" "gcc" "src/engines/CMakeFiles/pa_engines.dir/ensemble.cpp.o.d"
  "/root/repo/src/engines/iterative.cpp" "src/engines/CMakeFiles/pa_engines.dir/iterative.cpp.o" "gcc" "src/engines/CMakeFiles/pa_engines.dir/iterative.cpp.o.d"
  "/root/repo/src/engines/kmeans.cpp" "src/engines/CMakeFiles/pa_engines.dir/kmeans.cpp.o" "gcc" "src/engines/CMakeFiles/pa_engines.dir/kmeans.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pa_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/pa_models.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pa_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
