file(REMOVE_RECURSE
  "libpa_engines.a"
)
