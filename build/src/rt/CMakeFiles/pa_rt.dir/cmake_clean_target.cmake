file(REMOVE_RECURSE
  "libpa_rt.a"
)
