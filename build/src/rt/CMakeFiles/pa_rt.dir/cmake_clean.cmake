file(REMOVE_RECURSE
  "CMakeFiles/pa_rt.dir/local_runtime.cpp.o"
  "CMakeFiles/pa_rt.dir/local_runtime.cpp.o.d"
  "CMakeFiles/pa_rt.dir/sim_runtime.cpp.o"
  "CMakeFiles/pa_rt.dir/sim_runtime.cpp.o.d"
  "libpa_rt.a"
  "libpa_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
