# Empty compiler generated dependencies file for pa_rt.
# This may be replaced when dependencies are built.
