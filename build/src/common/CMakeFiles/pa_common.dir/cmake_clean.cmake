file(REMOVE_RECURSE
  "CMakeFiles/pa_common.dir/config.cpp.o"
  "CMakeFiles/pa_common.dir/config.cpp.o.d"
  "CMakeFiles/pa_common.dir/error.cpp.o"
  "CMakeFiles/pa_common.dir/error.cpp.o.d"
  "CMakeFiles/pa_common.dir/histogram.cpp.o"
  "CMakeFiles/pa_common.dir/histogram.cpp.o.d"
  "CMakeFiles/pa_common.dir/log.cpp.o"
  "CMakeFiles/pa_common.dir/log.cpp.o.d"
  "CMakeFiles/pa_common.dir/stats.cpp.o"
  "CMakeFiles/pa_common.dir/stats.cpp.o.d"
  "CMakeFiles/pa_common.dir/table.cpp.o"
  "CMakeFiles/pa_common.dir/table.cpp.o.d"
  "CMakeFiles/pa_common.dir/thread_pool.cpp.o"
  "CMakeFiles/pa_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/pa_common.dir/time_utils.cpp.o"
  "CMakeFiles/pa_common.dir/time_utils.cpp.o.d"
  "libpa_common.a"
  "libpa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
