# Empty dependencies file for pa_stream.
# This may be replaced when dependencies are built.
