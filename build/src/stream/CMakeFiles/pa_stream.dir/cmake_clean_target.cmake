file(REMOVE_RECURSE
  "libpa_stream.a"
)
