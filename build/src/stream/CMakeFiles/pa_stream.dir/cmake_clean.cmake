file(REMOVE_RECURSE
  "CMakeFiles/pa_stream.dir/broker.cpp.o"
  "CMakeFiles/pa_stream.dir/broker.cpp.o.d"
  "CMakeFiles/pa_stream.dir/consumer.cpp.o"
  "CMakeFiles/pa_stream.dir/consumer.cpp.o.d"
  "CMakeFiles/pa_stream.dir/pilot_streaming.cpp.o"
  "CMakeFiles/pa_stream.dir/pilot_streaming.cpp.o.d"
  "CMakeFiles/pa_stream.dir/producer.cpp.o"
  "CMakeFiles/pa_stream.dir/producer.cpp.o.d"
  "CMakeFiles/pa_stream.dir/windowing.cpp.o"
  "CMakeFiles/pa_stream.dir/windowing.cpp.o.d"
  "libpa_stream.a"
  "libpa_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
