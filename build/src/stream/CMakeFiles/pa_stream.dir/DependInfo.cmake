
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/broker.cpp" "src/stream/CMakeFiles/pa_stream.dir/broker.cpp.o" "gcc" "src/stream/CMakeFiles/pa_stream.dir/broker.cpp.o.d"
  "/root/repo/src/stream/consumer.cpp" "src/stream/CMakeFiles/pa_stream.dir/consumer.cpp.o" "gcc" "src/stream/CMakeFiles/pa_stream.dir/consumer.cpp.o.d"
  "/root/repo/src/stream/pilot_streaming.cpp" "src/stream/CMakeFiles/pa_stream.dir/pilot_streaming.cpp.o" "gcc" "src/stream/CMakeFiles/pa_stream.dir/pilot_streaming.cpp.o.d"
  "/root/repo/src/stream/producer.cpp" "src/stream/CMakeFiles/pa_stream.dir/producer.cpp.o" "gcc" "src/stream/CMakeFiles/pa_stream.dir/producer.cpp.o.d"
  "/root/repo/src/stream/windowing.cpp" "src/stream/CMakeFiles/pa_stream.dir/windowing.cpp.o" "gcc" "src/stream/CMakeFiles/pa_stream.dir/windowing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
