# Empty compiler generated dependencies file for pa_miniapp.
# This may be replaced when dependencies are built.
