file(REMOVE_RECURSE
  "CMakeFiles/pa_miniapp.dir/experiment.cpp.o"
  "CMakeFiles/pa_miniapp.dir/experiment.cpp.o.d"
  "CMakeFiles/pa_miniapp.dir/task_profile.cpp.o"
  "CMakeFiles/pa_miniapp.dir/task_profile.cpp.o.d"
  "CMakeFiles/pa_miniapp.dir/workloads.cpp.o"
  "CMakeFiles/pa_miniapp.dir/workloads.cpp.o.d"
  "libpa_miniapp.a"
  "libpa_miniapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_miniapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
