
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/miniapp/experiment.cpp" "src/miniapp/CMakeFiles/pa_miniapp.dir/experiment.cpp.o" "gcc" "src/miniapp/CMakeFiles/pa_miniapp.dir/experiment.cpp.o.d"
  "/root/repo/src/miniapp/task_profile.cpp" "src/miniapp/CMakeFiles/pa_miniapp.dir/task_profile.cpp.o" "gcc" "src/miniapp/CMakeFiles/pa_miniapp.dir/task_profile.cpp.o.d"
  "/root/repo/src/miniapp/workloads.cpp" "src/miniapp/CMakeFiles/pa_miniapp.dir/workloads.cpp.o" "gcc" "src/miniapp/CMakeFiles/pa_miniapp.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
