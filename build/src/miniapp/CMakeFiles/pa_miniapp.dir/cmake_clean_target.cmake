file(REMOVE_RECURSE
  "libpa_miniapp.a"
)
