file(REMOVE_RECURSE
  "CMakeFiles/pa_data.dir/pilot_data_service.cpp.o"
  "CMakeFiles/pa_data.dir/pilot_data_service.cpp.o.d"
  "libpa_data.a"
  "libpa_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
