file(REMOVE_RECURSE
  "libpa_data.a"
)
