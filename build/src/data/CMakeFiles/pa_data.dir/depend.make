# Empty dependencies file for pa_data.
# This may be replaced when dependencies are built.
