# Empty dependencies file for pa_mem.
# This may be replaced when dependencies are built.
