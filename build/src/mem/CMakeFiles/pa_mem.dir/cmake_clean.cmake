file(REMOVE_RECURSE
  "CMakeFiles/pa_mem.dir/in_memory_store.cpp.o"
  "CMakeFiles/pa_mem.dir/in_memory_store.cpp.o.d"
  "libpa_mem.a"
  "libpa_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
