file(REMOVE_RECURSE
  "libpa_mem.a"
)
