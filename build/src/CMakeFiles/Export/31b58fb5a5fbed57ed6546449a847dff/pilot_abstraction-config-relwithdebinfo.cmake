#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "pa::pa_common" for configuration "RelWithDebInfo"
set_property(TARGET pa::pa_common APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(pa::pa_common PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpa_common.a"
  )

list(APPEND _cmake_import_check_targets pa::pa_common )
list(APPEND _cmake_import_check_files_for_pa::pa_common "${_IMPORT_PREFIX}/lib/libpa_common.a" )

# Import target "pa::pa_sim" for configuration "RelWithDebInfo"
set_property(TARGET pa::pa_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(pa::pa_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpa_sim.a"
  )

list(APPEND _cmake_import_check_targets pa::pa_sim )
list(APPEND _cmake_import_check_files_for_pa::pa_sim "${_IMPORT_PREFIX}/lib/libpa_sim.a" )

# Import target "pa::pa_infra" for configuration "RelWithDebInfo"
set_property(TARGET pa::pa_infra APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(pa::pa_infra PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpa_infra.a"
  )

list(APPEND _cmake_import_check_targets pa::pa_infra )
list(APPEND _cmake_import_check_files_for_pa::pa_infra "${_IMPORT_PREFIX}/lib/libpa_infra.a" )

# Import target "pa::pa_saga" for configuration "RelWithDebInfo"
set_property(TARGET pa::pa_saga APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(pa::pa_saga PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpa_saga.a"
  )

list(APPEND _cmake_import_check_targets pa::pa_saga )
list(APPEND _cmake_import_check_files_for_pa::pa_saga "${_IMPORT_PREFIX}/lib/libpa_saga.a" )

# Import target "pa::pa_core" for configuration "RelWithDebInfo"
set_property(TARGET pa::pa_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(pa::pa_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpa_core.a"
  )

list(APPEND _cmake_import_check_targets pa::pa_core )
list(APPEND _cmake_import_check_files_for_pa::pa_core "${_IMPORT_PREFIX}/lib/libpa_core.a" )

# Import target "pa::pa_rt" for configuration "RelWithDebInfo"
set_property(TARGET pa::pa_rt APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(pa::pa_rt PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpa_rt.a"
  )

list(APPEND _cmake_import_check_targets pa::pa_rt )
list(APPEND _cmake_import_check_files_for_pa::pa_rt "${_IMPORT_PREFIX}/lib/libpa_rt.a" )

# Import target "pa::pa_data" for configuration "RelWithDebInfo"
set_property(TARGET pa::pa_data APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(pa::pa_data PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpa_data.a"
  )

list(APPEND _cmake_import_check_targets pa::pa_data )
list(APPEND _cmake_import_check_files_for_pa::pa_data "${_IMPORT_PREFIX}/lib/libpa_data.a" )

# Import target "pa::pa_mem" for configuration "RelWithDebInfo"
set_property(TARGET pa::pa_mem APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(pa::pa_mem PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpa_mem.a"
  )

list(APPEND _cmake_import_check_targets pa::pa_mem )
list(APPEND _cmake_import_check_files_for_pa::pa_mem "${_IMPORT_PREFIX}/lib/libpa_mem.a" )

# Import target "pa::pa_stream" for configuration "RelWithDebInfo"
set_property(TARGET pa::pa_stream APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(pa::pa_stream PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpa_stream.a"
  )

list(APPEND _cmake_import_check_targets pa::pa_stream )
list(APPEND _cmake_import_check_files_for_pa::pa_stream "${_IMPORT_PREFIX}/lib/libpa_stream.a" )

# Import target "pa::pa_models" for configuration "RelWithDebInfo"
set_property(TARGET pa::pa_models APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(pa::pa_models PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpa_models.a"
  )

list(APPEND _cmake_import_check_targets pa::pa_models )
list(APPEND _cmake_import_check_files_for_pa::pa_models "${_IMPORT_PREFIX}/lib/libpa_models.a" )

# Import target "pa::pa_engines" for configuration "RelWithDebInfo"
set_property(TARGET pa::pa_engines APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(pa::pa_engines PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpa_engines.a"
  )

list(APPEND _cmake_import_check_targets pa::pa_engines )
list(APPEND _cmake_import_check_files_for_pa::pa_engines "${_IMPORT_PREFIX}/lib/libpa_engines.a" )

# Import target "pa::pa_miniapp" for configuration "RelWithDebInfo"
set_property(TARGET pa::pa_miniapp APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(pa::pa_miniapp PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libpa_miniapp.a"
  )

list(APPEND _cmake_import_check_targets pa::pa_miniapp )
list(APPEND _cmake_import_check_files_for_pa::pa_miniapp "${_IMPORT_PREFIX}/lib/libpa_miniapp.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
