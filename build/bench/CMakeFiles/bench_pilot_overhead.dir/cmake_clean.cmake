file(REMOVE_RECURSE
  "CMakeFiles/bench_pilot_overhead.dir/bench_pilot_overhead.cpp.o"
  "CMakeFiles/bench_pilot_overhead.dir/bench_pilot_overhead.cpp.o.d"
  "bench_pilot_overhead"
  "bench_pilot_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pilot_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
