# Empty compiler generated dependencies file for bench_pilot_overhead.
# This may be replaced when dependencies are built.
