# Empty compiler generated dependencies file for bench_iterative.
# This may be replaced when dependencies are built.
