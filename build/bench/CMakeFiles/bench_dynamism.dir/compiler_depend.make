# Empty compiler generated dependencies file for bench_dynamism.
# This may be replaced when dependencies are built.
