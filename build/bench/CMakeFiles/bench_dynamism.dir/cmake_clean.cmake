file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamism.dir/bench_dynamism.cpp.o"
  "CMakeFiles/bench_dynamism.dir/bench_dynamism.cpp.o.d"
  "bench_dynamism"
  "bench_dynamism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
