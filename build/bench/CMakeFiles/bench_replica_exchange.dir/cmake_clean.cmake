file(REMOVE_RECURSE
  "CMakeFiles/bench_replica_exchange.dir/bench_replica_exchange.cpp.o"
  "CMakeFiles/bench_replica_exchange.dir/bench_replica_exchange.cpp.o.d"
  "bench_replica_exchange"
  "bench_replica_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_replica_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
