# Empty compiler generated dependencies file for bench_replica_exchange.
# This may be replaced when dependencies are built.
