# Empty compiler generated dependencies file for bench_pilot_data.
# This may be replaced when dependencies are built.
