file(REMOVE_RECURSE
  "CMakeFiles/bench_pilot_data.dir/bench_pilot_data.cpp.o"
  "CMakeFiles/bench_pilot_data.dir/bench_pilot_data.cpp.o.d"
  "bench_pilot_data"
  "bench_pilot_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pilot_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
