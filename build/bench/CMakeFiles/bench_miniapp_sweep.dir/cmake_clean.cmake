file(REMOVE_RECURSE
  "CMakeFiles/bench_miniapp_sweep.dir/bench_miniapp_sweep.cpp.o"
  "CMakeFiles/bench_miniapp_sweep.dir/bench_miniapp_sweep.cpp.o.d"
  "bench_miniapp_sweep"
  "bench_miniapp_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_miniapp_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
