# Empty compiler generated dependencies file for bench_miniapp_sweep.
# This may be replaced when dependencies are built.
