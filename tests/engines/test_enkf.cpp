#include "pa/engines/enkf.h"

#include <gtest/gtest.h>

#include <memory>

#include "pa/common/error.h"
#include "pa/infra/batch_cluster.h"
#include "pa/rt/sim_runtime.h"
#include "pa/saga/session.h"

namespace pa::engines {
namespace {

/// Simulated stack: member forecasts cost simulated time, physics runs in
/// the driver, so the filter logic is exercised at zero wall cost.
struct Stack {
  Stack() {
    infra::BatchClusterConfig cfg;
    cfg.name = "hpc";
    cfg.num_nodes = 8;
    cfg.node.cores = 8;
    session.register_resource(
        "slurm://hpc", std::make_shared<infra::BatchCluster>(engine, cfg));
    runtime = std::make_unique<rt::SimRuntime>(engine, session);
    service = std::make_unique<core::PilotComputeService>(*runtime);
    core::PilotDescription pd;
    pd.resource_url = "slurm://hpc";
    pd.nodes = 8;
    pd.walltime = 1e8;
    service->submit_pilot(pd).wait_active(3600.0);
  }

  sim::Engine engine;
  saga::Session session;
  std::unique_ptr<rt::SimRuntime> runtime;
  std::unique_ptr<core::PilotComputeService> service;
};

EnKFConfig small_config() {
  EnKFConfig cfg;
  cfg.state_dim = 8;
  cfg.obs_dim = 4;
  cfg.ensemble_size = 40;
  cfg.cycles = 25;
  cfg.seed = 99;
  return cfg;
}

TEST(EnKF, AssimilationBeatsFreeRun) {
  Stack stack;
  EnKFDriver driver(small_config());
  const EnKFResult result = driver.run(*stack.service);
  ASSERT_EQ(result.rmse_assimilated.size(), 25u);
  // The filter must track the truth far better than the unconstrained
  // ensemble over the whole run...
  EXPECT_LT(result.mean_rmse_assimilated(),
            0.6 * result.mean_rmse_free());
  // ...and in the converged second half it should be close to the
  // observation noise floor.
  double tail = 0.0;
  for (std::size_t i = 13; i < 25; ++i) {
    tail += result.rmse_assimilated[i];
  }
  tail /= 12.0;
  EXPECT_LT(tail, 0.5);
}

TEST(EnKF, RmseDropsFromBiasedPrior) {
  Stack stack;
  EnKFDriver driver(small_config());
  const EnKFResult result = driver.run(*stack.service);
  // Prior is biased by +2 per component: cycle-1 RMSE is large; the
  // filter pulls it down within a handful of cycles.
  EXPECT_GT(result.rmse_assimilated.front(), 2.0 * result.rmse_assimilated.back());
}

TEST(EnKF, SpreadRemainsFinite) {
  Stack stack;
  EnKFDriver driver(small_config());
  const EnKFResult result = driver.run(*stack.service);
  EXPECT_GT(result.final_spread, 0.0);   // no ensemble collapse to a point
  EXPECT_LT(result.final_spread, 5.0);   // no divergence
}

TEST(EnKF, DeterministicForSeed) {
  auto run_once = []() {
    Stack stack;
    EnKFDriver driver(small_config());
    return driver.run(*stack.service).mean_rmse_assimilated();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(EnKF, SeedChangesTrajectory) {
  Stack a;
  EnKFConfig cfg = small_config();
  EnKFDriver da(cfg);
  const double ra = da.run(*a.service).mean_rmse_assimilated();
  Stack b;
  cfg.seed = 100;
  EnKFDriver db(cfg);
  const double rb = db.run(*b.service).mean_rmse_assimilated();
  EXPECT_NE(ra, rb);
}

TEST(EnKF, PartialObservationStillConstrains) {
  // Observe only 2 of 8 components: cross-covariances must propagate the
  // correction to unobserved ones, still beating the free run.
  Stack stack;
  EnKFConfig cfg = small_config();
  cfg.obs_dim = 2;
  EnKFDriver driver(cfg);
  const EnKFResult result = driver.run(*stack.service);
  EXPECT_LT(result.mean_rmse_assimilated(), result.mean_rmse_free());
}

TEST(EnKF, MemberComputeCostsSimulatedTime) {
  Stack stack;
  EnKFConfig cfg = small_config();
  cfg.ensemble_size = 64;  // one wave on 64 cores
  cfg.cycles = 3;
  cfg.member_compute_seconds = 100.0;
  EnKFDriver driver(cfg);
  const EnKFResult result = driver.run(*stack.service);
  // 3 cycles x ~100 s forecast waves.
  EXPECT_GT(result.makespan, 300.0);
  EXPECT_LT(result.makespan, 340.0);
}

TEST(EnKF, ConfigValidation) {
  EnKFConfig cfg = small_config();
  cfg.state_dim = 7;  // odd
  EXPECT_THROW(EnKFDriver{cfg}, pa::InvalidArgument);
  cfg = small_config();
  cfg.obs_dim = 9;
  EXPECT_THROW(EnKFDriver{cfg}, pa::InvalidArgument);
  cfg = small_config();
  cfg.ensemble_size = 2;
  EXPECT_THROW(EnKFDriver{cfg}, pa::InvalidArgument);
  cfg = small_config();
  cfg.cycles = 0;
  EXPECT_THROW(EnKFDriver{cfg}, pa::InvalidArgument);
}

}  // namespace
}  // namespace pa::engines
