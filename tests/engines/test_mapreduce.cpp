#include "pa/engines/mapreduce.h"

#include <gtest/gtest.h>

#include <memory>

#include "pa/miniapp/workloads.h"
#include "pa/rt/local_runtime.h"

namespace pa::engines {
namespace {

class MapReduceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime_ = std::make_unique<rt::LocalRuntime>();
    service_ = std::make_unique<core::PilotComputeService>(*runtime_);
    core::PilotDescription pd;
    pd.resource_url = "local://host";
    pd.nodes = 4;
    pd.walltime = 1e9;
    service_->submit_pilot(pd);
  }

  std::unique_ptr<rt::LocalRuntime> runtime_;
  std::unique_ptr<core::PilotComputeService> service_;
};

using WordCountJob = MapReduceJob<std::string, std::string, int, int>;

WordCountJob::Mapper word_mapper() {
  return [](const std::string& line, Emitter<std::string, int>& emit) {
    for (const auto& word : miniapp::split_words(line)) {
      emit.emit(word, 1);
    }
  };
}

WordCountJob::Reducer sum_reducer() {
  return [](const std::string&, std::vector<int>& counts) {
    int total = 0;
    for (int c : counts) {
      total += c;
    }
    return total;
  };
}

TEST_F(MapReduceTest, WordCountSmall) {
  const std::vector<std::string> lines = {"a b a", "b c", "a"};
  WordCountJob job(word_mapper(), sum_reducer(), {2, 2, 60.0});
  const auto result = job.run(*service_, lines);
  EXPECT_EQ(result.at("a"), 3);
  EXPECT_EQ(result.at("b"), 2);
  EXPECT_EQ(result.at("c"), 1);
  EXPECT_EQ(result.size(), 3u);
}

TEST_F(MapReduceTest, MatchesSerialReference) {
  const auto corpus = miniapp::generate_text_corpus(500, 12, 100, 7);
  WordCountJob job(word_mapper(), sum_reducer(), {8, 4, 120.0});
  const auto parallel = job.run(*service_, corpus);
  const auto serial = mapreduce_serial<std::string, std::string, int, int>(
      corpus, word_mapper(), sum_reducer());
  EXPECT_EQ(parallel, serial);
}

TEST_F(MapReduceTest, ResultsIndependentOfTaskCounts) {
  const auto corpus = miniapp::generate_text_corpus(300, 8, 50, 11);
  std::map<std::string, int> reference;
  for (const auto& [m, r] : std::vector<std::pair<int, int>>{
           {1, 1}, {2, 3}, {7, 2}, {16, 8}}) {
    WordCountJob job(word_mapper(), sum_reducer(), {m, r, 120.0});
    const auto result = job.run(*service_, corpus);
    if (reference.empty()) {
      reference = result;
    } else {
      EXPECT_EQ(result, reference) << "m=" << m << " r=" << r;
    }
  }
}

TEST_F(MapReduceTest, EmptyInputYieldsEmptyOutput) {
  WordCountJob job(word_mapper(), sum_reducer(), {4, 2, 60.0});
  const auto result = job.run(*service_, {});
  EXPECT_TRUE(result.empty());
}

TEST_F(MapReduceTest, MoreTasksThanRecords) {
  const std::vector<std::string> lines = {"x y"};
  WordCountJob job(word_mapper(), sum_reducer(), {8, 4, 60.0});
  const auto result = job.run(*service_, lines);
  EXPECT_EQ(result.at("x"), 1);
  EXPECT_EQ(result.at("y"), 1);
}

TEST_F(MapReduceTest, StatsPopulated) {
  const std::vector<std::string> lines = {"a b", "c d"};
  WordCountJob job(word_mapper(), sum_reducer(), {2, 2, 60.0});
  job.run(*service_, lines);
  const MapReduceStats& stats = job.stats();
  EXPECT_EQ(stats.pairs_emitted, 4u);
  EXPECT_EQ(stats.distinct_keys, 4u);
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_GE(stats.total_seconds,
            stats.map_seconds);  // total includes both phases
}

TEST_F(MapReduceTest, KmerMatchingPipeline) {
  // The genome-sequencing stand-in (E4): count reference k-mer hits over
  // sequencer reads.
  const std::string reference = miniapp::generate_dna(2000, 3);
  const auto reads = miniapp::generate_reads(reference, 200, 50, 0.01, 4);
  constexpr std::size_t kK = 12;
  std::set<std::string> ref_kmers;
  for (auto& k : miniapp::extract_kmers(reference, kK)) {
    ref_kmers.insert(std::move(k));
  }

  using KmerJob = MapReduceJob<std::string, std::string, int, int>;
  KmerJob job(
      [&ref_kmers](const std::string& read, Emitter<std::string, int>& emit) {
        for (const auto& kmer : miniapp::extract_kmers(read, kK)) {
          if (ref_kmers.count(kmer) > 0) {
            emit.emit(kmer, 1);
          }
        }
      },
      [](const std::string&, std::vector<int>& v) {
        return static_cast<int>(v.size());
      },
      {8, 4, 120.0});
  const auto hits = job.run(*service_, reads);
  // Reads are sampled from the reference with 1% error: most k-mers match.
  EXPECT_GT(hits.size(), 100u);
  std::size_t total_hits = 0;
  for (const auto& [k, v] : hits) {
    total_hits += static_cast<std::size_t>(v);
  }
  // 200 reads * 39 k-mers/read = 7800 k-mer instances; with errors some
  // fraction is lost, but the bulk must match.
  EXPECT_GT(total_hits, 4000u);
}

TEST_F(MapReduceTest, InvalidConfigRejected) {
  EXPECT_THROW(WordCountJob(word_mapper(), sum_reducer(), {0, 1, 1.0}),
               pa::InvalidArgument);
  EXPECT_THROW(WordCountJob(word_mapper(), sum_reducer(), {1, 0, 1.0}),
               pa::InvalidArgument);
}

TEST(Emitter, HashPartitioningIsStable) {
  Emitter<std::string, int> a(4);
  Emitter<std::string, int> b(4);
  a.emit("key", 1);
  b.emit("key", 2);
  // Same key -> same bucket in every emitter.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a.buckets()[i].empty(), b.buckets()[i].empty());
  }
}

}  // namespace
}  // namespace pa::engines
