#include "pa/engines/kmeans.h"

#include <gtest/gtest.h>

#include "pa/common/error.h"

namespace pa::engines {
namespace {

TEST(KMeansData, GeneratorShapes) {
  const PointBlock block = generate_clustered_points(100, 4, 3, 1);
  EXPECT_EQ(block.count(), 100u);
  EXPECT_EQ(block.dim, 3u);
  EXPECT_EQ(block.values.size(), 300u);
}

TEST(KMeansData, SerializationRoundTrip) {
  const PointBlock block = generate_clustered_points(50, 3, 5, 2);
  const std::string bytes = serialize_points(block);
  const PointBlock back = deserialize_points(bytes);
  EXPECT_EQ(back.dim, block.dim);
  EXPECT_EQ(back.count(), block.count());
  EXPECT_EQ(back.values, block.values);
}

TEST(KMeansData, DeserializeRejectsCorruptInput) {
  EXPECT_THROW(deserialize_points("short"), pa::InvalidArgument);
  const PointBlock block = generate_clustered_points(10, 2, 2, 3);
  std::string bytes = serialize_points(block);
  bytes.pop_back();
  EXPECT_THROW(deserialize_points(bytes), pa::InvalidArgument);
}

TEST(KMeansAssign, SinglePointGoesToNearestCentroid) {
  PointBlock block;
  block.dim = 2;
  block.values = {5.0, 5.0};
  Centroids c;
  c.k = 2;
  c.dim = 2;
  c.values = {0.0, 0.0, 6.0, 6.0};
  const KMeansPartial partial = kmeans_assign(block, c);
  EXPECT_EQ(partial.counts[0], 0u);
  EXPECT_EQ(partial.counts[1], 1u);
  EXPECT_DOUBLE_EQ(partial.sums[2], 5.0);
  EXPECT_DOUBLE_EQ(partial.inertia, 2.0);  // (1^2 + 1^2)
}

TEST(KMeansPartial, MergeAddsComponentwise) {
  KMeansPartial a(2, 1);
  a.sums = {1.0, 2.0};
  a.counts = {1, 1};
  a.inertia = 0.5;
  KMeansPartial b(2, 1);
  b.sums = {3.0, 4.0};
  b.counts = {2, 3};
  b.inertia = 1.5;
  a.merge(b);
  EXPECT_EQ(a.sums, (std::vector<double>{4.0, 6.0}));
  EXPECT_EQ(a.counts, (std::vector<std::size_t>{3, 4}));
  EXPECT_DOUBLE_EQ(a.inertia, 2.0);
}

TEST(KMeansPartial, MergeRejectsIncompatible) {
  KMeansPartial a(2, 1);
  KMeansPartial b(3, 1);
  EXPECT_THROW(a.merge(b), pa::InvalidArgument);
}

TEST(KMeansUpdate, ComputesMeans) {
  KMeansPartial merged(1, 2);
  merged.sums = {10.0, 20.0};
  merged.counts = {4};
  Centroids prev;
  prev.k = 1;
  prev.dim = 2;
  prev.values = {0.0, 0.0};
  const Centroids next = kmeans_update(merged, prev);
  EXPECT_DOUBLE_EQ(next.values[0], 2.5);
  EXPECT_DOUBLE_EQ(next.values[1], 5.0);
}

TEST(KMeansUpdate, EmptyClusterKeepsPosition) {
  KMeansPartial merged(2, 1);
  merged.sums = {10.0, 0.0};
  merged.counts = {2, 0};
  Centroids prev;
  prev.k = 2;
  prev.dim = 1;
  prev.values = {1.0, 7.0};
  const Centroids next = kmeans_update(merged, prev);
  EXPECT_DOUBLE_EQ(next.values[0], 5.0);
  EXPECT_DOUBLE_EQ(next.values[1], 7.0);  // untouched
}

TEST(KMeansShift, ZeroForIdenticalSets) {
  Centroids a;
  a.k = 2;
  a.dim = 2;
  a.values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(centroid_shift(a, a), 0.0);
}

TEST(KMeansShift, MaxOverCentroids) {
  Centroids a;
  a.k = 2;
  a.dim = 1;
  a.values = {0.0, 0.0};
  Centroids b = a;
  b.values = {1.0, 5.0};
  EXPECT_DOUBLE_EQ(centroid_shift(a, b), 5.0);
}

TEST(KMeansReference, ConvergesOnSeparableData) {
  const PointBlock block = generate_clustered_points(3000, 4, 2, 9);
  const auto result = kmeans_reference(block, 4, 100, 1e-6);
  EXPECT_LT(result.iterations, 100);  // converged, did not just run out
  // Well-separated clusters with sd 1: mean in-cluster squared distance
  // ~= dim = 2, so inertia/n should be close to 2.
  const double per_point = result.inertia / static_cast<double>(block.count());
  EXPECT_GT(per_point, 1.0);
  EXPECT_LT(per_point, 3.5);
}

TEST(KMeansReference, InertiaMonotonicallyNonIncreasing) {
  const PointBlock block = generate_clustered_points(500, 3, 2, 12);
  Centroids c = initial_centroids(block, 3);
  double prev_inertia = -1.0;
  for (int i = 0; i < 10; ++i) {
    const KMeansPartial partial = kmeans_assign(block, c);
    if (prev_inertia >= 0.0) {
      EXPECT_LE(partial.inertia, prev_inertia + 1e-9);
    }
    prev_inertia = partial.inertia;
    c = kmeans_update(partial, c);
  }
}

TEST(KMeansReference, KEqualsNIsPerfect) {
  const PointBlock block = generate_clustered_points(8, 8, 2, 5);
  const auto result = kmeans_reference(block, 8, 50, 1e-9);
  EXPECT_NEAR(result.inertia, 0.0, 1e-6);
}

TEST(KMeansInit, RequiresEnoughPoints) {
  const PointBlock block = generate_clustered_points(3, 3, 2, 5);
  EXPECT_THROW(initial_centroids(block, 4), pa::InvalidArgument);
}

TEST(KMeansAssign, DimensionMismatchRejected) {
  PointBlock block;
  block.dim = 2;
  block.values = {0.0, 0.0};
  Centroids c;
  c.k = 1;
  c.dim = 3;
  c.values = {0.0, 0.0, 0.0};
  EXPECT_THROW(kmeans_assign(block, c), pa::InvalidArgument);
}

TEST(KMeansData, DeterministicGenerator) {
  const PointBlock a = generate_clustered_points(100, 4, 3, 42);
  const PointBlock b = generate_clustered_points(100, 4, 3, 42);
  EXPECT_EQ(a.values, b.values);
  const PointBlock c = generate_clustered_points(100, 4, 3, 43);
  EXPECT_NE(a.values, c.values);
}

}  // namespace
}  // namespace pa::engines
