#include "pa/engines/ensemble.h"

#include <gtest/gtest.h>

#include <memory>

#include "pa/common/error.h"
#include "pa/infra/batch_cluster.h"
#include "pa/rt/local_runtime.h"
#include "pa/rt/sim_runtime.h"
#include "pa/saga/session.h"

namespace pa::engines {
namespace {

/// Simulated stack helper for ensemble runs at scale.
struct SimStack {
  explicit SimStack(int nodes = 8, int cores = 8) {
    infra::BatchClusterConfig cfg;
    cfg.name = "hpc";
    cfg.num_nodes = nodes;
    cfg.node.cores = cores;
    session.register_resource(
        "slurm://hpc", std::make_shared<infra::BatchCluster>(engine, cfg));
    runtime = std::make_unique<rt::SimRuntime>(engine, session);
    service = std::make_unique<core::PilotComputeService>(*runtime);
    core::PilotDescription pd;
    pd.resource_url = "slurm://hpc";
    pd.nodes = nodes;
    pd.walltime = 1e8;
    core::Pilot pilot = service->submit_pilot(pd);
    // Exclude pilot startup from the ensemble timings.
    pilot.wait_active();
  }

  sim::Engine engine;
  saga::Session session;
  std::unique_ptr<rt::SimRuntime> runtime;
  std::unique_ptr<core::PilotComputeService> service;
};

ReplicaExchangeConfig small_config() {
  ReplicaExchangeConfig cfg;
  cfg.replicas = 8;
  cfg.generations = 5;
  cfg.md_duration = 10.0;
  cfg.exchange_base = 0.5;
  cfg.exchange_per_replica = 0.01;
  return cfg;
}

TEST(ReplicaExchangeSim, RunsAllGenerations) {
  SimStack stack;
  ReplicaExchangeDriver driver(small_config());
  const auto result = driver.run(*stack.service);
  EXPECT_EQ(result.generation_seconds.size(), 5u);
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_EQ(result.energies.size(), 8u);
  EXPECT_EQ(result.temperatures.size(), 8u);
}

TEST(ReplicaExchangeSim, MakespanMatchesStructure) {
  SimStack stack(8, 1);  // 8 cores: all 8 replicas in one wave
  ReplicaExchangeConfig cfg = small_config();
  ReplicaExchangeDriver driver(cfg);
  const auto result = driver.run(*stack.service);
  // Per generation: one wave of 10 s MD (+ dispatch 0.02) + exchange unit
  // (0.5 + 0.08 + 0.02 dispatch).
  const double expected_gen = 10.02 + 0.6;
  for (const double g : result.generation_seconds) {
    EXPECT_NEAR(g, expected_gen, 0.1);
  }
}

TEST(ReplicaExchangeSim, StrongScalingImprovesWithCores) {
  ReplicaExchangeConfig cfg = small_config();
  cfg.replicas = 32;
  auto makespan_with_nodes = [&](int nodes) {
    SimStack stack(nodes, 1);
    ReplicaExchangeDriver driver(cfg);
    return driver.run(*stack.service).makespan;
  };
  const double m8 = makespan_with_nodes(8);    // 4 waves
  const double m32 = makespan_with_nodes(32);  // 1 wave
  EXPECT_GT(m8, m32);
  // Wave structure: ~4x MD time ratio, diluted by the serial exchange.
  EXPECT_GT(m8 / m32, 2.0);
}

TEST(ReplicaExchangeSim, TemperatureLadderIsGeometric) {
  SimStack stack;
  ReplicaExchangeConfig cfg = small_config();
  cfg.generations = 1;
  cfg.t_min = 300.0;
  cfg.t_max = 600.0;
  ReplicaExchangeDriver driver(cfg);
  const auto result = driver.run(*stack.service);
  // After exchanges temperatures are a permutation of the ladder: sorted
  // they must match the geometric sequence.
  std::vector<double> temps = result.temperatures;
  std::sort(temps.begin(), temps.end());
  EXPECT_NEAR(temps.front(), 300.0, 1e-9);
  EXPECT_NEAR(temps.back(), 600.0, 1e-9);
  for (std::size_t i = 1; i < temps.size(); ++i) {
    EXPECT_NEAR(temps[i] / temps[i - 1],
                std::pow(2.0, 1.0 / 7.0), 1e-6);
  }
}

TEST(ReplicaExchangeSim, ExchangesAttemptedEachGeneration) {
  SimStack stack;
  ReplicaExchangeConfig cfg = small_config();
  cfg.replicas = 8;
  cfg.generations = 4;
  ReplicaExchangeDriver driver(cfg);
  const auto result = driver.run(*stack.service);
  // Even generations: 4 pairs; odd: 3 pairs -> 4+3+4+3 = 14.
  EXPECT_EQ(result.exchanges_attempted, 14u);
  EXPECT_LE(result.exchanges_accepted, result.exchanges_attempted);
  EXPECT_GE(result.acceptance_rate(), 0.0);
  EXPECT_LE(result.acceptance_rate(), 1.0);
}

TEST(ReplicaExchangeSim, SomeExchangesAcceptedOverLongRuns) {
  SimStack stack;
  ReplicaExchangeConfig cfg = small_config();
  cfg.generations = 40;
  cfg.md_duration = 0.1;
  ReplicaExchangeDriver driver(cfg);
  const auto result = driver.run(*stack.service);
  // Adjacent temperatures are close: Metropolis accepts a healthy
  // fraction.
  EXPECT_GT(result.acceptance_rate(), 0.1);
}

TEST(ReplicaExchangeSim, DeterministicForSeed) {
  ReplicaExchangeConfig cfg = small_config();
  cfg.md_noise = 0.2;
  auto run_once = [&]() {
    SimStack stack;
    ReplicaExchangeDriver driver(cfg);
    const auto r = driver.run(*stack.service);
    return std::make_pair(r.makespan, r.exchanges_accepted);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ReplicaExchangeLocal, RunsWithRealPayloads) {
  rt::LocalRuntime runtime;
  core::PilotComputeService service(runtime);
  core::PilotDescription pd;
  pd.resource_url = "local://host";
  pd.nodes = 4;
  pd.walltime = 1e9;
  service.submit_pilot(pd);

  ReplicaExchangeConfig cfg;
  cfg.replicas = 4;
  cfg.generations = 2;
  cfg.md_duration = 0.01;  // real CPU seconds
  cfg.exchange_base = 0.001;
  cfg.exchange_per_replica = 0.0;
  cfg.timeout_seconds = 120.0;
  ReplicaExchangeDriver driver(cfg);
  const auto result = driver.run(service);
  EXPECT_EQ(result.generation_seconds.size(), 2u);
  EXPECT_GT(result.makespan, 0.0);
}

TEST(ReplicaExchangeConfigValidation, Rejected) {
  ReplicaExchangeConfig cfg;
  cfg.replicas = 1;
  EXPECT_THROW(ReplicaExchangeDriver{cfg}, pa::InvalidArgument);
  cfg = ReplicaExchangeConfig{};
  cfg.generations = 0;
  EXPECT_THROW(ReplicaExchangeDriver{cfg}, pa::InvalidArgument);
  cfg = ReplicaExchangeConfig{};
  cfg.t_min = 700.0;  // above t_max
  EXPECT_THROW(ReplicaExchangeDriver{cfg}, pa::InvalidArgument);
}

}  // namespace
}  // namespace pa::engines
