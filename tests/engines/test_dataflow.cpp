#include "pa/engines/dataflow.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "pa/common/error.h"
#include "pa/rt/local_runtime.h"

namespace pa::engines {
namespace {

class DataflowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime_ = std::make_unique<rt::LocalRuntime>();
    service_ = std::make_unique<core::PilotComputeService>(*runtime_);
    core::PilotDescription pd;
    pd.resource_url = "local://host";
    pd.nodes = 4;
    pd.walltime = 1e9;
    service_->submit_pilot(pd);
  }

  std::unique_ptr<rt::LocalRuntime> runtime_;
  std::unique_ptr<core::PilotComputeService> service_;
  mem::InMemoryStore store_;
};

TEST_F(DataflowTest, LinearPipelineRunsInOrder) {
  DataflowGraph graph(store_);
  std::atomic<int> sequence{0};
  std::atomic<int> extract_at{-1};
  std::atomic<int> transform_at{-1};
  std::atomic<int> load_at{-1};
  graph.add_stage("extract", 1, [&](const StageContext&) {
    extract_at = sequence.fetch_add(1);
  });
  graph.add_stage("transform", 1, [&](const StageContext&) {
    transform_at = sequence.fetch_add(1);
  }, {"extract"});
  graph.add_stage("load", 1, [&](const StageContext&) {
    load_at = sequence.fetch_add(1);
  }, {"transform"});
  const DataflowResult result = graph.run(*service_);
  EXPECT_LT(extract_at.load(), transform_at.load());
  EXPECT_LT(transform_at.load(), load_at.load());
  EXPECT_EQ(result.stages.size(), 3u);
}

TEST_F(DataflowTest, ParallelismPerStage) {
  DataflowGraph graph(store_);
  std::atomic<int> tasks_ran{0};
  graph.add_stage("wide", 12, [&](const StageContext& ctx) {
    EXPECT_GE(ctx.task_index, 0);
    EXPECT_LT(ctx.task_index, 12);
    EXPECT_EQ(ctx.parallelism, 12);
    tasks_ran.fetch_add(1);
  });
  graph.run(*service_);
  EXPECT_EQ(tasks_ran.load(), 12);
}

TEST_F(DataflowTest, DiamondDependency) {
  DataflowGraph graph(store_);
  std::atomic<bool> a_done{false};
  std::atomic<bool> b_done{false};
  std::atomic<bool> c_done{false};
  std::atomic<bool> join_saw_all{false};
  graph.add_stage("a", 1, [&](const StageContext&) { a_done = true; });
  graph.add_stage("b", 2, [&](const StageContext&) {
    EXPECT_TRUE(a_done.load());
    b_done = true;
  }, {"a"});
  graph.add_stage("c", 2, [&](const StageContext&) {
    EXPECT_TRUE(a_done.load());
    c_done = true;
  }, {"a"});
  graph.add_stage("join", 1, [&](const StageContext&) {
    join_saw_all = b_done.load() && c_done.load();
  }, {"b", "c"});
  graph.run(*service_);
  EXPECT_TRUE(join_saw_all.load());
}

TEST_F(DataflowTest, StagesShareDataThroughStore) {
  DataflowGraph graph(store_);
  graph.add_stage("produce", 4, [](const StageContext& ctx) {
    ctx.store->put_typed<int>("part-" + std::to_string(ctx.task_index),
                              ctx.task_index * 10, 4);
  });
  std::atomic<int> total{0};
  graph.add_stage("consume", 1, [&](const StageContext& ctx) {
    int sum = 0;
    for (int i = 0; i < 4; ++i) {
      sum += *ctx.store->get_typed<int>("part-" + std::to_string(i));
    }
    total = sum;
  }, {"produce"});
  graph.run(*service_);
  EXPECT_EQ(total.load(), 0 + 10 + 20 + 30);
}

TEST_F(DataflowTest, TopologicalOrderDeterministic) {
  DataflowGraph graph(store_);
  graph.add_stage("s1", 1, [](const StageContext&) {});
  graph.add_stage("s2", 1, [](const StageContext&) {}, {"s1"});
  graph.add_stage("s3", 1, [](const StageContext&) {}, {"s1"});
  graph.add_stage("s4", 1, [](const StageContext&) {}, {"s2", "s3"});
  const auto order = graph.topological_order();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "s1");
  EXPECT_EQ(order[1], "s2");  // insertion order among ready stages
  EXPECT_EQ(order[2], "s3");
  EXPECT_EQ(order[3], "s4");
}

TEST_F(DataflowTest, StageResultsTimed) {
  DataflowGraph graph(store_);
  graph.add_stage("s", 2, [](const StageContext&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  const DataflowResult result = graph.run(*service_);
  ASSERT_EQ(result.stages.size(), 1u);
  EXPECT_GE(result.stages[0].seconds, 0.009);
  EXPECT_EQ(result.stages[0].tasks, 2);
  EXPECT_GE(result.total_seconds, result.stages[0].seconds);
}

TEST_F(DataflowTest, UnknownDependencyRejected) {
  DataflowGraph graph(store_);
  EXPECT_THROW(
      graph.add_stage("s", 1, [](const StageContext&) {}, {"missing"}),
      pa::InvalidArgument);
}

TEST_F(DataflowTest, DuplicateStageRejected) {
  DataflowGraph graph(store_);
  graph.add_stage("s", 1, [](const StageContext&) {});
  EXPECT_THROW(graph.add_stage("s", 1, [](const StageContext&) {}),
               pa::InvalidArgument);
}

TEST_F(DataflowTest, InvalidParallelismRejected) {
  DataflowGraph graph(store_);
  EXPECT_THROW(graph.add_stage("s", 0, [](const StageContext&) {}),
               pa::InvalidArgument);
}

TEST_F(DataflowTest, FailingStageThrows) {
  DataflowGraph graph(store_);
  graph.add_stage("boom", 1, [](const StageContext&) {
    throw std::runtime_error("stage failure");
  });
  EXPECT_THROW(graph.run(*service_), pa::Error);
}

}  // namespace
}  // namespace pa::engines
