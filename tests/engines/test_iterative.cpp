#include "pa/engines/iterative.h"

#include <gtest/gtest.h>

#include <memory>

#include "pa/common/error.h"
#include "pa/rt/local_runtime.h"

namespace pa::engines {
namespace {

class IterativeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime_ = std::make_unique<rt::LocalRuntime>();
    service_ = std::make_unique<core::PilotComputeService>(*runtime_);
    core::PilotDescription pd;
    pd.resource_url = "local://host";
    pd.nodes = 4;
    pd.walltime = 1e9;
    service_->submit_pilot(pd);
    engine_ = std::make_unique<KMeansEngine>(*service_, store_);
  }

  std::unique_ptr<rt::LocalRuntime> runtime_;
  std::unique_ptr<core::PilotComputeService> service_;
  mem::InMemoryStore store_;
  std::unique_ptr<KMeansEngine> engine_;
};

TEST_F(IterativeTest, DistributedMatchesReference) {
  const PointBlock block = generate_clustered_points(2000, 4, 2, 21);
  engine_->load_dataset("d1", block, 4);
  KMeansJobConfig cfg;
  cfg.k = 4;
  cfg.max_iterations = 50;
  cfg.tolerance = 1e-6;
  cfg.partitions = 4;
  const KMeansJobResult dist = engine_->run("d1", cfg);

  const auto ref = kmeans_reference(block, 4, 50, 1e-6);
  // Same initialization (first-partition first points vs whole-block
  // stride) differs; compare quality instead of trajectories: inertia per
  // point must be in the same band.
  const double dist_pp = dist.inertia / 2000.0;
  const double ref_pp = ref.inertia / 2000.0;
  EXPECT_NEAR(dist_pp / ref_pp, 1.0, 0.25);
  EXPECT_GT(dist.iterations, 0);
  EXPECT_EQ(dist.iteration_seconds.size(),
            static_cast<std::size_t>(dist.iterations));
}

TEST_F(IterativeTest, CachedAndUncachedProduceSameResult) {
  const PointBlock block = generate_clustered_points(1000, 3, 2, 33);
  engine_->load_dataset("d2", block, 4);
  KMeansJobConfig cached;
  cached.k = 3;
  cached.use_cache = true;
  cached.partitions = 4;
  KMeansJobConfig uncached = cached;
  uncached.use_cache = false;
  const auto a = engine_->run("d2", cached);
  const auto b = engine_->run("d2", uncached);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_NEAR(a.inertia, b.inertia, 1e-6);
  ASSERT_EQ(a.centroids.values.size(), b.centroids.values.size());
  for (std::size_t i = 0; i < a.centroids.values.size(); ++i) {
    EXPECT_NEAR(a.centroids.values[i], b.centroids.values[i], 1e-9);
  }
}

TEST_F(IterativeTest, CacheReducesLoadWork) {
  const PointBlock block = generate_clustered_points(20000, 4, 8, 44);
  engine_->load_dataset("d3", block, 8);
  KMeansJobConfig cached;
  cached.k = 4;
  cached.max_iterations = 10;
  cached.tolerance = 0.0;  // force all 10 iterations
  cached.partitions = 8;
  cached.use_cache = true;
  KMeansJobConfig uncached = cached;
  uncached.use_cache = false;

  const auto warm = engine_->run("d3", cached);
  const auto cold = engine_->run("d3", uncached);
  (void)warm;
  (void)cold;
  // Deterministic accounting (wall-clock comparison is flaky on loaded
  // CI): the cached run decoded each partition exactly once (8 misses ->
  // 8 puts, each followed by the loader's re-get) and served the other
  // 9 iterations from memory; the uncached run never touched the store.
  const auto stats = store_.stats();
  EXPECT_EQ(stats.puts, 8u);
  EXPECT_EQ(stats.hits, 80u);  // 8 post-put re-gets + 9 x 8 cache hits
  EXPECT_EQ(stats.misses, 8u);
}

TEST_F(IterativeTest, ToleranceStopsEarly) {
  const PointBlock block = generate_clustered_points(1000, 2, 2, 55);
  engine_->load_dataset("d4", block, 2);
  KMeansJobConfig loose;
  loose.k = 2;
  loose.max_iterations = 100;
  loose.tolerance = 10.0;  // huge tolerance: stop almost immediately
  loose.partitions = 2;
  const auto result = engine_->run("d4", loose);
  EXPECT_LE(result.iterations, 2);
}

TEST_F(IterativeTest, UnknownDatasetThrows) {
  KMeansJobConfig cfg;
  EXPECT_THROW(engine_->run("ghost", cfg), pa::NotFound);
}

TEST_F(IterativeTest, DuplicateDatasetRejected) {
  const PointBlock block = generate_clustered_points(100, 2, 2, 66);
  engine_->load_dataset("d5", block, 2);
  EXPECT_THROW(engine_->load_dataset("d5", block, 2), pa::InvalidArgument);
}

TEST_F(IterativeTest, PartitionCountMismatchRejected) {
  const PointBlock block = generate_clustered_points(100, 2, 2, 77);
  engine_->load_dataset("d6", block, 4);
  KMeansJobConfig cfg;
  cfg.partitions = 8;  // disagrees with the loaded 4
  EXPECT_THROW(engine_->run("d6", cfg), pa::InvalidArgument);
}

TEST_F(IterativeTest, SinglePartitionWorks) {
  const PointBlock block = generate_clustered_points(500, 3, 2, 88);
  engine_->load_dataset("d7", block, 1);
  KMeansJobConfig cfg;
  cfg.k = 3;
  cfg.partitions = 1;
  const auto result = engine_->run("d7", cfg);
  EXPECT_GT(result.iterations, 0);
  EXPECT_GT(result.inertia, 0.0);
}

}  // namespace
}  // namespace pa::engines
