"""Self-tests for the six lint.py rules and the suppression meta-rule.

`lint_file(rel, text)` is a pure function, so each rule is tested
directly with an inline snippet: one violating input that must produce
the rule's finding, and one allowed input (either the whitelisted file
or the sanctioned idiom) that must stay clean.
"""

import importlib.util
import unittest
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent.parent

_spec = importlib.util.spec_from_file_location(
    "pa_lint", ROOT / "tools" / "lint.py")
lint = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(lint)


def msgs(rel, text):
    return [m for _, m in lint.lint_file(rel, text)]


class RawSynchronization(unittest.TestCase):
    def test_raw_mutex_outside_check_is_flagged(self):
        out = msgs("src/common/pool.cpp", "std::mutex m_;\n")
        self.assertTrue(any("raw std::mutex" in m for m in out), out)

    def test_lock_guard_is_flagged(self):
        out = msgs("src/common/pool.cpp",
                   "std::lock_guard<std::mutex> g(m_);\n")
        self.assertTrue(any("raw std::" in m for m in out), out)

    def test_wrapper_implementation_is_allowed(self):
        self.assertEqual(
            msgs("include/pa/check/mutex.h", "std::mutex m_;\n"), [])


class Nondeterminism(unittest.TestCase):
    def test_random_device_is_flagged(self):
        out = msgs("src/sim/engine.cpp",
                   "auto seed = std::random_device{}();\n")
        self.assertTrue(any("nondeterminism source" in m for m in out), out)

    def test_system_clock_is_flagged(self):
        out = msgs("src/sim/engine.cpp",
                   "auto t = std::chrono::system_clock::now();\n")
        self.assertTrue(any("nondeterminism source" in m for m in out), out)

    def test_rng_header_is_allowed(self):
        self.assertEqual(
            msgs("include/pa/common/rng.h", "std::random_device rd;\n"), [])


class SocketHygiene(unittest.TestCase):
    def test_raw_syscall_outside_transport_is_flagged(self):
        out = msgs("src/net/flusher.cpp",
                   "int fd = ::socket(AF_INET, SOCK_STREAM, 0);\n")
        self.assertTrue(any("raw socket syscall" in m for m in out), out)

    def test_socket_header_is_flagged(self):
        out = msgs("src/core/scheduler.cpp", "#include <sys/socket.h>\n")
        self.assertTrue(any("socket header" in m for m in out), out)

    def test_tcp_transport_is_allowed(self):
        self.assertEqual(
            msgs("src/net/tcp_transport.cpp",
                 "int fd = ::socket(AF_INET, SOCK_STREAM, 0);\n"), [])

    def test_method_definition_does_not_match(self):
        # `Transport::send(` is a member definition, not a syscall.
        self.assertEqual(
            msgs("src/net/flusher.cpp",
                 "bool Transport::send(Message m) { return true; }\n"), [])


class StateMachineDiscipline(unittest.TestCase):
    def test_direct_state_write_is_flagged(self):
        out = msgs("src/core/scheduler.cpp",
                   "state_ = UnitState::kDone;\n")
        self.assertTrue(
            any("direct write to `state_`" in m for m in out), out)

    def test_machine_replacement_without_marker_is_flagged(self):
        out = msgs("src/core/scheduler.cpp",
                   "sm_ = UnitStateMachine(UnitState::kNew);\n")
        self.assertTrue(
            any("lint:allow-state-reset" in m for m in out), out)

    def test_machine_replacement_with_marker_is_allowed(self):
        text = ("// lint:allow-state-reset: journal replay rebuilds the\n"
                "// machine from the recovered state.\n"
                "sm_ = UnitStateMachine(UnitState::kNew);\n")
        self.assertEqual(msgs("src/core/scheduler.cpp", text), [])

    def test_state_machine_header_is_allowed(self):
        self.assertEqual(
            msgs("include/pa/core/state_machine.h",
                 "state_ = next;\n"), [])


class CallbackShape(unittest.TestCase):
    DIRTY = (
        "void S::wire() {\n"
        "  runtime_->callbacks.on_unit_done = [this](UnitId u) {\n"
        "    workload_.complete(u);\n"
        "  };\n"
        "}\n"
    )
    CLEAN = (
        "void S::wire() {\n"
        "  runtime_->callbacks.on_unit_done = [this](UnitId u) {\n"
        "    ctrl_->post(cmd::Command{cmd::CmdUnitDone{u}});\n"
        "  };\n"
        "}\n"
    )

    def test_state_touch_and_missing_post_are_flagged(self):
        out = msgs("src/core/service.cpp", self.DIRTY)
        self.assertTrue(
            any("touches service state `workload_`" in m for m in out), out)
        self.assertTrue(
            any("never posts a command" in m for m in out), out)

    def test_posting_callback_is_allowed(self):
        self.assertEqual(msgs("src/core/service.cpp", self.CLEAN), [])

    def test_rule_only_applies_to_core(self):
        self.assertEqual(msgs("src/net/manager.cpp", self.DIRTY), [])


class ShardConfinement(unittest.TestCase):
    def test_service_shard_reference_outside_layer_is_flagged(self):
        out = msgs("src/engines/mapreduce.cpp",
                   "ServiceShard* home = facade.shard(0);\n")
        self.assertTrue(
            any("cross-shard access" in m for m in out), out)

    def test_post_forward_call_outside_layer_is_flagged(self):
        out = msgs("tests/core/test_scheduler.cpp",
                   "ctrl.post_forward(std::move(envelope));\n")
        self.assertTrue(
            any("cross-shard access" in m for m in out), out)

    def test_sharding_layer_itself_is_allowed(self):
        self.assertEqual(
            msgs("src/core/service_shard.cpp",
                 "peers_[t]->ctrl().post_forward(std::move(cmd));\n"), [])

    def test_facade_is_allowed(self):
        self.assertEqual(
            msgs("src/core/pilot_compute_service.cpp",
                 "std::vector<std::unique_ptr<ServiceShard>> shards_;\n"),
            [])


class StoreConfinement(unittest.TestCase):
    def test_transport_include_is_flagged(self):
        out = msgs("src/store/shard.cpp",
                   '#include "pa/net/transport.h"\n')
        self.assertTrue(
            any("transport-facing include" in m for m in out), out)

    def test_connection_reference_is_flagged(self):
        out = msgs("include/pa/store/directory.h",
                   "net::Connection* conn_ = nullptr;\n")
        self.assertTrue(
            any("net::Connection referenced in pa::store" in m
                for m in out), out)

    def test_message_include_is_allowed(self):
        self.assertEqual(
            msgs("src/store/shard.cpp",
                 '#include "pa/net/message.h"\n'), [])


class SuppressionMetaRule(unittest.TestCase):
    def test_bare_nolint_is_flagged(self):
        out = msgs("src/common/table.cpp", "int x = f();  // NOLINT\n")
        self.assertTrue(
            any("NOLINT without justification" in m for m in out), out)

    def test_justified_nolint_is_allowed(self):
        self.assertEqual(
            msgs("src/common/table.cpp",
                 "int x = f();  // NOLINT(bugprone-foo): f() is audited\n"),
            [])

    def test_bare_tsa_suppression_is_flagged(self):
        out = msgs("src/common/table.cpp",
                   "void f() PA_NO_THREAD_SAFETY_ANALYSIS;\n")
        self.assertTrue(
            any("PA_NO_THREAD_SAFETY_ANALYSIS without" in m for m in out),
            out)

    def test_justified_tsa_suppression_is_allowed(self):
        text = ("// PA_NO_THREAD_SAFETY_ANALYSIS: lock identity proven by\n"
                "// the caller; annotations cannot express it.\n"
                "void f() PA_NO_THREAD_SAFETY_ANALYSIS;\n")
        self.assertEqual(msgs("src/common/table.cpp", text), [])


if __name__ == "__main__":
    unittest.main()
