"""Golden-fixture tests for the four pa_analyze passes.

Each fixture under fixtures/ is a miniature repository tree (its own
include/, src/, docs/) analyzed as a root of its own, so exactly the
code that gates CI runs here. Every pass gets one clean fixture that
must produce zero findings and one seeded-violation fixture it must
flag: a rank inversion, a dropped decode field, an unhandled command,
and a typo'd metric name — the ISSUE's four canonical defects.
"""

import unittest
from pathlib import Path

from tools.pa_analyze import codec, commands, lock_order, metrics
from tools.pa_analyze.source import Index

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def run_pass(pass_mod, fixture):
    return pass_mod.run(Index(FIXTURES / fixture))


def messages(findings):
    return [f.message for f in findings]


class LockOrderPass(unittest.TestCase):
    def test_clean_fixture_has_no_findings(self):
        # Exercises correct nesting, unlock/relock, a lambda barrier, a
        # PA_REQUIRES entry-held body, and a justified suppression.
        self.assertEqual(run_pass(lock_order, "lock_clean"), [])

    def test_rank_inversion_is_flagged(self):
        findings = run_pass(lock_order, "lock_inversion")
        msgs = messages(findings)
        self.assertEqual(len(findings), 3, msgs)
        inversions = [f for f in findings if "inversion" in f.message]
        ties = [f for f in findings if "tie" in f.message]
        self.assertEqual(len(inversions), 2, msgs)
        self.assertEqual(len(ties), 1, msgs)
        # One inversion comes from lexical nesting, the other from a
        # PA_REQUIRES-declared entry-held lock.
        self.assertEqual(sorted(f.line for f in inversions), [7, 17])
        self.assertEqual(ties[0].line, 12)
        for f in findings:
            self.assertEqual(f.path, "src/w/widget.cpp")

    def test_emitted_table_lists_every_rank(self):
        index = Index(FIXTURES / "lock_clean")
        table = lock_order.emit_lock_table(index)
        for needle in ("kService", "kJournal", "kLeaf", "`w::table`",
                       "`w::stats`"):
            self.assertIn(needle, table)

    def test_design_drift_is_flagged(self):
        # The fixture's DESIGN.md was generated; a hand-edit must fail.
        index = Index(FIXTURES / "lock_clean")
        design = (FIXTURES / "lock_clean" / "DESIGN.md").read_text()
        self.assertEqual(run_pass(lock_order, "lock_clean"), [])
        try:
            (FIXTURES / "lock_clean" / "DESIGN.md").write_text(
                design.replace("`w::stats`", "`w::stale-name`"))
            findings = run_pass(lock_order, "lock_clean")
            self.assertTrue(
                any(f.path == "DESIGN.md" and "drifted" in f.message
                    for f in findings), findings)
        finally:
            (FIXTURES / "lock_clean" / "DESIGN.md").write_text(design)


class CodecPass(unittest.TestCase):
    def test_clean_fixture_has_no_findings(self):
        self.assertEqual(run_pass(codec, "codec_clean"), [])

    def test_dropped_decode_field_is_flagged(self):
        findings = run_pass(codec, "codec_dropped_field")
        msgs = messages(findings)
        self.assertTrue(
            any("never decoded" in m and "crc" in m for m in msgs), msgs)


class CommandsPass(unittest.TestCase):
    def test_clean_fixture_has_no_findings(self):
        self.assertEqual(run_pass(commands, "commands_clean"), [])

    def test_unhandled_command_is_flagged(self):
        findings = run_pass(commands, "commands_unhandled")
        msgs = messages(findings)
        self.assertTrue(
            any("CmdDrain has no apply-thread handler" in m for m in msgs),
            msgs)

    def test_dirty_callback_body_is_flagged(self):
        findings = run_pass(commands, "commands_unhandled")
        msgs = messages(findings)
        self.assertTrue(
            any("not the wait-free post shape" in m for m in msgs), msgs)

    def test_forward_envelope_clean_fixture_has_no_findings(self):
        # Envelope carries target_shard + hops; handler re-dispatches
        # through apply_command.
        self.assertEqual(run_pass(commands, "commands_forward_clean"), [])

    def test_missing_hop_cap_is_flagged(self):
        msgs = messages(run_pass(commands, "commands_forward_bad"))
        self.assertTrue(
            any("lacks the `hops` field" in m for m in msgs), msgs)

    def test_forward_handler_bypassing_dispatch_is_flagged(self):
        msgs = messages(run_pass(commands, "commands_forward_bad"))
        self.assertTrue(
            any("does not re-dispatch" in m for m in msgs), msgs)


class MetricsPass(unittest.TestCase):
    def test_clean_fixture_has_no_findings(self):
        # Includes a dynamic `prefix_ + "hits"` site resolved against a
        # `svc.<shard>.hits` manifest row.
        self.assertEqual(run_pass(metrics, "metrics_clean"), [])

    def test_typod_metric_is_flagged(self):
        findings = run_pass(metrics, "metrics_typo")
        msgs = messages(findings)
        self.assertTrue(
            any("typo" in m and "svc.reqests" in m for m in msgs), msgs)
        # The forked row is also stale from the manifest's side.
        self.assertTrue(any("stale row" in m for m in msgs), msgs)


if __name__ == "__main__":
    unittest.main()
