#include "pa/w/widget.h"

namespace pa::w {

void Widget::refresh() {
  check::MutexLock lock(table_mu_);
  {
    check::MutexLock inner(stats_mu_);  // 10 -> 45: strictly increasing
  }
  lock.unlock();
  do_io();  // lock dropped around I/O
  lock.lock();
  worker_ = [this]() {
    // Lambda bodies run on arbitrary threads: the enclosing scope's held
    // set does not apply, so this fresh acquisition is clean.
    check::MutexLock fresh(stats_mu_);
    touch();
  };
}

void Widget::validator_demo() {
  check::MutexLock stats(stats_mu_);
  // pa_analyze:allow(lock-order): fixture — proves a justified
  // suppression keeps a deliberate inversion out of the findings.
  check::MutexLock table(table_mu_);
}

void Widget::rebalance_locked() {
  // Entry-held table_mu_ (rank 10) via PA_REQUIRES; 45 nests above it.
  check::MutexLock stats(stats_mu_);
}

}  // namespace pa::w
