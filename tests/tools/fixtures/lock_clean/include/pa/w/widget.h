#pragma once

namespace pa::w {

class Widget {
 public:
  void refresh();
  void validator_demo();
  void rebalance_locked() PA_REQUIRES(table_mu_);

 private:
  check::Mutex table_mu_{check::LockRank::kService, "w::table"};
  check::Mutex stats_mu_{check::LockRank::kJournal, "w::stats"};
};

}  // namespace pa::w
