#include "pa/obs/metrics.h"

namespace pa::svc {

void Stats::wire(obs::MetricsRegistry* metrics) {
  metrics->counter("svc.requests").inc();
  metrics->gauge("svc.depth").set(1);
  metrics->histogram("svc.latency", 1e-3, 60.0).record(0.5);
  prefix_ = "svc." + shard_name_ + ".";
  metrics->counter(prefix_ + "hits").inc();
}

}  // namespace pa::svc
