#pragma once

#include <string>
#include <variant>

namespace pa::core::cmd {

struct CmdPing {
  std::string id;
};

struct CmdStop {
  bool hard = false;
};

using Command = std::variant<CmdPing, CmdStop>;

}  // namespace pa::core::cmd
