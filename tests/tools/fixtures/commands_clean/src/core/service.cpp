#include "pa/core/command.h"

namespace pa::core {

void Service::apply_command(cmd::Command& command) {
  std::visit([this](auto& c) { apply(c); }, command);
}

void Service::apply(cmd::CmdPing& c) { pings_ += 1; }

void Service::apply(cmd::CmdStop& c) { stopped_ = c.hard; }

void Service::start() {
  ctrl_->post(cmd::Command{cmd::CmdPing{"boot"}});
  runtime_->callbacks.on_done = [this](bool ok) {
    if (!ok) {
      return;
    }
    ctrl_->post(cmd::Command{cmd::CmdStop{true}});
  };
}

}  // namespace pa::core
