#include "pa/core/command.h"

namespace pa::core {

void Service::apply_command(cmd::Command& command) {
  std::visit([this](auto& c) { apply(c); }, command);
}

void Service::apply(cmd::CmdPing& c) { pings_ += 1; }

void Service::apply(cmd::CmdStop& c) { stopped_ = c.hard; }

// CmdDrain has no apply() overload: seeded exhaustiveness violation.

void Service::start() {
  ctrl_->post(cmd::Command{cmd::CmdPing{"boot"}});
  ctrl_->post(cmd::Command{cmd::CmdDrain{16}});
  runtime_->callbacks.on_done = [this](bool ok) {
    pings_ += 1;  // seeded violation: work outside ctrl_->post
    ctrl_->post(cmd::Command{cmd::CmdStop{true}});
  };
}

}  // namespace pa::core
