#pragma once

#include <string>
#include <variant>

namespace pa::core::cmd {

struct CmdPing {
  std::string id;
};

struct CmdStop {
  bool hard = false;
};

struct CmdDrain {
  int budget = 0;
};

using Command = std::variant<CmdPing, CmdStop, CmdDrain>;

}  // namespace pa::core::cmd
