#pragma once

namespace pa::w {

class Widget {
 public:
  void refresh();
  void audit();
  void compact_locked() PA_REQUIRES(stats_mu_);

 private:
  check::Mutex table_mu_{check::LockRank::kService, "w::table"};
  check::Mutex stats_mu_{check::LockRank::kJournal, "w::stats"};
  check::Mutex leaf_a_{check::LockRank::kLeaf, "w::leaf-a"};
  check::Mutex leaf_b_{check::LockRank::kLeaf, "w::leaf-b"};
};

}  // namespace pa::w
