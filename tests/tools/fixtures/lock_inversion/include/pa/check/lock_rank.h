#pragma once
// Miniature rank ladder for analyzer self-tests.

namespace pa::check {

enum class LockRank : int {
  kService = 10,
  kJournal = 45,
  kLeaf = 95,
};

constexpr int rank_value(LockRank rank) { return static_cast<int>(rank); }

}  // namespace pa::check
