#include "pa/w/widget.h"

namespace pa::w {

void Widget::refresh() {
  check::MutexLock stats(stats_mu_);  // rank 45
  check::MutexLock table(table_mu_);  // rank 10 under 45: inversion
}

void Widget::audit() {
  check::MutexLock a(leaf_a_);  // rank 95
  check::MutexLock b(leaf_b_);  // rank 95 under 95: tie
}

void Widget::compact_locked() {
  // Entry-held stats_mu_ (rank 45) via PA_REQUIRES; 10 may not nest.
  check::MutexLock table(table_mu_);
}

}  // namespace pa::w
