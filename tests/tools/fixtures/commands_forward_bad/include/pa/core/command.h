#pragma once

#include <memory>
#include <string>
#include <variant>

namespace pa::core::cmd {

struct CmdPing {
  std::string id;
};

struct ForwardBox;

// Seeded violation: the envelope has no hop cap, so a routing bug can
// bounce a command between shards forever.
struct CmdForward {
  int target_shard = 0;
  std::shared_ptr<ForwardBox> inner;
};

using Command = std::variant<CmdPing, CmdForward>;

struct ForwardBox {
  Command command;
};

}  // namespace pa::core::cmd
