#include "pa/core/command.h"

namespace pa::core {

void Service::apply_command(cmd::Command& command) {
  std::visit([this](auto& c) { apply(c); }, command);
}

void Service::apply(cmd::CmdPing& c) { pings_ += 1; }

// Seeded violation: the handler visits the inner command directly,
// bypassing apply_command and whatever bookkeeping it wraps.
void Service::apply(cmd::CmdForward& c) {
  std::visit([this](auto& i) { apply(i); }, c.inner->command);
}

void Service::forward_to(int target_shard, cmd::Command command) {
  peers_[target_shard]->post(cmd::Command{cmd::CmdForward{
      target_shard, std::make_shared<cmd::ForwardBox>(std::move(command))}});
}

void Service::start() {
  ctrl_->post(cmd::Command{cmd::CmdPing{"boot"}});
}

}  // namespace pa::core
