#pragma once

#include <cstdint>
#include <string>

namespace pa::net {

inline constexpr std::uint8_t kProtocolVersion = 2;
inline constexpr std::uint8_t kMinProtocolVersion = 1;

enum class MessageType : std::uint8_t {
  kPing = 1,  ///< liveness probe
  kData = 2,  ///< payload frame (v2+)
};

const char* to_string(MessageType t);

struct Message {
  MessageType type = MessageType::kPing;
  std::uint8_t version = kProtocolVersion;
  std::uint64_t seq = 0;
  double timestamp = 0.0;
  std::string payload;
  std::uint32_t crc = 0;
};

}  // namespace pa::net
