#include "pa/net/message.h"

#include <cstring>
#include <stdexcept>

namespace pa::net {
namespace {

void put_u8(std::string& out, std::uint8_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_f64(std::string& out, double v);
void put_string(std::string& out, const std::string& s);

struct Cursor {
  const char* data;
  std::size_t size;
  std::size_t pos = 0;
  template <typename T>
  T take();
  std::string take_string();
};

bool is_batch_type(MessageType t) { return t == MessageType::kData; }

}  // namespace

const char* to_string(MessageType t) {
  switch (t) {
    case MessageType::kPing:
      return "ping";
    case MessageType::kData:
      return "data";
  }
  return "unknown";
}

void encode_message_into(std::string& out, const Message& m) {
  if (is_batch_type(m.type) && m.version < 2) {
    throw std::runtime_error("batch frame below v2");
  }
  put_u8(out, m.version);
  put_u8(out, static_cast<std::uint8_t>(m.type));
  put_u64(out, m.seq);
  switch (m.type) {
    case MessageType::kPing:
      put_f64(out, m.timestamp);
      break;
    case MessageType::kData:
      put_string(out, m.payload);
      put_u32(out, m.crc);
      break;
  }
}

Message decode_message(const char* data, std::size_t size) {
  Cursor c{data, size};
  Message m;
  const auto version = c.take<std::uint8_t>();
  const auto type = c.take<std::uint8_t>();
  if (is_batch_type(static_cast<MessageType>(type)) && version < 2) {
    throw std::runtime_error("batch frame below v2");
  }
  m.version = version;
  m.type = static_cast<MessageType>(type);
  m.seq = c.take<std::uint64_t>();
  switch (m.type) {
    case MessageType::kPing:
      m.timestamp = c.take<double>();
      break;
    case MessageType::kData:
      m.payload = c.take_string();
      m.crc = c.take<std::uint32_t>();
      break;
  }
  return m;
}

}  // namespace pa::net
