#include "pa/obs/metrics.h"

namespace pa::svc {

void Stats::wire(obs::MetricsRegistry* metrics) {
  metrics->counter("svc.reqests").inc();  // seeded typo: svc.requests
  metrics->gauge("svc.depth").set(1);
}

}  // namespace pa::svc
