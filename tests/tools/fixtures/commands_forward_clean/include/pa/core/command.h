#pragma once

#include <memory>
#include <string>
#include <variant>

namespace pa::core::cmd {

struct CmdPing {
  std::string id;
};

struct ForwardBox;

struct CmdForward {
  int target_shard = 0;
  int hops = 0;
  std::shared_ptr<ForwardBox> inner;
};

using Command = std::variant<CmdPing, CmdForward>;

struct ForwardBox {
  Command command;
};

}  // namespace pa::core::cmd
