#!/usr/bin/env python3
"""Runs the static-analysis tooling self-tests (pa_analyze golden
fixtures + lint.py rule tests). Wired into ctest as `tool_selftests`;
also runnable directly: python3 tests/tools/run_tests.py"""

import sys
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
ROOT = HERE.parent.parent

# Repo root so `tools.pa_analyze` imports; tests/tools so the test
# modules import by bare name.
for p in (str(ROOT), str(HERE)):
    if p not in sys.path:
        sys.path.insert(0, p)

import test_lint  # noqa: E402
import test_pa_analyze  # noqa: E402


def main() -> int:
    loader = unittest.TestLoader()
    suite = unittest.TestSuite([
        loader.loadTestsFromModule(test_lint),
        loader.loadTestsFromModule(test_pa_analyze),
    ])
    result = unittest.TextTestRunner(verbosity=2).run(suite)
    return 0 if result.wasSuccessful() else 1


if __name__ == "__main__":
    sys.exit(main())
