#include "pa/infra/batch_cluster.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "pa/common/error.h"
#include "pa/common/rng.h"

namespace pa::infra {
namespace {

BatchClusterConfig small_cluster(int nodes = 4) {
  BatchClusterConfig cfg;
  cfg.name = "hpc";
  cfg.num_nodes = nodes;
  cfg.node.cores = 8;
  return cfg;
}

JobRequest job(int nodes, double duration, double walltime = 0.0) {
  JobRequest req;
  req.num_nodes = nodes;
  req.duration = duration;
  req.walltime_limit = walltime > 0.0 ? walltime : duration * 2.0 + 10.0;
  return req;
}

TEST(BatchCluster, ImmediateStartWhenEmpty) {
  sim::Engine engine;
  BatchCluster cluster(engine, small_cluster());
  double started_at = -1.0;
  Allocation alloc;
  JobRequest req = job(2, 100.0);
  req.on_started = [&](const std::string&, const Allocation& a) {
    started_at = engine.now();
    alloc = a;
  };
  const std::string id = cluster.submit(std::move(req));
  EXPECT_EQ(cluster.job_state(id), JobState::kQueued);
  engine.run_until(1.0);
  EXPECT_DOUBLE_EQ(started_at, 0.0);
  EXPECT_EQ(alloc.node_ids.size(), 2u);
  EXPECT_EQ(alloc.cores_per_node, 8);
  EXPECT_EQ(alloc.site, "hpc");
  EXPECT_EQ(cluster.job_state(id), JobState::kRunning);
}

TEST(BatchCluster, CompletesAtDuration) {
  sim::Engine engine;
  BatchCluster cluster(engine, small_cluster());
  StopReason reason = StopReason::kCanceled;
  double stopped_at = -1.0;
  JobRequest req = job(1, 50.0);
  req.on_stopped = [&](const std::string&, StopReason r) {
    reason = r;
    stopped_at = engine.now();
  };
  const std::string id = cluster.submit(std::move(req));
  engine.run();
  EXPECT_EQ(reason, StopReason::kCompleted);
  EXPECT_DOUBLE_EQ(stopped_at, 50.0);
  EXPECT_EQ(cluster.job_state(id), JobState::kDone);
  EXPECT_EQ(cluster.free_nodes(), 4);
}

TEST(BatchCluster, WalltimeKillsOpenEndedJob) {
  sim::Engine engine;
  BatchCluster cluster(engine, small_cluster());
  StopReason reason = StopReason::kCompleted;
  JobRequest req;
  req.num_nodes = 1;
  req.duration = -1.0;  // pilot-style open-ended job
  req.walltime_limit = 100.0;
  req.on_stopped = [&](const std::string&, StopReason r) { reason = r; };
  const std::string id = cluster.submit(std::move(req));
  engine.run();
  EXPECT_EQ(reason, StopReason::kWalltime);
  EXPECT_EQ(cluster.job_state(id), JobState::kFailed);
  EXPECT_DOUBLE_EQ(engine.now(), 100.0);
}

TEST(BatchCluster, WalltimeKillsOverrunningJob) {
  sim::Engine engine;
  BatchCluster cluster(engine, small_cluster());
  StopReason reason = StopReason::kCompleted;
  JobRequest req = job(1, 500.0, /*walltime=*/100.0);
  req.on_stopped = [&](const std::string&, StopReason r) { reason = r; };
  cluster.submit(std::move(req));
  engine.run();
  EXPECT_EQ(reason, StopReason::kWalltime);
  EXPECT_DOUBLE_EQ(engine.now(), 100.0);
}

TEST(BatchCluster, FcfsQueueing) {
  sim::Engine engine;
  BatchCluster cluster(engine, small_cluster(4));
  std::vector<std::string> starts;
  auto track = [&starts](const std::string& name) {
    return [&starts, name](const std::string&, const Allocation&) {
      starts.push_back(name);
    };
  };
  JobRequest a = job(4, 100.0);
  a.on_started = track("a");
  cluster.submit(std::move(a));
  JobRequest b = job(4, 50.0);
  b.on_started = track("b");
  cluster.submit(std::move(b));
  JobRequest c = job(4, 50.0);
  c.on_started = track("c");
  cluster.submit(std::move(c));
  engine.run();
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[0], "a");
  EXPECT_EQ(starts[1], "b");
  EXPECT_EQ(starts[2], "c");
}

TEST(BatchCluster, BackfillFillsHoles) {
  sim::Engine engine;
  BatchCluster cluster(engine, small_cluster(4));
  // a: 2 nodes for 100s. b: needs 4 nodes -> blocked until 100.
  // c: 2 nodes, walltime 50 -> fits in the hole before b's shadow time.
  double c_started = -1.0;
  double b_started = -1.0;
  cluster.submit(job(2, 100.0, 100.0));
  JobRequest b = job(4, 10.0, 20.0);
  b.on_started = [&](const std::string&, const Allocation&) {
    b_started = engine.now();
  };
  cluster.submit(std::move(b));
  JobRequest c = job(2, 40.0, 50.0);
  c.on_started = [&](const std::string&, const Allocation&) {
    c_started = engine.now();
  };
  cluster.submit(std::move(c));
  engine.run();
  EXPECT_DOUBLE_EQ(c_started, 0.0);    // backfilled immediately
  EXPECT_DOUBLE_EQ(b_started, 100.0);  // head not delayed
}

TEST(BatchCluster, StrictFcfsDoesNotBackfill) {
  sim::Engine engine;
  BatchClusterConfig cfg = small_cluster(4);
  cfg.enable_backfill = false;
  BatchCluster cluster(engine, cfg);
  double c_started = -1.0;
  cluster.submit(job(2, 100.0, 100.0));
  cluster.submit(job(4, 10.0, 20.0));  // blocked head
  JobRequest c = job(2, 40.0, 50.0);
  c.on_started = [&](const std::string&, const Allocation&) {
    c_started = engine.now();
  };
  cluster.submit(std::move(c));
  engine.run();
  EXPECT_GT(c_started, 0.0);  // had to wait behind the blocked head
}

TEST(BatchCluster, AllJobsEventuallyStart) {
  // Liveness property over randomized workloads, both policies.
  for (const bool backfill : {true, false}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      pa::Rng rng(seed);
      sim::Engine engine;
      BatchClusterConfig cfg = small_cluster(8);
      cfg.enable_backfill = backfill;
      BatchCluster cluster(engine, cfg);
      std::vector<double> starts(40, -1.0);
      for (std::size_t i = 0; i < starts.size(); ++i) {
        JobRequest r;
        r.num_nodes = static_cast<int>(rng.uniform_int(1, 8));
        r.duration = rng.uniform(10.0, 500.0);
        r.walltime_limit = r.duration * 1.2;
        r.on_started = [&starts, i, &engine](const std::string&,
                                             const Allocation&) {
          starts[i] = engine.now();
        };
        cluster.submit(std::move(r));
      }
      engine.run();
      for (std::size_t i = 0; i < starts.size(); ++i) {
        EXPECT_GE(starts[i], 0.0)
            << "job " << i << " never started (seed " << seed << ")";
      }
    }
  }
}

TEST(BatchCluster, BackfillImprovesOrMatchesMakespan) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    pa::Rng rng(seed);
    std::vector<std::pair<int, double>> spec;
    for (int i = 0; i < 40; ++i) {
      spec.emplace_back(static_cast<int>(rng.uniform_int(1, 8)),
                        rng.uniform(10.0, 500.0));
    }
    auto run_policy = [&](bool backfill) {
      sim::Engine engine;
      BatchClusterConfig cfg = small_cluster(8);
      cfg.enable_backfill = backfill;
      BatchCluster cluster(engine, cfg);
      for (const auto& [nodes, duration] : spec) {
        JobRequest r;
        r.num_nodes = nodes;
        r.duration = duration;
        // Exact walltimes so EASY's reservations are tight and backfill
        // can only help.
        r.walltime_limit = duration;
        cluster.submit(std::move(r));
      }
      engine.run();
      return engine.now();
    };
    EXPECT_LE(run_policy(true), run_policy(false) + 1e-9) << "seed " << seed;
  }
}

TEST(BatchCluster, NeverOversubscribed) {
  pa::Rng rng(17);
  sim::Engine engine;
  BatchCluster cluster(engine, small_cluster(8));
  int max_busy = 0;
  for (int i = 0; i < 60; ++i) {
    JobRequest r;
    r.num_nodes = static_cast<int>(rng.uniform_int(1, 6));
    r.duration = rng.uniform(5.0, 100.0);
    r.walltime_limit = r.duration + 10.0;
    cluster.submit(std::move(r));
  }
  while (engine.step()) {
    EXPECT_GE(cluster.free_nodes(), 0);
    max_busy = std::max(max_busy, 8 - cluster.free_nodes());
  }
  EXPECT_LE(max_busy, 8);
  EXPECT_EQ(cluster.free_nodes(), 8);  // all released at the end
}

TEST(BatchCluster, CancelQueuedJob) {
  sim::Engine engine;
  BatchCluster cluster(engine, small_cluster(2));
  cluster.submit(job(2, 100.0));
  StopReason reason = StopReason::kCompleted;
  JobRequest r = job(2, 50.0);
  r.on_stopped = [&](const std::string&, StopReason why) { reason = why; };
  const std::string id = cluster.submit(std::move(r));
  engine.run_until(1.0);
  EXPECT_EQ(cluster.job_state(id), JobState::kQueued);
  cluster.cancel(id);
  engine.run();
  EXPECT_EQ(cluster.job_state(id), JobState::kCanceled);
  EXPECT_EQ(reason, StopReason::kCanceled);
}

TEST(BatchCluster, CancelRunningJobFreesNodes) {
  sim::Engine engine;
  BatchCluster cluster(engine, small_cluster(2));
  const std::string id = cluster.submit(job(2, 1000.0));
  engine.run_until(1.0);
  EXPECT_EQ(cluster.free_nodes(), 0);
  cluster.cancel(id);
  EXPECT_EQ(cluster.free_nodes(), 2);
  EXPECT_EQ(cluster.job_state(id), JobState::kCanceled);
}

TEST(BatchCluster, CancelIsIdempotentOnFinalJobs) {
  sim::Engine engine;
  BatchCluster cluster(engine, small_cluster(2));
  const std::string id = cluster.submit(job(1, 1.0));
  engine.run();
  EXPECT_EQ(cluster.job_state(id), JobState::kDone);
  cluster.cancel(id);  // no-op, no throw
  EXPECT_EQ(cluster.job_state(id), JobState::kDone);
}

TEST(BatchCluster, UnknownJobThrows) {
  sim::Engine engine;
  BatchCluster cluster(engine, small_cluster());
  EXPECT_THROW(cluster.job_state("nope"), pa::NotFound);
  EXPECT_THROW(cluster.cancel("nope"), pa::NotFound);
}

TEST(BatchCluster, RejectsOversizedJob) {
  sim::Engine engine;
  BatchCluster cluster(engine, small_cluster(4));
  EXPECT_THROW(cluster.submit(job(5, 1.0)), pa::InvalidArgument);
}

TEST(BatchCluster, QueueWaitRecorded) {
  sim::Engine engine;
  BatchCluster cluster(engine, small_cluster(1));
  cluster.submit(job(1, 100.0));
  cluster.submit(job(1, 10.0));
  engine.run();
  ASSERT_EQ(cluster.queue_waits().count(), 2u);
  EXPECT_DOUBLE_EQ(cluster.queue_waits().min(), 0.0);
  EXPECT_DOUBLE_EQ(cluster.queue_waits().max(), 100.0);
}

TEST(BatchCluster, UtilizationAccounting) {
  sim::Engine engine;
  BatchCluster cluster(engine, small_cluster(2));
  cluster.submit(job(1, 50.0));
  engine.run();
  engine.run_until(100.0);
  // 1 node busy 50 s out of 2 nodes * 100 s = 0.25.
  EXPECT_NEAR(cluster.utilization(), 0.25, 1e-9);
  EXPECT_NEAR(cluster.busy_node_seconds(), 50.0, 1e-9);
}

TEST(BatchCluster, EstimateStartTimeEmptyCluster) {
  sim::Engine engine;
  BatchCluster cluster(engine, small_cluster(4));
  EXPECT_DOUBLE_EQ(cluster.estimate_start_time(2), 0.0);
}

TEST(BatchCluster, EstimateStartTimeBehindQueue) {
  sim::Engine engine;
  BatchCluster cluster(engine, small_cluster(2));
  cluster.submit(job(2, 100.0, 100.0));
  cluster.submit(job(2, 100.0, 100.0));
  engine.run_until(1.0);
  // A new 2-node job goes behind the running (ends <= 100) and queued
  // (walltime 100) jobs: estimate = 200.
  EXPECT_NEAR(cluster.estimate_start_time(2), 200.0, 1e-9);
}

TEST(BatchCluster, WalltimeClampedToSiteMax) {
  sim::Engine engine;
  BatchClusterConfig cfg = small_cluster();
  cfg.max_walltime = 60.0;
  BatchCluster cluster(engine, cfg);
  StopReason reason = StopReason::kCompleted;
  JobRequest r;
  r.num_nodes = 1;
  r.duration = -1.0;
  r.walltime_limit = 1e9;  // clamped to 60
  r.on_stopped = [&](const std::string&, StopReason why) { reason = why; };
  cluster.submit(std::move(r));
  engine.run();
  EXPECT_DOUBLE_EQ(engine.now(), 60.0);
  EXPECT_EQ(reason, StopReason::kWalltime);
}

// Regression: in event-driven mode (scheduler_cycle == 0) every submit used
// to schedule its own zero-delay pass, so a burst of N same-time submits ran
// N full passes over the queue — quadratic work. Requests at one timestamp
// must coalesce into a single pass.
TEST(BatchCluster, EventDrivenPassesCoalesced) {
  sim::Engine engine;
  BatchCluster cluster(engine, small_cluster(4));
  constexpr int kBurst = 16;
  int done = 0;
  for (int i = 0; i < kBurst; ++i) {
    JobRequest r = job(1, 10.0);
    r.on_stopped = [&](const std::string&, StopReason) { ++done; };
    cluster.submit(std::move(r));
  }
  EXPECT_EQ(cluster.schedule_passes(), 0u);
  engine.run_until(0.0);  // drain the zero-delay events at t = 0
  EXPECT_EQ(cluster.schedule_passes(), 1u)
      << "a same-timestamp submit burst must cost one pass, not one each";
  engine.run();
  EXPECT_EQ(done, kBurst);
}

TEST(BatchCluster, CoalescingStillSchedulesLaterArrivals) {
  sim::Engine engine;
  BatchCluster cluster(engine, small_cluster(2));
  int done = 0;
  auto tracked = [&](int nodes, double duration) {
    JobRequest r = job(nodes, duration);
    r.on_stopped = [&](const std::string&, StopReason) { ++done; };
    return r;
  };
  cluster.submit(tracked(2, 10.0));
  engine.schedule(5.0, [&]() { cluster.submit(tracked(2, 10.0)); });
  engine.schedule(5.0, [&]() { cluster.submit(tracked(1, 10.0)); });
  engine.run();
  EXPECT_EQ(done, 3);
  // t=0 burst: 1 pass; t=5 burst: 1 pass; then one per job completion.
  EXPECT_GE(cluster.schedule_passes(), 3u);
}

TEST(BatchCluster, ExportsMetricsWhenAttached) {
  sim::Engine engine;
  BatchCluster cluster(engine, small_cluster(4));
  obs::MetricsRegistry registry;
  cluster.attach_metrics(&registry);
  cluster.submit(job(2, 100.0));
  cluster.submit(job(1, 50.0));
  engine.run();
  EXPECT_EQ(registry.counter("batch.hpc.jobs_started").value(), 2u);
  EXPECT_EQ(
      registry.counter("batch.hpc.jobs_stopped.COMPLETED").value(), 2u);
  const auto waits = registry.histogram("batch.hpc.queue_wait").snapshot();
  EXPECT_EQ(waits.count(), 2u);
  EXPECT_GT(registry.counter("batch.hpc.schedule_passes").value(), 0u);
}

}  // namespace
}  // namespace pa::infra
