#include "pa/infra/serverless.h"

#include <gtest/gtest.h>

#include "pa/common/error.h"

namespace pa::infra {
namespace {

ServerlessConfig faas_config(int concurrency = 10) {
  ServerlessConfig cfg;
  cfg.name = "lambda";
  cfg.concurrency_limit = concurrency;
  cfg.keepalive = 100.0;
  cfg.seed = 9;
  return cfg;
}

JobRequest invocation(double duration) {
  JobRequest req;
  req.num_nodes = 1;
  req.duration = duration;
  req.walltime_limit = 900.0;
  return req;
}

TEST(Serverless, FirstInvocationIsCold) {
  sim::Engine engine;
  ServerlessPlatform faas(engine, faas_config());
  faas.submit(invocation(1.0));
  engine.run();
  EXPECT_EQ(faas.cold_starts(), 1u);
  EXPECT_EQ(faas.warm_starts(), 0u);
}

TEST(Serverless, SecondInvocationReusesWarmContainer) {
  sim::Engine engine;
  ServerlessPlatform faas(engine, faas_config());
  faas.submit(invocation(1.0));
  engine.run();
  faas.submit(invocation(1.0));
  engine.run();
  EXPECT_EQ(faas.cold_starts(), 1u);
  EXPECT_EQ(faas.warm_starts(), 1u);
}

TEST(Serverless, KeepaliveExpiryForcesColdStart) {
  sim::Engine engine;
  ServerlessPlatform faas(engine, faas_config());
  faas.submit(invocation(1.0));
  engine.run();
  // Let the warm container expire (keepalive = 100 s).
  engine.run_until(engine.now() + 200.0);
  EXPECT_EQ(faas.warm_pool_size(), 0u);
  faas.submit(invocation(1.0));
  engine.run();
  EXPECT_EQ(faas.cold_starts(), 2u);
}

TEST(Serverless, ConcurrencyLimitQueues) {
  sim::Engine engine;
  ServerlessPlatform faas(engine, faas_config(2));
  int started = 0;
  for (int i = 0; i < 5; ++i) {
    JobRequest r = invocation(100.0);
    r.on_started = [&](const std::string&, const Allocation&) { ++started; };
    faas.submit(std::move(r));
  }
  engine.run_until(50.0);
  EXPECT_EQ(started, 2);
  EXPECT_EQ(faas.active_invocations(), 2);
  engine.run();
  EXPECT_EQ(started, 5);
}

TEST(Serverless, DurationCappedAtMax) {
  sim::Engine engine;
  ServerlessConfig cfg = faas_config();
  cfg.max_duration = 10.0;
  ServerlessPlatform faas(engine, cfg);
  StopReason reason = StopReason::kCompleted;
  JobRequest r;
  r.num_nodes = 1;
  r.duration = -1.0;  // open-ended gets killed at the cap
  r.walltime_limit = 1e9;
  r.on_stopped = [&](const std::string&, StopReason why) { reason = why; };
  faas.submit(std::move(r));
  engine.run();
  EXPECT_EQ(reason, StopReason::kWalltime);
}

TEST(Serverless, MultiNodeInvocationRejected) {
  sim::Engine engine;
  ServerlessPlatform faas(engine, faas_config());
  JobRequest r;
  r.num_nodes = 2;
  r.duration = 1.0;
  EXPECT_THROW(faas.submit(std::move(r)), pa::InvalidArgument);
}

TEST(Serverless, CancelQueuedInvocation) {
  sim::Engine engine;
  ServerlessPlatform faas(engine, faas_config(1));
  faas.submit(invocation(100.0));
  const std::string id = faas.submit(invocation(1.0));
  engine.run_until(0.5);
  faas.cancel(id);
  engine.run();
  EXPECT_EQ(faas.job_state(id), JobState::kCanceled);
}

TEST(Serverless, CostAccrues) {
  sim::Engine engine;
  ServerlessPlatform faas(engine, faas_config());
  faas.submit(invocation(10.0));
  engine.run();
  EXPECT_GT(faas.total_cost(), 0.0);
}

TEST(Serverless, ColdStartsSlowerThanWarm) {
  sim::Engine engine;
  ServerlessPlatform faas(engine, faas_config());
  std::vector<double> submit_times;
  std::vector<double> start_times;
  auto run_one = [&]() {
    JobRequest r = invocation(1.0);
    submit_times.push_back(engine.now());
    r.on_started = [&](const std::string&, const Allocation&) {
      start_times.push_back(engine.now());
    };
    faas.submit(std::move(r));
    engine.run();
  };
  run_one();  // cold
  run_one();  // warm
  ASSERT_EQ(start_times.size(), 2u);
  const double cold_latency = start_times[0] - submit_times[0];
  const double warm_latency = start_times[1] - submit_times[1];
  EXPECT_GT(cold_latency, warm_latency);
}

TEST(Serverless, QueueWaitsRecorded) {
  sim::Engine engine;
  ServerlessPlatform faas(engine, faas_config());
  faas.submit(invocation(1.0));
  engine.run();
  EXPECT_EQ(faas.queue_waits().count(), 1u);
}

}  // namespace
}  // namespace pa::infra
