#include "pa/infra/cloud.h"

#include <gtest/gtest.h>

#include "pa/common/error.h"

namespace pa::infra {
namespace {

CloudConfig cloud_config(int quota_cores = 64) {
  CloudConfig cfg;
  cfg.name = "ec2";
  cfg.quota_cores = quota_cores;
  cfg.vm.cores = 4;
  cfg.startup_mu = 3.7;
  cfg.startup_sigma = 0.5;
  cfg.cost_per_core_hour = 0.04;
  cfg.seed = 21;
  return cfg;
}

JobRequest job(int vms, double duration) {
  JobRequest req;
  req.num_nodes = vms;
  req.duration = duration;
  req.walltime_limit = duration * 2.0 + 1000.0;
  return req;
}

TEST(CloudProvider, ProvisioningLatencyBeforeStart) {
  sim::Engine engine;
  CloudProvider cloud(engine, cloud_config());
  double started = -1.0;
  JobRequest r = job(2, 100.0);
  r.on_started = [&](const std::string&, const Allocation&) {
    started = engine.now();
  };
  cloud.submit(std::move(r));
  engine.run_until(1.0);
  EXPECT_DOUBLE_EQ(started, -1.0);  // VMs still booting
  engine.run();
  EXPECT_GT(started, 5.0);    // lognormal(3.7, .5): median ~40 s
  EXPECT_LT(started, 500.0);  // sanity upper bound
}

TEST(CloudProvider, GangStartUsesSlowestVm) {
  // With more VMs, the max of the startup samples grows stochastically;
  // here we only assert the callback carries the full allocation.
  sim::Engine engine;
  CloudProvider cloud(engine, cloud_config());
  Allocation alloc;
  JobRequest r = job(3, 10.0);
  r.on_started = [&](const std::string&, const Allocation& a) { alloc = a; };
  cloud.submit(std::move(r));
  engine.run();
  EXPECT_EQ(alloc.node_ids.size(), 3u);
  EXPECT_EQ(alloc.cores_per_node, 4);
}

TEST(CloudProvider, QuotaQueuesExcessRequests) {
  sim::Engine engine;
  CloudProvider cloud(engine, cloud_config(8));  // 2 VMs worth
  int started = 0;
  for (int i = 0; i < 3; ++i) {
    JobRequest r = job(1, 50.0);
    r.on_started = [&](const std::string&, const Allocation&) { ++started; };
    cloud.submit(std::move(r));
  }
  engine.run_until(200.0);
  // Two fit the quota at once; the third runs after one terminates.
  EXPECT_EQ(cloud.cores_in_use() <= 8, true);
  engine.run();
  EXPECT_EQ(started, 3);
}

TEST(CloudProvider, QuotaRejectsOversizedSingleRequest) {
  sim::Engine engine;
  CloudProvider cloud(engine, cloud_config(8));
  EXPECT_THROW(cloud.submit(job(3, 1.0)), pa::InvalidArgument);
}

TEST(CloudProvider, CostGrowsWithUsage) {
  sim::Engine engine;
  CloudProvider cloud(engine, cloud_config());
  cloud.submit(job(1, 3600.0));  // 4 cores * 1h (plus startup)
  engine.run();
  const double cost = cloud.total_cost();
  // >= 4 core-hours * 0.04 = 0.16; startup adds a little.
  EXPECT_GE(cost, 0.16);
  EXPECT_LT(cost, 0.2);
}

TEST(CloudProvider, CostIncludesRunningVms) {
  sim::Engine engine;
  CloudProvider cloud(engine, cloud_config());
  cloud.submit(job(1, 1e6));
  engine.run_until(3600.0);
  EXPECT_GT(cloud.total_cost(), 0.1);
}

TEST(CloudProvider, CancelWhileQueuedOnQuota) {
  sim::Engine engine;
  CloudProvider cloud(engine, cloud_config(4));
  cloud.submit(job(1, 10000.0));
  StopReason reason = StopReason::kCompleted;
  JobRequest r = job(1, 10.0);
  r.on_stopped = [&](const std::string&, StopReason why) { reason = why; };
  const std::string id = cloud.submit(std::move(r));
  engine.run_until(1.0);
  cloud.cancel(id);
  engine.run_until(2.0);
  EXPECT_EQ(reason, StopReason::kCanceled);
  EXPECT_EQ(cloud.job_state(id), JobState::kCanceled);
}

TEST(CloudProvider, CancelRunningReleasesQuota) {
  sim::Engine engine;
  CloudProvider cloud(engine, cloud_config());
  const std::string id = cloud.submit(job(2, 1e6));
  engine.run_until(300.0);
  EXPECT_EQ(cloud.job_state(id), JobState::kRunning);
  EXPECT_EQ(cloud.cores_in_use(), 8);
  cloud.cancel(id);
  EXPECT_EQ(cloud.cores_in_use(), 0);
  EXPECT_EQ(cloud.job_state(id), JobState::kCanceled);
}

TEST(CloudProvider, CompletionReleasesQuota) {
  sim::Engine engine;
  CloudProvider cloud(engine, cloud_config());
  const std::string id = cloud.submit(job(1, 20.0));
  engine.run();
  EXPECT_EQ(cloud.job_state(id), JobState::kDone);
  EXPECT_EQ(cloud.cores_in_use(), 0);
}

TEST(CloudProvider, QueueWaitsRecorded) {
  sim::Engine engine;
  CloudProvider cloud(engine, cloud_config());
  cloud.submit(job(1, 5.0));
  engine.run();
  ASSERT_EQ(cloud.queue_waits().count(), 1u);
  EXPECT_GT(cloud.queue_waits().min(), 0.0);
}

TEST(CloudProvider, UnknownJobThrows) {
  sim::Engine engine;
  CloudProvider cloud(engine, cloud_config());
  EXPECT_THROW(cloud.job_state("x"), pa::NotFound);
  EXPECT_THROW(cloud.cancel("x"), pa::NotFound);
}

TEST(CloudProvider, DeterministicForSeed) {
  auto run_once = []() {
    sim::Engine engine;
    CloudProvider cloud(engine, cloud_config());
    double started = -1.0;
    JobRequest r = job(4, 10.0);
    r.on_started = [&](const std::string&, const Allocation&) {
      started = engine.now();
    };
    cloud.submit(std::move(r));
    engine.run();
    return started;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace pa::infra
