#include "pa/infra/background_load.h"

#include <gtest/gtest.h>

#include "pa/infra/batch_cluster.h"

namespace pa::infra {
namespace {

TEST(BackgroundLoad, SubmitsJobsOverTime) {
  sim::Engine engine;
  BatchClusterConfig cfg;
  cfg.num_nodes = 64;
  BatchCluster cluster(engine, cfg);
  BackgroundLoadConfig load_cfg;
  load_cfg.mean_interarrival = 60.0;
  BackgroundLoad load(engine, cluster, load_cfg);
  load.start();
  engine.run_until(3600.0);
  load.stop();
  // Expect roughly 3600/60 = 60 arrivals; allow wide tolerance.
  EXPECT_GT(load.jobs_submitted(), 30u);
  EXPECT_LT(load.jobs_submitted(), 120u);
}

TEST(BackgroundLoad, StopHaltsSubmission) {
  sim::Engine engine;
  BatchClusterConfig cfg;
  cfg.num_nodes = 64;
  BatchCluster cluster(engine, cfg);
  BackgroundLoadConfig load_cfg;
  load_cfg.mean_interarrival = 10.0;
  BackgroundLoad load(engine, cluster, load_cfg);
  load.start();
  engine.run_until(100.0);
  load.stop();
  const std::size_t at_stop = load.jobs_submitted();
  engine.run_until(1000.0);
  EXPECT_EQ(load.jobs_submitted(), at_stop);
}

TEST(BackgroundLoad, UtilizationTargetApproximatelyMet) {
  sim::Engine engine;
  BatchClusterConfig cfg;
  cfg.num_nodes = 128;
  BatchCluster cluster(engine, cfg);
  const auto load_cfg = BackgroundLoad::for_utilization(0.6, cfg.num_nodes, 5);
  BackgroundLoad load(engine, cluster, load_cfg);
  load.start();
  // Warm up for a week of simulated time.
  engine.run_until(7.0 * 24 * 3600.0);
  load.stop();
  // Offered load 0.6: achieved utilization should be in the ballpark
  // (queueing and lognormal tails make this noisy).
  EXPECT_GT(cluster.utilization(), 0.35);
  EXPECT_LT(cluster.utilization(), 0.85);
}

TEST(BackgroundLoad, HigherTargetUtilizationMeansLongerWaits) {
  auto queue_wait_at = [](double utilization) {
    sim::Engine engine;
    BatchClusterConfig cfg;
    cfg.num_nodes = 64;
    BatchCluster cluster(engine, cfg);
    const auto load_cfg =
        BackgroundLoad::for_utilization(utilization, cfg.num_nodes, 7);
    BackgroundLoad load(engine, cluster, load_cfg);
    load.start();
    engine.run_until(14.0 * 24 * 3600.0);
    load.stop();
    return cluster.queue_waits().mean();
  };
  EXPECT_LT(queue_wait_at(0.3), queue_wait_at(0.9));
}

TEST(BackgroundLoad, DeterministicForSeed) {
  auto run_once = []() {
    sim::Engine engine;
    BatchClusterConfig cfg;
    cfg.num_nodes = 64;
    BatchCluster cluster(engine, cfg);
    BackgroundLoadConfig load_cfg;
    load_cfg.mean_interarrival = 30.0;
    load_cfg.seed = 77;
    BackgroundLoad load(engine, cluster, load_cfg);
    load.start();
    engine.run_until(24 * 3600.0);
    load.stop();
    return std::make_pair(load.jobs_submitted(),
                          cluster.queue_waits().mean());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(BackgroundLoad, ForUtilizationValidatesArgs) {
  EXPECT_THROW(BackgroundLoad::for_utilization(0.0, 10), pa::InvalidArgument);
  EXPECT_THROW(BackgroundLoad::for_utilization(1.0, 10), pa::InvalidArgument);
  EXPECT_THROW(BackgroundLoad::for_utilization(0.5, 0), pa::InvalidArgument);
}

}  // namespace
}  // namespace pa::infra
