#include "pa/infra/htc_pool.h"

#include <gtest/gtest.h>

#include "pa/common/error.h"

namespace pa::infra {
namespace {

HtcPoolConfig pool_config(int slots = 8) {
  HtcPoolConfig cfg;
  cfg.name = "osg";
  cfg.num_slots = slots;
  cfg.cores_per_slot = 2;
  cfg.match_latency_min = 10.0;
  cfg.match_latency_max = 10.0;  // deterministic for tests
  return cfg;
}

JobRequest job(int slots, double duration) {
  JobRequest req;
  req.num_nodes = slots;
  req.duration = duration;
  req.walltime_limit = duration * 2.0 + 10.0;
  return req;
}

TEST(HtcPool, MatchmakingDelaysStart) {
  sim::Engine engine;
  HtcPool pool(engine, pool_config());
  double started = -1.0;
  JobRequest r = job(1, 100.0);
  r.on_started = [&](const std::string&, const Allocation&) {
    started = engine.now();
  };
  pool.submit(std::move(r));
  engine.run_until(5.0);
  EXPECT_DOUBLE_EQ(started, -1.0);  // still matching
  engine.run_until(20.0);
  EXPECT_DOUBLE_EQ(started, 10.0);
}

TEST(HtcPool, AllocationExposesSlotCores) {
  sim::Engine engine;
  HtcPool pool(engine, pool_config());
  Allocation alloc;
  JobRequest r = job(3, 100.0);
  r.on_started = [&](const std::string&, const Allocation& a) { alloc = a; };
  pool.submit(std::move(r));
  engine.run_until(20.0);
  EXPECT_EQ(alloc.node_ids.size(), 3u);
  EXPECT_EQ(alloc.cores_per_node, 2);
  EXPECT_EQ(alloc.site, "osg");
}

TEST(HtcPool, SlotsLimitConcurrency) {
  sim::Engine engine;
  HtcPool pool(engine, pool_config(4));
  int started = 0;
  for (int i = 0; i < 8; ++i) {
    JobRequest r = job(1, 1000.0);
    r.on_started = [&](const std::string&, const Allocation&) { ++started; };
    pool.submit(std::move(r));
  }
  engine.run_until(50.0);
  EXPECT_EQ(started, 4);
  EXPECT_EQ(pool.free_slots(), 0);
}

TEST(HtcPool, CompletionFreesSlotsAndDispatchesNext) {
  sim::Engine engine;
  HtcPool pool(engine, pool_config(1));
  std::vector<double> starts;
  for (int i = 0; i < 3; ++i) {
    JobRequest r = job(1, 100.0);
    r.on_started = [&](const std::string&, const Allocation&) {
      starts.push_back(engine.now());
    };
    pool.submit(std::move(r));
  }
  engine.run();
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_DOUBLE_EQ(starts[0], 10.0);
  EXPECT_DOUBLE_EQ(starts[1], 110.0);
  EXPECT_DOUBLE_EQ(starts[2], 210.0);
}

TEST(HtcPool, PreemptionKillsRunningJobs) {
  sim::Engine engine;
  HtcPoolConfig cfg = pool_config(4);
  cfg.preemption_rate = 1.0 / 50.0;  // one event per 50 slot-seconds
  cfg.seed = 3;
  HtcPool pool(engine, cfg);
  int preempted = 0;
  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    JobRequest r = job(1, 10000.0);
    r.walltime_limit = 20000.0;
    r.on_stopped = [&](const std::string&, StopReason why) {
      if (why == StopReason::kPreempted) {
        ++preempted;
      } else if (why == StopReason::kCompleted) {
        ++completed;
      }
    };
    pool.submit(std::move(r));
  }
  engine.run();
  // With a mean preemption interval of 50 s and 10000 s jobs, essentially
  // every job is preempted.
  EXPECT_EQ(preempted, 4);
  EXPECT_EQ(completed, 0);
  EXPECT_EQ(pool.preemption_count(), 4u);
  EXPECT_EQ(pool.free_slots(), 4);
}

TEST(HtcPool, NoPreemptionWhenDisabled) {
  sim::Engine engine;
  HtcPool pool(engine, pool_config());
  StopReason reason = StopReason::kPreempted;
  JobRequest r = job(1, 100.0);
  r.on_stopped = [&](const std::string&, StopReason why) { reason = why; };
  pool.submit(std::move(r));
  engine.run();
  EXPECT_EQ(reason, StopReason::kCompleted);
  EXPECT_EQ(pool.preemption_count(), 0u);
}

TEST(HtcPool, CancelWhileMatching) {
  sim::Engine engine;
  HtcPool pool(engine, pool_config());
  StopReason reason = StopReason::kCompleted;
  JobRequest r = job(1, 100.0);
  r.on_stopped = [&](const std::string&, StopReason why) { reason = why; };
  const std::string id = pool.submit(std::move(r));
  engine.run_until(1.0);
  pool.cancel(id);
  engine.run();
  EXPECT_EQ(reason, StopReason::kCanceled);
  EXPECT_EQ(pool.job_state(id), JobState::kCanceled);
}

TEST(HtcPool, CancelRunning) {
  sim::Engine engine;
  HtcPool pool(engine, pool_config());
  const std::string id = pool.submit(job(2, 10000.0));
  engine.run_until(20.0);
  EXPECT_EQ(pool.job_state(id), JobState::kRunning);
  pool.cancel(id);
  EXPECT_EQ(pool.job_state(id), JobState::kCanceled);
  EXPECT_EQ(pool.free_slots(), 8);
}

TEST(HtcPool, QueueWaitIncludesMatchLatency) {
  sim::Engine engine;
  HtcPool pool(engine, pool_config());
  pool.submit(job(1, 10.0));
  engine.run();
  ASSERT_EQ(pool.queue_waits().count(), 1u);
  EXPECT_DOUBLE_EQ(pool.queue_waits().min(), 10.0);
}

TEST(HtcPool, RejectsOversizedJob) {
  sim::Engine engine;
  HtcPool pool(engine, pool_config(4));
  EXPECT_THROW(pool.submit(job(5, 1.0)), pa::InvalidArgument);
}

TEST(HtcPool, UnknownJobThrows) {
  sim::Engine engine;
  HtcPool pool(engine, pool_config());
  EXPECT_THROW(pool.job_state("x"), pa::NotFound);
}

TEST(HtcPool, TotalCores) {
  sim::Engine engine;
  HtcPool pool(engine, pool_config(8));
  EXPECT_EQ(pool.total_cores(), 16);
}

}  // namespace
}  // namespace pa::infra
