#include "pa/infra/network.h"

#include <gtest/gtest.h>

#include "pa/common/error.h"

namespace pa::infra {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 100 MB/s link, 1 s latency between a and b.
    net_.set_link("a", "b", LinkSpec{1e8, 1.0});
  }

  sim::Engine engine_;
  NetworkModel net_{engine_};
};

TEST_F(NetworkTest, SingleTransferTime) {
  double done_at = -1.0;
  net_.transfer("a", "b", 1e8, [&]() { done_at = engine_.now(); });
  engine_.run();
  // latency 1 s + 1e8 bytes / 1e8 B/s = 2 s.
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST_F(NetworkTest, EstimateMatchesUncontendedTransfer) {
  const double estimate = net_.estimate_seconds("a", "b", 1e8);
  double done_at = -1.0;
  net_.transfer("a", "b", 1e8, [&]() { done_at = engine_.now(); });
  engine_.run();
  EXPECT_NEAR(done_at, estimate, 1e-9);
}

TEST_F(NetworkTest, ConcurrentTransfersShareBandwidth) {
  std::vector<double> done;
  net_.transfer("a", "b", 1e8, [&]() { done.push_back(engine_.now()); });
  net_.transfer("a", "b", 1e8, [&]() { done.push_back(engine_.now()); });
  engine_.run();
  ASSERT_EQ(done.size(), 2u);
  // Both streams share 1e8 B/s: each gets 5e7 -> 2 s of data time + 1 s
  // latency = 3 s.
  EXPECT_NEAR(done[0], 3.0, 1e-6);
  EXPECT_NEAR(done[1], 3.0, 1e-6);
}

TEST_F(NetworkTest, LateJoinerSlowsFirstTransfer) {
  double first_done = -1.0;
  net_.transfer("a", "b", 1e8, [&]() { first_done = engine_.now(); });
  engine_.schedule(1.5, [&]() {
    // First transfer has moved 0.5 s * 1e8 = 5e7 bytes by now.
    net_.transfer("a", "b", 1e8, [&]() {});
  });
  engine_.run();
  // First: 1 s latency; full rate until 2.5 (the joiner's latency ends at
  // 2.5): by 2.5 it moved 1.5e8? No: joins at 1.5 + 1 s latency = 2.5, but
  // the first only needs 1e8 total -> finishes at 2.0 before contention.
  EXPECT_NEAR(first_done, 2.0, 1e-6);
}

TEST_F(NetworkTest, ContentionExtendsCompletion) {
  double first_done = -1.0;
  net_.transfer("a", "b", 2e8, [&]() { first_done = engine_.now(); });
  engine_.schedule(0.0, [&]() {
    net_.transfer("a", "b", 2e8, [&]() {});
  });
  engine_.run();
  // Both start data at t=1, share bandwidth: 2e8 each at 5e7 B/s = 4 s
  // -> done at 5.
  EXPECT_NEAR(first_done, 5.0, 1e-6);
}

TEST_F(NetworkTest, ReverseDirectionConfiguredSymmetrically) {
  double done_at = -1.0;
  net_.transfer("b", "a", 1e8, [&]() { done_at = engine_.now(); });
  engine_.run();
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST_F(NetworkTest, IndependentDirectionsDoNotContend) {
  std::vector<double> done;
  net_.transfer("a", "b", 1e8, [&]() { done.push_back(engine_.now()); });
  net_.transfer("b", "a", 1e8, [&]() { done.push_back(engine_.now()); });
  engine_.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2.0, 1e-6);
  EXPECT_NEAR(done[1], 2.0, 1e-6);
}

TEST_F(NetworkTest, LoopbackIsFast) {
  double done_at = -1.0;
  net_.transfer("a", "a", 2e9, [&]() { done_at = engine_.now(); });
  engine_.run();
  // Default loopback: 2 GB/s, 0.1 ms.
  EXPECT_NEAR(done_at, 1.0001, 1e-3);
}

TEST_F(NetworkTest, UnknownLinkThrows) {
  EXPECT_THROW(net_.transfer("a", "z", 1.0, nullptr), pa::NotFound);
  EXPECT_THROW(net_.estimate_seconds("z", "a", 1.0), pa::NotFound);
}

TEST_F(NetworkTest, CancelStopsTransfer) {
  bool completed = false;
  const TransferId id =
      net_.transfer("a", "b", 1e8, [&]() { completed = true; });
  engine_.run_until(0.5);
  EXPECT_TRUE(net_.cancel(id));
  engine_.run();
  EXPECT_FALSE(completed);
  EXPECT_FALSE(net_.cancel(id));  // second cancel reports false
}

TEST_F(NetworkTest, CancelRestoresFullRateForOthers) {
  double done_at = -1.0;
  net_.transfer("a", "b", 2e8, [&]() { done_at = engine_.now(); });
  const TransferId victim = net_.transfer("a", "b", 2e8, nullptr);
  engine_.schedule(3.0, [&]() { net_.cancel(victim); });
  engine_.run();
  // Shared rate 5e7 until t=3 (data from t=1: 2 s -> 1e8 moved), then full
  // rate 1e8 for the remaining 1e8 -> 1 s more: done at 4.
  EXPECT_NEAR(done_at, 4.0, 1e-6);
}

TEST_F(NetworkTest, ZeroByteTransferCompletesAfterLatency) {
  double done_at = -1.0;
  net_.transfer("a", "b", 0.0, [&]() { done_at = engine_.now(); });
  engine_.run();
  EXPECT_NEAR(done_at, 1.0, 1e-9);
}

TEST_F(NetworkTest, TransferTimesRecorded) {
  net_.transfer("a", "b", 1e8, nullptr);
  engine_.run();
  ASSERT_EQ(net_.transfer_times().count(), 1u);
  EXPECT_NEAR(net_.transfer_times().max(), 2.0, 1e-9);
}

TEST_F(NetworkTest, ActiveOnLinkCounts) {
  net_.transfer("a", "b", 1e8, nullptr);
  net_.transfer("a", "b", 1e8, nullptr);
  EXPECT_EQ(net_.active_on_link("a", "b"), 2);
  engine_.run();
  EXPECT_EQ(net_.active_on_link("a", "b"), 0);
}

TEST(NetworkModel, AsymmetricLink) {
  sim::Engine engine;
  NetworkModel net(engine);
  net.set_link("a", "b", LinkSpec{1e8, 0.0}, /*symmetric=*/false);
  net.set_link("b", "a", LinkSpec{1e7, 0.0}, /*symmetric=*/false);
  EXPECT_NEAR(net.estimate_seconds("a", "b", 1e8), 1.0, 1e-9);
  EXPECT_NEAR(net.estimate_seconds("b", "a", 1e8), 10.0, 1e-9);
}

TEST(NetworkModel, InvalidSpecRejected) {
  sim::Engine engine;
  NetworkModel net(engine);
  EXPECT_THROW(net.set_link("a", "b", LinkSpec{0.0, 1.0}),
               pa::InvalidArgument);
  EXPECT_THROW(net.set_link("a", "b", LinkSpec{1.0, -1.0}),
               pa::InvalidArgument);
}

}  // namespace
}  // namespace pa::infra
