#include "pa/infra/storage.h"

#include <gtest/gtest.h>

#include "pa/common/error.h"

namespace pa::infra {
namespace {

StorageConfig pfs_config() {
  StorageConfig cfg;
  cfg.name = "lustre";
  cfg.tier = StorageTier::kParallelFs;
  cfg.site = "hpc";
  cfg.capacity_bytes = 1e9;
  cfg.read_bandwidth = 1e8;
  cfg.write_bandwidth = 5e7;
  cfg.latency = 0.01;
  return cfg;
}

TEST(Storage, CreateAndQueryFiles) {
  sim::Engine engine;
  StorageSystem fs(engine, pfs_config());
  fs.create_file("/data/a", 1000.0);
  EXPECT_TRUE(fs.exists("/data/a"));
  EXPECT_FALSE(fs.exists("/data/b"));
  EXPECT_DOUBLE_EQ(fs.file_size("/data/a"), 1000.0);
  EXPECT_DOUBLE_EQ(fs.used_bytes(), 1000.0);
}

TEST(Storage, DuplicateCreateRejected) {
  sim::Engine engine;
  StorageSystem fs(engine, pfs_config());
  fs.create_file("/x", 1.0);
  EXPECT_THROW(fs.create_file("/x", 1.0), pa::InvalidArgument);
}

TEST(Storage, CapacityEnforced) {
  sim::Engine engine;
  StorageSystem fs(engine, pfs_config());
  fs.create_file("/big", 9e8);
  EXPECT_THROW(fs.create_file("/too-much", 2e8), pa::ResourceError);
  EXPECT_DOUBLE_EQ(fs.free_bytes(), 1e8);
}

TEST(Storage, DeleteFreesSpace) {
  sim::Engine engine;
  StorageSystem fs(engine, pfs_config());
  fs.create_file("/x", 5e8);
  fs.delete_file("/x");
  EXPECT_FALSE(fs.exists("/x"));
  EXPECT_DOUBLE_EQ(fs.used_bytes(), 0.0);
  EXPECT_THROW(fs.delete_file("/x"), pa::NotFound);
}

TEST(Storage, ReadTimeMatchesBandwidth) {
  sim::Engine engine;
  StorageSystem fs(engine, pfs_config());
  fs.create_file("/data", 1e8);
  double done_at = -1.0;
  fs.read("/data", [&]() { done_at = engine.now(); });
  engine.run();
  // 0.01 latency + 1e8 / 1e8 = ~1.01 s.
  EXPECT_NEAR(done_at, 1.01, 1e-3);
  EXPECT_EQ(fs.read_times().count(), 1u);
}

TEST(Storage, ReadOfMissingFileThrows) {
  sim::Engine engine;
  StorageSystem fs(engine, pfs_config());
  EXPECT_THROW(fs.read("/nope", nullptr), pa::NotFound);
}

TEST(Storage, WriteCreatesFileOnCompletion) {
  sim::Engine engine;
  StorageSystem fs(engine, pfs_config());
  double done_at = -1.0;
  fs.write("/out", 5e7, [&]() { done_at = engine.now(); });
  EXPECT_FALSE(fs.exists("/out"));  // not visible until complete
  EXPECT_DOUBLE_EQ(fs.used_bytes(), 5e7);  // but reserved
  engine.run();
  // 0.01 latency + 5e7 / 5e7 = ~1.01 s.
  EXPECT_NEAR(done_at, 1.01, 1e-3);
  EXPECT_TRUE(fs.exists("/out"));
  EXPECT_DOUBLE_EQ(fs.used_bytes(), 5e7);
}

TEST(Storage, OverwriteReplacesSize) {
  sim::Engine engine;
  StorageSystem fs(engine, pfs_config());
  fs.create_file("/f", 100.0);
  fs.write("/f", 300.0, nullptr);
  engine.run();
  EXPECT_DOUBLE_EQ(fs.file_size("/f"), 300.0);
  EXPECT_DOUBLE_EQ(fs.used_bytes(), 300.0);
}

TEST(Storage, WriteCapacityEnforcedUpfront) {
  sim::Engine engine;
  StorageSystem fs(engine, pfs_config());
  fs.create_file("/a", 9.5e8);
  EXPECT_THROW(fs.write("/b", 1e8, nullptr), pa::ResourceError);
}

TEST(Storage, ConcurrentReadsShareBandwidth) {
  sim::Engine engine;
  StorageSystem fs(engine, pfs_config());
  fs.create_file("/a", 1e8);
  fs.create_file("/b", 1e8);
  std::vector<double> done;
  fs.read("/a", [&]() { done.push_back(engine.now()); });
  fs.read("/b", [&]() { done.push_back(engine.now()); });
  engine.run();
  ASSERT_EQ(done.size(), 2u);
  // Shared 1e8 B/s: each effectively 5e7 -> ~2 s.
  EXPECT_NEAR(done[0], 2.0, 0.1);
  EXPECT_NEAR(done[1], 2.0, 0.1);
}

TEST(Storage, ReadsAndWritesUseIndependentChannels) {
  sim::Engine engine;
  StorageSystem fs(engine, pfs_config());
  fs.create_file("/a", 1e8);
  std::vector<double> done;
  fs.read("/a", [&]() { done.push_back(engine.now()); });
  fs.write("/b", 5e7, [&]() { done.push_back(engine.now()); });
  engine.run();
  ASSERT_EQ(done.size(), 2u);
  // No cross-channel contention: both ~1.01 s.
  EXPECT_NEAR(done[0], 1.01, 0.05);
  EXPECT_NEAR(done[1], 1.01, 0.05);
}

TEST(Storage, EstimatesMatchConfig) {
  sim::Engine engine;
  StorageSystem fs(engine, pfs_config());
  EXPECT_NEAR(fs.estimate_read_seconds(1e8), 1.01, 1e-9);
  EXPECT_NEAR(fs.estimate_write_seconds(5e7), 1.01, 1e-9);
}

TEST(Storage, TierNames) {
  EXPECT_STREQ(to_string(StorageTier::kParallelFs), "parallel-fs");
  EXPECT_STREQ(to_string(StorageTier::kObjectStore), "object-store");
  EXPECT_STREQ(to_string(StorageTier::kLocalSsd), "local-ssd");
}

}  // namespace
}  // namespace pa::infra
