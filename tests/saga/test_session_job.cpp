#include <gtest/gtest.h>

#include <memory>

#include "pa/common/error.h"
#include "pa/infra/batch_cluster.h"
#include "pa/saga/job.h"
#include "pa/saga/session.h"

namespace pa::saga {
namespace {

class SagaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    infra::BatchClusterConfig cfg;
    cfg.name = "hpc-a";
    cfg.num_nodes = 4;
    cfg.node.cores = 8;
    cluster_ = std::make_shared<infra::BatchCluster>(engine_, cfg);
    session_.register_resource("slurm://hpc-a", cluster_);
  }

  sim::Engine engine_;
  Session session_;
  std::shared_ptr<infra::BatchCluster> cluster_;
};

TEST_F(SagaTest, ResolveRegisteredResource) {
  EXPECT_TRUE(session_.has("slurm://hpc-a"));
  EXPECT_EQ(session_.resolve("slurm://hpc-a").get(), cluster_.get());
}

TEST_F(SagaTest, ResolveUnknownThrows) {
  EXPECT_FALSE(session_.has("slurm://other"));
  EXPECT_THROW(session_.resolve("slurm://other"), pa::NotFound);
}

TEST_F(SagaTest, DuplicateRegistrationRejected) {
  EXPECT_THROW(session_.register_resource("slurm://hpc-a", cluster_),
               pa::InvalidArgument);
}

TEST_F(SagaTest, NullResourceRejected) {
  EXPECT_THROW(session_.register_resource("x://y", nullptr),
               pa::InvalidArgument);
}

TEST_F(SagaTest, ResourceUrlsSorted) {
  infra::BatchClusterConfig cfg;
  cfg.name = "hpc-b";
  session_.register_resource(
      "slurm://aaa", std::make_shared<infra::BatchCluster>(engine_, cfg));
  const auto urls = session_.resource_urls();
  ASSERT_EQ(urls.size(), 2u);
  EXPECT_EQ(urls[0], "slurm://aaa");
  EXPECT_EQ(urls[1], "slurm://hpc-a");
}

TEST_F(SagaTest, SubmitRunsJobThroughAdaptor) {
  JobService service(session_, "slurm://hpc-a");
  EXPECT_EQ(service.site_name(), "hpc-a");
  EXPECT_EQ(service.total_cores(), 32);

  infra::Allocation seen;
  bool stopped = false;
  JobDescription jd;
  jd.executable = "ensemble-member";
  jd.number_of_nodes = 2;
  jd.walltime_limit = 100.0;
  jd.simulated_duration = 50.0;
  jd.on_started = [&](const infra::Allocation& a) { seen = a; };
  jd.on_stopped = [&](infra::StopReason r) {
    stopped = true;
    EXPECT_EQ(r, infra::StopReason::kCompleted);
  };
  Job job = service.submit(jd);
  EXPECT_TRUE(job.valid());
  EXPECT_EQ(job.state(), infra::JobState::kQueued);
  engine_.run();
  EXPECT_TRUE(stopped);
  EXPECT_EQ(seen.node_ids.size(), 2u);
  EXPECT_EQ(job.state(), infra::JobState::kDone);
}

TEST_F(SagaTest, CancelThroughHandle) {
  JobService service(session_, "slurm://hpc-a");
  JobDescription jd;
  jd.number_of_nodes = 1;
  jd.walltime_limit = 1000.0;
  jd.simulated_duration = -1.0;
  Job job = service.submit(jd);
  engine_.run_until(1.0);
  EXPECT_EQ(job.state(), infra::JobState::kRunning);
  job.cancel();
  engine_.run();
  EXPECT_EQ(job.state(), infra::JobState::kCanceled);
}

TEST_F(SagaTest, InvalidDescriptionRejected) {
  JobService service(session_, "slurm://hpc-a");
  JobDescription jd;
  jd.number_of_nodes = 0;
  EXPECT_THROW(service.submit(jd), pa::InvalidArgument);
  jd.number_of_nodes = 1;
  jd.walltime_limit = 0.0;
  EXPECT_THROW(service.submit(jd), pa::InvalidArgument);
}

TEST_F(SagaTest, JobServiceForUnknownResourceThrows) {
  EXPECT_THROW(JobService(session_, "pbs://nowhere"), pa::NotFound);
}

TEST(SagaJob, DefaultHandleInvalid) {
  Job job;
  EXPECT_FALSE(job.valid());
}

}  // namespace
}  // namespace pa::saga
