#include "pa/saga/url.h"

#include <gtest/gtest.h>

#include "pa/common/error.h"

namespace pa::saga {
namespace {

TEST(Url, ParseSchemeHost) {
  const Url u = Url::parse("slurm://stampede2");
  EXPECT_EQ(u.scheme, "slurm");
  EXPECT_EQ(u.host, "stampede2");
  EXPECT_TRUE(u.path.empty());
}

TEST(Url, ParseWithPath) {
  const Url u = Url::parse("file://archive/data/run42");
  EXPECT_EQ(u.scheme, "file");
  EXPECT_EQ(u.host, "archive");
  EXPECT_EQ(u.path, "/data/run42");
}

TEST(Url, ParseWithQuery) {
  const Url u = Url::parse("local://host?cores_per_node=8&numa=2");
  EXPECT_EQ(u.scheme, "local");
  EXPECT_EQ(u.host, "host");
  EXPECT_EQ(u.query.get_int("cores_per_node"), 8);
  EXPECT_EQ(u.query.get_int("numa"), 2);
}

TEST(Url, RoundTrip) {
  for (const std::string s :
       {"slurm://hpc-a", "condor://osg/pool", "ec2://us-east?quota=64"}) {
    EXPECT_EQ(Url::parse(s).to_string(), s);
  }
}

TEST(Url, MalformedRejected) {
  EXPECT_THROW(Url::parse("no-scheme"), pa::InvalidArgument);
  EXPECT_THROW(Url::parse("://host"), pa::InvalidArgument);
  EXPECT_THROW(Url::parse("scheme://"), pa::InvalidArgument);
}

TEST(Url, Equality) {
  EXPECT_EQ(Url::parse("a://b"), Url::parse("a://b"));
  EXPECT_FALSE(Url::parse("a://b") == Url::parse("a://c"));
}

}  // namespace
}  // namespace pa::saga
