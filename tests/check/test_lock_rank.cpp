#include "pa/check/mutex.h"

#include <gtest/gtest.h>

#include <thread>

namespace pa::check {
namespace {

// The validator is compiled in for every test build (PA_LOCK_RANK_CHECKS
// defaults ON via CMake); guard anyway so a build with it forced off still
// compiles and skips.
bool rank_checks_on() { return lock_rank::enabled(); }

TEST(LockRank, CorrectOrderNestingPasses) {
  Mutex outer{LockRank::kService, "test::outer"};
  Mutex inner{LockRank::kJournal, "test::inner"};
  Mutex leaf{LockRank::kLeaf, "test::leaf"};
  {
    MutexLock a(outer);
    MutexLock b(inner);
    MutexLock c(leaf);
    if (rank_checks_on()) {
      EXPECT_EQ(lock_rank::held_depth(), 3u);
    }
  }
  if (rank_checks_on()) {
    EXPECT_EQ(lock_rank::held_depth(), 0u);
  }
}

TEST(LockRank, SameRankSequentialReacquirePasses) {
  // Sequential (non-nested) acquisition of same-rank locks is legal — the
  // store locks its shards one at a time this way.
  Mutex a{LockRank::kStoreShard, "test::shard-a"};
  Mutex b{LockRank::kStoreShard, "test::shard-b"};
  { MutexLock la(a); }
  { MutexLock lb(b); }
  SUCCEED();
}

using LockRankDeathTest = ::testing::Test;

TEST(LockRankDeathTest, RankInversionAborts) {
  if (!rank_checks_on()) {
    GTEST_SKIP() << "PA_LOCK_RANK_CHECKS disabled in this build";
  }
  Mutex inner{LockRank::kJournal, "test::inner"};
  Mutex outer{LockRank::kService, "test::outer"};
  EXPECT_DEATH(
      {
        MutexLock a(inner);
        // pa_analyze:allow(lock-order): deliberate inversion — this death
        // test proves the runtime validator aborts on it.
        MutexLock b(outer);  // kService(10) under kJournal(45): inversion
      },
      "lock rank violation.*inversion");
}

TEST(LockRankDeathTest, SameRankNestingAborts) {
  if (!rank_checks_on()) {
    GTEST_SKIP() << "PA_LOCK_RANK_CHECKS disabled in this build";
  }
  Mutex a{LockRank::kStoreShard, "test::shard-a"};
  Mutex b{LockRank::kStoreShard, "test::shard-b"};
  EXPECT_DEATH(
      {
        MutexLock la(a);
        // pa_analyze:allow(lock-order): deliberate same-rank nesting —
        // this death test proves the runtime validator aborts on it.
        MutexLock lb(b);  // equal ranks may not nest
      },
      "lock rank violation");
}

TEST(LockRankDeathTest, SelfDeadlockRelockAborts) {
  if (!rank_checks_on()) {
    GTEST_SKIP() << "PA_LOCK_RANK_CHECKS disabled in this build";
  }
  Mutex m{LockRank::kLeaf, "test::self"};
  EXPECT_DEATH(
      {
        MutexLock a(m);
        m.lock();  // non-recursive relock by the holder
      },
      "self-deadlock");
}

TEST(LockRank, RecursiveReacquirePasses) {
  RecursiveMutex m{LockRank::kService, "test::recursive"};
  RecursiveMutexLock a(m);
  {
    RecursiveMutexLock b(m);  // legal re-entry, exempt from the rank check
    if (rank_checks_on()) {
      // One stack frame, count 2 — still a single held lock.
      EXPECT_EQ(lock_rank::held_depth(), 1u);
    }
  }
  if (rank_checks_on()) {
    EXPECT_EQ(lock_rank::held_depth(), 1u);
  }
}

TEST(LockRank, RecursiveReacquireAllowedBelowHigherRank) {
  // The service re-enters its own (outermost) lock while inner locks are
  // held — e.g. submit_pilot_locked journaling under the journal mutex is
  // impossible, but callbacks re-entering the service are real. Re-entry
  // must be exempt from the strictly-increasing rule.
  RecursiveMutex svc{LockRank::kService, "test::svc"};
  Mutex jn{LockRank::kJournal, "test::jn"};
  RecursiveMutexLock a(svc);
  MutexLock b(jn);
  RecursiveMutexLock c(svc);  // re-entry, not a new (inverted) acquisition
  SUCCEED();
}

TEST(LockRank, RanksResetAcrossThreads) {
  if (!rank_checks_on()) {
    GTEST_SKIP() << "PA_LOCK_RANK_CHECKS disabled in this build";
  }
  Mutex low{LockRank::kLeaf, "test::low"};
  MutexLock hold(low);  // this thread now sits at the innermost rank
  // A fresh thread starts with an empty held stack: acquiring an
  // outer-rank lock there is legal even while this thread holds kLeaf.
  std::thread t([&]() {
    EXPECT_EQ(lock_rank::held_depth(), 0u);
    Mutex high{LockRank::kService, "test::high"};
    MutexLock l(high);
    EXPECT_EQ(lock_rank::held_depth(), 1u);
  });
  t.join();
  EXPECT_EQ(lock_rank::held_depth(), 1u);  // still just `low` here
}

TEST(LockRank, MutexLockBalancedDropAndReacquire) {
  Mutex m{LockRank::kJournalWriter, "test::drop"};
  MutexLock lock(m);
  lock.unlock();  // drop around "I/O"
  if (rank_checks_on()) {
    EXPECT_EQ(lock_rank::held_depth(), 0u);
  }
  lock.lock();  // balanced reacquire; destructor releases normally
  if (rank_checks_on()) {
    EXPECT_EQ(lock_rank::held_depth(), 1u);
  }
}

TEST(LockRank, CondVarWaitKeepsStackPosition) {
  Mutex m{LockRank::kThreadPool, "test::cv"};
  CondVar cv;
  bool ready = false;
  std::thread waker([&]() {
    MutexLock lock(m);
    ready = true;
    cv.notify_one();
  });
  {
    MutexLock lock(m);
    while (!ready) {
      cv.wait(lock);
    }
    if (rank_checks_on()) {
      EXPECT_EQ(lock_rank::held_depth(), 1u);
    }
  }
  waker.join();
}

TEST(LockRankDeathTest, CondVarWaitUnderInnerLockAborts) {
  if (!rank_checks_on()) {
    GTEST_SKIP() << "PA_LOCK_RANK_CHECKS disabled in this build";
  }
  Mutex outer{LockRank::kService, "test::outer"};
  Mutex inner{LockRank::kJournal, "test::inner"};
  CondVar cv;
  EXPECT_DEATH(
      {
        MutexLock a(outer);
        MutexLock b(inner);
        cv.wait(a);  // waiting on `outer` would block with `inner` held
      },
      "condition wait");
}

}  // namespace
}  // namespace pa::check
