/// Direct tests of the two Runtime bindings, below the Pilot-API facade.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "pa/common/error.h"
#include "pa/infra/batch_cluster.h"
#include "pa/rt/local_runtime.h"
#include "pa/rt/sim_runtime.h"
#include "pa/saga/session.h"

namespace pa::rt {
namespace {

class SimRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    infra::BatchClusterConfig cfg;
    cfg.name = "hpc";
    cfg.num_nodes = 4;
    cfg.node.cores = 8;
    session_.register_resource(
        "slurm://hpc", std::make_shared<infra::BatchCluster>(engine_, cfg));
    runtime_ = std::make_unique<SimRuntime>(engine_, session_);
  }

  core::PilotDescription pilot_desc() {
    core::PilotDescription d;
    d.resource_url = "slurm://hpc";
    d.nodes = 2;
    d.walltime = 1000.0;
    return d;
  }

  sim::Engine engine_;
  saga::Session session_;
  std::unique_ptr<SimRuntime> runtime_;
};

TEST_F(SimRuntimeTest, PilotActivationAfterBootstrap) {
  double active_at = -1.0;
  int cores = 0;
  std::string site;
  core::PilotRuntimeCallbacks cb;
  cb.on_active = [&](const std::string&, int c, const std::string& s) {
    active_at = engine_.now();
    cores = c;
    site = s;
  };
  runtime_->start_pilot("p1", pilot_desc(), std::move(cb));
  engine_.run_until(10.0);
  EXPECT_DOUBLE_EQ(active_at, 2.0);  // agent_bootstrap_time default
  EXPECT_EQ(cores, 16);
  EXPECT_EQ(site, "hpc");
}

TEST_F(SimRuntimeTest, PilotIdReuseRejected) {
  runtime_->start_pilot("p1", pilot_desc(), {});
  EXPECT_THROW(runtime_->start_pilot("p1", pilot_desc(), {}),
               pa::InvalidArgument);
}

TEST_F(SimRuntimeTest, WalltimeTerminatesAsDone) {
  core::PilotState final_state = core::PilotState::kNew;
  core::PilotRuntimeCallbacks cb;
  cb.on_terminated = [&](const std::string&, core::PilotState s) {
    final_state = s;
  };
  runtime_->start_pilot("p1", pilot_desc(), std::move(cb));
  engine_.run();
  EXPECT_EQ(final_state, core::PilotState::kDone);
  EXPECT_DOUBLE_EQ(engine_.now(), 1000.0);
}

TEST_F(SimRuntimeTest, CancelTerminatesAsCanceled) {
  core::PilotState final_state = core::PilotState::kNew;
  core::PilotRuntimeCallbacks cb;
  cb.on_terminated = [&](const std::string&, core::PilotState s) {
    final_state = s;
  };
  runtime_->start_pilot("p1", pilot_desc(), std::move(cb));
  engine_.run_until(10.0);
  runtime_->cancel_pilot("p1");
  engine_.run_until(20.0);
  EXPECT_EQ(final_state, core::PilotState::kCanceled);
  EXPECT_THROW(runtime_->cancel_pilot("ghost"), pa::NotFound);
}

TEST_F(SimRuntimeTest, UnitCompletionAfterDurationPlusOverhead) {
  bool active = false;
  core::PilotRuntimeCallbacks cb;
  cb.on_active = [&](const std::string&, int, const std::string&) {
    active = true;
  };
  runtime_->start_pilot("p1", pilot_desc(), std::move(cb));
  engine_.run_until(5.0);
  ASSERT_TRUE(active);

  double done_at = -1.0;
  core::ComputeUnitDescription unit;
  unit.duration = 10.0;
  runtime_->execute_unit("p1", unit, "u1",
                         [&](bool ok) {
                           EXPECT_TRUE(ok);
                           done_at = engine_.now();
                         });
  engine_.run_until(100.0);
  EXPECT_NEAR(done_at, 5.0 + 10.0 + 0.02, 1e-9);
}

TEST_F(SimRuntimeTest, PilotDeathCancelsInFlightUnits) {
  core::PilotRuntimeCallbacks cb;
  runtime_->start_pilot("p1", pilot_desc(), std::move(cb));
  engine_.run_until(5.0);
  bool completed = false;
  core::ComputeUnitDescription unit;
  unit.duration = 100.0;
  runtime_->execute_unit("p1", unit, "u1",
                         [&](bool) { completed = true; });
  runtime_->cancel_pilot("p1");
  engine_.run();
  EXPECT_FALSE(completed);  // the completion event died with the pilot
}

TEST_F(SimRuntimeTest, DriveUntilThrowsOnDrainedQueue) {
  EXPECT_THROW(
      runtime_->drive_until([]() { return false; }, 100.0),
      pa::TimeoutError);
}

TEST(LocalRuntimeTest, NowAdvancesMonotonically) {
  LocalRuntime runtime;
  const double a = runtime.now();
  const double b = runtime.now();
  EXPECT_GE(b, a);
}

TEST(LocalRuntimeTest, UnknownPilotRejected) {
  LocalRuntime runtime;
  core::ComputeUnitDescription d;
  EXPECT_THROW(runtime.execute_unit("ghost", d, "u", [](bool) {}),
               pa::NotFound);
  EXPECT_THROW(runtime.cancel_pilot("ghost"), pa::NotFound);
}

TEST(LocalRuntimeTest, ActivationIsSynchronous) {
  LocalRuntime runtime;
  bool active = false;
  core::PilotRuntimeCallbacks cb;
  cb.on_active = [&](const std::string&, int cores, const std::string&) {
    active = true;
    EXPECT_EQ(cores, 3);
  };
  core::PilotDescription d;
  d.resource_url = "local://box";
  d.nodes = 3;
  d.walltime = 1e9;
  runtime.start_pilot("p1", d, std::move(cb));
  EXPECT_TRUE(active);
}

TEST(LocalRuntimeTest, ExecuteRunsPayloadOnWorker) {
  LocalRuntime runtime;
  core::PilotDescription d;
  d.resource_url = "local://box";
  d.nodes = 1;
  d.walltime = 1e9;
  runtime.start_pilot("p1", d, {});
  std::atomic<bool> ran{false};
  std::atomic<bool> done{false};
  core::ComputeUnitDescription unit;
  unit.work = [&ran]() { ran.store(true); };
  runtime.execute_unit("p1", unit, "u1", [&done](bool ok) {
    EXPECT_TRUE(ok);
    done.store(true);
  });
  runtime.drive_until([&]() { return done.load(); }, 10.0);
  EXPECT_TRUE(ran.load());
}

TEST(LocalRuntimeTest, DriveUntilTimesOut) {
  LocalRuntime runtime;
  EXPECT_THROW(runtime.drive_until([]() { return false; }, 0.05),
               pa::TimeoutError);
}

TEST(LocalRuntimeTest, CancelSuppressesLateCompletions) {
  LocalRuntime runtime;
  core::PilotDescription d;
  d.resource_url = "local://box";
  d.nodes = 1;
  d.walltime = 1e9;
  core::PilotState final_state = core::PilotState::kNew;
  core::PilotRuntimeCallbacks cb;
  cb.on_terminated = [&](const std::string&, core::PilotState s) {
    final_state = s;
  };
  runtime.start_pilot("p1", d, std::move(cb));
  std::atomic<bool> completed{false};
  std::atomic<bool> release{false};
  core::ComputeUnitDescription unit;
  unit.work = [&release]() {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  runtime.execute_unit("p1", unit, "u1",
                       [&completed](bool) { completed.store(true); });
  runtime.cancel_pilot("p1");
  EXPECT_EQ(final_state, core::PilotState::kCanceled);
  release.store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(completed.load());  // stale completion was swallowed
}

}  // namespace
}  // namespace pa::rt
