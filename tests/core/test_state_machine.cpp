#include "pa/core/state_machine.h"

#include <gtest/gtest.h>

#include <vector>

#include "pa/common/error.h"

namespace pa::core {
namespace {

// --- exhaustive transition-table properties ---

const std::vector<PilotState> kAllPilotStates = {
    PilotState::kNew,  PilotState::kSubmitted, PilotState::kActive,
    PilotState::kDone, PilotState::kFailed,    PilotState::kCanceled};

const std::vector<UnitState> kAllUnitStates = {
    UnitState::kNew,       UnitState::kPending, UnitState::kStagingIn,
    UnitState::kScheduled, UnitState::kRunning, UnitState::kDone,
    UnitState::kFailed,    UnitState::kCanceled};

TEST(PilotStateMachine, FinalStatesAreSticky) {
  for (const PilotState from : kAllPilotStates) {
    if (!is_final(from)) {
      continue;
    }
    for (const PilotState to : kAllPilotStates) {
      if (to == from) {
        continue;
      }
      EXPECT_FALSE(detail::pilot_transition_allowed(from, to))
          << to_string(from) << " -> " << to_string(to);
    }
  }
}

TEST(UnitStateMachine, FinalStatesAreSticky) {
  for (const UnitState from : kAllUnitStates) {
    if (!is_final(from)) {
      continue;
    }
    for (const UnitState to : kAllUnitStates) {
      if (to == from) {
        continue;
      }
      EXPECT_FALSE(detail::unit_transition_allowed(from, to))
          << to_string(from) << " -> " << to_string(to);
    }
  }
}

TEST(UnitStateMachine, EveryNonFinalStateCanFailAndCancel) {
  for (const UnitState from : kAllUnitStates) {
    if (is_final(from)) {
      continue;
    }
    EXPECT_TRUE(detail::unit_transition_allowed(from, UnitState::kFailed));
    EXPECT_TRUE(detail::unit_transition_allowed(from, UnitState::kCanceled));
  }
}

TEST(PilotStateMachine, HappyPath) {
  PilotStateMachine sm(PilotState::kNew);
  sm.transition(PilotState::kSubmitted);
  sm.transition(PilotState::kActive);
  sm.transition(PilotState::kDone);
  EXPECT_EQ(sm.state(), PilotState::kDone);
}

TEST(PilotStateMachine, SkippingStatesRejected) {
  PilotStateMachine sm(PilotState::kNew);
  EXPECT_THROW(sm.transition(PilotState::kActive), InvalidStateError);
  EXPECT_THROW(sm.transition(PilotState::kDone), InvalidStateError);
  EXPECT_EQ(sm.state(), PilotState::kNew);  // unchanged after rejection
}

TEST(UnitStateMachine, HappyPathWithStaging) {
  UnitStateMachine sm(UnitState::kNew);
  sm.transition(UnitState::kPending);
  sm.transition(UnitState::kStagingIn);
  sm.transition(UnitState::kScheduled);
  sm.transition(UnitState::kRunning);
  sm.transition(UnitState::kDone);
  EXPECT_EQ(sm.state(), UnitState::kDone);
}

TEST(UnitStateMachine, StagingIsOptional) {
  UnitStateMachine sm(UnitState::kPending);
  sm.transition(UnitState::kScheduled);
  EXPECT_EQ(sm.state(), UnitState::kScheduled);
}

TEST(UnitStateMachine, BackwardsRejected) {
  UnitStateMachine sm(UnitState::kRunning);
  EXPECT_THROW(sm.transition(UnitState::kPending), InvalidStateError);
  EXPECT_THROW(sm.transition(UnitState::kScheduled), InvalidStateError);
}

TEST(StateMachine, SelfTransitionIsNoOp) {
  int notifications = 0;
  UnitStateMachine sm(UnitState::kPending);
  sm.observe([&](UnitState, UnitState) { ++notifications; });
  sm.transition(UnitState::kPending);
  EXPECT_EQ(notifications, 0);
}

TEST(StateMachine, ObserversSeeFromAndTo) {
  UnitStateMachine sm(UnitState::kNew);
  std::vector<std::pair<UnitState, UnitState>> seen;
  sm.observe([&](UnitState from, UnitState to) { seen.emplace_back(from, to); });
  sm.transition(UnitState::kPending);
  sm.transition(UnitState::kScheduled);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], std::make_pair(UnitState::kNew, UnitState::kPending));
  EXPECT_EQ(seen[1],
            std::make_pair(UnitState::kPending, UnitState::kScheduled));
}

TEST(StateMachine, MultipleObserversAllNotified) {
  UnitStateMachine sm(UnitState::kNew);
  int a = 0;
  int b = 0;
  sm.observe([&](UnitState, UnitState) { ++a; });
  sm.observe([&](UnitState, UnitState) { ++b; });
  sm.transition(UnitState::kPending);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST(StateMachine, TryTransitionReturnsFalseInsteadOfThrowing) {
  UnitStateMachine sm(UnitState::kDone);
  EXPECT_FALSE(sm.try_transition(UnitState::kRunning));
  EXPECT_EQ(sm.state(), UnitState::kDone);
  EXPECT_TRUE(sm.try_transition(UnitState::kDone));  // self, trivially true
}

TEST(StateNames, Roundtrip) {
  EXPECT_STREQ(to_string(PilotState::kActive), "ACTIVE");
  EXPECT_STREQ(to_string(UnitState::kStagingIn), "STAGING_IN");
  EXPECT_STREQ(to_string(UnitState::kCanceled), "CANCELED");
}

TEST(StateFinality, Predicates) {
  EXPECT_TRUE(is_final(PilotState::kFailed));
  EXPECT_FALSE(is_final(PilotState::kActive));
  EXPECT_TRUE(is_final(UnitState::kCanceled));
  EXPECT_FALSE(is_final(UnitState::kRunning));
}

// Reachability: every unit state is reachable from NEW via allowed edges.
TEST(UnitStateMachine, AllStatesReachableFromNew) {
  std::set<UnitState> reached{UnitState::kNew};
  bool changed = true;
  while (changed) {
    changed = false;
    for (const UnitState from : reached) {
      for (const UnitState to : kAllUnitStates) {
        if (reached.count(to) == 0 &&
            detail::unit_transition_allowed(from, to)) {
          reached.insert(to);
          changed = true;
          break;
        }
      }
      if (changed) {
        break;
      }
    }
  }
  EXPECT_EQ(reached.size(), kAllUnitStates.size());
}

}  // namespace
}  // namespace pa::core
