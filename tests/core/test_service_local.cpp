#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "pa/common/error.h"
#include "pa/core/pilot_compute_service.h"
#include "pa/rt/local_runtime.h"

namespace pa::core {
namespace {

class LocalServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime_ = std::make_unique<rt::LocalRuntime>();
    service_ = std::make_unique<PilotComputeService>(*runtime_, "backfill");
  }

  PilotDescription pilot_desc(int cores = 4) {
    PilotDescription d;
    d.resource_url = "local://host";
    d.nodes = cores;  // 1 core per node by default
    d.walltime = 1e9;
    return d;
  }

  std::unique_ptr<rt::LocalRuntime> runtime_;
  std::unique_ptr<PilotComputeService> service_;
};

TEST_F(LocalServiceTest, PilotActivatesImmediately) {
  Pilot pilot = service_->submit_pilot(pilot_desc());
  pilot.wait_active(5.0);
  EXPECT_EQ(pilot.state(), PilotState::kActive);
}

TEST_F(LocalServiceTest, RealPayloadExecutes) {
  service_->submit_pilot(pilot_desc());
  std::atomic<int> executed{0};
  ComputeUnitDescription d;
  d.work = [&executed]() { executed.fetch_add(1); };
  ComputeUnit unit = service_->submit_unit(d);
  EXPECT_EQ(unit.wait(30.0), UnitState::kDone);
  EXPECT_EQ(executed.load(), 1);
}

TEST_F(LocalServiceTest, ManyUnitsAllExecute) {
  service_->submit_pilot(pilot_desc(8));
  std::atomic<int> executed{0};
  std::vector<ComputeUnit> units;
  for (int i = 0; i < 200; ++i) {
    ComputeUnitDescription d;
    d.work = [&executed]() { executed.fetch_add(1); };
    units.push_back(service_->submit_unit(d));
  }
  service_->wait_all_units(60.0);
  EXPECT_EQ(executed.load(), 200);
  EXPECT_EQ(service_->metrics().units_done, 200u);
}

TEST_F(LocalServiceTest, ConcurrencyBoundedByPilotCores) {
  service_->submit_pilot(pilot_desc(4));
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  std::vector<ComputeUnit> units;
  for (int i = 0; i < 32; ++i) {
    ComputeUnitDescription d;
    d.work = [&]() {
      const int now = concurrent.fetch_add(1) + 1;
      int prev = max_concurrent.load();
      while (prev < now && !max_concurrent.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      concurrent.fetch_sub(1);
    };
    units.push_back(service_->submit_unit(d));
  }
  service_->wait_all_units(60.0);
  EXPECT_LE(max_concurrent.load(), 4);
  EXPECT_GE(max_concurrent.load(), 2);  // parallelism actually happened
}

TEST_F(LocalServiceTest, ThrowingPayloadFailsUnit) {
  service_->submit_pilot(pilot_desc());
  ComputeUnitDescription d;
  d.work = []() { throw std::runtime_error("payload exploded"); };
  ComputeUnit unit = service_->submit_unit(d);
  EXPECT_EQ(unit.wait(30.0), UnitState::kFailed);
  EXPECT_EQ(service_->metrics().units_failed, 1u);
}

TEST_F(LocalServiceTest, MultiCoreUnitsReserveCores) {
  service_->submit_pilot(pilot_desc(4));
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  std::vector<ComputeUnit> units;
  for (int i = 0; i < 8; ++i) {
    ComputeUnitDescription d;
    d.cores = 2;  // only two of these fit concurrently on 4 cores
    d.work = [&]() {
      const int now = concurrent.fetch_add(1) + 1;
      int prev = max_concurrent.load();
      while (prev < now && !max_concurrent.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      concurrent.fetch_sub(1);
    };
    units.push_back(service_->submit_unit(d));
  }
  service_->wait_all_units(60.0);
  EXPECT_LE(max_concurrent.load(), 2);
}

TEST_F(LocalServiceTest, CoresPerNodeAttribute) {
  PilotDescription d;
  d.resource_url = "local://host?cores_per_node=4";
  d.nodes = 2;
  d.walltime = 1e9;
  Pilot pilot = service_->submit_pilot(d);
  pilot.wait_active(5.0);
  // An 8-core unit must fit (2 nodes * 4 cores).
  ComputeUnitDescription u;
  u.cores = 8;
  u.work = []() {};
  ComputeUnit unit = service_->submit_unit(u);
  EXPECT_EQ(unit.wait(30.0), UnitState::kDone);
}

TEST_F(LocalServiceTest, CancelPilotStopsFutureWork) {
  Pilot pilot = service_->submit_pilot(pilot_desc(1));
  pilot.wait_active(5.0);
  std::atomic<bool> second_ran{false};
  ComputeUnitDescription slow;
  slow.work = []() { std::this_thread::sleep_for(std::chrono::milliseconds(100)); };
  ComputeUnitDescription second;
  second.work = [&second_ran]() { second_ran.store(true); };
  service_->submit_unit(slow);
  ComputeUnit u2 = service_->submit_unit(second);
  pilot.cancel();
  EXPECT_EQ(pilot.state(), PilotState::kCanceled);
  // u2 was requeued (pilot gone) and stays pending.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(u2.state(), UnitState::kPending);
  EXPECT_FALSE(second_ran.load());
}

TEST_F(LocalServiceTest, WorkloadMovesToSecondPilotAfterCancel) {
  Pilot p1 = service_->submit_pilot(pilot_desc(1));
  p1.wait_active(5.0);
  std::atomic<int> executed{0};
  std::vector<ComputeUnit> units;
  for (int i = 0; i < 4; ++i) {
    ComputeUnitDescription d;
    d.work = [&executed]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      executed.fetch_add(1);
    };
    units.push_back(service_->submit_unit(d));
  }
  p1.cancel();
  Pilot p2 = service_->submit_pilot(pilot_desc(2));
  service_->wait_all_units(60.0);
  // Every unit eventually completed, possibly re-executed after recovery.
  for (auto& u : units) {
    EXPECT_EQ(u.state(), UnitState::kDone);
  }
  EXPECT_GE(executed.load(), 4);
}

TEST_F(LocalServiceTest, WaitTimesOut) {
  // A pilot exists but the unit blocks forever -> timeout.
  service_->submit_pilot(pilot_desc(1));
  std::atomic<bool> release{false};
  ComputeUnitDescription d;
  d.work = [&release]() {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  ComputeUnit unit = service_->submit_unit(d);
  EXPECT_THROW(unit.wait(0.2), pa::TimeoutError);
  release.store(true);
  EXPECT_EQ(unit.wait(30.0), UnitState::kDone);
}

TEST_F(LocalServiceTest, NonLocalUrlRejected) {
  PilotDescription d;
  d.resource_url = "slurm://hpc";
  d.nodes = 1;
  d.walltime = 10.0;
  EXPECT_THROW(service_->submit_pilot(d), pa::InvalidArgument);
}

TEST_F(LocalServiceTest, BurnCpuPayloadDefaultsFromDuration) {
  service_->submit_pilot(pilot_desc(2));
  ComputeUnitDescription d;
  d.duration = 0.05;  // no work payload: burns CPU for the duration
  ComputeUnit unit = service_->submit_unit(d);
  EXPECT_EQ(unit.wait(30.0), UnitState::kDone);
  EXPECT_GE(unit.times().exec_time(), 0.04);
}

}  // namespace
}  // namespace pa::core
