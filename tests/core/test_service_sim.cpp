#include <gtest/gtest.h>

#include <memory>

#include "pa/common/error.h"
#include "pa/core/pilot_compute_service.h"
#include "pa/infra/batch_cluster.h"
#include "pa/infra/htc_pool.h"
#include "pa/rt/sim_runtime.h"
#include "pa/saga/session.h"

namespace pa::core {
namespace {

/// Full simulated stack: engine + cluster + SAGA + SimRuntime + service.
class SimServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    infra::BatchClusterConfig cfg;
    cfg.name = "hpc-a";
    cfg.num_nodes = 4;
    cfg.node.cores = 8;
    cluster_ = std::make_shared<infra::BatchCluster>(engine_, cfg);
    session_.register_resource("slurm://hpc-a", cluster_);
    runtime_ = std::make_unique<rt::SimRuntime>(engine_, session_);
    service_ = std::make_unique<PilotComputeService>(*runtime_, "backfill");
  }

  PilotDescription pilot_desc(int nodes = 2, double walltime = 3600.0) {
    PilotDescription d;
    d.resource_url = "slurm://hpc-a";
    d.nodes = nodes;
    d.walltime = walltime;
    return d;
  }

  ComputeUnitDescription unit_desc(double duration = 10.0, int cores = 1) {
    ComputeUnitDescription d;
    d.duration = duration;
    d.cores = cores;
    return d;
  }

  sim::Engine engine_;
  saga::Session session_;
  std::shared_ptr<infra::BatchCluster> cluster_;
  std::unique_ptr<rt::SimRuntime> runtime_;
  std::unique_ptr<PilotComputeService> service_;
};

TEST_F(SimServiceTest, PilotLifecycle) {
  Pilot pilot = service_->submit_pilot(pilot_desc());
  EXPECT_EQ(pilot.state(), PilotState::kSubmitted);
  pilot.wait_active();
  EXPECT_EQ(pilot.state(), PilotState::kActive);
  // Startup = queue wait (0 on empty cluster) + agent bootstrap (2 s).
  const auto metrics = service_->metrics();
  ASSERT_EQ(metrics.pilot_startup_times.count(), 1u);
  EXPECT_NEAR(metrics.pilot_startup_times.max(), 2.0, 1e-9);
}

TEST_F(SimServiceTest, UnitRunsAndRecordsTimes) {
  Pilot pilot = service_->submit_pilot(pilot_desc());
  ComputeUnit unit = service_->submit_unit(unit_desc(10.0));
  EXPECT_EQ(unit.wait(), UnitState::kDone);
  const UnitTimes times = unit.times();
  EXPECT_GE(times.scheduled, times.submitted);
  EXPECT_GE(times.started, times.scheduled);
  // 10 s duration + 20 ms dispatch overhead.
  EXPECT_NEAR(times.exec_time(), 10.02, 1e-6);
}

TEST_F(SimServiceTest, ManyUnitsRespectCapacityAndFinish) {
  service_->submit_pilot(pilot_desc(2));  // 16 cores
  std::vector<ComputeUnit> units;
  for (int i = 0; i < 64; ++i) {
    units.push_back(service_->submit_unit(unit_desc(10.0)));
  }
  service_->wait_all_units();
  const auto metrics = service_->metrics();
  EXPECT_EQ(metrics.units_done, 64u);
  // 64 units over 16 slots = 4 waves of ~10 s: makespan ~40 s + overheads.
  EXPECT_GT(metrics.makespan(), 40.0);
  EXPECT_LT(metrics.makespan(), 50.0);
}

TEST_F(SimServiceTest, LateBindingUnitsBeforePilot) {
  // Submit units first — they must wait for the pilot (late binding).
  ComputeUnit unit = service_->submit_unit(unit_desc(5.0));
  engine_.run_until(100.0);
  EXPECT_EQ(unit.state(), UnitState::kPending);
  service_->submit_pilot(pilot_desc());
  EXPECT_EQ(unit.wait(), UnitState::kDone);
  EXPECT_GT(unit.times().wait_time(), 100.0);
}

TEST_F(SimServiceTest, MultiplePilotsShareQueue) {
  service_->submit_pilot(pilot_desc(1));
  service_->submit_pilot(pilot_desc(1));
  std::vector<ComputeUnit> units;
  for (int i = 0; i < 32; ++i) {
    units.push_back(service_->submit_unit(unit_desc(10.0, 8)));
  }
  service_->wait_all_units();
  EXPECT_EQ(service_->metrics().units_done, 32u);
  // Two pilots x 1 node x 8 cores: one 8-core unit each at a time ->
  // 16 waves of 10 s ~ 160 s.
  EXPECT_NEAR(service_->metrics().makespan(), 160.0, 10.0);
}

TEST_F(SimServiceTest, CancelQueuedUnit) {
  ComputeUnit unit = service_->submit_unit(unit_desc(5.0));
  unit.cancel();
  EXPECT_EQ(unit.state(), UnitState::kCanceled);
  EXPECT_EQ(service_->metrics().units_canceled, 1u);
}

TEST_F(SimServiceTest, CancelRunningUnitRecordsCanceled) {
  service_->submit_pilot(pilot_desc());
  ComputeUnit unit = service_->submit_unit(unit_desc(50.0));
  engine_.run_until(10.0);
  EXPECT_EQ(unit.state(), UnitState::kRunning);
  unit.cancel();
  EXPECT_EQ(unit.wait(), UnitState::kCanceled);
}

TEST_F(SimServiceTest, PilotWalltimeEndsPilotAndRequeuesUnits) {
  service_->submit_pilot(pilot_desc(2, /*walltime=*/100.0));
  // One long unit that cannot finish within walltime from t=0 (the
  // walltime check uses expected duration: declare it short so it binds,
  // but it actually runs past the wall).
  ComputeUnitDescription d = unit_desc(60.0);
  service_->submit_unit(d);
  engine_.run_until(50.0);
  // Unit done before wall; pilot ends at 100 + 2s bootstrap.
  engine_.run();
  const auto metrics = service_->metrics();
  EXPECT_EQ(metrics.units_done, 1u);
}

TEST_F(SimServiceTest, PilotFailureRequeuesToSecondPilot) {
  // HTC pool with aggressive preemption plus a reliable cluster.
  infra::HtcPoolConfig hcfg;
  hcfg.name = "osg";
  hcfg.num_slots = 4;
  hcfg.cores_per_slot = 8;
  hcfg.match_latency_min = 0.0;
  hcfg.match_latency_max = 0.0;
  auto pool = std::make_shared<infra::HtcPool>(engine_, hcfg);
  session_.register_resource("condor://osg", pool);

  PilotDescription htc_pilot;
  htc_pilot.resource_url = "condor://osg";
  htc_pilot.nodes = 1;
  htc_pilot.walltime = 3600.0;
  Pilot p1 = service_->submit_pilot(htc_pilot);
  p1.wait_active();

  ComputeUnit unit = service_->submit_unit(unit_desc(100.0));
  engine_.run_until(10.0);
  EXPECT_EQ(unit.state(), UnitState::kRunning);

  // Kill the HTC pilot mid-run; the unit must requeue, then a new pilot
  // picks it up.
  p1.cancel();
  engine_.run_until(11.0);
  EXPECT_EQ(unit.state(), UnitState::kPending);
  EXPECT_EQ(service_->metrics().requeues, 1u);

  service_->submit_pilot(pilot_desc());
  EXPECT_EQ(unit.wait(), UnitState::kDone);
}

TEST_F(SimServiceTest, NoRequeuePolicyFailsOrphans) {
  service_->set_requeue_on_pilot_failure(false);
  Pilot pilot = service_->submit_pilot(pilot_desc());
  ComputeUnit unit = service_->submit_unit(unit_desc(500.0));
  engine_.run_until(10.0);
  pilot.cancel();
  engine_.run_until(11.0);
  EXPECT_EQ(unit.state(), UnitState::kFailed);
  EXPECT_EQ(service_->metrics().units_failed, 1u);
}

TEST_F(SimServiceTest, WaitTimesOutOnDrainedSimulation) {
  // No pilot: the unit can never run and the event queue drains.
  service_->submit_unit(unit_desc(1.0));
  EXPECT_THROW(service_->wait_all_units(10.0), pa::TimeoutError);
}

TEST_F(SimServiceTest, ShutdownCancelsPilots) {
  Pilot pilot = service_->submit_pilot(pilot_desc());
  pilot.wait_active();
  service_->shutdown();
  engine_.run();
  EXPECT_EQ(pilot.state(), PilotState::kCanceled);
  EXPECT_THROW(service_->submit_unit(unit_desc(1.0)), pa::InvalidArgument);
}

TEST_F(SimServiceTest, QueueWaitAmortization) {
  // The pilot pays one LRMS queue wait; 100 units pay only dispatch
  // overhead each — the core pilot value proposition (E1).
  // Pre-load the cluster so there is a queue wait.
  infra::JobRequest blocker;
  blocker.num_nodes = 4;
  blocker.duration = 500.0;
  blocker.walltime_limit = 600.0;
  cluster_->submit(std::move(blocker));

  service_->submit_pilot(pilot_desc(4));
  std::vector<ComputeUnit> units;
  for (int i = 0; i < 100; ++i) {
    units.push_back(service_->submit_unit(unit_desc(1.0)));
  }
  service_->wait_all_units();
  const auto metrics = service_->metrics();
  EXPECT_EQ(metrics.units_done, 100u);
  // Pilot waited ~500 s; mean unit wait is dominated by that one wait, but
  // the *increment* per unit beyond the pilot start is small.
  ASSERT_EQ(metrics.pilot_startup_times.count(), 1u);
  EXPECT_GT(metrics.pilot_startup_times.max(), 500.0);
  const double post_pilot_makespan =
      metrics.makespan() - metrics.pilot_startup_times.max();
  EXPECT_LT(post_pilot_makespan, 30.0);
}

TEST_F(SimServiceTest, InvalidDescriptionsRejected) {
  PilotDescription bad = pilot_desc();
  bad.nodes = 0;
  EXPECT_THROW(service_->submit_pilot(bad), pa::InvalidArgument);
  ComputeUnitDescription bad_unit = unit_desc();
  bad_unit.cores = 0;
  EXPECT_THROW(service_->submit_unit(bad_unit), pa::InvalidArgument);
  EXPECT_THROW(service_->unit_state("ghost"), pa::NotFound);
  EXPECT_THROW(service_->pilot_state("ghost"), pa::NotFound);
}

TEST_F(SimServiceTest, SubmitUnitsBatch) {
  service_->submit_pilot(pilot_desc());
  std::vector<ComputeUnitDescription> descs(10, unit_desc(1.0));
  const auto units = service_->submit_units(descs);
  EXPECT_EQ(units.size(), 10u);
  service_->wait_all_units();
  EXPECT_EQ(service_->metrics().units_done, 10u);
}

TEST_F(SimServiceTest, DeterministicMakespan) {
  auto run_once = [this]() {
    // Fresh stack each run (members are rebuilt by the fixture per test,
    // so drive two services on two engines here).
    sim::Engine engine;
    saga::Session session;
    infra::BatchClusterConfig cfg;
    cfg.name = "hpc-a";
    cfg.num_nodes = 4;
    cfg.node.cores = 8;
    session.register_resource(
        "slurm://hpc-a", std::make_shared<infra::BatchCluster>(engine, cfg));
    rt::SimRuntime runtime(engine, session);
    PilotComputeService service(runtime, "backfill");
    PilotDescription pd;
    pd.resource_url = "slurm://hpc-a";
    pd.nodes = 2;
    pd.walltime = 3600.0;
    service.submit_pilot(pd);
    for (int i = 0; i < 50; ++i) {
      ComputeUnitDescription d;
      d.duration = 3.0;
      service.submit_unit(d);
    }
    service.wait_all_units();
    return service.metrics().makespan();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace pa::core
