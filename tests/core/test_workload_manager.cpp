#include "pa/core/workload_manager.h"

#include <gtest/gtest.h>

#include "pa/common/error.h"
#include "pa/obs/metrics.h"

namespace pa::core {
namespace {

ComputeUnitDescription unit_desc(int cores = 1, double duration = 1.0) {
  ComputeUnitDescription d;
  d.cores = cores;
  d.duration = duration;
  return d;
}

TEST(WorkloadManager, SchedulesQueuedUnitsOntoPilot) {
  WorkloadManager wm(make_scheduler("backfill"));
  wm.add_pilot("p1", "a", 4, 0, 0.0, 1e9);
  wm.enqueue_unit("u1", unit_desc(2));
  wm.enqueue_unit("u2", unit_desc(2));
  wm.enqueue_unit("u3", unit_desc(2));
  const auto out = wm.schedule_pass(0.0, nullptr);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(wm.free_cores("p1"), 0);
  EXPECT_EQ(wm.queued_units(), 1u);
  EXPECT_EQ(wm.bound_pilot("u1"), "p1");
}

TEST(WorkloadManager, UnitFinishedReleasesCores) {
  WorkloadManager wm(make_scheduler("backfill"));
  wm.add_pilot("p1", "a", 2, 0, 0.0, 1e9);
  wm.enqueue_unit("u1", unit_desc(2));
  wm.schedule_pass(0.0, nullptr);
  EXPECT_EQ(wm.free_cores("p1"), 0);
  wm.unit_finished("u1");
  EXPECT_EQ(wm.free_cores("p1"), 2);
  EXPECT_THROW(wm.bound_pilot("u1"), pa::NotFound);
}

TEST(WorkloadManager, RemovePilotReturnsOrphans) {
  WorkloadManager wm(make_scheduler("backfill"));
  wm.add_pilot("p1", "a", 4, 0, 0.0, 1e9);
  wm.enqueue_unit("u1", unit_desc(2));
  wm.enqueue_unit("u2", unit_desc(2));
  wm.schedule_pass(0.0, nullptr);
  const auto orphans = wm.remove_pilot("p1");
  ASSERT_EQ(orphans.size(), 2u);
  EXPECT_FALSE(wm.has_pilot("p1"));
  EXPECT_EQ(wm.pilot_count(), 0u);
}

TEST(WorkloadManager, RemoveUnknownPilotReturnsEmpty) {
  WorkloadManager wm(make_scheduler("backfill"));
  EXPECT_TRUE(wm.remove_pilot("ghost").empty());
}

TEST(WorkloadManager, RequeueFrontPreservesPriority) {
  WorkloadManager wm(make_scheduler("fifo"));
  wm.enqueue_unit("u1", unit_desc(1));
  wm.enqueue_unit("u2", unit_desc(1));
  // Simulate recovery: u9 re-enters at the front.
  wm.requeue_unit_front("u9", unit_desc(1));
  wm.add_pilot("p1", "a", 1, 0, 0.0, 1e9);
  const auto out = wm.schedule_pass(0.0, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].unit_id, "u9");
}

TEST(WorkloadManager, RemoveQueuedUnit) {
  WorkloadManager wm(make_scheduler("backfill"));
  wm.enqueue_unit("u1", unit_desc(1));
  EXPECT_TRUE(wm.remove_queued_unit("u1"));
  EXPECT_FALSE(wm.remove_queued_unit("u1"));
  EXPECT_EQ(wm.queued_units(), 0u);
}

TEST(WorkloadManager, NoSchedulingWithoutPilots) {
  WorkloadManager wm(make_scheduler("backfill"));
  wm.enqueue_unit("u1", unit_desc(1));
  EXPECT_TRUE(wm.schedule_pass(0.0, nullptr).empty());
}

TEST(WorkloadManager, WalltimeExpiryBlocksBinding) {
  WorkloadManager wm(make_scheduler("backfill"));
  wm.add_pilot("p1", "a", 4, 0, 0.0, /*walltime_end=*/100.0);
  wm.enqueue_unit("u1", unit_desc(1, /*duration=*/200.0));
  // At t=0, 200s of work does not fit in 100s of remaining walltime.
  EXPECT_TRUE(wm.schedule_pass(0.0, nullptr).empty());
  // A short unit does fit.
  wm.enqueue_unit("u2", unit_desc(1, 50.0));
  const auto out = wm.schedule_pass(0.0, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].unit_id, "u2");
}

TEST(WorkloadManager, DuplicatePilotRejected) {
  WorkloadManager wm(make_scheduler("backfill"));
  wm.add_pilot("p1", "a", 4, 0, 0.0, 1e9);
  EXPECT_THROW(wm.add_pilot("p1", "a", 4, 0, 0.0, 1e9), pa::InvalidArgument);
}

TEST(WorkloadManager, TotalFreeCores) {
  WorkloadManager wm(make_scheduler("backfill"));
  wm.add_pilot("p1", "a", 4, 0, 0.0, 1e9);
  wm.add_pilot("p2", "b", 8, 0, 0.0, 1e9);
  EXPECT_EQ(wm.total_free_cores(), 12);
  wm.enqueue_unit("u1", unit_desc(3));
  wm.schedule_pass(0.0, nullptr);
  EXPECT_EQ(wm.total_free_cores(), 9);
}

TEST(WorkloadManager, DataServiceDrivesAffinity) {
  // Minimal in-test data service.
  class FakeData : public DataServiceInterface {
   public:
    double bytes_on_site(const std::string& du,
                         const std::string& site) const override {
      return du == "du-1" && site == "b" ? 1e6 : 0.0;
    }
    double total_bytes(const std::string&) const override { return 1e6; }
    void stage_to_site(const std::string&, const std::string&,
                       std::function<void()> done) override {
      done();
    }
    void register_output(const std::string&, const std::string&) override {}
  };

  WorkloadManager wm(make_scheduler("data-affinity"));
  wm.add_pilot("p1", "a", 4, 0, 0.0, 1e9);
  wm.add_pilot("p2", "b", 4, 0, 0.0, 1e9);
  ComputeUnitDescription d = unit_desc(1);
  d.input_data = {"du-1"};
  wm.enqueue_unit("u1", d);
  FakeData data;
  const auto out = wm.schedule_pass(0.0, &data);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].pilot_id, "p2");
}

TEST(WorkloadManager, PreferredSiteAttributeFlowsThrough) {
  WorkloadManager wm(make_scheduler("backfill"));
  wm.add_pilot("p1", "a", 4, 0, 0.0, 1e9);
  wm.add_pilot("p2", "b", 4, 0, 0.0, 1e9);
  ComputeUnitDescription d = unit_desc(1);
  d.attributes.set("preferred_site", std::string("b"));
  wm.enqueue_unit("u1", d);
  const auto out = wm.schedule_pass(0.0, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].pilot_id, "p2");
}

TEST(WorkloadManager, InvalidInputsRejected) {
  WorkloadManager wm(make_scheduler("backfill"));
  EXPECT_THROW(wm.add_pilot("p", "a", 0, 0, 0.0, 1e9), pa::InvalidArgument);
  EXPECT_THROW(wm.enqueue_unit("u", unit_desc(0)), pa::InvalidArgument);
  EXPECT_THROW(wm.free_cores("ghost"), pa::NotFound);
  EXPECT_THROW(WorkloadManager(nullptr), pa::InvalidArgument);
}

TEST(WorkloadManager, UnitFinishedOnUnboundIsNoOp) {
  WorkloadManager wm(make_scheduler("backfill"));
  wm.unit_finished("ghost");  // must not throw (pilot-failure races)
  SUCCEED();
}

TEST(WorkloadManager, RequeueBoundRefusesAfterMax) {
  WorkloadManager wm(make_scheduler("backfill"));
  wm.set_max_requeues(2);
  EXPECT_TRUE(wm.requeue_unit_front("u1", unit_desc()));
  EXPECT_EQ(wm.requeue_count("u1"), 1);
  EXPECT_TRUE(wm.requeue_unit_front("u1", unit_desc()));
  EXPECT_EQ(wm.requeue_count("u1"), 2);
  EXPECT_FALSE(wm.requeue_unit_front("u1", unit_desc()));
  // Other units keep their own budget.
  EXPECT_TRUE(wm.requeue_unit_front("u2", unit_desc()));
}

TEST(WorkloadManager, RequeueCountClearedWhenUnitFinishes) {
  WorkloadManager wm(make_scheduler("backfill"));
  wm.set_max_requeues(1);
  wm.add_pilot("p1", "a", 4, 0, 0.0, 1e9);
  EXPECT_TRUE(wm.requeue_unit_front("u1", unit_desc()));
  wm.schedule_pass(0.0, nullptr);  // binds u1 to p1
  wm.unit_finished("u1");          // terminal: forget the requeue history
  EXPECT_EQ(wm.requeue_count("u1"), 0);
  EXPECT_TRUE(wm.requeue_unit_front("u1", unit_desc()));
}

TEST(WorkloadManager, RequeueCountClearedWhenQueuedUnitRemoved) {
  WorkloadManager wm(make_scheduler("backfill"));
  wm.set_max_requeues(1);
  EXPECT_TRUE(wm.requeue_unit_front("u1", unit_desc()));
  EXPECT_TRUE(wm.remove_queued_unit("u1"));  // cancellation
  EXPECT_EQ(wm.requeue_count("u1"), 0);
}

TEST(WorkloadManager, RequeueUnboundedWhenNegative) {
  WorkloadManager wm(make_scheduler("backfill"));
  wm.set_max_requeues(-1);
  // Well past the default bound: -1 really means unbounded.
  for (int i = 0; i < WorkloadManager::kDefaultMaxRequeues + 100; ++i) {
    ASSERT_TRUE(wm.requeue_unit_front("u1", unit_desc()));
  }
  EXPECT_EQ(wm.requeue_count("u1"), WorkloadManager::kDefaultMaxRequeues + 100);
  EXPECT_THROW(wm.set_max_requeues(-2), pa::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Incremental scheduling: dirty flag, skip counter, persistent sorted views.
// ---------------------------------------------------------------------------

TEST(WorkloadManager, CleanPassIsSkipped) {
  obs::MetricsRegistry reg;
  WorkloadManager wm(make_scheduler("backfill"));
  wm.set_metrics(&reg);
  wm.add_pilot("p1", "a", 1, 0, 0.0, 1e9);
  wm.enqueue_unit("u1", unit_desc(1));
  wm.enqueue_unit("u2", unit_desc(1));  // does not fit: stays queued
  EXPECT_TRUE(wm.dirty());
  EXPECT_EQ(wm.schedule_pass(0.0, nullptr).size(), 1u);
  EXPECT_FALSE(wm.dirty());
  // Nothing changed: subsequent passes return immediately, even as time
  // advances (shrinking walltime never enables a placement).
  EXPECT_TRUE(wm.schedule_pass(1.0, nullptr).empty());
  EXPECT_TRUE(wm.schedule_pass(2.0, nullptr).empty());
  EXPECT_EQ(reg.counter("wm.schedule_passes").value(), 1u);
  EXPECT_EQ(reg.counter("wm.schedule_passes_skipped").value(), 2u);
}

TEST(WorkloadManager, CapacityReleaseDirtiesAndReschedules) {
  obs::MetricsRegistry reg;
  WorkloadManager wm(make_scheduler("backfill"));
  wm.set_metrics(&reg);
  wm.add_pilot("p1", "a", 1, 0, 0.0, 1e9);
  wm.enqueue_unit("u1", unit_desc(1));
  wm.enqueue_unit("u2", unit_desc(1));
  wm.schedule_pass(0.0, nullptr);     // binds u1, u2 blocked
  wm.schedule_pass(1.0, nullptr);     // skipped
  wm.unit_finished("u1");             // core freed: dirty again
  EXPECT_TRUE(wm.dirty());
  const auto out = wm.schedule_pass(2.0, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].unit_id, "u2");
  EXPECT_EQ(reg.counter("wm.schedule_passes").value(), 2u);
  EXPECT_EQ(reg.counter("wm.schedule_passes_skipped").value(), 1u);
}

TEST(WorkloadManager, EnqueueAndPilotChangesDirty) {
  WorkloadManager wm(make_scheduler("backfill"));
  wm.add_pilot("p1", "a", 4, 0, 0.0, 1e9);
  wm.schedule_pass(0.0, nullptr);
  EXPECT_FALSE(wm.dirty());
  wm.enqueue_unit("u1", unit_desc(1));
  EXPECT_TRUE(wm.dirty());
  wm.schedule_pass(1.0, nullptr);
  EXPECT_FALSE(wm.dirty());
  wm.add_pilot("p2", "a", 4, 0, 0.0, 1e9);
  EXPECT_TRUE(wm.dirty());
}

TEST(WorkloadManager, RemovingQueuedUnitDirtiesFifoHead) {
  // A blocked FIFO head hides everything behind it; removing it must
  // re-enable a pass, or the queue would stall until unrelated churn.
  WorkloadManager wm(make_scheduler("fifo"));
  wm.add_pilot("p1", "a", 2, 0, 0.0, 1e9);
  wm.enqueue_unit("big", unit_desc(8));    // never fits: blocks the head
  wm.enqueue_unit("small", unit_desc(1));
  EXPECT_TRUE(wm.schedule_pass(0.0, nullptr).empty());
  EXPECT_FALSE(wm.dirty());
  EXPECT_TRUE(wm.remove_queued_unit("big"));
  EXPECT_TRUE(wm.dirty());
  const auto out = wm.schedule_pass(1.0, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].unit_id, "small");
}

TEST(WorkloadManager, SortedInsertionServesShortestFirst) {
  // The queue is kept in policy order by insertion, so the pass itself
  // never re-sorts — and still picks the shortest unit for the one slot.
  WorkloadManager wm(make_scheduler("shortest-first"));
  wm.add_pilot("p1", "a", 1, 0, 0.0, 1e9);
  wm.enqueue_unit("long", unit_desc(1, 100.0));
  wm.enqueue_unit("short", unit_desc(1, 1.0));
  wm.enqueue_unit("mid", unit_desc(1, 10.0));
  const auto out = wm.schedule_pass(0.0, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].unit_id, "short");
}

TEST(WorkloadManager, SortedInsertionServesLargestFirst) {
  WorkloadManager wm(make_scheduler("largest-first"));
  wm.add_pilot("p1", "a", 4, 0, 0.0, 1e9);
  wm.enqueue_unit("small", unit_desc(1));
  wm.enqueue_unit("big", unit_desc(4));
  const auto out = wm.schedule_pass(0.0, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].unit_id, "big");
}

TEST(WorkloadManager, RequeueFrontOrderingSurvivesSubmitBurst) {
  // The failure-recovery path races submit bursts in the event-driven
  // service: a requeued unit must land ahead of units enqueued both
  // before and after the failure, and the next pass must dispatch it
  // first (FCFS position = recovery priority).
  WorkloadManager wm(make_scheduler("fifo"));
  wm.add_pilot("p1", "a", 1, 0, 0.0, 1e9);
  wm.enqueue_unit("victim", unit_desc(1));
  ASSERT_EQ(wm.schedule_pass(0.0, nullptr).size(), 1u);  // victim bound
  wm.enqueue_unit("burst1", unit_desc(1));               // racing burst
  const auto orphans = wm.remove_pilot("p1");            // pilot fails
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0], "victim");
  EXPECT_TRUE(wm.requeue_unit_front("victim", unit_desc(1)));
  wm.enqueue_unit("burst2", unit_desc(1));               // burst continues
  wm.add_pilot("p2", "a", 1, 0, 0.0, 1e9);
  const auto first = wm.schedule_pass(1.0, nullptr);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].unit_id, "victim");  // ahead of the whole burst
  wm.unit_finished("victim");
  const auto second = wm.schedule_pass(2.0, nullptr);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].unit_id, "burst1");  // burst keeps its own order
}

TEST(WorkloadManager, RequeueFrontBeforeEqualsUnderSortedPolicy) {
  // Under an ordered policy "front" means before its equals: the requeued
  // unit already waited once, so it wins ties, but a strictly shorter
  // unit still goes first.
  WorkloadManager wm(make_scheduler("shortest-first"));
  wm.add_pilot("p1", "a", 1, 0, 0.0, 1e9);
  wm.enqueue_unit("five-a", unit_desc(1, 5.0));
  wm.enqueue_unit("one", unit_desc(1, 1.0));
  EXPECT_TRUE(wm.requeue_unit_front("five-b", unit_desc(1, 5.0)));
  auto out = wm.schedule_pass(0.0, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].unit_id, "one");  // shorter still dominates
  wm.unit_finished("one");
  out = wm.schedule_pass(1.0, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].unit_id, "five-b");  // requeued wins among equals
}

// ---------------------------------------------------------------------------
// Weighted fair share (deficit round robin) across tenants.
// ---------------------------------------------------------------------------

/// Weight-only admission stub (quotas are TenantRegistry's job; the
/// workload manager consumes nothing but tenant_weight).
class StubAdmission : public AdmissionInterface {
 public:
  void admit_pilot(const std::string&) override {}
  void admit_unit(const std::string&) override {}
  void unit_dispatched(const std::string&, int) override {}
  void unit_finalized(const std::string&, UnitState, double) override {}
  void pilot_released(const std::string&) override {}
  double tenant_weight(const std::string& tenant) const override {
    const auto it = weights.find(tenant);
    return it == weights.end() ? 1.0 : it->second;
  }
  std::map<std::string, double> weights;
};

ComputeUnitDescription tenant_unit(const std::string& tenant, int cores = 1) {
  ComputeUnitDescription d = unit_desc(cores);
  d.tenant = tenant;
  return d;
}

std::map<std::string, int> grants_by_tenant(
    const std::vector<Assignment>& out) {
  std::map<std::string, int> grants;
  for (const auto& a : out) {
    // Unit ids in these tests are "<tenant>-<n>".
    grants[a.unit_id.substr(0, a.unit_id.find('-'))]++;
  }
  return grants;
}

TEST(WorkloadManagerFairShare, EqualWeightsSplitScarceCapacityEvenly) {
  StubAdmission adm;
  WorkloadManager wm(make_scheduler("fifo"));
  wm.set_admission(&adm);
  wm.set_fair_share(true);
  wm.add_pilot("p1", "a", 4, 0, 0.0, 1e9);
  // Tenant "a" floods first; FCFS alone would hand it all four cores.
  for (int i = 0; i < 4; ++i) {
    wm.enqueue_unit("a-" + std::to_string(i), tenant_unit("a"));
  }
  for (int i = 0; i < 4; ++i) {
    wm.enqueue_unit("b-" + std::to_string(i), tenant_unit("b"));
  }
  const auto grants = grants_by_tenant(wm.schedule_pass(0.0, nullptr));
  EXPECT_EQ(grants.at("a"), 2);
  EXPECT_EQ(grants.at("b"), 2);
}

TEST(WorkloadManagerFairShare, GrantsFollowWeights) {
  StubAdmission adm;
  adm.weights["a"] = 3.0;
  adm.weights["b"] = 1.0;
  WorkloadManager wm(make_scheduler("fifo"));
  wm.set_admission(&adm);
  wm.set_fair_share(true);
  wm.add_pilot("p1", "s", 4, 0, 0.0, 1e9);
  for (int i = 0; i < 4; ++i) {
    wm.enqueue_unit("a-" + std::to_string(i), tenant_unit("a"));
    wm.enqueue_unit("b-" + std::to_string(i), tenant_unit("b"));
  }
  const auto grants = grants_by_tenant(wm.schedule_pass(0.0, nullptr));
  EXPECT_EQ(grants.at("a"), 3);
  EXPECT_EQ(grants.at("b"), 1);
}

TEST(WorkloadManagerFairShare, DeficitCarriesAcrossPasses) {
  // One core: each pass grants a single unit, and the unserved tenant's
  // carried deficit makes consecutive passes alternate a, b, a, b.
  StubAdmission adm;
  WorkloadManager wm(make_scheduler("fifo"));
  wm.set_admission(&adm);
  wm.set_fair_share(true);
  wm.add_pilot("p1", "s", 1, 0, 0.0, 1e9);
  for (int i = 0; i < 2; ++i) {
    wm.enqueue_unit("a-" + std::to_string(i), tenant_unit("a"));
    wm.enqueue_unit("b-" + std::to_string(i), tenant_unit("b"));
  }
  auto out = wm.schedule_pass(0.0, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].unit_id, "a-0");  // tie broken to the first tenant
  wm.unit_finished("a-0");
  out = wm.schedule_pass(1.0, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].unit_id, "b-0");  // b's carried credit now dominates
  wm.unit_finished("b-0");
  out = wm.schedule_pass(2.0, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].unit_id, "a-1");
}

TEST(WorkloadManagerFairShare, SingleTenantKeepsPolicyOrderFastPath) {
  // With one distinct tenant the interleave is skipped entirely and the
  // policy's own order stands (here: sorted shortest-first insertion).
  StubAdmission adm;
  WorkloadManager wm(make_scheduler("shortest-first"));
  wm.set_admission(&adm);
  wm.set_fair_share(true);
  wm.add_pilot("p1", "s", 1, 0, 0.0, 1e9);
  ComputeUnitDescription slow = tenant_unit("a");
  slow.duration = 100.0;
  ComputeUnitDescription fast = tenant_unit("a");
  fast.duration = 1.0;
  wm.enqueue_unit("a-slow", slow);
  wm.enqueue_unit("a-fast", fast);
  const auto out = wm.schedule_pass(0.0, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].unit_id, "a-fast");
}

TEST(WorkloadManagerFairShare, InertWithoutAdmissionInterface) {
  // Fair share needs a weight source; without one the queue stays in
  // plain FCFS order even with two tenants.
  WorkloadManager wm(make_scheduler("fifo"));
  wm.set_fair_share(true);
  wm.add_pilot("p1", "s", 2, 0, 0.0, 1e9);
  wm.enqueue_unit("a-0", tenant_unit("a"));
  wm.enqueue_unit("a-1", tenant_unit("a"));
  wm.enqueue_unit("b-0", tenant_unit("b"));
  const auto grants = grants_by_tenant(wm.schedule_pass(0.0, nullptr));
  EXPECT_EQ(grants.at("a"), 2);
  EXPECT_EQ(grants.count("b"), 0u);
}

TEST(WorkloadManagerFairShare, ZeroWeightTenantStillDrains) {
  // A zero (or negative) weight clamps to a small positive credit rate:
  // the tenant is deprioritized, never wedged.
  StubAdmission adm;
  adm.weights["z"] = 0.0;
  WorkloadManager wm(make_scheduler("fifo"));
  wm.set_admission(&adm);
  wm.set_fair_share(true);
  wm.add_pilot("p1", "s", 1, 0, 0.0, 1e9);
  wm.enqueue_unit("a-0", tenant_unit("a"));
  wm.enqueue_unit("z-0", tenant_unit("z"));
  auto out = wm.schedule_pass(0.0, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].unit_id, "a-0");
  wm.unit_finished("a-0");
  out = wm.schedule_pass(1.0, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].unit_id, "z-0");
}

// ---------------------------------------------------------------------------
// Detach/adopt (cross-shard pilot moves).
// ---------------------------------------------------------------------------

TEST(WorkloadManager, DetachPilotCarriesBoundUnitsAndRequeueBudget) {
  WorkloadManager source(make_scheduler("fifo"));
  source.set_max_requeues(3);
  source.add_pilot("p1", "s", 4, 0, 0.0, 1e9);
  source.requeue_unit_front("u1", unit_desc(2));  // one consumed requeue
  source.enqueue_unit("u2", unit_desc(1));
  ASSERT_EQ(source.schedule_pass(0.0, nullptr).size(), 2u);
  const auto detached = source.detach_pilot("p1");
  ASSERT_EQ(detached.size(), 2u);
  EXPECT_FALSE(source.has_pilot("p1"));
  EXPECT_EQ(source.queued_units(), 0u);  // bound units travel, not requeue

  WorkloadManager target(make_scheduler("fifo"));
  target.set_max_requeues(3);
  target.adopt_pilot("p1", "s", 4, 0, 0.0, 1e9, detached);
  EXPECT_TRUE(target.has_pilot("p1"));
  EXPECT_EQ(target.free_cores("p1"), 1);  // 4 - (2 + 1) re-reserved
  EXPECT_EQ(target.bound_pilot("u1"), "p1");
  // The consumed requeue budget survived the move: two more, not three.
  target.remove_pilot("p1");
  EXPECT_TRUE(target.requeue_unit_front("u1", unit_desc(2)));
  EXPECT_TRUE(target.requeue_unit_front("u1", unit_desc(2)));
  EXPECT_FALSE(target.requeue_unit_front("u1", unit_desc(2)));
}

}  // namespace
}  // namespace pa::core
