#include "pa/core/control_plane.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "pa/common/error.h"
#include "pa/core/pilot_compute_service.h"
#include "pa/rt/local_runtime.h"

namespace pa::core {
namespace {

struct TestCmd {
  int producer = 0;
  int seq = 0;
};

using Plane = ControlPlane<TestCmd>;

Plane::Options inline_options() {
  Plane::Options o;
  o.threaded = false;
  return o;
}

TEST(ControlPlaneInline, PostDrainsOnPostingThread) {
  std::vector<int> applied;
  Plane plane([&](TestCmd& c) { applied.push_back(c.seq); }, nullptr,
              inline_options());
  plane.post({0, 1});
  EXPECT_EQ(applied, (std::vector<int>{1}));  // applied before post returned
  plane.post({0, 2});
  EXPECT_EQ(applied, (std::vector<int>{1, 2}));
  EXPECT_EQ(plane.depth(), 0u);
}

TEST(ControlPlaneInline, ReentrantPostAppendsToOuterDrain) {
  std::vector<int> applied;
  Plane* self = nullptr;
  Plane plane(
      [&](TestCmd& c) {
        applied.push_back(c.seq);
        if (c.seq == 1) {
          self->post({0, 2});  // fire-and-forget from inside a handler
        }
      },
      nullptr, inline_options());
  self = &plane;
  plane.post({0, 1});
  // The outer drain loop picked up the reentrant command.
  EXPECT_EQ(applied, (std::vector<int>{1, 2}));
}

TEST(ControlPlaneInline, SynchronousCallFromHandlerThrows) {
  Plane* self = nullptr;
  Plane plane(
      [&](TestCmd& c) {
        if (c.seq == 1) {
          self->post_and_wait({0, 2});  // self-deadlock by construction
        }
      },
      nullptr, inline_options());
  self = &plane;
  EXPECT_THROW(plane.post_and_wait({0, 1}), InvalidStateError);
}

TEST(ControlPlaneInline, BatchEndRunsAfterDrain) {
  int batches = 0;
  std::vector<int> applied;
  Plane plane([&](TestCmd& c) { applied.push_back(c.seq); },
              [&]() { ++batches; }, inline_options());
  plane.post({0, 1});
  EXPECT_EQ(batches, 1);
  plane.post({0, 2});
  EXPECT_EQ(batches, 2);
}

TEST(ControlPlaneThreaded, PostAndWaitAppliesCommand) {
  std::atomic<int> applied{0};
  Plane plane([&](TestCmd&) { applied.fetch_add(1); }, nullptr, {});
  EXPECT_TRUE(plane.post_and_wait({0, 1}));
  EXPECT_EQ(applied.load(), 1);
}

TEST(ControlPlaneThreaded, PostAndWaitRethrowsHandlerException) {
  Plane plane(
      [](TestCmd& c) {
        if (c.seq < 0) {
          throw NotFound("no such seq");
        }
      },
      nullptr, {});
  EXPECT_THROW(plane.post_and_wait({0, -1}), NotFound);
  EXPECT_TRUE(plane.post_and_wait({0, 1}));  // the apply thread survived
}

TEST(ControlPlaneThreaded, WaiterReleasedOnlyAfterBatchEnd) {
  std::atomic<int> batches{0};
  Plane plane([](TestCmd&) {}, [&]() { batches.fetch_add(1); }, {});
  EXPECT_TRUE(plane.post_and_wait({0, 1}));
  // The batch-end hook (snapshot republish in the service) already ran
  // when a synchronous mutator returns.
  EXPECT_GE(batches.load(), 1);
}

TEST(ControlPlaneThreaded, PerProducerFifoOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  // Applied on the single consumer thread: no synchronization needed.
  std::vector<TestCmd> applied;
  Plane plane([&](TestCmd& c) { applied.push_back(c); }, nullptr, {});
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&plane, p]() {
      for (int s = 0; s < kPerProducer; ++s) {
        plane.post({p, s});
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  plane.post_and_wait({kProducers, 0});  // fence: flush all producers
  plane.stop();
  std::vector<int> next(kProducers, 0);
  int total = 0;
  for (const auto& c : applied) {
    if (c.producer == kProducers) {
      continue;  // the fence
    }
    EXPECT_EQ(c.seq, next[c.producer]) << "producer " << c.producer
                                       << " reordered";
    next[c.producer] = c.seq + 1;
    ++total;
  }
  EXPECT_EQ(total, kProducers * kPerProducer);
}

TEST(ControlPlaneThreaded, BackpressureBlocksProducerAtBound) {
  std::atomic<bool> release{false};
  std::atomic<int> applied{0};
  Plane::Options opts;
  opts.bound = 2;
  Plane plane(
      [&](TestCmd& c) {
        if (c.seq == 0) {
          while (!release.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
        applied.fetch_add(1);
      },
      nullptr, opts);
  plane.post({0, 0});  // wedges the applier until released
  // A command being applied still counts toward the bound, so the queue
  // is full after one more post; the third must block.
  std::atomic<bool> third_posted{false};
  std::thread producer([&]() {
    plane.post({0, 1});
    plane.post({0, 2});  // must block: queue is at its bound
    third_posted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_posted.load()) << "post did not block at the bound";
  release.store(true);
  producer.join();
  EXPECT_TRUE(third_posted.load());
  plane.post_and_wait({0, 3});
  EXPECT_EQ(applied.load(), 4);
}

TEST(ControlPlaneThreaded, PostAfterStopIsDropped) {
  std::atomic<int> applied{0};
  Plane plane([&](TestCmd&) { applied.fetch_add(1); }, nullptr, {});
  EXPECT_TRUE(plane.post({0, 1}));
  plane.stop();
  const int drained = applied.load();
  EXPECT_FALSE(plane.post({0, 2}));
  EXPECT_FALSE(plane.post_and_wait({0, 3}));
  EXPECT_EQ(applied.load(), drained);
}

// ---------------------------------------------------------------------------
// Service-level concurrency stress: many producer threads hammering the
// command queue while the apply thread owns the state. Run under TSan via
// the sanitize_smoke target (core label).
// ---------------------------------------------------------------------------

PilotDescription local_pilot(int cores) {
  PilotDescription d;
  d.resource_url = "local://host";
  d.nodes = cores;
  d.walltime = 1e9;
  return d;
}

TEST(ControlPlaneStress, FourThreadSubmitCancel) {
  rt::LocalRuntime runtime;
  PilotComputeService service(runtime, "backfill");
  service.submit_pilot(local_pilot(8));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::atomic<int> executed{0};
  std::vector<std::vector<ComputeUnit>> units(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        ComputeUnitDescription d;
        d.work = [&executed]() { executed.fetch_add(1); };
        ComputeUnit u = service.submit_unit(d);
        if (i % 3 == 0) {
          u.cancel();  // races the dispatch/execution pipeline
        }
        units[t].push_back(std::move(u));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  service.wait_all_units(120.0);
  for (const auto& per_thread : units) {
    for (const auto& u : per_thread) {
      EXPECT_TRUE(is_final(u.state())) << u.id();
    }
  }
  const auto m = service.metrics();
  EXPECT_EQ(m.units_done + m.units_canceled + m.units_failed,
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(m.units_failed, 0u);
}

TEST(ControlPlaneStress, PilotFailureRacesSubmitBurst) {
  rt::LocalRuntime runtime;
  PilotComputeService service(runtime, "backfill");
  Pilot doomed = service.submit_pilot(local_pilot(4));
  Pilot survivor = service.submit_pilot(local_pilot(4));
  doomed.wait_active(10.0);
  survivor.wait_active(10.0);
  std::atomic<bool> go{false};
  std::thread burst([&]() {
    while (!go.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::atomic<int> ran{0};
    std::vector<ComputeUnitDescription> batch(40);
    for (auto& d : batch) {
      d.work = [&ran]() { ran.fetch_add(1); };
    }
    service.submit_units(batch);
  });
  go.store(true);
  doomed.cancel();  // requeues its bound units mid-burst
  burst.join();
  service.wait_all_units(120.0);
  const auto m = service.metrics();
  // Nothing is lost to the race: every unit reaches a final state and
  // none fails (requeue recovers the doomed pilot's units).
  EXPECT_EQ(m.units_done + m.units_canceled, service.total_units());
  EXPECT_EQ(m.units_failed, 0u);
}

}  // namespace
}  // namespace pa::core
