/// Fault-tolerance and adaptivity features: pilot restart policy under
/// preemption, unit observers, and the AdaptiveBurster (paper R3 and the
/// "Re-Use and Interoperability" lesson about robustness investments).
#include <gtest/gtest.h>

#include <memory>

#include "pa/common/error.h"
#include "pa/core/bursting.h"
#include "pa/core/pilot_compute_service.h"
#include "pa/infra/background_load.h"
#include "pa/infra/batch_cluster.h"
#include "pa/infra/cloud.h"
#include "pa/infra/htc_pool.h"
#include "pa/rt/sim_runtime.h"
#include "pa/saga/session.h"

namespace pa::core {
namespace {

/// World with an aggressively preempting HTC pool and a reliable cluster.
class FaultToleranceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    infra::HtcPoolConfig htc_cfg;
    htc_cfg.name = "flaky-pool";
    htc_cfg.num_slots = 16;
    htc_cfg.cores_per_slot = 4;
    htc_cfg.match_latency_min = 1.0;
    htc_cfg.match_latency_max = 5.0;
    htc_cfg.preemption_rate = 1.0 / 300.0;  // evict ~every 5 min per slot
    htc_cfg.seed = 7;
    htc_ = std::make_shared<infra::HtcPool>(engine_, htc_cfg);
    session_.register_resource("condor://flaky-pool", htc_);

    infra::BatchClusterConfig hpc_cfg;
    hpc_cfg.name = "hpc";
    hpc_cfg.num_nodes = 8;
    hpc_cfg.node.cores = 8;
    hpc_ = std::make_shared<infra::BatchCluster>(engine_, hpc_cfg);
    session_.register_resource("slurm://hpc", hpc_);

    runtime_ = std::make_unique<rt::SimRuntime>(engine_, session_);
    service_ = std::make_unique<PilotComputeService>(*runtime_, "backfill");
  }

  PilotDescription htc_pilot() {
    PilotDescription d;
    d.resource_url = "condor://flaky-pool";
    d.nodes = 4;
    d.walltime = 24 * 3600.0;
    return d;
  }

  sim::Engine engine_;
  saga::Session session_;
  std::shared_ptr<infra::HtcPool> htc_;
  std::shared_ptr<infra::BatchCluster> hpc_;
  std::unique_ptr<rt::SimRuntime> runtime_;
  std::unique_ptr<PilotComputeService> service_;
};

TEST_F(FaultToleranceTest, WorkloadCompletesDespitePreemptionWithRestarts) {
  service_->set_pilot_restart_policy(50);
  service_->submit_pilot(htc_pilot());
  for (int i = 0; i < 64; ++i) {
    ComputeUnitDescription d;
    d.duration = 120.0;  // long enough that preemptions will hit
    service_->submit_unit(d);
  }
  service_->wait_all_units(30 * 24 * 3600.0);
  const auto m = service_->metrics();
  EXPECT_EQ(m.units_done, 64u);
  EXPECT_EQ(m.units_failed, 0u);
  // The pool's preemption rate makes hits near-certain over this horizon.
  EXPECT_GT(htc_->preemption_count(), 0u);
  EXPECT_GT(m.requeues, 0u);
}

TEST_F(FaultToleranceTest, WithoutRestartsWorkloadStalls) {
  // No restart policy: when the only pilot is preempted, the queue can
  // never drain and the wait must time out (simulation drains).
  service_->submit_pilot(htc_pilot());
  for (int i = 0; i < 64; ++i) {
    ComputeUnitDescription d;
    d.duration = 120.0;
    service_->submit_unit(d);
  }
  try {
    service_->wait_all_units(30 * 24 * 3600.0);
    // Possible (if no preemption hit this pilot before the work drained) —
    // but with these rates the workload of 64*120s on 16 cores (~8 min)
    // almost surely sees one. Accept either outcome; on timeout some
    // units must be pending.
  } catch (const TimeoutError&) {
    EXPECT_GT(service_->unfinished_units(), 0u);
  }
}

TEST_F(FaultToleranceTest, RestartBudgetIsBounded) {
  service_->set_pilot_restart_policy(2);
  service_->submit_pilot(htc_pilot());
  for (int i = 0; i < 8; ++i) {
    ComputeUnitDescription d;
    d.duration = 1e5;  // effectively never finishes: forces preemption churn
    service_->submit_unit(d);
  }
  // Drive until the simulation drains (all restarts exhausted, pilots
  // dead, units pending).
  try {
    service_->wait_all_units(60 * 24 * 3600.0);
    FAIL() << "workload should not complete";
  } catch (const TimeoutError&) {
  }
  // 1 original + at most 2 restarts were preempted.
  EXPECT_LE(htc_->preemption_count(), 3u);
  EXPECT_GT(service_->unfinished_units(), 0u);
}

TEST_F(FaultToleranceTest, CancelledPilotIsNotRestarted) {
  service_->set_pilot_restart_policy(5);
  Pilot pilot = service_->submit_pilot(htc_pilot());
  pilot.wait_active(3600.0);
  pilot.cancel();
  engine_.run_until(engine_.now() + 3600.0);
  // Cancellation is not a failure: nothing resubmitted, nothing running.
  EXPECT_EQ(service_->metrics().pilot_startup_times.count(), 1u);
}

TEST_F(FaultToleranceTest, UnitObserverSeesFullLifecycle) {
  std::vector<std::pair<UnitState, UnitState>> transitions;
  service_->observe_units(
      [&](const std::string&, UnitState from, UnitState to) {
        transitions.emplace_back(from, to);
      });
  PilotDescription pd;
  pd.resource_url = "slurm://hpc";
  pd.nodes = 2;
  pd.walltime = 3600.0;
  service_->submit_pilot(pd);
  ComputeUnitDescription d;
  d.duration = 10.0;
  ComputeUnit unit = service_->submit_unit(d);
  EXPECT_EQ(unit.wait(3600.0), UnitState::kDone);
  ASSERT_EQ(transitions.size(), 4u);
  EXPECT_EQ(transitions[0],
            std::make_pair(UnitState::kNew, UnitState::kPending));
  EXPECT_EQ(transitions[1],
            std::make_pair(UnitState::kPending, UnitState::kScheduled));
  EXPECT_EQ(transitions[2],
            std::make_pair(UnitState::kScheduled, UnitState::kRunning));
  EXPECT_EQ(transitions[3],
            std::make_pair(UnitState::kRunning, UnitState::kDone));
}

TEST_F(FaultToleranceTest, UnitObserverSeesRequeueReset) {
  int resets = 0;
  service_->observe_units(
      [&](const std::string&, UnitState from, UnitState to) {
        if (to == UnitState::kPending && from == UnitState::kRunning) {
          ++resets;
        }
      });
  Pilot pilot = service_->submit_pilot(htc_pilot());
  pilot.wait_active(3600.0);
  ComputeUnitDescription d;
  d.duration = 1000.0;
  service_->submit_unit(d);
  engine_.run_until(engine_.now() + 30.0);
  pilot.cancel();
  engine_.run_until(engine_.now() + 10.0);
  EXPECT_EQ(resets, 1);
}

TEST_F(FaultToleranceTest, AdaptiveBursterTriggersOnLongWait) {
  // Congest the cluster so an 8-node pilot cannot start soon.
  infra::BackgroundLoadConfig bg =
      infra::BackgroundLoad::for_utilization(0.9, 8, 3);
  infra::BackgroundLoad load(engine_, *hpc_, bg);
  load.start();
  engine_.run_until(2.0 * 24 * 3600.0);

  infra::CloudConfig cloud_cfg;
  cloud_cfg.name = "cloud";
  cloud_cfg.vm.cores = 8;
  auto cloud = std::make_shared<infra::CloudProvider>(engine_, cloud_cfg);
  session_.register_resource("ec2://cloud", cloud);

  PilotDescription hpc_pd;
  hpc_pd.resource_url = "slurm://hpc";
  hpc_pd.nodes = 8;
  hpc_pd.walltime = 3600.0;
  service_->submit_pilot(hpc_pd);
  for (int i = 0; i < 64; ++i) {
    ComputeUnitDescription d;
    d.duration = 30.0;
    service_->submit_unit(d);
  }

  BurstPolicy policy;
  policy.wait_threshold = 600.0;
  policy.min_pending_units = 8;
  policy.max_burst_pilots = 1;
  policy.burst_pilot.resource_url = "ec2://cloud";
  policy.burst_pilot.nodes = 8;
  policy.burst_pilot.walltime = 3600.0;
  AdaptiveBurster burster(*service_, policy, [&]() {
    return hpc_->estimate_start_time(8) - engine_.now();
  });

  EXPECT_TRUE(burster.evaluate());
  EXPECT_EQ(burster.bursts(), 1);
  // Second evaluation: cap reached.
  EXPECT_FALSE(burster.evaluate());

  service_->wait_all_units(30 * 24 * 3600.0);
  EXPECT_EQ(service_->metrics().units_done, 64u);
  EXPECT_GT(cloud->total_cost(), 0.0);
}

TEST_F(FaultToleranceTest, AdaptiveBursterHoldsWhenQueueFast) {
  PilotDescription hpc_pd;
  hpc_pd.resource_url = "slurm://hpc";
  hpc_pd.nodes = 2;
  hpc_pd.walltime = 3600.0;
  service_->submit_pilot(hpc_pd);
  ComputeUnitDescription d;
  d.duration = 10.0;
  service_->submit_unit(d);

  BurstPolicy policy;
  policy.wait_threshold = 600.0;
  policy.burst_pilot.resource_url = "slurm://hpc";
  policy.burst_pilot.nodes = 1;
  policy.burst_pilot.walltime = 3600.0;
  AdaptiveBurster burster(*service_, policy, [&]() {
    return hpc_->estimate_start_time(2) - engine_.now();
  });
  EXPECT_FALSE(burster.evaluate());  // idle cluster: wait ~0
  EXPECT_EQ(burster.bursts(), 0);
}

TEST_F(FaultToleranceTest, AdaptiveBursterHoldsWithoutPendingWork) {
  BurstPolicy policy;
  policy.wait_threshold = 0.0;
  policy.min_pending_units = 1;
  policy.burst_pilot.resource_url = "slurm://hpc";
  policy.burst_pilot.nodes = 1;
  policy.burst_pilot.walltime = 3600.0;
  AdaptiveBurster burster(*service_, policy, []() { return 1e9; });
  EXPECT_FALSE(burster.evaluate());  // no units submitted
}

TEST_F(FaultToleranceTest, BursterValidation) {
  BurstPolicy bad;
  bad.burst_pilot.resource_url = "";
  EXPECT_THROW(AdaptiveBurster(*service_, bad, []() { return 0.0; }),
               InvalidArgument);
  BurstPolicy ok;
  ok.burst_pilot.resource_url = "slurm://hpc";
  EXPECT_THROW(AdaptiveBurster(*service_, ok, nullptr), InvalidArgument);
  ok.max_burst_pilots = 0;
  EXPECT_THROW(AdaptiveBurster(*service_, ok, []() { return 0.0; }),
               InvalidArgument);
}

TEST_F(FaultToleranceTest, RestartPolicyValidation) {
  EXPECT_THROW(service_->set_pilot_restart_policy(-1), InvalidArgument);
}

}  // namespace
}  // namespace pa::core
