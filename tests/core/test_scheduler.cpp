#include "pa/core/scheduler.h"

#include <gtest/gtest.h>

#include <map>

#include "pa/common/error.h"
#include "pa/common/rng.h"

namespace pa::core {
namespace {

PilotView pilot(const std::string& id, const std::string& site, int free,
                double cost = 0.0, double walltime = 1e9) {
  PilotView p;
  p.pilot_id = id;
  p.site = site;
  p.total_cores = free;
  p.free_cores = free;
  p.cost_per_core_hour = cost;
  p.remaining_walltime = walltime;
  return p;
}

UnitView unit(const std::string& id, int cores, double duration = 1.0) {
  UnitView u;
  u.unit_id = id;
  u.cores = cores;
  u.expected_duration = duration;
  return u;
}

/// Checks the capacity invariant for any scheduler output.
void check_capacity(const std::vector<Assignment>& assignments,
                    const std::deque<UnitView>& units,
                    const std::vector<PilotView>& pilots) {
  std::map<std::string, int> used;
  std::map<std::string, int> unit_cores;
  std::map<std::string, int> assigned_count;
  for (const auto& u : units) {
    unit_cores[u.unit_id] = u.cores;
  }
  for (const auto& a : assignments) {
    used[a.pilot_id] += unit_cores.at(a.unit_id);
    assigned_count[a.unit_id] += 1;
    EXPECT_EQ(assigned_count[a.unit_id], 1) << "unit assigned twice";
  }
  for (const auto& p : pilots) {
    EXPECT_LE(used[p.pilot_id], p.free_cores)
        << "pilot " << p.pilot_id << " oversubscribed";
  }
}

TEST(FifoScheduler, AssignsInOrder) {
  FifoScheduler sched;
  const std::vector<PilotView> pilots = {pilot("p1", "a", 4)};
  const std::deque<UnitView> units = {unit("u1", 2), unit("u2", 2),
                                       unit("u3", 2)};
  const auto out = sched.schedule(units, pilots);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].unit_id, "u1");
  EXPECT_EQ(out[1].unit_id, "u2");
  check_capacity(out, units, pilots);
}

TEST(FifoScheduler, HeadOfLineBlocks) {
  FifoScheduler sched;
  const std::vector<PilotView> pilots = {pilot("p1", "a", 4)};
  // u1 cannot fit anywhere; u2 could, but FIFO must not jump it ahead.
  const std::deque<UnitView> units = {unit("u1", 8), unit("u2", 1)};
  const auto out = sched.schedule(units, pilots);
  EXPECT_TRUE(out.empty());
}

TEST(BackfillScheduler, SkipsBlockedHead) {
  BackfillScheduler sched;
  const std::vector<PilotView> pilots = {pilot("p1", "a", 4)};
  const std::deque<UnitView> units = {unit("u1", 8), unit("u2", 1)};
  const auto out = sched.schedule(units, pilots);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].unit_id, "u2");
}

TEST(BackfillScheduler, RespectsWalltime) {
  BackfillScheduler sched;
  std::vector<PilotView> pilots = {pilot("p1", "a", 4, 0.0, 10.0)};
  const std::deque<UnitView> units = {unit("u-long", 1, 100.0),
                                       unit("u-short", 1, 5.0)};
  const auto out = sched.schedule(units, pilots);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].unit_id, "u-short");
}

TEST(BackfillScheduler, PreferredSiteHonored) {
  BackfillScheduler sched;
  const std::vector<PilotView> pilots = {pilot("p1", "a", 4),
                                         pilot("p2", "b", 4)};
  UnitView u = unit("u1", 1);
  u.preferred_site = "b";
  const auto out = sched.schedule({u}, pilots);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].pilot_id, "p2");
}

TEST(BackfillScheduler, PreferredSiteFallsBackWhenFull) {
  BackfillScheduler sched;
  const std::vector<PilotView> pilots = {pilot("p1", "a", 4),
                                         pilot("p2", "b", 0)};
  UnitView u = unit("u1", 1);
  u.preferred_site = "b";
  const auto out = sched.schedule({u}, pilots);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].pilot_id, "p1");
}

TEST(RoundRobinScheduler, SpreadsAcrossPilots) {
  RoundRobinScheduler sched;
  const std::vector<PilotView> pilots = {pilot("p1", "a", 4),
                                         pilot("p2", "b", 4)};
  const std::deque<UnitView> units = {unit("u1", 1), unit("u2", 1),
                                       unit("u3", 1), unit("u4", 1)};
  const auto out = sched.schedule(units, pilots);
  ASSERT_EQ(out.size(), 4u);
  std::map<std::string, int> per_pilot;
  for (const auto& a : out) {
    per_pilot[a.pilot_id] += 1;
  }
  EXPECT_EQ(per_pilot["p1"], 2);
  EXPECT_EQ(per_pilot["p2"], 2);
}

TEST(RoundRobinScheduler, CursorPersistsAcrossCalls) {
  RoundRobinScheduler sched;
  const std::vector<PilotView> pilots = {pilot("p1", "a", 4),
                                         pilot("p2", "b", 4)};
  const auto first = sched.schedule({unit("u1", 1)}, pilots);
  const auto second = sched.schedule({unit("u2", 1)}, pilots);
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NE(first[0].pilot_id, second[0].pilot_id);
}

// Regression: the cursor used to be a raw index into the pilot vector, so
// removing or reordering pilots between calls made the rotation restart or
// double-serve a pilot. The cursor is keyed by the last-assigned pilot id.
TEST(RoundRobinScheduler, CursorSurvivesPilotReorder) {
  RoundRobinScheduler sched;
  const auto first = sched.schedule(
      {unit("u1", 1)}, {pilot("p1", "a", 4), pilot("p2", "b", 4),
                        pilot("p3", "c", 4)});
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].pilot_id, "p1");
  // Same pilots, different order. Rotation must continue after p1 (-> p2);
  // the old index-based cursor would have landed on position 1 == p1 again.
  const auto second = sched.schedule(
      {unit("u2", 1)}, {pilot("p3", "c", 4), pilot("p1", "a", 4),
                        pilot("p2", "b", 4)});
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].pilot_id, "p2");
}

TEST(RoundRobinScheduler, CursorResetsWhenLastPilotGone) {
  RoundRobinScheduler sched;
  const auto first =
      sched.schedule({unit("u1", 1)}, {pilot("p1", "a", 4),
                                       pilot("p2", "b", 4)});
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].pilot_id, "p1");
  // p1 terminated; the scheduler must fall back to the head of the new set
  // instead of indexing past it.
  const auto second =
      sched.schedule({unit("u2", 1)}, {pilot("p2", "b", 4)});
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].pilot_id, "p2");
}

TEST(RoundRobinScheduler, FairAcrossGrowingPilotSet) {
  RoundRobinScheduler sched;
  std::map<std::string, int> per_pilot;
  std::vector<PilotView> pilots = {pilot("p1", "a", 100),
                                   pilot("p2", "b", 100)};
  for (int i = 0; i < 4; ++i) {
    const auto out =
        sched.schedule({unit("u" + std::to_string(i), 1)}, pilots);
    ASSERT_EQ(out.size(), 1u);
    per_pilot[out[0].pilot_id] += 1;
  }
  pilots.push_back(pilot("p3", "c", 100));
  for (int i = 4; i < 10; ++i) {
    const auto out =
        sched.schedule({unit("u" + std::to_string(i), 1)}, pilots);
    ASSERT_EQ(out.size(), 1u);
    per_pilot[out[0].pilot_id] += 1;
  }
  // 10 units over a 2-then-3 pilot set: every pilot keeps getting turns
  // and the spread stays balanced (4/4/2 with the id-keyed cursor).
  EXPECT_EQ(per_pilot["p1"], 4);
  EXPECT_EQ(per_pilot["p2"], 4);
  EXPECT_EQ(per_pilot["p3"], 2);
}

TEST(DataAffinityScheduler, PicksSiteWithMostLocalData) {
  DataAffinityScheduler sched;
  const std::vector<PilotView> pilots = {pilot("p1", "a", 4),
                                         pilot("p2", "b", 4)};
  UnitView u = unit("u1", 1);
  u.input_bytes_by_site["a"] = 1e6;
  u.input_bytes_by_site["b"] = 9e6;
  u.total_input_bytes = 1e7;
  const auto out = sched.schedule({u}, pilots);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].pilot_id, "p2");
}

TEST(DataAffinityScheduler, FallsBackWhenDataSiteFull) {
  DataAffinityScheduler sched;
  const std::vector<PilotView> pilots = {pilot("p1", "a", 4),
                                         pilot("p2", "b", 0)};
  UnitView u = unit("u1", 1);
  u.input_bytes_by_site["b"] = 9e6;
  const auto out = sched.schedule({u}, pilots);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].pilot_id, "p1");
}

TEST(DataAffinityScheduler, NoDataBehavesLikeBackfill) {
  DataAffinityScheduler sched;
  const std::vector<PilotView> pilots = {pilot("p1", "a", 2)};
  const std::deque<UnitView> units = {unit("u1", 4), unit("u2", 1)};
  const auto out = sched.schedule(units, pilots);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].unit_id, "u2");
}

// Regression: data-affinity used to drop the preferred_site hint entirely
// and first-fit units without input data.
TEST(DataAffinityScheduler, HonorsPreferredSiteWithoutData) {
  DataAffinityScheduler sched;
  const std::vector<PilotView> pilots = {pilot("p1", "a", 4),
                                         pilot("p2", "b", 4)};
  UnitView u = unit("u1", 1);
  u.preferred_site = "b";
  const auto out = sched.schedule({u}, pilots);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].pilot_id, "p2");
}

TEST(DataAffinityScheduler, LocalDataDominatesPreferredSite) {
  DataAffinityScheduler sched;
  const std::vector<PilotView> pilots = {pilot("p1", "a", 4),
                                         pilot("p2", "b", 4)};
  UnitView u = unit("u1", 1);
  u.preferred_site = "b";
  u.input_bytes_by_site["a"] = 5e6;
  u.total_input_bytes = 5e6;
  const auto out = sched.schedule({u}, pilots);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].pilot_id, "p1") << "data locality must beat the hint";
}

TEST(DataAffinityScheduler, PreferredSiteFallsBackWhenFull) {
  DataAffinityScheduler sched;
  const std::vector<PilotView> pilots = {pilot("p1", "a", 4),
                                         pilot("p2", "b", 0)};
  UnitView u = unit("u1", 1);
  u.preferred_site = "b";
  const auto out = sched.schedule({u}, pilots);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].pilot_id, "p1");
}

// Regression: a unit whose inputs have no known replica site (the store
// knows the object but nothing holds it near any pilot) used to first-fit
// on snapshot order, so placement flapped as the pilot list reshuffled.
// The fallback is deterministic now: most free cores, ties by pilot id.
TEST(DataAffinityScheduler, EmptyReplicaSetFallsBackDeterministically) {
  DataAffinityScheduler sched;
  UnitView u = unit("u1", 1);
  u.total_input_bytes = 5e6;  // inputs exist, but no site holds them

  const auto forward = sched.schedule(
      {u}, {pilot("p2", "b", 4), pilot("p1", "a", 4), pilot("p3", "c", 4)});
  ASSERT_EQ(forward.size(), 1u);
  EXPECT_EQ(forward[0].pilot_id, "p1");
  const auto shuffled = sched.schedule(
      {u}, {pilot("p3", "c", 4), pilot("p1", "a", 4), pilot("p2", "b", 4)});
  ASSERT_EQ(shuffled.size(), 1u);
  EXPECT_EQ(shuffled[0].pilot_id, "p1") << "order must not matter";

  // Free capacity still dominates the id tie-break.
  const auto emptier =
      sched.schedule({u}, {pilot("p1", "a", 2), pilot("p2", "b", 6)});
  ASSERT_EQ(emptier.size(), 1u);
  EXPECT_EQ(emptier[0].pilot_id, "p2");
}

TEST(CostAwareScheduler, PrefersCheapestPilot) {
  CostAwareScheduler sched;
  const std::vector<PilotView> pilots = {pilot("cloud", "ec2", 8, 0.04),
                                         pilot("hpc", "hpc-a", 8, 0.0)};
  const auto out = sched.schedule({unit("u1", 1)}, pilots);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].pilot_id, "hpc");
}

TEST(CostAwareScheduler, SpillsToExpensiveWhenCheapFull) {
  CostAwareScheduler sched;
  const std::vector<PilotView> pilots = {pilot("cloud", "ec2", 8, 0.04),
                                         pilot("hpc", "hpc-a", 1, 0.0)};
  const std::deque<UnitView> units = {unit("u1", 1), unit("u2", 1)};
  const auto out = sched.schedule(units, pilots);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].pilot_id, "hpc");
  EXPECT_EQ(out[1].pilot_id, "cloud");
}

TEST(CostAwareScheduler, PriorityBreaksCostTies) {
  CostAwareScheduler sched;
  PilotView low = pilot("low", "a", 8, 0.0);
  low.priority = 1;
  PilotView high = pilot("high", "b", 8, 0.0);
  high.priority = 5;
  const auto out = sched.schedule({unit("u1", 1)}, {low, high});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].pilot_id, "high");
}

TEST(LargestFirstScheduler, PlacesBigUnitsFirst) {
  LargestFirstScheduler sched;
  const std::vector<PilotView> pilots = {pilot("p1", "a", 4)};
  // FCFS order: small first. Largest-first places the 4-core unit, and the
  // small one no longer fits.
  const std::deque<UnitView> units = {unit("small", 1), unit("big", 4)};
  const auto out = sched.schedule(units, pilots);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].unit_id, "big");
}

TEST(ShortestFirstScheduler, PrefersShortUnits) {
  ShortestFirstScheduler sched;
  const std::vector<PilotView> pilots = {pilot("p1", "a", 1)};
  // FCFS order: long first. SJF places the short unit into the single
  // slot instead.
  std::deque<UnitView> units = {unit("long", 1, 100.0),
                                 unit("short", 1, 1.0)};
  const auto out = sched.schedule(units, pilots);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].unit_id, "short");
}

TEST(ShortestFirstScheduler, StableAmongEqualDurations) {
  ShortestFirstScheduler sched;
  const std::vector<PilotView> pilots = {pilot("p1", "a", 1)};
  std::deque<UnitView> units = {unit("first", 1, 5.0),
                                 unit("second", 1, 5.0)};
  const auto out = sched.schedule(units, pilots);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].unit_id, "first");  // stable sort keeps FCFS ties
}

TEST(MakeScheduler, KnownPoliciesConstructible) {
  for (const std::string name : {"fifo", "backfill", "round-robin",
                                 "data-affinity", "cost-aware",
                                 "largest-first", "shortest-first"}) {
    const auto sched = make_scheduler(name);
    ASSERT_NE(sched, nullptr);
    EXPECT_EQ(std::string(sched->name()), name);
  }
}

TEST(MakeScheduler, UnknownPolicyThrows) {
  EXPECT_THROW(make_scheduler("quantum"), pa::InvalidArgument);
  EXPECT_THROW(make_scheduler(""), pa::InvalidArgument);
}

// The factory and its documentation are kept in sync through one registry:
// every advertised policy constructs, reports its own name, and nothing
// else is accepted.
TEST(MakeScheduler, PolicyNamesMatchFactory) {
  const auto& names = scheduler_policy_names();
  const std::vector<std::string> documented = {
      "fifo",          "backfill",      "round-robin", "data-affinity",
      "cost-aware",    "largest-first", "shortest-first"};
  EXPECT_EQ(names, documented);
  for (const auto& name : names) {
    const auto sched = make_scheduler(name);
    ASSERT_NE(sched, nullptr);
    EXPECT_EQ(std::string(sched->name()), name);
  }
}

// Property test: no scheduler ever oversubscribes or double-assigns, over
// randomized workloads.
class SchedulerProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(SchedulerProperty, CapacityInvariantHolds) {
  pa::Rng rng(42);
  for (int round = 0; round < 50; ++round) {
    const auto sched = make_scheduler(GetParam());
    std::vector<PilotView> pilots;
    const int npilots = static_cast<int>(rng.uniform_int(1, 4));
    for (int p = 0; p < npilots; ++p) {
      pilots.push_back(pilot("p" + std::to_string(p),
                             "site" + std::to_string(p % 2),
                             static_cast<int>(rng.uniform_int(1, 16)), 0.0,
                             rng.uniform(10.0, 1000.0)));
    }
    std::deque<UnitView> units;
    const int nunits = static_cast<int>(rng.uniform_int(1, 30));
    for (int u = 0; u < nunits; ++u) {
      UnitView uv = unit("u" + std::to_string(u),
                         static_cast<int>(rng.uniform_int(1, 8)),
                         rng.uniform(1.0, 100.0));
      if (rng.bernoulli(0.3)) {
        uv.input_bytes_by_site["site0"] = rng.uniform(0.0, 1e6);
      }
      units.push_back(std::move(uv));
    }
    const auto out = sched->schedule(units, pilots);
    check_capacity(out, units, pilots);
    // Walltime invariant.
    std::map<std::string, const PilotView*> by_id;
    for (const auto& p : pilots) {
      by_id[p.pilot_id] = &p;
    }
    std::map<std::string, const UnitView*> u_by_id;
    for (const auto& u : units) {
      u_by_id[u.unit_id] = &u;
    }
    for (const auto& a : out) {
      EXPECT_LE(u_by_id.at(a.unit_id)->expected_duration,
                by_id.at(a.pilot_id)->remaining_walltime);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SchedulerProperty,
                         ::testing::Values("fifo", "backfill", "round-robin",
                                           "data-affinity", "cost-aware",
                                           "largest-first",
                                           "shortest-first"));

}  // namespace
}  // namespace pa::core
