/// Sharded control plane: routing, cross-shard reads, pilot moves with
/// exactly-once unit accounting, and the move protocol under real
/// threads (the LocalRuntime tests here are part of the sanitizer smoke
/// set — TSan must see a clean mid-burst migration).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "pa/common/error.h"
#include "pa/core/pilot_compute_service.h"
#include "pa/core/shard_router.h"
#include "pa/infra/batch_cluster.h"
#include "pa/journal/journal.h"
#include "pa/journal/service_journal.h"
#include "pa/obs/metrics.h"
#include "pa/rt/local_runtime.h"
#include "pa/rt/sim_runtime.h"
#include "pa/saga/session.h"

namespace pa::core {
namespace {

TEST(ShardRouter, DefaultShardIsTrailingOrdinalModuloShards) {
  ShardRouter router(4);
  EXPECT_EQ(router.default_shard("pilot-0"), 0);
  EXPECT_EQ(router.default_shard("pilot-5"), 1);
  EXPECT_EQ(router.default_shard("unit-7"), 3);
  EXPECT_EQ(router.shard_for_id("unit-7"), 3);
}

TEST(ShardRouter, PinOverridesAndForgetRestoresDefault) {
  ShardRouter router(4);
  EXPECT_EQ(router.pinned("pilot-1"), -1);
  router.pin("pilot-1", 3);
  EXPECT_EQ(router.pinned("pilot-1"), 3);
  EXPECT_EQ(router.shard_for_id("pilot-1"), 3);
  EXPECT_EQ(router.default_shard("pilot-1"), 1);  // default unchanged
  router.forget("pilot-1");
  EXPECT_EQ(router.shard_for_id("pilot-1"), 1);
}

TEST(ShardRouter, NonOrdinalIdsAndTenantsHashStably) {
  ShardRouter router(4);
  const int shard = router.shard_for_id("no-ordinal-here-x");
  EXPECT_GE(shard, 0);
  EXPECT_LT(shard, 4);
  EXPECT_EQ(router.shard_for_id("no-ordinal-here-x"), shard);
  const int tenant_shard = router.shard_for_tenant("astro");
  EXPECT_EQ(router.shard_for_tenant("astro"), tenant_shard);
}

/// Full simulated stack with a shard-count knob.
class ShardedSimTest : public ::testing::Test {
 protected:
  void make_service(int shards, const std::string& policy = "backfill") {
    infra::BatchClusterConfig cfg;
    cfg.name = "hpc-a";
    cfg.num_nodes = 8;
    cfg.node.cores = 8;
    cluster_ = std::make_shared<infra::BatchCluster>(engine_, cfg);
    session_.register_resource("slurm://hpc-a", cluster_);
    runtime_ = std::make_unique<rt::SimRuntime>(engine_, session_);
    PilotComputeService::Options options;
    options.scheduler_policy = policy;
    options.shards = shards;
    service_ = std::make_unique<PilotComputeService>(*runtime_, options);
  }

  PilotDescription pilot_desc(int nodes = 2) {
    PilotDescription d;
    d.resource_url = "slurm://hpc-a";
    d.nodes = nodes;
    d.walltime = 3600.0;
    return d;
  }

  ComputeUnitDescription unit_desc(double duration = 10.0) {
    ComputeUnitDescription d;
    d.duration = duration;
    d.cores = 1;
    return d;
  }

  sim::Engine engine_;
  saga::Session session_;
  std::shared_ptr<infra::BatchCluster> cluster_;
  std::unique_ptr<rt::SimRuntime> runtime_;
  std::unique_ptr<PilotComputeService> service_;
};

TEST_F(ShardedSimTest, WorkloadCompletesAcrossShards) {
  make_service(4);
  EXPECT_EQ(service_->shards(), 4);
  std::vector<Pilot> pilots;
  for (int i = 0; i < 4; ++i) {
    pilots.push_back(service_->submit_pilot(pilot_desc(2)));
  }
  std::vector<ComputeUnit> units;
  for (int i = 0; i < 64; ++i) {
    units.push_back(service_->submit_unit(unit_desc()));
  }
  // Ids round-robin across all four shards.
  std::set<int> shards_used;
  for (const auto& u : units) {
    shards_used.insert(service_->shard_of(u.id()));
  }
  EXPECT_EQ(shards_used.size(), 4u);
  service_->wait_all_units();
  for (const auto& u : units) {
    EXPECT_EQ(u.state(), UnitState::kDone);  // read resolves on any shard
  }
  EXPECT_EQ(service_->metrics().units_done, 64u);
  EXPECT_EQ(service_->unfinished_units(), 0u);
  EXPECT_EQ(service_->total_units(), 64u);
}

TEST_F(ShardedSimTest, UnknownIdsThrowAcrossShards) {
  make_service(3);
  EXPECT_THROW(service_->pilot_state("pilot-99"), NotFound);
  EXPECT_THROW(service_->unit_state("unit-99"), NotFound);
  EXPECT_THROW(service_->cancel_unit("unit-99"), NotFound);
}

TEST_F(ShardedSimTest, ShardedServiceRejectsSingleJournalAttach) {
  make_service(2);
  journal::Journal journal(::testing::TempDir() + "/wal_reject");
  journal::ServiceJournal sink(journal);
  EXPECT_THROW(service_->attach_journal(&sink), InvalidArgument);
}

TEST_F(ShardedSimTest, MovePilotMigratesBoundUnits) {
  make_service(2, "fifo");
  Pilot pilot = service_->submit_pilot(pilot_desc(1));  // pilot-0 -> shard 0
  pilot.wait_active();
  std::vector<ComputeUnit> units;
  for (int i = 0; i < 12; ++i) {
    units.push_back(service_->submit_unit(unit_desc(50.0)));
  }
  engine_.run_until(engine_.now() + 5.0);  // first wave running
  const int before = service_->shard_of(pilot.id());
  const int target = 1 - before;
  service_->move_pilot_to_shard(pilot.id(), target);
  EXPECT_EQ(service_->shard_of(pilot.id()), target);
  EXPECT_EQ(service_->pilot_state(pilot.id()), PilotState::kActive);
  // The whole workload still completes, each unit exactly once.
  service_->wait_all_units();
  std::size_t done = 0;
  for (const auto& u : units) {
    done += u.state() == UnitState::kDone ? 1 : 0;
  }
  EXPECT_EQ(done, units.size());
  EXPECT_EQ(service_->metrics().units_done, units.size());
}

TEST_F(ShardedSimTest, MoveToOwnShardAndFinalPilotAreNoops) {
  make_service(2);
  Pilot pilot = service_->submit_pilot(pilot_desc(1));
  pilot.wait_active();
  const int own = service_->shard_of(pilot.id());
  service_->move_pilot_to_shard(pilot.id(), own);
  EXPECT_EQ(service_->shard_of(pilot.id()), own);
  pilot.cancel();
  EXPECT_EQ(pilot.state(), PilotState::kCanceled);
  service_->move_pilot_to_shard(pilot.id(), 1 - own);  // final: ignored
  EXPECT_EQ(service_->pilot_state(pilot.id()), PilotState::kCanceled);
}

TEST_F(ShardedSimTest, MovedSubmittedPilotActivatesOnTargetShard) {
  make_service(2);
  Pilot pilot = service_->submit_pilot(pilot_desc(1));
  const int before = service_->shard_of(pilot.id());
  service_->move_pilot_to_shard(pilot.id(), 1 - before);
  pilot.wait_active();  // activation callback forwards to the new owner
  EXPECT_EQ(pilot.state(), PilotState::kActive);
  EXPECT_EQ(service_->shard_of(pilot.id()), 1 - before);
}

TEST_F(ShardedSimTest, CancelAfterMoveReachesNewOwner) {
  make_service(2);
  Pilot pilot = service_->submit_pilot(pilot_desc(1));
  pilot.wait_active();
  ComputeUnit unit = service_->submit_unit(unit_desc(100.0));
  engine_.run_until(engine_.now() + 5.0);
  service_->move_pilot_to_shard(pilot.id(), 1 - service_->shard_of(pilot.id()));
  unit.cancel();  // routes through the router override
  EXPECT_EQ(unit.wait(), UnitState::kCanceled);
}

TEST_F(ShardedSimTest, SingleShardMatchesClassicBehavior) {
  make_service(1);
  Pilot pilot = service_->submit_pilot(pilot_desc());
  ComputeUnit unit = service_->submit_unit(unit_desc(10.0));
  EXPECT_EQ(unit.wait(), UnitState::kDone);
  const auto metrics = service_->metrics();
  EXPECT_EQ(metrics.units_done, 1u);
  EXPECT_NEAR(metrics.pilot_startup_times.max(), 2.0, 1e-9);
  pilot.wait_active();
}

/// Real threads: producers, shard apply threads, and LocalRuntime pool
/// workers all running — the TSan target for the move protocol.
class ShardedLocalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime_ = std::make_unique<rt::LocalRuntime>();
    PilotComputeService::Options options;
    options.scheduler_policy = "fifo";
    options.shards = 4;
    service_ = std::make_unique<PilotComputeService>(*runtime_, options);
  }

  PilotDescription pilot_desc(int cores = 4) {
    PilotDescription d;
    d.resource_url = "local://host";
    d.nodes = cores;
    d.walltime = 1e9;
    return d;
  }

  // Sinks outlive the service: shard apply threads and the control
  // planes keep instrument pointers into the registry until teardown.
  obs::MetricsRegistry metrics_;
  std::unique_ptr<rt::LocalRuntime> runtime_;
  std::unique_ptr<PilotComputeService> service_;
};

TEST_F(ShardedLocalTest, BurstAcrossShardsAllExecuteExactlyOnce) {
  // One pilot per shard: units land on their home shard's queue and bind
  // to the pilot that lives there.
  for (int i = 0; i < 4; ++i) {
    service_->submit_pilot(pilot_desc(2));
  }
  std::atomic<int> executed{0};
  std::vector<ComputeUnitDescription> batch(200);
  for (auto& d : batch) {
    d.work = [&executed]() { executed.fetch_add(1); };
  }
  service_->submit_units(batch);
  service_->wait_all_units(60.0);
  EXPECT_EQ(executed.load(), 200);
  EXPECT_EQ(service_->metrics().units_done, 200u);
}

TEST_F(ShardedLocalTest, MovePilotMidBurstKeepsExactlyOnceAccounting) {
  // The migrating pilot, plus one stationary pilot per other shard so no
  // home queue starves while pilot-0 hops around the ring.
  Pilot pilot = service_->submit_pilot(pilot_desc(4));
  for (int i = 1; i < 4; ++i) {
    service_->submit_pilot(pilot_desc(2));
  }
  pilot.wait_active(10.0);

  // Terminal-transition ledger: the observer fires on apply threads of
  // whichever shard owns the unit at the time; each unit may reach a
  // final state at most once even while its pilot migrates.
  constexpr int kUnits = 160;
  std::vector<std::atomic<int>> terminal_counts(kUnits);
  for (auto& c : terminal_counts) {
    c.store(0);
  }
  std::atomic<int> executed{0};
  service_->observe_units(
      [&terminal_counts](const std::string& unit_id, UnitState /*from*/,
                         UnitState to) {
        if (!is_final(to)) {
          return;
        }
        const auto dash = unit_id.rfind('-');
        const int ordinal = std::stoi(unit_id.substr(dash + 1));
        terminal_counts[static_cast<std::size_t>(ordinal)].fetch_add(1);
      });

  std::vector<ComputeUnitDescription> batch(kUnits);
  for (auto& d : batch) {
    d.work = [&executed]() { executed.fetch_add(1); };
  }
  service_->submit_units(batch);

  // Migrate the pilot around the ring while completions race in.
  for (int hop = 0; hop < 8; ++hop) {
    service_->move_pilot_to_shard(pilot.id(), (hop + 1) % 4);
  }
  service_->wait_all_units(120.0);

  EXPECT_EQ(executed.load(), kUnits);
  EXPECT_EQ(service_->metrics().units_done,
            static_cast<std::size_t>(kUnits));
  for (int i = 0; i < kUnits; ++i) {
    EXPECT_EQ(terminal_counts[static_cast<std::size_t>(i)].load(), 1)
        << "unit-" << i;
  }
  EXPECT_EQ(service_->unfinished_units(), 0u);
}

TEST_F(ShardedLocalTest, ObserversAndMetricsSurviveShutdownWithShards) {
  service_->attach_observability(nullptr, &metrics_);
  for (int i = 0; i < 4; ++i) {
    service_->submit_pilot(pilot_desc(2));
  }
  std::atomic<int> executed{0};
  std::vector<ComputeUnitDescription> batch(40);
  for (auto& d : batch) {
    d.work = [&executed]() { executed.fetch_add(1); };
  }
  service_->submit_units(batch);
  service_->wait_all_units(60.0);
  service_->shutdown();
  // Per-shard control-plane series materialized for every shard.
  int shard_series = 0;
  for (const auto& [name, value] : metrics_.counters()) {
    if (name.rfind("ctrl.s", 0) == 0 &&
        name.find(".commands") != std::string::npos) {
      ++shard_series;
      EXPECT_GT(value, 0u) << name;
    }
  }
  EXPECT_EQ(shard_series, 4);
}

}  // namespace
}  // namespace pa::core
