#include "pa/sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "pa/common/error.h"

namespace pa::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(3.0, [&]() { order.push_back(3); });
  e.schedule(1.0, [&]() { order.push_back(1); });
  e.schedule(2.0, [&]() { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, SameTimeFifoOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule(1.0, [&order, i]() { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Engine, CallbackMaySchedule) {
  Engine e;
  int fired = 0;
  e.schedule(1.0, [&]() {
    ++fired;
    e.schedule(1.0, [&]() { ++fired; });
  });
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule(1.0, [&]() { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(e.cancel(id));  // already gone
}

TEST(Engine, CancelFromCallback) {
  Engine e;
  bool second_fired = false;
  EventId second = 0;
  e.schedule(1.0, [&]() { EXPECT_TRUE(e.cancel(second)); });
  second = e.schedule(2.0, [&]() { second_fired = true; });
  e.run();
  EXPECT_FALSE(second_fired);
}

TEST(Engine, RunUntilAdvancesClockExactly) {
  Engine e;
  int fired = 0;
  e.schedule(1.0, [&]() { ++fired; });
  e.schedule(5.0, [&]() { ++fired; });
  e.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.pending(), 1u);
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunUntilIncludesBoundary) {
  Engine e;
  int fired = 0;
  e.schedule(2.0, [&]() { ++fired; });
  e.run_until(2.0);
  EXPECT_EQ(fired, 1);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine e;
  EXPECT_FALSE(e.step());
  e.schedule(0.0, []() {});
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(Engine, SchedulingInPastRejected) {
  Engine e;
  e.schedule(1.0, []() {});
  e.run();
  EXPECT_THROW(e.schedule_at(0.5, []() {}), pa::InvalidArgument);
  EXPECT_THROW(e.schedule(-1.0, []() {}), pa::InvalidArgument);
}

TEST(Engine, ProcessedCounts) {
  Engine e;
  for (int i = 0; i < 5; ++i) {
    e.schedule(static_cast<double>(i), []() {});
  }
  e.run();
  EXPECT_EQ(e.processed(), 5u);
}

TEST(Engine, NextEventTime) {
  Engine e;
  EXPECT_EQ(e.next_event_time(), kTimeInfinity);
  e.schedule(4.0, []() {});
  EXPECT_DOUBLE_EQ(e.next_event_time(), 4.0);
}

TEST(Engine, DeterministicReplay) {
  auto run_once = []() {
    Engine e;
    std::vector<double> times;
    // A small cascade of events re-scheduling each other.
    std::function<void(int)> chain = [&](int depth) {
      times.push_back(e.now());
      if (depth < 20) {
        e.schedule(0.5 * depth + 0.1, [&chain, depth]() { chain(depth + 1); });
      }
    };
    e.schedule(0.0, [&chain]() { chain(0); });
    e.run();
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(PeriodicTimer, FiresRepeatedly) {
  Engine e;
  int fired = 0;
  PeriodicTimer timer(e, 1.0, [&]() { ++fired; });
  timer.start();
  e.run_until(5.5);
  EXPECT_EQ(fired, 5);
  timer.stop();
  e.run();
  EXPECT_EQ(fired, 5);
}

TEST(PeriodicTimer, StopFromCallback) {
  Engine e;
  int fired = 0;
  PeriodicTimer timer(e, 1.0, [&]() {
    if (++fired == 3) {
      timer.stop();
    }
  });
  timer.start();
  e.run();
  EXPECT_EQ(fired, 3);
}

TEST(PeriodicTimer, DoubleStartIsIdempotent) {
  Engine e;
  int fired = 0;
  PeriodicTimer timer(e, 1.0, [&]() { ++fired; });
  timer.start();
  timer.start();
  e.run_until(2.5);
  EXPECT_EQ(fired, 2);  // not doubled
}

TEST(PeriodicTimer, InvalidPeriodRejected) {
  Engine e;
  EXPECT_THROW(PeriodicTimer(e, 0.0, []() {}), pa::InvalidArgument);
}

}  // namespace
}  // namespace pa::sim
