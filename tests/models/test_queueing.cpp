#include "pa/models/queueing.h"

#include <gtest/gtest.h>

#include "pa/common/error.h"
#include "pa/common/rng.h"
#include "pa/common/stats.h"
#include "pa/sim/engine.h"

namespace pa::models {
namespace {

TEST(MMcQueue, MM1ClosedForm) {
  // M/M/1: P(wait) = rho; Wq = rho / (mu - lambda).
  MMcQueue q;
  q.servers = 1;
  q.arrival_rate = 0.5;
  q.service_rate = 1.0;
  EXPECT_NEAR(q.probability_of_waiting(), 0.5, 1e-12);
  EXPECT_NEAR(q.expected_wait(), 0.5 / 0.5, 1e-12);
  EXPECT_NEAR(q.expected_queue_length(), 0.5, 1e-12);
}

TEST(MMcQueue, KnownErlangCValue) {
  // Textbook value: c = 2, a = 1 (rho = 0.5): C(2, 1) = 1/3.
  MMcQueue q;
  q.servers = 2;
  q.arrival_rate = 1.0;
  q.service_rate = 1.0;
  EXPECT_NEAR(q.probability_of_waiting(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(q.expected_wait(), (1.0 / 3.0) / (2.0 - 1.0), 1e-12);
}

TEST(MMcQueue, MoreServersLessWaiting) {
  double prev = 1.0;
  for (int c = 1; c <= 64; c *= 2) {
    MMcQueue q;
    q.servers = c;
    q.service_rate = 1.0;
    q.arrival_rate = 0.7 * c;  // constant rho = 0.7
    const double pw = q.probability_of_waiting();
    EXPECT_LT(pw, prev);  // pooling effect
    prev = pw;
  }
}

TEST(MMcQueue, WaitExplodesNearSaturation) {
  MMcQueue q;
  q.servers = 4;
  q.service_rate = 1.0;
  q.arrival_rate = 3.99;
  EXPECT_GT(q.expected_wait(), 10.0);
  q.arrival_rate = 2.0;
  EXPECT_LT(q.expected_wait(), 1.0);
}

TEST(MMcQueue, UnstableRejected) {
  MMcQueue q;
  q.servers = 2;
  q.arrival_rate = 3.0;
  q.service_rate = 1.0;
  EXPECT_FALSE(q.stable());
  EXPECT_THROW(q.expected_wait(), pa::InvalidArgument);
}

TEST(MMcQueue, InvalidParamsRejected) {
  MMcQueue q;
  q.servers = 0;
  EXPECT_THROW(q.probability_of_waiting(), pa::InvalidArgument);
  q.servers = 1;
  q.arrival_rate = 0.0;
  EXPECT_THROW(q.probability_of_waiting(), pa::InvalidArgument);
}

/// Validation against a discrete-event M/M/c simulation: the closed form
/// and the simulator must agree — this pins both the model and the DES
/// engine's correctness on a known result.
class MMcSimValidation : public ::testing::TestWithParam<int> {};

TEST_P(MMcSimValidation, ErlangCMatchesSimulation) {
  const int servers = GetParam();
  const double mu = 1.0;
  const double rho = 0.8;
  const double lambda = rho * servers * mu;

  sim::Engine engine;
  pa::Rng rng(42 + static_cast<std::uint64_t>(servers));
  int busy = 0;
  std::vector<double> queue;  // arrival times of waiting jobs
  SampleSet waits;

  std::function<void()> depart = [&]() {
    if (!queue.empty()) {
      waits.add(engine.now() - queue.front());
      queue.erase(queue.begin());
      engine.schedule(rng.exponential(mu), depart);
    } else {
      --busy;
    }
  };
  std::function<void()> arrive = [&]() {
    if (busy < servers) {
      ++busy;
      waits.add(0.0);
      engine.schedule(rng.exponential(mu), depart);
    } else {
      queue.push_back(engine.now());
    }
    // Larger systems wait rarely; more samples keep the positive-wait
    // count (and thus the estimate variance) comparable across c.
    const std::size_t target_jobs =
        200000 * static_cast<std::size_t>(std::max(1, servers / 8));
    if (waits.count() + queue.size() < target_jobs) {
      engine.schedule(rng.exponential(lambda), arrive);
    }
  };
  engine.schedule(0.0, arrive);
  engine.run();

  MMcQueue model;
  model.servers = servers;
  model.arrival_rate = lambda;
  model.service_rate = mu;
  // The sample mean should sit within ~12% of the closed form (rare-event
  // variance grows with c even after the sample-size scaling).
  EXPECT_NEAR(waits.mean() / model.expected_wait(), 1.0, 0.12)
      << "c=" << servers;
}

INSTANTIATE_TEST_SUITE_P(ServerCounts, MMcSimValidation,
                         ::testing::Values(1, 2, 8, 32));

}  // namespace
}  // namespace pa::models
