#include "pa/models/planner.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pa::models {
namespace {

LinearModel throughput_model() {
  // throughput = 100 + 50*workers - 2*msg_kb
  LinearModel m;
  m.intercept = 100.0;
  m.coefficients = {50.0, -2.0};
  m.feature_names = {"workers", "msg_kb"};
  return m;
}

std::vector<ConfigOption> options() {
  return {
      {"1 worker", {1.0, 4.0}, 1.0},   // 142
      {"2 workers", {2.0, 4.0}, 2.0},  // 192
      {"4 workers", {4.0, 4.0}, 4.0},  // 292
      {"8 workers", {8.0, 4.0}, 8.0},  // 492
  };
}

TEST(ConfigurationSelector, PredictsThroughModel) {
  ConfigurationSelector sel(throughput_model());
  EXPECT_DOUBLE_EQ(sel.predict(options()[0]), 142.0);
  EXPECT_DOUBLE_EQ(sel.predict(options()[3]), 492.0);
}

TEST(ConfigurationSelector, PicksCheapestMeetingTarget) {
  ConfigurationSelector sel(throughput_model());
  const auto chosen = sel.select(options(), 180.0);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(chosen->label, "2 workers");
}

TEST(ConfigurationSelector, ExactBoundaryCounts) {
  ConfigurationSelector sel(throughput_model());
  const auto chosen = sel.select(options(), 142.0);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(chosen->label, "1 worker");
}

TEST(ConfigurationSelector, NoneFeasible) {
  ConfigurationSelector sel(throughput_model());
  EXPECT_FALSE(sel.select(options(), 1000.0).has_value());
  EXPECT_TRUE(sel.feasible(options(), 1000.0).empty());
}

TEST(ConfigurationSelector, FeasibleSortedByCost) {
  ConfigurationSelector sel(throughput_model());
  const auto ok = sel.feasible(options(), 180.0);
  ASSERT_EQ(ok.size(), 3u);
  EXPECT_EQ(ok[0].label, "2 workers");
  EXPECT_EQ(ok[2].label, "8 workers");
}

TEST(ConfigurationSelector, CostTieBreaksTowardsHeadroom) {
  ConfigurationSelector sel(throughput_model());
  std::vector<ConfigOption> tied = {
      {"weak", {2.0, 16.0}, 3.0},    // 168
      {"strong", {2.0, 1.0}, 3.0},   // 198
  };
  const auto chosen = sel.select(tied, 150.0);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(chosen->label, "strong");
}

TEST(ConfigurationSelector, TransformAppliesToLogModels) {
  // Model in log space: log(y) = 2 + 1*x  ->  y = exp(2 + x).
  LinearModel log_model;
  log_model.intercept = 2.0;
  log_model.coefficients = {1.0};
  ConfigurationSelector sel(log_model,
                            [](double v) { return std::exp(v); });
  const ConfigOption option{"x=1", {1.0}, 1.0};
  EXPECT_NEAR(sel.predict(option), std::exp(3.0), 1e-9);
}

}  // namespace
}  // namespace pa::models
