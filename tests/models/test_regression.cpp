#include "pa/models/regression.h"

#include <gtest/gtest.h>

#include "pa/common/error.h"
#include "pa/common/rng.h"

namespace pa::models {
namespace {

TEST(SolveLinearSystem, Identity) {
  const auto x = solve_linear_system({{1, 0}, {0, 1}}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
}

TEST(SolveLinearSystem, Known3x3) {
  // 2x + y - z = 8; -3x - y + 2z = -11; -2x + y + 2z = -3
  // solution: x=2, y=3, z=-1.
  const auto x = solve_linear_system(
      {{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}}, {8, -11, -3});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(x[2], -1.0, 1e-12);
}

TEST(SolveLinearSystem, NeedsPivoting) {
  // Leading zero forces a row swap.
  const auto x = solve_linear_system({{0, 1}, {1, 0}}, {5.0, 7.0});
  EXPECT_DOUBLE_EQ(x[0], 7.0);
  EXPECT_DOUBLE_EQ(x[1], 5.0);
}

TEST(SolveLinearSystem, SingularThrows) {
  EXPECT_THROW(solve_linear_system({{1, 1}, {2, 2}}, {1.0, 2.0}),
               pa::InvalidArgument);
}

TEST(SolveLinearSystem, DimensionMismatchThrows) {
  EXPECT_THROW(solve_linear_system({{1, 0}}, {1.0}), pa::InvalidArgument);
}

TEST(OlsRegression, RecoversExactLinearModel) {
  OlsRegression reg({"a", "b"});
  pa::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const double a = rng.uniform(0.0, 10.0);
    const double b = rng.uniform(-5.0, 5.0);
    reg.add_sample({a, b}, 2.0 + 3.0 * a - 1.5 * b);
  }
  const LinearModel model = reg.fit();
  EXPECT_NEAR(model.intercept, 2.0, 1e-9);
  EXPECT_NEAR(model.coefficients[0], 3.0, 1e-9);
  EXPECT_NEAR(model.coefficients[1], -1.5, 1e-9);
  EXPECT_NEAR(model.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(model.rmse, 0.0, 1e-9);
}

TEST(OlsRegression, NoisyFitHasReasonableDiagnostics) {
  OlsRegression reg;
  pa::Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    reg.add_sample({x}, 10.0 + 0.5 * x + rng.normal(0.0, 2.0));
  }
  const LinearModel model = reg.fit();
  EXPECT_NEAR(model.intercept, 10.0, 0.5);
  EXPECT_NEAR(model.coefficients[0], 0.5, 0.02);
  EXPECT_GT(model.r_squared, 0.95);
  EXPECT_NEAR(model.rmse, 2.0, 0.4);
}

TEST(OlsRegression, PredictUsesCoefficients) {
  LinearModel m;
  m.intercept = 1.0;
  m.coefficients = {2.0, -1.0};
  EXPECT_DOUBLE_EQ(m.predict({3.0, 4.0}), 1.0 + 6.0 - 4.0);
  EXPECT_THROW(m.predict({1.0}), pa::InvalidArgument);
}

TEST(OlsRegression, ToStringNamesFeatures) {
  OlsRegression reg({"partitions", "msg_bytes"});
  for (int i = 0; i < 10; ++i) {
    reg.add_sample({static_cast<double>(i), static_cast<double>(i * i)},
                   1.0 + 2.0 * i + 0.5 * i * i);
  }
  const std::string s = reg.fit().to_string();
  EXPECT_NE(s.find("partitions"), std::string::npos);
  EXPECT_NE(s.find("msg_bytes"), std::string::npos);
}

TEST(OlsRegression, TooFewSamplesThrows) {
  OlsRegression reg;
  reg.add_sample({1.0}, 1.0);
  EXPECT_THROW(reg.fit(), pa::InvalidArgument);
}

TEST(OlsRegression, InconsistentFeatureCountsRejected) {
  OlsRegression reg;
  reg.add_sample({1.0, 2.0}, 1.0);
  EXPECT_THROW(reg.add_sample({1.0}, 2.0), pa::InvalidArgument);
  OlsRegression named({"a"});
  EXPECT_THROW(named.add_sample({1.0, 2.0}, 1.0), pa::InvalidArgument);
}

TEST(OlsRegression, CrossValidationNearNoiseLevel) {
  OlsRegression reg;
  pa::Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    reg.add_sample({x}, 3.0 * x + rng.normal(0.0, 1.0));
  }
  const double cv = reg.cross_validated_rmse(5);
  EXPECT_NEAR(cv, 1.0, 0.3);
}

TEST(OlsRegression, CrossValidationArgsValidated) {
  OlsRegression reg;
  reg.add_sample({1.0}, 1.0);
  reg.add_sample({2.0}, 2.0);
  EXPECT_THROW(reg.cross_validated_rmse(1), pa::InvalidArgument);
  EXPECT_THROW(reg.cross_validated_rmse(10), pa::InvalidArgument);
}

TEST(OlsRegression, RSquaredZeroForConstantModelOnVaryingData) {
  // Feature uncorrelated with target: R^2 ~ 0.
  OlsRegression reg;
  pa::Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    reg.add_sample({rng.uniform(0.0, 1.0)}, rng.normal(0.0, 1.0));
  }
  EXPECT_LT(reg.fit().r_squared, 0.05);
}

}  // namespace
}  // namespace pa::models
