#include "pa/models/analytical.h"

#include <gtest/gtest.h>

#include "pa/common/error.h"

namespace pa::models {
namespace {

TEST(Amdahl, KnownValues) {
  AmdahlModel m{0.1};
  EXPECT_DOUBLE_EQ(m.speedup(1), 1.0);
  // S(10) = 1 / (0.1 + 0.9/10) = 1/0.19.
  EXPECT_NEAR(m.speedup(10), 1.0 / 0.19, 1e-12);
  // Asymptote: 1/serial_fraction.
  EXPECT_NEAR(m.speedup(1000000), 10.0, 0.01);
}

TEST(Amdahl, EfficiencyDecreasesWithProcessors) {
  AmdahlModel m{0.05};
  EXPECT_GT(m.efficiency(2), m.efficiency(16));
  EXPECT_GT(m.efficiency(16), m.efficiency(256));
  EXPECT_NEAR(m.efficiency(1), 1.0, 1e-12);
}

TEST(Amdahl, ArgValidated) {
  AmdahlModel m{0.1};
  EXPECT_THROW(m.speedup(0), pa::InvalidArgument);
}

TEST(PilotTaskFarm, SingleWave) {
  PilotTaskFarmModel m;
  m.queue_wait = 100.0;
  m.pilot_startup = 2.0;
  m.task_duration = 10.0;
  m.dispatch_overhead = 0.02;
  m.pilot_cores = 16;
  m.cores_per_task = 1;
  // 16 tasks fit one wave.
  EXPECT_NEAR(m.makespan(16), 100.0 + 2.0 + 10.02, 1e-9);
}

TEST(PilotTaskFarm, MultipleWaves) {
  PilotTaskFarmModel m;
  m.pilot_cores = 4;
  m.task_duration = 1.0;
  m.dispatch_overhead = 0.0;
  m.queue_wait = 0.0;
  m.pilot_startup = 0.0;
  EXPECT_NEAR(m.makespan(10), 3.0, 1e-9);  // ceil(10/4)=3 waves
  EXPECT_NEAR(m.makespan(0), 0.0, 1e-9);
}

TEST(PilotTaskFarm, ConcurrencyFromCoresPerTask) {
  PilotTaskFarmModel m;
  m.pilot_cores = 16;
  m.cores_per_task = 4;
  EXPECT_EQ(m.concurrency(), 4);
  m.cores_per_task = 32;
  EXPECT_THROW(m.concurrency(), pa::InvalidArgument);
}

TEST(PilotTaskFarm, PilotBeatsDirectSubmissionWhenQueuesAreLong) {
  PilotTaskFarmModel m;
  m.queue_wait = 600.0;
  m.pilot_startup = 2.0;
  m.task_duration = 10.0;
  m.pilot_cores = 64;
  const double pilot = m.makespan(256);
  const double direct =
      m.direct_submission_makespan(256, /*per_job_wait=*/600.0,
                                   /*cluster_slots=*/64);
  EXPECT_LT(pilot, direct);
}

TEST(ReplicaExchange, GenerationTimeComposition) {
  ReplicaExchangeModel m;
  m.queue_wait = 0.0;
  m.pilot_startup = 0.0;
  m.md_duration = 10.0;
  m.dispatch_overhead = 0.0;
  m.exchange_base = 1.0;
  m.exchange_per_replica = 0.1;
  m.pilot_cores = 8;
  m.cores_per_replica = 1;
  // 16 replicas on 8 slots: 2 waves of 10 + exchange (1 + 1.6) = 22.6.
  EXPECT_NEAR(m.generation_time(16), 22.6, 1e-9);
  EXPECT_NEAR(m.makespan(16, 10), 226.0, 1e-9);
}

TEST(ReplicaExchange, ExchangeLimitsSpeedup) {
  ReplicaExchangeModel m;
  m.md_duration = 10.0;
  m.exchange_base = 1.0;
  m.exchange_per_replica = 0.05;
  m.cores_per_replica = 1;
  m.pilot_cores = 64;
  // Speedup from 1 slot to 64 slots for 64 replicas.
  const double s = m.speedup(64, 10, 1);
  EXPECT_GT(s, 10.0);
  // Serial exchange caps it below the ideal 64.
  EXPECT_LT(s, 64.0);
}

TEST(ReplicaExchange, MoreCoresNeverSlower) {
  ReplicaExchangeModel m;
  m.pilot_cores = 8;
  const double t8 = m.makespan(32, 5);
  m.pilot_cores = 16;
  const double t16 = m.makespan(32, 5);
  m.pilot_cores = 32;
  const double t32 = m.makespan(32, 5);
  EXPECT_GE(t8, t16);
  EXPECT_GE(t16, t32);
}

TEST(ReplicaExchange, ArgsValidated) {
  ReplicaExchangeModel m;
  EXPECT_THROW(m.makespan(0, 1), pa::InvalidArgument);
  EXPECT_THROW(m.makespan(1, 0), pa::InvalidArgument);
}

TEST(Bursting, BurstHelpsWhenQueueLong) {
  BurstingModel m;
  m.hpc_queue_wait = 3600.0;
  m.cloud_startup = 60.0;
  m.task_duration = 10.0;
  m.tasks = 1024;
  m.hpc_cores = 64;
  m.cloud_cores = 64;
  EXPECT_LT(m.burst_makespan(), m.hpc_only_makespan());
}

TEST(Bursting, BurstNeutralWhenQueueShort) {
  BurstingModel m;
  m.hpc_queue_wait = 0.0;
  m.cloud_startup = 600.0;
  m.task_duration = 1.0;
  m.tasks = 64;
  m.hpc_cores = 64;
  m.cloud_cores = 64;
  // Work finishes on HPC before the cloud even boots: burst cannot beat it
  // meaningfully.
  EXPECT_NEAR(m.burst_makespan(), m.hpc_only_makespan(), 0.5);
}

TEST(Bursting, MakespanConsistentWithCapacityIntegral) {
  BurstingModel m;
  m.hpc_queue_wait = 100.0;
  m.cloud_startup = 50.0;
  m.task_duration = 4.0;
  m.tasks = 300;
  m.hpc_cores = 10;
  m.cloud_cores = 20;
  const double t = m.burst_makespan();
  const double hpc_work = (t - 100.0) * 10;
  const double cloud_work = (t - 50.0) * 20;
  EXPECT_NEAR(hpc_work + cloud_work, 300.0 * 4.0, 1.0);
}

}  // namespace
}  // namespace pa::models
