#include "pa/obs/tracer.h"

#include <gtest/gtest.h>

#include "pa/obs/clock.h"
#include "pa/sim/engine.h"

namespace pa::obs {
namespace {

// Spans stamped through a SimClock advance with the engine's virtual time,
// not wall time.
TEST(Tracer, SimClockStampsVirtualTime) {
  sim::Engine engine;
  SimClock clock(engine);
  Tracer tracer(clock);

  const auto id = tracer.begin_span("pilot.startup", "pilot-1");
  engine.run_until(42.0);
  tracer.end_span(id);

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "pilot.startup");
  EXPECT_EQ(spans[0].entity, "pilot-1");
  EXPECT_DOUBLE_EQ(spans[0].start, 0.0);
  EXPECT_DOUBLE_EQ(spans[0].end, 42.0);
}

TEST(Tracer, OpenSpanHasNegativeEnd) {
  sim::Engine engine;
  SimClock clock(engine);
  Tracer tracer(clock);
  tracer.begin_span("pilot.active", "pilot-1");
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_LT(spans[0].end, 0.0);
}

TEST(Tracer, ExplicitTimestampsBypassClock) {
  FunctionClock clock([]() { return 999.0; });
  Tracer tracer(clock);
  tracer.record_span("unit.exec", "unit-1", 10.0, 20.5);
  tracer.event_at(15.0, "unit.state", "unit-1", "RUNNING");

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].start, 10.0);
  EXPECT_DOUBLE_EQ(spans[0].end, 20.5);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].time, 15.0);
  EXPECT_EQ(events[0].detail, "RUNNING");
}

TEST(Tracer, EventUsesClock) {
  sim::Engine engine;
  SimClock clock(engine);
  Tracer tracer(clock);
  engine.run_until(7.0);
  tracer.event("pilot.state", "pilot-1", "ACTIVE");
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].time, 7.0);
}

TEST(Tracer, SpansNamedFilters) {
  FunctionClock clock([]() { return 0.0; });
  Tracer tracer(clock);
  tracer.record_span("unit.wait", "u1", 0.0, 1.0);
  tracer.record_span("unit.exec", "u1", 1.0, 2.0);
  tracer.record_span("unit.exec", "u2", 1.0, 3.0);
  const auto execs = tracer.spans_named("unit.exec");
  ASSERT_EQ(execs.size(), 2u);
  EXPECT_EQ(execs[0].entity, "u1");
  EXPECT_EQ(execs[1].entity, "u2");
}

TEST(Tracer, BoundedBuffersCountDrops) {
  FunctionClock clock([]() { return 0.0; });
  Tracer tracer(clock, /*max_records=*/2);
  tracer.record_span("s", "e1", 0.0, 1.0);
  tracer.record_span("s", "e2", 0.0, 1.0);
  tracer.record_span("s", "e3", 0.0, 1.0);  // over capacity -> dropped
  EXPECT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 1u);

  // Events are bounded independently from spans.
  tracer.event("ev", "e1");
  tracer.event("ev", "e2");
  tracer.event("ev", "e3");
  EXPECT_EQ(tracer.events().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 2u);

  const auto invalid = tracer.begin_span("s", "e4");
  EXPECT_EQ(invalid, Tracer::kInvalidSpan);
  tracer.end_span(invalid);  // no-op, must not throw
  EXPECT_EQ(tracer.dropped(), 3u);
}

TEST(Tracer, ClearResetsEverything) {
  FunctionClock clock([]() { return 0.0; });
  Tracer tracer(clock, 1);
  tracer.record_span("s", "e", 0.0, 1.0);
  tracer.record_span("s", "e", 0.0, 1.0);  // dropped
  tracer.clear();
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
  tracer.record_span("s", "e", 0.0, 1.0);  // capacity available again
  EXPECT_EQ(tracer.spans().size(), 1u);
}

}  // namespace
}  // namespace pa::obs
