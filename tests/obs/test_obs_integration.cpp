/// Integration of pa::obs with the full middleware stack: the service emits
/// lifecycle spans stamped with the *runtime's* clock — simulated time on
/// SimRuntime (the core acceptance criterion: a trace of a week-long
/// simulated run must show week-long spans even though the process ran for
/// milliseconds), wall time on LocalRuntime.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "pa/core/pilot_compute_service.h"
#include "pa/infra/batch_cluster.h"
#include "pa/obs/clock.h"
#include "pa/obs/export.h"
#include "pa/obs/metrics.h"
#include "pa/obs/tracer.h"
#include "pa/rt/local_runtime.h"
#include "pa/rt/sim_runtime.h"
#include "pa/saga/session.h"

namespace pa::obs {
namespace {

/// Simulated stack (mirrors tests/core/test_service_sim.cpp): 4-node,
/// 8-core cluster, 2 s pilot bootstrap, 0.02 s unit dispatch overhead.
class ObsSimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    infra::BatchClusterConfig cfg;
    cfg.name = "hpc-a";
    cfg.num_nodes = 4;
    cfg.node.cores = 8;
    cluster_ = std::make_shared<infra::BatchCluster>(engine_, cfg);
    session_.register_resource("slurm://hpc-a", cluster_);
    runtime_ = std::make_unique<rt::SimRuntime>(engine_, session_);
    service_ =
        std::make_unique<core::PilotComputeService>(*runtime_, "backfill");
    clock_ = std::make_unique<SimClock>(engine_);
    tracer_ = std::make_unique<Tracer>(*clock_);
    service_->attach_observability(tracer_.get(), &registry_);
    cluster_->attach_metrics(&registry_);
  }

  core::PilotDescription pilot_desc(int nodes = 2) {
    core::PilotDescription d;
    d.resource_url = "slurm://hpc-a";
    d.nodes = nodes;
    d.walltime = 3600.0;
    return d;
  }

  core::ComputeUnitDescription unit_desc(double duration = 10.0) {
    core::ComputeUnitDescription d;
    d.duration = duration;
    return d;
  }

  // Sinks first: they must outlive the service and cluster, whose teardown
  // (pilot cancellation) still emits spans and counters.
  MetricsRegistry registry_;
  sim::Engine engine_;
  std::unique_ptr<SimClock> clock_;
  std::unique_ptr<Tracer> tracer_;
  saga::Session session_;
  std::shared_ptr<infra::BatchCluster> cluster_;
  std::unique_ptr<rt::SimRuntime> runtime_;
  std::unique_ptr<core::PilotComputeService> service_;
};

TEST_F(ObsSimTest, PilotStartupSpanCarriesSimulatedTime) {
  core::Pilot pilot = service_->submit_pilot(pilot_desc());
  pilot.wait_active();

  const auto startups = tracer_->spans_named("pilot.startup");
  ASSERT_EQ(startups.size(), 1u);
  EXPECT_EQ(startups[0].entity, pilot.id());
  // Empty cluster: queue wait 0, agent bootstrap 2 s of *simulated* time.
  // A wall-clock-stamped span would be microseconds long and start at an
  // epoch-scale offset, so these checks pin the clock plumbing.
  EXPECT_DOUBLE_EQ(startups[0].start, 0.0);
  EXPECT_DOUBLE_EQ(startups[0].end, 2.0);
  EXPECT_LE(startups[0].end, engine_.now());
}

TEST_F(ObsSimTest, UnitSpansMatchSimulatedDurations) {
  service_->submit_pilot(pilot_desc());
  core::ComputeUnit unit = service_->submit_unit(unit_desc(10.0));
  EXPECT_EQ(unit.wait(), core::UnitState::kDone);

  const auto execs = tracer_->spans_named("unit.exec");
  ASSERT_EQ(execs.size(), 1u);
  EXPECT_EQ(execs[0].entity, unit.id());
  // 10 s payload + 0.02 s dispatch overhead, in simulated seconds.
  EXPECT_NEAR(execs[0].end - execs[0].start, 10.02, 1e-6);
  EXPECT_LE(execs[0].end, engine_.now());

  const auto waits = tracer_->spans_named("unit.wait");
  ASSERT_EQ(waits.size(), 1u);
  EXPECT_GE(waits[0].end, waits[0].start);
}

TEST_F(ObsSimTest, LifecycleEventsAndCountersFlow) {
  service_->submit_pilot(pilot_desc());
  constexpr int kUnits = 8;
  for (int i = 0; i < kUnits; ++i) {
    service_->submit_unit(unit_desc(5.0));
  }
  service_->wait_all_units();

  EXPECT_EQ(registry_.counter("pcs.pilots_submitted").value(), 1u);
  EXPECT_EQ(registry_.counter("pcs.pilots_active").value(), 1u);
  EXPECT_EQ(registry_.counter("pcs.units_submitted").value(),
            static_cast<std::uint64_t>(kUnits));
  EXPECT_EQ(registry_.counter("pcs.units_done").value(),
            static_cast<std::uint64_t>(kUnits));
  EXPECT_GT(registry_.counter("wm.schedule_passes").value(), 0u);
  EXPECT_EQ(registry_.counter("wm.units_assigned").value(),
            static_cast<std::uint64_t>(kUnits));
  EXPECT_EQ(registry_.histogram("pcs.unit_exec").snapshot().count(),
            static_cast<std::uint64_t>(kUnits));
  // The batch cluster underneath exports through the same registry.
  EXPECT_GT(registry_.counter("batch.hpc-a.jobs_started").value(), 0u);

  // Pilot state events: SUBMITTED then ACTIVE, in simulated order.
  const auto events = tracer_->events();
  std::vector<std::string> pilot_states;
  for (const auto& e : events) {
    if (e.name == "pilot.state") {
      pilot_states.push_back(e.detail);
    }
  }
  ASSERT_GE(pilot_states.size(), 2u);
  EXPECT_EQ(pilot_states[0], "SUBMITTED");
  EXPECT_EQ(pilot_states[1], "ACTIVE");
  // Unit state events cover the full lifecycle for each unit.
  std::size_t running_events = 0;
  for (const auto& e : events) {
    if (e.name == "unit.state" && e.detail == "RUNNING") {
      ++running_events;
    }
  }
  EXPECT_EQ(running_events, static_cast<std::size_t>(kUnits));
}

TEST_F(ObsSimTest, ExporterProducesCombinedDocument) {
  service_->submit_pilot(pilot_desc());
  service_->submit_unit(unit_desc(10.0));
  service_->wait_all_units();

  std::ostringstream out;
  write_json(out, &registry_, tracer_.get());
  const std::string doc = out.str();
  EXPECT_NE(doc.find("\"pilot.startup\""), std::string::npos);
  EXPECT_NE(doc.find("\"pcs.units_done\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"batch.hpc-a.queue_wait\""), std::string::npos);
}

TEST_F(ObsSimTest, DetachedObservabilityIsInert) {
  service_->attach_observability(nullptr, nullptr);
  service_->submit_pilot(pilot_desc());
  service_->submit_unit(unit_desc(1.0));
  service_->wait_all_units();
  EXPECT_TRUE(tracer_->spans().empty());
  EXPECT_EQ(registry_.counter("pcs.units_done").value(), 0u);
}

// The same instrumentation on LocalRuntime stamps wall time: spans are tiny
// and anchored to the wall clock, not the (nonexistent) sim clock.
TEST(ObsLocalTest, LocalRuntimeSpansUseWallClock) {
  // Sinks declared before the service so they outlive its teardown.
  WallClock clock;
  Tracer tracer(clock);
  MetricsRegistry registry;
  rt::LocalRuntime runtime;
  core::PilotComputeService service(runtime, "backfill");
  service.attach_observability(&tracer, &registry);

  core::PilotDescription pd;
  pd.resource_url = "local://test";
  pd.nodes = 2;
  pd.walltime = 1e9;
  core::Pilot pilot = service.submit_pilot(pd);
  pilot.wait_active(10.0);

  core::ComputeUnitDescription ud;
  ud.duration = 0.05;
  core::ComputeUnit unit = service.submit_unit(ud);
  EXPECT_EQ(unit.wait(30.0), core::UnitState::kDone);
  service.shutdown();

  const auto execs = tracer.spans_named("unit.exec");
  ASSERT_EQ(execs.size(), 1u);
  // Wall-clock span: covers at least the 50 ms payload, well under a
  // minute, and bounded by the current wall clock.
  EXPECT_GE(execs[0].end - execs[0].start, 0.04);
  EXPECT_LT(execs[0].end - execs[0].start, 60.0);
  EXPECT_LE(execs[0].end, pa::wall_seconds());
  EXPECT_EQ(registry.counter("pcs.units_done").value(), 1u);
}

}  // namespace
}  // namespace pa::obs
