#include "pa/obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace pa::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.set(7.0);  // set overwrites, independent of prior adds
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(Histogram, RecordsAndSummarizes) {
  Histogram h(1e-3, 1000.0);
  for (int i = 1; i <= 100; ++i) {
    h.record(static_cast<double>(i));
  }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count(), 100u);
  EXPECT_DOUBLE_EQ(snap.min(), 1.0);
  EXPECT_DOUBLE_EQ(snap.max(), 100.0);
  EXPECT_NEAR(snap.mean(), 50.5, 1e-9);
}

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);

  Gauge& g1 = reg.gauge("y");
  Gauge& g2 = reg.gauge("y");
  EXPECT_EQ(&g1, &g2);

  Histogram& h1 = reg.histogram("z", 1e-3, 10.0);
  Histogram& h2 = reg.histogram("z");  // bounds ignored after creation
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, NamespacesAreIndependent) {
  MetricsRegistry reg;
  reg.counter("same").inc(5);
  reg.gauge("same").set(2.0);
  reg.histogram("same").record(1.0);
  EXPECT_EQ(reg.counter("same").value(), 5u);
  EXPECT_DOUBLE_EQ(reg.gauge("same").value(), 2.0);
  EXPECT_EQ(reg.histogram("same").snapshot().count(), 1u);
}

TEST(MetricsRegistry, SnapshotsAreSortedByName) {
  MetricsRegistry reg;
  reg.counter("b").inc(2);
  reg.counter("a").inc(1);
  reg.gauge("d").set(4.0);
  reg.gauge("c").set(3.0);
  const auto counters = reg.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a");
  EXPECT_EQ(counters[0].second, 1u);
  EXPECT_EQ(counters[1].first, "b");
  const auto gauges = reg.gauges();
  ASSERT_EQ(gauges.size(), 2u);
  EXPECT_EQ(gauges[0].first, "c");
  EXPECT_EQ(gauges[1].first, "d");
}

// The registry is shared by LocalRuntime pool workers: concurrent lookup
// and increment of the same and distinct instruments must not lose counts
// (and must be clean under -DPA_SANITIZE=thread).
TEST(MetricsRegistry, ConcurrentIncrementsDontLoseCounts) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t]() {
      for (int i = 0; i < kIncrements; ++i) {
        reg.counter("shared").inc();
        reg.counter("own." + std::to_string(t)).inc();
        reg.histogram("lat").record(1.0 + t);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(reg.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("own." + std::to_string(t)).value(),
              static_cast<std::uint64_t>(kIncrements));
  }
  EXPECT_EQ(reg.histogram("lat").snapshot().count(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

}  // namespace
}  // namespace pa::obs
