#include "pa/obs/export.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "pa/obs/clock.h"
#include "pa/obs/metrics.h"
#include "pa/obs/tracer.h"

namespace pa::obs {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// Structural sanity without a JSON parser: every brace/bracket closes.
void expect_balanced(const std::string& doc) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const char c = doc[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip escaped char
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(JsonQuote, EscapesSpecials) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_quote("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(json_quote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(Export, MetricsJsonContainsAllInstruments) {
  MetricsRegistry reg;
  reg.counter("jobs_started").inc(3);
  reg.gauge("utilization").set(0.5);
  reg.histogram("queue_wait").record(2.0);

  std::ostringstream out;
  write_metrics_json(out, reg);
  const std::string doc = out.str();
  expect_balanced(doc);
  EXPECT_TRUE(contains(doc, "\"counters\""));
  EXPECT_TRUE(contains(doc, "\"jobs_started\": 3"));
  EXPECT_TRUE(contains(doc, "\"gauges\""));
  EXPECT_TRUE(contains(doc, "\"utilization\""));
  EXPECT_TRUE(contains(doc, "\"histograms\""));
  EXPECT_TRUE(contains(doc, "\"queue_wait\""));
  EXPECT_TRUE(contains(doc, "\"p99\""));
}

TEST(Export, TraceJsonContainsSpansAndEvents) {
  FunctionClock clock([]() { return 1.5; });
  Tracer tracer(clock);
  tracer.record_span("pilot.startup", "pilot-1", 0.0, 2.0);
  tracer.event("unit.state", "unit-1", "RUNNING");

  std::ostringstream out;
  write_trace_json(out, tracer);
  const std::string doc = out.str();
  expect_balanced(doc);
  EXPECT_TRUE(contains(doc, "\"spans\""));
  EXPECT_TRUE(contains(doc, "\"pilot.startup\""));
  EXPECT_TRUE(contains(doc, "\"events\""));
  EXPECT_TRUE(contains(doc, "\"RUNNING\""));
  EXPECT_TRUE(contains(doc, "\"dropped\": 0"));
}

TEST(Export, CombinedJsonToleratesNullSources) {
  std::ostringstream out;
  write_json(out, nullptr, nullptr);
  const std::string doc = out.str();
  expect_balanced(doc);
  EXPECT_TRUE(contains(doc, "\"metrics\""));
  EXPECT_TRUE(contains(doc, "\"trace\""));
}

TEST(Export, CombinedJsonWithBothSources) {
  MetricsRegistry reg;
  reg.counter("c").inc();
  FunctionClock clock([]() { return 0.0; });
  Tracer tracer(clock);
  tracer.record_span("s", "e", 0.0, 1.0);
  std::ostringstream out;
  write_json(out, &reg, &tracer);
  const std::string doc = out.str();
  expect_balanced(doc);
  EXPECT_TRUE(contains(doc, "\"c\": 1"));
  EXPECT_TRUE(contains(doc, "\"s\""));
}

TEST(Export, MetricsCsvRows) {
  MetricsRegistry reg;
  reg.counter("jobs").inc(7);
  reg.gauge("util").set(0.25);
  reg.histogram("wait").record(3.0);

  std::ostringstream out;
  write_metrics_csv(out, reg);
  const std::string doc = out.str();
  EXPECT_TRUE(contains(doc, "counter,jobs,7"));
  EXPECT_TRUE(contains(doc, "gauge,util,0.25"));
  EXPECT_TRUE(contains(doc, "histogram,wait,1,"));
}

TEST(Export, TraceCsvRows) {
  FunctionClock clock([]() { return 0.0; });
  Tracer tracer(clock);
  tracer.record_span("unit.exec", "u1", 1.0, 2.0);
  tracer.event_at(1.5, "unit.state", "u1", "DONE");

  std::ostringstream out;
  write_trace_csv(out, tracer);
  const std::string doc = out.str();
  EXPECT_TRUE(contains(doc, "span,unit.exec,u1,1,2"));
  EXPECT_TRUE(contains(doc, "event,unit.state,u1,1.5,DONE"));
}

}  // namespace
}  // namespace pa::obs
