/// Full-stack property tests: randomized workloads over the simulated
/// stack, swept across seeds and scheduling policies (parameterized), and
/// checked against the global invariants in DESIGN.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "pa/common/rng.h"
#include "pa/core/pilot_compute_service.h"
#include "pa/infra/batch_cluster.h"
#include "pa/infra/htc_pool.h"
#include "pa/rt/sim_runtime.h"
#include "pa/saga/session.h"

namespace pa {
namespace {

struct Sweep {
  std::uint64_t seed;
  std::string policy;
};

class FullStackProperty : public ::testing::TestWithParam<Sweep> {};

TEST_P(FullStackProperty, RandomWorkloadSatisfiesInvariants) {
  const auto [seed, policy] = GetParam();
  pa::Rng rng(seed);

  sim::Engine engine;
  saga::Session session;
  infra::BatchClusterConfig hpc_cfg;
  hpc_cfg.name = "hpc";
  hpc_cfg.num_nodes = static_cast<int>(rng.uniform_int(4, 32));
  hpc_cfg.node.cores = 8;
  // Randomize the LRMS realism knobs too.
  hpc_cfg.scheduler_cycle = rng.bernoulli(0.5) ? 30.0 : 0.0;
  hpc_cfg.max_running_per_owner =
      rng.bernoulli(0.5) ? static_cast<int>(rng.uniform_int(2, 8)) : 0;
  auto hpc = std::make_shared<infra::BatchCluster>(engine, hpc_cfg);
  session.register_resource("slurm://hpc", hpc);

  infra::HtcPoolConfig htc_cfg;
  htc_cfg.name = "htc";
  htc_cfg.num_slots = static_cast<int>(rng.uniform_int(8, 64));
  htc_cfg.cores_per_slot = 4;
  htc_cfg.seed = seed + 1;
  auto htc = std::make_shared<infra::HtcPool>(engine, htc_cfg);
  session.register_resource("condor://htc", htc);

  rt::SimRuntime runtime(engine, session);
  core::PilotComputeService service(runtime, policy);

  // 1-3 pilots across the two sites.
  const int pilots = static_cast<int>(rng.uniform_int(1, 3));
  int max_unit_cores = 0;
  for (int p = 0; p < pilots; ++p) {
    core::PilotDescription pd;
    if (rng.bernoulli(0.5)) {
      pd.resource_url = "slurm://hpc";
      pd.nodes = static_cast<int>(
          rng.uniform_int(1, std::max(1, hpc_cfg.num_nodes / 2)));
      max_unit_cores = std::max(max_unit_cores, pd.nodes * 8);
    } else {
      pd.resource_url = "condor://htc";
      pd.nodes = static_cast<int>(
          rng.uniform_int(1, std::max(1, htc_cfg.num_slots / 2)));
      max_unit_cores = std::max(max_unit_cores, pd.nodes * 4);
    }
    pd.walltime = 7 * 24 * 3600.0;
    service.submit_pilot(pd);
  }

  const int units = static_cast<int>(rng.uniform_int(10, 200));
  for (int u = 0; u < units; ++u) {
    core::ComputeUnitDescription d;
    d.cores = static_cast<int>(
        rng.uniform_int(1, std::max<std::int64_t>(1, max_unit_cores)));
    d.duration = rng.uniform(1.0, 300.0);
    service.submit_unit(d);
  }

  service.wait_all_units(60 * 24 * 3600.0);
  const auto m = service.metrics();

  // Invariant: conservation — every unit reaches exactly one final state.
  EXPECT_EQ(m.units_done + m.units_failed + m.units_canceled,
            static_cast<std::size_t>(units));
  EXPECT_EQ(m.units_done, static_cast<std::size_t>(units));
  EXPECT_EQ(service.unfinished_units(), 0u);

  // Invariant: time sanity — waits and exec times non-negative, makespan
  // covers the longest unit.
  EXPECT_GE(m.unit_wait_times.min(), 0.0);
  EXPECT_GT(m.unit_exec_times.min(), 0.0);
  EXPECT_GE(m.makespan(), m.unit_exec_times.max());

  // Invariant: after pilot teardown the infrastructures end drained.
  service.shutdown();
  engine.run();
  EXPECT_EQ(hpc->free_nodes(), hpc_cfg.num_nodes);
  EXPECT_EQ(htc->free_slots(), htc_cfg.num_slots);
}

std::vector<Sweep> make_sweeps() {
  std::vector<Sweep> sweeps;
  for (const char* policy :
       {"fifo", "backfill", "round-robin", "largest-first"}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      sweeps.push_back({seed, policy});
    }
  }
  return sweeps;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPolicies, FullStackProperty, ::testing::ValuesIn(make_sweeps()),
    [](const ::testing::TestParamInfo<Sweep>& info) {
      std::string name =
          info.param.policy + "_seed" + std::to_string(info.param.seed);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

/// Bit-determinism of the whole stack: identical seeds => identical
/// makespans, across every policy.
class DeterminismProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismProperty, FullStackIsReproducible) {
  auto run_once = [&](std::uint64_t seed) {
    pa::Rng rng(seed);
    sim::Engine engine;
    saga::Session session;
    infra::BatchClusterConfig cfg;
    cfg.name = "hpc";
    cfg.num_nodes = 16;
    cfg.node.cores = 8;
    auto hpc = std::make_shared<infra::BatchCluster>(engine, cfg);
    session.register_resource("slurm://hpc", hpc);
    rt::SimRuntime runtime(engine, session);
    core::PilotComputeService service(runtime, GetParam());
    core::PilotDescription pd;
    pd.resource_url = "slurm://hpc";
    pd.nodes = 8;
    pd.walltime = 1e6;
    service.submit_pilot(pd);
    for (int i = 0; i < 100; ++i) {
      core::ComputeUnitDescription d;
      d.cores = static_cast<int>(rng.uniform_int(1, 8));
      d.duration = rng.uniform(1.0, 60.0);
      service.submit_unit(d);
    }
    service.wait_all_units(1e7);
    return service.metrics().makespan();
  };
  EXPECT_DOUBLE_EQ(run_once(11), run_once(11));
  EXPECT_NE(run_once(11), run_once(12));  // and seeds actually matter
}

INSTANTIATE_TEST_SUITE_P(Policies, DeterminismProperty,
                         ::testing::Values("fifo", "backfill", "round-robin",
                                           "largest-first", "cost-aware"));

}  // namespace
}  // namespace pa
