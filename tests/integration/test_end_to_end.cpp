/// End-to-end integration tests exercising the full simulated stack:
/// infrastructures + SAGA + pilots + Pilot-Data + schedulers, and the
/// dynamism scenario (cloud bursting) of paper requirement R3.
#include <gtest/gtest.h>

#include <memory>

#include "pa/core/pilot_compute_service.h"
#include "pa/data/pilot_data_service.h"
#include "pa/infra/background_load.h"
#include "pa/infra/batch_cluster.h"
#include "pa/infra/cloud.h"
#include "pa/infra/htc_pool.h"
#include "pa/rt/sim_runtime.h"
#include "pa/saga/session.h"

namespace pa {
namespace {

/// Two-site world: an HPC cluster and a cloud, with storage + network.
class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    infra::BatchClusterConfig hpc_cfg;
    hpc_cfg.name = "hpc";
    hpc_cfg.num_nodes = 16;
    hpc_cfg.node.cores = 8;
    hpc_ = std::make_shared<infra::BatchCluster>(engine_, hpc_cfg);
    session_.register_resource("slurm://hpc", hpc_);

    infra::CloudConfig cloud_cfg;
    cloud_cfg.name = "cloud";
    cloud_cfg.vm.cores = 8;
    cloud_cfg.seed = 31;
    cloud_ = std::make_shared<infra::CloudProvider>(engine_, cloud_cfg);
    session_.register_resource("ec2://cloud", cloud_);

    net_ = std::make_unique<infra::NetworkModel>(engine_);
    net_->set_link("hpc", "cloud", infra::LinkSpec{1.25e8, 0.05});

    pds_ = std::make_unique<data::PilotDataService>(*net_);
    infra::StorageConfig hpc_store;
    hpc_store.name = "lustre";
    hpc_store.site = "hpc";
    infra::StorageConfig cloud_store;
    cloud_store.name = "s3";
    cloud_store.site = "cloud";
    pds_->register_storage(
        std::make_shared<infra::StorageSystem>(engine_, hpc_store));
    pds_->register_storage(
        std::make_shared<infra::StorageSystem>(engine_, cloud_store));
    pds_->add_data_pilot("hpc", 1e12);
    pds_->add_data_pilot("cloud", 1e12);

    runtime_ = std::make_unique<rt::SimRuntime>(engine_, session_);
  }

  core::PilotDescription hpc_pilot(int nodes = 4) {
    core::PilotDescription d;
    d.resource_url = "slurm://hpc";
    d.nodes = nodes;
    d.walltime = 48 * 3600.0;
    return d;
  }

  core::PilotDescription cloud_pilot(int vms = 4) {
    core::PilotDescription d;
    d.resource_url = "ec2://cloud";
    d.nodes = vms;
    d.walltime = 48 * 3600.0;
    d.cost_per_core_hour = 0.04;
    return d;
  }

  sim::Engine engine_;
  saga::Session session_;
  std::shared_ptr<infra::BatchCluster> hpc_;
  std::shared_ptr<infra::CloudProvider> cloud_;
  std::unique_ptr<infra::NetworkModel> net_;
  std::unique_ptr<data::PilotDataService> pds_;
  std::unique_ptr<rt::SimRuntime> runtime_;
};

TEST_F(EndToEndTest, MultiInfrastructureWorkload) {
  core::PilotComputeService service(*runtime_, "round-robin");
  service.submit_pilot(hpc_pilot(2));
  service.submit_pilot(cloud_pilot(2));
  for (int i = 0; i < 64; ++i) {
    core::ComputeUnitDescription d;
    d.duration = 30.0;
    service.submit_unit(d);
  }
  service.wait_all_units(24 * 3600.0);
  EXPECT_EQ(service.metrics().units_done, 64u);
  // Both infrastructures actually executed work: the cloud billed time.
  EXPECT_GT(cloud_->total_cost(), 0.0);
}

TEST_F(EndToEndTest, StageInBeforeExecution) {
  core::PilotComputeService service(*runtime_, "backfill");
  service.attach_data_service(pds_.get());
  service.submit_pilot(cloud_pilot(1));

  // Data born on HPC storage; the unit runs on the cloud pilot, so a WAN
  // stage-in must happen first.
  data::DataUnitDescription du;
  du.bytes = 1.25e9;  // 10 s on the 1.25e8 B/s link
  du.initial_site = "hpc";
  const std::string du_id = pds_->submit_data_unit(du);

  core::ComputeUnitDescription d;
  d.duration = 5.0;
  d.input_data = {du_id};
  core::ComputeUnit unit = service.submit_unit(d);
  EXPECT_EQ(unit.wait(24 * 3600.0), core::UnitState::kDone);
  // The replica now exists at the cloud.
  EXPECT_GT(pds_->bytes_on_site(du_id, "cloud"), 0.0);
  // Total time >= staging (10 s) + execution.
  EXPECT_GT(unit.times().wait_time(), 10.0);
}

TEST_F(EndToEndTest, AffinitySchedulerAvoidsTransfers) {
  auto run_policy = [&](const std::string& policy) {
    // Fresh stack per policy for isolation.
    sim::Engine engine;
    saga::Session session;
    infra::BatchClusterConfig a_cfg;
    a_cfg.name = "site-a";
    a_cfg.num_nodes = 8;
    infra::BatchClusterConfig b_cfg;
    b_cfg.name = "site-b";
    b_cfg.num_nodes = 8;
    session.register_resource(
        "slurm://site-a",
        std::make_shared<infra::BatchCluster>(engine, a_cfg));
    session.register_resource(
        "slurm://site-b",
        std::make_shared<infra::BatchCluster>(engine, b_cfg));
    infra::NetworkModel net(engine);
    net.set_link("site-a", "site-b", infra::LinkSpec{1e8, 0.05});
    data::PilotDataService pds(net);
    infra::StorageConfig sa;
    sa.name = "fs-a";
    sa.site = "site-a";
    infra::StorageConfig sb;
    sb.name = "fs-b";
    sb.site = "site-b";
    pds.register_storage(
        std::make_shared<infra::StorageSystem>(engine, sa));
    pds.register_storage(
        std::make_shared<infra::StorageSystem>(engine, sb));
    pds.add_data_pilot("site-a", 1e13);
    pds.add_data_pilot("site-b", 1e13);

    rt::SimRuntime runtime(engine, session);
    core::PilotComputeService service(runtime, policy);
    service.attach_data_service(&pds);
    core::PilotDescription pa_desc;
    pa_desc.resource_url = "slurm://site-a";
    pa_desc.nodes = 4;
    pa_desc.walltime = 1e6;
    core::PilotDescription pb_desc;
    pb_desc.resource_url = "slurm://site-b";
    pb_desc.nodes = 4;
    pb_desc.walltime = 1e6;
    core::Pilot p_a = service.submit_pilot(pa_desc);
    core::Pilot p_b = service.submit_pilot(pb_desc);
    // Both pilots must be up before units bind, otherwise everything lands
    // on whichever activates first and the policies are indistinguishable.
    p_a.wait_active();
    p_b.wait_active();

    // 32 data units: the first half lives at site-a, the second at
    // site-b (blocked layout, so a rotation-based policy cannot line up
    // with it by accident); one task per unit.
    std::vector<std::string> dus;
    for (int i = 0; i < 32; ++i) {
      data::DataUnitDescription du;
      du.bytes = 1e9;
      du.initial_site = i < 16 ? "site-a" : "site-b";
      dus.push_back(pds.submit_data_unit(du));
    }
    for (const auto& du : dus) {
      core::ComputeUnitDescription d;
      d.duration = 10.0;
      d.input_data = {du};
      service.submit_unit(d);
    }
    service.wait_all_units(1e6);
    return std::make_pair(pds.transfers_started(),
                          service.metrics().makespan());
  };

  const auto [affinity_transfers, affinity_makespan] =
      run_policy("data-affinity");
  const auto [rr_transfers, rr_makespan] = run_policy("round-robin");
  // Affinity keeps every task next to its data: zero WAN transfers.
  EXPECT_EQ(affinity_transfers, 0u);
  // Round-robin ignores locality and must stage roughly half the units.
  EXPECT_GT(rr_transfers, 8u);
  EXPECT_LT(affinity_makespan, rr_makespan);
}

TEST_F(EndToEndTest, CloudBurstingShortensDeadline) {
  // Background load congests the HPC queue; a cloud pilot added at runtime
  // absorbs the backlog (paper R3 / ref [63]).
  const auto bg_cfg = infra::BackgroundLoad::for_utilization(0.85, 16, 3);
  infra::BackgroundLoad load(engine_, *hpc_, bg_cfg);
  load.start();
  engine_.run_until(7 * 24 * 3600.0);  // let the queue build up

  core::PilotComputeService service(*runtime_, "backfill");
  core::Pilot hpc_p = service.submit_pilot(hpc_pilot(8));
  for (int i = 0; i < 128; ++i) {
    core::ComputeUnitDescription d;
    d.duration = 60.0;
    service.submit_unit(d);
  }
  // Burst: add a cloud pilot immediately (the decision would normally be
  // made after observing queue wait; here we exercise the mechanism).
  service.submit_pilot(cloud_pilot(8));
  service.wait_all_units(30 * 24 * 3600.0);
  const auto metrics = service.metrics();
  EXPECT_EQ(metrics.units_done, 128u);
  // The cloud pilot came up in seconds and absorbed the whole bag while
  // the HPC pilot was still stuck behind the backlog (it may not even have
  // started by the time the work finished).
  ASSERT_GE(metrics.pilot_startup_times.count(), 1u);
  EXPECT_LT(metrics.pilot_startup_times.min(), 600.0);
  EXPECT_LT(metrics.makespan(), 3600.0);
  (void)hpc_p;
}

TEST_F(EndToEndTest, CostAwarePrefersFreeHpc) {
  core::PilotComputeService service(*runtime_, "cost-aware");
  core::PilotDescription hp = hpc_pilot(4);
  hp.cost_per_core_hour = 0.0;
  service.submit_pilot(hp);
  service.submit_pilot(cloud_pilot(4));
  // Few enough tasks that the HPC pilot alone can hold them all at once.
  for (int i = 0; i < 32; ++i) {
    core::ComputeUnitDescription d;
    d.duration = 30.0;
    service.submit_unit(d);
  }
  service.wait_all_units(24 * 3600.0);
  EXPECT_EQ(service.metrics().units_done, 32u);
  // The cloud pilot idled: its billed time is just the pilot placeholder,
  // and no unit raised its utilization — measured via near-minimal cost.
  // (The placeholder VM itself bills, so compare against an upper bound.)
  const double placeholder_only =
      cloud_->total_cost();  // cost so far, all from the idle pilot
  EXPECT_GT(placeholder_only, 0.0);
}

}  // namespace
}  // namespace pa
