#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "pa/store/chunking.h"
#include "pa/store/shard.h"

namespace pa::store {
namespace {

/// Fresh scratch directory, removed on teardown (journal-test idiom).
class TempDir {
 public:
  TempDir() {
    std::string tmpl = "/tmp/pa_store_test_XXXXXX";
    char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : "/tmp";
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string pattern_bytes(std::size_t n, char seed) {
  std::string s(n, '\0');
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = static_cast<char>((seed + i * 131) & 0xff);
  }
  return s;
}

TEST(Chunking, ContentIdIsDeterministicAndWellFormed) {
  const std::string a = content_id("hello");
  EXPECT_EQ(a, content_id("hello"));
  EXPECT_NE(a, content_id("hello!"));
  EXPECT_TRUE(is_object_id(a));
  EXPECT_EQ(a.size(), 17u);  // "o" + 16 hex
  EXPECT_FALSE(is_object_id("du-1"));
  EXPECT_FALSE(is_object_id("o123"));
  EXPECT_TRUE(is_object_id(content_id("")));
}

TEST(Chunking, SplitJoinRoundTrips) {
  const std::string bytes = pattern_bytes(10'000, 7);
  const std::vector<Chunk> chunks = split_chunks(bytes, 1024);
  EXPECT_EQ(chunks.size(), chunk_count_for(bytes.size(), 1024));
  EXPECT_EQ(chunks.size(), 10u);  // ceil(10000 / 1024)
  for (const Chunk& c : chunks) {
    EXPECT_EQ(c.crc, chunk_crc(c.data));
  }
  EXPECT_EQ(join_chunks(chunks), bytes);
  EXPECT_EQ(chunk_count_for(0, 1024), 0u);
  EXPECT_EQ(chunk_count_for(1024, 1024), 1u);
  EXPECT_EQ(chunk_count_for(1025, 1024), 2u);
}

TEST(Shard, PutGetRoundTrips) {
  Shard shard;
  const std::string bytes = pattern_bytes(5000, 3);
  const PutResult r = shard.put(bytes);
  EXPECT_TRUE(r.stored);
  EXPECT_EQ(r.object_id, content_id(bytes));
  EXPECT_TRUE(r.dropped.empty());
  EXPECT_TRUE(shard.contains(r.object_id));
  EXPECT_EQ(shard.object_bytes(r.object_id), bytes.size());
  EXPECT_EQ(shard.get(r.object_id).value_or(""), bytes);
  // Idempotent re-put: same id, no growth.
  EXPECT_EQ(shard.put(bytes).object_id, r.object_id);
  EXPECT_EQ(shard.stats().objects, 1u);
}

TEST(Shard, ZeroByteObjectRoundTrips) {
  Shard shard;
  const PutResult r = shard.put("");
  ASSERT_TRUE(r.stored);
  const auto back = shard.get(r.object_id);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(Shard, PutAsRejectsMismatchedId) {
  Shard shard;
  const PutResult r = shard.put_as("o0000000000000bad", "payload");
  EXPECT_FALSE(r.stored);
  EXPECT_FALSE(shard.contains("o0000000000000bad"));
  EXPECT_EQ(shard.stats().crc_failures, 1u);
  // The honest id is accepted.
  EXPECT_TRUE(shard.put_as(content_id("payload"), "payload").stored);
}

TEST(Shard, PutChunksVerifiesCrcAndHash) {
  Shard shard;
  const std::string bytes = pattern_bytes(3000, 11);
  const std::string id = content_id(bytes);
  std::vector<Chunk> chunks = split_chunks(bytes, 1024);

  std::vector<Chunk> corrupt = chunks;
  corrupt[1].data[5] ^= 0x40;  // payload no longer matches its CRC
  EXPECT_FALSE(shard.put_chunks(id, corrupt, bytes.size()).stored);
  EXPECT_FALSE(shard.contains(id));

  EXPECT_TRUE(shard.put_chunks(id, chunks, bytes.size()).stored);
  EXPECT_EQ(shard.get(id).value_or(""), bytes);
}

TEST(Shard, LruEvictionSpillsAndPromotes) {
  TempDir dir;
  ShardConfig config;
  config.memory_capacity_bytes = 5000;
  config.spill_dir = dir.path();
  config.chunk_bytes = 1024;
  Shard shard(config);

  const std::string a = pattern_bytes(3000, 1);
  const std::string b = pattern_bytes(3000, 2);
  const std::string id_a = shard.put(a).object_id;
  // B exceeds the budget; A (least recently used) spills to disk.
  const PutResult rb = shard.put(b);
  EXPECT_TRUE(rb.stored);
  EXPECT_TRUE(rb.dropped.empty()) << "spill-capable shard must not drop";

  ShardStats s = shard.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.spills, 1u);
  EXPECT_EQ(s.spilled_bytes, a.size());
  EXPECT_LE(s.resident_bytes, config.memory_capacity_bytes);
  EXPECT_EQ(s.objects, 2u);  // both still known

  // Reading A promotes it from disk, byte-identical; B spills in turn.
  EXPECT_EQ(shard.get(id_a).value_or(""), a);
  s = shard.stats();
  EXPECT_EQ(s.spill_loads, 1u);
  EXPECT_EQ(s.crc_failures, 0u);
  EXPECT_EQ(shard.get(rb.object_id).value_or(""), b);
}

TEST(Shard, SpillRoundTripSurvivesManyObjects) {
  TempDir dir;
  ShardConfig config;
  config.memory_capacity_bytes = 4096;
  config.spill_dir = dir.path();
  config.chunk_bytes = 512;
  Shard shard(config);

  std::vector<std::string> ids;
  std::vector<std::string> payloads;
  for (int i = 0; i < 16; ++i) {
    payloads.push_back(pattern_bytes(1500, static_cast<char>(i)));
    ids.push_back(shard.put(payloads.back()).object_id);
  }
  // Most objects now live only on disk; every one must read back intact.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(shard.get(ids[i]).value_or(""), payloads[i]) << i;
  }
  EXPECT_EQ(shard.stats().crc_failures, 0u);
  EXPECT_GE(shard.stats().spill_loads, 10u);
}

TEST(Shard, CorruptSpillFileRejectedAsAbsence) {
  TempDir dir;
  ShardConfig config;
  config.memory_capacity_bytes = 2000;
  config.spill_dir = dir.path();
  config.chunk_bytes = 1024;
  Shard shard(config);

  const std::string a = pattern_bytes(1500, 5);
  const std::string id_a = shard.put(a).object_id;
  shard.put(pattern_bytes(1500, 6));  // spills A
  ASSERT_EQ(shard.stats().spills, 1u);

  // Flip a payload byte near the end of A's spill file (header is at the
  // front; the tail is chunk data).
  const std::string path = dir.path() + "/" + id_a + ".obj";
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    ASSERT_GT(size, 32);
    f.seekp(size - 10);
    char byte = 0;
    f.seekg(size - 10);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xff);
    f.seekp(size - 10);
    f.write(&byte, 1);
  }

  // A corrupt read is absence, never silent garbage: nullopt, counted,
  // object dropped so the replication layer re-fetches elsewhere.
  EXPECT_FALSE(shard.get(id_a).has_value());
  EXPECT_GE(shard.stats().crc_failures, 1u);
  EXPECT_FALSE(shard.contains(id_a));
}

TEST(Shard, EvictionWithoutSpillDirReportsDrops) {
  ShardConfig config;
  config.memory_capacity_bytes = 2000;
  config.chunk_bytes = 1024;  // no spill_dir: evictions drop
  Shard shard(config);

  const std::string a = pattern_bytes(1500, 1);
  const std::string id_a = shard.put(a).object_id;
  const PutResult rb = shard.put(pattern_bytes(1500, 2));
  ASSERT_TRUE(rb.stored);
  // The shard must report the dropped id so its owner can announce the
  // replica loss (a silent drop would leave the directory lying).
  ASSERT_EQ(rb.dropped.size(), 1u);
  EXPECT_EQ(rb.dropped[0], id_a);
  EXPECT_FALSE(shard.contains(id_a));
  EXPECT_EQ(shard.stats().dropped, 1u);
}

TEST(Shard, ChunksOfReturnsVerifiedChunks) {
  Shard shard;
  const std::string bytes = pattern_bytes(4096, 9);
  const std::string id = shard.put(bytes).object_id;
  const auto chunks = shard.chunks_of(id);
  ASSERT_TRUE(chunks.has_value());
  EXPECT_EQ(join_chunks(*chunks), bytes);
  EXPECT_FALSE(shard.chunks_of("o0000000000000000").has_value());
}

TEST(Shard, EraseFreesCapacity) {
  ShardConfig config;
  config.memory_capacity_bytes = 4000;
  config.chunk_bytes = 1024;
  Shard shard(config);
  const std::string id = shard.put(pattern_bytes(3000, 1)).object_id;
  EXPECT_TRUE(shard.erase(id));
  EXPECT_FALSE(shard.erase(id));
  // The freed budget admits a new object without evicting it.
  const PutResult r = shard.put(pattern_bytes(3000, 2));
  EXPECT_TRUE(r.stored);
  EXPECT_TRUE(r.dropped.empty());
}

}  // namespace
}  // namespace pa::store
