#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pa/store/directory.h"

namespace pa::store {
namespace {

TEST(ReplicaDirectory, AddRemoveTracksHoldersAndBytes) {
  ReplicaDirectory dir;
  EXPECT_FALSE(dir.known("o1"));
  dir.add("o1", 100, kOriginHolder);
  dir.add("o1", 0, "pilot-1");  // size already known; 0 keeps it
  EXPECT_TRUE(dir.known("o1"));
  EXPECT_EQ(dir.bytes("o1"), 100u);
  EXPECT_TRUE(dir.has("o1", "pilot-1"));
  EXPECT_FALSE(dir.has("o1", "pilot-2"));
  EXPECT_EQ(dir.holders("o1"),
            (std::vector<std::string>{kOriginHolder, "pilot-1"}));
  // Origin never counts toward the agent replica target.
  EXPECT_EQ(dir.agent_replicas("o1"), 1u);

  EXPECT_TRUE(dir.remove("o1", "pilot-1"));
  EXPECT_FALSE(dir.remove("o1", "pilot-1"));
  // Zero holders left: the object stays known, its size survives.
  EXPECT_TRUE(dir.remove("o1", kOriginHolder));
  EXPECT_TRUE(dir.known("o1"));
  EXPECT_EQ(dir.bytes("o1"), 100u);
  EXPECT_EQ(dir.agent_replicas("o1"), 0u);
}

TEST(ReplicaDirectory, DropHolderReturnsAffectedObjects) {
  ReplicaDirectory dir;
  dir.add("o1", 10, "pilot-1");
  dir.add("o2", 20, "pilot-1");
  dir.add("o2", 0, "pilot-2");
  dir.add("o3", 30, "pilot-2");

  std::vector<std::string> affected = dir.drop_holder("pilot-1");
  ASSERT_EQ(affected.size(), 2u);
  EXPECT_FALSE(dir.has("o1", "pilot-1"));
  EXPECT_FALSE(dir.has("o2", "pilot-1"));
  EXPECT_TRUE(dir.has("o2", "pilot-2"));
  EXPECT_EQ(dir.holder_bytes("pilot-1"), 0u);
  EXPECT_TRUE(dir.drop_holder("pilot-1").empty());  // idempotent
}

TEST(ReplicaDirectory, HolderBytesDrivePlacementLoad) {
  ReplicaDirectory dir;
  dir.add("o1", 100, "pilot-1");
  dir.add("o2", 50, "pilot-1");
  dir.add("o2", 0, "pilot-2");
  EXPECT_EQ(dir.holder_bytes("pilot-1"), 150u);
  EXPECT_EQ(dir.holder_bytes("pilot-2"), 50u);
  dir.remove("o1", "pilot-1");
  EXPECT_EQ(dir.holder_bytes("pilot-1"), 50u);
}

TEST(ReplicaDirectory, ObjectsEnumerates) {
  ReplicaDirectory dir;
  dir.add("o1", 1, "p");
  dir.add("o2", 2, "p");
  EXPECT_EQ(dir.object_count(), 2u);
  EXPECT_EQ(dir.objects().size(), 2u);
}

}  // namespace
}  // namespace pa::store
