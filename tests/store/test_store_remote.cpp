#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pa/check/mutex.h"
#include "pa/core/pilot_compute_service.h"
#include "pa/net/inproc_transport.h"
#include "pa/rt/remote_runtime.h"
#include "pa/store/data_service.h"
#include "pa/store/manager.h"

namespace pa::store {
namespace {

using core::ComputeUnit;
using core::ComputeUnitDescription;
using core::Pilot;
using core::PilotComputeService;
using core::PilotDescription;
using core::UnitState;
using rt::AgentEndpoint;
using rt::AgentEndpointConfig;
using rt::PayloadTable;
using rt::RemoteRuntime;
using rt::RemoteRuntimeConfig;

// Owns the in-process agents the launcher creates (test_remote_runtime
// idiom); kill() destroys the endpoint outright, like a dead process.
class AgentFarm {
 public:
  explicit AgentFarm(net::Transport& transport) : transport_(transport) {}

  void create(const std::string& pilot_id, const std::string& endpoint,
              const std::shared_ptr<PayloadTable>& payloads,
              const AgentEndpointConfig& config = {}) {
    auto agent = std::make_unique<AgentEndpoint>(transport_, endpoint,
                                                 pilot_id, payloads, config);
    check::MutexLock lock(mu_);
    agents_[pilot_id] = std::move(agent);
  }

  AgentEndpoint* agent(const std::string& pilot_id) {
    check::MutexLock lock(mu_);
    const auto it = agents_.find(pilot_id);
    return it == agents_.end() ? nullptr : it->second.get();
  }

  void kill(const std::string& pilot_id) {
    std::unique_ptr<AgentEndpoint> victim;
    {
      check::MutexLock lock(mu_);
      const auto it = agents_.find(pilot_id);
      if (it != agents_.end()) {
        victim = std::move(it->second);
        agents_.erase(it);
      }
    }
  }

 private:
  net::Transport& transport_;
  check::Mutex mu_{check::LockRank::kLeaf, "test.store_farm"};
  std::map<std::string, std::unique_ptr<AgentEndpoint>> agents_
      PA_GUARDED_BY(mu_);
};

// Service + runtime + farm + attached StoreManager over one transport.
struct StoreStack {
  StoreStack(net::Transport& transport, const std::string& listen_endpoint,
             StoreManager& store, const std::string& policy = "backfill",
             double heartbeat_interval = 0.05, int miss_limit = 20)
      : farm(transport) {
    RemoteRuntimeConfig config;
    config.listen_endpoint = listen_endpoint;
    config.heartbeat_interval_seconds = heartbeat_interval;
    config.heartbeat_miss_limit = miss_limit;
    config.launcher = [this](const std::string& pilot_id,
                             const std::string& endpoint) {
      farm.create(pilot_id, endpoint, runtime->payloads(), agent_config);
    };
    runtime = std::make_unique<RemoteRuntime>(transport, std::move(config));
    runtime->attach_store(&store);
    service = std::make_unique<PilotComputeService>(*runtime, policy);
  }

  AgentEndpointConfig agent_config;
  AgentFarm farm;
  std::unique_ptr<RemoteRuntime> runtime;
  std::unique_ptr<PilotComputeService> service;
};

PilotDescription remote_pilot(int nodes, const std::string& site) {
  PilotDescription d;
  d.resource_url = "remote://" + site;
  d.nodes = nodes;
  d.walltime = 1e9;
  return d;
}

std::string pattern_bytes(std::size_t n, char seed) {
  std::string s(n, '\0');
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = static_cast<char>((seed + i * 131) & 0xff);
  }
  return s;
}

bool wait_for(const std::function<bool()>& pred, double timeout_seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// Blocking ensure_on: returns the done(ok) verdict (false on timeout).
bool ensure_sync(StoreManager& store, const std::string& pilot_id,
                 const std::string& object_id, double timeout_seconds = 10.0) {
  auto fired = std::make_shared<std::atomic<int>>(0);  // 0 pending, 1/2 = ok/fail
  store.ensure_on(pilot_id, object_id, [fired](bool ok) {
    fired->store(ok ? 1 : 2);
  });
  wait_for([fired] { return fired->load() != 0; }, timeout_seconds);
  return fired->load() == 1;
}

TEST(StoreRemote, ReplicateReachesTargetAndMapsLocations) {
  net::InProcTransport transport;
  StoreManagerConfig cfg;
  cfg.replica_target = 2;
  StoreManager store(cfg);
  StoreStack stack(transport, "inproc://store-rep", store);

  Pilot p1 = stack.service->submit_pilot(remote_pilot(2, "site-a"));
  Pilot p2 = stack.service->submit_pilot(remote_pilot(2, "site-b"));
  Pilot p3 = stack.service->submit_pilot(remote_pilot(2, "site-c"));
  p1.wait_active(10.0);
  p2.wait_active(10.0);
  p3.wait_active(10.0);

  const std::string bytes = pattern_bytes(300'000, 3);  // multi-chunk
  const std::string oid = store.put(bytes);
  EXPECT_TRUE(store.known(oid));
  EXPECT_EQ(store.object_bytes(oid), bytes.size());

  store.replicate(oid);
  ASSERT_TRUE(wait_for(
      [&] { return store.replica_pilots(oid).size() == 2; }, 10.0))
      << "replication never reached the target count";

  // Every directory holder really holds the bytes in its shard.
  const std::map<std::string, std::string> site_of = {
      {p1.id(), "site-a"}, {p2.id(), "site-b"}, {p3.id(), "site-c"}};
  for (const std::string& pid : store.replica_pilots(oid)) {
    AgentEndpoint* agent = stack.farm.agent(pid);
    ASSERT_NE(agent, nullptr);
    EXPECT_TRUE(agent->store().shard().contains(oid));
    EXPECT_EQ(agent->store().shard().get(oid).value_or(""), bytes);
    EXPECT_EQ(store.bytes_at_site(oid, site_of.at(pid)),
              static_cast<double>(bytes.size()));
  }
  // The live site map lists the origin plus both replica sites.
  EXPECT_EQ(store.replica_sites(oid).size(), 3u);
  EXPECT_EQ(store.stats().pushes, 2u);
  transport.stop();
}

TEST(StoreRemote, EnsureOnCoalescesAndHitsDirectory) {
  net::InProcTransport transport;
  StoreManager store;
  StoreStack stack(transport, "inproc://store-ensure", store);
  Pilot p1 = stack.service->submit_pilot(remote_pilot(2, "site-a"));
  p1.wait_active(10.0);

  const std::string oid = store.put(pattern_bytes(100'000, 7));
  // Two concurrent ensures for the same (pilot, object) coalesce into
  // one transfer; both callbacks fire true.
  auto ok_a = std::make_shared<std::atomic<int>>(0);
  auto ok_b = std::make_shared<std::atomic<int>>(0);
  store.ensure_on(p1.id(), oid,
                  [ok_a](bool ok) { ok_a->store(ok ? 1 : 2); });
  store.ensure_on(p1.id(), oid,
                  [ok_b](bool ok) { ok_b->store(ok ? 1 : 2); });
  ASSERT_TRUE(wait_for(
      [&] { return ok_a->load() != 0 && ok_b->load() != 0; }, 10.0));
  EXPECT_EQ(ok_a->load(), 1);
  EXPECT_EQ(ok_b->load(), 1);
  EXPECT_EQ(store.stats().pushes, 1u);
  EXPECT_EQ(store.stats().ensure_misses, 1u);

  // A later ensure is a pure directory hit: no new transfer.
  EXPECT_TRUE(ensure_sync(store, p1.id(), oid));
  EXPECT_EQ(store.stats().pushes, 1u);
  EXPECT_GE(store.stats().ensure_hits, 1u);

  // Unknown object and unknown pilot fail fast.
  EXPECT_FALSE(ensure_sync(store, p1.id(), "o0000000000000000"));
  EXPECT_FALSE(ensure_sync(store, "pilot-nope", oid));
  transport.stop();
}

TEST(StoreRemote, KilledReplicaHolderTriggersRepairWithinDeadline) {
  net::InProcTransport transport;
  StoreManagerConfig cfg;
  cfg.replica_target = 2;
  StoreManager store(cfg);
  // Tight-but-tolerant heartbeat: death detection (interval * miss_limit
  // = 0.3 s) bounds the repair latency well inside the 5 s assert, while
  // a survivor's agent thread must be starved a full 300 ms — not just
  // one busy scheduling quantum — before it is falsely declared dead on
  // a loaded CI box.
  StoreStack stack(transport, "inproc://store-repair", store, "backfill",
                   0.05, 6);

  Pilot p1 = stack.service->submit_pilot(remote_pilot(2, "site-a"));
  Pilot p2 = stack.service->submit_pilot(remote_pilot(2, "site-b"));
  Pilot p3 = stack.service->submit_pilot(remote_pilot(2, "site-c"));
  p1.wait_active(10.0);
  p2.wait_active(10.0);
  p3.wait_active(10.0);

  const std::string bytes = pattern_bytes(120'000, 9);
  const std::string oid = store.put(bytes);
  store.replicate(oid);
  ASSERT_TRUE(wait_for(
      [&] { return store.replica_pilots(oid).size() == 2; }, 10.0));
  const std::uint64_t repairs_before = store.stats().repairs;

  const std::string victim = store.replica_pilots(oid)[0];
  stack.farm.kill(victim);
  const auto killed_at = std::chrono::steady_clock::now();

  // Heartbeat death -> pilot_lost -> re-replication onto the survivor
  // that did not yet hold the object.
  ASSERT_TRUE(wait_for(
      [&] {
        const auto holders = store.replica_pilots(oid);
        if (holders.size() != 2) {
          return false;
        }
        for (const std::string& h : holders) {
          if (h == victim) {
            return false;
          }
        }
        return true;
      },
      10.0))
      << "re-replication after holder death never converged";
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    killed_at)
          .count();
  // Detection deadline is 60 ms; the whole repair (detect + push) must
  // land within generous CI slack of it.
  EXPECT_LT(elapsed, 5.0);
  EXPECT_GT(store.stats().repairs, repairs_before);
  for (const std::string& pid : store.replica_pilots(oid)) {
    AgentEndpoint* agent = stack.farm.agent(pid);
    ASSERT_NE(agent, nullptr);
    EXPECT_EQ(agent->store().shard().get(oid).value_or(""), bytes);
  }
  transport.stop();
}

TEST(StoreRemote, PullsFromReplicaWhenOriginEvicted) {
  net::InProcTransport transport;
  StoreManager store;
  StoreStack stack(transport, "inproc://store-pull", store);
  Pilot p1 = stack.service->submit_pilot(remote_pilot(2, "site-a"));
  Pilot p2 = stack.service->submit_pilot(remote_pilot(2, "site-b"));
  p1.wait_active(10.0);
  p2.wait_active(10.0);

  const std::string bytes = pattern_bytes(90'000, 5);
  const std::string oid = store.put(bytes);
  ASSERT_TRUE(ensure_sync(store, p1.id(), oid));

  // Drop the origin copy: the only bytes left live in p1's shard. The
  // next placement must pull them back through the star before pushing.
  ASSERT_TRUE(store.origin().erase(oid));
  ASSERT_TRUE(ensure_sync(store, p2.id(), oid));

  EXPECT_EQ(store.stats().pulls, 1u);
  EXPECT_EQ(store.stats().pull_bytes, bytes.size());
  EXPECT_EQ(store.stats().pushes, 2u);
  AgentEndpoint* agent = stack.farm.agent(p2.id());
  ASSERT_NE(agent, nullptr);
  EXPECT_EQ(agent->store().shard().get(oid).value_or(""), bytes);
  // The pulled copy re-landed in the origin shard on the way through.
  EXPECT_EQ(store.get(oid).value_or(""), bytes);
  transport.stop();
}

TEST(StoreRemote, AffinitySchedulerFollowsLiveReplicaMap) {
  net::InProcTransport transport;
  StoreManager store;
  StoreStack stack(transport, "inproc://store-affinity", store,
                   "data-affinity");
  StoreDataService data(store);
  stack.service->attach_data_service(&data);

  Pilot pa_ = stack.service->submit_pilot(remote_pilot(2, "site-a"));
  Pilot pb = stack.service->submit_pilot(remote_pilot(2, "site-b"));
  pa_.wait_active(10.0);
  pb.wait_active(10.0);

  const std::string oid = store.put(pattern_bytes(200'000, 11));
  ASSERT_TRUE(ensure_sync(store, pa_.id(), oid));
  ASSERT_EQ(store.stats().pushes, 1u);

  // Sequential units whose only input lives at site-a: the live replica
  // map must steer every one onto the holder, so dispatch prefetch is a
  // directory hit and no further bytes move.
  for (int i = 0; i < 5; ++i) {
    ComputeUnitDescription d;
    d.name = "affine-" + std::to_string(i);
    d.input_data = {oid};
    d.work = [] {};
    ComputeUnit cu = stack.service->submit_unit(d);
    EXPECT_EQ(cu.wait(30.0), UnitState::kDone);
  }
  EXPECT_EQ(store.stats().pushes, 1u)
      << "affinity ignored the live replica map and staged bytes again";
  EXPECT_GE(store.stats().ensure_hits, 5u);
  transport.stop();
}

TEST(StoreRemote, SoleReplicaHolderDeathKeepsResultsExactlyOnce) {
  net::InProcTransport transport;
  StoreManagerConfig cfg;
  // Tiny origin without spill: pushing then putting a second object
  // evicts the first from the origin outright, leaving the agent shard
  // as the sole holder — the worst case the issue demands.
  cfg.origin.memory_capacity_bytes = 4096;
  cfg.origin.chunk_bytes = 1024;
  StoreManager store(cfg);
  // Default heartbeat (1 s deadline): this test only needs p1's death
  // detected inside the generous wait budget below. A 60 ms deadline
  // flaked under parallel-suite load — the *replacement* pilot's agent
  // thread got starved past the deadline, was falsely declared dead,
  // and the workload wedged with no pilot left.
  StoreStack stack(transport, "inproc://store-solo", store,
                   "data-affinity");
  StoreDataService data(store);
  stack.service->attach_data_service(&data);
  stack.service->set_requeue_on_pilot_failure(true);

  Pilot p1 = stack.service->submit_pilot(remote_pilot(2, "site-a"));
  p1.wait_active(10.0);

  const std::string bytes_a = pattern_bytes(3000, 1);
  const std::string oid = store.put(bytes_a);
  ASSERT_TRUE(ensure_sync(store, p1.id(), oid));
  store.put(pattern_bytes(3000, 2));  // evicts A from the origin
  ASSERT_FALSE(store.origin().contains(oid));
  ASSERT_EQ(store.replica_pilots(oid), std::vector<std::string>{p1.id()});

  constexpr int kUnits = 24;
  std::vector<std::unique_ptr<std::atomic<int>>> runs;
  for (int i = 0; i < kUnits; ++i) {
    runs.push_back(std::make_unique<std::atomic<int>>(0));
  }
  std::vector<ComputeUnitDescription> descriptions;
  for (int i = 0; i < kUnits; ++i) {
    ComputeUnitDescription d;
    d.name = "solo-" + std::to_string(i);
    d.input_data = {oid};
    std::atomic<int>* counter = runs[static_cast<std::size_t>(i)].get();
    d.work = [counter] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      counter->fetch_add(1);
    };
    descriptions.push_back(std::move(d));
  }
  std::vector<ComputeUnit> units = stack.service->submit_units(descriptions);

  // Kill the sole replica holder mid-run, then offer a fresh pilot. The
  // requeued units must still complete: stage-in degrades (the object is
  // unobtainable) instead of wedging dispatch.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  stack.farm.kill(p1.id());
  Pilot p2 = stack.service->submit_pilot(remote_pilot(2, "site-b"));
  p2.wait_active(10.0);

  stack.service->wait_all_units(120.0);
  for (ComputeUnit& cu : units) {
    EXPECT_EQ(cu.state(), UnitState::kDone);
  }
  // Exactly-once accounting: every unit counted done once, even though
  // in-flight work was re-executed after the pilot died.
  EXPECT_EQ(stack.service->metrics().units_done,
            static_cast<std::size_t>(kUnits));
  EXPECT_GE(stack.service->metrics().requeues, 1u);
  for (int i = 0; i < kUnits; ++i) {
    EXPECT_GE(runs[static_cast<std::size_t>(i)]->load(), 1) << i;
  }
  EXPECT_GE(store.stats().ensure_failures, 1u);
  transport.stop();
}

}  // namespace
}  // namespace pa::store
