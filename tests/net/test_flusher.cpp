#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "pa/check/mutex.h"
#include "pa/net/flusher.h"
#include "pa/obs/metrics.h"

namespace pa::net {
namespace {

using namespace std::chrono_literals;

Message unit_done(int i) {
  Message m;
  m.type = MessageType::kUnitDone;
  m.pilot_id = "p";
  m.unit_id = "unit-" + std::to_string(i);
  m.success = true;
  return m;
}

bool wait_until(const std::function<bool()>& predicate,
                std::chrono::milliseconds timeout = 2000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!predicate()) {
    if (std::chrono::steady_clock::now() > deadline) {
      return false;
    }
    std::this_thread::sleep_for(200us);
  }
  return true;
}

/// Sink that records every delivered batch (size + reason) and can be told
/// to reject deliveries. Uses a kLeaf mutex so it composes with the
/// flusher's own lock from the sink thread.
class RecordingSink {
 public:
  BatchFlusher::Sink fn() {
    return [this](std::vector<Message> batch, FlushReason reason) {
      check::MutexLock lock(mu_);
      if (reject_next_ > 0) {
        --reject_next_;
        return batch;  // retain everything
      }
      batch_sizes_.push_back(batch.size());
      reasons_.push_back(reason);
      for (auto& m : batch) {
        delivered_.push_back(std::move(m.unit_id));
      }
      return std::vector<Message>{};
    };
  }

  void reject_next(int n) {
    check::MutexLock lock(mu_);
    reject_next_ = n;
  }

  std::size_t delivered_count() const {
    check::MutexLock lock(mu_);
    return delivered_.size();
  }
  std::vector<std::string> delivered() const {
    check::MutexLock lock(mu_);
    return delivered_;
  }
  std::vector<std::size_t> batch_sizes() const {
    check::MutexLock lock(mu_);
    return batch_sizes_;
  }
  std::vector<FlushReason> reasons() const {
    check::MutexLock lock(mu_);
    return reasons_;
  }

 private:
  mutable check::Mutex mu_{check::LockRank::kLeaf, "test.recording_sink"};
  int reject_next_ PA_GUARDED_BY(mu_) = 0;
  std::vector<std::string> delivered_ PA_GUARDED_BY(mu_);
  std::vector<std::size_t> batch_sizes_ PA_GUARDED_BY(mu_);
  std::vector<FlushReason> reasons_ PA_GUARDED_BY(mu_);
};

BatchFlusherConfig manual_config() {
  // Neither eager nor time-triggered within any test's lifetime: only the
  // size trigger (or an explicit kick/flush/close) delivers.
  BatchFlusherConfig c;
  c.max_batch = 8;
  c.max_delay_seconds = 3600.0;
  c.retry_delay_seconds = 0.0005;
  c.eager = false;
  return c;
}

TEST(BatchFlusher, SizeTriggerDeliversFullBatch) {
  RecordingSink sink;
  BatchFlusher flusher(sink.fn(), manual_config());
  for (int i = 0; i < 8; ++i) {
    flusher.push(unit_done(i));
  }
  ASSERT_TRUE(wait_until([&] { return sink.delivered_count() == 8; }));
  ASSERT_EQ(sink.batch_sizes().size(), 1u);
  EXPECT_EQ(sink.batch_sizes()[0], 8u);
  EXPECT_EQ(sink.reasons()[0], FlushReason::kSize);
  EXPECT_EQ(flusher.pending(), 0u);
}

TEST(BatchFlusher, TimeTriggerFlushesPartialBatch) {
  BatchFlusherConfig config = manual_config();
  config.max_delay_seconds = 0.005;
  RecordingSink sink;
  BatchFlusher flusher(sink.fn(), config);
  flusher.push(unit_done(0));
  flusher.push(unit_done(1));
  ASSERT_TRUE(wait_until([&] { return sink.delivered_count() == 2; }));
  ASSERT_EQ(sink.batch_sizes().size(), 1u);
  EXPECT_EQ(sink.batch_sizes()[0], 2u);
  EXPECT_EQ(sink.reasons()[0], FlushReason::kTime);
}

TEST(BatchFlusher, EagerModeDeliversWithoutTriggers) {
  BatchFlusherConfig config = manual_config();
  config.eager = true;
  RecordingSink sink;
  BatchFlusher flusher(sink.fn(), config);
  flusher.push(unit_done(0));
  ASSERT_TRUE(wait_until([&] { return sink.delivered_count() == 1; }));
  EXPECT_EQ(sink.reasons()[0], FlushReason::kEager);
}

TEST(BatchFlusher, CloseFlushesRemainder) {
  RecordingSink sink;
  BatchFlusher flusher(sink.fn(), manual_config());
  for (int i = 0; i < 5; ++i) {
    flusher.push(unit_done(i));  // below max_batch: nothing delivers yet
  }
  flusher.close();
  EXPECT_EQ(sink.delivered_count(), 5u);
  ASSERT_EQ(sink.reasons().size(), 1u);
  EXPECT_EQ(sink.reasons()[0], FlushReason::kClose);
  EXPECT_EQ(flusher.dropped_on_close(), 0u);
}

TEST(BatchFlusher, EmptyFlushIsNoOp) {
  RecordingSink sink;
  BatchFlusher flusher(sink.fn(), manual_config());
  flusher.kick();
  flusher.flush();
  flusher.close();
  EXPECT_EQ(sink.delivered_count(), 0u);
  EXPECT_TRUE(sink.reasons().empty());  // sink never invoked
}

TEST(BatchFlusher, ExplicitFlushDeliversPartialBatch) {
  RecordingSink sink;
  BatchFlusher flusher(sink.fn(), manual_config());
  flusher.push(unit_done(0));
  flusher.flush();
  ASSERT_TRUE(wait_until([&] { return sink.delivered_count() == 1; }));
  EXPECT_EQ(sink.reasons()[0], FlushReason::kExplicit);
}

TEST(BatchFlusher, RejectedBatchIsRetriedInOrder) {
  RecordingSink sink;
  BatchFlusherConfig config = manual_config();
  config.eager = true;
  BatchFlusher flusher(sink.fn(), config);
  sink.reject_next(3);
  for (int i = 0; i < 4; ++i) {
    flusher.push(unit_done(i));
  }
  ASSERT_TRUE(wait_until([&] { return sink.delivered_count() == 4; }));
  EXPECT_GE(flusher.retried(), 1u);
  const std::vector<std::string> expected = {"unit-0", "unit-1", "unit-2",
                                             "unit-3"};
  EXPECT_EQ(sink.delivered(), expected);
  EXPECT_EQ(flusher.dropped_on_close(), 0u);
}

TEST(BatchFlusher, PushAfterCloseIsDroppedAndCounted) {
  RecordingSink sink;
  BatchFlusher flusher(sink.fn(), manual_config());
  flusher.close();
  flusher.push(unit_done(0));
  EXPECT_EQ(sink.delivered_count(), 0u);
  EXPECT_EQ(flusher.dropped_on_close(), 1u);
}

TEST(BatchFlusher, UndeliverableMessagesDropOnClose) {
  RecordingSink sink;
  BatchFlusher flusher(sink.fn(), manual_config());
  sink.reject_next(1000);  // covers retries and the final kClose attempt
  flusher.push(unit_done(0));
  flusher.push(unit_done(1));
  flusher.close();
  EXPECT_EQ(sink.delivered_count(), 0u);
  EXPECT_EQ(flusher.dropped_on_close(), 2u);
}

TEST(BatchFlusher, ExportsBatchMetrics) {
  obs::MetricsRegistry metrics;
  RecordingSink sink;
  {
    BatchFlusher flusher(sink.fn(), manual_config(), &metrics);
    for (int i = 0; i < 8; ++i) {
      flusher.push(unit_done(i));
    }
    ASSERT_TRUE(wait_until([&] { return sink.delivered_count() == 8; }));
  }
  EXPECT_EQ(metrics.histogram("net.batch_size", 1.0, 1e6).snapshot().count(),
            1u);
  EXPECT_EQ(metrics.counter("net.flush_size").value(), 1u);
  EXPECT_EQ(metrics.counter("net.flush_dropped_on_close").value(), 0u);
}

TEST(BatchFlusher, ConcurrentPushersAllDeliver) {
  BatchFlusherConfig config = manual_config();
  config.eager = true;
  config.max_batch = 32;
  RecordingSink sink;
  BatchFlusher flusher(sink.fn(), config);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> pushers;
  pushers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pushers.emplace_back([&flusher, t] {
      for (int i = 0; i < kPerThread; ++i) {
        flusher.push(unit_done(t * kPerThread + i));
      }
    });
  }
  for (auto& p : pushers) {
    p.join();
  }
  ASSERT_TRUE(wait_until(
      [&] { return sink.delivered_count() == kThreads * kPerThread; }));
  flusher.close();
  EXPECT_EQ(flusher.dropped_on_close(), 0u);
}

}  // namespace
}  // namespace pa::net
