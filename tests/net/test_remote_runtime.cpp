#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net_test_util.h"
#include "pa/check/mutex.h"
#include "pa/common/error.h"
#include "pa/common/time_utils.h"
#include "pa/core/pilot_compute_service.h"
#include "pa/net/inproc_transport.h"
#include "pa/net/message.h"
#include "pa/net/tcp_transport.h"
#include "pa/rt/local_runtime.h"
#include "pa/rt/remote_runtime.h"

namespace pa::rt {
namespace {

using core::ComputeUnit;
using core::ComputeUnitDescription;
using core::Pilot;
using core::PilotComputeService;
using core::PilotDescription;
using core::PilotState;
using core::UnitState;

// Owns the in-process agents the launcher creates, so tests can poke
// individual agents (set_unresponsive) and control their lifetime.
class AgentFarm {
 public:
  explicit AgentFarm(net::Transport& transport) : transport_(transport) {}

  void create(const std::string& pilot_id, const std::string& endpoint,
              const std::shared_ptr<PayloadTable>& payloads,
              const AgentEndpointConfig& config = {}) {
    // Construct (which connects, taking transport locks) before taking
    // the kLeaf registry lock — ranks must strictly increase.
    auto agent = std::make_unique<AgentEndpoint>(transport_, endpoint,
                                                 pilot_id, payloads, config);
    check::MutexLock lock(mu_);
    agents_[pilot_id] = std::move(agent);
  }

  AgentEndpoint* agent(const std::string& pilot_id) {
    check::MutexLock lock(mu_);
    const auto it = agents_.find(pilot_id);
    return it == agents_.end() ? nullptr : it->second.get();
  }

  // Simulates a killed agent process: the endpoint (and its connection)
  // is destroyed outright.
  void kill(const std::string& pilot_id) {
    std::unique_ptr<AgentEndpoint> victim;
    {
      check::MutexLock lock(mu_);
      const auto it = agents_.find(pilot_id);
      if (it != agents_.end()) {
        victim = std::move(it->second);
        agents_.erase(it);
      }
    }
    // Destructor (close + local drain) runs outside the lock.
  }

  std::size_t size() {
    check::MutexLock lock(mu_);
    return agents_.size();
  }

 private:
  net::Transport& transport_;
  check::Mutex mu_{check::LockRank::kLeaf, "test.agent_farm"};
  std::map<std::string, std::unique_ptr<AgentEndpoint>> agents_
      PA_GUARDED_BY(mu_);
};

PilotDescription remote_pilot(int nodes, const std::string& site = "site-a") {
  PilotDescription d;
  d.resource_url = "remote://" + site;
  d.nodes = nodes;
  d.walltime = 1e9;
  return d;
}

// Runs `unit_count` units that each record their slot in `results`, on an
// already-constructed service; returns when everything completed.
void run_workload(PilotComputeService& service, int unit_count,
                  std::vector<int>& results) {
  results.assign(unit_count, -1);
  for (int i = 0; i < unit_count; ++i) {
    ComputeUnitDescription d;
    d.name = "unit-" + std::to_string(i);
    d.work = [&results, i]() { results[i] = i * i; };
    service.submit_unit(d);
  }
  service.wait_all_units(120.0);
}

// Builds the service + runtime + farm stack over `transport`. The
// launcher dereferences `runtime` lazily — it is only invoked from
// start_pilot, long after construction finishes.
struct RemoteStack {
  RemoteStack(net::Transport& transport, const std::string& listen_endpoint,
              double heartbeat_interval = 0.1, int miss_limit = 30,
              obs::MetricsRegistry* metrics = nullptr,
              net::BatchFlusherConfig manager_flusher = {})
      : farm(transport) {
    RemoteRuntimeConfig config;
    config.listen_endpoint = listen_endpoint;
    config.heartbeat_interval_seconds = heartbeat_interval;
    config.heartbeat_miss_limit = miss_limit;
    config.metrics = metrics;
    config.flusher = manager_flusher;
    config.launcher = [this](const std::string& pilot_id,
                             const std::string& endpoint) {
      farm.create(pilot_id, endpoint, runtime->payloads(), agent_config);
    };
    runtime = std::make_unique<RemoteRuntime>(transport, std::move(config));
    service = std::make_unique<PilotComputeService>(*runtime, "backfill");
  }

  /// Applied to agents the launcher creates from this point on; set it
  /// before submitting pilots (test hook for mixed-version / flusher
  /// configurations).
  AgentEndpointConfig agent_config;
  AgentFarm farm;
  std::unique_ptr<RemoteRuntime> runtime;
  std::unique_ptr<PilotComputeService> service;
};

TEST(RemoteRuntime, TwoPilotsHundredUnitsMatchLocalOverInProc) {
  // Remote run.
  net::InProcTransport transport;
  RemoteStack stack(transport, "inproc://manager");
  Pilot p1 = stack.service->submit_pilot(remote_pilot(4, "site-a"));
  Pilot p2 = stack.service->submit_pilot(remote_pilot(4, "site-b"));
  p1.wait_active(10.0);
  p2.wait_active(10.0);
  EXPECT_EQ(stack.farm.size(), 2u);

  constexpr int kUnits = 120;
  std::vector<int> remote_results;
  run_workload(*stack.service, kUnits, remote_results);
  EXPECT_EQ(stack.service->metrics().units_done,
            static_cast<std::uint64_t>(kUnits));

  // Identical workload on a LocalRuntime-backed service.
  LocalRuntime local;
  PilotComputeService local_service(local, "backfill");
  PilotDescription d1;
  d1.resource_url = "local://site-a";
  d1.nodes = 4;
  d1.walltime = 1e9;
  local_service.submit_pilot(d1);
  PilotDescription d2 = d1;
  d2.resource_url = "local://site-b";
  local_service.submit_pilot(d2);
  std::vector<int> local_results;
  run_workload(local_service, kUnits, local_results);

  EXPECT_EQ(remote_results, local_results);
  transport.stop();
}

TEST(RemoteRuntime, TwoPilotsHundredUnitsMatchLocalOverTcp) {
  PA_NET_REQUIRE_TCP();
  net::TcpTransport transport;
  RemoteStack stack(transport, "127.0.0.1:0");
  Pilot p1 = stack.service->submit_pilot(remote_pilot(4, "site-a"));
  Pilot p2 = stack.service->submit_pilot(remote_pilot(4, "site-b"));
  p1.wait_active(10.0);
  p2.wait_active(10.0);

  constexpr int kUnits = 120;
  std::vector<int> remote_results;
  run_workload(*stack.service, kUnits, remote_results);
  EXPECT_EQ(stack.service->metrics().units_done,
            static_cast<std::uint64_t>(kUnits));

  LocalRuntime local;
  PilotComputeService local_service(local, "backfill");
  PilotDescription d;
  d.resource_url = "local://site-a";
  d.nodes = 4;
  d.walltime = 1e9;
  local_service.submit_pilot(d);
  PilotDescription d2 = d;
  d2.resource_url = "local://site-b";
  local_service.submit_pilot(d2);
  std::vector<int> local_results;
  run_workload(local_service, kUnits, local_results);

  EXPECT_EQ(remote_results, local_results);

  // The agent side saw real wire traffic.
  AgentEndpoint* agent = stack.farm.agent(p1.id());
  ASSERT_NE(agent, nullptr);
  net::ConnectionStats stats = agent->stats();
  EXPECT_GT(stats.bytes_in, 0u);
  EXPECT_GT(stats.bytes_out, 0u);
  transport.stop();
}

TEST(RemoteRuntime, NonRemoteUrlRejected) {
  net::InProcTransport transport;
  RemoteStack stack(transport, "inproc://manager");
  PilotDescription d;
  d.resource_url = "local://host";
  d.nodes = 1;
  d.walltime = 10.0;
  EXPECT_THROW(stack.service->submit_pilot(d), pa::InvalidArgument);
  transport.stop();
}

TEST(RemoteRuntime, CancelPilotTerminatesSynchronously) {
  net::InProcTransport transport;
  RemoteStack stack(transport, "inproc://manager");
  Pilot pilot = stack.service->submit_pilot(remote_pilot(2));
  pilot.wait_active(10.0);
  pilot.cancel();
  EXPECT_EQ(pilot.state(), PilotState::kCanceled);
  transport.stop();
}

// Acceptance: a hung agent (heartbeats swallowed, no unit completions)
// is declared dead within the heartbeat deadline; its pilot fails and
// in-flight units are requeued onto a healthy pilot.
TEST(RemoteRuntime, HungAgentFailsPilotAndRequeuesUnits) {
  net::InProcTransport transport;
  // 20 ms heartbeats, dead after 3 misses = 60 ms deadline.
  RemoteStack stack(transport, "inproc://manager",
                    /*heartbeat_interval=*/0.02, /*miss_limit=*/3);

  Pilot p1 = stack.service->submit_pilot(remote_pilot(1, "site-a"));
  p1.wait_active(10.0);

  std::atomic<bool> release{false};
  std::atomic<int> executed{0};
  std::vector<ComputeUnit> units;
  for (int i = 0; i < 5; ++i) {
    ComputeUnitDescription d;
    d.name = "unit-" + std::to_string(i);
    d.work = [&release, &executed]() {
      executed.fetch_add(1);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    };
    units.push_back(stack.service->submit_unit(d));
  }
  // Wait until the 1-core pilot is actually executing something.
  const double hang_start = pa::wall_seconds();
  while (executed.load() == 0 && pa::wall_seconds() - hang_start < 10.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(executed.load(), 1);

  // Hang the agent: no more heartbeat acks, no completions.
  AgentEndpoint* agent = stack.farm.agent(p1.id());
  ASSERT_NE(agent, nullptr);
  const double dead_start = pa::wall_seconds();
  agent->set_unresponsive(true);

  // The manager must declare the pilot dead within the deadline (plus
  // scheduling slack).
  while (p1.state() != PilotState::kFailed &&
         pa::wall_seconds() - dead_start < 10.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(p1.state(), PilotState::kFailed);
  EXPECT_LT(pa::wall_seconds() - dead_start, 2.0)
      << "death detection took far longer than the 60 ms deadline";

  // Recovery: a healthy pilot picks up the requeued units.
  release.store(true);
  Pilot p2 = stack.service->submit_pilot(remote_pilot(2, "site-b"));
  p2.wait_active(10.0);
  stack.service->wait_all_units(120.0);
  for (auto& u : units) {
    EXPECT_EQ(u.state(), UnitState::kDone);
  }
  // The stuck unit ran on the dead pilot and again on the new one.
  EXPECT_GE(executed.load(), 5);
  transport.stop();
}

// Acceptance (TCP flavor): killing the agent process outright — socket
// torn down, no clean goodbye — is detected by missed heartbeats.
TEST(RemoteRuntime, KilledAgentConnectionDetectedOverTcp) {
  PA_NET_REQUIRE_TCP();
  net::TcpTransport transport;
  RemoteStack stack(transport, "127.0.0.1:0",
                    /*heartbeat_interval=*/0.02, /*miss_limit=*/3);

  Pilot p1 = stack.service->submit_pilot(remote_pilot(2, "site-a"));
  p1.wait_active(10.0);

  std::atomic<int> executed{0};
  std::vector<ComputeUnit> units;
  for (int i = 0; i < 8; ++i) {
    ComputeUnitDescription d;
    d.work = [&executed]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      executed.fetch_add(1);
    };
    units.push_back(stack.service->submit_unit(d));
  }

  // Kill the agent outright (connection closes, process "gone").
  stack.farm.kill(p1.id());
  const double dead_start = pa::wall_seconds();
  while (p1.state() != PilotState::kFailed &&
         pa::wall_seconds() - dead_start < 10.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(p1.state(), PilotState::kFailed);

  // A replacement pilot finishes whatever had not completed.
  Pilot p2 = stack.service->submit_pilot(remote_pilot(2, "site-b"));
  p2.wait_active(10.0);
  stack.service->wait_all_units(120.0);
  for (auto& u : units) {
    EXPECT_EQ(u.state(), UnitState::kDone);
  }
  transport.stop();
}

TEST(RemoteRuntime, HeartbeatMetricsRecorded) {
  obs::MetricsRegistry registry;
  net::InProcTransport transport;
  RemoteStack stack(transport, "inproc://manager",
                    /*heartbeat_interval=*/0.02, /*miss_limit=*/30,
                    &registry);

  Pilot pilot = stack.service->submit_pilot(remote_pilot(2));
  pilot.wait_active(10.0);
  ComputeUnitDescription d;
  d.work = []() {};
  stack.service->submit_unit(d);
  stack.service->wait_all_units(60.0);

  // Let a few heartbeat round-trips land.
  const double start = pa::wall_seconds();
  bool have_rtt = false;
  while (!have_rtt && pa::wall_seconds() - start < 10.0) {
    for (const auto& [name, hist] : registry.histograms()) {
      if (name == "net.heartbeat_rtt_seconds" && hist.count() > 0) {
        have_rtt = true;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(have_rtt) << "no heartbeat RTT samples recorded";

  std::uint64_t units_done = 0;
  for (const auto& [name, value] : registry.counters()) {
    if (name == "net.units_done") units_done = value;
  }
  EXPECT_EQ(units_done, 1u);
  transport.stop();
}

// Satellite regression: the agent send path must buffer-and-retry under
// backpressure, never silently drop (the old `(void)conn_->send(...)`).
// A deliberately undersized send queue forces the transport to reject the
// agent's merged completion frames; every completion must still arrive,
// exactly once, while the frames shrink until they fit.
TEST(RemoteRuntime, BackpressuredAgentSendPathLosesNoCompletions) {
  net::InProcTransportConfig tc;
  tc.max_queue_bytes = 256;  // a merged completion batch cannot fit
  net::InProcTransport transport(tc);

  struct MiniManager {
    check::Mutex mu{check::LockRank::kLeaf, "test.mini_manager"};
    net::ConnectionPtr conn PA_GUARDED_BY(mu);
    std::vector<std::string> completions PA_GUARDED_BY(mu);
    bool active PA_GUARDED_BY(mu) = false;
  } manager;

  transport.listen(
      "inproc://mini-manager", [&manager](const net::ConnectionPtr& conn) {
        {
          check::MutexLock lock(manager.mu);
          manager.conn = conn;
        }
        net::ConnectionHandlers h;
        h.on_message = [&manager, conn](const std::string& payload) {
          const net::Message m =
              net::decode_message(payload.data(), payload.size());
          switch (m.type) {
            case net::MessageType::kHello: {
              core::PilotDescription d;
              d.resource_url = "remote://mini";
              d.nodes = 1;
              d.walltime = 1e9;
              std::string frame;
              net::append_message_frame(frame,
                                        net::make_start_pilot(m.pilot_id, d));
              EXPECT_TRUE(conn->send(std::move(frame)));
              break;
            }
            case net::MessageType::kPilotActive: {
              check::MutexLock lock(manager.mu);
              manager.active = true;
              break;
            }
            case net::MessageType::kUnitDone: {
              check::MutexLock lock(manager.mu);
              manager.completions.push_back(m.unit_id);
              break;
            }
            case net::MessageType::kUnitDoneBatch: {
              check::MutexLock lock(manager.mu);
              for (const net::WireUnitDone& d : m.completions) {
                manager.completions.push_back(d.unit_id);
              }
              break;
            }
            default:
              break;
          }
        };
        return h;
      });

  auto payloads = std::make_shared<PayloadTable>();
  AgentEndpointConfig config;
  config.queue_factor = 64;
  // Non-eager with a small delay: completions pile up, so the first flush
  // merges far more than the send queue can hold — a guaranteed reject.
  config.flusher.eager = false;
  config.flusher.max_delay_seconds = 0.005;
  AgentEndpoint agent(transport, "inproc://mini-manager", "pilot-bp",
                      payloads, config);

  const double start = pa::wall_seconds();
  auto wait_for = [&start](const std::function<bool()>& done) {
    while (!done() && pa::wall_seconds() - start < 20.0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  };
  wait_for([&manager] {
    check::MutexLock lock(manager.mu);
    return manager.active;
  });
  {
    check::MutexLock lock(manager.mu);
    ASSERT_TRUE(manager.active);
  }

  // Feed 50 no-op units in small kUnitBatch frames (the undersized queue
  // throttles the manager→agent direction too; retry until accepted).
  constexpr int kUnits = 50;
  net::ConnectionPtr to_agent;
  {
    check::MutexLock lock(manager.mu);
    to_agent = manager.conn;
  }
  ASSERT_NE(to_agent, nullptr);
  for (int i = 0; i < kUnits; i += 2) {
    net::Message batch;
    batch.type = net::MessageType::kUnitBatch;
    batch.pilot_id = "pilot-bp";
    for (int j = i; j < std::min(i + 2, kUnits); ++j) {
      net::WireUnitDescription u;
      u.unit_id = "unit-" + std::to_string(j);
      u.duration = 0.0;  // genuinely no-op: the wire default is 1s of burn
      batch.units.push_back(std::move(u));
    }
    std::string frame;
    net::append_message_frame(frame, batch);
    while (!to_agent->send(frame) && pa::wall_seconds() - start < 20.0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  wait_for([&manager] {
    check::MutexLock lock(manager.mu);
    return manager.completions.size() >= kUnits;
  });
  std::vector<std::string> got;
  {
    check::MutexLock lock(manager.mu);
    got = manager.completions;
  }
  EXPECT_EQ(got.size(), static_cast<std::size_t>(kUnits));
  std::set<std::string> unique(got.begin(), got.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kUnits))
      << "duplicate completions delivered";
  // The fix is only proven if backpressure actually hit the agent path.
  EXPECT_GT(agent.stats().send_rejected, 0u);
  transport.stop();
}

// Full-stack flavor: an undersized queue between manager and agents must
// cost only retries, never units. Exercises both directions (kUnitBatch
// dispatch and kUnitDoneBatch completion) under adaptive frame shrinking.
TEST(RemoteRuntime, UndersizedSendQueueLosesNoUnits) {
  obs::MetricsRegistry registry;
  net::InProcTransportConfig tc;
  tc.max_queue_bytes = 768;
  net::InProcTransport transport(tc);
  // Non-eager manager flusher: dispatches accumulate, so early batches
  // exceed the queue bound and must shrink-and-retry.
  net::BatchFlusherConfig manager_flusher;
  manager_flusher.eager = false;
  manager_flusher.max_delay_seconds = 0.002;
  RemoteStack stack(transport, "inproc://manager",
                    /*heartbeat_interval=*/0.1, /*miss_limit=*/30, &registry,
                    manager_flusher);
  stack.agent_config.metrics = &registry;
  // Non-eager agent outbox too: completions accumulate for 10ms before the
  // first merge, so at least one kUnitDoneBatch frame is guaranteed to
  // exceed the 768-byte queue no matter how the suite is scheduled.
  stack.agent_config.flusher.eager = false;
  stack.agent_config.flusher.max_delay_seconds = 0.01;

  Pilot pilot = stack.service->submit_pilot(remote_pilot(4, "site-a"));
  pilot.wait_active(10.0);

  constexpr int kUnits = 150;
  std::vector<int> results;
  run_workload(*stack.service, kUnits, results);
  for (int i = 0; i < kUnits; ++i) {
    EXPECT_EQ(results[i], i * i) << "unit " << i;
  }
  EXPECT_EQ(stack.service->metrics().units_done,
            static_cast<std::size_t>(kUnits));

  std::uint64_t rejected = 0;
  for (const auto& [name, value] : registry.counters()) {
    if (name == "net.send_rejected" || name == "net.agent_send_rejected") {
      rejected += value;
    }
  }
  EXPECT_GT(rejected, 0u) << "queue bound never hit: test exercised nothing";
  transport.stop();
}

// Satellite regression: completions sitting in the agent's outbox when the
// agent dies must ship in the final exchange (dtor flush) — and units whose
// completions did ship must NOT re-execute on the replacement pilot.
TEST(RemoteRuntime, KilledAgentFlushesBufferedCompletionsExactlyOnce) {
  net::InProcTransport transport;
  RemoteStack stack(transport, "inproc://manager",
                    /*heartbeat_interval=*/0.02, /*miss_limit=*/3);
  // Agent outbox that never flushes on its own: completions stay buffered
  // until the endpoint is destroyed, maximizing what is "in flight" at
  // kill time.
  stack.agent_config.flusher.eager = false;
  stack.agent_config.flusher.max_delay_seconds = 3600.0;
  stack.agent_config.flusher.max_batch = 1 << 20;

  Pilot p1 = stack.service->submit_pilot(remote_pilot(2, "site-a"));
  p1.wait_active(10.0);

  std::atomic<int> executions{0};
  constexpr int kUnits = 24;
  std::vector<ComputeUnit> units;
  for (int i = 0; i < kUnits; ++i) {
    ComputeUnitDescription d;
    d.name = "unit-" + std::to_string(i);
    d.work = [&executions]() { executions.fetch_add(1); };
    units.push_back(stack.service->submit_unit(d));
  }
  // With completions never shipping, the manager's dispatch window (2
  // cores × factor 4 = 8) exhausts after 8 units; the agent executes
  // exactly those 8 and buffers their completions.
  const double start = pa::wall_seconds();
  while (executions.load() < 8 && pa::wall_seconds() - start < 10.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(executions.load(), 8);
  // Let the last on_done land in the outbox before the kill.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Kill: ~AgentEndpoint flushes the outbox as its final exchange, THEN
  // drops the connection. The 8 buffered completions must arrive.
  stack.farm.kill(p1.id());

  // The dead pilot fails via heartbeat deadline; a replacement picks up
  // only the 16 units whose completions never shipped. The replacement
  // gets a normal flusher — the buffered-outbox config was only there to
  // maximize what the kill left in flight.
  stack.agent_config = AgentEndpointConfig{};
  Pilot p2 = stack.service->submit_pilot(remote_pilot(2, "site-b"));
  p2.wait_active(10.0);
  stack.service->wait_all_units(120.0);
  for (auto& u : units) {
    EXPECT_EQ(u.state(), UnitState::kDone);
  }
  EXPECT_EQ(stack.service->metrics().units_done,
            static_cast<std::size_t>(kUnits));
  // Exactly-once: 8 executions on the dead pilot + 16 on the replacement.
  // A dropped final flush would re-execute the buffered 8 (executions 32).
  EXPECT_EQ(executions.load(), kUnits);
  transport.stop();
}

// Mixed-version deployment: an agent that only speaks protocol v1 must get
// per-unit kExecuteUnit dispatch (no batch frames) and still complete the
// workload — version negotiation downgrades cleanly instead of latching
// the decoder.
TEST(RemoteRuntime, PreBatchAgentFallsBackToPerUnitDispatch) {
  net::InProcTransport transport;
  RemoteStack stack(transport, "inproc://manager");
  stack.agent_config.wire_version = 1;

  Pilot pilot = stack.service->submit_pilot(remote_pilot(2, "site-a"));
  pilot.wait_active(10.0);

  constexpr int kUnits = 40;
  std::vector<int> results;
  run_workload(*stack.service, kUnits, results);
  for (int i = 0; i < kUnits; ++i) {
    EXPECT_EQ(results[i], i * i) << "unit " << i;
  }
  EXPECT_EQ(stack.service->metrics().units_done,
            static_cast<std::size_t>(kUnits));
  transport.stop();
}

}  // namespace
}  // namespace pa::rt
