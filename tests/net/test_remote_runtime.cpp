#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net_test_util.h"
#include "pa/check/mutex.h"
#include "pa/common/error.h"
#include "pa/common/time_utils.h"
#include "pa/core/pilot_compute_service.h"
#include "pa/net/inproc_transport.h"
#include "pa/net/tcp_transport.h"
#include "pa/rt/local_runtime.h"
#include "pa/rt/remote_runtime.h"

namespace pa::rt {
namespace {

using core::ComputeUnit;
using core::ComputeUnitDescription;
using core::Pilot;
using core::PilotComputeService;
using core::PilotDescription;
using core::PilotState;
using core::UnitState;

// Owns the in-process agents the launcher creates, so tests can poke
// individual agents (set_unresponsive) and control their lifetime.
class AgentFarm {
 public:
  explicit AgentFarm(net::Transport& transport) : transport_(transport) {}

  void create(const std::string& pilot_id, const std::string& endpoint,
              const std::shared_ptr<PayloadTable>& payloads) {
    // Construct (which connects, taking transport locks) before taking
    // the kLeaf registry lock — ranks must strictly increase.
    auto agent = std::make_unique<AgentEndpoint>(transport_, endpoint,
                                                 pilot_id, payloads);
    check::MutexLock lock(mu_);
    agents_[pilot_id] = std::move(agent);
  }

  AgentEndpoint* agent(const std::string& pilot_id) {
    check::MutexLock lock(mu_);
    const auto it = agents_.find(pilot_id);
    return it == agents_.end() ? nullptr : it->second.get();
  }

  // Simulates a killed agent process: the endpoint (and its connection)
  // is destroyed outright.
  void kill(const std::string& pilot_id) {
    std::unique_ptr<AgentEndpoint> victim;
    {
      check::MutexLock lock(mu_);
      const auto it = agents_.find(pilot_id);
      if (it != agents_.end()) {
        victim = std::move(it->second);
        agents_.erase(it);
      }
    }
    // Destructor (close + local drain) runs outside the lock.
  }

  std::size_t size() {
    check::MutexLock lock(mu_);
    return agents_.size();
  }

 private:
  net::Transport& transport_;
  check::Mutex mu_{check::LockRank::kLeaf, "test.agent_farm"};
  std::map<std::string, std::unique_ptr<AgentEndpoint>> agents_
      PA_GUARDED_BY(mu_);
};

PilotDescription remote_pilot(int nodes, const std::string& site = "site-a") {
  PilotDescription d;
  d.resource_url = "remote://" + site;
  d.nodes = nodes;
  d.walltime = 1e9;
  return d;
}

// Runs `unit_count` units that each record their slot in `results`, on an
// already-constructed service; returns when everything completed.
void run_workload(PilotComputeService& service, int unit_count,
                  std::vector<int>& results) {
  results.assign(unit_count, -1);
  for (int i = 0; i < unit_count; ++i) {
    ComputeUnitDescription d;
    d.name = "unit-" + std::to_string(i);
    d.work = [&results, i]() { results[i] = i * i; };
    service.submit_unit(d);
  }
  service.wait_all_units(120.0);
}

// Builds the service + runtime + farm stack over `transport`. The
// launcher dereferences `runtime` lazily — it is only invoked from
// start_pilot, long after construction finishes.
struct RemoteStack {
  RemoteStack(net::Transport& transport, const std::string& listen_endpoint,
              double heartbeat_interval = 0.1, int miss_limit = 30,
              obs::MetricsRegistry* metrics = nullptr)
      : farm(transport) {
    RemoteRuntimeConfig config;
    config.listen_endpoint = listen_endpoint;
    config.heartbeat_interval_seconds = heartbeat_interval;
    config.heartbeat_miss_limit = miss_limit;
    config.metrics = metrics;
    config.launcher = [this](const std::string& pilot_id,
                             const std::string& endpoint) {
      farm.create(pilot_id, endpoint, runtime->payloads());
    };
    runtime = std::make_unique<RemoteRuntime>(transport, std::move(config));
    service = std::make_unique<PilotComputeService>(*runtime, "backfill");
  }

  AgentFarm farm;
  std::unique_ptr<RemoteRuntime> runtime;
  std::unique_ptr<PilotComputeService> service;
};

TEST(RemoteRuntime, TwoPilotsHundredUnitsMatchLocalOverInProc) {
  // Remote run.
  net::InProcTransport transport;
  RemoteStack stack(transport, "inproc://manager");
  Pilot p1 = stack.service->submit_pilot(remote_pilot(4, "site-a"));
  Pilot p2 = stack.service->submit_pilot(remote_pilot(4, "site-b"));
  p1.wait_active(10.0);
  p2.wait_active(10.0);
  EXPECT_EQ(stack.farm.size(), 2u);

  constexpr int kUnits = 120;
  std::vector<int> remote_results;
  run_workload(*stack.service, kUnits, remote_results);
  EXPECT_EQ(stack.service->metrics().units_done,
            static_cast<std::uint64_t>(kUnits));

  // Identical workload on a LocalRuntime-backed service.
  LocalRuntime local;
  PilotComputeService local_service(local, "backfill");
  PilotDescription d1;
  d1.resource_url = "local://site-a";
  d1.nodes = 4;
  d1.walltime = 1e9;
  local_service.submit_pilot(d1);
  PilotDescription d2 = d1;
  d2.resource_url = "local://site-b";
  local_service.submit_pilot(d2);
  std::vector<int> local_results;
  run_workload(local_service, kUnits, local_results);

  EXPECT_EQ(remote_results, local_results);
  transport.stop();
}

TEST(RemoteRuntime, TwoPilotsHundredUnitsMatchLocalOverTcp) {
  PA_NET_REQUIRE_TCP();
  net::TcpTransport transport;
  RemoteStack stack(transport, "127.0.0.1:0");
  Pilot p1 = stack.service->submit_pilot(remote_pilot(4, "site-a"));
  Pilot p2 = stack.service->submit_pilot(remote_pilot(4, "site-b"));
  p1.wait_active(10.0);
  p2.wait_active(10.0);

  constexpr int kUnits = 120;
  std::vector<int> remote_results;
  run_workload(*stack.service, kUnits, remote_results);
  EXPECT_EQ(stack.service->metrics().units_done,
            static_cast<std::uint64_t>(kUnits));

  LocalRuntime local;
  PilotComputeService local_service(local, "backfill");
  PilotDescription d;
  d.resource_url = "local://site-a";
  d.nodes = 4;
  d.walltime = 1e9;
  local_service.submit_pilot(d);
  PilotDescription d2 = d;
  d2.resource_url = "local://site-b";
  local_service.submit_pilot(d2);
  std::vector<int> local_results;
  run_workload(local_service, kUnits, local_results);

  EXPECT_EQ(remote_results, local_results);

  // The agent side saw real wire traffic.
  AgentEndpoint* agent = stack.farm.agent(p1.id());
  ASSERT_NE(agent, nullptr);
  net::ConnectionStats stats = agent->stats();
  EXPECT_GT(stats.bytes_in, 0u);
  EXPECT_GT(stats.bytes_out, 0u);
  transport.stop();
}

TEST(RemoteRuntime, NonRemoteUrlRejected) {
  net::InProcTransport transport;
  RemoteStack stack(transport, "inproc://manager");
  PilotDescription d;
  d.resource_url = "local://host";
  d.nodes = 1;
  d.walltime = 10.0;
  EXPECT_THROW(stack.service->submit_pilot(d), pa::InvalidArgument);
  transport.stop();
}

TEST(RemoteRuntime, CancelPilotTerminatesSynchronously) {
  net::InProcTransport transport;
  RemoteStack stack(transport, "inproc://manager");
  Pilot pilot = stack.service->submit_pilot(remote_pilot(2));
  pilot.wait_active(10.0);
  pilot.cancel();
  EXPECT_EQ(pilot.state(), PilotState::kCanceled);
  transport.stop();
}

// Acceptance: a hung agent (heartbeats swallowed, no unit completions)
// is declared dead within the heartbeat deadline; its pilot fails and
// in-flight units are requeued onto a healthy pilot.
TEST(RemoteRuntime, HungAgentFailsPilotAndRequeuesUnits) {
  net::InProcTransport transport;
  // 20 ms heartbeats, dead after 3 misses = 60 ms deadline.
  RemoteStack stack(transport, "inproc://manager",
                    /*heartbeat_interval=*/0.02, /*miss_limit=*/3);

  Pilot p1 = stack.service->submit_pilot(remote_pilot(1, "site-a"));
  p1.wait_active(10.0);

  std::atomic<bool> release{false};
  std::atomic<int> executed{0};
  std::vector<ComputeUnit> units;
  for (int i = 0; i < 5; ++i) {
    ComputeUnitDescription d;
    d.name = "unit-" + std::to_string(i);
    d.work = [&release, &executed]() {
      executed.fetch_add(1);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    };
    units.push_back(stack.service->submit_unit(d));
  }
  // Wait until the 1-core pilot is actually executing something.
  const double hang_start = pa::wall_seconds();
  while (executed.load() == 0 && pa::wall_seconds() - hang_start < 10.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(executed.load(), 1);

  // Hang the agent: no more heartbeat acks, no completions.
  AgentEndpoint* agent = stack.farm.agent(p1.id());
  ASSERT_NE(agent, nullptr);
  const double dead_start = pa::wall_seconds();
  agent->set_unresponsive(true);

  // The manager must declare the pilot dead within the deadline (plus
  // scheduling slack).
  while (p1.state() != PilotState::kFailed &&
         pa::wall_seconds() - dead_start < 10.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(p1.state(), PilotState::kFailed);
  EXPECT_LT(pa::wall_seconds() - dead_start, 2.0)
      << "death detection took far longer than the 60 ms deadline";

  // Recovery: a healthy pilot picks up the requeued units.
  release.store(true);
  Pilot p2 = stack.service->submit_pilot(remote_pilot(2, "site-b"));
  p2.wait_active(10.0);
  stack.service->wait_all_units(120.0);
  for (auto& u : units) {
    EXPECT_EQ(u.state(), UnitState::kDone);
  }
  // The stuck unit ran on the dead pilot and again on the new one.
  EXPECT_GE(executed.load(), 5);
  transport.stop();
}

// Acceptance (TCP flavor): killing the agent process outright — socket
// torn down, no clean goodbye — is detected by missed heartbeats.
TEST(RemoteRuntime, KilledAgentConnectionDetectedOverTcp) {
  PA_NET_REQUIRE_TCP();
  net::TcpTransport transport;
  RemoteStack stack(transport, "127.0.0.1:0",
                    /*heartbeat_interval=*/0.02, /*miss_limit=*/3);

  Pilot p1 = stack.service->submit_pilot(remote_pilot(2, "site-a"));
  p1.wait_active(10.0);

  std::atomic<int> executed{0};
  std::vector<ComputeUnit> units;
  for (int i = 0; i < 8; ++i) {
    ComputeUnitDescription d;
    d.work = [&executed]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      executed.fetch_add(1);
    };
    units.push_back(stack.service->submit_unit(d));
  }

  // Kill the agent outright (connection closes, process "gone").
  stack.farm.kill(p1.id());
  const double dead_start = pa::wall_seconds();
  while (p1.state() != PilotState::kFailed &&
         pa::wall_seconds() - dead_start < 10.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(p1.state(), PilotState::kFailed);

  // A replacement pilot finishes whatever had not completed.
  Pilot p2 = stack.service->submit_pilot(remote_pilot(2, "site-b"));
  p2.wait_active(10.0);
  stack.service->wait_all_units(120.0);
  for (auto& u : units) {
    EXPECT_EQ(u.state(), UnitState::kDone);
  }
  transport.stop();
}

TEST(RemoteRuntime, HeartbeatMetricsRecorded) {
  obs::MetricsRegistry registry;
  net::InProcTransport transport;
  RemoteStack stack(transport, "inproc://manager",
                    /*heartbeat_interval=*/0.02, /*miss_limit=*/30,
                    &registry);

  Pilot pilot = stack.service->submit_pilot(remote_pilot(2));
  pilot.wait_active(10.0);
  ComputeUnitDescription d;
  d.work = []() {};
  stack.service->submit_unit(d);
  stack.service->wait_all_units(60.0);

  // Let a few heartbeat round-trips land.
  const double start = pa::wall_seconds();
  bool have_rtt = false;
  while (!have_rtt && pa::wall_seconds() - start < 10.0) {
    for (const auto& [name, hist] : registry.histograms()) {
      if (name == "net.heartbeat_rtt_seconds" && hist.count() > 0) {
        have_rtt = true;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(have_rtt) << "no heartbeat RTT samples recorded";

  std::uint64_t units_done = 0;
  for (const auto& [name, value] : registry.counters()) {
    if (name == "net.units_done") units_done = value;
  }
  EXPECT_EQ(units_done, 1u);
  transport.stop();
}

}  // namespace
}  // namespace pa::rt
