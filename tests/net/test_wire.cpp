#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "pa/common/error.h"
#include "pa/net/wire.h"

namespace pa::net {
namespace {

std::string frame_of(const std::string& payload) {
  std::string out;
  append_frame(out, payload);
  return out;
}

// Feeds `stream` one byte at a time and collects every decoded payload.
std::vector<std::string> decode_bytewise(const std::string& stream,
                                         FrameDecoder& decoder) {
  std::vector<std::string> payloads;
  for (char c : stream) {
    decoder.feed(&c, 1);
    std::string payload;
    while (decoder.next(payload) == FrameDecoder::Status::kFrame) {
      payloads.push_back(payload);
    }
  }
  return payloads;
}

TEST(Wire, RoundTripSingleFrame) {
  const std::string payload = "hello, agent";
  std::string stream = frame_of(payload);
  EXPECT_EQ(stream.size(), kFrameHeaderBytes + payload.size());

  FrameDecoder decoder;
  decoder.feed(stream.data(), stream.size());
  std::string out;
  EXPECT_EQ(decoder.next(out), FrameDecoder::Status::kFrame);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(decoder.next(out), FrameDecoder::Status::kNeedMore);
  EXPECT_FALSE(decoder.failed());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Wire, EmptyPayloadRoundTrips) {
  std::string stream = frame_of("");
  FrameDecoder decoder;
  decoder.feed(stream.data(), stream.size());
  std::string out = "sentinel";
  EXPECT_EQ(decoder.next(out), FrameDecoder::Status::kFrame);
  EXPECT_EQ(out, "");
}

TEST(Wire, MultipleFramesInOneChunk) {
  std::string stream;
  for (int i = 0; i < 10; ++i) {
    append_frame(stream, "payload-" + std::to_string(i));
  }
  FrameDecoder decoder;
  decoder.feed(stream.data(), stream.size());
  std::string out;
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(decoder.next(out), FrameDecoder::Status::kFrame) << i;
    EXPECT_EQ(out, "payload-" + std::to_string(i));
  }
  EXPECT_EQ(decoder.next(out), FrameDecoder::Status::kNeedMore);
}

TEST(Wire, ByteAtATimeDelivery) {
  std::string stream;
  std::vector<std::string> sent;
  for (int i = 0; i < 5; ++i) {
    sent.push_back(std::string(1 + i * 37, static_cast<char>('a' + i)));
    append_frame(stream, sent.back());
  }
  FrameDecoder decoder;
  EXPECT_EQ(decode_bytewise(stream, decoder), sent);
  EXPECT_FALSE(decoder.failed());
}

// Satellite 3: a stream cut at EVERY possible byte position yields the
// complete frames before the cut and kNeedMore after — never an error,
// never a crash.
TEST(Wire, TruncationAtEveryByteIsNeedMore) {
  std::string stream;
  append_frame(stream, "first");
  append_frame(stream, std::string(300, 'x'));
  for (std::size_t cut = 0; cut < stream.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(stream.data(), cut);
    std::string out;
    std::size_t frames = 0;
    while (decoder.next(out) == FrameDecoder::Status::kFrame) {
      ++frames;
    }
    EXPECT_FALSE(decoder.failed()) << "cut at " << cut;
    // Exactly the frames whose full bytes fit before the cut.
    const std::size_t first_end = kFrameHeaderBytes + 5;
    const std::size_t expect =
        cut >= stream.size() ? 2 : (cut >= first_end ? 1 : 0);
    EXPECT_EQ(frames, expect) << "cut at " << cut;
  }
}

// Satellite 3: corrupting ANY single byte of a frame is detected — either
// as a CRC mismatch or as a bogus header — and the decoder latches the
// error rather than crashing or resyncing.
TEST(Wire, CorruptionAtEveryByteIsDetectedOrSafe) {
  const std::string payload = "corruption target payload";
  const std::string clean = frame_of(payload);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    std::string dirty = clean;
    dirty[i] = static_cast<char>(dirty[i] ^ 0x5a);
    FrameDecoder decoder;
    decoder.feed(dirty.data(), dirty.size());
    std::string out;
    FrameDecoder::Status status = decoder.next(out);
    // Flipping a length byte can make the declared length larger than the
    // available bytes (kNeedMore, caught by the peer's liveness layer) or
    // absurd (kError); flipping CRC or payload must be kError. A byte flip
    // must never round-trip to a "valid" frame with the original length.
    if (status == FrameDecoder::Status::kFrame) {
      ADD_FAILURE() << "flip at " << i << " yielded a valid frame";
    } else if (status == FrameDecoder::Status::kError) {
      EXPECT_TRUE(decoder.failed());
      EXPECT_FALSE(decoder.error().empty());
    } else {
      // kNeedMore is only reachable via a length flip.
      EXPECT_LT(i, 4u) << "flip at " << i;
    }
  }
}

TEST(Wire, OversizedDeclaredLengthFailsWithoutAllocating) {
  std::string stream;
  const std::uint32_t huge = kMaxFramePayloadBytes + 1;
  stream.append(reinterpret_cast<const char*>(&huge), 4);
  stream.append(4, '\0');  // CRC, never reached
  FrameDecoder decoder;
  decoder.feed(stream.data(), stream.size());
  std::string out;
  EXPECT_EQ(decoder.next(out), FrameDecoder::Status::kError);
  EXPECT_TRUE(decoder.failed());
  EXPECT_NE(decoder.error().find("oversized"), std::string::npos);
}

TEST(Wire, ErrorLatchesAndFeedBecomesNoOp) {
  std::string bad = frame_of("payload");
  bad[5] = static_cast<char>(bad[5] ^ 0xff);  // corrupt CRC
  FrameDecoder decoder;
  decoder.feed(bad.data(), bad.size());
  std::string out;
  EXPECT_EQ(decoder.next(out), FrameDecoder::Status::kError);

  // A perfectly good frame after the error must NOT resurrect the stream.
  std::string good = frame_of("good");
  decoder.feed(good.data(), good.size());
  EXPECT_EQ(decoder.next(out), FrameDecoder::Status::kError);
  EXPECT_TRUE(decoder.failed());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Wire, RandomGarbageNeverCrashes) {
  // Deterministic pseudo-garbage; the decoder must fail or wait, only.
  std::uint32_t state = 0x1234567u;
  std::string garbage;
  for (int i = 0; i < 4096; ++i) {
    state = state * 1664525u + 1013904223u;
    garbage.push_back(static_cast<char>(state >> 24));
  }
  FrameDecoder decoder;
  decoder.feed(garbage.data(), garbage.size());
  std::string out;
  while (decoder.next(out) == FrameDecoder::Status::kFrame) {
    // A lucky valid frame in garbage is astronomically unlikely but legal.
  }
  SUCCEED();
}

TEST(Wire, AppendFrameRejectsOversizedPayload) {
  std::string out;
  std::string big(kMaxFramePayloadBytes + 1, 'x');
  EXPECT_THROW(append_frame(out, big), pa::InvalidArgument);
  EXPECT_TRUE(out.empty());
}

TEST(Wire, MaxSizePayloadRoundTrips) {
  std::string payload(64 * 1024, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 131);
  }
  std::string stream = frame_of(payload);
  FrameDecoder decoder;
  // Feed in 1000-byte chunks to exercise partial-header + partial-payload.
  for (std::size_t off = 0; off < stream.size(); off += 1000) {
    decoder.feed(stream.data() + off, std::min<std::size_t>(1000, stream.size() - off));
  }
  std::string out;
  EXPECT_EQ(decoder.next(out), FrameDecoder::Status::kFrame);
  EXPECT_EQ(out, payload);
}

}  // namespace
}  // namespace pa::net
