#include <gtest/gtest.h>

#include <string>

#include "pa/common/error.h"
#include "pa/core/types.h"
#include "pa/net/message.h"
#include "pa/net/wire.h"

namespace pa::net {
namespace {

Message round_trip(const Message& m) {
  std::string bytes = encode_message(m);
  return decode_message(bytes.data(), bytes.size());
}

TEST(Message, HelloRoundTrips) {
  Message m;
  m.type = MessageType::kHello;
  m.seq = 42;
  m.pilot_id = "pilot-7";
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, StartPilotRoundTrips) {
  Message m;
  m.type = MessageType::kStartPilot;
  m.seq = 1;
  m.pilot_id = "pilot-1";
  m.resource_url = "remote://cluster-a?cores_per_node=8";
  m.nodes = 16;
  m.walltime = 3600.0;
  m.priority = 3;
  m.cost_per_core_hour = 0.021;
  m.pilot_attributes = "queue=debug\nproject=abc";
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, PilotActiveRoundTrips) {
  Message m;
  m.type = MessageType::kPilotActive;
  m.seq = 9;
  m.pilot_id = "p";
  m.total_cores = 128;
  m.site = "cluster-a";
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, PilotTerminatedRoundTrips) {
  Message m;
  m.type = MessageType::kPilotTerminated;
  m.pilot_id = "p";
  m.pilot_state = core::PilotState::kFailed;
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, ExecuteUnitRoundTrips) {
  Message m;
  m.type = MessageType::kExecuteUnit;
  m.seq = 1000;
  m.pilot_id = "pilot-3";
  m.unit.unit_id = "unit-77";
  m.unit.name = "stage-in";
  m.unit.cores = 4;
  m.unit.duration = 2.5;
  m.unit.input_data = {"file://a", "file://b"};
  m.unit.output_data = {"file://out"};
  m.unit.attributes = "locality=preferred";
  m.unit.has_work = true;
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, UnitDoneRoundTrips) {
  Message m;
  m.type = MessageType::kUnitDone;
  m.seq = 2;
  m.pilot_id = "p";
  m.unit_id = "unit-3";
  m.success = true;
  m.timestamp = 12.75;
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, HeartbeatAndAckRoundTrip) {
  for (auto type : {MessageType::kHeartbeat, MessageType::kHeartbeatAck}) {
    Message m;
    m.type = type;
    m.seq = 5;
    m.pilot_id = "p";
    m.timestamp = 1234.5678;
    EXPECT_EQ(round_trip(m), m) << to_string(type);
  }
}

TEST(Message, ShutdownRoundTrips) {
  Message m;
  m.type = MessageType::kShutdown;
  m.pilot_id = "p";
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, UnitBatchRoundTrips) {
  Message m;
  m.type = MessageType::kUnitBatch;
  m.seq = 12;
  m.pilot_id = "pilot-2";
  for (int i = 0; i < 3; ++i) {
    WireUnitDescription u;
    u.unit_id = "unit-" + std::to_string(i);
    u.name = "compute";
    u.cores = 1 + i;
    u.duration = 0.5 * i;
    u.input_data = {"in-" + std::to_string(i)};
    u.attributes = "k=v";
    u.has_work = (i % 2) == 0;
    m.units.push_back(std::move(u));
  }
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, EmptyUnitBatchRoundTrips) {
  Message m;
  m.type = MessageType::kUnitBatch;
  m.pilot_id = "p";
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, UnitDoneBatchRoundTrips) {
  Message m;
  m.type = MessageType::kUnitDoneBatch;
  m.seq = 99;
  m.pilot_id = "pilot-2";
  m.window = 17;
  for (int i = 0; i < 4; ++i) {
    m.completions.push_back(
        WireUnitDone{"unit-" + std::to_string(i), (i % 2) == 0, 1.5 * i});
  }
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, NegativeWindowRoundTrips) {
  // The window is a signed credit; an overcommitted agent may report < 0.
  Message m;
  m.type = MessageType::kUnitDoneBatch;
  m.pilot_id = "p";
  m.window = -3;
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, BatchTypesRefuseVersion1Encode) {
  // A manager that negotiated v1 must never emit batch frames; encoding
  // one is a programming error surfaced as a clean pa::Error.
  for (auto type : {MessageType::kUnitBatch, MessageType::kUnitDoneBatch}) {
    Message m;
    m.type = type;
    m.version = 1;
    m.pilot_id = "p";
    EXPECT_THROW(encode_message(m), pa::Error) << to_string(type);
  }
}

TEST(Message, BatchTypesRefuseVersion1Decode) {
  // A v2 batch frame whose header claims v1 (malicious or buggy peer)
  // must be a clean protocol error, not a decode latch or a crash.
  for (auto type : {MessageType::kUnitBatch, MessageType::kUnitDoneBatch}) {
    Message m;
    m.type = type;
    m.pilot_id = "p";
    std::string bytes = encode_message(m);
    ASSERT_GE(bytes[0], 2);  // batch frames always carry v2+
    bytes[0] = 1;
    EXPECT_THROW(decode_message(bytes.data(), bytes.size()), pa::Error)
        << to_string(type);
  }
}

TEST(Message, Version1MessagesStillDecode) {
  // Downgraded streams re-encode classic types with the v1 header byte;
  // both versions of the header must decode identically.
  Message m;
  m.type = MessageType::kUnitDone;
  m.version = 1;
  m.pilot_id = "p";
  m.unit_id = "u";
  m.success = true;
  m.timestamp = 3.5;
  const Message back = round_trip(m);
  EXPECT_EQ(back.version, 1);
  EXPECT_EQ(back.unit_id, "u");
}

TEST(Message, BatchCountCannotExceedPayload) {
  // A kUnitBatch whose count claims more units than the payload could
  // possibly hold must throw before allocating.
  Message m;
  m.type = MessageType::kUnitBatch;
  m.pilot_id = "p";
  WireUnitDescription u;
  u.unit_id = "u";
  m.units.push_back(u);
  std::string bytes = encode_message(m);
  for (std::size_t i = 0; i + 4 <= bytes.size(); ++i) {
    std::string dirty = bytes;
    dirty[i] = '\xff';
    dirty[i + 1] = '\xff';
    dirty[i + 2] = '\xff';
    dirty[i + 3] = '\x7f';
    try {
      (void)decode_message(dirty.data(), dirty.size());
    } catch (const pa::Error&) {
      // expected for most positions; the point is no crash, no OOM
    }
  }
  SUCCEED();
}

TEST(Message, TruncatedBatchRejected) {
  Message m;
  m.type = MessageType::kUnitDoneBatch;
  m.pilot_id = "pilot-1";
  m.window = 4;
  m.completions.push_back(WireUnitDone{"unit-1", true, 1.0});
  m.completions.push_back(WireUnitDone{"unit-2", false, 2.0});
  std::string bytes = encode_message(m);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW(decode_message(bytes.data(), cut), pa::Error) << cut;
  }
}

TEST(Message, CorruptBatchAtEveryByteNeverCrashes) {
  // The batch analogue of the corrupt-at-every-byte framing suite: flip
  // each byte of an encoded kUnitBatch and require decode to either throw
  // pa::Error or produce a value — never crash or hang.
  Message m;
  m.type = MessageType::kUnitBatch;
  m.pilot_id = "pilot-9";
  for (int i = 0; i < 2; ++i) {
    WireUnitDescription u;
    u.unit_id = "unit-" + std::to_string(i);
    u.input_data = {"a", "b"};
    m.units.push_back(std::move(u));
  }
  const std::string bytes = encode_message(m);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (const char flip : {'\x01', '\x80', '\xff'}) {
      std::string dirty = bytes;
      dirty[i] = static_cast<char>(dirty[i] ^ flip);
      try {
        (void)decode_message(dirty.data(), dirty.size());
      } catch (const pa::Error&) {
        // expected for most flips
      }
    }
  }
  SUCCEED();
}

TEST(Message, UnknownVersionRejected) {
  Message m;
  m.type = MessageType::kHello;
  m.pilot_id = "p";
  std::string bytes = encode_message(m);
  bytes[0] = static_cast<char>(kProtocolVersion + 1);
  EXPECT_THROW(decode_message(bytes.data(), bytes.size()), pa::Error);
}

TEST(Message, UnknownTypeRejected) {
  Message m;
  m.type = MessageType::kHello;
  m.pilot_id = "p";
  std::string bytes = encode_message(m);
  bytes[1] = static_cast<char>(200);
  EXPECT_THROW(decode_message(bytes.data(), bytes.size()), pa::Error);
}

TEST(Message, TruncatedBodyRejected) {
  Message m;
  m.type = MessageType::kStartPilot;
  m.pilot_id = "pilot-long-name";
  m.resource_url = "remote://site";
  std::string bytes = encode_message(m);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW(decode_message(bytes.data(), cut), pa::Error) << cut;
  }
}

TEST(Message, TrailingBytesRejected) {
  Message m;
  m.type = MessageType::kHeartbeat;
  m.pilot_id = "p";
  std::string bytes = encode_message(m) + "junk";
  EXPECT_THROW(decode_message(bytes.data(), bytes.size()), pa::Error);
}

TEST(Message, HugeStringCountRejectedWithoutAllocating) {
  // A kExecuteUnit whose input_data list claims 2^31 entries must throw,
  // not attempt the allocation.
  Message m;
  m.type = MessageType::kExecuteUnit;
  m.pilot_id = "p";
  m.unit.unit_id = "u";
  std::string bytes = encode_message(m);
  // input_data count is the first u32 after the unit's duration field;
  // rather than hunt for the offset, corrupt every u32-aligned position
  // and require decode to throw or produce a value — never crash.
  for (std::size_t i = 0; i + 4 <= bytes.size(); ++i) {
    std::string dirty = bytes;
    dirty[i] = '\xff';
    dirty[i + 1] = '\xff';
    dirty[i + 2] = '\xff';
    dirty[i + 3] = '\x7f';
    try {
      (void)decode_message(dirty.data(), dirty.size());
    } catch (const pa::Error&) {
      // expected for most positions
    }
  }
  SUCCEED();
}

TEST(Message, ObjPutAndChunkRoundTrip) {
  for (auto type : {MessageType::kObjPut, MessageType::kObjChunk}) {
    Message m;
    m.type = type;
    m.seq = 31;
    m.pilot_id = "pilot-5";
    m.object_id = "o0123456789abcdef";
    m.transfer_id = 77;
    m.chunk_index = 2;
    m.chunk_count = 5;
    m.object_bytes = 1234567;
    m.chunk_crc = 0xdeadbeef;
    m.chunk_data = std::string(1024, '\x5a');
    EXPECT_EQ(round_trip(m), m) << to_string(type);
  }
}

TEST(Message, ObjGetRoundTrips) {
  Message m;
  m.type = MessageType::kObjGet;
  m.pilot_id = "p";
  m.object_id = "ofedcba9876543210";
  m.transfer_id = 9;
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, ObjLocateRoundTrips) {
  Message m;
  m.type = MessageType::kObjLocate;
  m.pilot_id = "p";
  m.object_id = "o0000000000000001";
  m.object_bytes = 4096;
  m.success = true;
  m.sites = {"site-a", "site-b"};
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, NotFoundChunkRoundTrips) {
  // chunk_count = 0 is the soft-miss reply (source no longer holds the
  // object); it must survive the wire with an empty payload.
  Message m;
  m.type = MessageType::kObjChunk;
  m.pilot_id = "p";
  m.object_id = "o00000000000000ff";
  m.transfer_id = 3;
  m.chunk_count = 0;
  EXPECT_EQ(round_trip(m), m);
}

TEST(Message, ObjectTypesRefusePreV3Encode) {
  // A manager that negotiated v2 or v1 must never emit object frames.
  for (auto type : {MessageType::kObjPut, MessageType::kObjGet,
                    MessageType::kObjChunk, MessageType::kObjLocate}) {
    for (std::uint8_t version : {std::uint8_t{1}, std::uint8_t{2}}) {
      Message m;
      m.type = type;
      m.version = version;
      m.pilot_id = "p";
      m.object_id = "o0000000000000001";
      EXPECT_THROW(encode_message(m), pa::Error)
          << to_string(type) << " v" << int(version);
    }
  }
}

TEST(Message, ObjectTypesRefusePreV3Decode) {
  // An object frame whose header claims v2 must be a clean protocol
  // error, not a decode latch.
  Message m;
  m.type = MessageType::kObjLocate;
  m.pilot_id = "p";
  m.object_id = "o0000000000000001";
  std::string bytes = encode_message(m);
  ASSERT_GE(bytes[0], 3);  // object frames always carry v3+
  bytes[0] = 2;
  EXPECT_THROW(decode_message(bytes.data(), bytes.size()), pa::Error);
}

TEST(Message, TruncatedObjChunkRejected) {
  Message m;
  m.type = MessageType::kObjChunk;
  m.pilot_id = "pilot-1";
  m.object_id = "o0123456789abcdef";
  m.transfer_id = 1;
  m.chunk_index = 0;
  m.chunk_count = 1;
  m.object_bytes = 64;
  m.chunk_data = std::string(64, 'x');
  m.chunk_crc = 0x12345678;
  std::string bytes = encode_message(m);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW(decode_message(bytes.data(), cut), pa::Error) << cut;
  }
}

TEST(Message, FrameHelperRoundTrips) {
  Message m;
  m.type = MessageType::kUnitDone;
  m.pilot_id = "p";
  m.unit_id = "u";
  m.success = true;
  std::string stream;
  append_message_frame(stream, m);
  FrameDecoder decoder;
  decoder.feed(stream.data(), stream.size());
  std::string payload;
  ASSERT_EQ(decoder.next(payload), FrameDecoder::Status::kFrame);
  EXPECT_EQ(decode_message(payload.data(), payload.size()), m);
}

TEST(Message, PilotDescriptionAdapterRoundTrips) {
  core::PilotDescription d;
  d.resource_url = "remote://cluster-b?cores_per_node=4";
  d.nodes = 8;
  d.walltime = 600.0;
  d.priority = 2;
  d.cost_per_core_hour = 1.5;
  d.attributes.set("queue", std::string("normal"));

  Message m = make_start_pilot("pilot-x", d);
  EXPECT_EQ(m.type, MessageType::kStartPilot);
  EXPECT_EQ(m.pilot_id, "pilot-x");

  core::PilotDescription back = to_pilot_description(round_trip(m));
  EXPECT_EQ(back.resource_url, d.resource_url);
  EXPECT_EQ(back.nodes, d.nodes);
  EXPECT_EQ(back.walltime, d.walltime);
  EXPECT_EQ(back.priority, d.priority);
  EXPECT_EQ(back.cost_per_core_hour, d.cost_per_core_hour);
  EXPECT_EQ(back.attributes.get_string("queue", ""), "normal");
}

TEST(Message, UnitDescriptionAdapterRoundTrips) {
  core::ComputeUnitDescription d;
  d.name = "compute";
  d.cores = 2;
  d.duration = 0.25;
  d.input_data = {"in-a"};
  d.output_data = {"out-a", "out-b"};
  d.attributes.set("affinity", std::string("numa0"));
  d.work = []() {};

  WireUnitDescription w = to_wire_unit("unit-1", d, /*has_work=*/true);
  EXPECT_EQ(w.unit_id, "unit-1");
  EXPECT_TRUE(w.has_work);

  core::ComputeUnitDescription back = to_unit_description(w);
  EXPECT_EQ(back.name, d.name);
  EXPECT_EQ(back.cores, d.cores);
  EXPECT_EQ(back.duration, d.duration);
  EXPECT_EQ(back.input_data, d.input_data);
  EXPECT_EQ(back.output_data, d.output_data);
  EXPECT_EQ(back.attributes.get_string("affinity", ""), "numa0");
  EXPECT_FALSE(back.work);  // closures never cross the wire
}

}  // namespace
}  // namespace pa::net
