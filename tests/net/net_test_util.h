#pragma once
// Shared helpers for the pa::net test suite.

#include <gtest/gtest.h>

#include "pa/net/tcp_transport.h"

// Sandboxes without a loopback interface cannot bind TCP sockets; those
// tests skip (never fail) per the CI contract for port-less environments.
#define PA_NET_REQUIRE_TCP()                                          \
  do {                                                                \
    if (!pa::net::tcp_loopback_available()) {                         \
      GTEST_SKIP() << "TCP loopback unavailable in this environment"; \
    }                                                                 \
  } while (0)
