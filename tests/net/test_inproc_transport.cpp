#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "pa/check/mutex.h"
#include "pa/common/error.h"
#include "pa/common/time_utils.h"
#include "pa/net/inproc_transport.h"
#include "pa/net/wire.h"

namespace pa::net {
namespace {

// Waits (bounded) until `predicate` holds; many transport effects are
// delivered asynchronously by the delivery thread.
template <typename Pred>
bool eventually(Pred predicate, double timeout_seconds = 5.0) {
  const double deadline = pa::wall_seconds() + timeout_seconds;
  while (!predicate()) {
    if (pa::wall_seconds() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

std::string framed(const std::string& payload) {
  std::string out;
  append_frame(out, payload);
  return out;
}

// A server that collects every payload it receives and optionally echoes.
struct CollectingServer {
  explicit CollectingServer(bool echo = false) : echo_(echo) {}

  AcceptHandler acceptor() {
    return [this](const ConnectionPtr& conn) {
      {
        check::MutexLock lock(mu_);
        accepted_.push_back(conn);
      }
      ConnectionHandlers h;
      h.on_message = [this, conn](const std::string& payload) {
        {
          check::MutexLock lock(mu_);
          received_.push_back(payload);
        }
        if (echo_) conn->send(framed("echo:" + payload));
      };
      h.on_close = [this]() { closes_.fetch_add(1); };
      return h;
    };
  }

  std::vector<std::string> received() {
    check::MutexLock lock(mu_);
    return received_;
  }
  std::size_t count() {
    check::MutexLock lock(mu_);
    return received_.size();
  }

  const bool echo_;
  check::Mutex mu_{check::LockRank::kLeaf, "test.collecting_server"};
  std::vector<std::string> received_ PA_GUARDED_BY(mu_);
  std::vector<ConnectionPtr> accepted_ PA_GUARDED_BY(mu_);
  std::atomic<int> closes_{0};
};

TEST(InProcTransport, ListenConnectEcho) {
  InProcTransport transport;
  CollectingServer server(/*echo=*/true);
  const std::string endpoint =
      transport.listen("inproc://echo", server.acceptor());
  EXPECT_EQ(endpoint, "inproc://echo");

  check::Mutex mu{check::LockRank::kLeaf, "test.replies"};
  std::vector<std::string> replies;
  ConnectionHandlers h;
  h.on_message = [&](const std::string& payload) {
    check::MutexLock lock(mu);
    replies.push_back(payload);
  };
  ConnectionPtr client = transport.connect(endpoint, h);
  ASSERT_TRUE(client);
  EXPECT_TRUE(client->is_open());

  EXPECT_TRUE(client->send(framed("ping")));
  ASSERT_TRUE(eventually([&] {
    check::MutexLock lock(mu);
    return replies.size() == 1;
  }));
  {
    check::MutexLock lock(mu);
    EXPECT_EQ(replies[0], "echo:ping");
  }
  transport.stop();
}

TEST(InProcTransport, ConnectToUnknownEndpointThrows) {
  InProcTransport transport;
  ConnectionHandlers h;
  h.on_message = [](const std::string&) {};
  EXPECT_THROW(transport.connect("inproc://nobody", h), pa::Error);
  transport.stop();
}

TEST(InProcTransport, DuplicateListenThrows) {
  InProcTransport transport;
  CollectingServer server;
  transport.listen("inproc://dup", server.acceptor());
  EXPECT_THROW(transport.listen("inproc://dup", server.acceptor()), pa::Error);
  transport.stop();
}

TEST(InProcTransport, OrderPreservedUnderConcurrentSenders) {
  InProcTransport transport;
  CollectingServer server;
  transport.listen("inproc://order", server.acceptor());

  constexpr int kSenders = 4;
  constexpr int kPerSender = 250;
  std::vector<ConnectionPtr> clients;
  ConnectionHandlers h;
  h.on_message = [](const std::string&) {};
  for (int s = 0; s < kSenders; ++s) {
    clients.push_back(transport.connect("inproc://order", h));
  }

  std::vector<std::thread> threads;
  for (int s = 0; s < kSenders; ++s) {
    threads.emplace_back([&, s]() {
      for (int i = 0; i < kPerSender; ++i) {
        std::string msg = std::to_string(s) + ":" + std::to_string(i);
        while (!clients[s]->send(framed(msg))) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_TRUE(eventually(
      [&] { return server.count() == kSenders * kPerSender; }, 30.0));

  // Per-connection FIFO: for each sender, indices arrive in order.
  std::vector<int> next(kSenders, 0);
  for (const std::string& msg : server.received()) {
    const int s = std::stoi(msg.substr(0, msg.find(':')));
    const int i = std::stoi(msg.substr(msg.find(':') + 1));
    EXPECT_EQ(i, next[s]) << msg;
    next[s] = i + 1;
  }
  transport.stop();
}

TEST(InProcTransport, BackpressureRejectsAndCountsWhenQueueFull) {
  InProcTransportConfig config;
  config.max_queue_bytes = 4 * 1024;  // tiny queue
  InProcTransport transport(config);

  // Server that never processes: block the delivery thread inside the
  // first on_message until released, so the queue cannot drain.
  check::Mutex mu{check::LockRank::kLeaf, "test.slow_server"};
  check::CondVar cv;
  bool release = false;
  std::atomic<int> delivered{0};
  transport.listen("inproc://slow", [&](const ConnectionPtr&) {
    ConnectionHandlers h;
    h.on_message = [&](const std::string&) {
      delivered.fetch_add(1);
      check::MutexLock lock(mu);
      while (!release) {
        cv.wait(lock);
      }
    };
    return h;
  });

  ConnectionHandlers h;
  h.on_message = [](const std::string&) {};
  ConnectionPtr client = transport.connect("inproc://slow", h);

  // First send gets consumed (and stuck); keep sending until rejected.
  const std::string payload(1024, 'x');
  bool rejected = false;
  for (int i = 0; i < 64 && !rejected; ++i) {
    rejected = !client->send(framed(payload));
  }
  EXPECT_TRUE(rejected);
  ConnectionStats stats = client->stats();
  EXPECT_GE(stats.send_rejected, 1u);
  EXPECT_GT(stats.send_queue_hwm, 0u);

  {
    check::MutexLock lock(mu);
    release = true;
  }
  cv.notify_all();
  // Once drained, sends work again.
  ASSERT_TRUE(eventually([&] { return client->send(framed("again")); }));
  transport.stop();
}

TEST(InProcTransport, CloseFiresOnCloseOnceAndDropsPeer) {
  InProcTransport transport;
  CollectingServer server;
  transport.listen("inproc://close", server.acceptor());

  std::atomic<int> client_closes{0};
  ConnectionHandlers h;
  h.on_message = [](const std::string&) {};
  h.on_close = [&]() { client_closes.fetch_add(1); };
  ConnectionPtr client = transport.connect("inproc://close", h);

  client->close();
  client->close();  // idempotent
  EXPECT_EQ(client_closes.load(), 1);
  EXPECT_FALSE(client->is_open());
  EXPECT_FALSE(client->send(framed("after close")));

  // The peer observes the close asynchronously.
  ASSERT_TRUE(eventually([&] { return server.closes_.load() == 1; }));
  transport.stop();
}

TEST(InProcTransport, PeerDrainsInFlightFramesBeforeClose) {
  InProcTransport transport;
  CollectingServer server;
  transport.listen("inproc://drain", server.acceptor());

  ConnectionHandlers h;
  h.on_message = [](const std::string&) {};
  ConnectionPtr client = transport.connect("inproc://drain", h);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(client->send(framed("msg-" + std::to_string(i))));
  }
  client->close();

  // All 100 frames must be delivered before the server's on_close.
  ASSERT_TRUE(eventually([&] { return server.closes_.load() == 1; }));
  EXPECT_EQ(server.count(), 100u);
  transport.stop();
}

TEST(InProcTransport, StatsCountBytesAndMessages) {
  InProcTransport transport;
  CollectingServer server(/*echo=*/true);
  transport.listen("inproc://stats", server.acceptor());

  std::atomic<int> replies{0};
  ConnectionHandlers h;
  h.on_message = [&](const std::string&) { replies.fetch_add(1); };
  ConnectionPtr client = transport.connect("inproc://stats", h);

  const std::string frame = framed("count me");
  ASSERT_TRUE(client->send(frame));
  ASSERT_TRUE(eventually([&] { return replies.load() == 1; }));

  ConnectionStats stats = client->stats();
  EXPECT_EQ(stats.messages_out, 1u);
  EXPECT_EQ(stats.bytes_out, frame.size());
  EXPECT_EQ(stats.messages_in, 1u);
  EXPECT_GT(stats.bytes_in, 0u);
  transport.stop();
}

TEST(InProcTransport, StopClosesEverythingAndFiresHandlers) {
  InProcTransport transport;
  CollectingServer server;
  transport.listen("inproc://stop", server.acceptor());

  std::atomic<int> client_closes{0};
  ConnectionHandlers h;
  h.on_message = [](const std::string&) {};
  h.on_close = [&]() { client_closes.fetch_add(1); };
  ConnectionPtr c1 = transport.connect("inproc://stop", h);
  ConnectionPtr c2 = transport.connect("inproc://stop", h);

  transport.stop();
  EXPECT_FALSE(c1->is_open());
  EXPECT_FALSE(c2->is_open());
  EXPECT_EQ(client_closes.load(), 2);
  EXPECT_EQ(server.closes_.load(), 2);
  // stop() is idempotent.
  transport.stop();
}

TEST(InProcTransport, CorruptFrameClosesConnection) {
  InProcTransport transport;
  CollectingServer server;
  transport.listen("inproc://corrupt", server.acceptor());

  std::atomic<int> client_closes{0};
  ConnectionHandlers h;
  h.on_message = [](const std::string&) {};
  h.on_close = [&]() { client_closes.fetch_add(1); };
  ConnectionPtr client = transport.connect("inproc://corrupt", h);

  std::string bad = framed("payload");
  bad[5] = static_cast<char>(bad[5] ^ 0xff);  // break the CRC
  ASSERT_TRUE(client->send(bad));

  // The receiving side detects the corrupt stream and closes; the close
  // propagates back to the sender.
  ASSERT_TRUE(eventually([&] { return server.closes_.load() == 1; }));
  ASSERT_TRUE(eventually([&] { return client_closes.load() == 1; }));
  EXPECT_EQ(server.count(), 0u);
  transport.stop();
}

}  // namespace
}  // namespace pa::net
