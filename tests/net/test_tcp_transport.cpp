#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net_test_util.h"
#include "pa/check/mutex.h"
#include "pa/common/error.h"
#include "pa/common/time_utils.h"
#include "pa/net/tcp_transport.h"
#include "pa/net/wire.h"

namespace pa::net {
namespace {

template <typename Pred>
bool eventually(Pred predicate, double timeout_seconds = 10.0) {
  const double deadline = pa::wall_seconds() + timeout_seconds;
  while (!predicate()) {
    if (pa::wall_seconds() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  return true;
}

std::string framed(const std::string& payload) {
  std::string out;
  append_frame(out, payload);
  return out;
}

struct EchoServer {
  AcceptHandler acceptor() {
    return [this](const ConnectionPtr& conn) {
      ConnectionHandlers h;
      h.on_message = [this, conn](const std::string& payload) {
        {
          check::MutexLock lock(mu_);
          received_.push_back(payload);
        }
        conn->send(framed("echo:" + payload));
      };
      h.on_close = [this]() { closes_.fetch_add(1); };
      return h;
    };
  }

  std::size_t count() {
    check::MutexLock lock(mu_);
    return received_.size();
  }

  check::Mutex mu_{check::LockRank::kLeaf, "test.echo_server"};
  std::vector<std::string> received_ PA_GUARDED_BY(mu_);
  std::atomic<int> closes_{0};
};

TEST(TcpTransport, ListenResolvesKernelPort) {
  PA_NET_REQUIRE_TCP();
  TcpTransport transport;
  EchoServer server;
  const std::string endpoint =
      transport.listen("127.0.0.1:0", server.acceptor());
  // The kernel-chosen port replaces the 0.
  EXPECT_EQ(endpoint.rfind("127.0.0.1:", 0), 0u);
  EXPECT_NE(endpoint, "127.0.0.1:0");
  transport.stop();
}

TEST(TcpTransport, EchoOverRealSockets) {
  PA_NET_REQUIRE_TCP();
  TcpTransport transport;
  EchoServer server;
  const std::string endpoint =
      transport.listen("127.0.0.1:0", server.acceptor());

  check::Mutex mu{check::LockRank::kLeaf, "test.replies"};
  std::vector<std::string> replies;
  ConnectionHandlers h;
  h.on_message = [&](const std::string& payload) {
    check::MutexLock lock(mu);
    replies.push_back(payload);
  };
  ConnectionPtr client = transport.connect(endpoint, h);
  ASSERT_TRUE(client);

  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client->send(framed("msg-" + std::to_string(i))));
  }
  ASSERT_TRUE(eventually([&] {
    check::MutexLock lock(mu);
    return replies.size() == 50;
  }));
  {
    check::MutexLock lock(mu);
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(replies[i], "echo:msg-" + std::to_string(i));
    }
  }
  transport.stop();
}

TEST(TcpTransport, LargeFramesSurvivePartialWrites) {
  PA_NET_REQUIRE_TCP();
  TcpTransport transport;
  EchoServer server;
  const std::string endpoint =
      transport.listen("127.0.0.1:0", server.acceptor());

  std::atomic<int> ok{0};
  std::string big(512 * 1024, '\0');
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>(i * 31);
  }
  ConnectionHandlers h;
  h.on_message = [&](const std::string& payload) {
    if (payload == "echo:" + big) ok.fetch_add(1);
  };
  ConnectionPtr client = transport.connect(endpoint, h);
  // 512 KiB greatly exceeds socket buffers: exercises partial ::send and
  // fragmented ::recv reassembly on both directions.
  ASSERT_TRUE(client->send(framed(big)));
  ASSERT_TRUE(eventually([&] { return ok.load() == 1; }, 30.0));
  transport.stop();
}

TEST(TcpTransport, ConnectRefusedThrows) {
  PA_NET_REQUIRE_TCP();
  TcpTransport transport;
  ConnectionHandlers h;
  h.on_message = [](const std::string&) {};
  // Grab a fresh port via a second transport, then stop it so nothing
  // listens there anymore.
  std::string endpoint;
  {
    TcpTransport probe;
    EchoServer server;
    endpoint = probe.listen("127.0.0.1:0", server.acceptor());
    probe.stop();
  }
  EXPECT_THROW(transport.connect(endpoint, h), pa::Error);
  transport.stop();
}

TEST(TcpTransport, MalformedEndpointThrows) {
  PA_NET_REQUIRE_TCP();
  TcpTransport transport;
  EchoServer server;
  EXPECT_THROW(transport.listen("not-an-endpoint", server.acceptor()),
               pa::Error);
  EXPECT_THROW(transport.listen("127.0.0.1:notaport", server.acceptor()),
               pa::Error);
  ConnectionHandlers h;
  h.on_message = [](const std::string&) {};
  EXPECT_THROW(transport.connect("127.0.0.1", h), pa::Error);
  transport.stop();
}

TEST(TcpTransport, ClientReconnectsAfterServerSideClose) {
  PA_NET_REQUIRE_TCP();
  TcpTransportConfig config;
  config.backoff_initial_seconds = 0.01;
  config.backoff_max_seconds = 0.05;
  TcpTransport transport(config);

  // Server drops the FIRST accepted connection immediately; later
  // connections echo normally.
  std::atomic<int> accepts{0};
  check::Mutex mu{check::LockRank::kLeaf, "test.drop_server"};
  std::vector<ConnectionPtr> to_drop;
  const std::string endpoint =
      transport.listen("127.0.0.1:0", [&](const ConnectionPtr& conn) {
        const int n = accepts.fetch_add(1);
        ConnectionHandlers h;
        if (n == 0) {
          // Handlers must not close their own connection: park it and let
          // the test thread close it.
          check::MutexLock lock(mu);
          to_drop.push_back(conn);
          h.on_message = [](const std::string&) {};
        } else {
          h.on_message = [conn](const std::string& payload) {
            conn->send(framed("echo:" + payload));
          };
        }
        return h;
      });

  std::atomic<int> reconnects{0};
  std::atomic<int> replies{0};
  ConnectionHandlers h;
  h.on_message = [&](const std::string&) { replies.fetch_add(1); };
  h.on_reconnect = [&]() { reconnects.fetch_add(1); };
  ConnectionPtr client = transport.connect(endpoint, h);

  ASSERT_TRUE(eventually([&] { return accepts.load() >= 1; }));
  {
    check::MutexLock lock(mu);
    ASSERT_EQ(to_drop.size(), 1u);
    to_drop[0]->close();
  }

  // The client must notice the drop, redial, and get a fresh accept.
  ASSERT_TRUE(eventually([&] { return reconnects.load() >= 1; }));
  ASSERT_TRUE(eventually([&] { return accepts.load() >= 2; }));
  EXPECT_TRUE(client->is_open());
  EXPECT_GE(client->stats().reconnects, 1u);

  // The re-established stream works end to end.
  ASSERT_TRUE(eventually([&] {
    client->send(framed("after-reconnect"));
    return replies.load() >= 1;
  }));
  transport.stop();
}

TEST(TcpTransport, BackpressureRejectsWhenQueueFull) {
  PA_NET_REQUIRE_TCP();
  TcpTransportConfig config;
  config.max_send_queue_bytes = 16 * 1024;
  TcpTransport transport(config);
  EchoServer server;
  const std::string endpoint =
      transport.listen("127.0.0.1:0", server.acceptor());

  ConnectionHandlers h;
  h.on_message = [](const std::string&) {};
  ConnectionPtr client = transport.connect(endpoint, h);

  // Flood far faster than the I/O thread can flush a 16 KiB budget.
  const std::string payload(8 * 1024, 'x');
  bool rejected = false;
  for (int i = 0; i < 1000 && !rejected; ++i) {
    rejected = !client->send(framed(payload));
  }
  EXPECT_TRUE(rejected);
  EXPECT_GE(client->stats().send_rejected, 1u);
  transport.stop();
}

TEST(TcpTransport, StopClosesConnections) {
  PA_NET_REQUIRE_TCP();
  TcpTransport transport;
  EchoServer server;
  const std::string endpoint =
      transport.listen("127.0.0.1:0", server.acceptor());

  std::atomic<int> closes{0};
  ConnectionHandlers h;
  h.on_message = [](const std::string&) {};
  h.on_close = [&]() { closes.fetch_add(1); };
  ConnectionPtr client = transport.connect(endpoint, h);
  EXPECT_TRUE(client->is_open());

  transport.stop();
  EXPECT_FALSE(client->is_open());
  EXPECT_EQ(closes.load(), 1);
  transport.stop();  // idempotent
}

}  // namespace
}  // namespace pa::net
