#include "pa/mem/in_memory_store.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "pa/common/error.h"

namespace pa::mem {
namespace {

TEST(InMemoryStore, PutGetRoundTrip) {
  InMemoryStore store;
  store.put_typed<int>("answer", 42, sizeof(int));
  const auto value = store.get_typed<int>("answer");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, 42);
}

TEST(InMemoryStore, MissReturnsNull) {
  InMemoryStore store;
  EXPECT_EQ(store.get_typed<int>("nope"), nullptr);
  const auto stats = store.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(InMemoryStore, TypeMismatchThrows) {
  InMemoryStore store;
  store.put_typed<int>("k", 1, 4);
  EXPECT_THROW(store.get_typed<double>("k"), pa::InvalidArgument);
}

TEST(InMemoryStore, VersionIncrements) {
  InMemoryStore store;
  EXPECT_EQ(store.version("k"), 0u);
  EXPECT_EQ(store.put_typed<int>("k", 1, 4), 1u);
  EXPECT_EQ(store.put_typed<int>("k", 2, 4), 2u);
  EXPECT_EQ(store.version("k"), 2u);
  EXPECT_EQ(*store.get_typed<int>("k"), 2);
}

TEST(InMemoryStore, OldReadersKeepTheirSnapshot) {
  InMemoryStore store;
  store.put_typed<std::string>("k", "v1", 2);
  const auto snapshot = store.get_typed<std::string>("k");
  store.put_typed<std::string>("k", "v2", 2);
  EXPECT_EQ(*snapshot, "v1");  // immutable value survives the re-put
  EXPECT_EQ(*store.get_typed<std::string>("k"), "v2");
}

TEST(InMemoryStore, EraseAndClear) {
  InMemoryStore store;
  store.put_typed<int>("a", 1, 8);
  store.put_typed<int>("b", 2, 8);
  EXPECT_TRUE(store.erase("a"));
  EXPECT_FALSE(store.erase("a"));
  EXPECT_EQ(store.stats().entries, 1u);
  EXPECT_DOUBLE_EQ(store.stats().resident_bytes, 8.0);
  store.clear();
  EXPECT_EQ(store.stats().entries, 0u);
  EXPECT_DOUBLE_EQ(store.stats().resident_bytes, 0.0);
}

TEST(InMemoryStore, GetOrLoadCachesThrough) {
  InMemoryStore store;
  int loads = 0;
  auto loader = [&loads]() {
    ++loads;
    return std::make_pair(std::vector<int>{1, 2, 3}, 12.0);
  };
  const auto a = store.get_or_load<std::vector<int>>("data", loader);
  const auto b = store.get_or_load<std::vector<int>>("data", loader);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(*b, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loads, 1);  // second call was a hit
}

TEST(InMemoryStore, ResidentBytesTracked) {
  InMemoryStore store;
  store.put_typed<int>("a", 1, 100.0);
  store.put_typed<int>("b", 2, 50.0);
  EXPECT_DOUBLE_EQ(store.stats().resident_bytes, 150.0);
  store.put_typed<int>("a", 3, 30.0);  // replaces 100 with 30
  EXPECT_DOUBLE_EQ(store.stats().resident_bytes, 80.0);
}

TEST(InMemoryStore, CapacityEvictsOldest) {
  InMemoryStore store(4, /*capacity_bytes=*/100.0);
  store.put_typed<int>("a", 1, 60.0);
  store.put_typed<int>("b", 2, 60.0);  // exceeds 100: "a" evicted
  EXPECT_EQ(store.get_typed<int>("a"), nullptr);
  ASSERT_NE(store.get_typed<int>("b"), nullptr);
  EXPECT_GE(store.stats().evictions, 1u);
  EXPECT_LE(store.stats().resident_bytes, 100.0);
}

TEST(InMemoryStore, UnlimitedCapacityNeverEvicts) {
  InMemoryStore store(4, 0.0);
  for (int i = 0; i < 100; ++i) {
    store.put_typed<int>("k" + std::to_string(i), i, 1e6);
  }
  EXPECT_EQ(store.stats().evictions, 0u);
  EXPECT_EQ(store.stats().entries, 100u);
}

TEST(InMemoryStore, ConcurrentPutsAndGets) {
  InMemoryStore store(16);
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&store, &mismatches, t]() {
      for (int i = 0; i < 500; ++i) {
        const std::string key = "k" + std::to_string(i % 50);
        store.put_typed<int>(key, i, 4);
        const auto v = store.get_typed<int>(key);
        if (v == nullptr) {
          mismatches.fetch_add(1);
        }
      }
      (void)t;
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(store.stats().puts, 4000u);
}

TEST(InMemoryStore, StatsCountHitsAndMisses) {
  InMemoryStore store;
  store.put_typed<int>("k", 1, 4);
  store.get("k");
  store.get("k");
  store.get("missing");
  const auto stats = store.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.puts, 1u);
}

TEST(InMemoryStore, InvalidArgsRejected) {
  EXPECT_THROW(InMemoryStore(0), pa::InvalidArgument);
  InMemoryStore store;
  EXPECT_THROW(store.put("k", std::any(1), -1.0), pa::InvalidArgument);
}

}  // namespace
}  // namespace pa::mem
