#include "pa/data/pilot_data_service.h"

#include <gtest/gtest.h>

#include <memory>

#include "pa/common/error.h"

namespace pa::data {
namespace {

class PilotDataTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_.set_link("hpc", "cloud", infra::LinkSpec{1e8, 0.1});

    infra::StorageConfig hpc_cfg;
    hpc_cfg.name = "lustre";
    hpc_cfg.site = "hpc";
    hpc_cfg.capacity_bytes = 1e12;
    infra::StorageConfig cloud_cfg;
    cloud_cfg.name = "s3";
    cloud_cfg.site = "cloud";
    cloud_cfg.tier = infra::StorageTier::kObjectStore;
    cloud_cfg.capacity_bytes = 1e12;

    pds_.register_storage(
        std::make_shared<infra::StorageSystem>(engine_, hpc_cfg));
    pds_.register_storage(
        std::make_shared<infra::StorageSystem>(engine_, cloud_cfg));
    pds_.add_data_pilot("hpc", 1e10);
    pds_.add_data_pilot("cloud", 1e10);
  }

  std::string make_du(double bytes, const std::string& site = "hpc") {
    DataUnitDescription d;
    d.name = "dataset";
    d.bytes = bytes;
    d.initial_site = site;
    return pds_.submit_data_unit(d);
  }

  sim::Engine engine_;
  infra::NetworkModel net_{engine_};
  PilotDataService pds_{net_};
};

TEST_F(PilotDataTest, SubmitPlacesInitialReplica) {
  const std::string du = make_du(1e6);
  EXPECT_EQ(pds_.state(du), DataUnitState::kResident);
  EXPECT_EQ(pds_.replica_sites(du), std::vector<std::string>{"hpc"});
  EXPECT_DOUBLE_EQ(pds_.total_bytes(du), 1e6);
  EXPECT_DOUBLE_EQ(pds_.bytes_on_site(du, "hpc"), 1e6);
  EXPECT_DOUBLE_EQ(pds_.bytes_on_site(du, "cloud"), 0.0);
}

TEST_F(PilotDataTest, DataPilotCapacityCharged) {
  make_du(4e9);
  EXPECT_DOUBLE_EQ(pds_.data_pilot_free_bytes("hpc"), 1e10 - 4e9);
}

TEST_F(PilotDataTest, CapacityOverflowRejected) {
  make_du(9e9);
  EXPECT_THROW(make_du(2e9), pa::ResourceError);
}

TEST_F(PilotDataTest, ReplicationTransfersOverNetwork) {
  const std::string du = make_du(1e8);
  double done_at = -1.0;
  pds_.replicate(du, "cloud", [&]() { done_at = engine_.now(); });
  engine_.run();
  // 0.1 s latency + 1e8 / 1e8 B/s = 1.1 s.
  EXPECT_NEAR(done_at, 1.1, 1e-6);
  EXPECT_DOUBLE_EQ(pds_.bytes_on_site(du, "cloud"), 1e8);
  EXPECT_EQ(pds_.replica_sites(du).size(), 2u);
  EXPECT_EQ(pds_.transfers_started(), 1u);
  EXPECT_DOUBLE_EQ(pds_.bytes_transferred(), 1e8);
}

TEST_F(PilotDataTest, ReplicateToExistingSiteIsInstant) {
  const std::string du = make_du(1e8);
  bool done = false;
  pds_.replicate(du, "hpc", [&]() { done = true; });
  EXPECT_TRUE(done);  // synchronous: already resident
  EXPECT_EQ(pds_.transfers_started(), 0u);
}

TEST_F(PilotDataTest, ConcurrentStageRequestsCoalesce) {
  const std::string du = make_du(1e8);
  int fired = 0;
  pds_.stage_to_site(du, "cloud", [&]() { ++fired; });
  pds_.stage_to_site(du, "cloud", [&]() { ++fired; });
  pds_.stage_to_site(du, "cloud", [&]() { ++fired; });
  engine_.run();
  EXPECT_EQ(fired, 3);                    // every caller notified
  EXPECT_EQ(pds_.transfers_started(), 1u);  // single transfer
}

TEST_F(PilotDataTest, RemoveReplicaFreesCapacity) {
  const std::string du = make_du(1e8);
  pds_.replicate(du, "cloud", nullptr);
  engine_.run();
  pds_.remove_replica(du, "hpc");
  EXPECT_DOUBLE_EQ(pds_.bytes_on_site(du, "hpc"), 0.0);
  EXPECT_DOUBLE_EQ(pds_.data_pilot_free_bytes("hpc"), 1e10);
}

TEST_F(PilotDataTest, LastReplicaProtected) {
  const std::string du = make_du(1e8);
  EXPECT_THROW(pds_.remove_replica(du, "hpc"), pa::InvalidArgument);
}

TEST_F(PilotDataTest, RegisterOutputCreatesPlaceholder) {
  pds_.register_output("result-1", "cloud");
  EXPECT_EQ(pds_.state("result-1"), DataUnitState::kResident);
  EXPECT_DOUBLE_EQ(pds_.total_bytes("result-1"), 0.0);
}

TEST_F(PilotDataTest, RegisterOutputOnExistingAddsReplica) {
  const std::string du = make_du(1e6);
  pds_.register_output(du, "cloud");
  EXPECT_EQ(pds_.replica_sites(du).size(), 2u);
}

TEST_F(PilotDataTest, PlacementPoliciesCoverSites) {
  std::vector<std::string> dus;
  for (int i = 0; i < 8; ++i) {
    dus.push_back(make_du(1e6));
  }
  const auto chosen =
      pds_.place_replicas(dus, PlacementPolicy::kRoundRobin);
  ASSERT_EQ(chosen.size(), 8u);
  int cloud_count = 0;
  for (const auto& s : chosen) {
    cloud_count += s == "cloud" ? 1 : 0;
  }
  EXPECT_EQ(cloud_count, 4);  // round robin over two sites
}

TEST_F(PilotDataTest, RandomPlacementDeterministicPerSeed) {
  std::vector<std::string> dus;
  for (int i = 0; i < 6; ++i) {
    dus.push_back(make_du(1e6));
  }
  const auto a = pds_.place_replicas(dus, PlacementPolicy::kRandom, 5);
  // Same seed, fresh units (already replicated ones return instantly but
  // site choice repeats deterministically).
  EXPECT_EQ(a, pds_.place_replicas(dus, PlacementPolicy::kRandom, 5));
}

TEST_F(PilotDataTest, LeastLoadedPlacementBalances) {
  // Preload hpc so cloud is emptier.
  make_du(5e9, "hpc");
  std::vector<std::string> dus = {make_du(1e6)};
  const auto chosen =
      pds_.place_replicas(dus, PlacementPolicy::kLeastLoaded);
  EXPECT_EQ(chosen[0], "cloud");
}

TEST_F(PilotDataTest, EnsureReplicationCreatesMissingCopies) {
  const std::string du = make_du(1e8);
  bool done = false;
  const std::size_t started =
      pds_.ensure_replication(du, 2, [&]() { done = true; });
  EXPECT_EQ(started, 1u);
  EXPECT_FALSE(done);  // transfer still in flight
  engine_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(pds_.replica_count(du), 2u);
}

TEST_F(PilotDataTest, EnsureReplicationIdempotentWhenSatisfied) {
  const std::string du = make_du(1e8);
  bool done = false;
  EXPECT_EQ(pds_.ensure_replication(du, 1, [&]() { done = true; }), 0u);
  EXPECT_TRUE(done);  // synchronous completion
  EXPECT_EQ(pds_.replica_count(du), 1u);
}

TEST_F(PilotDataTest, EnsureReplicationBeyondSitesRejected) {
  const std::string du = make_du(1e8);
  EXPECT_THROW(pds_.ensure_replication(du, 3), pa::ResourceError);
  EXPECT_THROW(pds_.ensure_replication(du, 0), pa::InvalidArgument);
}

TEST_F(PilotDataTest, EnsureReplicationSurvivesReplicaLoss) {
  const std::string du = make_du(1e8);
  pds_.ensure_replication(du, 2);
  engine_.run();
  pds_.remove_replica(du, "hpc");
  EXPECT_EQ(pds_.replica_count(du), 1u);
  pds_.ensure_replication(du, 2);
  engine_.run();
  EXPECT_EQ(pds_.replica_count(du), 2u);
}

TEST_F(PilotDataTest, StagingTimesRecorded) {
  const std::string du = make_du(1e8);
  pds_.replicate(du, "cloud", nullptr);
  engine_.run();
  EXPECT_EQ(pds_.staging_times().count(), 1u);
}

TEST_F(PilotDataTest, ErrorsOnUnknownEntities) {
  EXPECT_THROW(pds_.total_bytes("ghost"), pa::NotFound);
  EXPECT_THROW(pds_.replicate("ghost", "hpc", nullptr), pa::NotFound);
  EXPECT_THROW(pds_.data_pilot_free_bytes("mars"), pa::NotFound);
  DataUnitDescription d;
  d.bytes = 1.0;
  d.initial_site = "mars";
  EXPECT_THROW(pds_.submit_data_unit(d), pa::NotFound);
}

TEST_F(PilotDataTest, DataPilotRequiresStorage) {
  EXPECT_THROW(pds_.add_data_pilot("mars", 1e6), pa::InvalidArgument);
}

TEST_F(PilotDataTest, DataPilotCannotExceedStorage) {
  infra::StorageConfig tiny;
  tiny.name = "ssd";
  tiny.site = "edge";
  tiny.capacity_bytes = 1e6;
  pds_.register_storage(
      std::make_shared<infra::StorageSystem>(engine_, tiny));
  EXPECT_THROW(pds_.add_data_pilot("edge", 1e9), pa::ResourceError);
}

}  // namespace
}  // namespace pa::data
