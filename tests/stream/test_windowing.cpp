#include "pa/stream/windowing.h"

#include <gtest/gtest.h>

#include "pa/common/error.h"

namespace pa::stream {
namespace {

Message msg(double t, std::string key = "k") {
  Message m;
  m.produce_time = t;
  m.key = std::move(key);
  return m;
}

TEST(TumblingWindow, AssignsByEventTime) {
  TumblingWindow win(10.0);
  EXPECT_TRUE(win.add(msg(1.0), 5.0).empty());
  EXPECT_TRUE(win.add(msg(9.9), 7.0).empty());
  // Crossing into the next window closes the first.
  const auto emitted = win.add(msg(10.1), 1.0);
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].index, 0);
  EXPECT_DOUBLE_EQ(emitted[0].start, 0.0);
  EXPECT_DOUBLE_EQ(emitted[0].end, 10.0);
  const KeyAggregate& agg = emitted[0].per_key.at("k");
  EXPECT_EQ(agg.count, 2u);
  EXPECT_DOUBLE_EQ(agg.sum, 12.0);
  EXPECT_DOUBLE_EQ(agg.min, 5.0);
  EXPECT_DOUBLE_EQ(agg.max, 7.0);
  EXPECT_DOUBLE_EQ(agg.mean(), 6.0);
}

TEST(TumblingWindow, PerKeySeparation) {
  TumblingWindow win(10.0);
  win.add(msg(1.0, "a"), 1.0);
  win.add(msg(2.0, "b"), 2.0);
  win.add(msg(3.0, "a"), 3.0);
  const auto emitted = win.add(msg(15.0, "c"), 0.0);
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].per_key.size(), 2u);
  EXPECT_EQ(emitted[0].per_key.at("a").count, 2u);
  EXPECT_EQ(emitted[0].per_key.at("b").count, 1u);
}

TEST(TumblingWindow, SkippedWindowsEmitOnlyExisting) {
  TumblingWindow win(1.0);
  win.add(msg(0.5), 1.0);
  // Jump far ahead: only window 0 existed; it must be emitted once.
  const auto emitted = win.add(msg(100.5), 2.0);
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].index, 0);
  EXPECT_EQ(win.open_windows(), 1u);  // the window containing t=100.5
}

TEST(TumblingWindow, OutOfOrderWithinLatenessAccepted) {
  TumblingWindow win(10.0, /*allowed_lateness=*/5.0);
  win.add(msg(1.0), 1.0);
  win.add(msg(12.0), 2.0);  // watermark 12 < 10 + 5: window 0 still open
  EXPECT_EQ(win.open_windows(), 2u);
  const auto emitted = win.add(msg(3.0), 3.0);  // late but within lateness
  EXPECT_TRUE(emitted.empty());
  EXPECT_EQ(win.late_dropped(), 0u);
  const auto closed = win.add(msg(16.0), 0.0);  // watermark 16 >= 15
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].per_key.at("k").count, 2u);  // both on-time + late
}

TEST(TumblingWindow, TooLateDropped) {
  TumblingWindow win(10.0, 0.0);
  win.add(msg(1.0), 1.0);
  win.add(msg(25.0), 2.0);  // closes window 0
  const auto emitted = win.add(msg(2.0), 3.0);  // window 0 already closed
  EXPECT_TRUE(emitted.empty());
  EXPECT_EQ(win.late_dropped(), 1u);
}

TEST(TumblingWindow, FlushEmitsOpenWindows) {
  TumblingWindow win(10.0);
  win.add(msg(1.0), 1.0);
  win.add(msg(11.0), 2.0);
  const auto flushed = win.flush();
  // Window 0 closed when watermark crossed 10... no: lateness 0 and
  // watermark 11 >= 10 closed window 0 already at add(11).
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].index, 1);
  EXPECT_EQ(win.open_windows(), 0u);
}

TEST(TumblingWindow, WatermarkTracksMaxTime) {
  TumblingWindow win(10.0, 100.0);
  win.add(msg(5.0), 1.0);
  win.add(msg(3.0), 1.0);  // older message does not move the watermark
  EXPECT_DOUBLE_EQ(win.watermark(), 5.0);
}

TEST(TumblingWindow, NegativeEventTimesSupported) {
  // Offsets from an arbitrary epoch can be negative; floor division must
  // still bucket correctly.
  TumblingWindow win(10.0);
  win.add(msg(-5.0), 1.0);
  const auto emitted = win.add(msg(6.0), 2.0);
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].index, -1);
  EXPECT_DOUBLE_EQ(emitted[0].start, -10.0);
}

TEST(TumblingWindow, Validation) {
  EXPECT_THROW(TumblingWindow(0.0), pa::InvalidArgument);
  EXPECT_THROW(TumblingWindow(1.0, -1.0), pa::InvalidArgument);
}

TEST(MergeWindows, CombinesPerKey) {
  WindowResult a;
  a.index = 3;
  a.per_key["x"].add(1.0);
  a.per_key["x"].add(3.0);
  WindowResult b;
  b.index = 3;
  b.per_key["x"].add(5.0);
  b.per_key["y"].add(2.0);
  const WindowResult merged = merge_windows({a, b});
  EXPECT_EQ(merged.per_key.at("x").count, 3u);
  EXPECT_DOUBLE_EQ(merged.per_key.at("x").sum, 9.0);
  EXPECT_DOUBLE_EQ(merged.per_key.at("x").min, 1.0);
  EXPECT_DOUBLE_EQ(merged.per_key.at("x").max, 5.0);
  EXPECT_EQ(merged.per_key.at("y").count, 1u);
}

TEST(MergeWindows, IndexMismatchRejected) {
  WindowResult a;
  a.index = 1;
  WindowResult b;
  b.index = 2;
  EXPECT_THROW(merge_windows({a, b}), pa::InvalidArgument);
  EXPECT_THROW(merge_windows({}), pa::InvalidArgument);
}

TEST(KeyAggregate, EmptyMeanIsZero) {
  KeyAggregate agg;
  EXPECT_DOUBLE_EQ(agg.mean(), 0.0);
}

}  // namespace
}  // namespace pa::stream
