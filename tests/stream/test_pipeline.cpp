#include "pa/stream/pilot_streaming.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "pa/core/pilot_compute_service.h"
#include "pa/rt/local_runtime.h"
#include "pa/stream/producer.h"

namespace pa::stream {
namespace {

TEST(Producer, BatchesAndFlushes) {
  Broker broker;
  broker.create_topic("t", 2);
  ProducerConfig cfg;
  cfg.batch_size = 10;
  Producer producer(broker, "t", cfg);
  for (int i = 0; i < 9; ++i) {
    producer.send("", "x");
  }
  EXPECT_EQ(broker.stats("t").messages_in, 0u);  // still buffered
  producer.send("", "x");                        // 10th triggers flush
  EXPECT_EQ(broker.stats("t").messages_in, 10u);
  producer.send("", "y");
  producer.flush();
  EXPECT_EQ(broker.stats("t").messages_in, 11u);
  EXPECT_EQ(producer.messages_sent(), 11u);
  EXPECT_EQ(producer.bytes_sent(), 11u);
}

TEST(Producer, DestructorFlushes) {
  Broker broker;
  broker.create_topic("t", 1);
  {
    Producer producer(broker, "t");
    producer.send("", "abc");
  }
  EXPECT_EQ(broker.stats("t").messages_in, 1u);
}

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime_ = std::make_unique<rt::LocalRuntime>();
    service_ = std::make_unique<core::PilotComputeService>(*runtime_);
    core::PilotDescription pd;
    pd.resource_url = "local://host";
    pd.nodes = 6;
    pd.walltime = 1e9;
    service_->submit_pilot(pd);
  }

  std::unique_ptr<rt::LocalRuntime> runtime_;
  std::unique_ptr<core::PilotComputeService> service_;
  Broker broker_;
};

TEST_F(PipelineTest, AllMessagesConsumedExactlyOnceByCount) {
  PilotStreamingService streaming(*service_, broker_);
  StreamPipelineConfig cfg;
  cfg.topic = "frames";
  cfg.partitions = 4;
  cfg.producers = 2;
  cfg.consumers = 2;
  cfg.messages_per_producer = 2000;
  cfg.message_bytes = 128;
  const StreamPipelineResult result = streaming.run_pipeline(cfg);
  EXPECT_EQ(result.messages, 4000u);
  EXPECT_EQ(result.bytes, 4000u * 128u);
  EXPECT_GT(result.throughput_msgs_per_s, 0.0);
  EXPECT_EQ(result.e2e_latency.count(), 4000u);
}

TEST_F(PipelineTest, HandlerInvokedPerMessage) {
  PilotStreamingService streaming(*service_, broker_);
  auto handled = std::make_shared<std::atomic<int>>(0);
  StreamPipelineConfig cfg;
  cfg.topic = "t2";
  cfg.partitions = 2;
  cfg.producers = 1;
  cfg.consumers = 1;
  cfg.messages_per_producer = 500;
  cfg.handler = [handled](const Message&) { handled->fetch_add(1); };
  streaming.run_pipeline(cfg);
  EXPECT_EQ(handled->load(), 500);
}

TEST_F(PipelineTest, SingleCorePilotStillCompletes) {
  // Producers run first, then consumers drain — no deadlock even with
  // fewer cores than units.
  rt::LocalRuntime runtime;
  core::PilotComputeService service(runtime);
  core::PilotDescription pd;
  pd.resource_url = "local://tiny";
  pd.nodes = 1;
  pd.walltime = 1e9;
  service.submit_pilot(pd);
  Broker broker;
  PilotStreamingService streaming(service, broker);
  StreamPipelineConfig cfg;
  cfg.topic = "t";
  cfg.partitions = 2;
  cfg.producers = 1;
  cfg.consumers = 2;
  cfg.messages_per_producer = 200;
  const auto result = streaming.run_pipeline(cfg);
  EXPECT_EQ(result.messages, 200u);
}

TEST_F(PipelineTest, RateLimitedProducerStretchesDuration) {
  PilotStreamingService streaming(*service_, broker_);
  StreamPipelineConfig cfg;
  cfg.topic = "t3";
  cfg.partitions = 1;
  cfg.producers = 1;
  cfg.consumers = 1;
  cfg.messages_per_producer = 50;
  cfg.produce_rate = 500.0;  // 50 msgs at 500/s -> >= 0.1 s
  const auto result = streaming.run_pipeline(cfg);
  EXPECT_GE(result.duration_seconds, 0.09);
  EXPECT_EQ(result.messages, 50u);
}

TEST_F(PipelineTest, ConsecutiveRunsIndependent) {
  PilotStreamingService streaming(*service_, broker_);
  StreamPipelineConfig cfg;
  cfg.topic = "t4";
  cfg.partitions = 2;
  cfg.producers = 1;
  cfg.consumers = 1;
  cfg.messages_per_producer = 100;
  const auto r1 = streaming.run_pipeline(cfg);
  const auto r2 = streaming.run_pipeline(cfg);
  EXPECT_EQ(r1.messages, 100u);
  EXPECT_EQ(r2.messages, 100u);  // fresh group: does not re-read r1's data
}

TEST_F(PipelineTest, InvalidConfigRejected) {
  PilotStreamingService streaming(*service_, broker_);
  StreamPipelineConfig cfg;
  cfg.producers = 0;
  EXPECT_THROW(streaming.run_pipeline(cfg), pa::InvalidArgument);
}

}  // namespace
}  // namespace pa::stream
