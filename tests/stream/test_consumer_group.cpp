#include "pa/stream/consumer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <thread>

namespace pa::stream {
namespace {

class ConsumerGroupTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_.create_topic("t", 6);
    for (int i = 0; i < 60; ++i) {
      broker_.produce_to("t", i % 6, "", std::to_string(i));
    }
  }

  Broker broker_;
};

TEST_F(ConsumerGroupTest, SingleConsumerOwnsAllPartitions) {
  GroupCoordinator coord(broker_);
  Consumer c(broker_, coord, "t", "g", "m1");
  const auto batch = c.poll(1000);
  EXPECT_EQ(batch.size(), 60u);
  EXPECT_EQ(c.assigned_partitions().size(), 6u);
}

TEST_F(ConsumerGroupTest, TwoConsumersSplitPartitions) {
  GroupCoordinator coord(broker_);
  Consumer a(broker_, coord, "t", "g", "m1");
  Consumer b(broker_, coord, "t", "g", "m2");
  const auto batch_a = a.poll(1000);
  const auto batch_b = b.poll(1000);
  EXPECT_EQ(a.assigned_partitions().size(), 3u);
  EXPECT_EQ(b.assigned_partitions().size(), 3u);
  EXPECT_EQ(batch_a.size() + batch_b.size(), 60u);
  // Disjoint assignments.
  std::set<int> pa(a.assigned_partitions().begin(),
                   a.assigned_partitions().end());
  for (int p : b.assigned_partitions()) {
    EXPECT_EQ(pa.count(p), 0u);
  }
}

TEST_F(ConsumerGroupTest, UnevenPartitionSplit) {
  GroupCoordinator coord(broker_);
  Consumer a(broker_, coord, "t", "g", "m1");
  Consumer b(broker_, coord, "t", "g", "m2");
  Consumer c(broker_, coord, "t", "g", "m3");
  Consumer d(broker_, coord, "t", "g", "m4");
  // Assignments materialize on the first poll.
  a.poll(1);
  b.poll(1);
  c.poll(1);
  d.poll(1);
  // 6 partitions over 4 members: sizes 2,2,1,1.
  std::vector<std::size_t> sizes = {a.assigned_partitions().size(),
                                    b.assigned_partitions().size(),
                                    c.assigned_partitions().size(),
                                    d.assigned_partitions().size()};
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 1, 2, 2}));
}

TEST_F(ConsumerGroupTest, NoMessageLostOrDuplicatedAcrossGroup) {
  GroupCoordinator coord(broker_);
  Consumer a(broker_, coord, "t", "g", "m1");
  Consumer b(broker_, coord, "t", "g", "m2");
  std::multiset<std::string> seen;
  for (const auto& m : a.poll(1000)) {
    seen.insert(m.payload);
  }
  for (const auto& m : b.poll(1000)) {
    seen.insert(m.payload);
  }
  EXPECT_EQ(seen.size(), 60u);
  for (int i = 0; i < 60; ++i) {
    EXPECT_EQ(seen.count(std::to_string(i)), 1u) << i;
  }
}

TEST_F(ConsumerGroupTest, CommitPersistsAcrossRebalance) {
  GroupCoordinator coord(broker_);
  {
    Consumer a(broker_, coord, "t", "g", "m1");
    a.poll(1000);
    a.commit();
  }  // m1 leaves; generation bumps
  Consumer b(broker_, coord, "t", "g", "m2");
  const auto batch = b.poll(1000);
  EXPECT_TRUE(batch.empty());  // everything was committed by m1
  EXPECT_EQ(coord.lag("t", "g"), 0u);
}

TEST_F(ConsumerGroupTest, UncommittedMessagesRedelivered) {
  GroupCoordinator coord(broker_);
  {
    Consumer a(broker_, coord, "t", "g", "m1");
    const auto batch = a.poll(1000);
    EXPECT_EQ(batch.size(), 60u);
    // no commit: at-least-once means redelivery after the member leaves
  }
  Consumer b(broker_, coord, "t", "g", "m2");
  EXPECT_EQ(b.poll(1000).size(), 60u);
}

TEST_F(ConsumerGroupTest, LagTracksConsumption) {
  GroupCoordinator coord(broker_);
  EXPECT_EQ(coord.lag("t", "g"), 60u);
  Consumer a(broker_, coord, "t", "g", "m1");
  a.poll(25);
  a.commit();
  EXPECT_EQ(coord.lag("t", "g"), 35u);
  a.poll(1000);
  a.commit();
  EXPECT_EQ(coord.lag("t", "g"), 0u);
}

TEST_F(ConsumerGroupTest, GenerationBumpsOnMembershipChange) {
  GroupCoordinator coord(broker_);
  const auto g0 = coord.generation("t", "g");
  Consumer a(broker_, coord, "t", "g", "m1");
  const auto g1 = coord.generation("t", "g");
  EXPECT_GT(g1, g0);
  {
    Consumer b(broker_, coord, "t", "g", "m2");
    EXPECT_GT(coord.generation("t", "g"), g1);
  }
  EXPECT_GT(coord.generation("t", "g"), g1 + 1);  // leave also bumps
}

TEST_F(ConsumerGroupTest, ConsumerPicksUpNewAssignmentAfterRebalance) {
  GroupCoordinator coord(broker_);
  Consumer a(broker_, coord, "t", "g", "m1");
  a.poll(1);  // assignment: all 6 partitions
  EXPECT_EQ(a.assigned_partitions().size(), 6u);
  Consumer b(broker_, coord, "t", "g", "m2");
  a.poll(1);  // refresh
  EXPECT_EQ(a.assigned_partitions().size(), 3u);
}

TEST_F(ConsumerGroupTest, IndependentGroupsSeeAllMessages) {
  GroupCoordinator coord(broker_);
  Consumer a(broker_, coord, "t", "g1", "m1");
  Consumer b(broker_, coord, "t", "g2", "m1");
  EXPECT_EQ(a.poll(1000).size(), 60u);
  EXPECT_EQ(b.poll(1000).size(), 60u);
}

TEST_F(ConsumerGroupTest, DuplicateMemberRejected) {
  GroupCoordinator coord(broker_);
  coord.join("t", "g", "m1");
  EXPECT_THROW(coord.join("t", "g", "m1"), pa::InvalidArgument);
}

TEST_F(ConsumerGroupTest, PollZeroReturnsEmpty) {
  GroupCoordinator coord(broker_);
  Consumer a(broker_, coord, "t", "g", "m1");
  EXPECT_TRUE(a.poll(0).empty());
}

TEST_F(ConsumerGroupTest, MessagesConsumedCounter) {
  GroupCoordinator coord(broker_);
  Consumer a(broker_, coord, "t", "g", "m1");
  a.poll(10);
  a.poll(10);
  EXPECT_EQ(a.messages_consumed(), 20u);
}

TEST_F(ConsumerGroupTest, ConcurrentConsumersDrainEverythingOnce) {
  GroupCoordinator coord(broker_);
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t]() {
      Consumer c(broker_, coord, "t", "g", "m" + std::to_string(t));
      // Poll until quiet; count consumed.
      int quiet = 0;
      while (quiet < 3) {
        const auto batch = c.poll(16);
        if (batch.empty()) {
          ++quiet;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        } else {
          quiet = 0;
          total.fetch_add(batch.size());
          c.commit();
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // With rebalances mid-run, at-least-once semantics permit re-delivery of
  // uncommitted batches, but never loss.
  EXPECT_GE(total.load(), 60u);
}

}  // namespace
}  // namespace pa::stream
