#include "pa/stream/broker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "pa/common/error.h"

namespace pa::stream {
namespace {

TEST(Broker, CreateAndQueryTopics) {
  Broker broker;
  broker.create_topic("frames", 4);
  EXPECT_TRUE(broker.has_topic("frames"));
  EXPECT_FALSE(broker.has_topic("other"));
  EXPECT_EQ(broker.partition_count("frames"), 4);
  EXPECT_EQ(broker.topic_names(), std::vector<std::string>{"frames"});
}

TEST(Broker, DuplicateTopicRejected) {
  Broker broker;
  broker.create_topic("t", 1);
  EXPECT_THROW(broker.create_topic("t", 1), pa::InvalidArgument);
  EXPECT_THROW(broker.create_topic("empty", 0), pa::InvalidArgument);
}

TEST(Broker, UnknownTopicThrows) {
  Broker broker;
  std::vector<Message> out;
  EXPECT_THROW(broker.produce("ghost", "", "x"), pa::NotFound);
  EXPECT_THROW(broker.fetch("ghost", 0, 0, 1, out), pa::NotFound);
}

TEST(Broker, ProduceFetchRoundTrip) {
  Broker broker;
  broker.create_topic("t", 1);
  broker.produce_to("t", 0, "k1", "hello");
  broker.produce_to("t", 0, "k2", "world");
  std::vector<Message> out;
  const auto next = broker.fetch("t", 0, 0, 10, out);
  EXPECT_EQ(next, 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].payload, "hello");
  EXPECT_EQ(out[0].offset, 0u);
  EXPECT_EQ(out[1].payload, "world");
  EXPECT_EQ(out[1].offset, 1u);
}

TEST(Broker, FetchRespectsMaxMessages) {
  Broker broker;
  broker.create_topic("t", 1);
  for (int i = 0; i < 10; ++i) {
    broker.produce_to("t", 0, "", std::to_string(i));
  }
  std::vector<Message> out;
  const auto next = broker.fetch("t", 0, 0, 3, out);
  EXPECT_EQ(next, 3u);
  EXPECT_EQ(out.size(), 3u);
}

TEST(Broker, FetchFromMiddle) {
  Broker broker;
  broker.create_topic("t", 1);
  for (int i = 0; i < 5; ++i) {
    broker.produce_to("t", 0, "", std::to_string(i));
  }
  std::vector<Message> out;
  broker.fetch("t", 0, 3, 10, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].payload, "3");
}

TEST(Broker, EmptyFetchReturnsSameOffset) {
  Broker broker;
  broker.create_topic("t", 1);
  std::vector<Message> out;
  EXPECT_EQ(broker.fetch("t", 0, 0, 10, out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(Broker, KeyedMessagesLandInSamePartition) {
  Broker broker;
  broker.create_topic("t", 8);
  std::set<int> partitions;
  for (int i = 0; i < 20; ++i) {
    partitions.insert(broker.produce("t", "stable-key", "x").first);
  }
  EXPECT_EQ(partitions.size(), 1u);
}

TEST(Broker, UnkeyedMessagesSpreadAcrossPartitions) {
  Broker broker;
  broker.create_topic("t", 4);
  std::set<int> partitions;
  for (int i = 0; i < 16; ++i) {
    partitions.insert(broker.produce("t", "", "x").first);
  }
  EXPECT_EQ(partitions.size(), 4u);
}

TEST(Broker, PerPartitionFifoOrder) {
  Broker broker;
  broker.create_topic("t", 2);
  for (int i = 0; i < 100; ++i) {
    broker.produce_to("t", i % 2, "", std::to_string(i));
  }
  for (int p = 0; p < 2; ++p) {
    std::vector<Message> out;
    broker.fetch("t", p, 0, 1000, out);
    int last = -1;
    for (const auto& m : out) {
      const int v = std::stoi(m.payload);
      EXPECT_GT(v, last);
      last = v;
    }
  }
}

TEST(Broker, EndAndBeginOffsets) {
  Broker broker;
  broker.create_topic("t", 1);
  EXPECT_EQ(broker.end_offset("t", 0), 0u);
  EXPECT_EQ(broker.begin_offset("t", 0), 0u);
  broker.produce_to("t", 0, "", "a");
  broker.produce_to("t", 0, "", "b");
  EXPECT_EQ(broker.end_offset("t", 0), 2u);
}

TEST(Broker, TruncateEnforcesRetention) {
  Broker broker;
  broker.create_topic("t", 1);
  for (int i = 0; i < 10; ++i) {
    broker.produce_to("t", 0, "", std::to_string(i));
  }
  broker.truncate("t", 0, 5);
  EXPECT_EQ(broker.begin_offset("t", 0), 5u);
  std::vector<Message> out;
  EXPECT_THROW(broker.fetch("t", 0, 2, 10, out), pa::NotFound);
  broker.fetch("t", 0, 5, 10, out);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].payload, "5");
}

TEST(Broker, StatsAccumulate) {
  Broker broker;
  broker.create_topic("t", 2);
  broker.produce("t", "", "12345");
  broker.produce("t", "", "678");
  const TopicStats stats = broker.stats("t");
  EXPECT_EQ(stats.messages_in, 2u);
  EXPECT_EQ(stats.bytes_in, 8u);
}

TEST(Broker, PartitionOutOfRangeRejected) {
  Broker broker;
  broker.create_topic("t", 2);
  EXPECT_THROW(broker.produce_to("t", 2, "", "x"), pa::InvalidArgument);
  EXPECT_THROW(broker.produce_to("t", -1, "", "x"), pa::InvalidArgument);
}

TEST(Broker, ConcurrentProducersPreserveCountAndOrder) {
  Broker broker;
  broker.create_topic("t", 4);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&broker, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        // Each producer keys by its own id: its messages stay ordered
        // within one partition.
        broker.produce("t", "producer-" + std::to_string(t),
                       std::to_string(i));
      }
    });
  }
  for (auto& th : producers) {
    th.join();
  }
  EXPECT_EQ(broker.stats("t").messages_in,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  // Per-producer order within its partition.
  for (int p = 0; p < 4; ++p) {
    std::vector<Message> out;
    broker.fetch("t", p, 0, 100000, out);
    std::map<std::string, int> last_seen;
    for (const auto& m : out) {
      const int v = std::stoi(m.payload);
      const auto it = last_seen.find(m.key);
      if (it != last_seen.end()) {
        EXPECT_GT(v, it->second) << "order violated for " << m.key;
      }
      last_seen[m.key] = v;
    }
  }
}

TEST(Broker, ProduceTimestampsMonotonicPerPartition) {
  Broker broker;
  broker.create_topic("t", 1);
  for (int i = 0; i < 10; ++i) {
    broker.produce_to("t", 0, "", "x");
  }
  std::vector<Message> out;
  broker.fetch("t", 0, 0, 100, out);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i].produce_time, out[i - 1].produce_time);
  }
}

TEST(Broker, ExportsPerTopicThroughputMetrics) {
  Broker broker;
  obs::MetricsRegistry registry;
  broker.attach_metrics(&registry);
  broker.create_topic("frames", 2);
  broker.create_topic("results", 1);
  broker.produce("frames", "", "aaaa");     // 4 bytes
  broker.produce("frames", "k", "bbbbbb");  // 6 bytes
  broker.produce("results", "", "cc");      // 2 bytes

  EXPECT_EQ(registry.counter("stream.frames.messages_in").value(), 2u);
  EXPECT_EQ(registry.counter("stream.frames.bytes_in").value(), 10u);
  EXPECT_EQ(registry.counter("stream.results.messages_in").value(), 1u);
  EXPECT_EQ(registry.counter("stream.results.bytes_in").value(), 2u);

  broker.export_backlog_gauges();
  EXPECT_DOUBLE_EQ(registry.gauge("stream.frames.backlog").value(), 2.0);
  EXPECT_DOUBLE_EQ(registry.gauge("stream.results.backlog").value(), 1.0);

  // Consumed/retained depth: truncation shrinks the backlog gauge.
  broker.truncate("results", 0, 1);
  broker.export_backlog_gauges();
  EXPECT_DOUBLE_EQ(registry.gauge("stream.results.backlog").value(), 0.0);

  // Detach: produces stop counting.
  broker.attach_metrics(nullptr);
  broker.produce("frames", "", "x");
  EXPECT_EQ(registry.counter("stream.frames.messages_in").value(), 2u);
}

}  // namespace
}  // namespace pa::stream
