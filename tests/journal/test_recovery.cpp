#include "pa/journal/recovery.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "pa/core/pilot_compute_service.h"
#include "pa/infra/batch_cluster.h"
#include "pa/journal/journal.h"
#include "pa/journal/reader.h"
#include "pa/journal/service_journal.h"
#include "pa/obs/metrics.h"
#include "pa/rt/local_runtime.h"
#include "pa/rt/sim_runtime.h"
#include "pa/saga/session.h"

#include "journal_test_util.h"

namespace pa::journal {
namespace {

using testing::TempDir;

/// Simulated stack with an attached journal — the full tentpole loop:
/// run, "crash" (drop the world), recover from disk, resume on a fresh
/// world.
class RecoveryTest : public ::testing::Test {
 protected:
  struct World {
    sim::Engine engine;
    saga::Session session;
    std::shared_ptr<infra::BatchCluster> cluster;
    std::unique_ptr<rt::SimRuntime> runtime;
    // Journal + sink are declared before the service so they outlive its
    // destructor (shutdown emits final journal records through the sink).
    std::unique_ptr<Journal> journal;
    std::unique_ptr<ServiceJournal> sink;
    std::unique_ptr<core::PilotComputeService> service;

    explicit World(const std::string& journal_dir,
                   JournalConfig config = {},
                   const ManagerImage* resume_from = nullptr) {
      infra::BatchClusterConfig cfg;
      cfg.name = "hpc-a";
      cfg.num_nodes = 4;
      cfg.node.cores = 8;
      cluster = std::make_shared<infra::BatchCluster>(engine, cfg);
      session.register_resource("slurm://hpc-a", cluster);
      runtime = std::make_unique<rt::SimRuntime>(engine, session);
      journal = std::make_unique<Journal>(journal_dir, config, resume_from);
      sink = std::make_unique<ServiceJournal>(*journal);
      service =
          std::make_unique<core::PilotComputeService>(*runtime, "backfill");
      service->attach_journal(sink.get());
    }

    /// Simulates the manager dying right now: pending records are made
    /// durable, then nothing further is journaled (the graceful teardown
    /// below must not look like part of the history).
    void crash() {
      journal->flush();
      service->attach_journal(nullptr);
    }
  };

  static core::PilotDescription pilot_desc(int nodes = 2) {
    core::PilotDescription d;
    d.resource_url = "slurm://hpc-a";
    d.nodes = nodes;
    d.walltime = 3600.0;
    return d;
  }

  static core::ComputeUnitDescription unit_desc(double duration = 10.0) {
    core::ComputeUnitDescription d;
    d.duration = duration;
    d.cores = 1;
    return d;
  }

  TempDir dir_;
};

TEST_F(RecoveryTest, JournalImageMatchesReplayedWal) {
  {
    World w(dir_.path());
    w.service->submit_pilot(pilot_desc());
    for (int i = 0; i < 8; ++i) {
      w.service->submit_unit(unit_desc(5.0));
    }
    w.service->wait_all_units();
    w.journal->flush();

    // Replaying the wal from scratch must land on the facade's image.
    ManagerImage replayed;
    for (const Record& r : read_journal(Journal::wal_path(dir_.path())).records) {
      replayed.apply(r);
    }
    EXPECT_EQ(replayed, w.journal->image());
    EXPECT_EQ(replayed.terminal_units(), 8u);
  }
}

TEST_F(RecoveryTest, RecoverAfterCleanRunReportsAllTerminal) {
  {
    World w(dir_.path());
    w.service->submit_pilot(pilot_desc());
    for (int i = 0; i < 5; ++i) {
      w.service->submit_unit(unit_desc(2.0));
    }
    w.service->wait_all_units();
  }  // journal closed (flushes) with the world

  obs::MetricsRegistry metrics;
  RecoveryCoordinator coordinator(dir_.path());
  coordinator.set_metrics(&metrics);
  const RecoveryResult result = coordinator.recover();
  EXPECT_FALSE(result.torn_tail);
  EXPECT_EQ(result.image.units().size(), 5u);
  EXPECT_EQ(result.image.terminal_units(), 5u);
  EXPECT_GT(result.records_replayed, 0u);
  EXPECT_GT(metrics.gauge("journal.recovery_seconds").value(), 0.0);

  const ResumePlan plan = make_resume_plan(result.image);
  EXPECT_EQ(plan.completed_units.size(), 5u);
  EXPECT_TRUE(plan.units.empty());  // nothing re-runs: exactly-once
}

TEST_F(RecoveryTest, MidFlightCrashResumesInFlightUnitsOnFreshWorld) {
  {
    World w(dir_.path());
    w.service->submit_pilot(pilot_desc());
    for (int i = 0; i < 6; ++i) {
      w.service->submit_unit(unit_desc(100.0));
    }
    // Run long enough that units are RUNNING, then "crash": drop the
    // world without waiting for completion.
    w.engine.run_until(20.0);
    w.crash();
  }

  RecoveryCoordinator coordinator(dir_.path());
  const RecoveryResult result = coordinator.recover();
  EXPECT_EQ(result.image.units().size(), 6u);
  EXPECT_EQ(result.image.terminal_units(), 0u);

  const ResumePlan plan = make_resume_plan(result.image);
  EXPECT_EQ(plan.pilots.size(), 1u);
  EXPECT_EQ(plan.units.size(), 6u);
  EXPECT_GT(plan.in_flight_requeued, 0u);

  // Resume on a brand-new simulated world, journaling to a fresh journal
  // seeded with the recovered image.
  TempDir dir2;
  World w2(dir2.path(), JournalConfig{}, &result.image);
  const auto resumed = resume(*w2.service, plan);
  EXPECT_EQ(resumed.size(), 6u);
  w2.service->wait_all_units();
  EXPECT_EQ(w2.service->metrics().units_done, 6u);
  // The resumed journal's image holds history from both lives.
  const ManagerImage after = w2.journal->image();
  EXPECT_EQ(after.units().size(), 12u);  // 6 journaled twice under new ids
  EXPECT_EQ(after.terminal_units(), 6u);
}

TEST_F(RecoveryTest, TornWalIsTruncatedAndReplays) {
  {
    World w(dir_.path());
    w.service->submit_pilot(pilot_desc());
    for (int i = 0; i < 4; ++i) {
      w.service->submit_unit(unit_desc(5.0));
    }
    w.service->wait_all_units();
  }
  const std::string wal = Journal::wal_path(dir_.path());
  const ReadResult before = read_journal(wal);
  ASSERT_FALSE(before.torn);
  // Chop the final frame in half: a torn write.
  truncate_file(wal, before.file_bytes - 5);

  RecoveryCoordinator coordinator(dir_.path());
  const RecoveryResult result = coordinator.recover();
  EXPECT_TRUE(result.torn_tail);
  EXPECT_GT(result.truncated_bytes, 0u);
  EXPECT_EQ(result.records_replayed, before.records.size() - 1);
  // The file was physically repaired: a second scan is clean.
  EXPECT_FALSE(read_journal(wal).torn);
}

TEST_F(RecoveryTest, CompactionPreservesRecoveredState) {
  TempDir dir_compact;
  JournalConfig compacting;
  compacting.snapshot_every_records = 16;  // force frequent snapshots

  // Drive two identical workloads, one compacting aggressively, one not.
  auto drive = [&](const std::string& journal_dir,
                   const JournalConfig& config) {
    World w(journal_dir, config);
    w.service->submit_pilot(pilot_desc());
    for (int i = 0; i < 20; ++i) {
      w.service->submit_unit(unit_desc(3.0));
    }
    w.service->wait_all_units();
  };
  drive(dir_.path(), JournalConfig{});
  drive(dir_compact.path(), compacting);

  RecoveryCoordinator plain(dir_.path());
  RecoveryCoordinator compacted(dir_compact.path());
  const RecoveryResult a = plain.recover();
  const RecoveryResult b = compacted.recover();
  EXPECT_TRUE(b.snapshot_loaded);
  // Same ids on both sides (fresh id generators), so images must agree.
  EXPECT_EQ(a.image, b.image);
  EXPECT_EQ(b.image.terminal_units(), 20u);
  // And the compacted wal is much shorter than the full history.
  EXPECT_LT(read_journal(Journal::wal_path(dir_compact.path())).records.size(),
            read_journal(Journal::wal_path(dir_.path())).records.size());
}

TEST_F(RecoveryTest, ResumeOnLocalRuntimeWithWorkFactory) {
  // Journal a sim-side crash, then resume the plan on a LocalRuntime with
  // real payloads rebuilt by the work factory — recovery is runtime
  // agnostic.
  {
    World w(dir_.path());
    w.service->submit_pilot(pilot_desc());
    for (int i = 0; i < 4; ++i) {
      core::ComputeUnitDescription d = unit_desc(1000.0);
      d.name = "resumable-" + std::to_string(i);
      w.service->submit_unit(d);
    }
    w.engine.run_until(10.0);  // units running, then crash
    w.crash();
  }

  RecoveryCoordinator coordinator(dir_.path());
  const RecoveryResult result = coordinator.recover();
  ResumePlan plan = make_resume_plan(result.image);
  ASSERT_EQ(plan.units.size(), 4u);
  // The journaled pilot described simulated hardware; resume on local
  // cores instead (the plan's units carry everything else).
  plan.pilots.clear();

  rt::LocalRuntime local;
  core::PilotComputeService service(local, "backfill");
  core::PilotDescription local_pilot;
  local_pilot.resource_url = "local://host";
  local_pilot.nodes = 4;
  local_pilot.walltime = 1e9;
  service.submit_pilot(local_pilot);

  std::atomic<int> executed{0};
  const auto resumed = resume(
      service, plan, [&executed](const core::ComputeUnitDescription& d) {
        EXPECT_FALSE(d.name.empty());
        return [&executed]() { executed.fetch_add(1); };
      });
  EXPECT_EQ(resumed.size(), 4u);
  service.wait_all_units(60.0);
  EXPECT_EQ(executed.load(), 4);
  EXPECT_EQ(service.metrics().units_done, 4u);
}

TEST_F(RecoveryTest, RequeueBoundFailsPoisonUnit) {
  // Satellite: a unit whose pilots keep dying must eventually FAIL
  // instead of requeueing forever.
  // Registry declared before the World so it outlives service teardown.
  obs::MetricsRegistry metrics;
  World w(dir_.path());
  w.service->set_max_unit_requeues(3);
  w.service->attach_observability(nullptr, &metrics);

  auto unit = w.service->submit_unit(unit_desc(50.0));
  for (int round = 0; round < 5; ++round) {
    auto pilot = w.service->submit_pilot(pilot_desc(1));
    pilot.wait_active();
    w.engine.run_until(w.engine.now() + 5.0);
    if (core::is_final(unit.state())) {
      break;
    }
    pilot.cancel();
    w.engine.run_until(w.engine.now() + 1.0);
  }
  EXPECT_EQ(unit.state(), core::UnitState::kFailed);
  EXPECT_EQ(w.service->metrics().requeues, 3u);
  EXPECT_EQ(metrics.counter("pcs.units_failed_requeue_limit").value(), 1u);

  // The journal saw the full story: 3 requeues then a terminal FAILED.
  const ManagerImage image = w.journal->image();
  const auto& u = image.units().begin()->second;
  EXPECT_EQ(u.attempts, 3);
  EXPECT_EQ(u.state, core::UnitState::kFailed);
  EXPECT_EQ(u.terminal_count, 1);
}

}  // namespace
}  // namespace pa::journal
