/// Crash-injection harness (tentpole acceptance criterion): kill the
/// manager at randomized journal offsets, recover, resume, and verify
/// every unit reaches a terminal state exactly once — no unit lost, no
/// unit double-completed.
///
/// The "kill" is modeled as what a crashed writer actually leaves behind:
/// an arbitrary byte prefix of the wal (the on-disk file is always a
/// prefix of the appended stream, possibly ending in a torn frame). Each
/// kill point copies such a prefix into a fresh journal directory, runs
/// the recovery coordinator, resumes the plan on a brand-new simulated
/// world and checks the exactly-once ledger across both lives.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "pa/common/rng.h"
#include "pa/core/pilot_compute_service.h"
#include "pa/infra/batch_cluster.h"
#include "pa/journal/journal.h"
#include "pa/journal/reader.h"
#include "pa/journal/recovery.h"
#include "pa/journal/service_journal.h"
#include "pa/rt/sim_runtime.h"
#include "pa/saga/session.h"

#include "journal_test_util.h"

namespace pa::journal {
namespace {

using testing::TempDir;

constexpr int kKillPoints = 60;  // acceptance floor is 50

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void copy_file(const std::string& from, const std::string& to) {
  spit(to, slurp(from));
}

struct SimWorld {
  sim::Engine engine;
  saga::Session session;
  std::shared_ptr<infra::BatchCluster> cluster;
  std::unique_ptr<rt::SimRuntime> runtime;
  std::unique_ptr<core::PilotComputeService> service;

  SimWorld() {
    infra::BatchClusterConfig cfg;
    cfg.name = "hpc-a";
    cfg.num_nodes = 4;
    cfg.node.cores = 8;
    cluster = std::make_shared<infra::BatchCluster>(engine, cfg);
    session.register_resource("slurm://hpc-a", cluster);
    runtime = std::make_unique<rt::SimRuntime>(engine, session);
    service = std::make_unique<core::PilotComputeService>(*runtime, "backfill");
  }

  core::PilotDescription pilot_desc(int nodes = 2) {
    core::PilotDescription d;
    d.resource_url = "slurm://hpc-a";
    d.nodes = nodes;
    d.walltime = 3600.0;
    return d;
  }
};

/// Journals an eventful workload — pilot failure mid-run, requeues, a
/// second pilot finishing the work — and returns the closed wal's bytes.
std::string record_reference_run(const std::string& dir,
                                 std::size_t snapshot_every = 0) {
  SimWorld w;
  JournalConfig config;
  config.snapshot_every_records = snapshot_every;
  Journal journal(dir, config);
  ServiceJournal sink(journal);
  w.service->attach_journal(&sink);

  auto p1 = w.service->submit_pilot(w.pilot_desc(1));
  for (int i = 0; i < 10; ++i) {
    core::ComputeUnitDescription d;
    d.cores = 1;
    d.duration = 30.0;
    w.service->submit_unit(d);
  }
  p1.wait_active();
  w.engine.run_until(40.0);  // first wave done, second wave running
  p1.cancel();               // in-flight units requeue
  w.engine.run_until(45.0);
  w.service->submit_pilot(w.pilot_desc(2));
  w.service->wait_all_units();
  w.service->attach_journal(nullptr);  // keep teardown out of the history
  journal.flush();
  journal.close();
  return slurp(Journal::wal_path(dir));
}

/// One kill point: install `wal_prefix` (and optionally the reference
/// snapshot) as the crashed journal, recover, resume on a fresh world and
/// verify the exactly-once ledger. Returns the number of journaled units.
std::size_t run_kill_point(const std::string& wal_prefix,
                           const std::string& snapshot_from,
                           std::uint64_t kill_offset) {
  TempDir crash_dir;
  spit(Journal::wal_path(crash_dir.path()), wal_prefix);
  if (!snapshot_from.empty()) {
    copy_file(snapshot_from, Journal::snapshot_path(crash_dir.path()));
  }

  RecoveryCoordinator coordinator(crash_dir.path());
  const RecoveryResult result = coordinator.recover();

  // Journal invariant: no unit ever journals more than one terminal
  // transition (double completion would show up right here).
  for (const auto& [unit_id, unit] : result.image.units()) {
    EXPECT_LE(unit.terminal_count, 1)
        << unit_id << " double-completed (kill offset " << kill_offset << ")";
  }

  const ResumePlan plan = make_resume_plan(result.image);
  std::set<std::string> completed(plan.completed_units.begin(),
                                  plan.completed_units.end());
  EXPECT_EQ(completed.size() + plan.units.size(),
            result.image.units().size())
      << "units lost between image and plan (kill offset " << kill_offset
      << ")";

  // Second life: resume everything non-terminal on a fresh world.
  SimWorld w2;
  const auto resumed = resume(*w2.service, plan);
  EXPECT_EQ(resumed.size(), plan.units.size());
  for (const auto& [journaled_id, unit] : resumed) {
    EXPECT_EQ(completed.count(journaled_id), 0u)
        << journaled_id << " re-ran despite a surviving terminal record "
        << "(kill offset " << kill_offset << ")";
  }
  if (plan.pilots.empty() && !plan.units.empty()) {
    // Every journaled pilot already reached a final state before the
    // kill; the resumed work still needs capacity.
    w2.service->submit_pilot(w2.pilot_desc());
  }
  if (!plan.units.empty()) {
    w2.service->wait_all_units();
  }

  // The ledger: every journaled unit is terminal exactly once across both
  // lives — completed before the crash XOR completed by the resume.
  std::size_t terminal_total = completed.size();
  for (const auto& [journaled_id, unit] : resumed) {
    EXPECT_EQ(unit.state(), core::UnitState::kDone)
        << journaled_id << " (kill offset " << kill_offset << ")";
    terminal_total += core::is_final(unit.state()) ? 1 : 0;
  }
  EXPECT_EQ(terminal_total, result.image.units().size())
      << "kill offset " << kill_offset;
  EXPECT_EQ(w2.service->metrics().units_done, plan.units.size());
  return result.image.units().size();
}

TEST(CrashHarness, RandomizedKillPointsPreserveExactlyOnce) {
  TempDir reference_dir;
  const std::string wal = record_reference_run(reference_dir.path());
  ASSERT_GT(wal.size(), 0u);
  const ReadResult full = read_journal(Journal::wal_path(reference_dir.path()));
  ASSERT_FALSE(full.torn);
  ASSERT_GT(full.records.size(), 40u) << "reference run not eventful enough";

  pa::Rng rng(20260807);
  std::size_t nontrivial = 0;
  for (int k = 0; k < kKillPoints; ++k) {
    const auto offset = static_cast<std::uint64_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(wal.size())));
    const std::size_t units =
        run_kill_point(wal.substr(0, offset), "", offset);
    nontrivial += units > 0 ? 1 : 0;
  }
  // Sanity: the offsets actually exercised recoveries with real state.
  EXPECT_GT(nontrivial, static_cast<std::size_t>(kKillPoints / 2));
}

TEST(CrashHarness, KillPointsWithSnapshotPresent) {
  // Same harness, but the crashed journal also has a compacted snapshot:
  // recovery must merge snapshot + wal-suffix correctly at every cut.
  TempDir reference_dir;
  const std::string wal =
      record_reference_run(reference_dir.path(), /*snapshot_every=*/24);
  const std::string snapshot_path =
      Journal::snapshot_path(reference_dir.path());
  ASSERT_GT(slurp(snapshot_path).size(), 0u) << "no snapshot was written";

  pa::Rng rng(0xDEADBEA7);
  for (int k = 0; k < 20; ++k) {
    const auto offset = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(wal.size())));
    run_kill_point(wal.substr(0, offset), snapshot_path, offset);
  }
}

}  // namespace
}  // namespace pa::journal
