#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "pa/common/error.h"
#include "pa/journal/reader.h"
#include "pa/journal/writer.h"
#include "pa/obs/metrics.h"

#include "journal_test_util.h"

namespace pa::journal {
namespace {

using testing::TempDir;

Record make_record(std::uint64_t i) {
  Record r;
  r.type = RecordType::kUnitState;
  r.time = static_cast<double>(i) * 0.25;
  r.entity = "unit-" + std::to_string(i);
  r.fields["state"] = "RUNNING";
  return r;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

class WriterReaderTest : public ::testing::Test {
 protected:
  TempDir dir_;
};

TEST_F(WriterReaderTest, RoundTripsAcrossAllSyncModes) {
  for (const auto sync :
       {WriterConfig::Sync::kNone, WriterConfig::Sync::kGroup,
        WriterConfig::Sync::kEveryRecord}) {
    const std::string path =
        dir_.file("wal_" + std::to_string(static_cast<int>(sync)));
    WriterConfig config;
    config.sync = sync;
    {
      Writer writer(path, config);
      for (std::uint64_t i = 0; i < 100; ++i) {
        EXPECT_EQ(writer.append(make_record(i)), i + 1);
      }
    }  // destructor flushes + closes
    const ReadResult result = read_journal(path);
    EXPECT_FALSE(result.torn);
    ASSERT_EQ(result.records.size(), 100u);
    for (std::uint64_t i = 0; i < 100; ++i) {
      EXPECT_EQ(result.records[i].seq, i + 1);
      EXPECT_EQ(result.records[i].entity, "unit-" + std::to_string(i));
    }
  }
}

TEST_F(WriterReaderTest, FlushMakesRecordsVisible) {
  const std::string path = dir_.file("wal");
  Writer writer(path);
  for (std::uint64_t i = 0; i < 10; ++i) {
    writer.append(make_record(i));
  }
  writer.flush();
  // Before close: everything appended so far must already be on disk.
  EXPECT_EQ(read_journal(path).records.size(), 10u);
  writer.close();
}

TEST_F(WriterReaderTest, ConcurrentAppendersKeepSeqDense) {
  const std::string path = dir_.file("wal");
  {
    Writer writer(path);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&writer, t]() {
        for (std::uint64_t i = 0; i < 250; ++i) {
          writer.append(make_record(static_cast<std::uint64_t>(t) * 1000 + i));
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
  }
  const ReadResult result = read_journal(path);
  EXPECT_FALSE(result.torn);
  ASSERT_EQ(result.records.size(), 1000u);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(result.records[i].seq, i + 1);  // dense, strictly increasing
  }
}

TEST_F(WriterReaderTest, AppendAfterCloseThrows) {
  Writer writer(dir_.file("wal"));
  writer.append(make_record(0));
  writer.close();
  EXPECT_THROW(writer.append(make_record(1)), pa::Error);
}

TEST_F(WriterReaderTest, ReopenAppendsWithContinuedSeq) {
  const std::string path = dir_.file("wal");
  {
    Writer writer(path);
    for (std::uint64_t i = 0; i < 5; ++i) {
      writer.append(make_record(i));
    }
  }
  {
    Writer writer(path, WriterConfig{}, /*first_seq=*/6);
    for (std::uint64_t i = 5; i < 10; ++i) {
      writer.append(make_record(i));
    }
  }
  const ReadResult result = read_journal(path);
  EXPECT_FALSE(result.torn);
  ASSERT_EQ(result.records.size(), 10u);
  EXPECT_EQ(result.records.back().seq, 10u);
}

TEST_F(WriterReaderTest, TruncateLogEmptiesFileButKeepsSeq) {
  const std::string path = dir_.file("wal");
  Writer writer(path);
  for (std::uint64_t i = 0; i < 5; ++i) {
    writer.append(make_record(i));
  }
  writer.truncate_log();
  EXPECT_EQ(read_journal(path).records.size(), 0u);
  EXPECT_EQ(writer.append(make_record(5)), 6u);  // counter kept advancing
  writer.close();
  const ReadResult result = read_journal(path);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].seq, 6u);
}

TEST_F(WriterReaderTest, MissingFileReadsEmpty) {
  const ReadResult result = read_journal(dir_.file("nonexistent"));
  EXPECT_FALSE(result.torn);
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.file_bytes, 0u);
}

TEST_F(WriterReaderTest, WriterMetricsExported) {
  obs::MetricsRegistry metrics;
  const std::string path = dir_.file("wal");
  {
    Writer writer(path);
    writer.set_metrics(&metrics);
    for (std::uint64_t i = 0; i < 50; ++i) {
      writer.append(make_record(i));
    }
    writer.flush();
  }
  EXPECT_EQ(metrics.counter("journal.records").value(), 50.0);
  EXPECT_GE(metrics.counter("journal.flushes").value(), 1.0);
  EXPECT_GT(metrics.counter("journal.flushed_bytes").value(), 0.0);
}

/// The satellite-mandated exhaustive torn-tail test: cut the file at every
/// byte offset inside the final record's frame; the reader must always
/// recover exactly the records before it and flag the tail, and physical
/// truncation + re-append must yield a clean journal again.
TEST_F(WriterReaderTest, TornTailDetectedAtEveryByteOfFinalRecord) {
  const std::string path = dir_.file("wal");
  {
    Writer writer(path);
    for (std::uint64_t i = 0; i < 4; ++i) {
      writer.append(make_record(i));
    }
  }
  const std::string full = slurp(path);

  // Locate the byte where the final record's frame begins.
  std::string prefix3;
  for (std::uint64_t i = 0; i < 3; ++i) {
    Record r = make_record(i);
    r.seq = i + 1;
    append_frame(prefix3, r);
  }
  ASSERT_LT(prefix3.size(), full.size());
  ASSERT_EQ(full.compare(0, prefix3.size(), prefix3), 0)
      << "writer output is not the concatenation of its frames";

  for (std::size_t cut = prefix3.size(); cut < full.size(); ++cut) {
    const std::string cut_path = dir_.file("cut");
    spit(cut_path, full.substr(0, cut));
    const ReadResult result = read_journal(cut_path);
    if (cut == prefix3.size()) {
      // Clean cut exactly between frames: no torn tail at all.
      EXPECT_FALSE(result.torn) << "cut=" << cut;
    } else {
      EXPECT_TRUE(result.torn) << "cut=" << cut;
      EXPECT_EQ(result.valid_bytes, prefix3.size()) << "cut=" << cut;
      EXPECT_EQ(result.torn_bytes(), cut - prefix3.size()) << "cut=" << cut;
    }
    ASSERT_EQ(result.records.size(), 3u) << "cut=" << cut;

    // Round-trip: truncate the tail, append a new record, read it all back.
    truncate_file(cut_path, result.valid_bytes);
    {
      Writer writer(cut_path, WriterConfig{},
                    /*first_seq=*/result.records.back().seq + 1);
      writer.append(make_record(99));
    }
    const ReadResult repaired = read_journal(cut_path);
    EXPECT_FALSE(repaired.torn) << "cut=" << cut;
    ASSERT_EQ(repaired.records.size(), 4u) << "cut=" << cut;
    EXPECT_EQ(repaired.records.back().entity, "unit-99") << "cut=" << cut;
  }
}

TEST_F(WriterReaderTest, CorruptedMiddleByteEndsValidPrefix) {
  const std::string path = dir_.file("wal");
  {
    Writer writer(path);
    for (std::uint64_t i = 0; i < 4; ++i) {
      writer.append(make_record(i));
    }
  }
  std::string bytes = slurp(path);
  // Flip one byte in the middle of the file (inside record 2's frame).
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
  spit(path, bytes);
  const ReadResult result = read_journal(path);
  EXPECT_TRUE(result.torn);
  EXPECT_LT(result.records.size(), 4u);
  // Every surviving record is intact and in order.
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    EXPECT_EQ(result.records[i].seq, i + 1);
  }
}

TEST_F(WriterReaderTest, DumpJsonlEmitsOneLinePerRecord) {
  const std::string path = dir_.file("wal");
  {
    Writer writer(path);
    for (std::uint64_t i = 0; i < 7; ++i) {
      writer.append(make_record(i));
    }
  }
  std::ostringstream out;
  const ReadResult result = dump_jsonl(path, out);
  EXPECT_EQ(result.records.size(), 7u);
  std::size_t lines = 0;
  for (const char c : out.str()) {
    lines += c == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, 7u);
}

}  // namespace
}  // namespace pa::journal
