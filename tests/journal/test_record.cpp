#include "pa/journal/record.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "pa/common/error.h"
#include "pa/journal/crc32.h"
#include "pa/journal/reader.h"

namespace pa::journal {
namespace {

Record sample_record() {
  Record r;
  r.type = RecordType::kUnitSubmit;
  r.seq = 42;
  r.time = 1234.5678;
  r.entity = "unit-7";
  r.fields = {{"cores", "4"}, {"duration", "10.5"}, {"name", "stage-a"}};
  return r;
}

TEST(JournalRecord, PayloadRoundTrip) {
  const Record r = sample_record();
  const std::string payload = encode_payload(r);
  const Record back = decode_payload(payload.data(), payload.size());
  EXPECT_EQ(back, r);
}

TEST(JournalRecord, RoundTripsArbitraryBytes) {
  // Ids and field values must survive every byte: NUL, newlines, the k=v
  // separators the Config layer uses, and high bytes.
  Record r;
  r.type = RecordType::kDataPlacement;
  r.seq = 1;
  r.time = -0.0;
  r.entity = std::string("du\0\n=,|\xff\x01", 8);
  r.fields[std::string("k\0ey", 4)] = std::string("v\nal=ue,\0", 9);
  r.fields[""] = "";  // empty key and value are legal
  const std::string payload = encode_payload(r);
  EXPECT_EQ(decode_payload(payload.data(), payload.size()), r);
}

TEST(JournalRecord, RoundTripsExtremeDoubles) {
  for (const double t : {0.0, -1.5e-300, 1.7976931348623157e308,
                         4.9406564584124654e-324, 123456789.123456789}) {
    Record r = sample_record();
    r.time = t;
    const std::string payload = encode_payload(r);
    EXPECT_EQ(decode_payload(payload.data(), payload.size()).time, t);
  }
}

TEST(JournalRecord, DecodeRejectsTruncation) {
  const std::string payload = encode_payload(sample_record());
  for (std::size_t n = 0; n < payload.size(); ++n) {
    EXPECT_THROW(decode_payload(payload.data(), n), pa::Error)
        << "decode accepted a " << n << "-byte prefix";
  }
}

TEST(JournalRecord, DecodeRejectsTrailingGarbage) {
  std::string payload = encode_payload(sample_record());
  payload += '\0';
  EXPECT_THROW(decode_payload(payload.data(), payload.size()), pa::Error);
}

TEST(JournalRecord, DecodeRejectsUnknownType) {
  Record r = sample_record();
  std::string payload = encode_payload(r);
  // Type is serialized first as u16; stamp an out-of-range value.
  payload[0] = static_cast<char>(0xEE);
  payload[1] = static_cast<char>(0xEE);
  EXPECT_THROW(decode_payload(payload.data(), payload.size()), pa::Error);
}

TEST(JournalRecord, FrameScanRoundTrip) {
  std::string bytes;
  std::vector<Record> written;
  for (int i = 0; i < 10; ++i) {
    Record r = sample_record();
    r.seq = static_cast<std::uint64_t>(i + 1);
    r.entity = "unit-" + std::to_string(i);
    written.push_back(r);
    append_frame(bytes, r);
  }
  const ReadResult result = scan(bytes.data(), bytes.size());
  EXPECT_FALSE(result.torn);
  EXPECT_EQ(result.valid_bytes, bytes.size());
  EXPECT_EQ(result.records, written);
}

TEST(JournalRecord, ScanStopsAtNonMonotonicSeq) {
  std::string bytes;
  Record r = sample_record();
  r.seq = 5;
  append_frame(bytes, r);
  append_frame(bytes, r);  // same seq again: stale bytes, not a valid frame
  const ReadResult result = scan(bytes.data(), bytes.size());
  EXPECT_TRUE(result.torn);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].seq, 5u);
}

TEST(JournalRecord, Crc32MatchesKnownVectors) {
  // Standard zlib/PNG CRC-32 check values.
  EXPECT_EQ(crc32("", 0), 0x00000000u);
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("a", 1), 0xE8B7BE43u);
}

TEST(JournalRecord, JsonlEscapesAndLabels) {
  Record r = sample_record();
  r.entity = "unit \"7\"\n";
  std::ostringstream out;
  write_jsonl(out, r);
  const std::string line = out.str();
  EXPECT_NE(line.find("\"unit_submit\""), std::string::npos);
  EXPECT_NE(line.find("\\\"7\\\""), std::string::npos);
  EXPECT_NE(line.find("\\n"), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
  // Exactly one line per record.
  EXPECT_EQ(line.find('\n'), line.size() - 1);
}

TEST(JournalRecord, TypeNamesAreStable) {
  EXPECT_STREQ(to_string(RecordType::kPilotSubmit), "pilot_submit");
  EXPECT_STREQ(to_string(RecordType::kUnitRequeue), "unit_requeue");
  EXPECT_STREQ(to_string(RecordType::kSnapshotHeader), "snapshot_header");
}

}  // namespace
}  // namespace pa::journal
