#pragma once
/// Shared helpers for the journal test suites: unique scratch directories
/// under the system temp root, removed on fixture teardown.

#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

namespace pa::journal::testing {

/// Creates (and owns) a fresh scratch directory.
class TempDir {
 public:
  TempDir() {
    std::string tmpl = "/tmp/pa_journal_test_XXXXXX";
    char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : "/tmp";
  }
  ~TempDir() {
    // Best-effort recursive removal; scratch paths are short and known.
    const std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

}  // namespace pa::journal::testing
