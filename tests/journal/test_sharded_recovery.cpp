/// Recovery across per-shard journal streams: directory discovery, the
/// terminal-wins / latest-attempt-wins merge, a full round trip with a
/// mid-run cross-shard pilot move, and crash-injection kills truncating
/// every stream at independent random offsets with an exactly-once
/// ledger across both lives.

#include "pa/journal/sharded_recovery.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "pa/common/rng.h"
#include "pa/core/pilot_compute_service.h"
#include "pa/infra/batch_cluster.h"
#include "pa/journal/journal.h"
#include "pa/journal/reader.h"
#include "pa/journal/recovery.h"
#include "pa/journal/service_journal.h"
#include "pa/rt/sim_runtime.h"
#include "pa/saga/session.h"

#include "journal_test_util.h"

namespace pa::journal {
namespace {

using testing::TempDir;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// ---------------------------------------------------------------------------
// Merge rules on hand-built images.
// ---------------------------------------------------------------------------

Record rec(RecordType type, const std::string& entity,
           std::map<std::string, std::string> fields) {
  Record r;
  r.type = type;
  r.entity = entity;
  r.fields = std::move(fields);
  return r;
}

void submit_unit(ManagerImage& img, const std::string& id, double duration) {
  img.apply(rec(RecordType::kUnitSubmit, id,
                {{"cores", "1"}, {"duration", format_double(duration)}}));
}

void unit_state(ManagerImage& img, const std::string& id,
                core::UnitState to) {
  img.apply(rec(RecordType::kUnitState, id, {{"state", core::to_string(to)}}));
}

void submit_pilot(ManagerImage& img, const std::string& id) {
  img.apply(rec(RecordType::kPilotSubmit, id,
                {{"resource_url", "slurm://hpc-a"},
                 {"nodes", "1"},
                 {"walltime", "3600"},
                 {"priority", "0"},
                 {"cost_per_core_hour", "0"},
                 {"restarts_used", "0"}}));
}

TEST(ShardedRecoveryMerge, TerminalInAnyStreamWins) {
  // Source stream: the unit left mid-flight (records stop at kRunning).
  ManagerImage source;
  submit_unit(source, "unit-1", 30.0);
  unit_state(source, "unit-1", core::UnitState::kPending);
  unit_state(source, "unit-1", core::UnitState::kScheduled);
  unit_state(source, "unit-1", core::UnitState::kRunning);
  // Target stream: the adoption chain ran it to completion.
  ManagerImage target;
  submit_unit(target, "unit-1", 30.0);
  unit_state(target, "unit-1", core::UnitState::kPending);
  unit_state(target, "unit-1", core::UnitState::kScheduled);
  unit_state(target, "unit-1", core::UnitState::kRunning);
  unit_state(target, "unit-1", core::UnitState::kDone);

  for (const auto& images :
       {std::vector<ManagerImage>{source, target},
        std::vector<ManagerImage>{target, source}}) {
    const ResumePlan plan = merge_resume_plans(images);
    ASSERT_EQ(plan.completed_units.size(), 1u);
    EXPECT_EQ(plan.completed_units[0], "unit-1");
    EXPECT_TRUE(plan.units.empty());  // never re-run acknowledged work
    EXPECT_EQ(plan.in_flight_requeued, 0u);
  }
}

TEST(ShardedRecoveryMerge, MostAttemptsHoldsTheFreshestDescription) {
  // Stream A journaled a requeue (attempts = 1); its description wins
  // regardless of merge order.
  ManagerImage a;
  submit_unit(a, "unit-2", 5.0);
  unit_state(a, "unit-2", core::UnitState::kPending);
  a.apply(rec(RecordType::kUnitRequeue, "unit-2", {}));
  ManagerImage b;
  submit_unit(b, "unit-2", 9.0);
  unit_state(b, "unit-2", core::UnitState::kPending);

  for (const auto& images : {std::vector<ManagerImage>{a, b},
                             std::vector<ManagerImage>{b, a}}) {
    const ResumePlan plan = merge_resume_plans(images);
    ASSERT_EQ(plan.units.size(), 1u);
    EXPECT_EQ(plan.units[0].first, "unit-2");
    EXPECT_DOUBLE_EQ(plan.units[0].second.duration, 5.0);
  }

  // Equal attempts: the later stream is the adoption target and wins.
  ManagerImage c;
  submit_unit(c, "unit-2", 7.0);
  unit_state(c, "unit-2", core::UnitState::kPending);
  const ResumePlan plan = merge_resume_plans({b, c});
  ASSERT_EQ(plan.units.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.units[0].second.duration, 7.0);
}

TEST(ShardedRecoveryMerge, OrdinalsAdvancePastEveryStream) {
  ManagerImage a;
  submit_pilot(a, "pilot-3");
  submit_unit(a, "unit-7", 1.0);
  ManagerImage b;
  submit_unit(b, "unit-9", 1.0);
  const ResumePlan plan = merge_resume_plans({a, b});
  EXPECT_EQ(plan.next_pilot_ordinal, 4u);
  EXPECT_EQ(plan.next_unit_ordinal, 10u);
  // pilot-3 is non-terminal in its only stream: resubmitted once.
  EXPECT_EQ(plan.pilots.size(), 1u);
}

TEST(ShardedRecoveryMerge, PilotSeenByBothStreamsResubmitsOnce) {
  ManagerImage source;
  submit_pilot(source, "pilot-0");
  ManagerImage target;
  submit_pilot(target, "pilot-0");  // the move's adoption chain
  const ResumePlan plan = merge_resume_plans({source, target});
  EXPECT_EQ(plan.pilots.size(), 1u);
}

// ---------------------------------------------------------------------------
// Live sharded world: layout, round trip, crash injection.
// ---------------------------------------------------------------------------

struct ShardedSimWorld {
  static constexpr int kShards = 2;

  sim::Engine engine;
  saga::Session session;
  std::shared_ptr<infra::BatchCluster> cluster;
  std::unique_ptr<rt::SimRuntime> runtime;
  std::unique_ptr<core::PilotComputeService> service;

  ShardedSimWorld() {
    infra::BatchClusterConfig cfg;
    cfg.name = "hpc-a";
    cfg.num_nodes = 4;
    cfg.node.cores = 8;
    cluster = std::make_shared<infra::BatchCluster>(engine, cfg);
    session.register_resource("slurm://hpc-a", cluster);
    runtime = std::make_unique<rt::SimRuntime>(engine, session);
    core::PilotComputeService::Options options;
    options.scheduler_policy = "backfill";
    options.shards = kShards;
    service = std::make_unique<core::PilotComputeService>(*runtime, options);
  }

  core::PilotDescription pilot_desc(int nodes = 1) {
    core::PilotDescription d;
    d.resource_url = "slurm://hpc-a";
    d.nodes = nodes;
    d.walltime = 3600.0;
    return d;
  }
};

/// Journals an eventful sharded run — one pilot per shard, a cross-shard
/// pilot move mid-flight — and returns each closed wal's bytes.
std::vector<std::string> record_sharded_reference_run(
    const std::string& base) {
  ShardedSimWorld w;
  std::vector<std::unique_ptr<Journal>> journals;
  std::vector<std::unique_ptr<ServiceJournal>> sinks;
  std::vector<core::JournalSink*> sink_ptrs;
  for (int k = 0; k < ShardedSimWorld::kShards; ++k) {
    journals.push_back(std::make_unique<Journal>(shard_journal_dir(base, k)));
    sinks.push_back(std::make_unique<ServiceJournal>(*journals.back()));
    sink_ptrs.push_back(sinks.back().get());
  }
  w.service->attach_journal_shards(sink_ptrs);

  auto p1 = w.service->submit_pilot(w.pilot_desc(1));  // pilot-0 -> shard 0
  w.service->submit_pilot(w.pilot_desc(1));            // pilot-1 -> shard 1
  for (int i = 0; i < 12; ++i) {
    core::ComputeUnitDescription d;
    d.cores = 1;
    d.duration = 30.0;
    w.service->submit_unit(d);
  }
  p1.wait_active();
  w.engine.run_until(20.0);  // everything bound and running
  w.service->move_pilot_to_shard(p1.id(), 1);
  w.engine.run_until(25.0);
  w.service->wait_all_units();
  w.service->attach_journal_shards(
      std::vector<core::JournalSink*>(ShardedSimWorld::kShards, nullptr));
  std::vector<std::string> wals;
  for (int k = 0; k < ShardedSimWorld::kShards; ++k) {
    journals[static_cast<std::size_t>(k)]->flush();
    journals[static_cast<std::size_t>(k)]->close();
    wals.push_back(slurp(Journal::wal_path(shard_journal_dir(base, k))));
  }
  return wals;
}

TEST(ShardedRecovery, DirLayoutAndDiscovery) {
  TempDir base;
  EXPECT_EQ(shard_journal_dir("/j", 3), "/j/wal.3");
  EXPECT_EQ(discover_shard_count(base.path()), 0);
  std::filesystem::create_directories(shard_journal_dir(base.path(), 0));
  std::filesystem::create_directories(shard_journal_dir(base.path(), 1));
  EXPECT_EQ(discover_shard_count(base.path()), 2);
  // A gap ends the count: wal.3 without wal.2 is not discovered.
  std::filesystem::create_directories(shard_journal_dir(base.path(), 3));
  EXPECT_EQ(discover_shard_count(base.path()), 2);

  const ShardedRecoveryResult empty = recover_sharded(base.path(), 0);
  EXPECT_TRUE(empty.shards.empty());
  EXPECT_TRUE(empty.plan.units.empty());
  EXPECT_TRUE(empty.plan.pilots.empty());
}

TEST(ShardedRecovery, RoundTripWithMidRunMoveCompletesEverything) {
  TempDir base;
  const auto wals = record_sharded_reference_run(base.path());
  for (const auto& wal : wals) {
    ASSERT_GT(wal.size(), 0u);
  }

  const ShardedRecoveryResult result = recover_sharded(base.path());
  ASSERT_EQ(result.shards.size(), 2u);
  for (const auto& shard : result.shards) {
    EXPECT_FALSE(shard.torn_tail);
    for (const auto& [unit_id, unit] : shard.image.units()) {
      EXPECT_LE(unit.terminal_count, 1) << unit_id;
    }
  }
  // The moved pilot appears in both streams; its records in the source
  // stop at the departure, the target's adoption chain finishes the run.
  EXPECT_GT(result.shards[1].image.units().size(), 6u)
      << "move left no adopted units in the target stream";

  EXPECT_EQ(result.plan.completed_units.size(), 12u);
  EXPECT_TRUE(result.plan.units.empty());
  // Both pilots stayed active to the end; the moved one merges to a
  // single resubmission despite living in two streams.
  EXPECT_EQ(result.plan.pilots.size(), 2u);
  EXPECT_EQ(result.plan.next_unit_ordinal, 12u);
  EXPECT_EQ(result.plan.next_pilot_ordinal, 2u);
}

/// One kill point: install independent wal prefixes as the crashed
/// per-shard streams, recover + merge, resume on a fresh sharded world
/// and verify the exactly-once ledger across both lives.
void run_sharded_kill_point(const std::string& wal0, const std::string& wal1,
                            std::uint64_t off0, std::uint64_t off1) {
  TempDir crash;
  const std::string dir0 = shard_journal_dir(crash.path(), 0);
  const std::string dir1 = shard_journal_dir(crash.path(), 1);
  std::filesystem::create_directories(dir0);
  std::filesystem::create_directories(dir1);
  spit(Journal::wal_path(dir0), wal0.substr(0, off0));
  spit(Journal::wal_path(dir1), wal1.substr(0, off1));

  const ShardedRecoveryResult result = recover_sharded(crash.path());
  std::set<std::string> all_units;
  for (const auto& shard : result.shards) {
    for (const auto& [unit_id, unit] : shard.image.units()) {
      EXPECT_LE(unit.terminal_count, 1)
          << unit_id << " double-completed (offsets " << off0 << "/" << off1
          << ")";
      all_units.insert(unit_id);
    }
  }
  const ResumePlan& plan = result.plan;
  std::set<std::string> completed(plan.completed_units.begin(),
                                  plan.completed_units.end());
  EXPECT_EQ(completed.size() + plan.units.size(), all_units.size())
      << "units lost in the merge (offsets " << off0 << "/" << off1 << ")";

  // Second life on a fresh sharded service.
  ShardedSimWorld w2;
  const auto resumed = resume(*w2.service, plan);
  EXPECT_EQ(resumed.size(), plan.units.size());
  for (const auto& [journaled_id, unit] : resumed) {
    EXPECT_EQ(completed.count(journaled_id), 0u)
        << journaled_id << " re-ran despite a surviving terminal record";
  }
  if (!plan.units.empty()) {
    // Resumed units land on shards by their own ordinals, and a shard
    // only dispatches onto its local pilots — the truncated plan may
    // cover one shard only, so guarantee capacity on every shard.
    for (int s = 0; s < ShardedSimWorld::kShards; ++s) {
      w2.service->submit_pilot(w2.pilot_desc());
    }
    w2.service->wait_all_units();
  }
  std::size_t terminal_total = completed.size();
  for (const auto& [journaled_id, unit] : resumed) {
    EXPECT_EQ(unit.state(), core::UnitState::kDone)
        << journaled_id << " (offsets " << off0 << "/" << off1 << ")";
    terminal_total += core::is_final(unit.state()) ? 1 : 0;
  }
  EXPECT_EQ(terminal_total, all_units.size())
      << "offsets " << off0 << "/" << off1;
}

TEST(ShardedRecovery, CrashKillPointsAcrossStreamsPreserveExactlyOnce) {
  TempDir reference;
  const auto wals = record_sharded_reference_run(reference.path());
  ASSERT_EQ(wals.size(), 2u);
  for (int k = 0; k < 2; ++k) {
    const ReadResult full = read_journal(
        Journal::wal_path(shard_journal_dir(reference.path(), k)));
    ASSERT_FALSE(full.torn);
    ASSERT_GT(full.records.size(), 10u) << "stream " << k << " too quiet";
  }

  pa::Rng rng(20260809);
  for (int k = 0; k < 16; ++k) {
    const auto off0 = static_cast<std::uint64_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(wals[0].size())));
    const auto off1 = static_cast<std::uint64_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(wals[1].size())));
    run_sharded_kill_point(wals[0], wals[1], off0, off1);
  }
}

}  // namespace
}  // namespace pa::journal
