#include "pa/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "pa/common/error.h"
#include "pa/common/rng.h"

namespace pa {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(SampleSet, PercentilesExact) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) {
    s.add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.percentile(25.0), 25.75, 1e-12);
}

TEST(SampleSet, PercentileAfterMoreAdds) {
  SampleSet s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.0);
  s.add(3.0);
  s.add(2.0);
  // The lazily sorted cache must refresh after new values arrive.
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(SampleSet, PercentileRangeChecked) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1.0), InvalidArgument);
  EXPECT_THROW(s.percentile(101.0), InvalidArgument);
}

TEST(SampleSet, MeanAndStddev) {
  SampleSet s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SampleSet, SummaryMentionsCount) {
  SampleSet s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_NE(s.summary().find("n=2"), std::string::npos);
}

TEST(RelativeError, Basics) {
  EXPECT_DOUBLE_EQ(relative_error(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(90.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(5.0, 0.0, 1.0), 5.0);
}

}  // namespace
}  // namespace pa
