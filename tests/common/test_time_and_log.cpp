#include <gtest/gtest.h>

#include <thread>

#include "pa/common/id.h"
#include "pa/common/log.h"
#include "pa/common/time_utils.h"

namespace pa {
namespace {

TEST(WallSeconds, Monotonic) {
  const double a = wall_seconds();
  const double b = wall_seconds();
  EXPECT_GE(b, a);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double t = sw.elapsed();
  EXPECT_GE(t, 0.018);
  EXPECT_LT(t, 1.0);  // generous upper bound for loaded CI
  sw.restart();
  EXPECT_LT(sw.elapsed(), 0.018);
}

TEST(BurnCpu, ApproximatesRequestedDuration) {
  burn_cpu(0.001);  // warm calibration
  Stopwatch sw;
  burn_cpu(0.05);
  const double t = sw.elapsed();
  EXPECT_GE(t, 0.045);
  EXPECT_LT(t, 0.5);  // scheduling noise allowance
}

TEST(BurnCpu, ZeroAndNegativeAreNoOps) {
  Stopwatch sw;
  burn_cpu(0.0);
  burn_cpu(-1.0);
  EXPECT_LT(sw.elapsed(), 0.01);
}

TEST(IdGenerator, SequentialAndPrefixed) {
  IdGenerator gen("unit");
  EXPECT_EQ(gen.next(), "unit-0");
  EXPECT_EQ(gen.next(), "unit-1");
  gen.reset();
  EXPECT_EQ(gen.next(), "unit-0");
}

TEST(IdGenerator, ThreadSafeUniqueness) {
  IdGenerator gen("x");
  std::vector<std::thread> threads;
  check::Mutex m{check::LockRank::kLeaf, "test"};
  std::set<std::string> ids;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 250; ++i) {
        const std::string id = gen.next();
        check::MutexLock lock(m);
        ids.insert(id);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(Log, LevelGatesEmission) {
  const LogLevel saved = Log::level();
  Log::set_level(LogLevel::kError);
  EXPECT_FALSE(Log::enabled(LogLevel::kDebug));
  EXPECT_FALSE(Log::enabled(LogLevel::kWarn));
  EXPECT_TRUE(Log::enabled(LogLevel::kError));
  Log::set_level(LogLevel::kDebug);
  EXPECT_TRUE(Log::enabled(LogLevel::kDebug));
  Log::set_level(saved);
}

TEST(Log, MacroCompilesAndStreams) {
  const LogLevel saved = Log::level();
  Log::set_level(LogLevel::kOff);
  // With logging off the stream expression must not be evaluated eagerly
  // into output (and must still compile with mixed types).
  PA_LOG(kInfo, "test") << "value=" << 42 << " pi=" << 3.14;
  Log::set_level(saved);
  SUCCEED();
}

}  // namespace
}  // namespace pa
