#include "pa/common/config.h"

#include <gtest/gtest.h>

#include "pa/common/error.h"

namespace pa {
namespace {

TEST(Config, ParseBasic) {
  const Config cfg = Config::parse("a=1,b=two, c = 3.5 ;d=true");
  EXPECT_EQ(cfg.get_int("a"), 1);
  EXPECT_EQ(cfg.get_string("b"), "two");
  EXPECT_DOUBLE_EQ(cfg.get_double("c"), 3.5);
  EXPECT_TRUE(cfg.get_bool("d"));
}

TEST(Config, ParseEmpty) {
  const Config cfg = Config::parse("");
  EXPECT_TRUE(cfg.keys().empty());
}

TEST(Config, ParseRejectsMissingEquals) {
  EXPECT_THROW(Config::parse("novalue"), InvalidArgument);
  EXPECT_THROW(Config::parse("=x"), InvalidArgument);
}

TEST(Config, StrictGettersThrow) {
  const Config cfg = Config::parse("a=x");
  EXPECT_THROW(cfg.get_string("missing"), NotFound);
  EXPECT_THROW(cfg.get_int("a"), InvalidArgument);
  EXPECT_THROW(cfg.get_double("a"), InvalidArgument);
  EXPECT_THROW(cfg.get_bool("a"), InvalidArgument);
}

TEST(Config, TrailingCharactersRejected) {
  const Config cfg = Config::parse("n=12abc");
  EXPECT_THROW(cfg.get_int("n"), InvalidArgument);
}

TEST(Config, DefaultedGetters) {
  const Config cfg = Config::parse("x=5");
  EXPECT_EQ(cfg.get_int("x", 0), 5);
  EXPECT_EQ(cfg.get_int("y", 42), 42);
  EXPECT_EQ(cfg.get_string("z", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(cfg.get_double("w", 2.5), 2.5);
  EXPECT_TRUE(cfg.get_bool("b", true));
}

TEST(Config, BoolSynonyms) {
  const Config cfg = Config::parse("a=YES,b=off,c=1,d=False");
  EXPECT_TRUE(cfg.get_bool("a"));
  EXPECT_FALSE(cfg.get_bool("b"));
  EXPECT_TRUE(cfg.get_bool("c"));
  EXPECT_FALSE(cfg.get_bool("d"));
}

TEST(Config, TypedSetters) {
  Config cfg;
  cfg.set("i", static_cast<std::int64_t>(-7));
  cfg.set("d", 1.25);
  cfg.set("b", true);
  cfg.set("s", std::string("str"));
  EXPECT_EQ(cfg.get_int("i"), -7);
  EXPECT_DOUBLE_EQ(cfg.get_double("d"), 1.25);
  EXPECT_TRUE(cfg.get_bool("b"));
  EXPECT_EQ(cfg.get_string("s"), "str");
}

TEST(Config, MergeOverrides) {
  Config base = Config::parse("a=1,b=2");
  const Config over = Config::parse("b=20,c=30");
  base.merge(over);
  EXPECT_EQ(base.get_int("a"), 1);
  EXPECT_EQ(base.get_int("b"), 20);
  EXPECT_EQ(base.get_int("c"), 30);
}

TEST(Config, RoundTripToString) {
  const Config cfg = Config::parse("z=1,a=2");
  const Config again = Config::parse(cfg.to_string());
  EXPECT_EQ(cfg, again);
  // Keys render sorted.
  EXPECT_EQ(cfg.to_string(), "a=2,z=1");
}

TEST(Config, KeysSorted) {
  const Config cfg = Config::parse("beta=1,alpha=2");
  const auto keys = cfg.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "alpha");
  EXPECT_EQ(keys[1], "beta");
}

TEST(Config, EmptyKeyRejected) {
  Config cfg;
  EXPECT_THROW(cfg.set("", "v"), InvalidArgument);
}

}  // namespace
}  // namespace pa
