#include "pa/common/rng.h"

#include <gtest/gtest.h>

#include "pa/common/stats.h"

namespace pa {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(10.0, 20.0);
    EXPECT_GE(u, 10.0);
    EXPECT_LT(u, 20.0);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    s.add(rng.normal(10.0, 3.0));
  }
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    s.add(rng.exponential(0.5));
  }
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
}

TEST(Rng, LognormalMatchesAnalyticMean) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) {
    s.add(rng.lognormal(1.0, 0.5));
  }
  const double expected = std::exp(1.0 + 0.5 * 0.5 * 0.5);
  EXPECT_NEAR(s.mean() / expected, 1.0, 0.05);
}

TEST(Rng, PoissonMeanSmallLambda) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    s.add(static_cast<double>(rng.poisson(3.0)));
  }
  EXPECT_NEAR(s.mean(), 3.0, 0.1);
}

TEST(Rng, PoissonMeanLargeLambdaUsesNormalApprox) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    s.add(static_cast<double>(rng.poisson(200.0)));
  }
  EXPECT_NEAR(s.mean(), 200.0, 2.0);
}

TEST(Rng, BernoulliRate) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    hits += rng.bernoulli(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Rng, SplitStreamsDecorrelated) {
  Rng parent(9);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.next_u64() == c2.next_u64()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(DurationDistribution, ConstantSamplesExactly) {
  Rng rng(1);
  const auto d = DurationDistribution::constant(4.5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(d.sample(rng), 4.5);
  }
  EXPECT_DOUBLE_EQ(d.mean(), 4.5);
}

TEST(DurationDistribution, SamplesNonNegative) {
  Rng rng(1);
  const auto d = DurationDistribution::normal(0.1, 5.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(d.sample(rng), 0.0);
  }
}

TEST(DurationDistribution, MeanFormulas) {
  EXPECT_DOUBLE_EQ(DurationDistribution::uniform(2.0, 4.0).mean(), 3.0);
  EXPECT_DOUBLE_EQ(DurationDistribution::exponential(0.25).mean(), 4.0);
  EXPECT_NEAR(DurationDistribution::lognormal(0.0, 1.0).mean(),
              std::exp(0.5), 1e-12);
}

TEST(Rng, UniformBoundsValidated) {
  Rng rng(1);
  EXPECT_DEATH(rng.uniform(5.0, 1.0), "uniform bounds");
}

}  // namespace
}  // namespace pa
