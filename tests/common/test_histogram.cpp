#include "pa/common/histogram.h"

#include <gtest/gtest.h>

#include "pa/common/error.h"
#include "pa/common/rng.h"

namespace pa {
namespace {

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

TEST(LatencyHistogram, SingleValue) {
  LatencyHistogram h;
  h.record(0.5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 0.5);
  // Quantiles clamp to the observed range.
  EXPECT_DOUBLE_EQ(h.p50(), 0.5);
  EXPECT_DOUBLE_EQ(h.p99(), 0.5);
}

TEST(LatencyHistogram, MeanIsExact) {
  LatencyHistogram h;
  h.record(1.0);
  h.record(2.0);
  h.record(3.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
}

TEST(LatencyHistogram, QuantileWithinRelativeError) {
  LatencyHistogram h;
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.lognormal(-3.0, 1.0);  // ~50ms scale latencies
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  const double exact_p50 = values[values.size() / 2];
  const double exact_p99 = values[static_cast<std::size_t>(values.size() * 0.99)];
  EXPECT_NEAR(h.p50() / exact_p50, 1.0, 0.05);
  EXPECT_NEAR(h.p99() / exact_p99, 1.0, 0.05);
}

TEST(LatencyHistogram, ClampsOutOfRange) {
  LatencyHistogram h(1e-3, 10.0);
  h.record(1e-9);   // below range
  h.record(100.0);  // above range
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-9);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(LatencyHistogram, RecordNBatches) {
  LatencyHistogram h;
  h.record_n(2.0, 10);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  h.record_n(4.0, 0);  // zero-count is a no-op
  EXPECT_EQ(h.count(), 10u);
}

TEST(LatencyHistogram, MergeCombines) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.record(1.0);
  b.record(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(LatencyHistogram, MergeBoundsChecked) {
  LatencyHistogram a(1e-6, 10.0);
  LatencyHistogram b(1e-3, 10.0);
  EXPECT_THROW(a.merge(b), InvalidArgument);
}

TEST(LatencyHistogram, MergeWithEmpty) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.record(1.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.min(), 1.0);
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.record(1.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, QuantileArgValidated) {
  LatencyHistogram h;
  h.record(1.0);
  EXPECT_THROW(h.quantile(-0.1), InvalidArgument);
  EXPECT_THROW(h.quantile(1.1), InvalidArgument);
}

TEST(LatencyHistogram, InvalidBoundsRejected) {
  EXPECT_THROW(LatencyHistogram(0.0, 1.0), InvalidArgument);
  EXPECT_THROW(LatencyHistogram(1.0, 0.5), InvalidArgument);
}

}  // namespace
}  // namespace pa
