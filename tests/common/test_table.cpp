#include "pa/common/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "pa/common/error.h"

namespace pa {
namespace {

TEST(Table, AsciiContainsHeadersAndValues) {
  Table t("demo");
  t.set_columns(std::vector<std::string>{"name", "count"});
  t.add_row({std::string("foo"), static_cast<std::int64_t>(7)});
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("name"), std::string::npos);
  EXPECT_NE(ascii.find("count"), std::string::npos);
  EXPECT_NE(ascii.find("foo"), std::string::npos);
  EXPECT_NE(ascii.find("7"), std::string::npos);
}

TEST(Table, RowSizeValidated) {
  Table t;
  t.set_columns(std::vector<std::string>{"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), InvalidArgument);
}

TEST(Table, ColumnsLockedAfterRows) {
  Table t;
  t.set_columns(std::vector<std::string>{"a"});
  t.add_row({std::string("x")});
  EXPECT_THROW(t.set_columns(std::vector<std::string>{"a", "b"}),
               InvalidArgument);
}

TEST(Table, DoublePrecisionRespected) {
  Table t;
  t.set_columns({Column{"v", 2, true}});
  t.add_row({3.14159});
  EXPECT_NE(t.to_ascii().find("3.14"), std::string::npos);
  EXPECT_EQ(t.to_ascii().find("3.142"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Table, CsvRoundTripStructure) {
  Table t;
  t.set_columns(std::vector<std::string>{"k", "v"});
  t.add_row({std::string("x"), 1.5});
  t.add_row({std::string("y,z"), 2.5});
  const std::string csv = t.to_csv();
  std::istringstream iss(csv);
  std::string line;
  std::getline(iss, line);
  EXPECT_EQ(line, "k,v");
  std::getline(iss, line);
  EXPECT_EQ(line, "x,1.500");
  std::getline(iss, line);
  EXPECT_EQ(line, "\"y,z\",2.500");
}

TEST(Table, AtAccessorBoundsChecked) {
  Table t;
  t.set_columns(std::vector<std::string>{"a"});
  t.add_row({static_cast<std::int64_t>(1)});
  EXPECT_EQ(std::get<std::int64_t>(t.at(0, 0)), 1);
  EXPECT_THROW(t.at(1, 0), InvalidArgument);
  EXPECT_THROW(t.at(0, 1), InvalidArgument);
}

TEST(Table, WriteCsvToFile) {
  Table t;
  t.set_columns(std::vector<std::string>{"a"});
  t.add_row({static_cast<std::int64_t>(5)});
  const std::string path = "/tmp/pa_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "a\n5\n");
  std::remove(path.c_str());
}

TEST(Table, WriteCsvBadPathThrows) {
  Table t;
  t.set_columns(std::vector<std::string>{"a"});
  EXPECT_THROW(t.write_csv("/nonexistent-dir/x.csv"), Error);
}

TEST(Table, PrintIncludesTitle) {
  Table t("My Title");
  t.set_columns(std::vector<std::string>{"a"});
  std::ostringstream oss;
  t.print(oss);
  EXPECT_NE(oss.str().find("My Title"), std::string::npos);
}

}  // namespace
}  // namespace pa
