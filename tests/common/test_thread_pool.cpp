#include "pa/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "pa/common/error.h"

namespace pa {
namespace {

TEST(ThreadPool, ExecutesSubmittedWork) {
  ThreadPool pool(4);
  auto future = pool.submit([]() { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, RunsManyTasks) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.enqueue([&counter]() { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, UsesMultipleThreads) {
  ThreadPool pool(4);
  check::Mutex m{check::LockRank::kLeaf, "test"};
  std::set<std::thread::id> ids;
  std::atomic<int> running{0};
  for (int i = 0; i < 16; ++i) {
    pool.enqueue([&]() {
      running.fetch_add(1);
      // Hold the thread briefly so others must pick up work.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      check::MutexLock lock(m);
      ids.insert(std::this_thread::get_id());
    });
  }
  pool.wait_idle();
  EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPool, FutureCarriesExceptions) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, EnqueueExceptionSwallowed) {
  ThreadPool pool(1);
  pool.enqueue([]() { throw std::runtime_error("fire and forget"); });
  std::atomic<bool> ran{false};
  pool.enqueue([&ran]() { ran.store(true); });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());  // pool survived the throwing task
}

TEST(ThreadPool, ShutdownDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.enqueue([&counter]() {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
    }
    pool.shutdown();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ShutdownNowDiscardsQueued) {
  std::atomic<int> counter{0};
  ThreadPool pool(1);
  // Block the single worker, then stack up tasks that will be discarded.
  std::atomic<bool> release{false};
  pool.enqueue([&release]() {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int i = 0; i < 50; ++i) {
    pool.enqueue([&counter]() { counter.fetch_add(1); });
  }
  release.store(true);
  pool.shutdown_now();
  EXPECT_LT(counter.load(), 50);
}

TEST(ThreadPool, RejectsWorkAfterShutdown) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.enqueue([]() {}), InvalidStateError);
}

TEST(ThreadPool, SizeReported) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, RequiresAtLeastOneThread) {
  EXPECT_THROW(ThreadPool(0), InvalidArgument);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

// Regression: shutdown() used to fall through an empty already-shut-down
// branch and join workers a second time; it must return early instead.
TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.enqueue([]() {});
  pool.shutdown();
  pool.shutdown();  // second call must be a no-op, not a double join
  pool.shutdown_now();
  SUCCEED();
}

TEST(ThreadPool, WaitIdleReturnsAfterShutdown) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.enqueue([&counter]() { counter.fetch_add(1); });
  }
  pool.shutdown();  // drains the queue, joins workers
  pool.wait_idle();  // documented: returns immediately, never hangs
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPool, WaitIdleReturnsAfterShutdownNow) {
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  for (int i = 0; i < 8; ++i) {
    pool.enqueue([&release]() {
      while (!release.load()) {
        std::this_thread::yield();
      }
    });
  }
  release.store(true);
  pool.shutdown_now();  // discards queued tasks
  pool.wait_idle();  // must return even though discarded tasks never ran
  SUCCEED();
}

TEST(ThreadPool, ConcurrentShutdownCallsDontRace) {
  ThreadPool pool(4);
  for (int i = 0; i < 32; ++i) {
    pool.enqueue([]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  }
  std::thread other([&pool]() { pool.shutdown(); });
  pool.shutdown();
  other.join();
  pool.wait_idle();
  SUCCEED();
}

}  // namespace
}  // namespace pa
