/// TenantRegistry quota mechanics: in-flight unit caps, pilot caps, the
/// submit-rate token bucket, weights, and the tenant.* metric bindings.

#include "pa/tenant/registry.h"

#include <gtest/gtest.h>

#include <string>

#include "pa/common/error.h"
#include "pa/core/admission.h"
#include "pa/obs/metrics.h"

namespace pa::tenant {
namespace {

using core::UnitState;

TEST(TenantRegistry, UnlimitedByDefault) {
  TenantRegistry reg;
  for (int i = 0; i < 1000; ++i) {
    reg.admit_unit("anyone");
  }
  reg.admit_pilot("anyone");
  EXPECT_EQ(reg.inflight_units("anyone"), 1000);
  EXPECT_EQ(reg.live_pilots("anyone"), 1);
  EXPECT_EQ(reg.admitted("anyone"), 1001u);
  EXPECT_EQ(reg.rejected("anyone"), 0u);
}

TEST(TenantRegistry, InflightUnitQuotaRejectsAndRecovers) {
  TenantRegistry reg;
  Quota q;
  q.max_inflight_units = 2;
  reg.set_quota("t", q);
  reg.admit_unit("t");
  reg.admit_unit("t");
  EXPECT_THROW(reg.admit_unit("t"), QuotaExceeded);
  EXPECT_EQ(reg.rejected("t"), 1u);
  // A finalization frees the slot regardless of outcome.
  reg.unit_finalized("t", UnitState::kDone, 0.5);
  reg.admit_unit("t");
  EXPECT_EQ(reg.inflight_units("t"), 2);
  // Other tenants have independent accounts.
  reg.admit_unit("other");
  EXPECT_EQ(reg.rejected("other"), 0u);
}

TEST(TenantRegistry, PilotQuotaRejectsUntilReleased) {
  TenantRegistry reg;
  Quota q;
  q.max_pilots = 1;
  reg.set_quota("t", q);
  reg.admit_pilot("t");
  EXPECT_THROW(reg.admit_pilot("t"), QuotaExceeded);
  reg.pilot_released("t");
  reg.admit_pilot("t");
  EXPECT_EQ(reg.live_pilots("t"), 1);
}

TEST(TenantRegistry, SubmitRateTokenBucket) {
  double now = 0.0;
  TenantRegistry reg([&now]() { return now; });
  Quota q;
  q.submit_rate = 2.0;  // bucket depth derives to max(1, 2) = 2
  reg.set_quota("t", q);
  // Primed full: the burst allowance is immediately spendable.
  reg.admit_unit("t");
  reg.admit_unit("t");
  EXPECT_THROW(reg.admit_unit("t"), QuotaExceeded);
  // Refills at 2 tokens/s on the injected clock.
  now = 0.5;
  reg.admit_unit("t");
  EXPECT_THROW(reg.admit_unit("t"), QuotaExceeded);
  // The bucket never overfills past its depth.
  now = 100.0;
  reg.admit_unit("t");
  reg.admit_unit("t");
  EXPECT_THROW(reg.admit_unit("t"), QuotaExceeded);
  EXPECT_EQ(reg.rejected("t"), 3u);
}

TEST(TenantRegistry, ExplicitBurstOverridesDerivedDepth) {
  double now = 0.0;
  TenantRegistry reg([&now]() { return now; });
  Quota q;
  q.submit_rate = 1.0;
  q.burst = 5.0;
  reg.set_quota("t", q);
  for (int i = 0; i < 5; ++i) {
    reg.admit_unit("t");
  }
  EXPECT_THROW(reg.admit_unit("t"), QuotaExceeded);
}

TEST(TenantRegistry, RateQuotaRequiresClock) {
  TenantRegistry reg;  // no clock
  Quota q;
  q.submit_rate = 1.0;
  EXPECT_THROW(reg.set_quota("t", q), InvalidArgument);
}

TEST(TenantRegistry, WeightsDefaultToOneAndClampPositive) {
  TenantRegistry reg;
  EXPECT_DOUBLE_EQ(reg.tenant_weight("unknown"), 1.0);
  reg.set_weight("t", 2.5);
  EXPECT_DOUBLE_EQ(reg.tenant_weight("t"), 2.5);
  EXPECT_THROW(reg.set_weight("t", 0.0), InvalidArgument);
  EXPECT_THROW(reg.set_weight("t", -1.0), InvalidArgument);
}

TEST(TenantRegistry, ShareUnitsAccumulateCoreWeightedGrants) {
  TenantRegistry reg;
  reg.unit_dispatched("t", 4);
  reg.unit_dispatched("t", 1);
  // Defensive: a grant never counts less than one core.
  reg.unit_dispatched("t", 0);
  EXPECT_EQ(reg.share_units("t"), 6);
}

TEST(TenantRegistry, MetricsExportAggregateAndPerTenantSeries) {
  obs::MetricsRegistry metrics;
  TenantRegistry reg;
  reg.set_metrics(&metrics);
  Quota q;
  q.max_inflight_units = 1;
  reg.set_quota("acme", q);
  reg.admit_unit("acme");
  EXPECT_THROW(reg.admit_unit("acme"), QuotaExceeded);
  reg.unit_dispatched("acme", 2);
  reg.unit_finalized("acme", UnitState::kDone, 0.25);

  EXPECT_EQ(metrics.counter("tenant.admitted").value(), 1u);
  EXPECT_EQ(metrics.counter("tenant.rejected_quota").value(), 1u);
  EXPECT_EQ(metrics.counter("tenant.share_units").value(), 2u);
  EXPECT_EQ(metrics.counter("tenant.acme.admitted").value(), 1u);
  EXPECT_EQ(metrics.counter("tenant.acme.rejected_quota").value(), 1u);
  EXPECT_EQ(metrics.counter("tenant.acme.share_units").value(), 2u);
  EXPECT_DOUBLE_EQ(metrics.gauge("tenant.acme.inflight").value(), 0.0);
  EXPECT_EQ(metrics.histogram("tenant.acme.unit_wait").snapshot().count(), 1u);
}

TEST(TenantRegistry, LateMetricsAttachmentBindsExistingAccounts) {
  TenantRegistry reg;
  reg.admit_unit("early");  // account exists before the sink does
  obs::MetricsRegistry metrics;
  reg.set_metrics(&metrics);
  reg.admit_unit("early");
  // Only activity after the attach is exported (no retroactive replay).
  EXPECT_EQ(metrics.counter("tenant.early.admitted").value(), 1u);
  reg.set_metrics(nullptr);
  reg.admit_unit("early");  // must not touch the detached registry
  EXPECT_EQ(metrics.counter("tenant.early.admitted").value(), 1u);
  EXPECT_EQ(reg.admitted("early"), 3u);
}

TEST(TenantRegistry, FinalizationClampsAtZeroAndSkipsNegativeWaits) {
  obs::MetricsRegistry metrics;
  TenantRegistry reg;
  reg.set_metrics(&metrics);
  // A canceled submission compensates with wait = -1: no histogram sample,
  // and the in-flight account never goes negative.
  reg.unit_finalized("t", UnitState::kCanceled, -1.0);
  EXPECT_EQ(reg.inflight_units("t"), 0);
  EXPECT_EQ(metrics.histogram("tenant.t.unit_wait").snapshot().count(), 0u);
}

TEST(TenantRegistry, TighteningQuotaKeepsExistingCharges) {
  TenantRegistry reg;
  reg.admit_unit("t");
  reg.admit_unit("t");
  Quota q;
  q.max_inflight_units = 1;  // below current usage
  reg.set_quota("t", q);
  EXPECT_EQ(reg.inflight_units("t"), 2);  // kept
  EXPECT_THROW(reg.admit_unit("t"), QuotaExceeded);
  reg.unit_finalized("t", UnitState::kDone, 0.0);
  EXPECT_THROW(reg.admit_unit("t"), QuotaExceeded);  // still at the cap
  reg.unit_finalized("t", UnitState::kDone, 0.0);
  reg.admit_unit("t");
}

}  // namespace
}  // namespace pa::tenant
