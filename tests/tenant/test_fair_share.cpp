/// End-to-end tenant isolation on the simulated stack: a noisy tenant
/// flooding the queue cannot starve quiet tenants once weighted fair
/// share is on, and quotas reject at the submission boundary. Asserted
/// through the tenant.* metric series (the same evidence an operator
/// has).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "pa/common/error.h"
#include "pa/core/pilot_compute_service.h"
#include "pa/infra/batch_cluster.h"
#include "pa/obs/metrics.h"
#include "pa/rt/sim_runtime.h"
#include "pa/saga/session.h"
#include "pa/tenant/registry.h"

namespace pa::tenant {
namespace {

using core::ComputeUnitDescription;
using core::PilotComputeService;
using core::PilotDescription;

constexpr int kQuietUnits = 20;
constexpr int kNoisyUnits = 10 * kQuietUnits;
constexpr double kUnitSeconds = 10.0;

/// One simulated contention world: a 4-core pilot, strict FCFS policy so
/// any isolation observed is the fair-share pass's doing.
struct World {
  explicit World(bool fair_share) {
    infra::BatchClusterConfig cfg;
    cfg.name = "hpc-a";
    cfg.num_nodes = 1;
    cfg.node.cores = 4;
    cluster = std::make_shared<infra::BatchCluster>(engine, cfg);
    session.register_resource("slurm://hpc-a", cluster);
    runtime = std::make_unique<rt::SimRuntime>(engine, session);
    service = std::make_unique<PilotComputeService>(*runtime, "fifo");
    registry = std::make_unique<TenantRegistry>(
        [this]() { return runtime->now(); });
    registry->set_metrics(&metrics);
    service->attach_admission(registry.get(), fair_share);

    PilotDescription p;
    p.resource_url = "slurm://hpc-a";
    p.nodes = 1;
    p.walltime = 1e9;
    service->submit_pilot(p);
  }

  void submit_tenant_units(const std::string& tenant, int count) {
    std::vector<ComputeUnitDescription> batch(static_cast<std::size_t>(count));
    for (auto& d : batch) {
      d.tenant = tenant;
      d.cores = 1;
      d.duration = kUnitSeconds;
    }
    service->submit_units(batch);
  }

  std::uint64_t counter(const std::string& name) {
    return metrics.counter(name).value();
  }

  // Declaration order is teardown order in reverse: the service dies
  // first, while the registry and metrics sinks it reports into (unit
  // finalizations during shutdown) are still alive.
  sim::Engine engine;
  saga::Session session;
  std::shared_ptr<infra::BatchCluster> cluster;
  obs::MetricsRegistry metrics;
  std::unique_ptr<TenantRegistry> registry;
  std::unique_ptr<rt::SimRuntime> runtime;
  std::unique_ptr<PilotComputeService> service;
};

TEST(TenantFairShare, NoisyTenantDominatesWithoutFairShare) {
  // Control: FCFS alone serves the earlier flood exclusively, so the
  // quiet tenant gets nothing while the noisy backlog lasts.
  World w(/*fair_share=*/false);
  w.submit_tenant_units("noisy", kNoisyUnits);
  w.submit_tenant_units("quiet", kQuietUnits);
  w.engine.run_until(80.0);
  EXPECT_GT(w.registry->share_units("noisy"), 0);
  EXPECT_EQ(w.registry->share_units("quiet"), 0);
}

TEST(TenantFairShare, ShareConvergesToEqualWeights) {
  // With fair share on and equal (default) weights, grants while both
  // tenants have backlog split ~evenly despite the 10x submission skew.
  World w(/*fair_share=*/true);
  w.submit_tenant_units("noisy", kNoisyUnits);
  w.submit_tenant_units("quiet", kQuietUnits);
  w.engine.run_until(80.0);  // quiet backlog must still be non-empty
  const auto noisy = static_cast<double>(w.registry->share_units("noisy"));
  const auto quiet = static_cast<double>(w.registry->share_units("quiet"));
  ASSERT_GT(noisy, 0.0);
  ASSERT_GT(quiet, 0.0);
  const double ratio = quiet / noisy;
  EXPECT_GE(ratio, 0.5) << "quiet=" << quiet << " noisy=" << noisy;
  EXPECT_LE(ratio, 2.0) << "quiet=" << quiet << " noisy=" << noisy;
  // The metric series carries the same evidence as the introspection API.
  EXPECT_EQ(w.counter("tenant.quiet.share_units"),
            static_cast<std::uint64_t>(w.registry->share_units("quiet")));
  // +1: the World's pilot submission is admitted through the registry
  // too (default tenant).
  EXPECT_EQ(w.counter("tenant.admitted"),
            static_cast<std::uint64_t>(kQuietUnits + kNoisyUnits + 1));
}

TEST(TenantFairShare, WeightedQuietTenantP99WaitWithinTwiceBaseline) {
  // Baseline: the quiet tenant alone on the same capacity.
  double baseline_p99 = 0.0;
  {
    World w(/*fair_share=*/true);
    w.submit_tenant_units("quiet", kQuietUnits);
    w.service->wait_all_units();
    baseline_p99 =
        w.metrics.histogram("tenant.quiet.unit_wait").snapshot().p99();
    ASSERT_GT(baseline_p99, 0.0);
  }

  // Contended: the noisy flood arrives first, but the quiet tenant's
  // 3x weight keeps its credit ahead, bounding its p99 wait at < 2x the
  // alone-on-the-pool baseline.
  World w(/*fair_share=*/true);
  w.registry->set_weight("quiet", 3.0);
  w.registry->set_weight("noisy", 1.0);
  w.submit_tenant_units("noisy", kNoisyUnits);
  w.submit_tenant_units("quiet", kQuietUnits);
  w.service->wait_all_units();
  const auto contended =
      w.metrics.histogram("tenant.quiet.unit_wait").snapshot();
  ASSERT_EQ(contended.count(), static_cast<std::uint64_t>(kQuietUnits));
  EXPECT_LE(contended.p99(), 2.0 * baseline_p99)
      << "baseline p99=" << baseline_p99 << " contended "
      << contended.summary();
}

TEST(TenantFairShare, QuotaRejectsAtSubmissionBoundary) {
  World w(/*fair_share=*/true);
  Quota q;
  q.max_inflight_units = 2;
  w.registry->set_quota("capped", q);
  ComputeUnitDescription d;
  d.tenant = "capped";
  d.duration = 1.0;
  w.service->submit_unit(d);
  w.service->submit_unit(d);
  // The third submission dies on the caller's thread with the typed
  // error, before consuming any control-plane queue space.
  EXPECT_THROW(w.service->submit_unit(d), QuotaExceeded);
  EXPECT_EQ(w.counter("tenant.capped.rejected_quota"), 1u);
  // Finalization frees the slots: the tenant can submit again.
  w.service->wait_all_units();
  w.service->submit_unit(d);
  w.service->wait_all_units();
  EXPECT_EQ(w.registry->inflight_units("capped"), 0);
}

TEST(TenantFairShare, MidBurstQuotaRejectionKeepsEarlierUnits) {
  World w(/*fair_share=*/true);
  Quota q;
  q.max_inflight_units = 3;
  w.registry->set_quota("capped", q);
  std::vector<ComputeUnitDescription> batch(5);
  for (auto& d : batch) {
    d.tenant = "capped";
    d.duration = 1.0;
  }
  EXPECT_THROW(w.service->submit_units(batch), QuotaExceeded);
  // The three admitted units stand and run to completion.
  w.service->wait_all_units();
  EXPECT_EQ(w.service->metrics().units_done, 3u);
  EXPECT_EQ(w.registry->admitted("capped"), 3u);
  EXPECT_EQ(w.registry->rejected("capped"), 1u);
}

TEST(TenantFairShare, PilotQuotaGatesSubmitPilot) {
  World w(/*fair_share=*/true);
  Quota q;
  q.max_pilots = 1;
  w.registry->set_quota("hpc", q);
  PilotDescription p;
  p.resource_url = "slurm://hpc-a";
  p.nodes = 1;
  p.walltime = 1e9;
  p.tenant = "hpc";
  w.service->submit_pilot(p);
  EXPECT_THROW(w.service->submit_pilot(p), QuotaExceeded);
  EXPECT_EQ(w.registry->live_pilots("hpc"), 1);
}

}  // namespace
}  // namespace pa::tenant
