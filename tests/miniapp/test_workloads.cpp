#include "pa/miniapp/workloads.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "pa/common/error.h"

namespace pa::miniapp {
namespace {

TEST(TaskBatch, SamplesDurations) {
  pa::Rng rng(1);
  const auto batch = make_task_batch(
      100, 2, pa::DurationDistribution::uniform(1.0, 5.0), rng, false);
  EXPECT_EQ(batch.size(), 100u);
  for (const auto& d : batch) {
    EXPECT_EQ(d.cores, 2);
    EXPECT_GE(d.duration, 1.0);
    EXPECT_LT(d.duration, 5.0);
    EXPECT_FALSE(static_cast<bool>(d.work));
  }
}

TEST(TaskBatch, RealWorkAttachesPayload) {
  pa::Rng rng(1);
  const auto batch =
      make_task_batch(3, 1, pa::DurationDistribution::constant(0.0), rng, true);
  for (const auto& d : batch) {
    EXPECT_TRUE(static_cast<bool>(d.work));
    d.work();  // zero-duration burn returns immediately
  }
}

TEST(TextCorpus, ShapeAndZipfSkew) {
  const auto corpus = generate_text_corpus(1000, 10, 50, 3);
  EXPECT_EQ(corpus.size(), 1000u);
  std::map<std::string, int> counts;
  for (const auto& line : corpus) {
    const auto words = split_words(line);
    EXPECT_EQ(words.size(), 10u);
    for (const auto& w : words) {
      counts[w] += 1;
    }
  }
  // Zipf: rank-0 word far more frequent than rank-30.
  EXPECT_GT(counts["w0"], counts["w30"] * 3);
}

TEST(TextCorpus, Deterministic) {
  EXPECT_EQ(generate_text_corpus(10, 5, 20, 7),
            generate_text_corpus(10, 5, 20, 7));
  EXPECT_NE(generate_text_corpus(10, 5, 20, 7),
            generate_text_corpus(10, 5, 20, 8));
}

TEST(SplitWords, HandlesWhitespace) {
  EXPECT_EQ(split_words("  a  bb   c "),
            (std::vector<std::string>{"a", "bb", "c"}));
  EXPECT_TRUE(split_words("").empty());
}

TEST(Dna, AlphabetAndLength) {
  const std::string dna = generate_dna(1000, 5);
  EXPECT_EQ(dna.size(), 1000u);
  for (char c : dna) {
    EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T');
  }
}

TEST(Reads, SampledFromReference) {
  const std::string ref = generate_dna(500, 1);
  const auto reads = generate_reads(ref, 50, 30, 0.0, 2);
  EXPECT_EQ(reads.size(), 50u);
  for (const auto& read : reads) {
    EXPECT_EQ(read.size(), 30u);
    // Zero error rate: every read is an exact substring.
    EXPECT_NE(ref.find(read), std::string::npos);
  }
}

TEST(Reads, ErrorRateMutates) {
  const std::string ref = generate_dna(500, 1);
  const auto clean = generate_reads(ref, 100, 50, 0.0, 3);
  const auto noisy = generate_reads(ref, 100, 50, 0.2, 3);
  int exact = 0;
  for (const auto& read : noisy) {
    exact += ref.find(read) != std::string::npos ? 1 : 0;
  }
  // At 20% per-base error over 50 bases, exact matches are essentially
  // impossible.
  EXPECT_LT(exact, 5);
  (void)clean;
}

TEST(Reads, ValidatesArgs) {
  EXPECT_THROW(generate_reads("ACGT", 1, 10, 0.0, 1), pa::InvalidArgument);
}

TEST(Kmers, CountAndContent) {
  const auto kmers = extract_kmers("ACGTA", 3);
  EXPECT_EQ(kmers, (std::vector<std::string>{"ACG", "CGT", "GTA"}));
  EXPECT_TRUE(extract_kmers("AC", 3).empty());
  EXPECT_THROW(extract_kmers("ACGT", 0), pa::InvalidArgument);
}

TEST(Frames, GeneratorShape) {
  pa::Rng rng(4);
  const DetectorFrame frame = generate_frame(64, 48, 5, rng);
  EXPECT_EQ(frame.width, 64u);
  EXPECT_EQ(frame.height, 48u);
  EXPECT_EQ(frame.pixels.size(), 64u * 48u);
}

TEST(Frames, SerializationRoundTrip) {
  pa::Rng rng(4);
  const DetectorFrame frame = generate_frame(32, 32, 3, rng);
  const std::string bytes = serialize_frame(frame);
  const DetectorFrame back = deserialize_frame(bytes);
  EXPECT_EQ(back.width, frame.width);
  EXPECT_EQ(back.height, frame.height);
  EXPECT_EQ(back.pixels, frame.pixels);
}

TEST(Frames, DeserializeRejectsCorrupt) {
  EXPECT_THROW(deserialize_frame("xy"), pa::InvalidArgument);
  pa::Rng rng(4);
  std::string bytes = serialize_frame(generate_frame(8, 8, 1, rng));
  bytes.pop_back();
  EXPECT_THROW(deserialize_frame(bytes), pa::InvalidArgument);
}

TEST(Reconstruction, FindsInjectedPeaks) {
  pa::Rng rng(10);
  int total_found = 0;
  constexpr int kFrames = 20;
  constexpr int kPeaksPerFrame = 4;
  for (int i = 0; i < kFrames; ++i) {
    const DetectorFrame frame = generate_frame(128, 128, kPeaksPerFrame, rng);
    const ReconstructionResult r = reconstruct_frame(frame);
    total_found += r.peaks_found;
    EXPECT_GT(r.background_mean, 30.0);
    EXPECT_LT(r.background_mean, 80.0);
  }
  // Peaks can merge or sit at edges; expect to recover most of them.
  const double avg = static_cast<double>(total_found) / kFrames;
  EXPECT_GT(avg, kPeaksPerFrame * 0.5);
  EXPECT_LT(avg, kPeaksPerFrame * 1.5);
}

TEST(Reconstruction, NoPeaksInPureNoise) {
  pa::Rng rng(11);
  int total = 0;
  for (int i = 0; i < 10; ++i) {
    const DetectorFrame frame = generate_frame(64, 64, 0, rng);
    total += reconstruct_frame(frame).peaks_found;
  }
  EXPECT_LE(total, 10);  // a stray fluctuation or two at most
}

TEST(Reconstruction, TinyFrameRejected) {
  DetectorFrame frame;
  frame.width = 2;
  frame.height = 2;
  frame.pixels.assign(4, 0);
  EXPECT_THROW(reconstruct_frame(frame), pa::InvalidArgument);
}

}  // namespace
}  // namespace pa::miniapp
