#include "pa/miniapp/task_profile.h"

#include <gtest/gtest.h>

#include <memory>

#include "pa/core/pilot_compute_service.h"
#include "pa/infra/batch_cluster.h"
#include "pa/rt/local_runtime.h"
#include "pa/rt/sim_runtime.h"
#include "pa/saga/session.h"

namespace pa::miniapp {
namespace {

TEST(MachineProfile, PredictionComposesPhases) {
  MachineProfile machine;
  machine.gflops = 2.0;
  machine.read_bandwidth = 1e8;
  machine.write_bandwidth = 5e7;
  TaskProfile task;
  task.compute_gflop = 4.0;   // 2 s
  task.read_bytes = 2e8;      // 2 s
  task.write_bytes = 1e8;     // 2 s
  EXPECT_NEAR(machine.predict_seconds(task), 6.0, 1e-12);
}

TEST(MachineProfile, InvalidRatesRejected) {
  MachineProfile machine;
  machine.gflops = 0.0;
  EXPECT_THROW(machine.predict_seconds(TaskProfile{}), pa::InvalidArgument);
}

TEST(TaskProfile, ScalingIsElementwise) {
  TaskProfile task{2.0, 4.0, 6.0, 8.0};
  const TaskProfile scaled = task.scaled(0.5);
  EXPECT_DOUBLE_EQ(scaled.compute_gflop, 1.0);
  EXPECT_DOUBLE_EQ(scaled.read_bytes, 2.0);
  EXPECT_DOUBLE_EQ(scaled.write_bytes, 3.0);
  EXPECT_DOUBLE_EQ(scaled.memory_bytes, 4.0);
}

TEST(ProfiledUnit, CarriesPredictionAndAttributes) {
  MachineProfile machine;
  TaskProfile task;
  task.compute_gflop = 4.0;
  const auto d = make_profiled_unit(task, machine, 2);
  EXPECT_EQ(d.cores, 2);
  EXPECT_NEAR(d.duration, 2.0, 1e-12);
  EXPECT_NEAR(d.attributes.get_double("compute_gflop"), 4.0, 1e-12);
  EXPECT_TRUE(static_cast<bool>(d.work));
}

TEST(ProfiledUnit, SimulatedDurationDrivesSimRuntime) {
  sim::Engine engine;
  saga::Session session;
  infra::BatchClusterConfig cfg;
  cfg.name = "hpc";
  cfg.num_nodes = 2;
  session.register_resource(
      "slurm://hpc", std::make_shared<infra::BatchCluster>(engine, cfg));
  rt::SimRuntime runtime(engine, session);
  core::PilotComputeService service(runtime);
  core::PilotDescription pd;
  pd.resource_url = "slurm://hpc";
  pd.nodes = 1;
  pd.walltime = 1e6;
  service.submit_pilot(pd);

  MachineProfile machine;
  machine.gflops = 2.0;
  TaskProfile task;
  task.compute_gflop = 20.0;  // 10 s on this machine
  core::ComputeUnit unit =
      service.submit_unit(make_profiled_unit(task, machine));
  unit.wait(1e6);
  EXPECT_NEAR(unit.times().exec_time(), 10.02, 1e-6);  // + dispatch
}

TEST(ProfiledUnit, EmulatorRunsOnLocalRuntime) {
  rt::LocalRuntime runtime;
  core::PilotComputeService service(runtime);
  core::PilotDescription pd;
  pd.resource_url = "local://host";
  pd.nodes = 1;
  pd.walltime = 1e9;
  service.submit_pilot(pd);

  MachineProfile machine;
  machine.gflops = 1e9;           // compute ~free
  machine.read_bandwidth = 1e12;  // io ~free
  machine.write_bandwidth = 1e12;
  TaskProfile task;
  task.compute_gflop = 0.02;      // ~20 ms
  task.memory_bytes = 8e6;        // 1M doubles touched
  core::ComputeUnit unit =
      service.submit_unit(make_profiled_unit(task, machine));
  EXPECT_EQ(unit.wait(60.0), core::UnitState::kDone);
}

TEST(ProfiledBatch, SamplesScalesAndNames) {
  pa::Rng rng(3);
  MachineProfile machine;
  TaskProfile base;
  base.compute_gflop = 2.0;  // 1 s at default gflops
  const auto batch = make_profiled_batch(
      50, base, machine, pa::DurationDistribution::uniform(0.5, 2.0), rng);
  ASSERT_EQ(batch.size(), 50u);
  double min_d = 1e9;
  double max_d = 0.0;
  for (const auto& d : batch) {
    min_d = std::min(min_d, d.duration);
    max_d = std::max(max_d, d.duration);
    EXPECT_FALSE(d.name.empty());
  }
  EXPECT_GE(min_d, 0.5);
  EXPECT_LE(max_d, 2.0);
  EXPECT_GT(max_d, min_d);  // heterogeneity actually present
}

}  // namespace
}  // namespace pa::miniapp
