#include "pa/miniapp/experiment.h"

#include <gtest/gtest.h>

#include <set>

#include "pa/common/error.h"

namespace pa::miniapp {
namespace {

TEST(ExperimentDesign, CartesianProductSizeAndOrder) {
  ExperimentDesign design;
  design.add_factor("a", std::vector<std::int64_t>{1, 2});
  design.add_factor("b", std::vector<std::string>{"x", "y", "z"});
  const auto combos = design.combinations();
  ASSERT_EQ(combos.size(), 6u);
  // Last factor varies fastest.
  EXPECT_EQ(combos[0].get_string("a"), "1");
  EXPECT_EQ(combos[0].get_string("b"), "x");
  EXPECT_EQ(combos[1].get_string("b"), "y");
  EXPECT_EQ(combos[3].get_string("a"), "2");
}

TEST(ExperimentDesign, NoFactorsMeansOneEmptyCombo) {
  ExperimentDesign design;
  EXPECT_EQ(design.combinations().size(), 1u);
}

TEST(ExperimentDesign, TrialCountIncludesReps) {
  ExperimentDesign design;
  design.add_factor("a", std::vector<std::int64_t>{1, 2, 3});
  design.set_repetitions(5);
  EXPECT_EQ(design.trial_count(), 15u);
}

TEST(ExperimentDesign, Validation) {
  ExperimentDesign design;
  EXPECT_THROW(design.add_factor("", std::vector<std::string>{"x"}),
               pa::InvalidArgument);
  EXPECT_THROW(design.add_factor("a", std::vector<std::string>{}),
               pa::InvalidArgument);
  design.add_factor("a", std::vector<std::string>{"x"});
  EXPECT_THROW(design.add_factor("a", std::vector<std::string>{"y"}),
               pa::InvalidArgument);
  EXPECT_THROW(design.set_repetitions(0), pa::InvalidArgument);
}

TEST(ExperimentRunner, RunsAllTrialsWithDistinctSeeds) {
  ExperimentDesign design;
  design.add_factor("n", std::vector<std::int64_t>{1, 2});
  design.set_repetitions(3);
  std::set<std::uint64_t> seeds;
  ExperimentRunner runner("demo", [&](const pa::Config& factors,
                                      std::uint64_t seed) {
    seeds.insert(seed);
    return std::map<std::string, double>{
        {"value", static_cast<double>(factors.get_int("n")) * 10.0}};
  });
  const ResultSet results = runner.run(design);
  EXPECT_EQ(results.size(), 6u);
  EXPECT_EQ(seeds.size(), 6u);  // all trials decorrelated
}

TEST(ExperimentRunner, SeedsDeterministicAcrossRuns) {
  ExperimentDesign design;
  design.add_factor("n", std::vector<std::int64_t>{1, 2});
  design.set_repetitions(2);
  auto collect = [&]() {
    std::vector<std::uint64_t> seeds;
    ExperimentRunner runner("demo", [&](const pa::Config&, std::uint64_t s) {
      seeds.push_back(s);
      return std::map<std::string, double>{};
    });
    runner.run(design, 99);
    return seeds;
  };
  EXPECT_EQ(collect(), collect());
}

TEST(ExperimentRunner, ProgressReported) {
  ExperimentDesign design;
  design.add_factor("n", std::vector<std::int64_t>{1, 2, 3});
  ExperimentRunner runner("demo", [](const pa::Config&, std::uint64_t) {
    return std::map<std::string, double>{};
  });
  std::vector<std::size_t> progress;
  runner.set_progress([&](std::size_t done, std::size_t total) {
    progress.push_back(done);
    EXPECT_EQ(total, 3u);
  });
  runner.run(design);
  EXPECT_EQ(progress, (std::vector<std::size_t>{1, 2, 3}));
}

class ResultSetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int n : {1, 2}) {
      for (int rep = 0; rep < 3; ++rep) {
        Observation obs;
        obs.factors.set("n", static_cast<std::int64_t>(n));
        obs.repetition = rep;
        obs.metrics["runtime"] = 10.0 * n + rep;
        obs.metrics["throughput"] = 100.0 / n;
        results_.add(std::move(obs));
      }
    }
  }

  ResultSet results_;
};

TEST_F(ResultSetTest, MetricNamesSorted) {
  EXPECT_EQ(results_.metric_names(),
            (std::vector<std::string>{"runtime", "throughput"}));
}

TEST_F(ResultSetTest, RawTableShape) {
  const pa::Table table = results_.to_table("raw");
  EXPECT_EQ(table.row_count(), 6u);
  EXPECT_EQ(table.column_count(), 4u);  // n, rep, runtime, throughput
}

TEST_F(ResultSetTest, SummaryAggregatesPerCombination) {
  const pa::Table table = results_.summary_table("runtime");
  ASSERT_EQ(table.row_count(), 2u);
  // n=1: runtimes 10, 11, 12 -> mean 11.
  EXPECT_DOUBLE_EQ(std::get<double>(table.at(0, 1)), 11.0);
  EXPECT_EQ(std::get<std::int64_t>(table.at(0, 3)), 3);
  // n=2: 20, 21, 22 -> mean 21.
  EXPECT_DOUBLE_EQ(std::get<double>(table.at(1, 1)), 21.0);
}

TEST_F(ResultSetTest, MeanMetricWithFilter) {
  pa::Config where;
  where.set("n", static_cast<std::int64_t>(2));
  EXPECT_DOUBLE_EQ(results_.mean_metric("runtime", where), 21.0);
  EXPECT_DOUBLE_EQ(results_.mean_metric("throughput", where), 50.0);
}

TEST_F(ResultSetTest, MeanMetricNoMatchThrows) {
  pa::Config where;
  where.set("n", static_cast<std::int64_t>(99));
  EXPECT_THROW(results_.mean_metric("runtime", where), pa::NotFound);
}

TEST_F(ResultSetTest, MetricSamplesFiltered) {
  pa::Config where;
  where.set("n", static_cast<std::int64_t>(1));
  const pa::SampleSet samples = results_.metric_samples("runtime", where);
  EXPECT_EQ(samples.count(), 3u);
  EXPECT_DOUBLE_EQ(samples.min(), 10.0);
  EXPECT_DOUBLE_EQ(samples.max(), 12.0);
}

TEST(ExperimentRunner, NullTrialRejected) {
  EXPECT_THROW(ExperimentRunner("x", nullptr), pa::InvalidArgument);
}

}  // namespace
}  // namespace pa::miniapp
