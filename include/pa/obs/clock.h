#pragma once
/// \file clock.h
/// \brief Pluggable time source for the observability layer.
///
/// The same instrumentation code must produce simulated timestamps when the
/// middleware runs on `pa::rt::SimRuntime` (so traces line up with the DES
/// clock) and wall-clock timestamps on `pa::rt::LocalRuntime`. A `Clock` is
/// the seam: `Tracer` stamps records through whichever implementation it
/// was constructed with.

#include <functional>

#include "pa/common/time_utils.h"
#include "pa/sim/engine.h"

namespace pa::obs {

/// Time source interface; `now()` is seconds on some monotonic axis.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double now() const = 0;
};

/// Wall time (monotonic, see pa::wall_seconds) — for LocalRuntime stacks.
class WallClock final : public Clock {
 public:
  double now() const override { return pa::wall_seconds(); }
};

/// Virtual time of a DES engine — for SimRuntime stacks.
class SimClock final : public Clock {
 public:
  explicit SimClock(const sim::Engine& engine) : engine_(engine) {}
  double now() const override { return engine_.now(); }

 private:
  const sim::Engine& engine_;
};

/// Adapts any callable returning seconds (e.g. [&rt]{ return rt.now(); }).
class FunctionClock final : public Clock {
 public:
  explicit FunctionClock(std::function<double()> fn) : fn_(std::move(fn)) {}
  double now() const override { return fn_(); }

 private:
  std::function<double()> fn_;
};

}  // namespace pa::obs
