#pragma once
/// \file export.h
/// \brief End-of-run exporters for metrics and traces.
///
/// JSON is the machine-readable artifact benchmark runs dump via
/// `--metrics-out` (one self-contained document: counters, gauges,
/// histogram summaries, spans, events); CSV is the flat form for
/// spreadsheet/pandas consumption. Exporters read consistent snapshots, so
/// they may run while writers are still active (numbers are then simply
/// "as of now").

#include <ostream>
#include <string>

#include "pa/obs/metrics.h"
#include "pa/obs/tracer.h"

namespace pa::obs {

/// Escapes a string for embedding in a JSON document (quotes included).
std::string json_quote(const std::string& s);

/// {"counters": {...}, "gauges": {...}, "histograms": {name: summary...}}
void write_metrics_json(std::ostream& out, const MetricsRegistry& registry);

/// {"dropped": n, "spans": [...], "events": [...]}
void write_trace_json(std::ostream& out, const Tracer& tracer);

/// One combined document: {"metrics": ..., "trace": ...}. Either source
/// may be null; its section is then an empty object.
void write_json(std::ostream& out, const MetricsRegistry* registry,
                const Tracer* tracer);

/// Flat rows: "counter,<name>,<value>", "gauge,<name>,<value>",
/// "histogram,<name>,<count>,<mean>,<min>,<p50>,<p95>,<p99>,<max>".
void write_metrics_csv(std::ostream& out, const MetricsRegistry& registry);

/// Flat rows: "span,<name>,<entity>,<start>,<end>" and
/// "event,<name>,<entity>,<time>,<detail>".
void write_trace_csv(std::ostream& out, const Tracer& tracer);

}  // namespace pa::obs
