#pragma once
/// \file tracer.h
/// \brief Lightweight span/event recorder for pilot- and unit-lifecycle
/// transitions.
///
/// A *span* is a named interval attached to an entity (e.g. span
/// "pilot.startup" on pilot-1 covering submit -> active); an *event* is a
/// point-in-time record (e.g. "unit.state" with detail "RUNNING").
/// Timestamps come either from the tracer's pluggable `Clock` (sim virtual
/// clock for SimRuntime stacks, wall clock for LocalRuntime) or are passed
/// explicitly by instrumented components that already know their runtime's
/// clock.
///
/// Thread-safe; storage is bounded (`max_records`) so long benchmark runs
/// cannot grow without limit — overflow is counted, never silent.

#include <cstddef>
#include <string>
#include <vector>

#include "pa/check/mutex.h"
#include "pa/obs/clock.h"

namespace pa::obs {

/// A named interval on an entity's lifecycle.
struct Span {
  std::string name;    ///< e.g. "pilot.startup", "unit.exec"
  std::string entity;  ///< e.g. "pilot-1", "unit-42"
  double start = 0.0;
  double end = -1.0;  ///< -1 while still open
};

/// A point-in-time record.
struct Event {
  std::string name;    ///< e.g. "unit.state"
  std::string entity;  ///< e.g. "unit-42"
  std::string detail;  ///< e.g. "RUNNING"
  double time = 0.0;
};

class Tracer {
 public:
  using SpanId = std::size_t;
  static constexpr SpanId kInvalidSpan = static_cast<SpanId>(-1);

  /// The clock must outlive the tracer. `max_records` bounds spans and
  /// events independently.
  explicit Tracer(const Clock& clock, std::size_t max_records = 1 << 20);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span stamped with the tracer's clock. Returns kInvalidSpan
  /// (and counts a drop) at capacity.
  SpanId begin_span(std::string name, std::string entity);
  /// Closes an open span with the tracer's clock; no-op for kInvalidSpan.
  void end_span(SpanId id);

  /// Records a completed span with caller-supplied timestamps (components
  /// that sit on a specific runtime clock use this form).
  void record_span(std::string name, std::string entity, double start,
                   double end);

  /// Point event stamped with the tracer's clock.
  void event(std::string name, std::string entity, std::string detail = "");
  /// Point event with a caller-supplied timestamp.
  void event_at(double time, std::string name, std::string entity,
                std::string detail = "");

  double now() const { return clock_.now(); }

  /// Consistent snapshots.
  std::vector<Span> spans() const;
  std::vector<Event> events() const;
  /// Spans with `name`, in record order (test/analysis convenience).
  std::vector<Span> spans_named(const std::string& name) const;
  /// Records discarded because a buffer was full.
  std::size_t dropped() const;

  void clear();

 private:
  const Clock& clock_;
  const std::size_t max_records_;
  mutable check::Mutex mutex_{check::LockRank::kTracer, "obs::Tracer"};
  std::vector<Span> spans_ PA_GUARDED_BY(mutex_);
  std::vector<Event> events_ PA_GUARDED_BY(mutex_);
  std::size_t dropped_ PA_GUARDED_BY(mutex_) = 0;
};

}  // namespace pa::obs
