#pragma once
/// \file metrics.h
/// \brief Thread-safe metrics registry: counters, gauges, and latency
/// histograms keyed by name.
///
/// Design goals (arXiv:2103.00091 shows overhead claims need per-component
/// instrumentation, not end-to-end timers):
///  * shared safely between the middleware and LocalRuntime pool workers —
///    counters are relaxed atomics, gauges CAS, histograms mutex-guarded;
///  * near-zero cost when unused — instrumented components hold a nullable
///    `MetricsRegistry*` and skip all work when no sink is attached;
///  * instrument handles returned by the registry are stable for its
///    lifetime, so hot paths can look a metric up once and keep the
///    reference.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pa/check/mutex.h"
#include "pa/common/histogram.h"

namespace pa::obs {

/// Monotonic event count (jobs started, passes run, messages produced).
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (queue length, free nodes, utilization).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Mutex-guarded wrapper making `pa::LatencyHistogram` safe to record into
/// from concurrent pool workers.
class Histogram {
 public:
  explicit Histogram(double min_value = 1e-6, double max_value = 4096.0)
      : hist_(min_value, max_value) {}

  void record(double value) {
    check::MutexLock lock(mutex_);
    hist_.record(value);
  }
  void record_n(double value, std::uint64_t count) {
    check::MutexLock lock(mutex_);
    hist_.record_n(value, count);
  }
  /// Consistent copy for readers/exporters.
  LatencyHistogram snapshot() const {
    check::MutexLock lock(mutex_);
    return hist_;
  }

 private:
  mutable check::Mutex mutex_{check::LockRank::kMetricsHistogram,
                              "obs::Histogram"};
  LatencyHistogram hist_ PA_GUARDED_BY(mutex_);
};

/// Named instrument registry. Lookup is mutex-guarded; the returned
/// references stay valid for the registry's lifetime (instruments are
/// heap-allocated and never removed).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter named `name`, creating it on first use.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Bounds apply only on first creation; later calls return the existing
  /// histogram unchanged.
  Histogram& histogram(const std::string& name, double min_value = 1e-6,
                       double max_value = 4096.0);

  /// Sorted-by-name snapshots for exporters.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, LatencyHistogram>> histograms() const;

 private:
  mutable check::Mutex mutex_{check::LockRank::kMetricsRegistry,
                              "obs::MetricsRegistry"};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      PA_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      PA_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      PA_GUARDED_BY(mutex_);
};

}  // namespace pa::obs
