#pragma once
/// \file regression.h
/// \brief Statistical (black-box) performance modeling: ordinary least
/// squares with diagnostics and k-fold cross-validation (paper Sec. II-C2
/// "Statistical models", used for streaming throughput prediction [73]).

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace pa::models {

/// A fitted linear model  y = intercept + sum_i coef[i] * x[i].
struct LinearModel {
  double intercept = 0.0;
  std::vector<double> coefficients;
  std::vector<std::string> feature_names;

  double r_squared = 0.0;
  double rmse = 0.0;
  std::size_t n_samples = 0;

  double predict(const std::vector<double>& features) const;
  /// Human-readable equation, e.g.
  /// "y = 12.3 + 4.56*partitions - 0.01*msg_bytes".
  std::string to_string() const;
};

/// OLS fitter over a design matrix (rows = samples).
class OlsRegression {
 public:
  /// `feature_names` is optional (used for reporting); size must match the
  /// column count when given.
  explicit OlsRegression(std::vector<std::string> feature_names = {});

  void add_sample(const std::vector<double>& features, double target);
  std::size_t sample_count() const { return targets_.size(); }

  /// Fits by solving the normal equations (Gaussian elimination with
  /// partial pivoting; feature counts here are single digits). Throws
  /// pa::InvalidArgument with fewer samples than parameters or a singular
  /// system.
  LinearModel fit() const;

  /// k-fold cross-validated RMSE (deterministic fold split by index).
  double cross_validated_rmse(int folds) const;

 private:
  LinearModel fit_rows(const std::vector<std::size_t>& rows) const;

  std::vector<std::string> feature_names_;
  std::vector<std::vector<double>> features_;
  std::vector<double> targets_;
};

/// Solves A x = b in place (n x n, partial pivoting). Exposed for reuse
/// and direct testing. Throws pa::InvalidArgument when singular.
std::vector<double> solve_linear_system(std::vector<std::vector<double>> a,
                                        std::vector<double> b);

}  // namespace pa::models
