#pragma once
/// \file planner.h
/// \brief Model-driven resource selection (paper R3 / ref [73]: "a model
/// for throughput prediction to determine the optimal set of resources
/// for a given workload").
///
/// Closes the loop the paper describes: fit a statistical performance
/// model from Mini-App measurements, then invert it — among candidate
/// configurations, pick the cheapest whose predicted performance meets
/// the application's target.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "pa/models/regression.h"

namespace pa::models {

/// One candidate resource configuration.
struct ConfigOption {
  std::string label;             ///< e.g. "4 partitions / 2 consumers"
  std::vector<double> features;  ///< in the model's feature order
  double cost = 0.0;             ///< whatever the planner should minimize
};

/// Selects configurations using a fitted LinearModel.
class ConfigurationSelector {
 public:
  /// `transform` maps the model's raw prediction to the target's units
  /// (e.g. `exp` for a log-space throughput model). Defaults to identity.
  explicit ConfigurationSelector(
      LinearModel model,
      std::function<double(double)> transform = nullptr);

  /// Predicted performance for an option (transform applied).
  double predict(const ConfigOption& option) const;

  /// Cheapest option whose prediction >= target; `nullopt` if none
  /// qualifies. Ties on cost break towards higher predicted performance.
  std::optional<ConfigOption> select(const std::vector<ConfigOption>& options,
                                     double target) const;

  /// All options meeting the target, sorted by ascending cost.
  std::vector<ConfigOption> feasible(const std::vector<ConfigOption>& options,
                                     double target) const;

 private:
  LinearModel model_;
  std::function<double(double)> transform_;
};

}  // namespace pa::models
