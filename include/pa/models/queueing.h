#pragma once
/// \file queueing.h
/// \brief Analytical queueing models for LRMS wait-time reasoning
/// (paper Sec. II-C2 "performance models ... for system components
/// (e.g., schedulers)").
///
/// The M/M/c (Erlang-C) model gives a closed-form expected queue wait for
/// a c-server system under Poisson arrivals — the coarse mental model
/// behind "how long will my pilot sit in the queue at utilization rho?",
/// and a sanity anchor for the simulated batch cluster's behaviour.

#include <cstdint>

namespace pa::models {

/// M/M/c queue (Erlang-C).
struct MMcQueue {
  int servers = 1;            ///< c
  double arrival_rate = 0.5;  ///< lambda, jobs/second
  double service_rate = 1.0;  ///< mu, jobs/second per server

  /// Offered load a = lambda / mu (in Erlangs).
  double offered_load() const { return arrival_rate / service_rate; }

  /// Utilization rho = a / c; the system is stable for rho < 1.
  double utilization() const {
    return offered_load() / static_cast<double>(servers);
  }

  bool stable() const { return utilization() < 1.0; }

  /// Erlang-C: probability an arriving job has to wait.
  /// Computed with a numerically stable iterative form.
  double probability_of_waiting() const;

  /// Expected wait in queue, E[Wq] = C(c, a) / (c*mu - lambda).
  /// Throws pa::InvalidArgument for unstable systems.
  double expected_wait() const;

  /// Expected number waiting, Lq = lambda * Wq (Little's law).
  double expected_queue_length() const;
};

}  // namespace pa::models
