#pragma once
/// \file analytical.h
/// \brief Analytical (white-box) performance models (paper Sec. II-C2,
/// Fig. 4 "Analytical Model"; refs [72], [40]).
///
/// These models quantify the relationship between workload parameters and
/// runtime, letting the experiments compare *measured* simulator output
/// against *predicted* closed forms — the model-validation loop the paper
/// describes for the replica-exchange studies.

#include <cmath>

#include "pa/common/error.h"

namespace pa::models {

/// Amdahl's law (ref [40]).
struct AmdahlModel {
  double serial_fraction = 0.05;

  double speedup(int processors) const {
    PA_REQUIRE_ARG(processors > 0, "processors must be positive");
    const double p = static_cast<double>(processors);
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / p);
  }

  double efficiency(int processors) const {
    return speedup(processors) / static_cast<double>(processors);
  }
};

/// Runtime model for a bag of N equal tasks executed through one pilot:
///
///   T = T_queue + T_startup + ceil(N / W) * (t_task + t_dispatch)
///
/// where W = floor(cores / cores_per_task) is the number of concurrent
/// task slots. The pilot pays the LRMS queue wait once; the per-task
/// dispatch overhead is the agent's, not the LRMS's — that asymmetry
/// against per-task submission is the pilot value proposition (E1).
struct PilotTaskFarmModel {
  double queue_wait = 0.0;        ///< LRMS wait for the placeholder job
  double pilot_startup = 2.0;     ///< agent bootstrap
  double task_duration = 1.0;
  double dispatch_overhead = 0.02;
  int pilot_cores = 16;
  int cores_per_task = 1;

  int concurrency() const {
    PA_REQUIRE_ARG(cores_per_task > 0 && pilot_cores >= cores_per_task,
                   "task does not fit pilot");
    return pilot_cores / cores_per_task;
  }

  double makespan(int num_tasks) const {
    PA_REQUIRE_ARG(num_tasks >= 0, "negative task count");
    if (num_tasks == 0) {
      return queue_wait + pilot_startup;
    }
    const double waves = std::ceil(static_cast<double>(num_tasks) /
                                   static_cast<double>(concurrency()));
    return queue_wait + pilot_startup +
           waves * (task_duration + dispatch_overhead);
  }

  /// Baseline: every task is its own LRMS job, each paying its own queue
  /// wait; with enough nodes they run concurrently, so the makespan is
  /// dominated by per-job wait + runtime of the slowest wave.
  double direct_submission_makespan(int num_tasks, double per_job_wait,
                                    int cluster_slots) const {
    PA_REQUIRE_ARG(cluster_slots > 0, "cluster needs slots");
    const double waves = std::ceil(static_cast<double>(num_tasks) /
                                   static_cast<double>(cluster_slots));
    return waves * (per_job_wait + task_duration);
  }
};

/// Replica-exchange ensemble model (ref [72]):
///
///   T(R, G) = T_queue + T_startup
///           + G * ( ceil(R / W) * (t_md + t_dispatch) + t_exchange(R) )
///
/// with t_exchange(R) = exchange_base + exchange_per_replica * R, the
/// centralized exchange step being the serial fraction that limits strong
/// scaling (the crossover experiment E2 measures exactly this).
struct ReplicaExchangeModel {
  double queue_wait = 0.0;
  double pilot_startup = 2.0;
  double md_duration = 60.0;          ///< one replica's MD burst
  double dispatch_overhead = 0.02;
  double exchange_base = 0.5;
  double exchange_per_replica = 0.01;
  int pilot_cores = 64;
  int cores_per_replica = 1;

  int concurrency() const {
    PA_REQUIRE_ARG(cores_per_replica > 0 && pilot_cores >= cores_per_replica,
                   "replica does not fit pilot");
    return pilot_cores / cores_per_replica;
  }

  double exchange_time(int replicas) const {
    return exchange_base + exchange_per_replica * replicas;
  }

  double generation_time(int replicas) const {
    const double waves = std::ceil(static_cast<double>(replicas) /
                                   static_cast<double>(concurrency()));
    return waves * (md_duration + dispatch_overhead) +
           exchange_time(replicas);
  }

  double makespan(int replicas, int generations) const {
    PA_REQUIRE_ARG(replicas > 0 && generations > 0,
                   "replicas/generations must be positive");
    return queue_wait + pilot_startup +
           generations * generation_time(replicas);
  }

  /// Ideal speedup ceiling over the single-slot execution, per Amdahl with
  /// the exchange step as the serial fraction.
  double speedup(int replicas, int generations, int baseline_cores) const {
    ReplicaExchangeModel base = *this;
    base.pilot_cores = baseline_cores;
    return base.makespan(replicas, generations) /
           makespan(replicas, generations);
  }
};

/// Cloud-vs-HPC placement break-even (E9): given an HPC queue wait and a
/// cloud provisioning latency + $ cost, when does bursting win?
struct BurstingModel {
  double hpc_queue_wait = 1800.0;
  double cloud_startup = 60.0;
  double task_duration = 10.0;
  int tasks = 256;
  int hpc_cores = 64;
  int cloud_cores = 64;

  double hpc_only_makespan() const {
    const double waves =
        std::ceil(static_cast<double>(tasks) / hpc_cores);
    return hpc_queue_wait + waves * task_duration;
  }

  double burst_makespan() const {
    // Work splits proportionally to capacity once both are up; a simple
    // bound: both pools chew the bag concurrently from their ready times.
    const double total_work = static_cast<double>(tasks) * task_duration;
    // Binary search the finish time T such that capacity integrals >= work.
    double lo = 0.0;
    double hi = hpc_only_makespan() + cloud_startup + total_work;
    for (int i = 0; i < 64; ++i) {
      const double mid = 0.5 * (lo + hi);
      const double hpc_work =
          mid > hpc_queue_wait ? (mid - hpc_queue_wait) * hpc_cores : 0.0;
      const double cloud_work =
          mid > cloud_startup ? (mid - cloud_startup) * cloud_cores : 0.0;
      if (hpc_work + cloud_work >= total_work) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    return hi;
  }
};

}  // namespace pa::models
