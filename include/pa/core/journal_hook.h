#pragma once
/// \file journal_hook.h
/// \brief Sink interface for the write-ahead state journal.
///
/// `pa::core` cannot depend on `pa::journal` (the journal replays state
/// through core's transition-legality functions), so the service emits
/// its durable events through this narrow interface and `pa::journal`
/// provides the concrete adapter (`pa::journal::ServiceJournal`). Every
/// method corresponds to one journal record type.
///
/// Threading contract: all hooks fire on the service's control-plane
/// apply thread (see control_plane.h) — one thread, in command-apply
/// order, at the exact point the matching in-memory mutation is
/// validated and before any externally observable effect depends on it.
/// An implementation therefore never sees concurrent calls, and the
/// record sequence it observes equals the sequence a crash-recovery
/// replay reproduces.

#include <string>

#include "pa/core/types.h"

namespace pa::core {

class JournalSink {
 public:
  virtual ~JournalSink() = default;

  /// A new pilot entered the service (entity exists, state NEW).
  virtual void pilot_submitted(const std::string& pilot_id,
                               const PilotDescription& description,
                               int restarts_used, double time) = 0;
  /// A validated pilot state-machine transition. `total_cores`/`site` are
  /// meaningful when `to` is ACTIVE (0/"" otherwise).
  virtual void pilot_state(const std::string& pilot_id, PilotState to,
                           int total_cores, const std::string& site,
                           double time) = 0;
  /// A new unit entered the late-binding queue (entity exists, state NEW).
  virtual void unit_submitted(const std::string& unit_id,
                              const ComputeUnitDescription& description,
                              double time) = 0;
  /// The scheduler bound a unit to a pilot.
  virtual void unit_bound(const std::string& unit_id,
                          const std::string& pilot_id, double time) = 0;
  /// A validated unit state-machine transition.
  virtual void unit_state(const std::string& unit_id, UnitState to,
                          double time) = 0;
  /// A bound unit went back to the queue after its pilot terminated
  /// (models the RUNNING -> fresh PENDING attempt reset).
  virtual void unit_requeued(const std::string& unit_id, double time) = 0;
  /// A data unit's output was registered at a site (placement decision).
  virtual void data_placed(const std::string& data_unit,
                           const std::string& site, double time) = 0;
};

}  // namespace pa::core
