#pragma once
/// \file command.h
/// \brief The service command taxonomy: every mutation of
/// PilotComputeService state, reified as a value.
///
/// The event-driven control plane (control_plane.h) admits exactly these
/// commands. Producers — the facade's public mutators, the three runtimes'
/// callbacks, the stage-in barrier — construct one and post it; only the
/// apply context executes middleware logic. Grouping:
///
///   lifecycle   CmdSubmitPilot, CmdSubmitUnit, CmdPilotActive,
///               CmdPilotTerminated, CmdUnitDone, CmdStageInDone
///   control     CmdCancelUnit, CmdShutdown, CmdFence
///   config      CmdAttachData, CmdAttachObservability, CmdAttachJournal,
///               CmdSetRequeuePolicy, CmdSetRestartPolicy,
///               CmdSetMaxRequeues, CmdObserveUnits, CmdAttachAdmission
///   sharding    CmdForward (cross-shard routing envelope), CmdMovePilot,
///               CmdInstallPilot
///
/// Pilot cancellation has no command: the facade forwards it to the
/// runtime (which may need to synchronize with its own workers) and the
/// runtime's on_terminated callback posts CmdPilotTerminated; a trailing
/// CmdFence then flushes any synchronously-fired termination, because the
/// queue preserves per-producer FIFO order.
///
/// Ids are allocated by the *caller* (IdGenerator is atomic), so a submit
/// can return its handle after one queue round-trip and a restart can
/// mint ids on the apply thread without coordination.

#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "pa/core/types.h"

namespace pa::obs {
class Tracer;
class MetricsRegistry;
}  // namespace pa::obs

namespace pa::core {
class AdmissionInterface;
class DataServiceInterface;
class JournalSink;
}  // namespace pa::core

namespace pa::core::cmd {

/// No-op barrier: waiting on it flushes everything posted before it from
/// the same thread, and its batch end republishes the read snapshot.
struct CmdFence {};

struct CmdSubmitPilot {
  std::string pilot_id;
  PilotDescription description;
  int restarts_used = 0;
};

struct CmdSubmitUnit {
  std::string unit_id;
  ComputeUnitDescription description;
};

/// Runtime callback: the pilot's allocation came up.
struct CmdPilotActive {
  std::string pilot_id;
  int total_cores = 0;
  std::string site;
};

/// Runtime callback: the allocation ended (walltime/cancel/failure).
struct CmdPilotTerminated {
  std::string pilot_id;
  PilotState state = PilotState::kFailed;
};

/// Runtime callback: a unit's payload finished. `attempt` tags the
/// completion so a stale callback from a superseded attempt is ignored.
struct CmdUnitDone {
  std::string unit_id;
  bool success = false;
  int attempt = 0;
};

/// Stage-in barrier tripped: all of the unit's input data reached its
/// pilot's site; the unit may move STAGING_IN -> SCHEDULED and execute.
/// `attempt` tags the barrier's dispatch so a stale completion (the unit
/// was requeued and re-dispatched while data moved) is ignored.
struct CmdStageInDone {
  std::string unit_id;
  int attempt = 0;
};

struct CmdCancelUnit {
  std::string unit_id;
};

/// Marks the service shut down and reports which pilots are still
/// non-final; the facade cancels those on the runtime *outside* the apply
/// context (runtimes may block on their own workers).
struct CmdShutdown {
  std::shared_ptr<std::vector<std::string>> pilots_to_cancel;
};

struct CmdAttachData {
  DataServiceInterface* data = nullptr;
};

struct CmdAttachObservability {
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

struct CmdAttachJournal {
  JournalSink* journal = nullptr;
};

struct CmdSetRequeuePolicy {
  bool requeue_on_pilot_failure = true;
};

struct CmdSetRestartPolicy {
  int max_restarts = 0;
};

struct CmdSetMaxRequeues {
  int max_requeues = 0;
};

struct CmdObserveUnits {
  std::function<void(const std::string& unit_id, UnitState from,
                     UnitState to)>
      observer;
};

struct CmdAttachAdmission {
  AdmissionInterface* admission = nullptr;
  /// Drive the workload manager's weighted fair-share (deficit round
  /// robin) pass from the admission interface's tenant weights.
  bool fair_share = false;
};

/// Cross-shard routing envelope. A shard that receives a command for an
/// entity it does not own wraps it in a CmdForward and posts it to the
/// owning shard's queue (a `shared_ptr` to the wrapper defined below the
/// variant makes the recursion legal). `hops` caps forwarding loops: a
/// command bouncing between shards chasing a moving entity gives up after
/// `kMaxForwardHops` and is dropped with a warning instead of livelocking
/// the appliers.
struct CmdForward {
  int target_shard = 0;
  int hops = 0;
  std::shared_ptr<struct ForwardedCommand> inner;
};

inline constexpr int kMaxForwardHops = 8;

/// Fence-protocol step 1: detach `pilot_id` (and its bound units) from the
/// shard that owns it and ship the state to `target_shard`. Posted by the
/// facade with post_and_wait; the source shard emits CmdInstallPilot.
struct CmdMovePilot {
  std::string pilot_id;
  int target_shard = 0;
};

/// Fence-protocol step 2: adopt a detached pilot (and its in-flight units)
/// on the target shard. The payload is opaque to the taxonomy — it carries
/// shard-internal records (see service_shard.h).
struct CmdInstallPilot {
  std::shared_ptr<struct PilotTransfer> transfer;
};

/// CmdFence first: the variant (and thus a queue envelope) is cheaply
/// default-constructible.
using Command =
    std::variant<CmdFence, CmdSubmitPilot, CmdSubmitUnit, CmdPilotActive,
                 CmdPilotTerminated, CmdUnitDone, CmdStageInDone,
                 CmdCancelUnit, CmdShutdown, CmdAttachData,
                 CmdAttachObservability, CmdAttachJournal,
                 CmdSetRequeuePolicy, CmdSetRestartPolicy, CmdSetMaxRequeues,
                 CmdObserveUnits, CmdAttachAdmission, CmdForward, CmdMovePilot,
                 CmdInstallPilot>;

/// The forwarded payload: any command from the same taxonomy, so a
/// forwarded command round-trips through exactly the variant the direct
/// path uses (the commands pass checks this).
struct ForwardedCommand {
  Command command;
};

}  // namespace pa::core::cmd
