#pragma once
/// \file scheduler.h
/// \brief Application-level (pilot-internal) scheduling strategies.
///
/// This is the second level of the P* multi-level scheduling mechanism:
/// the LRMS scheduled the *pilot*; these policies bind *units* to pilots
/// and cores. They are pure functions over snapshot views, so every policy
/// is unit-testable without a runtime — and the scheduler-ablation bench
/// (E8) can compare them under identical workloads.

#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pa/core/types.h"

namespace pa::core {

/// Snapshot of one pilot as the scheduler sees it.
struct PilotView {
  std::string pilot_id;
  std::string site;       ///< site name for data locality
  int total_cores = 0;
  int free_cores = 0;
  int priority = 0;
  double cost_per_core_hour = 0.0;
  /// Remaining walltime (seconds); units longer than this must not bind.
  double remaining_walltime = 0.0;
};

/// Snapshot of one queued unit.
struct UnitView {
  std::string unit_id;
  int cores = 1;
  double expected_duration = 1.0;
  /// Bytes of this unit's input data resident per site (from Pilot-Data).
  /// Missing sites mean "no local data".
  std::map<std::string, double> input_bytes_by_site;
  double total_input_bytes = 0.0;
  /// Optional placement hint ("preferred_site" attribute).
  std::string preferred_site;
};

/// Sentinel for Assignment::queue_index: position unknown.
inline constexpr std::size_t kNoQueueIndex = static_cast<std::size_t>(-1);

/// One binding decision.
struct Assignment {
  std::string unit_id;
  std::string pilot_id;
  /// Position of the unit in the `queued` view the decision was computed
  /// from; lets the workload manager apply the decision in O(1) instead
  /// of re-searching its queue. kNoQueueIndex when unknown (the manager
  /// falls back to a linear search).
  std::size_t queue_index = kNoQueueIndex;
};

/// Strategy interface. Implementations must respect capacity: the sum of
/// cores of units assigned to a pilot must not exceed its free_cores, and
/// unit duration must fit the pilot's remaining walltime.
class Scheduler {
 public:
  /// Strict weak ordering over queued units (plain function pointer so
  /// policies can share one stateless comparator).
  using UnitOrder = bool (*)(const UnitView&, const UnitView&);

  virtual ~Scheduler() = default;

  /// Computes assignments for as many queued units as will fit.
  /// `queued` is in FCFS order — unless the policy declares a
  /// `unit_order()`, in which case the caller may (and the workload
  /// manager does) keep the queue persistently sorted by it, so a pass
  /// needs no re-sort. Unassigned units simply stay queued.
  virtual std::vector<Assignment> schedule(
      const std::deque<UnitView>& queued,
      const std::vector<PilotView>& pilots) = 0;

  /// The order this policy wants the queue maintained in, or nullptr for
  /// FCFS (the default). The workload manager keeps its persistent queue
  /// sorted by this comparator via insertion, turning the policy's
  /// per-pass O(n log n) sort into O(log n) per enqueue.
  virtual UnitOrder unit_order() const { return nullptr; }

  virtual const char* name() const = 0;
};

/// Strict FCFS: units bind in submission order; a unit that does not fit
/// anywhere blocks everything behind it (head-of-line blocking — the
/// baseline the backfilling policy improves on).
class FifoScheduler : public Scheduler {
 public:
  std::vector<Assignment> schedule(const std::deque<UnitView>& queued,
                                   const std::vector<PilotView>& pilots) override;
  const char* name() const override { return "fifo"; }
};

/// FCFS with backfilling: a blocked head does not stop later units that
/// fit *now* from binding. No reservation needed at this level because
/// units are typically much shorter than pilot walltimes.
class BackfillScheduler : public Scheduler {
 public:
  std::vector<Assignment> schedule(const std::deque<UnitView>& queued,
                                   const std::vector<PilotView>& pilots) override;
  const char* name() const override { return "backfill"; }
};

/// Spreads units across pilots in rotation to even out load (useful for
/// throughput workloads over symmetric pilots).
class RoundRobinScheduler : public Scheduler {
 public:
  std::vector<Assignment> schedule(const std::deque<UnitView>& queued,
                                   const std::vector<PilotView>& pilots) override;
  const char* name() const override { return "round-robin"; }

 private:
  /// Rotation cursor, keyed by the last-assigned pilot's id rather than a
  /// raw index: the pilot vector may shrink or be reordered between
  /// scheduling rounds (pilot churn), and an index would then silently
  /// restart the rotation from an unrelated pilot. Empty = start at 0.
  std::string last_pilot_id_;
};

/// Binds each unit to the pilot whose site holds the most of its input
/// data (minimizing stage-in volume); falls back to backfill behaviour for
/// units without data. A `preferred_site` hint is honored when the unit
/// has no local data anywhere (data locality dominates the hint
/// otherwise). The Pilot-Data scheduler of ref [66].
class DataAffinityScheduler : public Scheduler {
 public:
  std::vector<Assignment> schedule(const std::deque<UnitView>& queued,
                                   const std::vector<PilotView>& pilots) override;
  const char* name() const override { return "data-affinity"; }
};

/// Prefers the cheapest pilot that can run the unit (cost_per_core_hour,
/// then priority); models the HPC-first/cloud-burst policy of E9.
class CostAwareScheduler : public Scheduler {
 public:
  std::vector<Assignment> schedule(const std::deque<UnitView>& queued,
                                   const std::vector<PilotView>& pilots) override;
  const char* name() const override { return "cost-aware"; }
};

/// Largest-unit-first ordering before backfill placement; reduces
/// fragmentation for mixed task sizes (heterogeneous-workload ablation).
class LargestFirstScheduler : public Scheduler {
 public:
  std::vector<Assignment> schedule(const std::deque<UnitView>& queued,
                                   const std::vector<PilotView>& pilots) override;
  UnitOrder unit_order() const override;
  const char* name() const override { return "largest-first"; }
};

/// Shortest-expected-duration-first ordering before backfill placement;
/// minimizes mean wait on heterogeneous bags (the classic SJF trade:
/// better responsiveness, long tasks risk starvation under steady
/// arrivals).
class ShortestFirstScheduler : public Scheduler {
 public:
  std::vector<Assignment> schedule(const std::deque<UnitView>& queued,
                                   const std::vector<PilotView>& pilots) override;
  UnitOrder unit_order() const override;
  const char* name() const override { return "shortest-first"; }
};

/// Factory by policy name ("fifo", "backfill", "round-robin",
/// "data-affinity", "cost-aware", "largest-first", "shortest-first");
/// throws pa::InvalidArgument for unknown names. The full registered list
/// is `scheduler_policy_names()` — keep doc, factory, and tests in sync
/// through it.
std::unique_ptr<Scheduler> make_scheduler(const std::string& policy);

/// Every policy name `make_scheduler` accepts, in registration order.
const std::vector<std::string>& scheduler_policy_names();

}  // namespace pa::core
