#pragma once
/// \file service_shard.h
/// \brief One shard of the sharded control plane: a single-writer engine
/// owning a partition of the service's pilots and units.
///
/// `PilotComputeService` (the facade) partitions its state across N
/// `ServiceShard`s. Each shard is the old single-plane engine verbatim —
/// its own bounded MPSC command queue, its own apply context, its own
/// workload manager, journal sink, and atomically-swapped read model —
/// so shards scale the apply path without sharing a lock.
///
/// Cross-shard traffic travels as *forwarded commands* on the very same
/// queues: a shard that receives a command for an entity it does not own
/// consults the ShardRouter and re-posts the command, wrapped in
/// `cmd::CmdForward`, onto the owner's queue (`ControlPlane::post_forward`
/// bypasses backpressure so two full planes can never deadlock forwarding
/// to each other). Entity placement is computable (trailing id ordinal %
/// N), so the router only stores overrides — pilots moved between shards
/// and the units that traveled with them.
///
/// Moving a pilot (CmdMovePilot -> CmdInstallPilot) is a fence-based
/// protocol driven by the facade; the transfer payload carries *raw*
/// record state, never live state machines (machines hold observers bound
/// to the source shard), and the target rebuilds machines at the moved
/// state and re-journals an adoption chain into its own WAL. Stale
/// runtime/staging callbacks still post to the source shard's queue after
/// a move; the source finds the record gone, asks the router, and
/// forwards — the attempt tags that already guard against superseded
/// completions make delivery exactly-once regardless of the extra hop.
///
/// Only the sharding layer may name this class or call post_forward
/// (tools/lint.py rule 5b); everything else goes through the facade.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "pa/check/mutex.h"
#include "pa/core/admission.h"
#include "pa/core/command.h"
#include "pa/core/control_plane.h"
#include "pa/core/journal_hook.h"
#include "pa/core/runtime.h"
#include "pa/core/service_metrics.h"
#include "pa/core/shard_router.h"
#include "pa/core/state_machine.h"
#include "pa/core/types.h"
#include "pa/core/workload_manager.h"
#include "pa/obs/metrics.h"
#include "pa/obs/tracer.h"

namespace pa::core {

class ServiceShard {
 public:
  using Ctrl = ControlPlane<cmd::Command>;
  using UnitObserver =
      std::function<void(const std::string& unit_id, UnitState from,
                         UnitState to)>;

  /// What readers may see of a unit.
  struct UnitSnap {
    UnitState state = UnitState::kNew;
    UnitTimes times;
  };

  /// `shut_down` and `in_transit_units` are facade-owned: the former
  /// suppresses restarts service-wide, the latter keeps the aggregated
  /// unfinished count from dipping while units are between shards.
  /// `next_pilot_id` mints from the facade's atomic generator (restarts
  /// allocate pilot ids on shard apply threads).
  ServiceShard(Runtime& runtime, int index,
               const std::string& scheduler_policy, ShardRouter& router,
               std::atomic<bool>& shut_down,
               std::atomic<std::int64_t>& in_transit_units,
               std::function<std::string()> next_pilot_id);

  ServiceShard(const ServiceShard&) = delete;
  ServiceShard& operator=(const ServiceShard&) = delete;

  /// Wires the shard fan-out (including this shard at its own index).
  /// Must be called before any command is posted.
  void set_peers(std::vector<ServiceShard*> peers);

  Ctrl& ctrl() { return *ctrl_; }
  int index() const { return index_; }
  void stop() { ctrl_->stop(); }

  // ---- read side: served from this shard's published snapshot ----
  bool try_pilot_state(const std::string& pilot_id, PilotState* out) const;
  bool try_unit(const std::string& unit_id, UnitSnap* out) const;
  std::size_t total_units() const;
  std::size_t unfinished_units() const;
  /// Folds this shard's metrics into `out`.
  void merge_metrics(ServiceMetrics* out) const;

 private:
  struct PilotRecord {
    PilotDescription description;
    std::string tenant;  ///< normalized owner (see core::tenant_of)
    PilotStateMachine sm{PilotState::kNew};
    double submit_time = -1.0;
    double active_time = -1.0;
    int total_cores = 0;
    std::string site;
    int restarts_used = 0;  ///< restarts consumed by this lineage
    /// True when the router holds an override for this pilot (created on
    /// or moved to a non-default shard); lets finalize skip the router
    /// lock on the common un-pinned path.
    bool router_pinned = false;
  };

  struct UnitRecord {
    ComputeUnitDescription description;
    std::string tenant;
    UnitStateMachine sm{UnitState::kNew};
    UnitTimes times;
    std::string pilot_id;  ///< current binding, empty while queued
    bool cancel_requested = false;
    int attempts = 0;
    bool router_pinned = false;
  };

  /// The read-mostly snapshot (see pilot_compute_service.h for the
  /// clone-on-write publication discipline).
  struct ReadModel {
    std::map<std::string, PilotState> pilot_states;
    std::map<std::string, UnitSnap> units;
    ServiceMetrics metrics;
    std::size_t unfinished = 0;
  };

  /// Per-batch increments destined for ReadModel::metrics.
  struct MetricsDelta {
    std::vector<double> pilot_startups;
    std::vector<double> unit_waits;
    std::vector<double> unit_execs;
    std::size_t done = 0;
    std::size_t failed = 0;
    std::size_t canceled = 0;
    std::size_t requeues = 0;
    double first_submit = -1.0;
    double last_finish = -1.0;
    bool any = false;
  };

  // ---- apply side. Everything below runs only on this shard's apply
  // context and touches the apply-confined state lock-free. ----
  void apply_command(cmd::Command& command);
  void apply(cmd::CmdFence& c);
  void apply(cmd::CmdSubmitPilot& c);
  void apply(cmd::CmdSubmitUnit& c);
  void apply(cmd::CmdPilotActive& c);
  void apply(cmd::CmdPilotTerminated& c);
  void apply(cmd::CmdUnitDone& c);
  void apply(cmd::CmdStageInDone& c);
  void apply(cmd::CmdCancelUnit& c);
  void apply(cmd::CmdShutdown& c);
  void apply(cmd::CmdAttachData& c);
  void apply(cmd::CmdAttachObservability& c);
  void apply(cmd::CmdAttachJournal& c);
  void apply(cmd::CmdSetRequeuePolicy& c);
  void apply(cmd::CmdSetRestartPolicy& c);
  void apply(cmd::CmdSetMaxRequeues& c);
  void apply(cmd::CmdObserveUnits& c);
  void apply(cmd::CmdAttachAdmission& c);
  void apply(cmd::CmdForward& c);
  void apply(cmd::CmdMovePilot& c);
  void apply(cmd::CmdInstallPilot& c);

  void on_batch_end();
  void run_schedule_cycle();
  void publish_snapshot();

  void submit_pilot_apply(const std::string& pilot_id,
                          const PilotDescription& description,
                          int restarts_used);
  void dispatch_unit_apply(const std::string& unit_id,
                           const std::string& pilot_id);
  void execute_unit_apply(const std::string& unit_id);
  void finalize_unit_apply(UnitRecord& unit, const std::string& unit_id,
                           UnitState final_state);

  /// Wraps `command` in a CmdForward envelope and posts it onto
  /// `target_shard`'s queue, propagating this apply's hop depth. Drops
  /// (with a warning) past kMaxForwardHops.
  void forward_to(int target_shard, cmd::Command command);
  /// Routes `id`; forwards `command` and returns true when another shard
  /// owns it. Returns false when this shard is (or defaults to) the owner.
  bool forward_if_remote(const std::string& id, cmd::Command command);

  PilotRecord& pilot_record(const std::string& pilot_id);
  UnitRecord& unit_record(const std::string& unit_id);
  UnitStateMachine::Observer make_unit_observer(const std::string& unit_id);
  /// Journals the legal transition chain that brings a freshly adopted
  /// record from NEW to its moved state in this shard's WAL.
  void journal_adopted_pilot(const std::string& pilot_id,
                             const PilotRecord& rec);
  void journal_adopted_unit(const std::string& unit_id,
                            const UnitRecord& rec);

  Runtime& runtime_;
  const int index_;

  // ---- apply-confined state (single writer, no lock) ----
  WorkloadManager workload_;
  DataServiceInterface* data_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* obs_metrics_ = nullptr;
  JournalSink* journal_ = nullptr;
  AdmissionInterface* admission_ = nullptr;
  bool requeue_on_pilot_failure_ = true;
  int pilot_max_restarts_ = 0;
  std::vector<UnitObserver> unit_observers_;
  std::map<std::string, PilotRecord> pilots_;
  std::map<std::string, UnitRecord> units_;
  std::set<std::string> dirty_pilots_;
  std::set<std::string> dirty_units_;
  /// Entities detached by a move this batch: publish erases them from the
  /// read model (fixing the unfinished count) before flushing dirty sets.
  std::set<std::string> removed_pilots_;
  std::set<std::string> removed_units_;
  MetricsDelta delta_;
  bool first_submit_recorded_ = false;
  /// Units adopted this batch; released from the facade's in-transit
  /// counter only *after* the publish that makes them visible here.
  std::int64_t pending_transit_release_ = 0;
  /// Hop depth of the command currently being applied (0 for direct
  /// commands; CmdForward saves/sets/restores it around the inner apply).
  int forward_hops_ = 0;
  /// Local shutdown idempotence: the shared flag alone would make every
  /// shard after the first return an empty cancel list.
  bool local_shut_down_ = false;

  ShardRouter& router_;
  std::atomic<bool>& shut_down_;
  std::atomic<std::int64_t>& in_transit_units_;
  std::function<std::string()> next_pilot_id_;
  std::vector<ServiceShard*> peers_;

  mutable check::Mutex snapshot_mutex_{check::LockRank::kService,
                                       "core::ServiceShard"};
  std::shared_ptr<ReadModel> model_ PA_GUARDED_BY(snapshot_mutex_);

  /// Declared last: destroyed first, joining the apply thread while the
  /// state it references is still alive.
  std::unique_ptr<Ctrl> ctrl_;
};

}  // namespace pa::core

namespace pa::core::cmd {

/// Raw state of a pilot (and its bound, non-final units) in flight
/// between shards. Deliberately machine-free: state machines carry
/// observers bound to the source shard's `this`, so the target rebuilds
/// fresh machines at the carried states and re-observes.
struct PilotTransfer {
  std::string pilot_id;
  PilotDescription description;
  PilotState state = PilotState::kNew;
  double submit_time = -1.0;
  double active_time = -1.0;
  int total_cores = 0;
  std::string site;
  int restarts_used = 0;

  struct Unit {
    std::string unit_id;
    ComputeUnitDescription description;
    UnitState state = UnitState::kNew;
    UnitTimes times;
    bool cancel_requested = false;
    int attempts = 0;
    int cores = 1;     ///< cores reserved on the pilot
    int requeues = 0;  ///< consumed requeue budget (survives the move)
  };
  std::vector<Unit> units;
  int source_shard = 0;
};

}  // namespace pa::core::cmd
