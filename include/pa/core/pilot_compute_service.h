#pragma once
/// \file pilot_compute_service.h
/// \brief The Pilot-API (the waist of the hourglass, paper Fig. 4).
///
/// `PilotComputeService` is the user-facing facade of the middleware: the
/// application describes pilots and compute units; the service runs the
/// P* machinery (pilot manager, late-binding workload manager, scheduler,
/// agents) on whichever `Runtime` it was constructed with.
///
/// Thread-safety: all public methods and all runtime callbacks lock one
/// recursive mutex, so the service may be used from the LocalRuntime's
/// worker threads as well as single-threaded simulation code. (Recursive
/// because a synchronously-satisfiable stage-in completes within the
/// caller's frame.)

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pa/check/mutex.h"
#include "pa/common/id.h"
#include "pa/common/stats.h"
#include "pa/core/journal_hook.h"
#include "pa/core/runtime.h"
#include "pa/core/state_machine.h"
#include "pa/core/types.h"
#include "pa/core/workload_manager.h"
#include "pa/obs/metrics.h"
#include "pa/obs/tracer.h"

namespace pa::core {

class PilotComputeService;

/// Handle to a pilot. Cheap value type; all state lives in the service.
class Pilot {
 public:
  Pilot() = default;
  const std::string& id() const { return id_; }
  bool valid() const { return service_ != nullptr; }
  PilotState state() const;
  /// Cancels the pilot's allocation (bound units are requeued or failed
  /// according to the service's requeue policy).
  void cancel();
  /// Blocks/drives until the pilot is ACTIVE (throws pa::TimeoutError).
  void wait_active(double timeout_seconds = 3600.0);

 private:
  friend class PilotComputeService;
  Pilot(std::string id, PilotComputeService* service)
      : id_(std::move(id)), service_(service) {}
  std::string id_;
  PilotComputeService* service_ = nullptr;
};

/// Handle to a compute unit.
class ComputeUnit {
 public:
  ComputeUnit() = default;
  const std::string& id() const { return id_; }
  bool valid() const { return service_ != nullptr; }
  UnitState state() const;
  UnitTimes times() const;
  void cancel();
  /// Blocks/drives until the unit reaches a final state; returns it.
  UnitState wait(double timeout_seconds = 3600.0);

 private:
  friend class PilotComputeService;
  ComputeUnit(std::string id, PilotComputeService* service)
      : id_(std::move(id)), service_(service) {}
  std::string id_;
  PilotComputeService* service_ = nullptr;
};

/// Aggregated execution metrics (basis of E1/E2 tables).
struct ServiceMetrics {
  pa::SampleSet pilot_startup_times;  ///< submit -> active per pilot
  pa::SampleSet unit_wait_times;      ///< submit -> start per unit
  pa::SampleSet unit_exec_times;      ///< start -> finish per unit
  std::size_t units_done = 0;
  std::size_t units_failed = 0;
  std::size_t units_canceled = 0;
  std::size_t requeues = 0;           ///< pilot-failure recoveries
  double first_submit_time = -1.0;
  double last_finish_time = -1.0;

  /// Wall/sim span from first unit submission to last completion.
  double makespan() const {
    return (first_submit_time >= 0.0 && last_finish_time >= 0.0)
               ? last_finish_time - first_submit_time
               : 0.0;
  }
};

class PilotComputeService {
 public:
  /// `scheduler_policy`: see pa::core::make_scheduler.
  explicit PilotComputeService(Runtime& runtime,
                               const std::string& scheduler_policy = "backfill");
  ~PilotComputeService();

  PilotComputeService(const PilotComputeService&) = delete;
  PilotComputeService& operator=(const PilotComputeService&) = delete;

  /// Connects Pilot-Data so schedulers see locality and stage-in happens
  /// automatically for units with input_data.
  void attach_data_service(DataServiceInterface* data);

  /// Connects the observability layer. Either argument may be null.
  /// With a tracer attached the service records pilot lifecycle spans
  /// ("pilot.startup" submit->active, "pilot.active" active->terminated),
  /// unit spans ("unit.wait" submit->start, "unit.exec" start->finish) and
  /// per-transition "pilot.state"/"unit.state" events — all stamped with
  /// the *runtime's* clock (simulated time on SimRuntime, wall time on
  /// LocalRuntime). With a registry attached the service and its workload
  /// manager export lifecycle counters and scheduler-decision metrics
  /// ("pcs.*", "wm.*"). Both sinks must outlive their attachment.
  void attach_observability(obs::Tracer* tracer,
                            obs::MetricsRegistry* metrics);

  /// Connects the write-ahead state journal. Every validated lifecycle
  /// event (pilot submit + state transitions, unit submit/bind/state/
  /// requeue, data placement) is emitted through the sink at the point it
  /// is applied in memory. Attach *before* submitting work — pilots and
  /// units submitted earlier are not retroactively journaled. Pass
  /// nullptr to detach; the sink must outlive its attachment.
  void attach_journal(JournalSink* journal);

  /// Submits a pilot; it proceeds NEW -> SUBMITTED -> ACTIVE asynchronously.
  Pilot submit_pilot(const PilotDescription& description);

  /// Submits a unit into the late-binding queue.
  ComputeUnit submit_unit(const ComputeUnitDescription& description);
  std::vector<ComputeUnit> submit_units(
      const std::vector<ComputeUnitDescription>& descriptions);

  /// If true (default), units bound to a failing pilot go back to the
  /// queue; if false they are marked FAILED.
  void set_requeue_on_pilot_failure(bool requeue);

  /// Fault tolerance: when a pilot FAILS (preemption, infrastructure
  /// fault — not cancellation or normal walltime end), automatically
  /// resubmit an identical pilot, up to `max_restarts` times per original
  /// pilot (0 disables; default 0). Together with unit requeueing this
  /// gives at-least-once task execution on unreliable pools.
  void set_pilot_restart_policy(int max_restarts);

  /// Bounds how often a single unit may be requeued after pilot failures
  /// before it is marked FAILED instead (guards against a poison unit
  /// ping-ponging forever across dying pilots). -1 = unbounded; default
  /// see WorkloadManager::kDefaultMaxRequeues.
  void set_max_unit_requeues(int max_requeues);

  /// Observer for every unit state transition (in addition to per-unit
  /// waits). Called with the service lock held; keep callbacks short and
  /// do not call back into the service from them.
  using UnitObserver =
      std::function<void(const std::string& unit_id, UnitState from,
                         UnitState to)>;
  void observe_units(UnitObserver observer);

  PilotState pilot_state(const std::string& pilot_id) const;
  UnitState unit_state(const std::string& unit_id) const;
  UnitTimes unit_times(const std::string& unit_id) const;

  void cancel_pilot(const std::string& pilot_id);
  /// Cancels a unit. Queued units are dropped immediately; a running unit
  /// finishes its payload but records CANCELED.
  void cancel_unit(const std::string& unit_id);

  /// Cancels all pilots (shutdown); queued units are canceled.
  void shutdown();

  /// Drives the runtime until all submitted units are final.
  void wait_all_units(double timeout_seconds = 3600.0);
  void wait_pilot_active(const std::string& pilot_id,
                         double timeout_seconds = 3600.0);
  UnitState wait_unit(const std::string& unit_id,
                      double timeout_seconds = 3600.0);

  /// Advances the internal "pilot-N"/"unit-N" id generators to at least
  /// the given ordinals. A recovered journal's ids must never be reissued
  /// by the resumed service (pa::journal::resume calls this with the
  /// ordinals past the journaled history).
  void advance_ids(std::uint64_t next_pilot, std::uint64_t next_unit);

  std::size_t total_units() const;
  std::size_t unfinished_units() const;
  /// Copy of current metrics (consistent snapshot).
  ServiceMetrics metrics() const;
  Runtime& runtime() { return runtime_; }

 private:
  struct PilotRecord {
    PilotDescription description;
    PilotStateMachine sm{PilotState::kNew};
    double submit_time = -1.0;
    double active_time = -1.0;
    int total_cores = 0;
    std::string site;
    int restarts_used = 0;  ///< restarts consumed by this lineage
  };

  struct UnitRecord {
    ComputeUnitDescription description;
    UnitStateMachine sm{UnitState::kNew};
    UnitTimes times;
    std::string pilot_id;  ///< current binding, empty while queued
    bool cancel_requested = false;
    int attempts = 0;
  };

  void on_pilot_active(const std::string& pilot_id, int total_cores,
                       const std::string& site) PA_EXCLUDES(mutex_);
  void on_pilot_terminated(const std::string& pilot_id, PilotState state)
      PA_EXCLUDES(mutex_);
  void on_unit_done(const std::string& unit_id, bool success, int attempt)
      PA_EXCLUDES(mutex_);
  void schedule_pass_locked() PA_REQUIRES(mutex_);
  void dispatch_unit_locked(const std::string& unit_id,
                            const std::string& pilot_id) PA_REQUIRES(mutex_);
  void execute_unit_locked(const std::string& unit_id) PA_REQUIRES(mutex_);
  void finalize_unit_locked(UnitRecord& unit, const std::string& unit_id,
                            UnitState final_state) PA_REQUIRES(mutex_);

  PilotRecord& pilot_record(const std::string& pilot_id) PA_REQUIRES(mutex_);
  const PilotRecord& pilot_record(const std::string& pilot_id) const
      PA_REQUIRES(mutex_);
  UnitRecord& unit_record(const std::string& unit_id) PA_REQUIRES(mutex_);
  const UnitRecord& unit_record(const std::string& unit_id) const
      PA_REQUIRES(mutex_);

  Pilot submit_pilot_locked(const PilotDescription& description,
                            int restarts_used) PA_REQUIRES(mutex_);

  Runtime& runtime_;
  /// Recursive, and deliberately without PA_EXCLUDES on the public
  /// methods: submit_units calls submit_unit under the lock, and a
  /// synchronously-satisfiable stage-in completes (and re-enters the
  /// service) within the caller's frame. Outermost rank of the hierarchy
  /// (LockRank::kService).
  mutable check::RecursiveMutex mutex_{check::LockRank::kService,
                                       "core::PilotComputeService"};
  WorkloadManager workload_ PA_GUARDED_BY(mutex_);
  DataServiceInterface* data_ PA_GUARDED_BY(mutex_) = nullptr;
  obs::Tracer* tracer_ PA_GUARDED_BY(mutex_) = nullptr;
  obs::MetricsRegistry* obs_metrics_ PA_GUARDED_BY(mutex_) = nullptr;
  JournalSink* journal_ PA_GUARDED_BY(mutex_) = nullptr;
  bool requeue_on_pilot_failure_ PA_GUARDED_BY(mutex_) = true;
  int pilot_max_restarts_ PA_GUARDED_BY(mutex_) = 0;
  bool shut_down_ PA_GUARDED_BY(mutex_) = false;
  std::vector<UnitObserver> unit_observers_ PA_GUARDED_BY(mutex_);

  pa::IdGenerator pilot_ids_ PA_GUARDED_BY(mutex_){"pilot"};
  pa::IdGenerator unit_ids_ PA_GUARDED_BY(mutex_){"unit"};
  std::map<std::string, PilotRecord> pilots_ PA_GUARDED_BY(mutex_);
  std::map<std::string, UnitRecord> units_ PA_GUARDED_BY(mutex_);
  ServiceMetrics metrics_ PA_GUARDED_BY(mutex_);
};

}  // namespace pa::core
