#pragma once
/// \file pilot_compute_service.h
/// \brief The Pilot-API (the waist of the hourglass, paper Fig. 4).
///
/// `PilotComputeService` is the user-facing facade of the middleware: the
/// application describes pilots and compute units; the service runs the
/// P* machinery (pilot manager, late-binding workload manager, scheduler,
/// agents) on whichever `Runtime` it was constructed with.
///
/// Threading model (event-driven control plane, see control_plane.h and
/// DESIGN.md "Control plane"):
///
///  * **Writes.** Every mutation — submissions, cancellations, the three
///    runtimes' callbacks, timer-driven schedule passes — is a command on
///    a bounded MPSC queue drained by a single apply context that owns
///    pilots_/units_/workload_ exclusively and lock-free. Runtime
///    callbacks cost one wait-free push on the substrate thread; no
///    middleware logic runs there. Synchronous mutators (submit_pilot,
///    cancel_unit, ...) post and wait; handler exceptions (NotFound,
///    InvalidArgument) propagate back to the caller.
///  * **Reads.** Accessors (pilot_state, unit_times, metrics, ...) are
///    served from a read-mostly snapshot the applier republishes at the
///    end of each command batch. The service mutex (LockRank::kService)
///    shrank to guarding only that snapshot swap — it is never held
///    across callbacks, journaling, or scheduling.
///  * **Determinism.** On a `Runtime::single_threaded()` substrate
///    (SimRuntime) the queue drains inline on the posting thread, so
///    simulations stay bit-identical run to run.

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "pa/check/mutex.h"
#include "pa/common/id.h"
#include "pa/common/stats.h"
#include "pa/core/command.h"
#include "pa/core/control_plane.h"
#include "pa/core/journal_hook.h"
#include "pa/core/runtime.h"
#include "pa/core/state_machine.h"
#include "pa/core/types.h"
#include "pa/core/workload_manager.h"
#include "pa/obs/metrics.h"
#include "pa/obs/tracer.h"

namespace pa::core {

class PilotComputeService;

/// Handle to a pilot. Cheap value type; all state lives in the service.
class Pilot {
 public:
  Pilot() = default;
  const std::string& id() const { return id_; }
  bool valid() const { return service_ != nullptr; }
  PilotState state() const;
  /// Cancels the pilot's allocation (bound units are requeued or failed
  /// according to the service's requeue policy).
  void cancel();
  /// Blocks/drives until the pilot is ACTIVE (throws pa::TimeoutError).
  void wait_active(double timeout_seconds = 3600.0);

 private:
  friend class PilotComputeService;
  Pilot(std::string id, PilotComputeService* service)
      : id_(std::move(id)), service_(service) {}
  std::string id_;
  PilotComputeService* service_ = nullptr;
};

/// Handle to a compute unit.
class ComputeUnit {
 public:
  ComputeUnit() = default;
  const std::string& id() const { return id_; }
  bool valid() const { return service_ != nullptr; }
  UnitState state() const;
  UnitTimes times() const;
  void cancel();
  /// Blocks/drives until the unit reaches a final state; returns it.
  UnitState wait(double timeout_seconds = 3600.0);

 private:
  friend class PilotComputeService;
  ComputeUnit(std::string id, PilotComputeService* service)
      : id_(std::move(id)), service_(service) {}
  std::string id_;
  PilotComputeService* service_ = nullptr;
};

/// Aggregated execution metrics (basis of E1/E2 tables).
struct ServiceMetrics {
  pa::SampleSet pilot_startup_times;  ///< submit -> active per pilot
  pa::SampleSet unit_wait_times;      ///< submit -> start per unit
  pa::SampleSet unit_exec_times;      ///< start -> finish per unit
  std::size_t units_done = 0;
  std::size_t units_failed = 0;
  std::size_t units_canceled = 0;
  std::size_t requeues = 0;           ///< pilot-failure recoveries
  double first_submit_time = -1.0;
  double last_finish_time = -1.0;

  /// Wall/sim span from first unit submission to last completion.
  double makespan() const {
    return (first_submit_time >= 0.0 && last_finish_time >= 0.0)
               ? last_finish_time - first_submit_time
               : 0.0;
  }
};

class PilotComputeService {
 public:
  /// `scheduler_policy`: see pa::core::make_scheduler.
  explicit PilotComputeService(Runtime& runtime,
                               const std::string& scheduler_policy = "backfill");
  ~PilotComputeService();

  PilotComputeService(const PilotComputeService&) = delete;
  PilotComputeService& operator=(const PilotComputeService&) = delete;

  /// Connects Pilot-Data so schedulers see locality and stage-in happens
  /// automatically for units with input_data.
  void attach_data_service(DataServiceInterface* data);

  /// Connects the observability layer. Either argument may be null.
  /// With a tracer attached the service records pilot lifecycle spans
  /// ("pilot.startup" submit->active, "pilot.active" active->terminated),
  /// unit spans ("unit.wait" submit->start, "unit.exec" start->finish) and
  /// per-transition "pilot.state"/"unit.state" events — all stamped with
  /// the *runtime's* clock (simulated time on SimRuntime, wall time on
  /// LocalRuntime). With a registry attached the service, its workload
  /// manager and its control plane export lifecycle counters, scheduler-
  /// decision metrics and queue telemetry ("pcs.*", "wm.*", "ctrl.*").
  /// Both sinks must outlive their attachment.
  void attach_observability(obs::Tracer* tracer,
                            obs::MetricsRegistry* metrics);

  /// Connects the write-ahead state journal. Every validated lifecycle
  /// event (pilot submit + state transitions, unit submit/bind/state/
  /// requeue, data placement) is emitted through the sink at the point it
  /// is applied in memory — by the apply context, which serializes all
  /// events, so replay order equals apply order. Attach *before*
  /// submitting work — pilots and units submitted earlier are not
  /// retroactively journaled. Pass nullptr to detach; the sink must
  /// outlive its attachment.
  void attach_journal(JournalSink* journal);

  /// Submits a pilot; it proceeds NEW -> SUBMITTED -> ACTIVE asynchronously.
  Pilot submit_pilot(const PilotDescription& description);

  /// Submits a unit into the late-binding queue.
  ComputeUnit submit_unit(const ComputeUnitDescription& description);
  /// Batch submission: posts every unit fire-and-forget and waits once,
  /// so a large burst costs one queue round-trip, not N.
  std::vector<ComputeUnit> submit_units(
      const std::vector<ComputeUnitDescription>& descriptions);

  /// If true (default), units bound to a failing pilot go back to the
  /// queue; if false they are marked FAILED.
  void set_requeue_on_pilot_failure(bool requeue);

  /// Fault tolerance: when a pilot FAILS (preemption, infrastructure
  /// fault — not cancellation or normal walltime end), automatically
  /// resubmit an identical pilot, up to `max_restarts` times per original
  /// pilot (0 disables; default 0). Together with unit requeueing this
  /// gives at-least-once task execution on unreliable pools.
  void set_pilot_restart_policy(int max_restarts);

  /// Bounds how often a single unit may be requeued after pilot failures
  /// before it is marked FAILED instead (guards against a poison unit
  /// ping-ponging forever across dying pilots). -1 = unbounded; default
  /// see WorkloadManager::kDefaultMaxRequeues.
  void set_max_unit_requeues(int max_requeues);

  /// Observer for every unit state transition (in addition to per-unit
  /// waits). Called on the control plane's apply context (the apply
  /// thread on threaded runtimes); keep callbacks short and do not call
  /// back into the service from them — a synchronous mutator would wait
  /// on the very thread it runs on.
  using UnitObserver =
      std::function<void(const std::string& unit_id, UnitState from,
                         UnitState to)>;
  void observe_units(UnitObserver observer);

  PilotState pilot_state(const std::string& pilot_id) const;
  UnitState unit_state(const std::string& unit_id) const;
  UnitTimes unit_times(const std::string& unit_id) const;

  void cancel_pilot(const std::string& pilot_id);
  /// Cancels a unit. Queued units are dropped immediately; a running unit
  /// finishes its payload but records CANCELED.
  void cancel_unit(const std::string& unit_id);

  /// Cancels all pilots (shutdown); queued units are canceled.
  void shutdown();

  /// Drives the runtime until all submitted units are final.
  void wait_all_units(double timeout_seconds = 3600.0);
  void wait_pilot_active(const std::string& pilot_id,
                         double timeout_seconds = 3600.0);
  UnitState wait_unit(const std::string& unit_id,
                      double timeout_seconds = 3600.0);

  /// Advances the internal "pilot-N"/"unit-N" id generators to at least
  /// the given ordinals. A recovered journal's ids must never be reissued
  /// by the resumed service (pa::journal::resume calls this with the
  /// ordinals past the journaled history).
  void advance_ids(std::uint64_t next_pilot, std::uint64_t next_unit);

  std::size_t total_units() const;
  std::size_t unfinished_units() const;
  /// Copy of current metrics (consistent snapshot).
  ServiceMetrics metrics() const;
  Runtime& runtime() { return runtime_; }

 private:
  struct PilotRecord {
    PilotDescription description;
    PilotStateMachine sm{PilotState::kNew};
    double submit_time = -1.0;
    double active_time = -1.0;
    int total_cores = 0;
    std::string site;
    int restarts_used = 0;  ///< restarts consumed by this lineage
  };

  struct UnitRecord {
    ComputeUnitDescription description;
    UnitStateMachine sm{UnitState::kNew};
    UnitTimes times;
    std::string pilot_id;  ///< current binding, empty while queued
    bool cancel_requested = false;
    int attempts = 0;
  };

  /// What readers may see of a unit.
  struct UnitSnap {
    UnitState state = UnitState::kNew;
    UnitTimes times;
  };

  /// The read-mostly snapshot. The applier mutates the current model in
  /// place under a short snapshot_mutex_ hold at batch end (flushing only
  /// dirty entries); it clones first iff a reader still shares the
  /// pointer, so readers always see a batch-consistent state.
  struct ReadModel {
    std::map<std::string, PilotState> pilot_states;
    std::map<std::string, UnitSnap> units;
    ServiceMetrics metrics;
    std::size_t unfinished = 0;
  };

  /// Per-batch increments destined for ReadModel::metrics. Deltas rather
  /// than wholesale copies: the SampleSets grow with the workload and
  /// copying them per batch would dwarf the work being measured.
  struct MetricsDelta {
    std::vector<double> pilot_startups;
    std::vector<double> unit_waits;
    std::vector<double> unit_execs;
    std::size_t done = 0;
    std::size_t failed = 0;
    std::size_t canceled = 0;
    std::size_t requeues = 0;
    double first_submit = -1.0;
    double last_finish = -1.0;
    bool any = false;
  };

  using Ctrl = ControlPlane<cmd::Command>;

  // ---- apply side. Everything below runs only on the control plane's
  // apply context and touches the apply-confined state lock-free. ----
  void apply_command(cmd::Command& command);
  void apply(cmd::CmdFence& c);
  void apply(cmd::CmdSubmitPilot& c);
  void apply(cmd::CmdSubmitUnit& c);
  void apply(cmd::CmdPilotActive& c);
  void apply(cmd::CmdPilotTerminated& c);
  void apply(cmd::CmdUnitDone& c);
  void apply(cmd::CmdStageInDone& c);
  void apply(cmd::CmdCancelUnit& c);
  void apply(cmd::CmdShutdown& c);
  void apply(cmd::CmdAttachData& c);
  void apply(cmd::CmdAttachObservability& c);
  void apply(cmd::CmdAttachJournal& c);
  void apply(cmd::CmdSetRequeuePolicy& c);
  void apply(cmd::CmdSetRestartPolicy& c);
  void apply(cmd::CmdSetMaxRequeues& c);
  void apply(cmd::CmdObserveUnits& c);

  /// Batch-end hook: one coalesced schedule pass (skipped by the workload
  /// manager's dirty flag when nothing changed), then snapshot publish.
  void on_batch_end();
  void run_schedule_cycle();
  void publish_snapshot();

  void submit_pilot_apply(const std::string& pilot_id,
                          const PilotDescription& description,
                          int restarts_used);
  void dispatch_unit_apply(const std::string& unit_id,
                           const std::string& pilot_id);
  void execute_unit_apply(const std::string& unit_id);
  void finalize_unit_apply(UnitRecord& unit, const std::string& unit_id,
                           UnitState final_state);

  PilotRecord& pilot_record(const std::string& pilot_id);
  UnitRecord& unit_record(const std::string& unit_id);
  /// The observer attached to every unit state machine: journal, tracer,
  /// user observers, snapshot dirty set.
  UnitStateMachine::Observer make_unit_observer(const std::string& unit_id);

  Runtime& runtime_;

  // ---- apply-confined state (single writer, no lock) ----
  WorkloadManager workload_;
  DataServiceInterface* data_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* obs_metrics_ = nullptr;
  JournalSink* journal_ = nullptr;
  bool requeue_on_pilot_failure_ = true;
  int pilot_max_restarts_ = 0;
  std::vector<UnitObserver> unit_observers_;
  std::map<std::string, PilotRecord> pilots_;
  std::map<std::string, UnitRecord> units_;
  /// Records touched since the last publish (state-machine observers and
  /// the requeue/finalize paths feed these).
  std::set<std::string> dirty_pilots_;
  std::set<std::string> dirty_units_;
  MetricsDelta delta_;
  bool first_submit_recorded_ = false;

  /// Set by the apply side (CmdShutdown); read by producer-side argument
  /// validation so post-shutdown submits fail fast. The apply-side check
  /// is authoritative.
  std::atomic<bool> shut_down_{false};

  /// Atomic: ids are minted at the call site, before posting.
  pa::IdGenerator pilot_ids_{"pilot"};
  pa::IdGenerator unit_ids_{"unit"};

  /// The shrunken kService lock: guards only the snapshot pointer and
  /// the in-place flush of dirty entries at batch end. Never held across
  /// callbacks, journaling, scheduling, or runtime calls.
  mutable check::Mutex snapshot_mutex_{check::LockRank::kService,
                                       "core::PilotComputeService"};
  std::shared_ptr<ReadModel> model_ PA_GUARDED_BY(snapshot_mutex_);

  /// Declared last: destroyed first, joining the apply thread while the
  /// state it references is still alive.
  std::unique_ptr<Ctrl> ctrl_;
};

}  // namespace pa::core
