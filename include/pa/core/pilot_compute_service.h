#pragma once
/// \file pilot_compute_service.h
/// \brief The Pilot-API (the waist of the hourglass, paper Fig. 4).
///
/// `PilotComputeService` is the user-facing facade of the middleware: the
/// application describes pilots and compute units; the service runs the
/// P* machinery (pilot manager, late-binding workload manager, scheduler,
/// agents) on whichever `Runtime` it was constructed with.
///
/// Threading model (sharded event-driven control plane, see
/// service_shard.h, control_plane.h and DESIGN.md "Control plane"):
///
///  * **Shards.** State is partitioned across `Options::shards`
///    single-writer engines. Pilots and units land on shard
///    (trailing id ordinal % N) — lock-free round-robin — and every
///    shard owns its own bounded MPSC queue, apply context, journal
///    stream, and read snapshot. One shard (the default) reproduces the
///    classic single-apply-thread service exactly.
///  * **Writes.** Every mutation is a command posted to the owning
///    shard's queue. Cross-shard traffic (stale callbacks after a pilot
///    move) travels as forwarded commands on the same queues.
///  * **Reads.** Accessors merge the per-shard read-mostly snapshots;
///    each shard's snapshot mutex (LockRank::kService) guards only its
///    own swap.
///  * **Admission.** With an `AdmissionInterface` attached (see
///    pa::tenant::TenantRegistry), submissions are admitted on the
///    producer thread *before* consuming queue space and throw
///    `pa::QuotaExceeded` when the tenant is over quota; shards report
///    grants/finalizations back through the same interface, and the
///    workload managers run a weighted fair-share (deficit round robin)
///    pass across tenants.
///  * **Determinism.** On a `Runtime::single_threaded()` substrate
///    (SimRuntime) every queue drains inline on the posting thread, so
///    simulations stay bit-identical run to run — cross-shard forwards
///    become nested inline drains.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pa/common/id.h"
#include "pa/core/admission.h"
#include "pa/core/command.h"
#include "pa/core/runtime.h"
#include "pa/core/service_metrics.h"
#include "pa/core/service_shard.h"
#include "pa/core/shard_router.h"
#include "pa/core/types.h"
#include "pa/obs/metrics.h"
#include "pa/obs/tracer.h"

namespace pa::core {

class PilotComputeService;

/// Handle to a pilot. Cheap value type; all state lives in the service.
class Pilot {
 public:
  Pilot() = default;
  const std::string& id() const { return id_; }
  bool valid() const { return service_ != nullptr; }
  PilotState state() const;
  /// Cancels the pilot's allocation (bound units are requeued or failed
  /// according to the service's requeue policy).
  void cancel();
  /// Blocks/drives until the pilot is ACTIVE (throws pa::TimeoutError).
  void wait_active(double timeout_seconds = 3600.0);

 private:
  friend class PilotComputeService;
  Pilot(std::string id, PilotComputeService* service)
      : id_(std::move(id)), service_(service) {}
  std::string id_;
  PilotComputeService* service_ = nullptr;
};

/// Handle to a compute unit.
class ComputeUnit {
 public:
  ComputeUnit() = default;
  const std::string& id() const { return id_; }
  bool valid() const { return service_ != nullptr; }
  UnitState state() const;
  UnitTimes times() const;
  void cancel();
  /// Blocks/drives until the unit reaches a final state; returns it.
  UnitState wait(double timeout_seconds = 3600.0);

 private:
  friend class PilotComputeService;
  ComputeUnit(std::string id, PilotComputeService* service)
      : id_(std::move(id)), service_(service) {}
  std::string id_;
  PilotComputeService* service_ = nullptr;
};

class PilotComputeService {
 public:
  struct Options {
    /// See pa::core::make_scheduler.
    std::string scheduler_policy = "backfill";
    /// Control-plane shards (apply threads / journal streams). 1 keeps
    /// the classic single-writer service.
    int shards = 1;
  };

  explicit PilotComputeService(Runtime& runtime, Options options);
  /// Back-compat: a single-shard service.
  explicit PilotComputeService(Runtime& runtime,
                               const std::string& scheduler_policy = "backfill");
  ~PilotComputeService();

  PilotComputeService(const PilotComputeService&) = delete;
  PilotComputeService& operator=(const PilotComputeService&) = delete;

  /// Connects Pilot-Data so schedulers see locality and stage-in happens
  /// automatically for units with input_data.
  void attach_data_service(DataServiceInterface* data);

  /// Connects the observability layer. Either argument may be null.
  /// With a tracer attached the service records pilot lifecycle spans
  /// ("pilot.startup" submit->active, "pilot.active" active->terminated),
  /// unit spans ("unit.wait" submit->start, "unit.exec" start->finish) and
  /// per-transition "pilot.state"/"unit.state" events — all stamped with
  /// the *runtime's* clock (simulated time on SimRuntime, wall time on
  /// LocalRuntime). With a registry attached the service, its workload
  /// managers and its control planes export lifecycle counters, scheduler-
  /// decision metrics and per-shard queue telemetry ("pcs.*", "wm.*",
  /// "ctrl.<shard>.*"). Both sinks must outlive their attachment.
  void attach_observability(obs::Tracer* tracer,
                            obs::MetricsRegistry* metrics);

  /// Connects the write-ahead state journal (single-shard services only —
  /// a sharded service has one journal stream per shard, see
  /// attach_journal_shards). Every validated lifecycle event is emitted
  /// through the sink at the point it is applied in memory. Attach
  /// *before* submitting work. Pass nullptr to detach; the sink must
  /// outlive its attachment.
  void attach_journal(JournalSink* journal);

  /// Connects one journal sink per shard (size must equal
  /// Options::shards; entries may be null). Shard k journals exactly the
  /// entities it owns; a pilot moved between shards is re-journaled on
  /// the target as an adoption chain, and
  /// pa::journal::recover_sharded merges the per-shard streams.
  void attach_journal_shards(const std::vector<JournalSink*>& journals);

  /// Connects admission control (quotas + fair-share weights; see
  /// pa::tenant::TenantRegistry). Submissions from over-quota tenants
  /// throw pa::QuotaExceeded at this boundary, before consuming any
  /// queue space. `fair_share` additionally orders the late-binding
  /// queues across tenants by weighted deficit round robin. Pass nullptr
  /// to detach; the interface must outlive its attachment and be
  /// internally synchronized (shards report from their apply threads).
  void attach_admission(AdmissionInterface* admission,
                        bool fair_share = true);

  /// Submits a pilot; it proceeds NEW -> SUBMITTED -> ACTIVE asynchronously.
  Pilot submit_pilot(const PilotDescription& description);

  /// Submits a unit into the late-binding queue.
  ComputeUnit submit_unit(const ComputeUnitDescription& description);
  /// Batch submission: posts every unit fire-and-forget and waits once,
  /// so a large burst costs one queue round-trip per shard, not N. On a
  /// quota rejection mid-burst, units admitted earlier stay submitted.
  std::vector<ComputeUnit> submit_units(
      const std::vector<ComputeUnitDescription>& descriptions);

  /// If true (default), units bound to a failing pilot go back to the
  /// queue; if false they are marked FAILED.
  void set_requeue_on_pilot_failure(bool requeue);

  /// Fault tolerance: when a pilot FAILS (preemption, infrastructure
  /// fault — not cancellation or normal walltime end), automatically
  /// resubmit an identical pilot, up to `max_restarts` times per original
  /// pilot (0 disables; default 0). Together with unit requeueing this
  /// gives at-least-once task execution on unreliable pools.
  void set_pilot_restart_policy(int max_restarts);

  /// Bounds how often a single unit may be requeued after pilot failures
  /// before it is marked FAILED instead (guards against a poison unit
  /// ping-ponging forever across dying pilots). -1 = unbounded; default
  /// see WorkloadManager::kDefaultMaxRequeues.
  void set_max_unit_requeues(int max_requeues);

  /// Observer for every unit state transition (in addition to per-unit
  /// waits). Called on the owning shard's apply context — with several
  /// shards the observer fires on several apply threads (never
  /// concurrently for the same unit); it must be thread-safe across
  /// units. Keep callbacks short and do not call back into the service
  /// from them.
  using UnitObserver = ServiceShard::UnitObserver;
  void observe_units(UnitObserver observer);

  PilotState pilot_state(const std::string& pilot_id) const;
  UnitState unit_state(const std::string& unit_id) const;
  UnitTimes unit_times(const std::string& unit_id) const;

  void cancel_pilot(const std::string& pilot_id);
  /// Cancels a unit. Queued units are dropped immediately; a running unit
  /// finishes its payload but records CANCELED.
  void cancel_unit(const std::string& unit_id);

  /// Cancels all pilots (shutdown); queued units are canceled.
  void shutdown();

  /// Drives the runtime until all submitted units are final.
  void wait_all_units(double timeout_seconds = 3600.0);
  void wait_pilot_active(const std::string& pilot_id,
                         double timeout_seconds = 3600.0);
  UnitState wait_unit(const std::string& unit_id,
                      double timeout_seconds = 3600.0);

  /// Rebalancing: migrates a pilot (and its bound, in-flight units) to
  /// `target_shard` with the fence protocol — when this returns, the
  /// target owns the pilot and has published it. Unit completions in
  /// flight during the move are forwarded and stay exactly-once (attempt
  /// tags are carried). No-op when the pilot already lives there or is
  /// final. Concurrent moves of the *same* pilot are not linearizable;
  /// serialize them in the caller.
  void move_pilot_to_shard(const std::string& pilot_id, int target_shard);

  /// Which shard currently owns `id` (routing view; for tests/tools).
  int shard_of(const std::string& id) const {
    return router_.shard_for_id(id);
  }
  int shards() const { return static_cast<int>(shards_.size()); }

  /// Advances the internal "pilot-N"/"unit-N" id generators to at least
  /// the given ordinals. A recovered journal's ids must never be reissued
  /// by the resumed service (pa::journal::resume calls this with the
  /// ordinals past the journaled history).
  void advance_ids(std::uint64_t next_pilot, std::uint64_t next_unit);

  std::size_t total_units() const;
  std::size_t unfinished_units() const;
  /// Copy of current metrics (per-shard snapshots, merged).
  ServiceMetrics metrics() const;
  Runtime& runtime() { return runtime_; }

 private:
  ServiceShard& owner_of(const std::string& id) const {
    return *shards_[static_cast<std::size_t>(router_.shard_for_id(id))];
  }
  /// Posts `command` to every shard synchronously (attach/config fan-out).
  void post_all_and_wait(const cmd::Command& command);
  /// Normalizes the tenant into attributes (survives journal replay) and
  /// returns it.
  template <typename Description>
  static std::string normalize_tenant(Description& description);
  bool try_unit_snap(const std::string& unit_id,
                     ServiceShard::UnitSnap* out) const;
  ServiceShard::UnitSnap unit_snap(const std::string& unit_id) const;

  Runtime& runtime_;

  /// Producer-side admission; swapped by attach_admission, read on every
  /// submit. The apply-side copies (per shard) are authoritative for
  /// accounting hooks.
  std::atomic<AdmissionInterface*> admission_{nullptr};

  /// Set by the apply side (CmdShutdown); read by producer-side argument
  /// validation so post-shutdown submits fail fast, and by the shards'
  /// restart policy. The apply-side check is authoritative.
  std::atomic<bool> shut_down_{false};

  /// Units currently between shards (detached from the source's read
  /// model, not yet published by the target). unfinished_units() adds
  /// this so wait_all_units can never observe a transient zero mid-move.
  std::atomic<std::int64_t> in_transit_units_{0};

  /// Atomic: ids are minted at the call site, before posting.
  pa::IdGenerator pilot_ids_{"pilot"};
  pa::IdGenerator unit_ids_{"unit"};

  /// Declared before shards_ (shards hold a reference).
  mutable ShardRouter router_;
  std::vector<std::unique_ptr<ServiceShard>> shards_;
};

}  // namespace pa::core
