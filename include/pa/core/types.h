#pragma once
/// \file types.h
/// \brief The P* model vocabulary (paper Sec. IV-A, ref [6]).
///
/// The P* conceptual model defines four concepts:
///  * **Pilot** — a placeholder job holding a resource allocation;
///  * **Compute-Unit (CU)** — a self-contained task executed inside a pilot;
///  * **Pilot-Manager** — submits/monitors pilots on infrastructures;
///  * **Pilot-Agent** — runs inside the allocation and executes CUs.
/// plus two mechanisms: **late binding** of CUs to pilots and
/// **multi-level scheduling** (system-level LRMS + application-level
/// pilot scheduler). These types are shared by both runtimes.

#include <functional>
#include <string>
#include <vector>

#include "pa/common/config.h"

namespace pa::core {

/// Lifecycle of a pilot (placeholder allocation).
enum class PilotState {
  kNew,        ///< described, not yet submitted
  kSubmitted,  ///< placeholder job queued at the LRMS
  kActive,     ///< allocation held, agent running, CUs can execute
  kDone,       ///< walltime reached or drained and shut down
  kFailed,     ///< LRMS failure / preemption
  kCanceled    ///< cancelled by the application
};

/// Lifecycle of a compute unit.
enum class UnitState {
  kNew,        ///< described, not yet submitted
  kPending,    ///< accepted by the workload manager, waiting for binding
  kStagingIn,  ///< input data units are being transferred to the pilot
  kScheduled,  ///< bound to a pilot, waiting for free cores
  kRunning,    ///< executing on the pilot's cores
  kDone,
  kFailed,
  kCanceled
};

const char* to_string(PilotState s);
const char* to_string(UnitState s);
bool is_final(PilotState s);
bool is_final(UnitState s);

/// Description of a pilot: "give me this many nodes on that resource for
/// this long". The resource URL selects the SAGA adaptor (simulation) or
/// the local runtime's in-process cluster.
struct PilotDescription {
  std::string resource_url;  ///< e.g. "slurm://hpc-a", "local://host"
  int nodes = 1;
  double walltime = 3600.0;  ///< seconds
  /// Application-level priority among pilots (higher preferred by some
  /// schedulers when several pilots could take a unit).
  int priority = 0;
  /// Cost per core-hour for cost-aware scheduling; 0 = free (HPC alloc).
  double cost_per_core_hour = 0.0;
  /// Owning tenant for quota accounting and fair-share scheduling.
  /// Empty means the implicit default tenant. Normalized into
  /// `attributes["tenant"]` at submission so it survives journal replay.
  std::string tenant;
  pa::Config attributes;
};

/// Description of a compute unit.
struct ComputeUnitDescription {
  std::string name;
  int cores = 1;
  /// Simulated runtime: how long the task occupies its cores. Ignored by
  /// the local runtime when `work` is set.
  double duration = 1.0;
  /// Real payload for the local runtime; executed on a worker thread.
  std::function<void()> work;
  /// Data units that must be resident at the executing pilot's site before
  /// the unit runs (triggers stage-in through Pilot-Data).
  std::vector<std::string> input_data;
  /// Data units this unit produces (registered at the executing site).
  std::vector<std::string> output_data;
  /// Owning tenant for quota accounting and fair-share scheduling.
  /// Empty means the implicit default tenant. Normalized into
  /// `attributes["tenant"]` at submission so it survives journal replay.
  std::string tenant;
  /// Free-form hints, e.g. "preferred_site=hpc-a".
  pa::Config attributes;
};

/// Timestamps collected for every unit (simulated or wall time, depending
/// on runtime). Basis of the overhead/throughput analyses (E1, E2).
struct UnitTimes {
  double submitted = -1.0;
  double scheduled = -1.0;  ///< bound to a pilot
  double started = -1.0;    ///< first instruction on cores
  double finished = -1.0;

  double wait_time() const { return started - submitted; }
  double exec_time() const { return finished - started; }
};

}  // namespace pa::core
