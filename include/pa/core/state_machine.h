#pragma once
/// \file state_machine.h
/// \brief Validated lifecycle state machines for pilots and units.
///
/// Every state change in the middleware flows through these objects, which
/// reject illegal transitions (a DONE unit cannot start RUNNING) and
/// notify observers — the mechanism behind the Pilot-API's callbacks.
/// Keeping transition legality in one place is what makes the property
/// tests in tests/core/ meaningful.

#include <functional>
#include <vector>

#include "pa/common/error.h"
#include "pa/core/types.h"

namespace pa::core {

namespace detail {
bool pilot_transition_allowed(PilotState from, PilotState to);
bool unit_transition_allowed(UnitState from, UnitState to);
}  // namespace detail

/// Generic observable state holder; `TransitionAllowed` is a function
/// pointer validating edges.
template <typename State, bool (*TransitionAllowed)(State, State),
          const char* (*Name)(State)>
class StateMachine {
 public:
  using Observer = std::function<void(State from, State to)>;

  explicit StateMachine(State initial) : state_(initial) {}

  State state() const { return state_; }

  /// Performs a transition; throws pa::InvalidStateError on illegal edges.
  /// Self-transitions are no-ops (idempotent callbacks).
  void transition(State to) {
    if (to == state_) {
      return;
    }
    if (!TransitionAllowed(state_, to)) {
      throw InvalidStateError(std::string("illegal transition ") +
                              Name(state_) + " -> " + Name(to));
    }
    const State from = state_;
    state_ = to;
    for (const auto& obs : observers_) {
      obs(from, to);
    }
  }

  /// Attempts a transition; returns false instead of throwing. Used on
  /// paths where a race with a final state is expected (cancellation).
  bool try_transition(State to) {
    if (to == state_) {
      return true;
    }
    if (!TransitionAllowed(state_, to)) {
      return false;
    }
    transition(to);
    return true;
  }

  void observe(Observer observer) { observers_.push_back(std::move(observer)); }

 private:
  State state_;
  std::vector<Observer> observers_;
};

using PilotStateMachine =
    StateMachine<PilotState, detail::pilot_transition_allowed, to_string>;
using UnitStateMachine =
    StateMachine<UnitState, detail::unit_transition_allowed, to_string>;

}  // namespace pa::core
