#pragma once
/// \file bursting.h
/// \brief Adaptive resource acquisition (paper requirement R3, ref [63]):
/// add pilots on an alternative (typically cloud) resource at runtime
/// when the primary resource will not deliver capacity soon enough.
///
/// The component is deliberately generic: it consumes a wait estimate as
/// a callable (wired to `infra::BatchCluster::estimate_start_time` in the
/// simulation stack, or to a monitoring system in a real deployment) and
/// acts through the ordinary Pilot-API — the same late-binding queue
/// drains onto whatever pilot comes up first.

#include <functional>
#include <string>
#include <vector>

#include "pa/core/pilot_compute_service.h"
#include "pa/core/types.h"

namespace pa::core {

/// When and what to burst.
struct BurstPolicy {
  /// Burst when the primary's estimated wait exceeds this (seconds).
  double wait_threshold = 900.0;
  /// ... and at least this many units are not yet finished (bursting for
  /// an almost-empty queue wastes money).
  std::size_t min_pending_units = 1;
  /// Pilot to submit on each burst (resource URL, size, cost, ...).
  PilotDescription burst_pilot;
  /// Upper bound on burst pilots this burster will ever submit.
  int max_burst_pilots = 1;
};

/// Evaluates a burst policy against a live service. Call `evaluate()`
/// periodically (e.g. from a `sim::PeriodicTimer` or a monitoring loop).
class AdaptiveBurster {
 public:
  /// `estimated_wait_seconds` returns the primary resource's current
  /// estimated wait for the capacity the application needs.
  AdaptiveBurster(PilotComputeService& service, BurstPolicy policy,
                  std::function<double()> estimated_wait_seconds);

  /// Checks the policy; submits one burst pilot if it triggers.
  /// Returns true when a pilot was submitted by this call.
  bool evaluate();

  /// Burst pilots submitted so far.
  int bursts() const { return static_cast<int>(burst_pilots_.size()); }
  const std::vector<Pilot>& burst_pilots() const { return burst_pilots_; }

 private:
  PilotComputeService& service_;
  BurstPolicy policy_;
  std::function<double()> estimated_wait_;
  std::vector<Pilot> burst_pilots_;
};

}  // namespace pa::core
