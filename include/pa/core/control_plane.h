#pragma once
/// \file control_plane.h
/// \brief Single-writer, event-driven command core for the service facade.
///
/// Every mutation of middleware state — submissions, runtime callbacks,
/// cancellations, timer-driven schedule passes — becomes a `Command` on a
/// bounded MPSC queue (pa::net::MpscQueue) drained by exactly one apply
/// context that owns the state lock-free. Producers never execute
/// middleware logic: a runtime callback costs one wait-free push. Reads
/// are served elsewhere from a snapshot the applier republishes at batch
/// end (see pilot_compute_service.h).
///
/// Two modes:
///  * **threaded** (LocalRuntime, RemoteRuntime): a dedicated apply
///    thread drains the queue; producers block only when the queue hits
///    its bound (backpressure) — except posts from the apply thread
///    itself (e.g. a synchronously-satisfied stage-in fired during
///    dispatch), which bypass the bound to stay deadlock-free.
///  * **inline** (SimRuntime and any `Runtime::single_threaded()`
///    substrate): `post` drains the queue on the posting thread before
///    returning, preserving bit-identical simulation determinism. A
///    reentrant post from inside a handler is appended and drained by the
///    outer drain loop.
///
/// Batching: the applier drains everything available, then invokes
/// `on_batch_end` once — the hook where the service coalesces schedule
/// passes and republishes its read snapshot. Waiters of `post_and_wait`
/// are released only *after* batch end, so a read that follows a
/// synchronous mutation observes it. In threaded mode the applier also
/// wakes on a timer tick (`idle_wait_seconds`) and runs `on_batch_end`,
/// which is what turns periodic schedule passes into ordinary apply-side
/// work instead of a separate timer thread racing the state.
///
/// Ordering: per-producer FIFO (inherited from MpscQueue). A fence posted
/// after a runtime's synchronous callback on the same thread therefore
/// flushes that callback — the service's cancel path relies on this.
///
/// Locking: one mutex at LockRank::kCtrlQueue guards only sleep/wake and
/// backpressure bookkeeping. It is never held across `apply`,
/// `on_batch_end`, or any callout, and nothing is acquired under it.
///
/// Error propagation: an exception thrown by `apply` is captured into the
/// command's envelope and rethrown to the `post_and_wait` caller —
/// preserving the facade's synchronous throwing API (NotFound,
/// InvalidArgument) across the thread hop. Exceptions of fire-and-forget
/// commands are logged and dropped; the apply thread never dies.

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "pa/check/mutex.h"
#include "pa/common/error.h"
#include "pa/common/log.h"
#include "pa/net/mpsc_queue.h"
#include "pa/obs/metrics.h"

namespace pa::core {

template <typename Command>
class ControlPlane {
 public:
  struct Options {
    /// Max commands in flight before producers block (threaded mode only;
    /// posts from the apply thread bypass the bound). 0 = unbounded.
    std::size_t bound = 8192;
    /// false = inline mode: post() drains on the posting thread.
    bool threaded = true;
    /// Clock for the ctrl.apply_latency histogram (e.g. Runtime::now);
    /// may be null (latency then unrecorded).
    std::function<double()> clock;
    /// Timer tick for the apply thread's idle wakeup (threaded mode).
    double idle_wait_seconds = 0.05;
  };

  using ApplyFn = std::function<void(Command&)>;
  using BatchEndFn = std::function<void()>;

  ControlPlane(ApplyFn apply, BatchEndFn on_batch_end, Options options)
      : apply_(std::move(apply)),
        batch_end_(std::move(on_batch_end)),
        options_(std::move(options)) {
    PA_REQUIRE_ARG(static_cast<bool>(apply_), "null apply function");
    if (options_.threaded) {
      consumer_ = std::thread([this]() { consume_loop(); });
    }
  }

  ~ControlPlane() { stop(); }

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  /// Fire-and-forget. Returns false (command dropped) after stop().
  bool post(Command command) {
    return post_envelope(Envelope{std::move(command), now(), nullptr});
  }

  /// Posts and blocks until the command was applied *and* the batch it
  /// belonged to finished (snapshot republished). Rethrows any exception
  /// the handler threw. Returns false after stop().
  bool post_and_wait(Command command) {
    if (stopped_.load(std::memory_order_acquire)) {
      return false;
    }
    auto waiter = std::make_shared<Waiter>();
    if (options_.threaded &&
        std::this_thread::get_id() == applier_.load(std::memory_order_acquire)) {
      throw InvalidStateError(
          "post_and_wait from the apply thread would self-deadlock; "
          "apply-side code must post fire-and-forget commands");
    }
    if (!post_envelope(Envelope{std::move(command), now(), waiter})) {
      return false;
    }
    if (!options_.threaded) {
      // Inline mode drains synchronously — unless this post came from
      // inside a handler or batch-end callout (the outer drain owns the
      // queue), where waiting is impossible by construction.
      if (!waiter->done.load(std::memory_order_acquire)) {
        throw InvalidStateError(
            "synchronous control-plane call from inside a handler or "
            "observer; post fire-and-forget commands instead");
      }
    } else {
      check::MutexLock lock(mutex_);
      while (!waiter->done.load(std::memory_order_acquire)) {
        done_cv_.wait_for(lock, options_.idle_wait_seconds);
      }
    }
    if (waiter->error) {
      std::rethrow_exception(waiter->error);
    }
    return true;
  }

  /// Resolves the per-shard ctrl.* instruments (`ctrl.<shard>.commands`,
  /// `.batches`, `.queue_depth`, `.apply_latency`; `shard_label` is "s0",
  /// "s1", ...). Call from the apply context only (the instruments are
  /// touched exclusively by the applier).
  void set_metrics(obs::MetricsRegistry* metrics, std::string shard_label) {
    if (metrics == nullptr) {
      commands_ = nullptr;
      batches_ = nullptr;
      depth_gauge_ = nullptr;
      latency_ = nullptr;
      return;
    }
    shard_label_ = std::move(shard_label);
    commands_ = &metrics->counter("ctrl." + shard_label_ + ".commands");
    batches_ = &metrics->counter("ctrl." + shard_label_ + ".batches");
    depth_gauge_ = &metrics->gauge("ctrl." + shard_label_ + ".queue_depth");
    latency_ = &metrics->histogram("ctrl." + shard_label_ + ".apply_latency");
  }

  /// Posts from a *peer shard's apply thread*, bypassing backpressure: a
  /// full plane must never stall a peer applier (two planes forwarding to
  /// each other under load would deadlock on each other's bounds), and a
  /// forwarded command was already admitted once through its origin
  /// shard's bound, so the system-wide in-flight total stays bounded.
  /// Inline mode drains immediately on the calling thread — a cross-shard
  /// forward in a single_threaded() runtime is just a nested drain.
  bool post_forward(Command command) {
    Envelope env{std::move(command), now(), nullptr};
    if (stopped_.load(std::memory_order_acquire)) {
      return false;
    }
    depth_.fetch_add(1, std::memory_order_seq_cst);
    queue_.push(std::move(env));
    if (!options_.threaded) {
      drain_inline();
      return true;
    }
    if (sleeping_.load(std::memory_order_seq_cst)) {
      check::MutexLock lock(mutex_);
      consumer_cv_.notify_one();
    }
    return true;
  }

  /// Drains outstanding commands, then joins the apply thread. Commands
  /// posted after stop() are dropped (post returns false); a command that
  /// raced the stop is popped without being applied, its waiter released.
  /// Idempotent.
  void stop() {
    if (stopped_.exchange(true, std::memory_order_acq_rel)) {
      if (consumer_.joinable()) {
        consumer_.join();
      }
      return;
    }
    {
      check::MutexLock lock(mutex_);
      stopping_ = true;
      consumer_cv_.notify_all();
      not_full_cv_.notify_all();
    }
    if (consumer_.joinable()) {
      consumer_.join();
    }
    // Anything that slipped past the stopped_ check is dropped unapplied.
    Envelope env;
    std::size_t dropped = 0;
    while (queue_.pop(env)) {
      ++dropped;
      if (env.waiter) {
        env.waiter->done.store(true, std::memory_order_release);
      }
    }
    if (dropped > 0) {
      depth_.fetch_sub(dropped, std::memory_order_relaxed);
      check::MutexLock lock(mutex_);
      done_cv_.notify_all();
    }
  }

  bool threaded() const { return options_.threaded; }

  /// Approximate commands in flight (posted, not yet applied).
  std::size_t depth() const {
    return depth_.load(std::memory_order_relaxed);
  }

 private:
  struct Waiter {
    std::atomic<bool> done{false};
    std::exception_ptr error;  ///< written before done, read after
  };

  struct Envelope {
    Command command{};
    double posted_at = 0.0;
    std::shared_ptr<Waiter> waiter;  ///< null for fire-and-forget
  };

  double now() const { return options_.clock ? options_.clock() : 0.0; }

  bool post_envelope(Envelope env) {
    if (stopped_.load(std::memory_order_acquire)) {
      return false;
    }
    if (!options_.threaded) {
      depth_.fetch_add(1, std::memory_order_seq_cst);
      queue_.push(std::move(env));
      drain_inline();
      return true;
    }
    const bool from_applier =
        std::this_thread::get_id() == applier_.load(std::memory_order_acquire);
    if (options_.bound > 0 && !from_applier) {
      // Backpressure: producers block while the queue is at its bound.
      check::MutexLock lock(mutex_);
      while (depth_.load(std::memory_order_relaxed) >= options_.bound &&
             !stopping_) {
        not_full_cv_.wait_for(lock, options_.idle_wait_seconds);
      }
      if (stopping_) {
        return false;
      }
    }
    depth_.fetch_add(1, std::memory_order_seq_cst);
    queue_.push(std::move(env));
    if (sleeping_.load(std::memory_order_seq_cst)) {
      check::MutexLock lock(mutex_);
      consumer_cv_.notify_one();
    }
    return true;
  }

  void apply_one(Envelope& env,
                 std::vector<std::shared_ptr<Waiter>>& batch_waiters) {
    if (commands_ != nullptr) {
      commands_->inc();
    }
    if (latency_ != nullptr && options_.clock) {
      const double waited = options_.clock() - env.posted_at;
      latency_->record(waited > 0.0 ? waited : 0.0);
    }
    try {
      apply_(env.command);
    } catch (...) {
      if (env.waiter) {
        env.waiter->error = std::current_exception();
      } else {
        PA_LOG(kWarn, "ctrl") << "fire-and-forget command failed: "
                              << current_exception_message();
      }
    }
    if (env.waiter) {
      batch_waiters.push_back(std::move(env.waiter));
    }
  }

  void run_batch_end() {
    if (batch_end_) {
      try {
        batch_end_();
      } catch (...) {
        PA_LOG(kWarn, "ctrl") << "batch-end hook failed: "
                              << current_exception_message();
      }
    }
    if (depth_gauge_ != nullptr) {
      depth_gauge_->set(static_cast<double>(depth()));
    }
  }

  static std::string current_exception_message() {
    try {
      throw;
    } catch (const std::exception& e) {
      return e.what();
    } catch (...) {
      return "unknown exception";
    }
  }

  /// Inline mode: drain on the posting thread. Reentrant posts (a handler
  /// or batch-end callout posting again) are picked up by the outer loop.
  void drain_inline() {
    if (draining_) {
      return;
    }
    draining_ = true;
    std::vector<std::shared_ptr<Waiter>> batch_waiters;
    while (!queue_.empty()) {
      Envelope env;
      while (queue_.pop(env)) {
        depth_.fetch_sub(1, std::memory_order_relaxed);
        apply_one(env, batch_waiters);
      }
      run_batch_end();
      if (batches_ != nullptr) {
        batches_->inc();
      }
      for (auto& w : batch_waiters) {
        w->done.store(true, std::memory_order_release);
      }
      batch_waiters.clear();
    }
    draining_ = false;
  }

  void consume_loop() {
    applier_.store(std::this_thread::get_id(), std::memory_order_release);
    std::vector<std::shared_ptr<Waiter>> batch_waiters;
    while (true) {
      Envelope env;
      std::size_t popped = 0;
      while (queue_.pop(env)) {
        ++popped;
        apply_one(env, batch_waiters);
      }
      if (popped > 0) {
        depth_.fetch_sub(popped, std::memory_order_relaxed);
      }
      // Batch end runs on the timer tick too (popped == 0): that is the
      // event-loop home of periodic schedule passes, which the workload
      // manager's dirty flag turns into a no-op when nothing changed.
      run_batch_end();
      if (popped > 0 && batches_ != nullptr) {
        batches_->inc();
      }
      if (!batch_waiters.empty() || popped > 0) {
        for (auto& w : batch_waiters) {
          w->done.store(true, std::memory_order_release);
        }
        batch_waiters.clear();
        check::MutexLock lock(mutex_);
        done_cv_.notify_all();
        not_full_cv_.notify_all();
      }
      check::MutexLock lock(mutex_);
      if (stopping_ && depth_.load(std::memory_order_relaxed) == 0) {
        break;
      }
      if (depth_.load(std::memory_order_relaxed) > 0) {
        continue;  // more arrived while we were applying (or is in flight)
      }
      sleeping_.store(true, std::memory_order_seq_cst);
      if (depth_.load(std::memory_order_seq_cst) == 0 && !stopping_) {
        consumer_cv_.wait_for(lock, options_.idle_wait_seconds);
      }
      sleeping_.store(false, std::memory_order_relaxed);
    }
    applier_.store(std::thread::id(), std::memory_order_release);
  }

  ApplyFn apply_;
  BatchEndFn batch_end_;
  Options options_;

  net::MpscQueue<Envelope> queue_;
  std::atomic<std::size_t> depth_{0};
  std::atomic<bool> stopped_{false};
  std::atomic<std::thread::id> applier_{};
  std::atomic<bool> sleeping_{false};

  /// Guards only sleep/wake + backpressure; never held across callouts.
  check::Mutex mutex_{check::LockRank::kCtrlQueue, "core::ControlPlane"};
  check::CondVar consumer_cv_;
  check::CondVar not_full_cv_;
  check::CondVar done_cv_;
  bool stopping_ PA_GUARDED_BY(mutex_) = false;

  /// Inline-mode reentrancy guard; only ever touched by the single
  /// posting thread of a single_threaded() runtime.
  bool draining_ = false;

  /// ctrl.* instruments; resolved and used only from the apply context.
  std::string shard_label_;
  obs::Counter* commands_ = nullptr;
  obs::Counter* batches_ = nullptr;
  obs::Gauge* depth_gauge_ = nullptr;
  obs::Histogram* latency_ = nullptr;

  std::thread consumer_;
};

}  // namespace pa::core
