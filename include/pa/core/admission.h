#pragma once
/// \file admission.h
/// \brief Tenant admission-control interface at the control-plane boundary.
///
/// `pa::core` cannot depend on `pa::tenant` (same layering rule that keeps
/// the journal behind `JournalSink`), so the service talks to the tenant
/// tier through this interface. `pa::tenant::TenantRegistry` implements it;
/// tests can stub it.
///
/// Threading: `admit_pilot` / `admit_unit` run on the *producer* thread
/// (before the submit command is posted), so an over-quota submission is
/// rejected before it consumes queue space. The accounting hooks
/// (`unit_dispatched`, `unit_finalized`, `pilot_released`) run on shard
/// apply threads; implementations must be internally synchronized.

#include <string>

#include "pa/core/types.h"

namespace pa::core {

/// Canonical name of the implicit tenant used when a description does not
/// name one. Keeps metric names well-formed (`tenant.default.admitted`).
inline constexpr const char* kDefaultTenant = "default";

/// Resolves the owning tenant of a description: the `tenant` field if set,
/// else `attributes["tenant"]` (the journaled form), else `kDefaultTenant`.
std::string tenant_of(const PilotDescription& desc);
std::string tenant_of(const ComputeUnitDescription& desc);

class AdmissionInterface {
 public:
  virtual ~AdmissionInterface() = default;

  /// Admission checks; throw `pa::QuotaExceeded` to reject. On success the
  /// tenant's pilot / in-flight-unit account is charged.
  virtual void admit_pilot(const std::string& tenant) = 0;
  virtual void admit_unit(const std::string& tenant) = 0;

  /// A unit owned by `tenant` was dispatched onto `cores` cores (apply
  /// thread). Feeds the `tenant.share_units` fair-share evidence.
  virtual void unit_dispatched(const std::string& tenant, int cores) = 0;

  /// A unit reached a final state; releases its in-flight slot and records
  /// its queue wait (seconds from submit to start, -1 if it never ran).
  virtual void unit_finalized(const std::string& tenant, UnitState final_state,
                              double wait_seconds) = 0;

  /// A pilot left the system for good (not restarted); frees its slot.
  virtual void pilot_released(const std::string& tenant) = 0;

  /// Fair-share weight for WorkloadManager's deficit-round-robin pass.
  /// Implementations return 1.0 for unknown tenants.
  virtual double tenant_weight(const std::string& tenant) const = 0;
};

}  // namespace pa::core
