#pragma once
/// \file workload_manager.h
/// \brief Late-binding workload manager: the P* "Pilot-Manager" component
/// that holds the unit queue and invokes the scheduling strategy.
///
/// Pure bookkeeping, no runtime dependencies — the facade drives it and a
/// test can drive it by hand. Capacity accounting lives here so the
/// "never oversubscribe" invariant has a single owner.
///
/// Scheduling is *incremental*: the manager keeps persistent scheduler
/// views (pilot views refreshed in O(pilots) per pass, unit views built
/// once at enqueue and kept in the policy's order by sorted insertion)
/// and a dirty flag that turns a pass over unchanged state into an
/// immediate return. Events that can enable a placement — capacity
/// growth, enqueue/requeue, removal of a queued unit (it may have been
/// blocking a FIFO head) — set the flag; time passing alone never does,
/// because remaining walltime only shrinks.
///
/// Thread-safety: none of its own. The manager is externally serialized —
/// it is owned by PilotComputeService's control-plane apply context (one
/// writer, see control_plane.h); standalone tests drive it
/// single-threaded.

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pa/core/admission.h"
#include "pa/core/runtime.h"
#include "pa/core/scheduler.h"
#include "pa/core/types.h"
#include "pa/obs/metrics.h"

namespace pa::core {

class WorkloadManager {
 public:
  explicit WorkloadManager(std::unique_ptr<Scheduler> scheduler);

  /// Registers an ACTIVE pilot with its capacity.
  /// `walltime_end` is absolute (runtime clock).
  void add_pilot(const std::string& pilot_id, const std::string& site,
                 int total_cores, int priority, double cost_per_core_hour,
                 double walltime_end);

  /// Removes a pilot (terminated). Returns the units that were bound to it
  /// and must be requeued or failed by the caller.
  std::vector<std::string> remove_pilot(const std::string& pilot_id);

  /// A bound unit detached together with its pilot (cross-shard move).
  /// Carries the bookkeeping that must survive the move: reserved cores
  /// and the requeue count (so the max_requeues bound cannot be reset by
  /// moving a poison unit between shards).
  struct DetachedUnit {
    std::string unit_id;
    int cores = 1;
    int requeues = 0;
  };

  /// Removes a pilot *without* orphaning its bound units (they travel with
  /// it to another shard). Unlike remove_pilot, this has no requeue side
  /// effects; queued units are untouched. Returns the detached bound set.
  std::vector<DetachedUnit> detach_pilot(const std::string& pilot_id);

  /// Registers a pilot arriving from another shard together with the
  /// units already bound to it: capacity is added and immediately
  /// re-reserved for the bound set, and requeue counts are re-seeded.
  void adopt_pilot(const std::string& pilot_id, const std::string& site,
                   int total_cores, int priority, double cost_per_core_hour,
                   double walltime_end,
                   const std::vector<DetachedUnit>& bound_units);

  bool has_pilot(const std::string& pilot_id) const;
  std::size_t pilot_count() const { return pilots_.size(); }

  /// Enqueues a unit (FCFS position = call order; policies with a
  /// unit_order() place it by sorted insertion instead, after its equals).
  void enqueue_unit(const std::string& unit_id,
                    const ComputeUnitDescription& description);

  /// Units may requeue this often before the manager refuses; see
  /// set_max_requeues. High enough that legitimate fault-tolerance churn
  /// (pilot preemption storms) never trips it, low enough that a poison
  /// unit cannot cycle forever.
  static constexpr int kDefaultMaxRequeues = 1000;

  /// Re-enqueues a previously bound unit (pilot failure recovery) at the
  /// front of the queue — before its equals, under a unit_order() policy —
  /// preserving its original priority. Returns false — and drops the
  /// unit's requeue bookkeeping — when the unit has already been requeued
  /// max_requeues times; the caller must then fail the unit instead.
  bool requeue_unit_front(const std::string& unit_id,
                          const ComputeUnitDescription& description);

  /// Bounds per-unit requeues (-1 = unbounded). Takes effect for
  /// subsequent requeue_unit_front calls; existing counts are kept.
  void set_max_requeues(int max_requeues);
  int max_requeues() const { return max_requeues_; }
  /// How often `unit_id` has been requeued so far (0 if never/forgotten).
  int requeue_count(const std::string& unit_id) const;

  /// Drops a queued unit (cancellation). Returns false if not queued.
  bool remove_queued_unit(const std::string& unit_id);

  std::size_t queued_units() const { return queue_.size(); }
  int free_cores(const std::string& pilot_id) const;
  int total_free_cores() const;

  /// True when something changed since the last executed pass, i.e. the
  /// next schedule_pass will actually run the strategy.
  bool dirty() const { return dirty_; }

  /// Runs the scheduling strategy over the current queue and capacity.
  /// Accepted assignments are applied (cores reserved, unit dequeued).
  /// `data` may be null (no locality info). Returns immediately — without
  /// invoking the strategy — when nothing changed since the last pass
  /// (the "wm.schedule_passes_skipped" counter tracks these;
  /// "wm.schedule_passes" counts executed passes only).
  std::vector<Assignment> schedule_pass(double now,
                                        const DataServiceInterface* data);

  /// Releases a finished/failed unit's cores on its pilot.
  void unit_finished(const std::string& unit_id);

  /// Which pilot a bound unit is on; throws pa::NotFound if not bound.
  const std::string& bound_pilot(const std::string& unit_id) const;

  const Scheduler& scheduler() const { return *scheduler_; }

  /// Emits scheduler-decision counters ("wm.schedule_passes",
  /// "wm.schedule_passes_skipped", "wm.units_assigned") and queue/capacity
  /// gauges into `metrics`. Pass nullptr to detach; the registry must
  /// outlive its attachment.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Source of tenant weights for the fair-share pass. Pass nullptr to
  /// detach; the interface must outlive its attachment.
  void set_admission(const AdmissionInterface* admission) {
    admission_ = admission;
  }

  /// Enables the weighted fair-share (deficit round robin) ordering pass.
  /// Active only while an admission interface is attached and more than
  /// one distinct tenant has queued units — a single-tenant queue keeps
  /// the exact policy-ordered fast path.
  void set_fair_share(bool enabled) {
    fair_share_ = enabled;
    dirty_ = true;  // the presented order may change
  }
  bool fair_share() const { return fair_share_; }

 private:
  struct PilotRecord {
    std::string site;
    int total_cores = 0;
    int free_cores = 0;
    int priority = 0;
    double cost_per_core_hour = 0.0;
    double walltime_end = 0.0;
  };

  struct QueuedUnit {
    std::string unit_id;
    int cores = 1;
    double expected_duration = 1.0;
    std::vector<std::string> input_data;
    std::string preferred_site;
    std::string tenant;  ///< normalized owner (see core::tenant_of)
  };

  struct BoundUnit {
    std::string pilot_id;
    int cores = 1;
  };

  static QueuedUnit make_queued(const std::string& unit_id,
                                const ComputeUnitDescription& description);
  /// View without locality info (filled per pass for units that have
  /// input data — see refresh_locality).
  static UnitView make_base_view(const QueuedUnit& unit);
  /// Recomputes input_bytes_by_site/total_input_bytes. Sites with no free
  /// cores are skipped: none of their pilots can take the unit this pass
  /// (fits() excludes them), so their byte counts cannot matter.
  void refresh_locality(UnitView& view, const QueuedUnit& unit,
                        const DataServiceInterface* data) const;
  /// Inserts into queue_ and queue_views_ at the policy's position:
  /// append/prepend under FCFS, upper/lower bound of the unit_order()
  /// comparator otherwise (front = before equals, back = after equals).
  void insert_queued(QueuedUnit unit, bool front);

  /// Weighted fair-share ordering (deficit round robin): credits every
  /// tenant with queued units (weight x quantum), then interleaves the
  /// queue across tenants by accumulated credit, filling `order` with
  /// original queue positions. Returns false (order untouched, no credit
  /// granted) when fewer than two tenants have queued units.
  bool fair_share_order(std::vector<std::size_t>* order);

  std::unique_ptr<Scheduler> scheduler_;
  obs::MetricsRegistry* metrics_ = nullptr;
  int max_requeues_ = kDefaultMaxRequeues;
  std::map<std::string, PilotRecord> pilots_;
  /// Persistent scheduler input, in registration order (the stable view
  /// order policies rely on). site/total/priority/cost are immutable;
  /// free_cores and remaining_walltime are refreshed each executed pass.
  std::vector<PilotView> pilot_views_;
  /// Free cores per site — lets the locality refresh skip sites that
  /// cannot accept work this pass.
  std::map<std::string, int> site_free_cores_;
  /// queue_ and queue_views_ are parallel: same units, same positions.
  std::deque<QueuedUnit> queue_;
  std::deque<UnitView> queue_views_;
  std::map<std::string, BoundUnit> bound_;
  std::map<std::string, int> requeue_counts_;  ///< per live unit
  /// Set by every mutation that could enable a placement; cleared when a
  /// pass executes. Starts clean: an empty manager has nothing to place.
  bool dirty_ = false;

  const AdmissionInterface* admission_ = nullptr;
  bool fair_share_ = false;
  /// Persistent fair-share credit per tenant ("deficit"): grows by
  /// weight x quantum each pass the tenant has queued units, shrinks by
  /// the cores actually granted, and is dropped when the tenant's queue
  /// empties (fresh start when it returns).
  std::map<std::string, double> drr_deficit_;
};

}  // namespace pa::core
