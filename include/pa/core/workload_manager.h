#pragma once
/// \file workload_manager.h
/// \brief Late-binding workload manager: the P* "Pilot-Manager" component
/// that holds the unit queue and invokes the scheduling strategy.
///
/// Pure bookkeeping, no runtime dependencies — the facade drives it and a
/// test can drive it by hand. Capacity accounting lives here so the
/// "never oversubscribe" invariant has a single owner.
///
/// Thread-safety: none of its own. The manager is externally synchronized
/// — it is a PA_GUARDED_BY member of PilotComputeService, touched only
/// under the service lock (LockRank::kService); standalone tests drive it
/// single-threaded.

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pa/core/runtime.h"
#include "pa/core/scheduler.h"
#include "pa/core/types.h"
#include "pa/obs/metrics.h"

namespace pa::core {

class WorkloadManager {
 public:
  explicit WorkloadManager(std::unique_ptr<Scheduler> scheduler);

  /// Registers an ACTIVE pilot with its capacity.
  /// `walltime_end` is absolute (runtime clock).
  void add_pilot(const std::string& pilot_id, const std::string& site,
                 int total_cores, int priority, double cost_per_core_hour,
                 double walltime_end);

  /// Removes a pilot (terminated). Returns the units that were bound to it
  /// and must be requeued or failed by the caller.
  std::vector<std::string> remove_pilot(const std::string& pilot_id);

  bool has_pilot(const std::string& pilot_id) const;
  std::size_t pilot_count() const { return pilots_.size(); }

  /// Enqueues a unit (FCFS position = call order).
  void enqueue_unit(const std::string& unit_id,
                    const ComputeUnitDescription& description);

  /// Units may requeue this often before the manager refuses; see
  /// set_max_requeues. High enough that legitimate fault-tolerance churn
  /// (pilot preemption storms) never trips it, low enough that a poison
  /// unit cannot cycle forever.
  static constexpr int kDefaultMaxRequeues = 1000;

  /// Re-enqueues a previously bound unit (pilot failure recovery) at the
  /// front of the queue, preserving its original priority. Returns false
  /// — and drops the unit's requeue bookkeeping — when the unit has
  /// already been requeued max_requeues times; the caller must then fail
  /// the unit instead.
  bool requeue_unit_front(const std::string& unit_id,
                          const ComputeUnitDescription& description);

  /// Bounds per-unit requeues (-1 = unbounded). Takes effect for
  /// subsequent requeue_unit_front calls; existing counts are kept.
  void set_max_requeues(int max_requeues);
  int max_requeues() const { return max_requeues_; }
  /// How often `unit_id` has been requeued so far (0 if never/forgotten).
  int requeue_count(const std::string& unit_id) const;

  /// Drops a queued unit (cancellation). Returns false if not queued.
  bool remove_queued_unit(const std::string& unit_id);

  std::size_t queued_units() const { return queue_.size(); }
  int free_cores(const std::string& pilot_id) const;
  int total_free_cores() const;

  /// Runs the scheduling strategy over the current queue and capacity.
  /// Accepted assignments are applied (cores reserved, unit dequeued).
  /// `data` may be null (no locality info).
  std::vector<Assignment> schedule_pass(double now,
                                        const DataServiceInterface* data);

  /// Releases a finished/failed unit's cores on its pilot.
  void unit_finished(const std::string& unit_id);

  /// Which pilot a bound unit is on; throws pa::NotFound if not bound.
  const std::string& bound_pilot(const std::string& unit_id) const;

  const Scheduler& scheduler() const { return *scheduler_; }

  /// Emits scheduler-decision counters ("wm.schedule_passes",
  /// "wm.units_assigned") and queue/capacity gauges into `metrics`.
  /// Pass nullptr to detach; the registry must outlive its attachment.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

 private:
  struct PilotRecord {
    std::string site;
    int total_cores = 0;
    int free_cores = 0;
    int priority = 0;
    double cost_per_core_hour = 0.0;
    double walltime_end = 0.0;
  };

  struct QueuedUnit {
    std::string unit_id;
    int cores = 1;
    double expected_duration = 1.0;
    std::vector<std::string> input_data;
    std::string preferred_site;
  };

  struct BoundUnit {
    std::string pilot_id;
    int cores = 1;
  };

  static QueuedUnit make_queued(const std::string& unit_id,
                                const ComputeUnitDescription& description);
  UnitView make_view(const QueuedUnit& unit,
                     const DataServiceInterface* data) const;

  std::unique_ptr<Scheduler> scheduler_;
  obs::MetricsRegistry* metrics_ = nullptr;
  int max_requeues_ = kDefaultMaxRequeues;
  std::map<std::string, PilotRecord> pilots_;
  std::vector<std::string> pilot_order_;  ///< stable view order
  std::deque<QueuedUnit> queue_;
  std::map<std::string, BoundUnit> bound_;
  std::map<std::string, int> requeue_counts_;  ///< per live unit
};

}  // namespace pa::core
