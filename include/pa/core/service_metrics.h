#pragma once
/// \file service_metrics.h
/// \brief Aggregated execution metrics (basis of E1/E2 tables).
///
/// Lives in its own header so both the sharded engine (service_shard.h)
/// and the facade (pilot_compute_service.h) can speak the same metrics
/// type without an include cycle. With N shards the facade merges the
/// per-shard copies: SampleSets append, counters sum, first_submit takes
/// the earliest and last_finish the latest recorded time.

#include <cstddef>

#include "pa/common/stats.h"

namespace pa::core {

/// Aggregated execution metrics (basis of E1/E2 tables).
struct ServiceMetrics {
  pa::SampleSet pilot_startup_times;  ///< submit -> active per pilot
  pa::SampleSet unit_wait_times;      ///< submit -> start per unit
  pa::SampleSet unit_exec_times;      ///< start -> finish per unit
  std::size_t units_done = 0;
  std::size_t units_failed = 0;
  std::size_t units_canceled = 0;
  std::size_t requeues = 0;           ///< pilot-failure recoveries
  double first_submit_time = -1.0;
  double last_finish_time = -1.0;

  /// Wall/sim span from first unit submission to last completion.
  double makespan() const {
    return (first_submit_time >= 0.0 && last_finish_time >= 0.0)
               ? last_finish_time - first_submit_time
               : 0.0;
  }

  /// Folds another shard's metrics into this one.
  void merge(const ServiceMetrics& other) {
    pilot_startup_times.merge(other.pilot_startup_times);
    unit_wait_times.merge(other.unit_wait_times);
    unit_exec_times.merge(other.unit_exec_times);
    units_done += other.units_done;
    units_failed += other.units_failed;
    units_canceled += other.units_canceled;
    requeues += other.requeues;
    if (other.first_submit_time >= 0.0 &&
        (first_submit_time < 0.0 ||
         other.first_submit_time < first_submit_time)) {
      first_submit_time = other.first_submit_time;
    }
    if (other.last_finish_time > last_finish_time) {
      last_finish_time = other.last_finish_time;
    }
  }
};

}  // namespace pa::core
