#pragma once
/// \file shard_router.h
/// \brief Maps pilots, units, and tenants to control-plane shards.
///
/// Routing is computable on the hot path: ids are sequential
/// ("pilot-7", "unit-123"), so the default shard is the trailing ordinal
/// modulo the shard count — round-robin placement with no shared state.
/// The router stores only *overrides*: entities pinned away from their
/// default shard (a unit bound to a pilot on another shard, a pilot moved
/// between shards, a tenant-pinned submission). Overrides live in a small
/// map under `kShardRouter` and are consulted only off the fast path —
/// when a shard receives a command for an entity it does not own.
///
/// Tenants hash to shards with FNV-1a so a tenant's pilots land together
/// by default (admission state and fair-share views stay shard-local).

#include <cstdint>
#include <string>
#include <unordered_map>

#include "pa/check/mutex.h"
#include "pa/check/thread_safety.h"

namespace pa::core {

class ShardRouter {
 public:
  explicit ShardRouter(int shards);

  int shards() const { return shards_; }

  /// Shard an id routes to: the pinned override if one exists, else the
  /// computable default.
  int shard_for_id(const std::string& id) const;

  /// Computable default: trailing "-N" ordinal % shards, falling back to
  /// a hash of the whole id when the ordinal is absent.
  int default_shard(const std::string& id) const;

  /// Stable tenant placement (FNV-1a of the tenant name % shards).
  int shard_for_tenant(const std::string& tenant) const;

  /// Pins `id` to `shard` (override). Used when an entity is created on
  /// or moved to a non-default shard so stale callbacks and cross-shard
  /// lookups can find the owner.
  void pin(const std::string& id, int shard);

  /// Drops the override for `id` (entity reached a final state).
  void forget(const std::string& id);

  /// Returns the pinned shard for `id`, or -1 when not pinned.
  int pinned(const std::string& id) const;

 private:
  static int trailing_ordinal(const std::string& id);
  static std::uint64_t fnv1a(const std::string& s);

  const int shards_;
  mutable check::Mutex mutex_{check::LockRank::kShardRouter,
                              "core::ShardRouter"};
  std::unordered_map<std::string, int> overrides_ PA_GUARDED_BY(mutex_);
};

}  // namespace pa::core
