#pragma once
/// \file runtime.h
/// \brief Runtime binding interface between the pilot middleware and an
/// execution substrate.
///
/// Two implementations exist (DESIGN.md): `pa::rt::SimRuntime`, which maps
/// pilots to simulated LRMS jobs and unit execution to DES events, and
/// `pa::rt::LocalRuntime`, which maps pilots to in-process thread pools
/// executing real payloads. The Pilot-API code above this line is shared —
/// that sharing is the abstraction claim the paper makes (R1/R2).

#include <functional>
#include <string>

#include "pa/core/types.h"

namespace pa::core {

/// Callbacks the middleware registers when launching a pilot.
struct PilotRuntimeCallbacks {
  /// The placeholder job got its allocation; the agent is up.
  std::function<void(const std::string& pilot_id, int total_cores,
                     const std::string& site)>
      on_active;
  /// The allocation ended (walltime/cancel/failure). `state` is the final
  /// pilot state to record.
  std::function<void(const std::string& pilot_id, PilotState state)>
      on_terminated;
};

/// Execution substrate for pilots and units.
class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Requests a pilot allocation under the caller-chosen `pilot_id`
  /// (the pilot is then SUBMITTED; callbacks report progress, keyed by
  /// that id). Callbacks may fire synchronously from this call or later
  /// from runtime-internal threads/events; callers must tolerate both.
  virtual void start_pilot(const std::string& pilot_id,
                           const PilotDescription& description,
                           PilotRuntimeCallbacks callbacks) = 0;

  /// Tears down a pilot's allocation (cancels the placeholder job).
  virtual void cancel_pilot(const std::string& pilot_id) = 0;

  /// Runs a unit's payload on a pilot that the middleware has already
  /// reserved cores on. `on_done(success)` must eventually fire unless the
  /// pilot terminates first (in which case the middleware requeues).
  virtual void execute_unit(const std::string& pilot_id,
                            const ComputeUnitDescription& description,
                            const std::string& unit_id,
                            std::function<void(bool success)> on_done) = 0;

  /// Current time on this runtime's clock (simulated or wall seconds).
  virtual double now() const = 0;

  /// True when the substrate never runs callbacks concurrently with the
  /// submitting thread (everything happens on one thread, e.g. a DES).
  /// The service's control plane uses this to drain its command queue
  /// inline on the posting thread instead of spawning an apply thread —
  /// which keeps single-seed simulations bit-identical.
  virtual bool single_threaded() const { return false; }

  /// Drives the runtime until `predicate()` is true. For the simulated
  /// runtime this advances the event queue; for the local runtime it
  /// blocks the calling thread. Throws pa::TimeoutError if progress is
  /// impossible (event queue drained / timeout expired).
  virtual void drive_until(const std::function<bool()>& predicate,
                           double timeout_seconds) = 0;
};

/// Minimal interface the middleware needs from Pilot-Data to make
/// locality decisions and stage inputs (full service in pa::data).
class DataServiceInterface {
 public:
  virtual ~DataServiceInterface() = default;

  /// Bytes of data unit `du_id` resident at `site` (0 when absent).
  virtual double bytes_on_site(const std::string& du_id,
                               const std::string& site) const = 0;

  /// Total size of the data unit.
  virtual double total_bytes(const std::string& du_id) const = 0;

  /// Ensures a replica of `du_id` exists at `site`; `done` fires when it
  /// does (immediately if already resident).
  virtual void stage_to_site(const std::string& du_id, const std::string& site,
                             std::function<void()> done) = 0;

  /// Records that a unit produced (a replica of) `du_id` at `site`.
  virtual void register_output(const std::string& du_id,
                               const std::string& site) = 0;
};

}  // namespace pa::core
