#pragma once
/// \file url.h
/// \brief Resource URLs in the SAGA style: `scheme://host/path?k=v&k2=v2`.
///
/// The pilot systems identify every resource endpoint by URL
/// ("slurm://stampede2", "condor://osg", "ec2://us-east-1", ...); the
/// scheme selects the adaptor, the host the concrete site.

#include <string>

#include "pa/common/config.h"

namespace pa::saga {

struct Url {
  std::string scheme;
  std::string host;
  std::string path;   ///< includes leading '/', may be empty
  pa::Config query;   ///< parsed ?k=v&k=v part

  /// Parses a URL string; throws pa::InvalidArgument on malformed input.
  static Url parse(const std::string& text);

  std::string to_string() const;

  bool operator==(const Url& other) const {
    return scheme == other.scheme && host == other.host &&
           path == other.path && query == other.query;
  }
};

}  // namespace pa::saga
