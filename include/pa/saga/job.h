#pragma once
/// \file job.h
/// \brief SAGA-style job API: a uniform description/submission/monitoring
/// surface over heterogeneous local resource managers (paper ref [70]).
///
/// The pilot middleware never talks to an infrastructure directly — it goes
/// through a `JobService`, whose adaptor translates the uniform
/// `JobDescription` into the site's native request. This is the adaptor
/// pattern instance the paper's Sec. IV-B calls out.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pa/infra/resource_manager.h"
#include "pa/infra/types.h"

namespace pa::saga {

/// Uniform job description (subset of the SAGA job model that the pilot
/// systems actually use).
struct JobDescription {
  std::string executable = "/bin/true";
  std::vector<std::string> arguments;
  /// Submitting user, forwarded to the LRMS for per-owner limits.
  std::string owner;
  int number_of_nodes = 1;
  int processes_per_node = 1;
  double walltime_limit = 3600.0;  ///< seconds
  /// Simulation only: actual runtime; < 0 means open-ended (pilot jobs).
  double simulated_duration = -1.0;

  std::function<void(const infra::Allocation&)> on_started;
  std::function<void(infra::StopReason)> on_stopped;
};

/// Handle to a submitted job. Cheap to copy (shared state).
class Job {
 public:
  Job() = default;

  const std::string& id() const;
  infra::JobState state() const;
  void cancel();
  bool valid() const { return static_cast<bool>(impl_); }

 private:
  friend class JobService;
  struct Impl;
  explicit Job(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}
  std::shared_ptr<Impl> impl_;
};

class Session;

/// Factory for jobs on one resource endpoint.
class JobService {
 public:
  /// Resolved through `session` from a URL such as "slurm://hpc-sim".
  JobService(Session& session, const std::string& resource_url);

  /// Submits a job; callbacks in the description fire on state changes.
  Job submit(const JobDescription& description);

  const std::string& resource_url() const { return url_string_; }
  /// The adaptor's underlying site name.
  const std::string& site_name() const;
  int total_cores() const;

 private:
  std::string url_string_;
  std::shared_ptr<infra::ResourceManager> rm_;
};

}  // namespace pa::saga
