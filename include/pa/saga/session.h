#pragma once
/// \file session.h
/// \brief Registry binding resource URLs to (simulated) infrastructure
/// adaptors.
///
/// A `Session` is the SAGA context object: experiments construct their
/// simulated sites, register each under a URL, and hand the session to the
/// pilot middleware, which then addresses everything uniformly.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pa/infra/resource_manager.h"
#include "pa/saga/url.h"

namespace pa::saga {

class Session {
 public:
  /// Registers a resource manager under `url` (e.g. "slurm://hpc-a").
  /// The scheme is free-form; the full URL string is the lookup key.
  void register_resource(const std::string& url,
                         std::shared_ptr<infra::ResourceManager> rm);

  /// Resolves a URL; throws pa::NotFound for unregistered endpoints.
  std::shared_ptr<infra::ResourceManager> resolve(
      const std::string& url) const;

  bool has(const std::string& url) const;

  /// All registered URLs, sorted.
  std::vector<std::string> resource_urls() const;

 private:
  /// Normalizes by parsing and re-rendering (drops query differences in
  /// spacing etc.).
  static std::string normalize(const std::string& url);

  std::map<std::string, std::shared_ptr<infra::ResourceManager>> resources_;
};

}  // namespace pa::saga
