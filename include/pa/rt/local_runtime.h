#pragma once
/// \file local_runtime.h
/// \brief Runtime binding that executes real payloads on in-process
/// worker threads ("cluster-in-a-process").
///
/// A pilot maps to a dedicated thread pool whose size is the pilot's core
/// count; compute units run their `work` payloads (or burn CPU for their
/// declared duration) on those threads. This is the substrate for the
/// application engines — MapReduce, iterative K-means, dataflow — so those
/// code paths compute real results (DESIGN.md).
///
/// Callbacks (pilot lifecycle, unit completion) fire on worker/caller
/// threads, possibly concurrently. The runtime keeps the base-class
/// `single_threaded() == false`, so `PilotComputeService` runs its
/// control plane in threaded mode: each callback just posts a command;
/// the service's apply thread does the middleware work
/// (see core/control_plane.h).

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pa/check/mutex.h"
#include "pa/common/thread_pool.h"
#include "pa/core/runtime.h"

namespace pa::rt {

struct LocalRuntimeConfig {
  /// Cores per "node" when the pilot description does not carry a
  /// `cores_per_node` attribute.
  int default_cores_per_node = 1;
};

/// In-process execution substrate. Thread-safe.
///
/// Resource URLs: any URL with scheme "local" is accepted
/// (e.g. "local://workstation"); the pilot's core count is
/// `nodes * cores_per_node`.
class LocalRuntime : public core::Runtime {
 public:
  explicit LocalRuntime(LocalRuntimeConfig config = {});
  ~LocalRuntime() override;

  void start_pilot(const std::string& pilot_id,
                   const core::PilotDescription& description,
                   core::PilotRuntimeCallbacks callbacks) override;
  void cancel_pilot(const std::string& pilot_id) override;
  void execute_unit(const std::string& pilot_id,
                    const core::ComputeUnitDescription& description,
                    const std::string& unit_id,
                    std::function<void(bool)> on_done) override;
  double now() const override;
  void drive_until(const std::function<bool()>& predicate,
                   double timeout_seconds) override;

 private:
  struct PilotEntry {
    std::unique_ptr<pa::ThreadPool> pool;
    std::atomic<bool> stopping{false};
    core::PilotRuntimeCallbacks callbacks;
  };

  LocalRuntimeConfig config_;
  double epoch_;
  /// LockRank::kRuntime: held only around the pilot map, never across
  /// pool joins or unit payloads.
  mutable check::Mutex mutex_{check::LockRank::kRuntime, "rt::LocalRuntime"};
  std::map<std::string, std::shared_ptr<PilotEntry>> pilots_
      PA_GUARDED_BY(mutex_);
  /// Pools of cancelled pilots are drained and destroyed lazily here to
  /// avoid joining worker threads while callers hold external locks.
  std::vector<std::shared_ptr<PilotEntry>> graveyard_ PA_GUARDED_BY(mutex_);
};

}  // namespace pa::rt
