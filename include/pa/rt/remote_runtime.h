#pragma once
/// \file remote_runtime.h
/// \brief Runtime binding that drives pilots over a pa::net wire: the
/// Pilot-Manager half speaks the message protocol to Pilot-Agent
/// endpoints instead of calling an in-process substrate directly.
///
/// This realizes the P* split the paper builds on: manager and agents
/// are separate components joined by an explicit coordination channel,
/// and the manager↔agent path — the dominant overhead at scale — becomes
/// measurable wire traffic. Everything above `core::Runtime`
/// (PilotComputeService, WorkloadManager, the engines) runs unchanged.
///
///     PilotComputeService
///            │ core::Runtime
///     RemoteRuntime (manager)      AgentEndpoint (one per pilot)
///            │ kStartPilot/kExecuteUnit ──▶ │
///            │ ◀── kPilotActive/kUnitDone  │ LocalRuntime (pool)
///            └───── net::Transport ────────┘
///
/// Liveness: the manager heartbeats every agent; an agent that misses
/// `heartbeat_miss_limit` consecutive intervals is declared dead and its
/// pilot surfaces through `on_terminated(kFailed)` — which drives the
/// middleware's existing orphan-requeue recovery. A dropped *connection*
/// alone does not kill a pilot (TCP clients reconnect and re-introduce
/// themselves); the heartbeat deadline is the only death authority.
///
/// Payloads: `ComputeUnitDescription::work` closures cannot cross a
/// wire. The manager parks them in a `PayloadTable` keyed by unit id and
/// the (in-process) agent resolves them by key — the loopback stand-in
/// for the named-executable dispatch a multi-host deployment would use.
/// Units without a resolvable payload burn CPU for their declared
/// duration, exactly like LocalRuntime.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pa/check/mutex.h"
#include "pa/core/runtime.h"
#include "pa/net/flusher.h"
#include "pa/net/message.h"
#include "pa/net/transport.h"
#include "pa/obs/metrics.h"
#include "pa/rt/local_runtime.h"
#include "pa/store/agent.h"

namespace pa::store {
class StoreManager;
}  // namespace pa::store

namespace pa::rt {

/// Thread-safe unit_id -> work-closure map shared between the manager
/// and in-process agents. The manager re-puts on every execute_unit, so
/// requeued units resolve their payload again on the retry.
class PayloadTable {
 public:
  void put(const std::string& unit_id, std::function<void()> work);
  /// Removes and returns the closure, or an empty function when absent
  /// (agent falls back to duration burn).
  std::function<void()> take(const std::string& unit_id);
  std::size_t size() const;

 private:
  /// Leaf of the net send path (DESIGN.md lock hierarchy, rank 18).
  mutable check::Mutex mutex_{check::LockRank::kNetPayload,
                              "rt::PayloadTable"};
  std::map<std::string, std::function<void()>> work_ PA_GUARDED_BY(mutex_);
};

struct AgentEndpointConfig {
  LocalRuntimeConfig local;
  /// Local unit-queue capacity = queue_factor × pilot cores. The agent
  /// advertises `capacity − queued − running` as its window in every
  /// kUnitDoneBatch, so the manager ships batches sized to real headroom.
  /// This caps the manager→agent pipeline depth: short units need depth
  /// to cover the wire round-trip, so the agent keeps several batches of
  /// queued work per slot.
  int queue_factor = 16;
  /// Completion-outbox flusher (group-commit batching of kUnitDone).
  net::BatchFlusherConfig flusher;
  /// Optional: exports net.batch_size / flush-reason counters plus
  /// net.agent_send_rejected. Must outlive the endpoint.
  obs::MetricsRegistry* metrics = nullptr;
  /// Highest protocol version this agent speaks — test hook for
  /// mixed-version deployments (1 = pre-batch peer; the manager then
  /// falls back to per-unit kExecuteUnit).
  std::uint8_t wire_version = net::kProtocolVersion;
  /// The pilot's store shard (pa::store data plane). Give it a
  /// memory_capacity_bytes / spill_dir to exercise the LRU tier; the
  /// defaults hold everything in memory.
  store::StoreAgentConfig store;
};

/// The Pilot-Agent: connects to the manager's endpoint, announces its
/// pilot id (kHello), then executes whatever the manager sends on an
/// embedded LocalRuntime. One instance per pilot, created by the
/// `AgentLauncher` — in-process here; a real deployment would submit a
/// placeholder job that exec's an agent binary doing exactly this.
///
/// Late binding (the RADICAL-Pilot bulk-dispatch discipline): units
/// arrive in kUnitBatch frames and land in a local queue; a small
/// scheduler binds them to LocalRuntime slots as cores free up, so the
/// manager round-trip is off the per-unit critical path. Completions ride
/// a BatchFlusher outbox that coalesces them into kUnitDoneBatch frames
/// and — unlike the old fire-and-forget send — retries frames the
/// transport rejects under backpressure.
class AgentEndpoint {
 public:
  /// Connects immediately; throws pa::Error when the manager endpoint is
  /// unreachable. `transport` must outlive the endpoint.
  AgentEndpoint(net::Transport& transport, const std::string& endpoint,
                std::string pilot_id, std::shared_ptr<PayloadTable> payloads,
                AgentEndpointConfig config = {});
  ~AgentEndpoint();

  AgentEndpoint(const AgentEndpoint&) = delete;
  AgentEndpoint& operator=(const AgentEndpoint&) = delete;

  /// Test hook: while true the agent swallows heartbeats (simulating a
  /// hung agent process) so the manager's miss-limit logic can be
  /// exercised without killing real sockets.
  void set_unresponsive(bool value) { unresponsive_.store(value); }

  /// Wire counters of the agent's connection (reconnects live here: the
  /// agent is the dialing side).
  net::ConnectionStats stats() const { return conn_->stats(); }

  /// Completions dropped at teardown (undeliverable through the final
  /// flush); the manager's orphan requeue covers them.
  std::uint64_t completions_dropped() const {
    return outbox_.dropped_on_close();
  }

  /// The pilot's store shard (direct access for tests/telemetry).
  store::StoreAgent& store() { return store_; }

  /// Snapshot of the late-binding scheduler (telemetry / debugging).
  struct SchedulerStats {
    std::size_t queued = 0;       ///< units awaiting a slot
    std::size_t outstanding = 0;  ///< units running in the LocalRuntime
    std::int32_t slots = 0;       ///< pilot cores (0 until kPilotActive)
    std::int32_t window = 0;      ///< headroom advertised to the manager
    std::size_t outbox_pending = 0;  ///< completions awaiting a flush
  };
  SchedulerStats scheduler_stats() const;

 private:
  void handle_message(const std::string& payload);
  /// Enqueues units and pumps the local scheduler.
  void enqueue_units(std::vector<net::WireUnitDescription> units);
  /// Binds queued units to free LocalRuntime slots.
  void pump();
  void dispatch(net::WireUnitDescription unit);
  void complete(const std::string& unit_id, bool success);
  /// Outbox sink: arena-encodes a batch (merging kUnitDone runs into
  /// kUnitDoneBatch when the peer speaks v2) and gathers it into the
  /// transport. Returns what the transport rejected, for retry.
  std::vector<net::Message> ship(std::vector<net::Message> batch,
                                 net::FlushReason reason);
  /// Bypasses the outbox (heartbeat acks: batching them would inflate the
  /// manager's RTT histogram, and losing one is harmless).
  void send_direct(net::Message message);
  std::int32_t window();

  const std::string pilot_id_;
  const AgentEndpointConfig config_;
  const std::shared_ptr<PayloadTable> payloads_;

  // Destruction order (reverse of declaration) is load-bearing:
  // ~local_ first (joins workers; its completion callbacks may still
  // push into outbox_), then ~outbox_ (final flush attempt over the
  // still-constructed conn_), then conn_ last.
  net::ConnectionPtr conn_;

  std::atomic<bool> unresponsive_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};  ///< set by ~AgentEndpoint
  std::atomic<std::uint64_t> seq_{0};
  /// min(own, manager) protocol version, learned from message headers.
  std::atomic<std::uint8_t> peer_version_;
  /// Max completions merged per kUnitDoneBatch frame; halves on transport
  /// reject (so frames shrink until they fit the send queue), doubles on
  /// success up to the flusher's max_batch.
  std::atomic<std::size_t> merge_cap_;

  // Cached kPilotActive body for idempotent duplicate kStartPilot
  // handling after a reconnect; site_/cores_ are published before
  // active_sent_ (release) and only read after it (acquire).
  int active_cores_ = 0;
  std::string active_site_;
  std::atomic<bool> active_sent_{false};

  /// Agent-local scheduler state (rank kNetRuntime; never held across
  /// LocalRuntime calls or sends).
  mutable check::Mutex sched_mu_{check::LockRank::kNetRuntime,
                                 "rt::AgentEndpoint"};
  std::deque<net::WireUnitDescription> queue_ PA_GUARDED_BY(sched_mu_);
  int slots_ PA_GUARDED_BY(sched_mu_) = 0;        ///< pilot cores
  int outstanding_ PA_GUARDED_BY(sched_mu_) = 0;  ///< units inside local_

  std::string arena_;  ///< flusher-thread-only encode buffer
  obs::Counter* send_rejected_counter_ = nullptr;

  /// Data-plane half: assembles kObjPut streams, serves kObjGet. Replies
  /// ride outbox_ (declared below, destroyed first), so in-flight store
  /// replies drain through the final flush like completions do.
  store::StoreAgent store_;

  net::BatchFlusher outbox_;
  LocalRuntime local_;
};

/// Launches the agent for `pilot_id` against the manager's resolved
/// endpoint. Runs inside start_pilot — keep it non-blocking (create an
/// AgentEndpoint, or submit a job that will create one).
using AgentLauncher =
    std::function<void(const std::string& pilot_id,
                       const std::string& endpoint)>;

struct RemoteRuntimeConfig {
  /// Passed to Transport::listen; "inproc://manager" or "127.0.0.1:0".
  std::string listen_endpoint = "inproc://manager";
  double heartbeat_interval_seconds = 0.25;
  /// Dead after `heartbeat_interval_seconds * heartbeat_miss_limit`
  /// without an ack (or any other sign of life).
  int heartbeat_miss_limit = 4;
  /// Pipeline depth per agent core: the manager reports
  /// `agent cores × factor` to the service so enough units are in flight
  /// to keep agent queues fed (the agent still binds to real cores; the
  /// factor only deepens the dispatch pipeline the batches draw from).
  int dispatch_window_factor = 4;
  /// Unit-dispatch flusher (group-commit batching of kExecuteUnit into
  /// kUnitBatch frames).
  net::BatchFlusherConfig flusher;
  /// Required: how pilots become agents.
  AgentLauncher launcher;
  /// Optional sink for heartbeat RTT, reconnects, queue HWM, bytes, and
  /// the flusher's batch-size / flush-reason series.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Manager-side core::Runtime over a pa::net transport. Thread-safe.
///
/// Resource URLs: scheme "remote" (e.g. "remote://cluster-a"); the agent
/// rewrites it to "local://" for its embedded substrate.
class RemoteRuntime : public core::Runtime {
 public:
  /// Starts listening and the heartbeat thread. `transport` must outlive
  /// the runtime and is not stopped by it.
  RemoteRuntime(net::Transport& transport, RemoteRuntimeConfig config);
  ~RemoteRuntime() override;

  /// Resolved listen endpoint (kernel-chosen port filled in for TCP).
  const std::string& endpoint() const { return endpoint_; }

  /// The table in-process agents resolve work closures from.
  const std::shared_ptr<PayloadTable>& payloads() const { return payloads_; }

  /// Wires the data plane: the store's egress goes through our
  /// connections (version-gated: pilots that negotiated protocol < 3 are
  /// reported kGone), inbound kObjLocate/kObjChunk are forwarded to the
  /// store, pilot lifecycle (active/lost) feeds its membership, and unit
  /// dispatch prefetches declared input objects onto the target pilot.
  /// Call before start_pilot; `store` must outlive the runtime. The
  /// attached store's transfer pump is closed when the runtime is
  /// destroyed or when another attach_store replaces it (including
  /// nullptr) — its sender captures this runtime and has no safe
  /// concurrent swap — so detaching ends the store's transfer service,
  /// while its local put/get API stays usable.
  void attach_store(store::StoreManager* store);

  void start_pilot(const std::string& pilot_id,
                   const core::PilotDescription& description,
                   core::PilotRuntimeCallbacks callbacks) override;
  void cancel_pilot(const std::string& pilot_id) override;
  void execute_unit(const std::string& pilot_id,
                    const core::ComputeUnitDescription& description,
                    const std::string& unit_id,
                    std::function<void(bool)> on_done) override;
  double now() const override;
  void drive_until(const std::function<bool()>& predicate,
                   double timeout_seconds) override;

 private:
  struct PilotEntry {
    core::PilotDescription description;
    core::PilotRuntimeCallbacks callbacks;
    net::ConnectionPtr conn;  ///< null until the agent's kHello
    bool active = false;
    double last_alive = 0.0;  ///< runtime-clock time of last sign of life
    std::uint64_t hello_count = 0;  ///< re-hellos = agent reconnects
    std::uint64_t seq = 0;
    /// min(own, agent) protocol version from the agent's kHello header.
    std::uint8_t peer_version = net::kProtocolVersion;
    /// Dispatch credits: how many more units the agent can absorb.
    /// Seeded at kPilotActive (cores × dispatch_window_factor), debited
    /// per shipped unit, credited per completion, and refreshed to the
    /// agent's self-reported headroom on every kUnitDoneBatch.
    std::int64_t window = 0;
    /// Max units per kUnitBatch frame; halves on transport reject so
    /// oversized frames shrink until they fit, doubles on success.
    std::size_t flush_cap = 0;
    std::map<std::string, std::function<void(bool)>> inflight;
  };

  void handle_message(const std::weak_ptr<net::Connection>& from,
                      const std::string& payload);
  void heartbeat_loop();
  bool send_on(const net::ConnectionPtr& conn, net::Message message);
  /// Dispatch sink: groups queued kExecuteUnit messages by pilot,
  /// arena-encodes them as kUnitBatch (or per-unit frames for v1 peers)
  /// sized to min(window, flush_cap), and gathers them into the agent's
  /// connection. Returns what could not ship yet (no connection, no
  /// window, transport reject) for retry.
  std::vector<net::Message> dispatch(std::vector<net::Message> batch,
                                     net::FlushReason reason);

  RemoteRuntimeConfig config_;
  net::Transport& transport_;
  std::string endpoint_;
  /// Attached data plane (null = no store). Atomic because delivery and
  /// heartbeat threads read it while the owner may attach late; writes
  /// happen before pilots exist in practice.
  std::atomic<store::StoreManager*> store_{nullptr};
  std::shared_ptr<PayloadTable> payloads_ = std::make_shared<PayloadTable>();
  double epoch_;

  /// Rank kNetRuntime (14): sits between the control-plane ranks (10/12)
  /// and the transport/connection/payload locks (15/16/18) the send path
  /// takes. NEVER held while invoking service callbacks or
  /// Connection::close() — copy under the lock, release, then call out.
  /// Since the event-driven refactor the service calls execute_unit from
  /// its apply thread with no lock held; callbacks post commands.
  mutable check::Mutex mutex_{check::LockRank::kNetRuntime,
                              "rt::RemoteRuntime"};
  check::CondVar cv_;
  std::map<std::string, std::shared_ptr<PilotEntry>> pilots_
      PA_GUARDED_BY(mutex_);
  /// Connections of terminated pilots, closed by the heartbeat thread
  /// (handlers may not close their own connection).
  std::vector<net::ConnectionPtr> zombies_ PA_GUARDED_BY(mutex_);
  /// Accepted connections awaiting their kHello (not yet mapped to a
  /// pilot); severed at shutdown so their handlers cannot outlive us.
  std::vector<std::weak_ptr<net::Connection>> pending_ PA_GUARDED_BY(mutex_);
  bool stopping_ PA_GUARDED_BY(mutex_) = false;

  std::string arena_;  ///< dispatch-flusher-thread-only encode buffer

  std::thread heartbeat_;
  /// Unit-dispatch flusher; closed (final flush) in the destructor before
  /// connections are torn down. Declared last so its thread never
  /// outlives the state the sink touches.
  std::unique_ptr<net::BatchFlusher> dispatch_;
};

}  // namespace pa::rt
