#pragma once
/// \file sim_runtime.h
/// \brief Runtime binding that maps pilots onto simulated infrastructure.
///
/// A pilot becomes an open-ended placeholder job submitted through the
/// SAGA layer; unit execution becomes a DES event that completes after the
/// unit's declared duration plus the agent's per-unit dispatch overhead.
/// Deterministic for a fixed model + seed.

#include <map>
#include <memory>
#include <set>
#include <string>

#include "pa/core/runtime.h"
#include "pa/saga/job.h"
#include "pa/saga/session.h"
#include "pa/sim/engine.h"

namespace pa::rt {

struct SimRuntimeConfig {
  /// Time the pilot agent spends launching one unit (fork/exec, bookkeeping).
  /// Published pilot systems measure 10-100 ms per task; default 20 ms.
  double unit_dispatch_overhead = 0.02;
  /// Time between allocation start and the agent being ready to accept
  /// units (agent bootstrap: ~seconds on real systems).
  double agent_bootstrap_time = 2.0;
};

class SimRuntime : public core::Runtime {
 public:
  SimRuntime(sim::Engine& engine, saga::Session& session,
             SimRuntimeConfig config = {});

  void start_pilot(const std::string& pilot_id,
                   const core::PilotDescription& description,
                   core::PilotRuntimeCallbacks callbacks) override;
  void cancel_pilot(const std::string& pilot_id) override;
  void execute_unit(const std::string& pilot_id,
                    const core::ComputeUnitDescription& description,
                    const std::string& unit_id,
                    std::function<void(bool)> on_done) override;
  double now() const override { return engine_.now(); }
  /// Everything runs on the driving thread: the service drains its
  /// command queue inline, keeping simulations deterministic.
  bool single_threaded() const override { return true; }
  void drive_until(const std::function<bool()>& predicate,
                   double timeout_seconds) override;

  sim::Engine& engine() { return engine_; }
  const SimRuntimeConfig& config() const { return config_; }

 private:
  struct PilotEntry {
    saga::Job job;
    core::PilotRuntimeCallbacks callbacks;
    bool active = false;
    bool terminated = false;
    /// Pending unit-completion events, cancelled if the pilot dies first.
    std::set<sim::EventId> unit_events;
  };

  sim::Engine& engine_;
  saga::Session& session_;
  SimRuntimeConfig config_;
  std::map<std::string, std::shared_ptr<PilotEntry>> pilots_;
};

}  // namespace pa::rt
