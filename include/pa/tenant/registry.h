#pragma once
/// \file registry.h
/// \brief pa::tenant — multi-tenant quotas and fair-share weights.
///
/// `TenantRegistry` is the concrete `pa::core::AdmissionInterface`: attach
/// it with `PilotComputeService::attach_admission` and every submission is
/// admitted against the owning tenant's quotas *before* it consumes
/// control-plane queue space — over-quota submissions throw
/// `pa::QuotaExceeded` on the caller's thread. The registry also supplies
/// the per-tenant weights that drive the workload managers' weighted
/// fair-share (deficit round robin) ordering pass.
///
/// Quotas are soft-state and purely in-memory: a recovered service starts
/// with fresh accounts and re-charges them as the resume plan resubmits
/// work through the normal admission path.
///
/// Threading: one mutex (LockRank::kTenantRegistry — below every service
/// and metrics lock) guards all accounts. admit_* run on producer threads;
/// the accounting hooks run on shard apply threads; weights are read from
/// scheduling passes. All are short leaf sections.
///
/// Observability (docs/METRICS.md "Tenant tier"): aggregate counters
/// `tenant.admitted` / `tenant.rejected_quota` / `tenant.share_units`
/// plus per-tenant `tenant.<tenant>.admitted|rejected_quota|share_units`
/// counters, a `tenant.<tenant>.inflight` gauge and a
/// `tenant.<tenant>.unit_wait` histogram.

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "pa/check/mutex.h"
#include "pa/core/admission.h"
#include "pa/core/types.h"
#include "pa/obs/metrics.h"

namespace pa::tenant {

/// Per-tenant admission limits. -1 (the default) means unlimited.
struct Quota {
  /// Units submitted but not yet final.
  std::int64_t max_inflight_units = -1;
  /// Live (non-released) pilots.
  std::int64_t max_pilots = -1;
  /// Sustained submissions/second (token bucket on the registry's clock;
  /// pilots and units draw from the same bucket). < 0 disables.
  double submit_rate = -1.0;
  /// Bucket depth (burst allowance). <= 0 derives max(1, submit_rate).
  double burst = 0.0;
};

class TenantRegistry : public core::AdmissionInterface {
 public:
  /// `clock` feeds the submit-rate token buckets (seconds; use the
  /// runtime's clock so simulated time works). May be empty when no
  /// tenant sets a submit_rate quota.
  explicit TenantRegistry(std::function<double()> clock = {});

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Replaces `tenant`'s quota (accounts already charged are kept, so
  /// tightening a quota below current usage only blocks *new* work).
  void set_quota(const std::string& tenant, const Quota& quota);
  /// Fair-share weight (> 0); unknown tenants default to 1.0.
  void set_weight(const std::string& tenant, double weight);

  /// Exports the tenant.* series into `metrics`. Pass nullptr to detach;
  /// the registry must outlive its attachment.
  void set_metrics(obs::MetricsRegistry* metrics);

  // ---- core::AdmissionInterface ----
  void admit_pilot(const std::string& tenant) override;
  void admit_unit(const std::string& tenant) override;
  void unit_dispatched(const std::string& tenant, int cores) override;
  void unit_finalized(const std::string& tenant, core::UnitState final_state,
                      double wait_seconds) override;
  void pilot_released(const std::string& tenant) override;
  double tenant_weight(const std::string& tenant) const override;

  // ---- introspection (tests, benches, exporters) ----
  std::int64_t inflight_units(const std::string& tenant) const;
  std::int64_t live_pilots(const std::string& tenant) const;
  std::uint64_t admitted(const std::string& tenant) const;
  std::uint64_t rejected(const std::string& tenant) const;
  /// Core-weighted dispatch grants: the fair-share evidence series.
  std::int64_t share_units(const std::string& tenant) const;

 private:
  struct Account {
    Quota quota;
    double weight = 1.0;
    std::int64_t inflight_units = 0;
    std::int64_t pilots = 0;
    double tokens = 0.0;
    double token_time = -1.0;  ///< last refill instant; -1 = bucket unprimed
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::int64_t share_units = 0;
    // Cached instruments (registry handles are stable for its lifetime).
    obs::Counter* admitted_counter = nullptr;
    obs::Counter* rejected_counter = nullptr;
    obs::Counter* share_counter = nullptr;
    obs::Gauge* inflight_gauge = nullptr;
    obs::Histogram* wait_histogram = nullptr;
  };

  Account& account(const std::string& name) PA_REQUIRES(mutex_);
  /// (Re)binds the per-tenant instruments against the current sink.
  void bind_instruments(const std::string& name, Account& acc)
      PA_REQUIRES(mutex_);
  /// Token-bucket check; throws pa::QuotaExceeded (after counting the
  /// rejection) when the bucket is dry.
  void take_token(const std::string& name, Account& acc) PA_REQUIRES(mutex_);
  void count_rejection(Account& acc) PA_REQUIRES(mutex_);

  const std::function<double()> clock_;
  mutable check::Mutex mutex_{check::LockRank::kTenantRegistry,
                              "tenant::TenantRegistry"};
  obs::MetricsRegistry* metrics_ PA_GUARDED_BY(mutex_) = nullptr;
  obs::Counter* agg_admitted_ PA_GUARDED_BY(mutex_) = nullptr;
  obs::Counter* agg_rejected_ PA_GUARDED_BY(mutex_) = nullptr;
  obs::Counter* agg_share_ PA_GUARDED_BY(mutex_) = nullptr;
  std::map<std::string, Account> accounts_ PA_GUARDED_BY(mutex_);
};

}  // namespace pa::tenant
