#pragma once
/// \file chunking.h
/// \brief Content addressing and chunk framing for the pa::store data
/// plane.
///
/// Objects are immutable byte strings named by their content hash — the
/// Pilot-Data "data unit" made concrete. An object travels and rests as a
/// sequence of fixed-size chunks, each carrying its own CRC32 (the zlib-
/// compatible journal polynomial) computed at the source shard. The CRC
/// rides inside the wire frame and is stored next to the chunk at rest,
/// so one checksum covers the whole path: source memory -> wire -> peer
/// shard -> spill file -> read-back. Frame-level CRC (wire.h) only covers
/// the hop; the chunk CRC is what catches bytes corrupted at rest.
///
/// Chunks are sized well below net::kMaxFramePayloadBytes so a bulk
/// stage-in interleaves with heartbeats and unit batches on the same
/// connection instead of head-of-line-blocking them.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "pa/journal/crc32.h"

namespace pa::store {

/// Default chunk payload size: 256 KiB. Small enough that a chunk frame
/// never monopolizes a connection send queue (frame cap is 4 MiB), large
/// enough to amortize per-frame overhead on bulk transfers.
inline constexpr std::size_t kDefaultChunkBytes = 256 * 1024;

/// One chunk of an object: payload plus the CRC32 computed at the source.
struct Chunk {
  std::string data;
  std::uint32_t crc = 0;

  bool operator==(const Chunk&) const = default;
};

/// CRC32 of a chunk payload (zlib-compatible, shared with the journal).
inline std::uint32_t chunk_crc(const std::string& data) {
  return journal::crc32(data.data(), data.size());
}

/// Content hash of an object: FNV-1a 64 over the bytes, rendered as
/// "o" + 16 hex digits. Deterministic across runs and platforms, so the
/// same bytes always resolve to the same object id on every node — the
/// property that makes replicas interchangeable and caching safe.
std::string content_id(const std::string& bytes);

/// True when `id` has the shape content_id produces ("o" + 16 hex).
bool is_object_id(const std::string& id);

/// Number of chunks an object of `total_bytes` splits into. Zero-byte
/// objects occupy zero chunks.
std::uint32_t chunk_count_for(std::uint64_t total_bytes,
                              std::size_t chunk_bytes);

/// Splits `bytes` into CRC-stamped chunks of at most `chunk_bytes` each.
std::vector<Chunk> split_chunks(const std::string& bytes,
                                std::size_t chunk_bytes);

/// Reassembles chunks into the object bytes (no verification — callers
/// verify CRCs and the content hash before trusting the result).
std::string join_chunks(const std::vector<Chunk>& chunks);

}  // namespace pa::store
