#pragma once
/// \file transfer.h
/// \brief TransferScheduler: paces chunked object transfers onto pilot
/// connections so stage-in overlaps compute without starving control
/// traffic.
///
/// All manager-side object egress (kObjPut chunk streams, kObjGet
/// requests) flows through one net::BatchFlusher pump. The pump hands the
/// sender at most `chunks_per_pass` frames per sink pass, so even a
/// multi-gigabyte stage-in is interleaved — heartbeats and unit batches
/// queued on the same connection get a turn between every pass instead of
/// waiting behind the whole object (the no-head-of-line-blocking half of
/// "data as a first-class citizen").
///
/// Delivery contract (mirrors the dispatch sink in RemoteRuntime):
///   * kSent  — frame accepted by the connection;
///   * kBusy  — transient backpressure: the frame *and every later frame
///              for the same pilot* are retained in order and retried
///              after a backoff, so a chunk stream never reorders;
///   * kGone  — the pilot is unknown, dead, or speaks a pre-v3 protocol:
///              the frame is dropped (pilot death already fails the
///              waiting ensures at the manager level).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pa/net/flusher.h"
#include "pa/net/message.h"
#include "pa/store/chunking.h"

namespace pa::store {

enum class SendResult {
  kSent,
  kBusy,
  kGone,
};

/// Sends one object-plane message to a pilot's connection. Supplied by
/// rt::RemoteRuntime (which owns connections and version negotiation);
/// must be callable from the pump thread with no caller locks held. The
/// message is passed by reference so a kBusy result leaves it intact for
/// retry; the sender may stamp header fields (version, seq) in place.
using ObjSender =
    std::function<SendResult(const std::string& pilot_id, net::Message&)>;

struct TransferSchedulerConfig {
  /// Max chunk frames handed to the sender per pump pass (the
  /// interleaving knob — also the pump's batch-size trigger).
  std::size_t chunks_per_pass = 8;
  /// Backoff before retrying frames a busy connection rejected.
  double retry_delay_seconds = 0.002;
};

class TransferScheduler {
 public:
  explicit TransferScheduler(TransferSchedulerConfig config = {});
  ~TransferScheduler();

  TransferScheduler(const TransferScheduler&) = delete;
  TransferScheduler& operator=(const TransferScheduler&) = delete;

  /// Must be called before the first transfer; the sender is immutable
  /// afterwards.
  void attach_sender(ObjSender sender);

  /// Streams every chunk of an object to `pilot_id` as kObjPut frames
  /// under one transfer id. Returns immediately; delivery is paced by the
  /// pump.
  void push_object(const std::string& pilot_id, const std::string& object_id,
                   std::uint64_t transfer_id, const std::vector<Chunk>& chunks,
                   std::uint64_t total_bytes);

  /// Sends a kObjGet for `object_id` under `transfer_id`.
  void request_object(const std::string& pilot_id,
                      const std::string& object_id,
                      std::uint64_t transfer_id);

  /// Final delivery attempt, then drops and joins the pump thread.
  void close();

  std::uint64_t chunks_sent() const {
    return chunks_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t chunks_dropped() const {
    return chunks_dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<net::Message> pump_sink(std::vector<net::Message> batch);

  const TransferSchedulerConfig config_;
  ObjSender sender_;
  std::atomic<std::uint64_t> chunks_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> chunks_dropped_{0};
  std::unique_ptr<net::BatchFlusher> pump_;  ///< constructed last
};

}  // namespace pa::store
