#pragma once
/// \file agent.h
/// \brief StoreAgent: the agent-side half of the data plane — a Shard
/// plus the wire glue that assembles inbound kObjPut streams and serves
/// outbound kObjGet requests.
///
/// Owned by rt::AgentEndpoint, which routes kObjPut/kObjGet into
/// `handle()` and enqueues whatever messages it returns on the agent
/// outbox (the same BatchFlusher that carries completions, so chunk
/// replies get the buffered-retry discipline for free). StoreAgent never
/// touches a connection itself — transport access stays behind
/// pa::net::Transport, per the socket-confinement lint.
///
/// Protocol behavior:
///   * kObjPut  — chunks are assembled per transfer_id; when the last
///     chunk lands, the object is CRC- and hash-verified and stored.
///     Success answers kObjLocate{success=true} (the manager's directory
///     entry + ensure trigger); verification failure answers
///     kObjLocate{success=false} so the manager fails fast instead of
///     waiting on an announce that never comes.
///   * kObjGet  — the object is read CRC-verified from the shard and
///     streamed back as kObjChunk frames; a miss (evicted, corrupt,
///     never held) answers a single kObjChunk{chunk_count=0}.
///   * eviction — objects the shard dropped without a spill copy are
///     announced as kObjLocate{success=false} piggybacked on the reply
///     batch, keeping the manager's directory honest.
///
/// Locking: one mutex (LockRank::kStoreAgent) guards the assembly map
/// only; the shard has its own chunk-map lock (42) and replies are
/// returned to the caller for sending, so rank 17 never reaches the
/// flusher (13) or a connection (16).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pa/check/mutex.h"
#include "pa/net/message.h"
#include "pa/store/shard.h"

namespace pa::store {

struct StoreAgentConfig {
  ShardConfig shard;
};

class StoreAgent {
 public:
  explicit StoreAgent(StoreAgentConfig config = {});

  StoreAgent(const StoreAgent&) = delete;
  StoreAgent& operator=(const StoreAgent&) = delete;

  /// Handles one manager->agent object message; returns the replies to
  /// enqueue on the agent outbox (never sends itself). Non-object
  /// messages return empty.
  std::vector<net::Message> handle(const net::Message& m);

  Shard& shard() { return shard_; }

 private:
  struct Assembly {
    std::string object_id;
    std::vector<Chunk> chunks;
    std::vector<bool> got;
    std::uint32_t expected = 0;
    std::uint32_t received = 0;
    std::uint64_t total = 0;
  };

  std::vector<net::Message> handle_put(const net::Message& m);
  std::vector<net::Message> handle_get(const net::Message& m);
  static net::Message make_locate(const std::string& object_id,
                                  std::uint64_t bytes, bool success);

  mutable check::Mutex mutex_{check::LockRank::kStoreAgent,
                              "store::StoreAgent"};
  std::map<std::uint64_t, Assembly> assemblies_ PA_GUARDED_BY(mutex_);
  Shard shard_;
};

}  // namespace pa::store
