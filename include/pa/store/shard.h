#pragma once
/// \file shard.h
/// \brief One node's slice of the distributed object store: an LRU memory
/// tier over an optional spill-to-disk tier, all reads CRC-verified.
///
/// Every AgentEndpoint hosts one Shard; the manager hosts one more (the
/// "origin" shard where application put() lands and pulled objects are
/// cached). Objects are stored as the chunk sequences they travel as
/// (chunking.h), each chunk keeping the CRC computed at its source — a
/// read that fails CRC is treated as *absence*, never silently returned:
/// the shard drops the corrupt object, counts it, and lets the replication
/// layer re-fetch from another replica.
///
/// Eviction: when the resident bytes exceed `memory_capacity_bytes`, the
/// least-recently-used objects are spilled to `spill_dir` (one file per
/// object, chunk layout + CRCs preserved) or, with no spill dir, dropped —
/// dropped ids are reported back to the caller so the agent can tell the
/// manager its replica is gone (the directory stays honest, affinity
/// never chases evicted bytes). A spilled object is promoted back to the
/// memory tier on first read; its spill file is kept, so re-evicting it
/// later is free.
///
/// Threading: one mutex (LockRank::kStoreChunkMap) guards the chunk map
/// and LRU bookkeeping. Spill I/O happens under it — acceptable for a
/// data plane whose callers are transfer threads, never the control
/// plane. The shard never calls out while locked (no sends, no
/// callbacks), keeping it a near-leaf in the lock hierarchy.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pa/check/mutex.h"
#include "pa/store/chunking.h"

namespace pa::store {

struct ShardConfig {
  /// Resident (memory-tier) byte budget; 0 = unlimited, never evict.
  std::uint64_t memory_capacity_bytes = 0;
  /// Directory for spill files; empty = evicted objects are dropped.
  std::string spill_dir;
  /// Chunk payload size used when splitting whole-object puts.
  std::size_t chunk_bytes = kDefaultChunkBytes;
};

struct ShardStats {
  std::uint64_t puts = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;     ///< objects pushed out of the memory tier
  std::uint64_t spills = 0;        ///< evictions that wrote a spill file
  std::uint64_t spill_loads = 0;   ///< promotions back from disk
  std::uint64_t crc_failures = 0;  ///< corrupt reads rejected (and dropped)
  std::uint64_t dropped = 0;       ///< evictions with nowhere to spill
  std::uint64_t resident_bytes = 0;
  std::uint64_t spilled_bytes = 0;  ///< bytes whose only copy is on disk
  std::uint64_t objects = 0;
};

/// Result of a put: the content id, whether the bytes were accepted
/// (false = CRC/hash verification failed), and any object ids this put
/// evicted *without* a spill copy — those replicas no longer exist here
/// and the owner must announce the loss.
struct PutResult {
  std::string object_id;
  bool stored = false;
  std::vector<std::string> dropped;
};

class Shard {
 public:
  explicit Shard(ShardConfig config = {});

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Content-addressed put: hashes, chunks, stores. Idempotent — putting
  /// bytes already present refreshes recency and returns the same id.
  PutResult put(std::string bytes) PA_EXCLUDES(mutex_);

  /// Put under a caller-supplied id; rejected (stored = false) unless
  /// `object_id` equals content_id(bytes).
  PutResult put_as(const std::string& object_id, std::string bytes)
      PA_EXCLUDES(mutex_);

  /// Put from wire chunks: verifies every chunk CRC and the assembled
  /// content hash before admitting the object.
  PutResult put_chunks(const std::string& object_id,
                       std::vector<Chunk> chunks, std::uint64_t total_bytes)
      PA_EXCLUDES(mutex_);

  /// CRC-verified whole-object read; loads from spill when not resident.
  /// Corruption anywhere returns nullopt (the object is dropped and
  /// counted in crc_failures).
  std::optional<std::string> get(const std::string& object_id)
      PA_EXCLUDES(mutex_);

  /// CRC-verified chunk-sequence read (the transfer source path).
  std::optional<std::vector<Chunk>> chunks_of(const std::string& object_id)
      PA_EXCLUDES(mutex_);

  bool contains(const std::string& object_id) const PA_EXCLUDES(mutex_);
  std::uint64_t object_bytes(const std::string& object_id) const
      PA_EXCLUDES(mutex_);
  bool erase(const std::string& object_id) PA_EXCLUDES(mutex_);
  std::vector<std::string> objects() const PA_EXCLUDES(mutex_);
  ShardStats stats() const PA_EXCLUDES(mutex_);

  std::size_t chunk_bytes() const { return config_.chunk_bytes; }

 private:
  struct Entry {
    std::vector<Chunk> chunks;  ///< empty when not resident
    std::uint64_t total = 0;
    std::uint32_t count = 0;
    std::uint64_t last_use = 0;
    bool resident = false;
    bool on_disk = false;  ///< a spill file exists (kept after promotion)
  };

  PutResult admit(const std::string& object_id, std::vector<Chunk> chunks,
                  std::uint64_t total) PA_EXCLUDES(mutex_);
  /// Evicts LRU residents (sparing `keep`) until within budget; returns
  /// ids dropped without a spill copy.
  std::vector<std::string> evict_to_fit(const std::string& keep)
      PA_REQUIRES(mutex_);
  bool verify(const Entry& e) const PA_REQUIRES(mutex_);
  /// Drops a corrupt object (memory + spill file), counts the failure.
  void discard_corrupt(const std::string& object_id) PA_REQUIRES(mutex_);
  bool load_from_disk(const std::string& object_id, Entry& e)
      PA_REQUIRES(mutex_);
  bool write_spill(const std::string& object_id, const Entry& e)
      PA_REQUIRES(mutex_);
  std::string spill_path(const std::string& object_id) const;

  const ShardConfig config_;

  mutable check::Mutex mutex_{check::LockRank::kStoreChunkMap,
                              "store::Shard"};
  std::map<std::string, Entry> entries_ PA_GUARDED_BY(mutex_);
  std::uint64_t use_clock_ PA_GUARDED_BY(mutex_) = 0;
  std::uint64_t resident_bytes_ PA_GUARDED_BY(mutex_) = 0;
  ShardStats stats_ PA_GUARDED_BY(mutex_);
};

}  // namespace pa::store
