#pragma once
/// \file directory.h
/// \brief Replica directory: which holders have which objects, and how
/// many bytes each holder carries.
///
/// A plain (unsynchronized) value type owned by StoreManager and accessed
/// under its mutex — the Pilot-Data catalog made live. Holders are pilot
/// ids plus the reserved "@origin" holder for the manager's own shard.
/// Everything here is *declared* state: a holder appears when it
/// announces an object (kObjLocate) or when placement decides it should
/// receive one, and disappears on NACK, eviction notice, or pilot death.
/// The transfer layer treats a stale entry as a soft miss (a kObjGet that
/// returns chunk_count = 0 removes the entry and retries elsewhere).

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace pa::store {

/// Reserved holder name for the manager-side origin shard. '@' keeps it
/// out of the pilot-id namespace.
inline constexpr char kOriginHolder[] = "@origin";

class ReplicaDirectory {
 public:
  /// Declares `holder` as having `object_id`. `bytes` updates the object
  /// size when it was unknown (0); passing 0 keeps the known size.
  void add(const std::string& object_id, std::uint64_t bytes,
           const std::string& holder);

  /// Removes one replica; returns true when it existed. The object stays
  /// known (its size survives) even with zero holders left.
  bool remove(const std::string& object_id, const std::string& holder);

  /// Removes every replica held by `holder` (pilot death); returns the
  /// affected object ids.
  std::vector<std::string> drop_holder(const std::string& holder);

  bool has(const std::string& object_id, const std::string& holder) const;
  bool known(const std::string& object_id) const;
  std::uint64_t bytes(const std::string& object_id) const;

  /// Sorted holder list (deterministic iteration for placement).
  std::vector<std::string> holders(const std::string& object_id) const;

  /// Replica count excluding the origin holder — the number the
  /// replication target is measured against.
  std::size_t agent_replicas(const std::string& object_id) const;

  /// Total declared bytes at `holder` (placement load).
  std::uint64_t holder_bytes(const std::string& holder) const;

  std::vector<std::string> objects() const;
  std::size_t object_count() const { return objects_.size(); }

 private:
  struct Info {
    std::uint64_t bytes = 0;
    std::set<std::string> holders;
  };

  std::map<std::string, Info> objects_;
  std::map<std::string, std::uint64_t> load_;
};

}  // namespace pa::store
