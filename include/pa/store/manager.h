#pragma once
/// \file manager.h
/// \brief StoreManager: the manager-side brain of the distributed object
/// store — origin shard, replica directory, transfer orchestration,
/// replication repair.
///
/// Topology is a star, like the control plane: agents only ever dial the
/// manager, so every transfer is a manager<->agent stream and the manager
/// is the placement authority (Pilot-Data's "manager-side placement").
/// Replication is *pull-based from the manager's perspective*: nothing is
/// broadcast — bytes move only when a deficit demands it (an ensure_on
/// for a unit's stage-in, a replica count below target after a pilot
/// death), and the manager pulls from whichever shard still holds the
/// object when its own origin copy is gone.
///
/// Flows (wire vocabulary in net/message.h, v3):
///   push  — manager streams kObjPut chunks; the agent assembles,
///           CRC-verifies, stores, and answers kObjLocate (the announce
///           that flips the directory entry and fires waiting ensures).
///   pull  — manager sends kObjGet; the source agent streams kObjChunk
///           frames back (chunk_count = 0 means it no longer holds the
///           object: the directory entry is dropped and the next source
///           is tried). Completed pulls land in the origin shard, then
///           feed any pushes that were waiting on the bytes.
///
/// Locking: one mutex at LockRank::kStoreDirectory (11) — deliberately
/// *below* the control-plane queue (12), the flusher (13), and the
/// runtime/connection path (14/16), so the manager may post commands,
/// queue pump work, and send while holding it. `done` callbacks are
/// always invoked with the lock released (they typically post stage-in
/// barrier commands).

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "pa/check/mutex.h"
#include "pa/net/message.h"
#include "pa/obs/metrics.h"
#include "pa/store/directory.h"
#include "pa/store/shard.h"
#include "pa/store/transfer.h"

namespace pa::store {

struct StoreManagerConfig {
  /// Origin shard (application puts + pull cache). Give it a spill_dir in
  /// deployments that must survive agent churn: a spilled origin copy is
  /// what makes re-replication after a sole-replica death possible.
  ShardConfig origin;
  /// Agent-side replicas maintained per object. 0 disables repair;
  /// ensure_on still places on demand.
  int replica_target = 0;
  /// Site name reported for origin-resident bytes (replica_sites).
  std::string origin_site = "origin";
  TransferSchedulerConfig transfer;
  /// Optional store.* instrumentation; must outlive the manager.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Monotonic transfer/bookkeeping counters (also exported as store.*
/// metrics when a registry is attached).
struct StoreManagerStats {
  std::uint64_t puts = 0;
  std::uint64_t pushes = 0;       ///< object pushes queued
  std::uint64_t push_bytes = 0;   ///< payload bytes queued for push
  std::uint64_t pulls = 0;        ///< pulls completed into the origin
  std::uint64_t pull_bytes = 0;
  std::uint64_t ensure_hits = 0;  ///< ensures satisfied from the directory
  std::uint64_t ensure_misses = 0;  ///< ensures that required a transfer
  std::uint64_t ensure_failures = 0;
  std::uint64_t repairs = 0;  ///< re-replications after replica loss
  std::uint64_t pull_retries = 0;
};

class StoreManager {
 public:
  explicit StoreManager(StoreManagerConfig config = {});
  ~StoreManager();

  StoreManager(const StoreManager&) = delete;
  StoreManager& operator=(const StoreManager&) = delete;

  /// Wires the egress path; called by rt::RemoteRuntime::attach_store.
  void attach_sender(ObjSender sender);

  /// Fails every waiting ensure and stops the transfer pump.
  void close();

  // --- data API --------------------------------------------------------

  /// Stores bytes in the origin shard; returns the content-addressed
  /// object id (the value unit descriptions reference in input_data).
  std::string put(std::string bytes);

  /// Origin-local CRC-verified read.
  std::optional<std::string> get(const std::string& object_id);

  bool known(const std::string& object_id) const;
  std::uint64_t object_bytes(const std::string& object_id) const;

  // --- membership (driven by the runtime) ------------------------------

  /// `store_capable` is false for pilots that negotiated protocol < 3;
  /// ensures targeting them fail fast instead of waiting on an announce
  /// that can never arrive.
  void pilot_active(const std::string& pilot_id, const std::string& site,
                    bool store_capable);

  /// Drops the pilot's replicas, fails its waiting ensures, reroutes
  /// pulls sourced from it, and repairs every object that fell below the
  /// replica target — the data-plane half of heartbeat death.
  void pilot_lost(const std::string& pilot_id);

  // --- transfers -------------------------------------------------------

  /// Ensures `pilot_id`'s shard holds `object_id`; `done(true)` fires
  /// once the agent announces it (immediately when the directory already
  /// shows it), `done(false)` on unknown object/pilot, store NACK, or
  /// pilot death. Concurrent ensures for the same (pilot, object)
  /// coalesce into one transfer.
  void ensure_on(const std::string& pilot_id, const std::string& object_id,
                 std::function<void(bool)> done);

  /// Fire-and-forget ensure for every *known* object id in the list —
  /// the unit-assignment prefetch hook (unknown ids are skipped: unit
  /// input_data may reference data units the store does not manage).
  void prefetch(const std::string& pilot_id,
                const std::vector<std::string>& object_ids);

  /// Starts transfers until `object_id` has `config.replica_target`
  /// agent-side replicas (fire-and-forget; poll replica_pilots).
  void replicate(const std::string& object_id);

  // --- wire ingress (forwarded by rt::RemoteRuntime) -------------------

  /// Handles kObjLocate / kObjChunk from `pilot_id`. Safe to call from
  /// delivery threads; never invokes `done` callbacks under the lock.
  void on_agent_message(const std::string& pilot_id, const net::Message& m);

  // --- live replica map ------------------------------------------------

  std::vector<std::string> replica_sites(const std::string& object_id) const;
  std::vector<std::string> replica_pilots(const std::string& object_id) const;
  double bytes_at_site(const std::string& object_id,
                       const std::string& site) const;
  /// Pilot to stage through for `site`: a holder of `object_id` at the
  /// site when one exists, else any store-capable pilot there ("" when
  /// the site has none).
  std::string pick_pilot_for(const std::string& object_id,
                             const std::string& site) const;
  /// Declares a replica at `site` (unit output registration).
  void record_output(const std::string& object_id, const std::string& site);

  Shard& origin() { return origin_; }
  const StoreManagerConfig& config() const { return config_; }
  StoreManagerStats stats() const;
  const TransferScheduler& transfers() const { return xfer_; }

 private:
  struct PilotInfo {
    std::string site;
    bool capable = true;
  };
  struct Ensure {
    std::vector<std::function<void(bool)>> done;
    bool queued = false;  ///< push frames already handed to the pump
  };
  struct Pull {
    std::string object_id;
    std::string source;
    std::vector<Chunk> chunks;
    std::vector<bool> got;  ///< per-index arrival flags (dup detection)
    std::uint32_t expected = 0;
    std::uint32_t received = 0;
    std::uint64_t total = 0;
    std::set<std::string> tried;
  };
  using Done = std::function<void(bool)>;
  using FireList = std::vector<std::pair<Done, bool>>;

  void ensure_on_locked(const std::string& pilot_id,
                        const std::string& object_id, Done done,
                        FireList& fire) PA_REQUIRES(mutex_);
  /// Returns false when the object is unobtainable (fail path fired and
  /// every pending ensure for it was erased).
  bool start_transfer_locked(const std::string& pilot_id,
                             const std::string& object_id, FireList& fire)
      PA_REQUIRES(mutex_);
  bool queue_push_locked(const std::string& pilot_id,
                         const std::string& object_id, FireList& fire)
      PA_REQUIRES(mutex_);
  bool start_pull_locked(const std::string& object_id, FireList& fire)
      PA_REQUIRES(mutex_);
  bool choose_source_locked(Pull& pull) PA_REQUIRES(mutex_);
  void fail_object_locked(const std::string& object_id, FireList& fire)
      PA_REQUIRES(mutex_);
  void repair_to_locked(const std::string& object_id, int target,
                        FireList& fire) PA_REQUIRES(mutex_);
  void collect_ensure_locked(const std::string& pilot_id,
                             const std::string& object_id, bool ok,
                             FireList& fire) PA_REQUIRES(mutex_);
  void update_gauges_locked() PA_REQUIRES(mutex_);
  static void fire(FireList& fire);

  const StoreManagerConfig config_;
  Shard origin_;
  TransferScheduler xfer_;

  mutable check::Mutex mutex_{check::LockRank::kStoreDirectory,
                              "store::StoreManager"};
  ReplicaDirectory directory_ PA_GUARDED_BY(mutex_);
  std::map<std::string, PilotInfo> pilots_ PA_GUARDED_BY(mutex_);
  std::map<std::string, std::vector<std::string>> sites_ PA_GUARDED_BY(mutex_);
  std::map<std::pair<std::string, std::string>, Ensure> pending_
      PA_GUARDED_BY(mutex_);
  std::map<std::uint64_t, Pull> pulls_ PA_GUARDED_BY(mutex_);
  std::map<std::string, std::uint64_t> pull_by_object_ PA_GUARDED_BY(mutex_);
  std::uint64_t next_transfer_ PA_GUARDED_BY(mutex_) = 1;
  bool closed_ PA_GUARDED_BY(mutex_) = false;
  StoreManagerStats stats_ PA_GUARDED_BY(mutex_);

  /// Pre-resolved store.* instrument handles (null when detached).
  struct MetricsHandles {
    obs::Counter* puts = nullptr;
    obs::Counter* pushes = nullptr;
    obs::Counter* push_bytes = nullptr;
    obs::Counter* pulls = nullptr;
    obs::Counter* pull_bytes = nullptr;
    obs::Counter* ensure_hits = nullptr;
    obs::Counter* ensure_misses = nullptr;
    obs::Counter* ensure_failures = nullptr;
    obs::Counter* repairs = nullptr;
    obs::Gauge* objects = nullptr;
    obs::Gauge* pending = nullptr;
  };
  const MetricsHandles metrics_;
};

}  // namespace pa::store
