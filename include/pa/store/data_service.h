#pragma once
/// \file data_service.h
/// \brief StoreDataService: the live store presented through the core
/// DataServiceInterface, so WorkloadManager/DataAffinityScheduler and the
/// stage-in barrier run against *real* replica locations instead of the
/// simulation model.
///
/// This is the integration point the Pilot-Data abstraction promises:
/// unit descriptions reference object ids in input_data, the scheduler
/// weighs units toward sites whose shards already hold the bytes
/// (bytes_on_site reads the replica directory), and dispatch stage-in
/// (stage_to_site) becomes a StoreManager::ensure_on — an actual chunked
/// transfer to the target pilot's shard, overlapped with other units'
/// compute.
///
/// `ReplicaView` is the read-only slice of the same map. PilotDataService
/// (the simulation model) accepts one via attach_live_replicas() so model
///-driven experiments can read live placement too.

#include <string>
#include <vector>

#include "pa/core/runtime.h"
#include "pa/store/manager.h"

namespace pa::store {

/// Read-only live replica map: what the store actually holds right now.
class ReplicaView {
 public:
  virtual ~ReplicaView() = default;

  /// True when the store manages (has ever seen) this data unit.
  virtual bool knows(const std::string& du_id) const = 0;
  virtual double bytes(const std::string& du_id) const = 0;
  virtual double bytes_on_site(const std::string& du_id,
                               const std::string& site) const = 0;
  virtual std::vector<std::string> replica_sites(
      const std::string& du_id) const = 0;
};

/// Bridges a StoreManager into the service's data hooks. Stateless —
/// site<->pilot mapping lives in the manager (fed by pilot_active).
///
/// stage_to_site always completes the barrier: a failed transfer (no
/// pilot at the site, dead pilot, unobtainable object) fires `done`
/// anyway and the unit runs without local bytes — stage-in degrades to
/// remote reads rather than wedging dispatch. Failures are visible in
/// store.ensure_failures.
class StoreDataService : public core::DataServiceInterface,
                         public ReplicaView {
 public:
  explicit StoreDataService(StoreManager& store) : store_(store) {}

  // core::DataServiceInterface (bytes_on_site doubles as ReplicaView's).
  double bytes_on_site(const std::string& du_id,
                       const std::string& site) const override;
  double total_bytes(const std::string& du_id) const override;
  void stage_to_site(const std::string& du_id, const std::string& site,
                     std::function<void()> done) override;
  void register_output(const std::string& du_id,
                       const std::string& site) override;

  // ReplicaView
  bool knows(const std::string& du_id) const override;
  double bytes(const std::string& du_id) const override;
  std::vector<std::string> replica_sites(
      const std::string& du_id) const override;

  StoreManager& store() { return store_; }

 private:
  StoreManager& store_;
};

}  // namespace pa::store
