#pragma once
/// \file broker.h
/// \brief In-process partitioned-log message broker — the Kafka-equivalent
/// substrate behind Pilot-Streaming (paper refs [32], [73]).
///
/// Semantics reproduced from the real system because the streaming
/// experiments depend on them:
///  * a topic is a set of partitions, each an append-only offset-addressed
///    log with FIFO order;
///  * producers append (optionally by key: equal keys always land in the
///    same partition);
///  * consumers fetch by (partition, offset) — the broker itself is
///    stateless about consumers; group offsets live in the coordinator.
/// Thread-safe; per-partition locking so disjoint partitions scale.

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pa/check/mutex.h"
#include "pa/common/error.h"
#include "pa/obs/metrics.h"

namespace pa::stream {

/// One record in a partition log.
struct Message {
  std::uint64_t offset = 0;
  double produce_time = 0.0;  ///< wall seconds (pa::wall_seconds)
  std::string key;
  std::string payload;
};

struct TopicStats {
  std::uint64_t messages_in = 0;
  std::uint64_t bytes_in = 0;
};

class Broker {
 public:
  Broker() = default;
  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Creates a topic with `partitions` partitions.
  void create_topic(const std::string& topic, int partitions);
  bool has_topic(const std::string& topic) const;
  int partition_count(const std::string& topic) const;
  std::vector<std::string> topic_names() const;

  /// Appends one message. If `key` is non-empty the partition is chosen by
  /// key hash; otherwise by the broker's rotating cursor for the topic.
  /// Returns (partition, offset).
  std::pair<int, std::uint64_t> produce(const std::string& topic,
                                        std::string key, std::string payload);

  /// Appends to an explicit partition.
  std::uint64_t produce_to(const std::string& topic, int partition,
                           std::string key, std::string payload);

  /// Appends up to `max_messages` messages starting at `offset` onto `out`
  /// (regardless of `out`'s prior contents). Returns the next offset to
  /// fetch (== offset when nothing available).
  std::uint64_t fetch(const std::string& topic, int partition,
                      std::uint64_t offset, std::size_t max_messages,
                      std::vector<Message>& out) const;

  /// One past the last appended offset.
  std::uint64_t end_offset(const std::string& topic, int partition) const;
  /// First retained offset (> 0 after truncation).
  std::uint64_t begin_offset(const std::string& topic, int partition) const;

  /// Drops messages below `up_to_offset` (retention); fetching them
  /// afterwards throws pa::NotFound.
  void truncate(const std::string& topic, int partition,
                std::uint64_t up_to_offset);

  TopicStats stats(const std::string& topic) const;

  /// Attaches a metrics registry: every produce increments
  /// "stream.<topic>.messages_in" / "stream.<topic>.bytes_in" counters.
  /// Pass nullptr to detach. The registry must outlive its attachment;
  /// near-zero cost while detached (one relaxed atomic load per produce).
  void attach_metrics(obs::MetricsRegistry* metrics);

  /// Refreshes per-topic backlog gauges "stream.<topic>.backlog" (sum over
  /// partitions of end_offset - begin_offset, i.e. retained-but-unconsumed
  /// depth) in the attached registry. No-op when detached.
  void export_backlog_gauges();

 private:
  struct Partition {
    mutable check::Mutex mutex{check::LockRank::kBrokerPartition,
                               "stream::Broker::Partition"};
    std::deque<Message> log PA_GUARDED_BY(mutex);
    std::uint64_t base_offset PA_GUARDED_BY(mutex) = 0;  ///< log.front()
  };

  struct Topic {
    /// Immutable after create_topic() publishes the Topic — safe to walk
    /// without topics_mutex_.
    std::vector<std::unique_ptr<Partition>> partitions;
    mutable check::Mutex stats_mutex{check::LockRank::kBrokerStats,
                                     "stream::Broker::Topic::stats"};
    TopicStats stats PA_GUARDED_BY(stats_mutex);
    std::atomic<std::uint64_t> rr_cursor{0};
  };

  /// Returns a reference that outlives the internal lookup lock: topics
  /// are never erased, so Topic objects live as long as the broker.
  const Topic& topic_ref(const std::string& topic) const
      PA_EXCLUDES(topics_mutex_);
  Topic& topic_ref(const std::string& topic) PA_EXCLUDES(topics_mutex_);
  static Partition& partition_ref(Topic& t, int partition);
  static const Partition& partition_ref(const Topic& t, int partition);

  mutable check::Mutex topics_mutex_{check::LockRank::kBrokerTopics,
                                     "stream::Broker::topics"};
  std::map<std::string, std::unique_ptr<Topic>> topics_
      PA_GUARDED_BY(topics_mutex_);
  std::atomic<obs::MetricsRegistry*> metrics_{nullptr};
};

}  // namespace pa::stream
