#pragma once
/// \file windowing.h
/// \brief Event-time tumbling-window aggregation over the broker's
/// message stream.
///
/// Table I's streaming column notes that "for many algorithms, a global
/// state needs to be maintained across batches of data" — this is that
/// state: per-key aggregates over fixed event-time windows, with
/// watermark-based window closing and bounded lateness, the semantics
/// a light-source monitoring pipeline needs (rates per detector module
/// per second, etc.).

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "pa/stream/broker.h"

namespace pa::stream {

/// Aggregate of the values seen for one key within one window.
struct KeyAggregate {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  void add(double value) {
    ++count;
    sum += value;
    if (value < min) {
      min = value;
    }
    if (value > max) {
      max = value;
    }
  }
};

/// One closed window.
struct WindowResult {
  std::int64_t index = 0;  ///< window number = floor(event_time / width)
  double start = 0.0;
  double end = 0.0;
  std::map<std::string, KeyAggregate> per_key;
};

/// Tumbling event-time windows. Not thread-safe (one instance per
/// consumer, like all stateful operators); merge results downstream.
///
/// Semantics:
///  * a message belongs to window floor(produce_time / width);
///  * the watermark is the maximum event time observed;
///  * a window closes (and is emitted) once
///    `watermark >= window.end + allowed_lateness`;
///  * messages arriving for an already-closed window are counted in
///    `late_dropped()` and otherwise ignored.
class TumblingWindow {
 public:
  explicit TumblingWindow(double window_seconds,
                          double allowed_lateness = 0.0);

  /// Feeds one message with an extracted numeric value. Returns any
  /// windows that closed as a consequence (usually empty or one).
  std::vector<WindowResult> add(const Message& message, double value);

  /// Closes and returns all still-open windows (end of stream).
  std::vector<WindowResult> flush();

  std::size_t open_windows() const { return open_.size(); }
  std::uint64_t late_dropped() const { return late_dropped_; }
  double watermark() const { return watermark_; }
  double window_seconds() const { return window_seconds_; }

 private:
  std::int64_t window_index(double t) const;
  WindowResult close_window(std::int64_t index);

  double window_seconds_;
  double allowed_lateness_;
  double watermark_ = -std::numeric_limits<double>::infinity();
  std::map<std::int64_t, std::map<std::string, KeyAggregate>> open_;
  std::uint64_t late_dropped_ = 0;
};

/// Merges per-key aggregates from several windows with the same index
/// (e.g. one per consumer) into one.
WindowResult merge_windows(const std::vector<WindowResult>& parts);

}  // namespace pa::stream
