#pragma once
/// \file consumer.h
/// \brief Consumer groups over the broker: coordinated partition
/// assignment and committed offsets.
///
/// Mirrors the Kafka consumer-group protocol at the level the streaming
/// experiments need: members of a group split a topic's partitions
/// (range assignment), each partition belongs to exactly one member per
/// generation, and committed offsets survive rebalances — so every message
/// is delivered to the group at least once and per-partition order holds.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "pa/check/mutex.h"
#include "pa/stream/broker.h"

namespace pa::stream {

/// Tracks group membership, assignments, and committed offsets.
class GroupCoordinator {
 public:
  /// One member's coherent view of its group, taken under a single lock:
  /// the generation, the partitions assigned to the member in that
  /// generation, and the committed offset of each assigned partition.
  struct MemberView {
    std::uint64_t generation = 0;
    std::vector<int> partitions;
    std::map<int, std::uint64_t> committed;  ///< keyed by partition
  };

  explicit GroupCoordinator(Broker& broker) : broker_(broker) {}

  /// Adds a member; triggers a rebalance (generation bump).
  void join(const std::string& topic, const std::string& group,
            const std::string& member_id) PA_EXCLUDES(mutex_);
  /// Removes a member; triggers a rebalance.
  void leave(const std::string& topic, const std::string& group,
             const std::string& member_id) PA_EXCLUDES(mutex_);

  /// Current generation of the group (changes on every rebalance).
  std::uint64_t generation(const std::string& topic,
                           const std::string& group) const
      PA_EXCLUDES(mutex_);

  /// Partitions assigned to `member_id` in the current generation.
  std::vector<int> assignment(const std::string& topic,
                              const std::string& group,
                              const std::string& member_id) const
      PA_EXCLUDES(mutex_);

  /// Atomic generation + assignment + committed-offsets snapshot for one
  /// member. Consumers must use this (not generation()/assignment()
  /// separately) when refreshing: reading the pieces under different lock
  /// acquisitions can pair generation N with the assignment of N+1 when a
  /// rebalance lands between the calls.
  MemberView member_view(const std::string& topic, const std::string& group,
                         const std::string& member_id) const
      PA_EXCLUDES(mutex_);

  /// Committed offset for a partition (0 if never committed).
  std::uint64_t committed(const std::string& topic, const std::string& group,
                          int partition) const PA_EXCLUDES(mutex_);
  void commit(const std::string& topic, const std::string& group,
              int partition, std::uint64_t offset) PA_EXCLUDES(mutex_);

  /// Messages remaining for the group across all partitions of the topic
  /// (end offsets minus committed offsets).
  std::uint64_t lag(const std::string& topic, const std::string& group) const
      PA_EXCLUDES(mutex_);

 private:
  struct Group {
    std::uint64_t generation = 0;
    std::set<std::string> members;
    std::map<std::string, std::vector<int>> assignments;
    std::map<int, std::uint64_t> committed;
  };

  using GroupKey = std::pair<std::string, std::string>;

  /// Recomputes assignments; calls the broker (kBrokerTopics nests below
  /// kStreamCoordinator) for the partition count.
  void rebalance(const std::string& topic, Group& group)
      PA_REQUIRES(mutex_);
  const Group* find_group(const std::string& topic,
                          const std::string& group) const PA_REQUIRES(mutex_);

  Broker& broker_;
  mutable check::Mutex mutex_{check::LockRank::kStreamCoordinator,
                              "stream::GroupCoordinator"};
  std::map<GroupKey, Group> groups_ PA_GUARDED_BY(mutex_);
};

/// A group member pulling messages from its assigned partitions.
/// Not thread-safe itself (one consumer = one logical thread), but safe to
/// run many consumers concurrently.
class Consumer {
 public:
  Consumer(Broker& broker, GroupCoordinator& coordinator, std::string topic,
           std::string group, std::string member_id);
  ~Consumer();
  Consumer(const Consumer&) = delete;
  Consumer& operator=(const Consumer&) = delete;

  /// Fetches up to `max_messages` from assigned partitions (round-robin
  /// across them). Refreshes the assignment when the generation moved.
  std::vector<Message> poll(std::size_t max_messages);

  /// Commits everything returned by previous polls.
  void commit();

  const std::vector<int>& assigned_partitions() const { return assigned_; }
  std::uint64_t messages_consumed() const { return consumed_; }

 private:
  void refresh_assignment();

  Broker& broker_;
  GroupCoordinator& coordinator_;
  std::string topic_;
  std::string group_;
  std::string member_id_;
  std::uint64_t generation_ = static_cast<std::uint64_t>(-1);
  std::vector<int> assigned_;
  std::map<int, std::uint64_t> positions_;  ///< next fetch offset
  std::size_t rr_index_ = 0;
  std::uint64_t consumed_ = 0;
};

}  // namespace pa::stream
