#pragma once
/// \file pilot_streaming.h
/// \brief Pilot-Streaming: running streaming pipelines (producers, broker,
/// consumer units) through the Pilot-API (paper ref [32]).
///
/// The original system provisions Kafka brokers *and* processing
/// resources via pilots, then runs consumer tasks as compute units. Here
/// the broker is in-process; producers and consumers run as real compute
/// units on a LocalRuntime pilot, and the service measures the two
/// quantities the paper's evaluation reports: sustained throughput and
/// end-to-end (produce→process) latency.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "pa/common/histogram.h"
#include "pa/core/pilot_compute_service.h"
#include "pa/stream/broker.h"
#include "pa/stream/consumer.h"

namespace pa::stream {

struct StreamPipelineConfig {
  std::string topic = "frames";
  int partitions = 4;
  int producers = 1;
  int consumers = 2;
  std::uint64_t messages_per_producer = 10000;
  std::size_t message_bytes = 1024;
  std::size_t poll_batch = 256;
  /// Per-message processing work (reconstruction kernel, ...); may be null.
  std::function<void(const Message&)> handler;
  /// Messages/second per producer; 0 = produce at maximum speed.
  double produce_rate = 0.0;
  std::string group = "pipeline";
  double timeout_seconds = 300.0;
};

struct StreamPipelineResult {
  double duration_seconds = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  double throughput_msgs_per_s = 0.0;
  double throughput_mb_per_s = 0.0;
  pa::LatencyHistogram e2e_latency;
};

/// Orchestrates one pipeline run on an existing pilot.
///
/// Capacity note: producer units are submitted before consumer units, so
/// even a pilot with a single core makes progress (produce fully, then
/// drain). For latency-representative numbers give the pilot at least
/// `producers + consumers` cores.
class PilotStreamingService {
 public:
  PilotStreamingService(core::PilotComputeService& service, Broker& broker);

  /// Runs the pipeline to completion and returns aggregate metrics.
  /// Creates the topic if it does not exist.
  StreamPipelineResult run_pipeline(const StreamPipelineConfig& config);

 private:
  core::PilotComputeService& service_;
  Broker& broker_;
  GroupCoordinator coordinator_;
  std::uint64_t run_counter_ = 0;
};

}  // namespace pa::stream
