#pragma once
/// \file producer.h
/// \brief Batching producer over the broker with throughput accounting.

#include <cstdint>
#include <string>
#include <vector>

#include "pa/stream/broker.h"

namespace pa::stream {

struct ProducerConfig {
  /// Messages buffered before an automatic flush (1 = unbatched).
  std::size_t batch_size = 64;
};

/// Not thread-safe (one producer per thread, as with the real client).
class Producer {
 public:
  Producer(Broker& broker, std::string topic, ProducerConfig config = {});
  ~Producer();
  Producer(const Producer&) = delete;
  Producer& operator=(const Producer&) = delete;

  /// Buffers a message; flushes automatically when the batch fills.
  void send(std::string key, std::string payload);

  /// Appends everything buffered to the broker.
  void flush();

  std::uint64_t messages_sent() const { return messages_; }
  std::uint64_t bytes_sent() const { return bytes_; }

 private:
  struct Buffered {
    std::string key;
    std::string payload;
  };

  Broker& broker_;
  std::string topic_;
  ProducerConfig config_;
  std::vector<Buffered> buffer_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace pa::stream
