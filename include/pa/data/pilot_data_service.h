#pragma once
/// \file pilot_data_service.h
/// \brief Pilot-Data: data as a first-class citizen of the pilot
/// abstraction (paper Sec. IV-A, ref [66]).
///
/// Concepts, mirroring P* on the data side:
///  * **Data-Pilot** — a placeholder reservation of storage capacity at a
///    site (the dual of a compute pilot's core reservation);
///  * **Data-Unit (DU)** — a named, immutable set of bytes with one or
///    more replicas across data-pilots;
///  * the service schedules replica placement and stage-in transfers over
///    the simulated network, and feeds locality information to the
///    compute schedulers via `core::DataServiceInterface`.

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "pa/common/id.h"
#include "pa/common/stats.h"
#include "pa/core/runtime.h"
#include "pa/infra/network.h"
#include "pa/infra/storage.h"

namespace pa::store {
class ReplicaView;
}  // namespace pa::store

namespace pa::data {

/// Description of a data unit at submission.
struct DataUnitDescription {
  std::string name;
  double bytes = 0.0;
  /// Site where the data initially exists (instrument, archive, ...).
  /// Must host a data-pilot.
  std::string initial_site;
};

enum class DataUnitState {
  kPending,   ///< declared, no replica registered yet
  kResident,  ///< at least one complete replica
};

/// Placement policies for `place_replicas`.
enum class PlacementPolicy {
  kRandom,      ///< uniform random data-pilot (the paper's baseline)
  kRoundRobin,  ///< cycle through data-pilots
  kLeastLoaded  ///< data-pilot with most free capacity
};

class PilotDataService : public core::DataServiceInterface {
 public:
  explicit PilotDataService(infra::NetworkModel& network);

  /// Registers a storage backend for a site (one per site).
  void register_storage(std::shared_ptr<infra::StorageSystem> storage);

  /// Reserves `capacity_bytes` on `site`'s storage as a data-pilot.
  /// Returns the data-pilot id.
  std::string add_data_pilot(const std::string& site, double capacity_bytes);

  /// Declares a data unit; its initial replica is registered at
  /// `initial_site` (capacity is charged to that site's data-pilot).
  /// Returns the DU id.
  std::string submit_data_unit(const DataUnitDescription& description);

  /// Creates an additional replica of `du_id` at `dst_site` by network
  /// transfer from the closest existing replica. `done` fires when the
  /// replica is complete (immediately if already resident). Concurrent
  /// requests for the same (du, site) coalesce onto one transfer.
  void replicate(const std::string& du_id, const std::string& dst_site,
                 std::function<void()> done);

  /// Removes the replica at `site` (frees data-pilot capacity). The last
  /// replica of a DU cannot be removed.
  void remove_replica(const std::string& du_id, const std::string& site);

  /// Ensures `du_id` has at least `replicas` replicas, creating the
  /// missing ones on the data-pilots with the most free capacity (never
  /// more than one per site). `done` fires once all new replicas are
  /// complete (immediately when already satisfied). Returns the number of
  /// transfers started. Throws pa::ResourceError when fewer than
  /// `replicas` sites exist.
  std::size_t ensure_replication(const std::string& du_id, int replicas,
                                 std::function<void()> done = nullptr);

  /// Current replica count of a data unit.
  std::size_t replica_count(const std::string& du_id) const;

  /// Distributes a batch of DUs over the registered data-pilots according
  /// to `policy` (used by workload generators). Returns the chosen site
  /// per DU, in order.
  std::vector<std::string> place_replicas(
      const std::vector<std::string>& du_ids, PlacementPolicy policy,
      std::uint64_t seed = 0);

  /// Overlays live pa::store replica locations: for object ids the store
  /// manages, the locality queries (bytes_on_site / total_bytes /
  /// replica_sites) read the live replica map instead of the simulation
  /// model, and stage_to_site completes immediately — the store's own
  /// transfer scheduler moves the real bytes. Model-managed DUs are
  /// unaffected, so simulated and live data can mix in one workload.
  /// `view` must outlive the service; pass nullptr to detach.
  void attach_live_replicas(const store::ReplicaView* view) { live_ = view; }

  // --- core::DataServiceInterface ---
  double bytes_on_site(const std::string& du_id,
                       const std::string& site) const override;
  double total_bytes(const std::string& du_id) const override;
  void stage_to_site(const std::string& du_id, const std::string& site,
                     std::function<void()> done) override;
  void register_output(const std::string& du_id,
                       const std::string& site) override;

  // --- introspection ---
  DataUnitState state(const std::string& du_id) const;
  std::vector<std::string> replica_sites(const std::string& du_id) const;
  double data_pilot_free_bytes(const std::string& site) const;
  std::size_t transfers_started() const { return transfers_started_; }
  double bytes_transferred() const { return bytes_transferred_; }
  /// Durations of completed stage-in transfers.
  const pa::SampleSet& staging_times() const { return staging_times_; }

 private:
  struct DataPilot {
    std::string id;
    std::string site;
    double capacity = 0.0;
    double used = 0.0;
  };

  struct DataUnit {
    std::string id;
    std::string name;
    double bytes = 0.0;
    std::set<std::string> replica_sites;
    /// Callbacks waiting on an in-flight transfer, keyed by destination.
    std::map<std::string, std::vector<std::function<void()>>> inflight;
  };

  DataPilot& pilot_at(const std::string& site);
  const DataPilot& pilot_at(const std::string& site) const;
  DataUnit& unit(const std::string& du_id);
  const DataUnit& unit(const std::string& du_id) const;
  void add_replica(DataUnit& du, const std::string& site);
  /// Best source replica for a transfer to `dst` (min estimated time).
  std::string pick_source(const DataUnit& du, const std::string& dst) const;

  infra::NetworkModel& network_;
  const store::ReplicaView* live_ = nullptr;
  pa::IdGenerator du_ids_{"du"};
  pa::IdGenerator dp_ids_{"dp"};
  std::map<std::string, std::shared_ptr<infra::StorageSystem>> storages_;
  std::map<std::string, DataPilot> data_pilots_;  ///< keyed by site
  std::map<std::string, DataUnit> units_;
  std::size_t transfers_started_ = 0;
  double bytes_transferred_ = 0.0;
  pa::SampleSet staging_times_;
};

}  // namespace pa::data
