#pragma once
/// \file in_memory_store.h
/// \brief Pilot-Memory: an in-process, sharded object store for iterative
/// applications (paper refs [68], Table II "Pilot-Memory").
///
/// Iterative ML (K-means & friends) re-reads its input every generation;
/// Pilot-Memory keeps those working sets resident between unit
/// generations. The store is typed via std::any, sharded for concurrent
/// access from the LocalRuntime's workers, versioned so a new model
/// broadcast never tears, and instrumented (hits/misses/bytes) for the
/// cached-vs-uncached experiment (E5).

#include <any>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pa/check/mutex.h"
#include "pa/common/error.h"

namespace pa::mem {

/// Statistics snapshot.
struct StoreStats {
  std::uint64_t puts = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  double resident_bytes = 0.0;
  std::size_t entries = 0;
};

/// Thread-safe sharded KV store over `std::any` values.
///
/// Values are immutable once put (readers share a `shared_ptr<const any>`);
/// a re-put of the same key installs a new version atomically.
class InMemoryStore {
 public:
  /// `capacity_bytes` caps resident data; least-recently-put entries are
  /// evicted when exceeded (0 = unlimited).
  explicit InMemoryStore(std::size_t num_shards = 16,
                         double capacity_bytes = 0.0);

  /// Stores `value` under `key`. `bytes` is the caller-declared footprint
  /// used for capacity accounting. Returns the new version number (>= 1).
  std::uint64_t put(const std::string& key, std::any value, double bytes);

  /// Typed convenience put.
  template <typename T>
  std::uint64_t put_typed(const std::string& key, T value, double bytes) {
    return put(key, std::any(std::move(value)), bytes);
  }

  /// Fetches the current value; nullptr on miss.
  std::shared_ptr<const std::any> get(const std::string& key);

  /// Typed fetch: nullptr on miss; throws pa::InvalidArgument on a type
  /// mismatch (caller bug, not a cache condition).
  template <typename T>
  std::shared_ptr<const T> get_typed(const std::string& key) {
    auto holder = get(key);
    if (!holder) {
      return nullptr;
    }
    const T* typed = std::any_cast<T>(holder.get());
    if (typed == nullptr) {
      throw InvalidArgument("type mismatch for key: " + key);
    }
    return std::shared_ptr<const T>(std::move(holder), typed);
  }

  /// Cache-through: returns the stored value, or runs `loader` to produce
  /// (value, bytes), stores and returns it. Loader may run concurrently
  /// for the same key under contention; last writer wins (idempotent
  /// loaders assumed).
  template <typename T>
  std::shared_ptr<const T> get_or_load(
      const std::string& key,
      const std::function<std::pair<T, double>()>& loader) {
    if (auto hit = get_typed<T>(key)) {
      return hit;
    }
    auto [value, bytes] = loader();
    put_typed<T>(key, std::move(value), bytes);
    return get_typed<T>(key);
  }

  /// Current version of a key (0 = absent).
  std::uint64_t version(const std::string& key);

  /// Removes a key; returns false if absent.
  bool erase(const std::string& key);

  void clear();

  StoreStats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const std::any> value;
    double bytes = 0.0;
    std::uint64_t version = 0;
    std::uint64_t put_seq = 0;  ///< for eviction ordering
  };

  struct Shard {
    mutable check::Mutex mutex{check::LockRank::kStoreShard,
                               "mem::InMemoryStore::Shard"};
    std::map<std::string, Entry> entries PA_GUARDED_BY(mutex);
  };

  Shard& shard_for(const std::string& key);
  const Shard& shard_for(const std::string& key) const;
  void evict_if_needed();

  std::vector<std::unique_ptr<Shard>> shards_;
  double capacity_bytes_;
  std::atomic<std::uint64_t> put_seq_{0};
  std::atomic<std::uint64_t> puts_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  /// Tracked outside shards to make the capacity check cheap.
  std::atomic<double> resident_bytes_{0.0};
};

}  // namespace pa::mem
