#pragma once
/// \file flusher.h
/// \brief Adaptive message batcher for the pilot wire protocol, modeled on
/// the journal's group-commit writer (pa/journal/writer.h).
///
/// `push()` enqueues a protocol message and returns — the hot path never
/// encodes or touches a transport. A background flusher thread drains the
/// pending buffer in batches and hands each batch to the caller-supplied
/// sink, which encodes the messages (arena-backed, wire.h begin_frame/
/// end_frame) and ships them with one `Connection::send_gather` call.
/// Exactly as group commit amortizes fsync, this amortizes the per-message
/// wakeup, syscall, and allocation cost over the batch — the mechanism
/// behind kUnitBatch / kUnitDoneBatch coalescing on both ends of the
/// manager↔agent channel.
///
/// The sink returns the messages it could NOT deliver (e.g. the transport
/// send queue rejected the gather). Retained messages are put back at the
/// front of the pending buffer, order preserved, and retried after a short
/// backoff — this is the buffer-and-retry path that replaces the old
/// fire-and-forget `(void)conn_->send(...)` on the agent completion path.
/// Only `close()` may drop messages (one final delivery attempt is made
/// first); drops are counted and observable via `dropped_on_close()`.
///
/// Threading: one internal mutex (LockRank::kNetFlusher) guards the
/// pending buffer only. The sink always runs with that lock dropped, so it
/// may freely acquire runtime/transport/connection locks (ranks 14+).

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "pa/check/mutex.h"
#include "pa/net/message.h"
#include "pa/obs/metrics.h"

namespace pa::net {

/// Why a batch was handed to the sink. Exported as per-reason counters
/// (net.flush_size / net.flush_time / net.flush_eager / net.flush_close /
/// net.flush_explicit) when a metrics registry is attached.
enum class FlushReason {
  kSize,      ///< pending reached max_batch
  kTime,      ///< oldest pending message aged past max_delay_seconds
  kEager,     ///< eager mode: flusher was idle, work arrived
  kClose,     ///< final flush during close()
  kExplicit,  ///< kick()/flush() forced it
};

const char* to_string(FlushReason r);

struct BatchFlusherConfig {
  /// Max messages per sink invocation. Also the size-trigger threshold.
  /// 32 is the E14e sweet spot: large enough to amortize framing, small
  /// enough that a frame never monopolizes the send queue or the agent's
  /// dispatch window.
  std::size_t max_batch = 32;
  /// In non-eager mode, flush when the oldest pending message has waited
  /// this long even if the batch is not full.
  double max_delay_seconds = 0.0005;
  /// Backoff before retrying messages the sink retained.
  double retry_delay_seconds = 0.001;
  /// Eager mode (default, the journal-writer discipline): flush whenever
  /// the flusher is idle and work is pending — batches form naturally from
  /// the backlog that accumulates while the sink runs, so an idle system
  /// gets per-message latency and a loaded one gets deep batches with no
  /// tuning. Non-eager mode waits for size or time triggers; useful in
  /// tests and when the sink has high fixed cost.
  bool eager = true;
};

/// Thread-safe adaptive batcher. All methods may be called from any
/// thread; `close()` (or destruction) makes a final delivery attempt and
/// joins the flusher thread.
class BatchFlusher {
 public:
  /// Delivers one batch. Runs on the flusher thread with no BatchFlusher
  /// lock held. Returns the messages that could not be delivered, in their
  /// original order; they are re-queued ahead of newer messages and
  /// retried after `retry_delay_seconds`.
  using Sink =
      std::function<std::vector<Message>(std::vector<Message>, FlushReason)>;

  /// `metrics` may be nullptr; when set it must outlive this flusher.
  /// Exports the "net.batch_size" histogram, per-reason flush counters,
  /// and "net.flush_retried" / "net.flush_dropped_on_close" counters.
  /// Instrument handles are resolved once here so the flush path never
  /// takes the registry lock.
  explicit BatchFlusher(Sink sink, BatchFlusherConfig config = {},
                        obs::MetricsRegistry* metrics = nullptr);
  ~BatchFlusher();

  BatchFlusher(const BatchFlusher&) = delete;
  BatchFlusher& operator=(const BatchFlusher&) = delete;

  /// Enqueues a message. After close() began, the message is dropped and
  /// counted in dropped_on_close() — matching the connection contract that
  /// a closing endpoint stops transmitting.
  void push(Message message) PA_EXCLUDES(mutex_);

  /// Requests an immediate flush of whatever is pending; returns without
  /// waiting. An empty pending buffer makes this a no-op.
  void kick() PA_EXCLUDES(mutex_);

  /// Best-effort blocking flush: kicks, then waits until the pending
  /// buffer is empty — or until the flusher has completed two full
  /// delivery cycles, whichever comes first. The cycle bound keeps flush()
  /// from hanging forever on a sink that keeps rejecting (a dead
  /// connection); callers that need certainty check dropped/pending after.
  void flush() PA_EXCLUDES(mutex_);

  /// Final flush (reason kClose, retries skipped), then drops whatever the
  /// sink still rejects and joins the flusher thread. Idempotent; a
  /// concurrent second caller may return before the first finishes joining
  /// (same contract as journal::Writer::close).
  void close() PA_EXCLUDES(mutex_);

  /// Messages dropped because they were pushed after close() began or
  /// remained undeliverable through the final flush.
  std::uint64_t dropped_on_close() const PA_EXCLUDES(mutex_);
  /// Messages the sink retained and the flusher re-queued for retry.
  std::uint64_t retried() const PA_EXCLUDES(mutex_);
  /// Messages currently buffered (pending, not mid-sink).
  std::size_t pending() const PA_EXCLUDES(mutex_);

 private:
  /// Pre-resolved instrument handles (null when detached).
  struct MetricsHandles {
    obs::Histogram* batch_size = nullptr;
    obs::Counter* flush_size = nullptr;
    obs::Counter* flush_time = nullptr;
    obs::Counter* flush_eager = nullptr;
    obs::Counter* flush_close = nullptr;
    obs::Counter* flush_explicit = nullptr;
    obs::Counter* retried = nullptr;
    obs::Counter* dropped_on_close = nullptr;

    obs::Counter* reason_counter(FlushReason r) const;
  };

  void flusher_loop() PA_EXCLUDES(mutex_);

  const Sink sink_;
  const BatchFlusherConfig config_;
  const MetricsHandles metrics_;

  mutable check::Mutex mutex_{check::LockRank::kNetFlusher,
                              "net::BatchFlusher"};
  check::CondVar work_cv_;  ///< flusher wakeups
  check::CondVar done_cv_;  ///< flush() waiters, notified per cycle
  std::deque<Message> pending_ PA_GUARDED_BY(mutex_);
  /// When the oldest message in pending_ arrived (time-trigger anchor).
  std::chrono::steady_clock::time_point oldest_ PA_GUARDED_BY(mutex_);
  bool kick_ PA_GUARDED_BY(mutex_) = false;
  bool draining_ PA_GUARDED_BY(mutex_) = false;  ///< sink call in progress
  bool closing_ PA_GUARDED_BY(mutex_) = false;
  bool closed_ PA_GUARDED_BY(mutex_) = false;
  std::uint64_t cycles_ PA_GUARDED_BY(mutex_) = 0;  ///< completed sink calls
  std::uint64_t dropped_on_close_ PA_GUARDED_BY(mutex_) = 0;
  std::uint64_t retried_ PA_GUARDED_BY(mutex_) = 0;

  std::thread flusher_;
};

}  // namespace pa::net
