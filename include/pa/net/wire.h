#pragma once
/// \file wire.h
/// \brief Byte-stream framing for pa::net: length-prefixed, CRC32-checked
/// frames plus an incremental decoder that survives arbitrary packet
/// boundaries.
///
/// Frame layout (little-endian, matching the journal's on-disk framing so
/// both can be inspected with the same tooling):
///
///     u32 payload_length | u32 crc32(payload) | payload bytes
///
/// The CRC is the journal's zlib-compatible CRC-32 (pa/journal/crc32.h).
/// Unlike the journal — where a bad frame marks the torn tail of a crashed
/// writer and everything before it is kept — a bad frame on a *stream* has
/// no trustworthy resynchronization point (the peer is either buggy or
/// malicious, and scanning forward for a plausible header can alias into
/// payload bytes). The decoder therefore latches a fatal error and the
/// connection must be closed cleanly; the reconnect layer re-establishes a
/// fresh stream.

#include <cstddef>
#include <cstdint>
#include <string>

namespace pa::net {

/// Bytes of the `length | crc` frame header.
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Upper bound on a sane message payload. Larger declared lengths mark a
/// corrupt (or hostile) frame: the decoder fails instead of allocating.
inline constexpr std::uint32_t kMaxFramePayloadBytes = 4U * 1024U * 1024U;

/// Appends `length | crc | payload` to `out`. Throws pa::InvalidArgument
/// when the payload exceeds kMaxFramePayloadBytes.
void append_frame(std::string& out, const std::string& payload);

/// Zero-copy framing: `begin_frame` appends a placeholder header and
/// returns the body offset; the caller encodes the payload directly into
/// `out` (no intermediate payload string) and `end_frame` backpatches the
/// length and CRC over the placeholder. Frames built this way are byte-
/// identical to `append_frame` output. The pair is the arena-backed
/// encode path: callers keep a reusable buffer, chain
/// begin/encode/end per message, and hand the whole multi-frame gather
/// to `Connection::send_gather` in one call.
///
///     std::string& arena = ...;            // capacity retained across uses
///     const std::size_t body = begin_frame(arena);
///     encode_message_into(arena, message); // message.h
///     end_frame(arena, body);
///
/// `end_frame` throws pa::InvalidArgument when the encoded body exceeds
/// kMaxFramePayloadBytes.
std::size_t begin_frame(std::string& out);
void end_frame(std::string& out, std::size_t body_start);

/// Incremental frame parser. Feed it byte chunks exactly as they arrive
/// from a socket (any fragmentation, including one byte at a time); poll
/// `next` for completed payloads. Never throws, never crashes on garbage:
/// malformed input latches `failed()` and the stream must be dropped.
class FrameDecoder {
 public:
  enum class Status {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< one payload extracted into the out-parameter
    kError,     ///< stream corrupt; failed() is now permanently true
  };

  /// Appends raw stream bytes. No-op after a fatal error.
  void feed(const char* data, std::size_t size);

  /// Extracts the next complete frame's payload. Call in a loop until it
  /// stops returning kFrame.
  Status next(std::string& payload);

  bool failed() const { return failed_; }
  /// Human-readable reason once failed() is true.
  const std::string& error() const { return error_; }
  /// Bytes buffered but not yet consumed by a completed frame.
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  Status fail(const std::string& reason);

  std::string buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already parsed
  bool failed_ = false;
  std::string error_;
};

}  // namespace pa::net
