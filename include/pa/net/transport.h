#pragma once
/// \file transport.h
/// \brief Transport abstraction for the manager↔agent coordination channel.
///
/// The pilot papers treat manager↔agent communication as the dominant
/// overhead at scale; this interface makes that path explicit and
/// swappable. Two implementations ship:
///
///  * `InProcTransport` (inproc_transport.h) — lock-free-queue loopback
///    inside one process: deterministic, port-free, the default for tests
///    and for the RemoteRuntime's loopback deployments;
///  * `TcpTransport` (tcp_transport.h) — real non-blocking sockets on
///    127.0.0.1 with a dedicated I/O thread, heartbeat-friendly framing
///    and reconnect with exponential backoff.
///
/// Both speak the same framed message protocol (wire.h + message.h), so
/// everything above `Transport` — RemoteRuntime, PilotComputeService,
/// WorkloadManager — is transport-agnostic.
///
/// Threading contract (identical for all implementations):
///
///  * `on_message` / `on_close` fire on the transport's delivery thread,
///    one at a time per connection, never concurrently with each other;
///  * handlers must not call back into the connection's `close()` (use
///    `Transport::stop()` or close from another thread) but may `send()`;
///  * `Connection::close()` is a barrier: once it returns, no handler for
///    that connection is running or will run again. Never call it while
///    holding a lock a handler acquires.
///
/// Delivery guarantees: messages on one connection arrive in send order,
/// at most once. A frame accepted by `send()` can still be lost if the
/// connection drops before the peer reads it; liveness and retry live a
/// layer up (RemoteRuntime heartbeats + requeue).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

namespace pa::net {

/// Per-connection counters, exported through pa::obs by the owners.
/// Snapshot semantics: values are monotonically increasing except
/// `send_queue_depth` (instantaneous) — read them after quiescing for
/// exact totals.
struct ConnectionStats {
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t messages_in = 0;
  std::uint64_t messages_out = 0;
  std::uint64_t send_queue_depth = 0;     ///< bytes currently queued
  std::uint64_t send_queue_hwm = 0;       ///< high-water mark of depth
  std::uint64_t send_rejected = 0;        ///< sends refused (backpressure)
  std::uint64_t reconnects = 0;           ///< successful re-establishments
};

/// One bidirectional, framed message stream.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Enqueues one already-framed buffer (append_frame / append_message_
  /// frame output). Returns false — and bumps `send_rejected` — when the
  /// connection is closed or its bounded send queue is full; the caller
  /// decides whether that is fatal (RemoteRuntime lets the heartbeat
  /// deadline make the call). Thread-safe.
  virtual bool send(std::string frame) = 0;

  /// Enqueues a gather of `message_count` consecutive framed messages in
  /// one call — the scatter/gather tail of the arena encode path (wire.h
  /// begin_frame/end_frame). Atomic with respect to backpressure: either
  /// the whole gather is accepted or none of it is (returns false, bumps
  /// `send_rejected` once). `messages_out` advances by `message_count`.
  /// The base implementation copies into a single send(); both shipped
  /// transports override it to queue the bytes without re-framing.
  /// Thread-safe.
  virtual bool send_gather(std::string_view frames,
                           std::uint64_t message_count) {
    (void)message_count;
    return send(std::string(frames));
  }

  /// Closes and acts as a barrier for this connection's handlers (see
  /// file comment). Idempotent. `on_close` fires at most once, before
  /// the first close() returns.
  virtual void close() = 0;

  virtual bool is_open() const = 0;

  virtual ConnectionStats stats() const = 0;
};

using ConnectionPtr = std::shared_ptr<Connection>;

/// Handlers for one connection, fixed at creation. `payload` is one
/// decoded frame payload (CRC-verified); decode_message() it.
struct ConnectionHandlers {
  std::function<void(const std::string& payload)> on_message;
  std::function<void()> on_close;
  /// TCP client connections only: the stream was re-established after a
  /// drop. Fires on the delivery thread, before any message received on
  /// the new stream; use it to re-introduce yourself (agents re-send
  /// kHello). Never fires on InProc or accepted connections.
  std::function<void()> on_reconnect;
};

/// Called for every inbound connection on a listening endpoint; returns
/// the handlers to attach. Runs on the transport's delivery/IO thread
/// (TCP) or on the connecting thread (InProc) — keep it cheap and do not
/// close connections from inside it.
using AcceptHandler =
    std::function<ConnectionHandlers(const ConnectionPtr& connection)>;

/// Factory for connections. Implementations own their delivery threads;
/// destroying the transport stops them (equivalent to stop()).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Starts listening on `endpoint` and returns the resolved endpoint
  /// (e.g. "127.0.0.1:0" resolves the kernel-chosen port; InProc echoes
  /// the registered name). Throws pa::Error when the endpoint is taken.
  virtual std::string listen(const std::string& endpoint,
                             AcceptHandler on_accept) = 0;

  /// Connects to a listening endpoint. Returns an open connection or
  /// throws pa::Error when the endpoint does not exist / refuses.
  virtual ConnectionPtr connect(const std::string& endpoint,
                                ConnectionHandlers handlers) = 0;

  /// Closes every connection and stops delivery threads. Barrier: after
  /// stop() returns no handler is running. Idempotent.
  virtual void stop() = 0;
};

}  // namespace pa::net
