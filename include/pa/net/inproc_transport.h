#pragma once
/// \file inproc_transport.h
/// \brief Loopback Transport: both ends live in one process, frames move
/// through lock-free MPSC queues serviced by one delivery thread.
///
/// This is the deterministic stand-in for TcpTransport: no ports, no
/// kernel buffers, no partial reads — but the *same* framing (every send
/// still passes through wire.h encode + FrameDecoder on the receiving
/// side) and the same threading contract, so everything layered above is
/// exercised unmodified. Tests and single-host RemoteRuntime deployments
/// default to it.
///
/// Implementation notes (details in src/net/inproc_transport.cpp):
///  * one delivery thread per transport serves every connection, which
///    trivially satisfies "handlers are serialized per connection";
///  * producers push frames wait-free (MpscQueue) and wake the delivery
///    thread with a lock-free notify; a 1 ms timed wait bounds the damage
///    of the inherent lost-wakeup race;
///  * per-connection inbound queues are bounded in bytes; a full queue
///    rejects the send (backpressure is surfaced, never silently buffered).

#include <cstddef>
#include <memory>
#include <string>

#include "pa/net/transport.h"

namespace pa::net {

struct InProcTransportConfig {
  /// Bound on bytes queued toward one connection's receiver; sends beyond
  /// it fail fast with `send_rejected`.
  std::size_t max_queue_bytes = 4 * 1024 * 1024;
  /// Safety-net poll period of the delivery thread (covers the lock-free
  /// wake race; normal wakeups are immediate).
  double idle_wait_seconds = 0.001;
};

class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(InProcTransportConfig config = {});
  ~InProcTransport() override;

  InProcTransport(const InProcTransport&) = delete;
  InProcTransport& operator=(const InProcTransport&) = delete;

  /// `endpoint` is a free-form name (convention: "inproc://manager");
  /// returned unchanged. Throws pa::Error when already registered.
  std::string listen(const std::string& endpoint,
                     AcceptHandler on_accept) override;

  /// Creates a connection pair and runs the acceptor on this thread.
  ConnectionPtr connect(const std::string& endpoint,
                        ConnectionHandlers handlers) override;

  void stop() override;

  /// Implementation detail, public only so the connection class in the
  /// .cpp can hold a typed back-pointer; definition is file-local.
  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace pa::net
