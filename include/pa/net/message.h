#pragma once
/// \file message.h
/// \brief The pilot wire protocol: typed messages exchanged between the
/// Pilot-Manager (rt::RemoteRuntime) and Pilot-Agent endpoints.
///
/// The P* model (paper Sec. IV-A, ref [6]) defines the manager and agents
/// as distinct components joined by an explicit coordination channel; this
/// header is that channel's vocabulary. Every message payload starts with
/// a versioned header
///
///     u8 version | u8 type | u16 reserved | u64 seq | str pilot_id
///
/// followed by a type-specific body using the same compact primitives as
/// the journal codec (fixed-width little-endian integers, u32
/// length-prefixed strings). `seq` is assigned per connection by the
/// sender, strictly increasing, so receivers can spot reordering or loss
/// across a reconnect.
///
/// Message flow:
///
///     manager ──kStartPilot──▶ agent      (after the agent's kHello)
///     manager ◀─kPilotActive── agent      (allocation up, cores + site)
///     manager ──kExecuteUnit─▶ agent
///     manager ◀──kUnitDone──── agent
///     manager ──kHeartbeat───▶ agent
///     manager ◀─kHeartbeatAck─ agent      (echoes the probe timestamp)
///     manager ──kShutdown────▶ agent      (cancel / drain)
///     manager ◀kPilotTerminated agent     (walltime end, agent failure)
///
/// Version 2 adds the bulk path (P* coordination cost amortized across
/// units, after RADICAL-Pilot's bulk dispatch):
///
///     manager ──kUnitBatch───▶ agent      (vector of units, agent
///                                          late-binds them to cores)
///     manager ◀kUnitDoneBatch─ agent      (vector of completions plus the
///                                          agent's remaining headroom)
///
/// Negotiation: the agent's kHello carries the agent's newest version in
/// the header; both sides then speak min(own, peer). Batch types are only
/// legal at version >= 2 — encoding or decoding them at version 1 is a
/// clean pa::Error, never a decoder latch, so a v2 frame reaching a v1
/// peer produces a protocol-version rejection rather than stream corruption.
///
/// Version 3 adds the data plane (pa::store, Pilot-Data as a first-class
/// citizen): content-addressed objects travel as chunked frames so a large
/// stage-in never head-of-line-blocks heartbeats on the same connection.
///
///     manager ──kObjPut────▶ agent    (one chunk; agent assembles, CRC-
///                                      verifies, stores in its shard)
///     manager ◀─kObjLocate── agent    (replica announce / NACK / evict)
///     manager ──kObjGet────▶ agent    (request an object by id)
///     manager ◀──kObjChunk── agent    (one chunk back; chunk_count = 0
///                                      means the shard no longer holds it)
///
/// Object types are only legal at version >= 3, gated exactly like the
/// batch types.

#include <cstdint>
#include <string>
#include <vector>

#include "pa/core/types.h"

namespace pa::net {

/// Newest protocol version this build speaks. Bump on any change to the
/// header or a body layout; receivers reject versions outside
/// [kMinProtocolVersion, kProtocolVersion].
inline constexpr std::uint8_t kProtocolVersion = 3;

/// Oldest version still decodable. Version 1/2 bodies are unchanged
/// byte-for-byte under version 3; batch types arrived in 2, object
/// (store) types in 3.
inline constexpr std::uint8_t kMinProtocolVersion = 1;

/// Values are stable wire identifiers — append only.
enum class MessageType : std::uint8_t {
  kHello = 1,            ///< agent -> manager: announces pilot_id on connect
  kStartPilot = 2,       ///< manager -> agent: pilot description
  kPilotActive = 3,      ///< agent -> manager: allocation up (cores, site)
  kPilotTerminated = 4,  ///< agent -> manager: final pilot state
  kExecuteUnit = 5,      ///< manager -> agent: run a unit
  kUnitDone = 6,         ///< agent -> manager: unit completion
  kHeartbeat = 7,        ///< manager -> agent: liveness probe (timestamp)
  kHeartbeatAck = 8,     ///< agent -> manager: echo of the probe
  kShutdown = 9,         ///< manager -> agent: cancel pilot, close down
  kUnitBatch = 10,       ///< manager -> agent: bulk unit dispatch (v2+)
  kUnitDoneBatch = 11,   ///< agent -> manager: bulk completions + window (v2+)
  kObjPut = 12,          ///< manager -> agent: one object chunk to store (v3+)
  kObjGet = 13,          ///< manager -> agent: request an object (v3+)
  kObjChunk = 14,        ///< agent -> manager: one object chunk back (v3+)
  kObjLocate = 15,       ///< agent -> manager: replica announce/NACK (v3+)
};

const char* to_string(MessageType t);

/// Serializable subset of core::ComputeUnitDescription. The `work`
/// closure cannot cross a wire; agents resolve the payload by unit id
/// (rt::PayloadTable in loopback deployments, a named executable in real
/// ones) or burn CPU for `duration` when none resolves.
struct WireUnitDescription {
  std::string unit_id;
  std::string name;
  std::int32_t cores = 1;
  double duration = 1.0;
  std::vector<std::string> input_data;
  std::vector<std::string> output_data;
  std::string attributes;  ///< pa::Config::to_string round-trip
  bool has_work = false;   ///< manager registered a resolvable payload

  bool operator==(const WireUnitDescription&) const = default;
};

/// One completion inside a kUnitDoneBatch.
struct WireUnitDone {
  std::string unit_id;
  bool success = false;
  double timestamp = 0.0;

  bool operator==(const WireUnitDone&) const = default;
};

/// One protocol message. A flat struct rather than a variant: only the
/// fields of the active `type` are encoded on the wire, the rest stay
/// default-initialized (and are ignored by operator== via the codec
/// round-trip tests, which compare decoded against freshly-made values).
struct Message {
  MessageType type = MessageType::kHeartbeat;
  /// Header version to encode with / decoded from the header. Senders set
  /// this to the negotiated min(own, peer) version; batch types require
  /// version >= 2 at both encode and decode.
  std::uint8_t version = kProtocolVersion;
  std::uint64_t seq = 0;
  std::string pilot_id;

  // kStartPilot
  std::string resource_url;
  std::int32_t nodes = 0;
  double walltime = 0.0;
  std::int32_t priority = 0;
  double cost_per_core_hour = 0.0;
  std::string pilot_attributes;  ///< pa::Config::to_string round-trip

  // kPilotActive
  std::int32_t total_cores = 0;
  std::string site;

  // kPilotTerminated
  core::PilotState pilot_state = core::PilotState::kNew;

  // kExecuteUnit
  WireUnitDescription unit;

  // kUnitDone
  std::string unit_id;
  bool success = false;

  // kHeartbeat / kHeartbeatAck
  double timestamp = 0.0;

  // kUnitBatch (v2+)
  std::vector<WireUnitDescription> units;

  // kUnitDoneBatch (v2+): completions plus the agent's scheduling window —
  // how many more units the agent can queue (local-queue capacity minus
  // queued and running). The manager sizes the next kUnitBatch to it.
  std::vector<WireUnitDone> completions;
  std::int32_t window = 0;

  // kObjPut / kObjChunk (v3+): one chunk of a content-addressed object.
  // `transfer_id` correlates every chunk of one transfer (and the kObjGet
  // that requested it); `chunk_count` in a kObjChunk of 0 is the
  // not-found reply. `chunk_crc` is the CRC32 of `chunk_data`, computed
  // at the source shard and verified end-to-end at the destination —
  // it rides *inside* the frame so it survives intact frames that carry
  // bytes corrupted at rest.
  // kObjGet carries object_id + transfer_id only; kObjLocate carries
  // object_id, object_bytes, `success` (false = NACK: store failed or the
  // shard evicted/dropped the object) and `sites` (holders known to the
  // sender; empty in agent announcements).
  std::string object_id;
  std::uint64_t transfer_id = 0;
  std::uint32_t chunk_index = 0;
  std::uint32_t chunk_count = 0;
  std::uint64_t object_bytes = 0;
  std::uint32_t chunk_crc = 0;
  std::string chunk_data;
  std::vector<std::string> sites;

  bool operator==(const Message&) const = default;
};

/// Serializes the message body (header + type body, no frame).
std::string encode_message(const Message& message);

/// Appends the serialized body to `out` without clearing it — the
/// zero-copy arena path. Pair with wire.h begin_frame/end_frame to build
/// framed messages in place. Throws pa::Error when `message.version` is
/// outside the supported range or too old for the message type.
void encode_message_into(std::string& out, const Message& message);

/// Parses a message body; throws pa::Error on malformed input, unknown
/// type, or unsupported version.
Message decode_message(const char* data, std::size_t size);

/// Convenience: encode_message + append_frame (wire.h framing).
void append_message_frame(std::string& out, const Message& message);

// --- adapters to/from the core vocabulary -----------------------------------

/// kStartPilot from a pilot description (attributes flattened to text).
Message make_start_pilot(const std::string& pilot_id,
                         const core::PilotDescription& description);

/// Rebuilds the description a kStartPilot message carries.
core::PilotDescription to_pilot_description(const Message& message);

/// Serializable view of a unit description (drops the work closure;
/// `has_work` records whether the manager registered one).
WireUnitDescription to_wire_unit(const std::string& unit_id,
                                 const core::ComputeUnitDescription& d,
                                 bool has_work);

/// Rebuilds an executable description from the wire form (work unset —
/// the agent resolves it separately).
core::ComputeUnitDescription to_unit_description(const WireUnitDescription& w);

}  // namespace pa::net
