#pragma once
/// \file mpsc_queue.h
/// \brief Lock-free multi-producer single-consumer FIFO (Vyukov's
/// algorithm) used by InProcTransport to move frames from sender threads
/// to the delivery thread without taking a lock on the hot path.
///
/// Properties:
///  * `push` is wait-free for producers (one exchange + one store);
///  * `pop` is single-consumer only — exactly one thread may call it;
///  * there is a transient window after a producer's exchange and before
///    its `next` store where `pop` reports empty although an item is in
///    flight. Consumers must therefore never rely on a single empty pop
///    as a quiescence signal; the delivery thread pairs the queue with a
///    timed CondVar wait as a safety net.
///
/// Memory: one heap node per element plus a permanent stub; the consumer
/// frees nodes as it pops. Destroying the queue drains remaining nodes
/// (producers must be quiesced first).

#include <atomic>
#include <utility>

namespace pa::net {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() : head_(new Node()), tail_(head_.load()) {}

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  ~MpscQueue() {
    Node* node = tail_;
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
  }

  /// Producer side; safe from any number of threads concurrently.
  void push(T value) {
    Node* node = new Node(std::move(value));
    // Publish the node as the new head, then link the previous head to
    // it. Between the two steps the list is momentarily disconnected —
    // see the file comment for the consumer-visible consequence.
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  /// Consumer side; exactly one thread. Returns false when no linked
  /// element is available (possibly transiently — see file comment).
  bool pop(T& out) {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      return false;
    }
    out = std::move(next->value);
    tail_ = next;
    delete tail;
    return true;
  }

  /// Approximate: true when the consumer has caught up with every
  /// *linked* element. An in-flight push may not be visible yet.
  bool empty() const {
    return tail_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    Node() = default;
    explicit Node(T v) : value(std::move(v)) {}
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  std::atomic<Node*> head_;  ///< producers exchange here (most recent)
  Node* tail_;               ///< consumer-owned (oldest, stub included)
};

}  // namespace pa::net
