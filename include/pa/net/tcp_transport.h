#pragma once
/// \file tcp_transport.h
/// \brief Real-socket Transport: non-blocking TCP on 127.0.0.1 with a
/// dedicated I/O thread, bounded send queues, and client-side reconnect
/// with exponential backoff + jitter.
///
/// Threading model (details in src/net/tcp_transport.cpp):
///  * one I/O thread per transport owns every socket after registration:
///    it polls, reads, decodes, dispatches handlers, flushes writes, and
///    runs the reconnect timers. `listen`/`connect` create their sockets
///    on the calling thread (so they can throw synchronously on a taken
///    port / refused connection) and immediately hand the fd over;
///  * application threads only ever touch buffers: `send()` appends a
///    frame to the connection's bounded queue under the connection lock
///    (rank kNetConnection) and wakes the I/O thread through a self-pipe.
///
/// Reconnect (client connections only — accepted connections cannot call
/// back): on stream drop the connection stays logically open, the fd is
/// rebuilt after an exponentially backed-off, jittered delay, and the
/// `on_reconnect` handler fires so the application can re-introduce
/// itself (RemoteRuntime agents re-send kHello). Bytes handed to the old
/// socket but not received are lost (at-most-once); frames still queued
/// locally survive the reconnect intact, since queues only ever hold
/// whole frames. Whether a silent peer is *dead* is decided a layer up,
/// by RemoteRuntime heartbeats — not by the transport.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "pa/net/transport.h"

namespace pa::net {

struct TcpTransportConfig {
  /// Bound on bytes queued toward one connection's socket; sends beyond
  /// it fail fast with `send_rejected`.
  std::size_t max_send_queue_bytes = 4 * 1024 * 1024;
  /// Upper bound on the I/O thread's poll timeout; wakeups via the
  /// self-pipe are immediate, this only caps timer latency.
  double poll_interval_seconds = 0.010;
  /// Client connections re-dial after a stream drop.
  bool reconnect = true;
  double backoff_initial_seconds = 0.05;
  double backoff_max_seconds = 2.0;
  double backoff_multiplier = 2.0;
  /// Each delay is scaled by a uniform factor in [1-j, 1+j] to decorrelate
  /// clients redialing a restarted manager.
  double backoff_jitter = 0.25;
  /// Give up (and surface on_close) after this many consecutive failed
  /// redials; 0 = never give up, the heartbeat layer decides.
  int max_reconnect_attempts = 0;
  /// Seed for the backoff jitter (pa::Rng keeps the transport off the
  /// nondeterminism lint; distinct transports should use distinct seeds).
  std::uint64_t jitter_seed = 0x7c95;
};

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpTransportConfig config = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// `endpoint` is "host:port" or "tcp://host:port" with a numeric IPv4
  /// host (loopback in practice). Port 0 asks the kernel; the returned
  /// string carries the resolved port.
  std::string listen(const std::string& endpoint,
                     AcceptHandler on_accept) override;

  ConnectionPtr connect(const std::string& endpoint,
                        ConnectionHandlers handlers) override;

  void stop() override;

  /// Implementation detail, public only so the connection class in the
  /// .cpp can hold a typed back-pointer; definition is file-local.
  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

/// True when this process can bind + connect a TCP socket on 127.0.0.1
/// (probed once and cached). Sandboxes without network namespaces fail
/// this; tests use it to GTEST_SKIP rather than fail, and keeping the
/// probe here keeps socket syscalls confined to tcp_transport.cpp
/// (tools/lint.py rule 4).
bool tcp_loopback_available();

}  // namespace pa::net
