#pragma once
/// \file time_utils.h
/// \brief Wall-clock helpers for the local (real-execution) runtime.

#include <chrono>

namespace pa {

/// Seconds since an arbitrary monotonic epoch.
inline double wall_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

/// Monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(wall_seconds()) {}
  /// Seconds since construction or last restart.
  double elapsed() const { return wall_seconds() - start_; }
  void restart() { start_ = wall_seconds(); }

 private:
  double start_;
};

/// Spins the CPU for approximately `seconds` of real work (not sleep), so
/// "compute" in local-runtime benchmarks occupies a core the way a real
/// science kernel would. Calibrated per process on first use.
void burn_cpu(double seconds);

}  // namespace pa
