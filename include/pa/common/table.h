#pragma once
/// \file table.h
/// \brief ASCII table and CSV emission for benchmark harnesses.
///
/// Every experiment binary in `bench/` reports its results through a
/// `pa::Table`, so paper-style tables render uniformly and every run can
/// also be captured as CSV for the Mini-App framework's statistical models.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace pa {

/// A single table cell: text, integer, or floating point (with the column's
/// precision applied at render time).
using Cell = std::variant<std::string, std::int64_t, double>;

/// Column header plus formatting hints.
struct Column {
  std::string name;
  int precision = 3;   ///< digits after the decimal point for doubles
  bool fixed = true;   ///< std::fixed vs. default float formatting
};

/// Row-oriented result table with aligned ASCII rendering and CSV export.
class Table {
 public:
  explicit Table(std::string title = "");

  /// Defines the columns; must be called before adding rows.
  void set_columns(std::vector<Column> columns);

  /// Convenience: columns with default formatting.
  void set_columns(const std::vector<std::string>& names);

  /// Appends a row; size must match the column count.
  void add_row(std::vector<Cell> cells);

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return columns_.size(); }
  const std::string& title() const { return title_; }

  /// Cell accessor (row, column), bounds-checked.
  const Cell& at(std::size_t row, std::size_t col) const;

  /// Renders an aligned ASCII table.
  std::string to_ascii() const;

  /// Renders RFC-4180-ish CSV (header row + data rows).
  std::string to_csv() const;

  /// Prints the ASCII rendering (plus title) to the stream.
  void print(std::ostream& os) const;

  /// Writes CSV to `path`, creating parent-less file; throws pa::Error on
  /// I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<Column> columns_;
  std::vector<std::vector<Cell>> rows_;

  std::string render_cell(const Cell& cell, const Column& col) const;
};

/// Escapes a CSV field (quotes when needed).
std::string csv_escape(const std::string& field);

}  // namespace pa
