#pragma once
/// \file config.h
/// \brief Typed key-value configuration used by service URLs, experiment
/// descriptions and workload specs.
///
/// The pilot publications describe resources with SAGA-style URLs plus
/// attribute maps; `Config` is the attribute-map half: string keys, typed
/// getters with defaults, and strict getters that throw `pa::NotFound`.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pa {

/// Ordered string->string map with typed accessors.
class Config {
 public:
  Config() = default;

  /// Parses "k1=v1,k2=v2" (also accepts ';' separators and spaces).
  static Config parse(const std::string& text);

  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, double value);
  void set(const std::string& key, bool value);

  bool contains(const std::string& key) const;

  /// Strict getters: throw pa::NotFound if absent, pa::InvalidArgument if
  /// unparsable.
  std::string get_string(const std::string& key) const;
  std::int64_t get_int(const std::string& key) const;
  double get_double(const std::string& key) const;
  bool get_bool(const std::string& key) const;

  /// Defaulted getters.
  std::string get_string(const std::string& key, const std::string& dflt) const;
  std::int64_t get_int(const std::string& key, std::int64_t dflt) const;
  double get_double(const std::string& key, double dflt) const;
  bool get_bool(const std::string& key, bool dflt) const;

  /// All keys in insertion-independent (sorted) order.
  std::vector<std::string> keys() const;

  /// Merge: entries in `other` override entries here.
  void merge(const Config& other);

  /// "k1=v1,k2=v2" round-trippable rendering, keys sorted.
  std::string to_string() const;

  bool operator==(const Config& other) const { return values_ == other.values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace pa
