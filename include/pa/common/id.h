#pragma once
/// \file id.h
/// \brief Human-readable sequential identifiers for pilots, units, jobs.
///
/// Mirrors the URL-style ids of the original pilot systems
/// ("pilot-17", "cu-2041", ...). Deterministic within a process so test
/// expectations and experiment logs are stable.

#include <atomic>
#include <cstdint>
#include <string>

namespace pa {

/// Generates "prefix-N" identifiers; thread-safe.
class IdGenerator {
 public:
  explicit IdGenerator(std::string prefix) : prefix_(std::move(prefix)) {}

  std::string next() {
    const std::uint64_t n = counter_.fetch_add(1, std::memory_order_relaxed);
    return prefix_ + "-" + std::to_string(n);
  }

  /// Resets the counter (tests only; not thread-safe vs concurrent next()).
  void reset() { counter_.store(0, std::memory_order_relaxed); }

  /// Advances the counter to at least `n` so ids below it are never
  /// handed out (resuming a recovered journal must not reuse journaled
  /// ids). Never moves the counter backwards.
  void skip_to(std::uint64_t n) {
    std::uint64_t cur = counter_.load(std::memory_order_relaxed);
    while (cur < n && !counter_.compare_exchange_weak(
                          cur, n, std::memory_order_relaxed)) {
    }
  }

 private:
  std::string prefix_;
  std::atomic<std::uint64_t> counter_{0};
};

}  // namespace pa
