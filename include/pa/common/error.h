#pragma once
/// \file error.h
/// \brief Exception hierarchy and contract-checking macros used across the
/// pilot-abstraction library.
///
/// The library follows the C++ Core Guidelines error model: exceptions for
/// errors that callers are expected to handle, assertions for programming
/// errors (broken invariants / contract violations).

#include <sstream>
#include <stdexcept>
#include <string>

namespace pa {

/// Base class of all library exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller passed an argument that violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// An operation was requested in a state that does not permit it
/// (e.g. cancelling an already-final compute unit).
class InvalidStateError : public Error {
 public:
  explicit InvalidStateError(const std::string& what) : Error(what) {}
};

/// A named entity (pilot, data unit, topic, ...) could not be found.
class NotFound : public Error {
 public:
  explicit NotFound(const std::string& what) : Error(what) {}
};

/// A resource request cannot be satisfied (capacity, quota, ...).
class ResourceError : public Error {
 public:
  explicit ResourceError(const std::string& what) : Error(what) {}
};

/// A tenant exceeded one of its admission quotas (max in-flight units,
/// max pilots, or submit rate). Thrown at the control-plane boundary so
/// callers can distinguish "slow down" from a hard capacity failure.
class QuotaExceeded : public ResourceError {
 public:
  explicit QuotaExceeded(const std::string& what) : ResourceError(what) {}
};

/// A timeout expired while waiting for a condition.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// Thread-safe strerror: formats an errno value as a string. std::strerror
/// may return a shared internal buffer (clang-tidy: concurrency-mt-unsafe),
/// so error paths that can race — journal flusher vs. foreground close,
/// pool workers — must use this instead.
std::string errno_message(int err);

namespace detail {
[[noreturn]] void assertion_failed(const char* expr, const char* file, int line,
                                   const std::string& msg);
}  // namespace detail

}  // namespace pa

/// Contract check that stays enabled in release builds. Broken invariants in
/// a resource manager must fail loudly, not corrupt schedules silently.
#define PA_CHECK(expr)                                                     \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::pa::detail::assertion_failed(#expr, __FILE__, __LINE__, "");       \
    }                                                                      \
  } while (false)

/// Like PA_CHECK but with a streamed message:
/// `PA_CHECK_MSG(a < b, "a=" << a << " b=" << b);`
#define PA_CHECK_MSG(expr, msg)                                            \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream pa_check_oss_;                                    \
      /* NOLINT: msg expands to a caller stream expression */               \
      pa_check_oss_ << msg;                                   \
      ::pa::detail::assertion_failed(#expr, __FILE__, __LINE__,            \
                                     pa_check_oss_.str());                 \
    }                                                                      \
  } while (false)

/// Throw `pa::InvalidArgument` with a streamed message when `expr` is false.
#define PA_REQUIRE_ARG(expr, msg)                                          \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream pa_req_oss_;                                      \
      /* NOLINT: msg expands to a caller stream expression */               \
      pa_req_oss_ << msg;                                     \
      throw ::pa::InvalidArgument(pa_req_oss_.str());                      \
    }                                                                      \
  } while (false)
