#pragma once
/// \file thread_pool.h
/// \brief Fixed-size worker pool with futures, used by the LocalRuntime's
/// pilot agents to execute real compute-unit payloads.

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "pa/check/mutex.h"
#include "pa/common/error.h"

namespace pa {

/// A simple FIFO thread pool. Tasks are `void()` callables; `submit`
/// returns a future. Destruction drains outstanding tasks (graceful join),
/// `shutdown_now` discards queued-but-unstarted work.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a callable; returns a future for its result. Throws
  /// pa::InvalidStateError after shutdown.
  template <typename F, typename R = std::invoke_result_t<F>>
  std::future<R> submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Enqueues fire-and-forget work.
  void enqueue(std::function<void()> fn) PA_EXCLUDES(mutex_);

  /// Blocks until the queue is empty and all workers are idle. Returns
  /// immediately (never hangs) when called after shutdown()/shutdown_now():
  /// the queue is then drained or discarded and no worker is active.
  void wait_idle() PA_EXCLUDES(mutex_);

  /// Stops accepting work; drains the queue, then joins workers.
  /// Idempotent: repeated calls return immediately (a concurrent second
  /// caller may return before the first finishes joining).
  void shutdown() PA_EXCLUDES(mutex_);

  /// Stops accepting work; discards queued tasks, joins workers after the
  /// currently running tasks complete.
  void shutdown_now() PA_EXCLUDES(mutex_);

  /// `workers_` is immutable after construction; no lock needed.
  std::size_t size() const { return workers_.size(); }
  /// Number of tasks waiting in the queue (diagnostic; racy by nature).
  std::size_t queued() const PA_EXCLUDES(mutex_);

 private:
  void worker_loop() PA_EXCLUDES(mutex_);

  mutable check::Mutex mutex_{check::LockRank::kThreadPool, "ThreadPool"};
  check::CondVar cv_;
  check::CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ PA_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_;
  std::size_t active_ PA_GUARDED_BY(mutex_) = 0;
  bool accepting_ PA_GUARDED_BY(mutex_) = true;
  bool stop_ PA_GUARDED_BY(mutex_) = false;
};

}  // namespace pa
