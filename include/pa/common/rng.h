#pragma once
/// \file rng.h
/// \brief Deterministic random-number generation for reproducible
/// experiments.
///
/// All stochastic components of the simulator (queue-wait injection, cloud
/// startup latency, task-duration noise, ...) draw from a `pa::Rng` seeded
/// explicitly, so a simulation run is a pure function of its seed — one of
/// the reproducibility requirements of the Mini-App framework (paper
/// Sec. V-C, criterion "Reproducibility").

#include <cmath>
#include <cstdint>
#include <random>

#include "pa/common/error.h"

namespace pa {

/// Deterministic 64-bit RNG (SplitMix64 core) with convenience samplers.
///
/// SplitMix64 is small, fast, passes BigCrush when used as here, and —
/// unlike `std::mt19937` + `std::*_distribution` — has a bit-stable output
/// across standard-library implementations, which keeps recorded experiment
/// outputs comparable across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    PA_CHECK_MSG(lo <= hi, "uniform bounds inverted: " << lo << " > " << hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    PA_CHECK_MSG(lo <= hi, "uniform_int bounds inverted");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    std::uint64_t v = next_u64();
    while (v >= limit) {
      v = next_u64();
    }
    return lo + static_cast<std::int64_t>(v % span);
  }

  /// Standard normal via Box-Muller (one value per call; simple and stable).
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-300) {
      u1 = uniform();
    }
    const double u2 = uniform();
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  }

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with the given rate (lambda). Mean = 1/rate.
  double exponential(double rate) {
    PA_CHECK_MSG(rate > 0.0, "exponential rate must be positive");
    double u = uniform();
    while (u <= 1e-300) {
      u = uniform();
    }
    return -std::log(u) / rate;
  }

  /// Lognormal where `mu`/`sigma` parameterize the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Bernoulli trial.
  bool bernoulli(double p) { return uniform() < p; }

  /// Poisson-distributed count (Knuth's method; fine for small lambda,
  /// normal approximation above 50).
  std::int64_t poisson(double lambda) {
    PA_CHECK_MSG(lambda >= 0.0, "poisson lambda must be non-negative");
    if (lambda > 50.0) {
      const double v = normal(lambda, std::sqrt(lambda));
      return v < 0.0 ? 0 : static_cast<std::int64_t>(v + 0.5);
    }
    const double limit = std::exp(-lambda);
    double prod = uniform();
    std::int64_t n = 0;
    while (prod >= limit) {
      prod *= uniform();
      ++n;
    }
    return n;
  }

  /// Spawns an independent child stream; children with distinct salts are
  /// decorrelated from the parent and each other.
  Rng split(std::uint64_t salt) {
    return Rng(next_u64() ^ (salt * 0xD1342543DE82EF95ULL));
  }

  /// Adapter so `pa::Rng` satisfies UniformRandomBitGenerator and can be
  /// used with `std::shuffle`.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t state_;
};

/// Named duration distribution used in workload descriptions: value is
/// sampled once per task. See `miniapp::WorkloadSpec`.
struct DurationDistribution {
  enum class Kind { kConstant, kUniform, kNormal, kExponential, kLognormal };

  Kind kind = Kind::kConstant;
  /// kConstant: a = value. kUniform: [a, b]. kNormal: mean a, stddev b.
  /// kExponential: rate a. kLognormal: mu a, sigma b.
  double a = 1.0;
  double b = 0.0;

  static DurationDistribution constant(double v) { return {Kind::kConstant, v, 0.0}; }
  static DurationDistribution uniform(double lo, double hi) {
    return {Kind::kUniform, lo, hi};
  }
  static DurationDistribution normal(double mean, double sd) {
    return {Kind::kNormal, mean, sd};
  }
  static DurationDistribution exponential(double rate) {
    return {Kind::kExponential, rate, 0.0};
  }
  static DurationDistribution lognormal(double mu, double sigma) {
    return {Kind::kLognormal, mu, sigma};
  }

  /// Samples a non-negative duration.
  double sample(Rng& rng) const {
    double v = 0.0;
    switch (kind) {
      case Kind::kConstant:
        v = a;
        break;
      case Kind::kUniform:
        v = rng.uniform(a, b);
        break;
      case Kind::kNormal:
        v = rng.normal(a, b);
        break;
      case Kind::kExponential:
        v = rng.exponential(a);
        break;
      case Kind::kLognormal:
        v = rng.lognormal(a, b);
        break;
    }
    return v < 0.0 ? 0.0 : v;
  }

  /// Analytical mean of the distribution (used by performance models).
  double mean() const {
    switch (kind) {
      case Kind::kConstant:
        return a;
      case Kind::kUniform:
        return 0.5 * (a + b);
      case Kind::kNormal:
        return a;
      case Kind::kExponential:
        return 1.0 / a;
      case Kind::kLognormal:
        return std::exp(a + 0.5 * b * b);
    }
    return a;
  }
};

}  // namespace pa
