#pragma once
/// \file log.h
/// \brief Minimal leveled logger. Thread-safe, no allocation on disabled
/// levels, and silent by default at Debug level so tests stay readable.

#include <sstream>
#include <string>

#include "pa/check/mutex.h"

namespace pa {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide logger configuration and sink.
class Log {
 public:
  /// Sets the minimum level that is emitted. Default: kWarn.
  static void set_level(LogLevel level);
  static LogLevel level();

  /// True if a message at `level` would currently be emitted.
  static bool enabled(LogLevel level) { return level >= Log::level(); }

  /// Emits one line to stderr: `[LEVEL] component: message`.
  static void write(LogLevel level, const std::string& component,
                    const std::string& message);

 private:
  /// Innermost lock of the hierarchy (LockRank::kLog): components log
  /// while holding their own locks, so the sink must nest below all.
  static check::Mutex& mutex();
};

namespace detail {
/// RAII line builder used by the PA_LOG macro.
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { Log::write(level_, component_, oss_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    oss_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream oss_;
};
}  // namespace detail

}  // namespace pa

/// Streamed logging: `PA_LOG(kInfo, "pilot") << "started " << id;`
#define PA_LOG(level_enum, component)                         \
  if (!::pa::Log::enabled(::pa::LogLevel::level_enum)) {      \
  } else                                                      \
    ::pa::detail::LogLine(::pa::LogLevel::level_enum, (component))
