#pragma once
/// \file stats.h
/// \brief Summary statistics used throughout benchmarks and models.

#include <cstddef>
#include <string>
#include <vector>

namespace pa {

/// Online mean/variance accumulator (Welford). O(1) memory; suitable for
/// long simulation runs where storing every sample would be wasteful.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return n_ > 0 ? mean_ * static_cast<double>(n_) : 0.0; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Full-sample statistics including exact percentiles. Stores all samples;
/// use for per-experiment result sets (thousands of points, not billions).
class SampleSet {
 public:
  void add(double x) { values_.push_back(x); }
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const;
  /// Exact percentile by linear interpolation, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& values() const { return values_; }

  /// Appends every sample from `other` (merging per-shard sample sets
  /// into an aggregate view). Invalidates the sorted cache.
  void merge(const SampleSet& other);

  /// One-line human summary: "n=100 mean=4.2 sd=0.3 p50=4.1 p99=5.0".
  std::string summary() const;

 private:
  std::vector<double> values_;
  mutable std::vector<double> sorted_;  // lazily sorted copy
  mutable bool sorted_valid_ = false;
  const std::vector<double>& sorted() const;
};

/// Relative error |a - b| / max(|b|, eps). Used when validating analytical
/// models against measured values.
double relative_error(double measured, double expected, double eps = 1e-12);

}  // namespace pa
