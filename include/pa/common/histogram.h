#pragma once
/// \file histogram.h
/// \brief Log-bucketed latency histogram for high-rate recording.
///
/// The streaming benchmarks record millions of per-message latencies; a
/// `SampleSet` would store them all. `LatencyHistogram` uses
/// logarithmically spaced buckets (HdrHistogram-style, base-2 with linear
/// sub-buckets) giving <= ~3% relative quantile error at O(1) memory.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace pa {

/// Fixed-range log-bucketed histogram over positive values.
class LatencyHistogram {
 public:
  /// Values below `min_value` clamp to the first bucket, above `max_value`
  /// to the overflow bucket. Defaults suit seconds-scale latencies from
  /// 1 microsecond to ~1 hour.
  explicit LatencyHistogram(double min_value = 1e-6, double max_value = 4096.0);

  void record(double value);
  /// Records `count` occurrences of `value` (batch ingestion).
  void record_n(double value, std::uint64_t count);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Approximate quantile, q in [0, 1].
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  /// Merge another histogram with identical bounds.
  void merge(const LatencyHistogram& other);

  void reset();

  /// "n=... mean=... p50=... p99=... max=..." one-liner.
  std::string summary() const;

 private:
  static constexpr int kSubBuckets = 16;  // linear sub-buckets per octave

  double min_value_;
  double max_value_;
  int num_octaves_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;

  int bucket_index(double value) const;
  double bucket_midpoint(int index) const;
};

}  // namespace pa
