#pragma once
/// \file htc_pool.h
/// \brief Simulated high-throughput-computing pool (Condor-like).
///
/// Captures the two properties of HTC that matter for the pilot
/// experiments: high per-job dispatch latency (matchmaking across a
/// federated pool) and unreliability (slots can preempt running jobs at
/// any time, as OSG/Condor glidein slots do). Pilots amortize the former
/// and must recover from the latter.

#include <deque>
#include <map>
#include <string>

#include "pa/common/rng.h"
#include "pa/common/stats.h"
#include "pa/infra/resource_manager.h"
#include "pa/sim/engine.h"

namespace pa::infra {

struct HtcPoolConfig {
  std::string name = "htc-pool";
  int num_slots = 256;        ///< single-node slots
  int cores_per_slot = 4;
  /// Matchmaking latency per job, sampled uniformly from this range.
  double match_latency_min = 10.0;
  double match_latency_max = 120.0;
  /// Per-running-job preemption rate (events per second); 0 disables.
  /// E.g. 1/7200 preempts a slot on average every two hours.
  double preemption_rate = 0.0;
  double max_walltime = 24.0 * 3600.0;
  /// Max concurrently running jobs per owner (0 = unlimited); pools cap
  /// single users via fair-share just as Condor does.
  int max_running_per_owner = 0;
  std::uint64_t seed = 42;
};

/// Condor-like opportunistic pool. Jobs request `num_nodes` slots; each
/// slot is matched independently after a sampled matchmaking delay, and the
/// job starts when all its slots are held (gang start, as a glidein-based
/// pilot would be launched slot-by-slot but reported started per slot — we
/// model the common whole-job variant for comparability with batch).
class HtcPool : public ResourceManager {
 public:
  HtcPool(sim::Engine& engine, HtcPoolConfig config);

  std::string submit(JobRequest request) override;
  void cancel(const std::string& job_id) override;
  JobState job_state(const std::string& job_id) const override;
  const std::string& site_name() const override { return config_.name; }
  int total_cores() const override {
    return config_.num_slots * config_.cores_per_slot;
  }
  const pa::SampleSet& queue_waits() const override { return queue_waits_; }

  int free_slots() const { return free_slots_; }
  std::size_t preemption_count() const { return preemptions_; }

 private:
  struct PendingJob {
    std::string id;
    JobRequest request;
    double submit_time = 0.0;
    double match_ready_time = 0.0;  ///< submit + matchmaking latency
  };

  struct RunningJob {
    std::string id;
    JobRequest request;
    int slots = 0;
    double start_time = 0.0;
    sim::EventId stop_event = 0;
    sim::EventId preempt_event = 0;
    StopReason planned_reason = StopReason::kCompleted;
  };

  void try_dispatch();
  void start_job(PendingJob job);
  void stop_job(const std::string& job_id, StopReason reason);
  void arm_preemption(RunningJob& run);

  sim::Engine& engine_;
  HtcPoolConfig config_;
  pa::Rng rng_;
  std::uint64_t next_id_ = 1;
  int free_slots_;

  std::deque<PendingJob> pending_;
  std::map<std::string, RunningJob> running_;
  std::map<std::string, JobState> states_;
  std::map<std::string, int> running_per_owner_;
  pa::SampleSet queue_waits_;
  std::size_t preemptions_ = 0;
};

}  // namespace pa::infra
