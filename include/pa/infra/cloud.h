#pragma once
/// \file cloud.h
/// \brief Simulated IaaS cloud provider (EC2-like): elastic capacity with
/// stochastic VM provisioning latency and per-core-hour cost accounting.
///
/// Used by the dynamism experiments (E9, ref [63]): a cloud pilot can be
/// added at runtime, trading provisioning delay and cost against queue
/// waits on the batch system.

#include <deque>
#include <map>
#include <string>

#include "pa/common/rng.h"
#include "pa/common/stats.h"
#include "pa/infra/resource_manager.h"
#include "pa/sim/engine.h"

namespace pa::infra {

struct CloudConfig {
  std::string name = "cloud";
  /// Account-level quota in cores; requests beyond it queue.
  int quota_cores = 4096;
  NodeSpec vm;  ///< VM instance type
  /// Provisioning latency ~ Lognormal(mu, sigma) seconds;
  /// defaults give a median of ~40 s with a heavy tail, matching
  /// published EC2 startup measurements.
  double startup_mu = 3.7;
  double startup_sigma = 0.5;
  /// USD per core-hour; used by the cost model, not the scheduler.
  double cost_per_core_hour = 0.04;
  double max_walltime = 7.0 * 24.0 * 3600.0;
  std::uint64_t seed = 7;
};

/// Elastic on-demand provider. A "job" provisions `num_nodes` VMs; the job
/// starts when the slowest VM of the request is up (gang semantics, like a
/// cloud cluster launch).
class CloudProvider : public ResourceManager {
 public:
  CloudProvider(sim::Engine& engine, CloudConfig config);

  std::string submit(JobRequest request) override;
  void cancel(const std::string& job_id) override;
  JobState job_state(const std::string& job_id) const override;
  const std::string& site_name() const override { return config_.name; }
  int total_cores() const override { return config_.quota_cores; }
  const pa::SampleSet& queue_waits() const override { return queue_waits_; }

  /// Accumulated cost (USD) of all VM time used so far, including
  /// still-running VMs up to now().
  double total_cost() const;
  int cores_in_use() const { return cores_in_use_; }

 private:
  struct PendingJob {
    std::string id;
    JobRequest request;
    double submit_time = 0.0;
  };

  struct RunningJob {
    std::string id;
    JobRequest request;
    int cores = 0;
    double start_time = 0.0;     ///< when VMs were billed from
    double ready_time = 0.0;     ///< when the job's callback fired
    sim::EventId stop_event = 0;
    StopReason planned_reason = StopReason::kCompleted;
  };

  void try_provision();
  void begin_provisioning(PendingJob job);
  void stop_job(const std::string& job_id, StopReason reason);

  sim::Engine& engine_;
  CloudConfig config_;
  pa::Rng rng_;
  std::uint64_t next_id_ = 1;

  int cores_in_use_ = 0;
  std::deque<PendingJob> quota_queue_;
  std::map<std::string, RunningJob> running_;
  std::map<std::string, JobState> states_;
  std::map<std::string, bool> cancel_requested_;  ///< during provisioning

  pa::SampleSet queue_waits_;
  double billed_core_seconds_ = 0.0;
};

}  // namespace pa::infra
