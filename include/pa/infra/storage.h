#pragma once
/// \file storage.h
/// \brief Simulated storage tiers (parallel FS / object store / node-local
/// SSD) backing Pilot-Data.
///
/// A `StorageSystem` is attached to a site and holds named logical files.
/// Read/write durations come from the tier's bandwidth shared fluidly
/// among concurrent operations (reusing the network's link machinery
/// conceptually: each tier has independent read and write channels).

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "pa/common/stats.h"
#include "pa/sim/engine.h"

namespace pa::infra {

enum class StorageTier {
  kParallelFs,  ///< Lustre/GPFS-like site-wide file system
  kObjectStore, ///< S3-like
  kLocalSsd     ///< node-local scratch
};

const char* to_string(StorageTier tier);

struct StorageConfig {
  std::string name = "pfs";
  StorageTier tier = StorageTier::kParallelFs;
  std::string site;               ///< site this storage belongs to
  double capacity_bytes = 1e15;
  double read_bandwidth = 5e9;    ///< bytes/s aggregate
  double write_bandwidth = 3e9;
  double latency = 0.002;         ///< per-op latency, seconds
};

/// One storage backend. Files are logical (name -> size); contents are
/// carried by the application layer (Pilot-Data replicas reference them).
class StorageSystem {
 public:
  StorageSystem(sim::Engine& engine, StorageConfig config);

  const StorageConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }
  const std::string& site() const { return config_.site; }

  /// Creates a file entry; throws pa::ResourceError when capacity would be
  /// exceeded, pa::InvalidArgument on duplicates.
  void create_file(const std::string& path, double bytes);
  void delete_file(const std::string& path);
  bool exists(const std::string& path) const;
  double file_size(const std::string& path) const;
  double used_bytes() const { return used_bytes_; }
  double free_bytes() const { return config_.capacity_bytes - used_bytes_; }

  /// Asynchronous read of a whole file; completion after latency +
  /// size/share-of-bandwidth.
  void read(const std::string& path, std::function<void()> on_complete);
  /// Asynchronous write creating the file on completion.
  void write(const std::string& path, double bytes,
             std::function<void()> on_complete);

  /// Analytic (uncontended) estimates for planners.
  double estimate_read_seconds(double bytes) const {
    return config_.latency + bytes / config_.read_bandwidth;
  }
  double estimate_write_seconds(double bytes) const {
    return config_.latency + bytes / config_.write_bandwidth;
  }

  const pa::SampleSet& read_times() const { return read_times_; }
  const pa::SampleSet& write_times() const { return write_times_; }

 private:
  /// A fluid channel: concurrent ops share fixed bandwidth equally once
  /// past their per-op latency phase.
  struct Channel {
    double bandwidth;
    struct Op {
      double remaining;
      double start;
      bool started = false;  ///< latency phase finished, bytes flowing
      std::function<void()> done;
      sim::EventId event = 0;
    };
    std::map<std::uint64_t, Op> active;
    double last_update = 0.0;

    std::size_t started_count() const {
      std::size_t n = 0;
      for (const auto& [id, op] : active) {
        if (op.started) {
          ++n;
        }
      }
      return n;
    }
  };

  void start_op(Channel& ch, double bytes, std::function<void()> done,
                pa::SampleSet& samples);
  void advance(Channel& ch);
  void reschedule(Channel& ch, pa::SampleSet& samples);
  void complete(Channel& ch, std::uint64_t id, pa::SampleSet& samples);

  sim::Engine& engine_;
  StorageConfig config_;
  std::map<std::string, double> files_;
  double used_bytes_ = 0.0;
  Channel read_ch_;
  Channel write_ch_;
  std::uint64_t next_op_ = 1;
  pa::SampleSet read_times_;
  pa::SampleSet write_times_;
};

}  // namespace pa::infra
