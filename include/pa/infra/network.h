#pragma once
/// \file network.h
/// \brief Fluid-model wide-area network between sites.
///
/// Pilot-Data's placement decisions (experiment E3) hinge on relative
/// transfer costs. Each directed site pair is a link with fixed capacity;
/// concurrent transfers on a link share its bandwidth equally
/// (progressive-filling fluid model), so contention effects — the reason
/// data-locality matters — emerge naturally.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "pa/common/stats.h"
#include "pa/sim/engine.h"

namespace pa::infra {

/// Handle to an in-flight transfer (cancelable).
using TransferId = std::uint64_t;

struct LinkSpec {
  double bandwidth_Bps = 1.25e9;  ///< BYTES per second (capital B): 1.25e9 = a 10 Gbit/s link
  double latency = 0.05;          ///< one-way startup latency, seconds
};

/// Simulated network. Links are directed; `set_link(a, b, ...)` also sets
/// the reverse direction unless configured separately afterwards.
/// Intra-site transfers (a == b) use the loopback spec.
class NetworkModel {
 public:
  explicit NetworkModel(sim::Engine& engine);

  /// Declares/overrides a directed link. Bandwidth is in bytes/second.
  void set_link(const std::string& src, const std::string& dst, LinkSpec spec,
                bool symmetric = true);

  /// Loopback (same-site) spec; default 2 GB/s, 0.1 ms.
  void set_loopback(LinkSpec spec) { loopback_ = spec; }

  /// Starts a transfer of `bytes` from src to dst; `on_complete` fires when
  /// the last byte lands. Returns a handle usable with `cancel`.
  TransferId transfer(const std::string& src, const std::string& dst,
                      double bytes, std::function<void()> on_complete);

  /// Cancels an in-flight transfer; returns false if already complete.
  bool cancel(TransferId id);

  /// Analytic transfer time for planning: latency + bytes/bandwidth,
  /// ignoring contention. Used by data-aware schedulers as a cost estimate.
  double estimate_seconds(const std::string& src, const std::string& dst,
                          double bytes) const;

  /// Number of in-flight transfers on the (src, dst) link.
  int active_on_link(const std::string& src, const std::string& dst) const;

  /// Completed transfer durations (seconds).
  const pa::SampleSet& transfer_times() const { return transfer_times_; }

 private:
  struct Transfer {
    TransferId id;
    double remaining_bytes;
    double start_time;
    bool started = false;  ///< latency phase finished
    std::function<void()> on_complete;
    sim::EventId event = 0;
  };

  struct Link {
    LinkSpec spec;
    std::map<TransferId, Transfer> active;
    double last_update = 0.0;

    /// Equal share among transfers past their latency phase.
    double rate_per_transfer() const {
      std::size_t n = 0;
      for (const auto& [id, t] : active) {
        if (t.started) {
          ++n;
        }
      }
      return n == 0 ? spec.bandwidth_Bps
                    : spec.bandwidth_Bps / static_cast<double>(n);
    }
  };

  using LinkKey = std::pair<std::string, std::string>;

  const LinkSpec& spec_for(const std::string& src,
                           const std::string& dst) const;
  Link& link_for(const std::string& src, const std::string& dst);
  void advance_link(Link& link);
  void reschedule_link(Link& link);
  void complete_transfer(Link& link, TransferId id);

  sim::Engine& engine_;
  LinkSpec loopback_{2.0e9, 0.0001};
  std::map<LinkKey, LinkSpec> specs_;
  std::map<LinkKey, Link> links_;
  std::map<TransferId, LinkKey> transfer_link_;
  TransferId next_id_ = 1;
  pa::SampleSet transfer_times_;
};

}  // namespace pa::infra
