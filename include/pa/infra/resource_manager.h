#pragma once
/// \file resource_manager.h
/// \brief Abstract local-resource-management-system (LRMS) interface that
/// every simulated infrastructure implements.
///
/// The SAGA adaptor layer (paper Sec. IV-B, ref [70]) binds to this
/// interface, giving the pilot middleware a uniform submission surface
/// across batch clusters, HTC pools, clouds and serverless platforms.

#include <string>

#include "pa/common/stats.h"
#include "pa/infra/types.h"

namespace pa::infra {

/// Interface of a simulated LRMS.
class ResourceManager {
 public:
  virtual ~ResourceManager() = default;

  /// Submits a job; returns a site-unique job id. The request's callbacks
  /// fire from simulation events.
  virtual std::string submit(JobRequest request) = 0;

  /// Cancels a queued or running job; no-op for final jobs.
  virtual void cancel(const std::string& job_id) = 0;

  /// Current state; throws pa::NotFound for unknown ids.
  virtual JobState job_state(const std::string& job_id) const = 0;

  /// Site identifier ("stampede-sim", "osg-pool", ...).
  virtual const std::string& site_name() const = 0;

  /// Total cores the site could ever allocate (quota for clouds).
  virtual int total_cores() const = 0;

  /// Queue-wait samples (seconds between submit and start) of all jobs
  /// started so far — the key pilot-overhead input.
  virtual const pa::SampleSet& queue_waits() const = 0;
};

}  // namespace pa::infra
