#pragma once
/// \file background_load.h
/// \brief Synthetic competing workload for simulated resource managers.
///
/// Production queue waits exist because other people's jobs are in the
/// queue. `BackgroundLoad` reproduces that: a Poisson arrival process of
/// jobs with lognormal sizes and runtimes, tuned so the target system runs
/// at a configurable utilization. This is the "simulate the testbed"
/// substitution for the paper's production HPC machines (DESIGN.md).

#include <cstdint>
#include <memory>
#include <string>

#include "pa/common/rng.h"
#include "pa/infra/resource_manager.h"
#include "pa/sim/engine.h"

namespace pa::infra {

struct BackgroundLoadConfig {
  /// Mean inter-arrival seconds between background jobs.
  double mean_interarrival = 120.0;
  /// Job node counts ~ round(Lognormal(mu, sigma)), clamped to [1, max].
  double nodes_mu = 1.5;
  double nodes_sigma = 1.0;
  int max_nodes = 64;
  /// Runtime ~ Lognormal(mu, sigma) seconds; defaults give median ~1 h.
  double runtime_mu = 8.2;
  double runtime_sigma = 1.0;
  /// Requested walltime = runtime * this factor (users over-request).
  double walltime_factor = 1.5;
  std::uint64_t seed = 1234;
};

/// Drives a Poisson job stream into a ResourceManager for the lifetime of
/// the object (or until `stop()`).
class BackgroundLoad {
 public:
  BackgroundLoad(sim::Engine& engine, ResourceManager& target,
                 BackgroundLoadConfig config);
  ~BackgroundLoad();
  BackgroundLoad(const BackgroundLoad&) = delete;
  BackgroundLoad& operator=(const BackgroundLoad&) = delete;

  void start();
  void stop();
  std::size_t jobs_submitted() const { return submitted_; }

  /// Helper: a config whose offered load approximates `utilization` of
  /// `total_nodes` nodes (M/G/c heuristic: arrival_rate * E[nodes] *
  /// E[runtime] = utilization * total_nodes).
  static BackgroundLoadConfig for_utilization(double utilization,
                                              int total_nodes,
                                              std::uint64_t seed = 1234);

 private:
  void arm_next();
  void submit_one();

  sim::Engine& engine_;
  ResourceManager& target_;
  BackgroundLoadConfig config_;
  pa::Rng rng_;
  bool running_ = false;
  sim::EventId pending_ = 0;
  std::size_t submitted_ = 0;
};

}  // namespace pa::infra
