#pragma once
/// \file serverless.h
/// \brief Simulated FaaS platform (Lambda-like) with cold/warm starts.
///
/// Pilot-Streaming's serverless backend (refs [32], [73]) processes stream
/// batches as function invocations. The performance-relevant behaviour is
/// the cold-start penalty, container keep-alive reuse, and a concurrency
/// limit — all modeled here.

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "pa/common/rng.h"
#include "pa/common/stats.h"
#include "pa/infra/resource_manager.h"
#include "pa/sim/engine.h"

namespace pa::infra {

struct ServerlessConfig {
  std::string name = "faas";
  int concurrency_limit = 1000;
  /// Cold start ~ Lognormal; defaults: median ~250 ms, tail to seconds.
  double cold_start_mu = -1.4;
  double cold_start_sigma = 0.6;
  double warm_start_latency = 0.010;
  /// Idle containers are recycled after this many seconds.
  double keepalive = 600.0;
  /// Hard per-invocation duration cap (Lambda: 900 s).
  double max_duration = 900.0;
  /// USD per GB-second; with `function_gb` gives invocation cost.
  double cost_per_gb_second = 0.0000166667;
  double function_gb = 1.0;
  std::uint64_t seed = 11;
};

/// FaaS platform exposed through the ResourceManager interface: a "job"
/// with `num_nodes == 1` is one invocation. `walltime_limit` is clamped to
/// `max_duration`; a queued invocation waits only for concurrency.
class ServerlessPlatform : public ResourceManager {
 public:
  ServerlessPlatform(sim::Engine& engine, ServerlessConfig config);

  std::string submit(JobRequest request) override;
  void cancel(const std::string& job_id) override;
  JobState job_state(const std::string& job_id) const override;
  const std::string& site_name() const override { return config_.name; }
  int total_cores() const override { return config_.concurrency_limit; }
  const pa::SampleSet& queue_waits() const override { return queue_waits_; }

  std::size_t cold_starts() const { return cold_starts_; }
  std::size_t warm_starts() const { return warm_starts_; }
  double total_cost() const { return billed_gb_seconds_ * config_.cost_per_gb_second; }
  int active_invocations() const { return active_; }
  /// Warm containers currently idle (after expiry sweep).
  std::size_t warm_pool_size();

 private:
  struct PendingInvocation {
    std::string id;
    JobRequest request;
    double submit_time = 0.0;
  };

  struct RunningInvocation {
    std::string id;
    JobRequest request;
    double start_time = 0.0;
    sim::EventId stop_event = 0;
    StopReason planned_reason = StopReason::kCompleted;
  };

  void try_dispatch();
  void start_invocation(PendingInvocation inv);
  void stop_invocation(const std::string& id, StopReason reason);
  void sweep_warm_pool();

  sim::Engine& engine_;
  ServerlessConfig config_;
  pa::Rng rng_;
  std::uint64_t next_id_ = 1;

  int active_ = 0;
  std::deque<PendingInvocation> pending_;
  std::map<std::string, RunningInvocation> running_;
  std::map<std::string, JobState> states_;
  /// Expiry times of idle warm containers (min-first).
  std::deque<double> warm_expiries_;

  pa::SampleSet queue_waits_;
  std::size_t cold_starts_ = 0;
  std::size_t warm_starts_ = 0;
  double billed_gb_seconds_ = 0.0;
};

}  // namespace pa::infra
