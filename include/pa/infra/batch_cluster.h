#pragma once
/// \file batch_cluster.h
/// \brief Simulated HPC cluster with a PBS/SLURM-like batch scheduler
/// (FCFS + EASY backfill) and whole-node allocation.
///
/// This is the stand-in for the production HPC testbeds (XSEDE-class
/// machines) used throughout the pilot-abstraction evaluations. Queue
/// waits emerge from competing load (see `BackgroundLoad`), which is what
/// makes the pilot's late binding measurably valuable in experiment E1.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "pa/common/stats.h"
#include "pa/infra/resource_manager.h"
#include "pa/obs/metrics.h"
#include "pa/sim/engine.h"

namespace pa::infra {

/// Static configuration of a simulated batch cluster.
struct BatchClusterConfig {
  std::string name = "hpc-sim";
  int num_nodes = 128;
  NodeSpec node;
  /// If true, use EASY backfill behind the FCFS head reservation;
  /// if false, strict FCFS (jobs never jump the queue).
  bool enable_backfill = true;
  /// Upper bound the site enforces on requested walltime (seconds).
  double max_walltime = 48.0 * 3600.0;
  /// Scheduling-cycle period (seconds). Production LRMS schedulers run
  /// periodically (PBS/SLURM: 30-120 s); 0 = schedule on every event
  /// (idealized, the default for unit tests).
  double scheduler_cycle = 0.0;
  /// Max concurrently *running* jobs per owner (0 = unlimited), as
  /// production sites enforce; jobs over the limit are skipped without
  /// blocking other owners' jobs.
  int max_running_per_owner = 0;
};

/// PBS/SLURM-like simulated cluster.
///
/// Scheduling model:
///  * whole-node allocation: a job asks for `num_nodes` nodes;
///  * FCFS order with an EASY-backfill reservation for the queue head:
///    a later job may start immediately iff it fits in the currently free
///    nodes and does not delay the head job's guaranteed start time
///    (computed from running jobs' walltime limits);
///  * walltime enforcement: running jobs are killed at their limit.
class BatchCluster : public ResourceManager {
 public:
  BatchCluster(sim::Engine& engine, BatchClusterConfig config);

  std::string submit(JobRequest request) override;
  void cancel(const std::string& job_id) override;
  JobState job_state(const std::string& job_id) const override;
  const std::string& site_name() const override { return config_.name; }
  int total_cores() const override {
    return config_.num_nodes * config_.node.cores;
  }
  const pa::SampleSet& queue_waits() const override { return queue_waits_; }

  const BatchClusterConfig& config() const { return config_; }

  /// Nodes currently idle.
  int free_nodes() const { return static_cast<int>(free_node_ids_.size()); }
  /// Jobs waiting in the queue.
  std::size_t queue_length() const { return queue_.size(); }
  /// Jobs currently running.
  std::size_t running_jobs() const { return running_.size(); }

  /// Core-seconds actually occupied so far (integrated busy time).
  double busy_node_seconds() const;
  /// Average utilization over [0, now] in [0, 1].
  double utilization() const;

  /// Estimate of when a job of `num_nodes` submitted now would start,
  /// assuming current queue and walltime limits hold (used by cost-aware
  /// pilot placement). Returns simulated absolute time.
  double estimate_start_time(int num_nodes) const;

  /// Exports queue-wait histograms, utilization/queue gauges, and
  /// job/backfill/schedule-pass counters into `metrics` under
  /// "batch.<name>.". Pass nullptr to detach. The registry must outlive
  /// the cluster (or the detach).
  void attach_metrics(obs::MetricsRegistry* metrics);

  /// Number of schedule_pass() invocations so far. Event-driven passes are
  /// coalesced per timestamp, so a burst of N same-time submits costs one
  /// pass, not N (the pre-coalescing behaviour was quadratic in N).
  std::uint64_t schedule_passes() const { return schedule_pass_count_; }

 private:
  struct QueuedJob {
    std::string id;
    JobRequest request;
    double submit_time = 0.0;
  };

  struct RunningJob {
    std::string id;
    JobRequest request;
    std::vector<int> node_ids;
    double start_time = 0.0;
    double kill_time = 0.0;  ///< start + min(duration, walltime)
    StopReason planned_reason = StopReason::kCompleted;
    sim::EventId stop_event = 0;
  };

  std::string next_job_id();
  /// Requests a scheduling pass: immediate in event-driven mode, aligned
  /// to the next cycle boundary when scheduler_cycle > 0.
  void request_schedule_pass();
  void schedule_pass();
  bool owner_at_limit(const std::string& owner) const;
  void start_job(QueuedJob job, std::vector<int> nodes);
  void stop_job(const std::string& job_id, StopReason reason);
  std::vector<int> take_nodes(int count);
  void release_nodes(const std::vector<int>& nodes);
  void account_busy(double until);

  sim::Engine& engine_;
  BatchClusterConfig config_;
  std::uint64_t next_id_ = 1;

  std::set<int> free_node_ids_;
  std::deque<QueuedJob> queue_;
  std::map<std::string, RunningJob> running_;
  std::map<std::string, JobState> states_;

  pa::SampleSet queue_waits_;
  double busy_node_seconds_ = 0.0;
  double last_account_time_ = 0.0;
  int busy_nodes_ = 0;
  std::map<std::string, int> running_per_owner_;
  bool cycle_pass_pending_ = false;
  /// Coalesces the event-driven (scheduler_cycle == 0) path the same way
  /// cycle_pass_pending_ coalesces the periodic path: N submits/stops at
  /// one timestamp request one pass, not N.
  bool event_pass_pending_ = false;
  std::uint64_t schedule_pass_count_ = 0;

  obs::MetricsRegistry* metrics_ = nullptr;
  std::string metric_prefix_;
};

}  // namespace pa::infra
