#pragma once
/// \file types.h
/// \brief Common vocabulary for simulated infrastructure: jobs, states,
/// allocations.
///
/// These model the *local resource management system* (LRMS) layer the
/// pilot-abstraction sits above: PBS/SLURM-like batch queues, Condor-like
/// HTC pools, IaaS clouds and FaaS platforms (paper Sec. IV, Table II
/// "Infrastructure" row).

#include <functional>
#include <string>
#include <vector>

namespace pa::infra {

/// Lifecycle of an LRMS job (the underlying placeholder a pilot runs in).
enum class JobState {
  kNew,      ///< created, not yet accepted
  kQueued,   ///< waiting for resources
  kRunning,  ///< nodes allocated, job active
  kDone,     ///< finished normally
  kFailed,   ///< infrastructure failure / preemption without requeue
  kCanceled  ///< cancelled by the submitter
};

const char* to_string(JobState s);

/// Why a running job stopped.
enum class StopReason {
  kCompleted,  ///< ran to its declared duration
  kCanceled,   ///< submitter cancelled it
  kWalltime,   ///< hit the walltime limit and was killed by the LRMS
  kPreempted   ///< evicted by the infrastructure (HTC pools, spot VMs)
};

const char* to_string(StopReason r);

/// Nodes handed to a started job.
struct Allocation {
  std::string site;           ///< resource manager name
  std::vector<int> node_ids;  ///< which nodes (site-local ids)
  int cores_per_node = 1;

  int total_cores() const {
    return static_cast<int>(node_ids.size()) * cores_per_node;
  }
};

/// A request to the LRMS. `duration < 0` means "run until cancelled or
/// walltime" — this is exactly how a pilot placeholder job behaves; jobs
/// with a known duration model ordinary (and background) workload.
struct JobRequest {
  std::string name;
  /// Submitting user; sites may enforce per-owner running-job limits
  /// (empty = anonymous, shares one bucket).
  std::string owner;
  int num_nodes = 1;
  double walltime_limit = 3600.0;  ///< seconds; LRMS kills the job after this
  double duration = -1.0;          ///< actual runtime; <0 = open-ended

  /// Invoked when nodes are allocated and the job starts.
  std::function<void(const std::string& job_id, const Allocation&)> on_started;
  /// Invoked exactly once when the job leaves the running state (or is
  /// cancelled while queued, with the reason kCanceled).
  std::function<void(const std::string& job_id, StopReason)> on_stopped;
};

/// Description of one node class of a site.
struct NodeSpec {
  int cores = 16;
  double mem_gb = 64.0;
  double gflops = 500.0;  ///< per-node peak; used by duration scaling
};

}  // namespace pa::infra
