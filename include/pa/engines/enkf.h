#pragma once
/// \file enkf.h
/// \brief Ensemble Kalman Filter driver — the autonomic history-matching
/// case study of paper Table II (Eval 4, ref [50] "Developing autonomic
/// distributed scientific applications ... ensemble Kalman-filters").
///
/// The observation operator reads the first component of each 2-D
/// dynamics block (obs j -> state 2j), so every block is observable.
/// A hidden linear system evolves; at each assimilation cycle every
/// ensemble member is forecast by its own compute unit (task-parallel
/// bag, exactly how the original application ran reservoir models), then
/// the driver performs the EnKF analysis step (perturbed-observation
/// update) and the loop continues. A free-running ensemble (no
/// assimilation) is tracked alongside as the control — assimilation must
/// beat it.
///
/// The dynamics are a damped block-rotation system: stable, oscillatory,
/// and high-dimensional enough that the filter has real work to do.

#include <cstdint>
#include <vector>

#include "pa/common/rng.h"
#include "pa/core/pilot_compute_service.h"

namespace pa::engines {

struct EnKFConfig {
  int state_dim = 8;      ///< must be even (block-rotation dynamics)
  int obs_dim = 4;        ///< observes state component 2j per obs j (<= state_dim/2)
  int ensemble_size = 40;
  int cycles = 25;        ///< assimilation cycles
  double damping = 0.98;      ///< spectral radius of the dynamics
  double rotation = 0.3;      ///< radians per step per 2-D block
  double process_noise = 0.05;
  double obs_noise = 0.1;
  /// Real CPU seconds each member forecast burns (models the reservoir
  /// simulation; 0 for pure-logic tests).
  double member_compute_seconds = 0.0;
  std::uint64_t seed = 4242;
  double timeout_seconds = 600.0;
};

struct EnKFResult {
  /// RMSE of the assimilated ensemble mean vs the hidden truth, per cycle.
  std::vector<double> rmse_assimilated;
  /// RMSE of the free-running (no assimilation) ensemble mean, per cycle.
  std::vector<double> rmse_free;
  /// Ensemble spread (mean member deviation) at the end.
  double final_spread = 0.0;
  double makespan = 0.0;

  double mean_rmse_assimilated() const;
  double mean_rmse_free() const;
};

/// Runs the twin experiment through the Pilot-API.
class EnKFDriver {
 public:
  explicit EnKFDriver(EnKFConfig config);

  EnKFResult run(core::PilotComputeService& service);

  const EnKFConfig& config() const { return config_; }

 private:
  /// x' = A x (damped block rotations).
  std::vector<double> step_dynamics(const std::vector<double>& x) const;

  /// EnKF analysis with perturbed observations; updates members in place.
  void analysis(std::vector<std::vector<double>>& members,
                const std::vector<double>& observation, pa::Rng& rng) const;

  EnKFConfig config_;
};

}  // namespace pa::engines
