#pragma once
/// \file mapreduce.h
/// \brief Pilot-MapReduce: a MapReduce engine whose map and reduce tasks
/// are compute units on a pilot (paper ref [54], Table I "Data-Parallel").
///
/// The engine reproduces the classic three phases:
///  1. **map** — the input is split into `map_tasks` chunks; one unit per
///     chunk runs the user mapper, emitting (K, V) pairs into per-reducer
///     hash buckets;
///  2. **shuffle** — bucket b of every mapper is handed to reducer b
///     (in-process move; the engine reports shuffled bytes);
///  3. **reduce** — one unit per reducer groups its bucket by key and runs
///     the user reducer.
/// Header-only template so K/V types are first-class.

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pa/common/error.h"
#include "pa/common/time_utils.h"
#include "pa/core/pilot_compute_service.h"

namespace pa::engines {

struct MapReduceConfig {
  int map_tasks = 8;
  int reduce_tasks = 4;
  double timeout_seconds = 600.0;
};

struct MapReduceStats {
  double map_seconds = 0.0;
  double reduce_seconds = 0.0;
  double total_seconds = 0.0;
  std::size_t pairs_emitted = 0;
  std::size_t distinct_keys = 0;
};

/// Collects (K, V) emissions from one map task.
template <typename K, typename V>
class Emitter {
 public:
  explicit Emitter(std::size_t num_buckets) : buckets_(num_buckets) {}

  void emit(K key, V value) {
    const std::size_t b = std::hash<K>{}(key) % buckets_.size();
    buckets_[b].emplace_back(std::move(key), std::move(value));
  }

  std::vector<std::vector<std::pair<K, V>>>& buckets() { return buckets_; }

 private:
  std::vector<std::vector<std::pair<K, V>>> buckets_;
};

/// A complete MapReduce job. `Input` is one input record; the engine
/// splits a vector of records across map tasks.
template <typename Input, typename K, typename V, typename Result>
class MapReduceJob {
 public:
  using Mapper = std::function<void(const Input&, Emitter<K, V>&)>;
  using Reducer = std::function<Result(const K&, std::vector<V>&)>;

  MapReduceJob(Mapper mapper, Reducer reducer, MapReduceConfig config = {})
      : mapper_(std::move(mapper)),
        reducer_(std::move(reducer)),
        config_(config) {
    PA_REQUIRE_ARG(config_.map_tasks > 0, "need map tasks");
    PA_REQUIRE_ARG(config_.reduce_tasks > 0, "need reduce tasks");
  }

  /// Runs the job through `service` (which must have an active pilot on a
  /// LocalRuntime). Returns the reduced output keyed by K.
  std::map<K, Result> run(core::PilotComputeService& service,
                          const std::vector<Input>& inputs) {
    const pa::Stopwatch total_clock;
    const std::size_t r = static_cast<std::size_t>(config_.reduce_tasks);
    const std::size_t m = static_cast<std::size_t>(config_.map_tasks);

    // Shared shuffle space: [reducer][mapper] -> bucket. Each (reducer,
    // mapper) slot is written by exactly one map unit, so slots need no
    // locking; the barrier between phases orders the accesses.
    auto shuffle = std::make_shared<
        std::vector<std::vector<std::vector<std::pair<K, V>>>>>(
        r, std::vector<std::vector<std::pair<K, V>>>(m));

    // ---- map phase ----
    const pa::Stopwatch map_clock;
    std::vector<core::ComputeUnit> map_units;
    map_units.reserve(m);
    for (std::size_t t = 0; t < m; ++t) {
      // Contiguous slice [begin, end) of the input for this task.
      const std::size_t begin = inputs.size() * t / m;
      const std::size_t end = inputs.size() * (t + 1) / m;
      core::ComputeUnitDescription d;
      d.name = "map-" + std::to_string(t);
      d.cores = 1;
      d.work = [this, &inputs, begin, end, t, r, shuffle]() {
        Emitter<K, V> emitter(r);
        for (std::size_t i = begin; i < end; ++i) {
          mapper_(inputs[i], emitter);
        }
        for (std::size_t b = 0; b < r; ++b) {
          (*shuffle)[b][t] = std::move(emitter.buckets()[b]);
        }
      };
      map_units.push_back(service.submit_unit(d));
    }
    wait_all(map_units, "map");
    stats_.map_seconds = map_clock.elapsed();

    // ---- reduce phase ----
    const pa::Stopwatch reduce_clock;
    auto results = std::make_shared<std::vector<std::map<K, Result>>>(r);
    auto pair_counts = std::make_shared<std::vector<std::size_t>>(r, 0);
    std::vector<core::ComputeUnit> reduce_units;
    reduce_units.reserve(r);
    for (std::size_t b = 0; b < r; ++b) {
      core::ComputeUnitDescription d;
      d.name = "reduce-" + std::to_string(b);
      d.cores = 1;
      d.work = [this, b, shuffle, results, pair_counts]() {
        std::map<K, std::vector<V>> grouped;
        for (auto& bucket : (*shuffle)[b]) {
          (*pair_counts)[b] += bucket.size();
          for (auto& [k, v] : bucket) {
            grouped[std::move(k)].push_back(std::move(v));
          }
          bucket.clear();
          bucket.shrink_to_fit();
        }
        for (auto& [k, vs] : grouped) {
          (*results)[b].emplace(k, reducer_(k, vs));
        }
      };
      reduce_units.push_back(service.submit_unit(d));
    }
    wait_all(reduce_units, "reduce");
    stats_.reduce_seconds = reduce_clock.elapsed();

    std::map<K, Result> merged;
    for (auto& part : *results) {
      merged.merge(part);
    }
    stats_.distinct_keys = merged.size();
    stats_.pairs_emitted = 0;
    for (const std::size_t c : *pair_counts) {
      stats_.pairs_emitted += c;
    }
    stats_.total_seconds = total_clock.elapsed();
    return merged;
  }

  const MapReduceStats& stats() const { return stats_; }

 private:
  void wait_all(std::vector<core::ComputeUnit>& units, const char* phase) {
    for (auto& unit : units) {
      const core::UnitState s = unit.wait(config_.timeout_seconds);
      if (s != core::UnitState::kDone) {
        throw Error(std::string("mapreduce ") + phase + " unit " + unit.id() +
                    " ended in state " + core::to_string(s));
      }
    }
  }

  Mapper mapper_;
  Reducer reducer_;
  MapReduceConfig config_;
  MapReduceStats stats_;
};

/// Reference single-threaded execution used by correctness tests: must
/// produce exactly the same output as `MapReduceJob::run`.
template <typename Input, typename K, typename V, typename Result>
std::map<K, Result> mapreduce_serial(
    const std::vector<Input>& inputs,
    const std::function<void(const Input&, Emitter<K, V>&)>& mapper,
    const std::function<Result(const K&, std::vector<V>&)>& reducer) {
  Emitter<K, V> emitter(1);
  for (const auto& in : inputs) {
    mapper(in, emitter);
  }
  std::map<K, std::vector<V>> grouped;
  for (auto& [k, v] : emitter.buckets()[0]) {
    grouped[std::move(k)].push_back(std::move(v));
  }
  std::map<K, Result> out;
  for (auto& [k, vs] : grouped) {
    out.emplace(k, reducer(k, vs));
  }
  return out;
}

}  // namespace pa::engines
