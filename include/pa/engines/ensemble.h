#pragma once
/// \file ensemble.h
/// \brief Replica-exchange ensemble driver — the task-parallel case study
/// the pilot-abstraction grew out of (paper Sec. IV-A; refs [48], [72]).
///
/// G generations; each generation runs R replica units (an MD burst) and
/// then a centralized exchange step that swaps temperatures between
/// neighbouring replicas with Metropolis acceptance on their energies.
/// Replica energies follow a temperature-dependent random walk, so the
/// exchange dynamics (acceptance decaying with temperature gap) are
/// physical enough to test against.
///
/// The driver runs on either runtime: on the simulated one, replica units
/// carry declared durations (optionally noisy) and the exchange is a
/// 1-core unit of the model's exchange time; on the local one, replicas
/// burn real CPU.

#include <cstdint>
#include <vector>

#include "pa/common/rng.h"
#include "pa/core/pilot_compute_service.h"

namespace pa::engines {

struct ReplicaExchangeConfig {
  int replicas = 16;
  int generations = 10;
  int cores_per_replica = 1;
  /// Per-generation MD burst duration (simulated seconds, or real CPU
  /// seconds on the local runtime).
  double md_duration = 10.0;
  /// Relative noise on md_duration (0 = deterministic; used to study
  /// barrier imbalance).
  double md_noise = 0.0;
  /// Exchange step cost model: base + per_replica * R.
  double exchange_base = 0.5;
  double exchange_per_replica = 0.01;
  /// Temperature ladder: T_i = t_min * (t_max/t_min)^(i/(R-1)).
  double t_min = 300.0;
  double t_max = 600.0;
  std::uint64_t seed = 99;
  double timeout_seconds = 1e9;
};

struct ReplicaExchangeResult {
  double makespan = 0.0;
  std::vector<double> generation_seconds;
  std::size_t exchanges_attempted = 0;
  std::size_t exchanges_accepted = 0;
  /// Final per-replica energies (index = replica).
  std::vector<double> energies;
  /// Final temperature of each replica (tracks swaps).
  std::vector<double> temperatures;

  double acceptance_rate() const {
    return exchanges_attempted == 0
               ? 0.0
               : static_cast<double>(exchanges_accepted) /
                     static_cast<double>(exchanges_attempted);
  }
};

class ReplicaExchangeDriver {
 public:
  explicit ReplicaExchangeDriver(ReplicaExchangeConfig config);

  /// Runs the full ensemble through `service`. The service's runtime
  /// decides whether the MD bursts are simulated or real.
  ReplicaExchangeResult run(core::PilotComputeService& service);

  const ReplicaExchangeConfig& config() const { return config_; }

 private:
  /// One Metropolis sweep over neighbour pairs (alternating parity per
  /// generation, as standard REMD does).
  void exchange_sweep(int generation, std::vector<double>& energies,
                      std::vector<double>& temperatures,
                      ReplicaExchangeResult& result);

  ReplicaExchangeConfig config_;
  pa::Rng rng_;
};

}  // namespace pa::engines
