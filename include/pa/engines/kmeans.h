#pragma once
/// \file kmeans.h
/// \brief K-means primitives: the iterative-ML workload every pilot paper
/// uses as its canonical case study (Table I "Iterative"; refs [55], [66]).
///
/// Pure algorithm layer (no middleware): data generation, assignment step,
/// partial-sum accumulation for distributed updates, convergence check.
/// The distributed driver lives in iterative.h.

#include <cstdint>
#include <string>
#include <vector>

namespace pa::engines {

/// Row-major point set: `dim` doubles per point.
struct PointBlock {
  std::size_t dim = 0;
  std::vector<double> values;  ///< size = count * dim

  std::size_t count() const { return dim == 0 ? 0 : values.size() / dim; }
  const double* point(std::size_t i) const { return values.data() + i * dim; }
};

/// Partial statistics a worker produces over its partition: per-cluster
/// coordinate sums and counts, plus the partition's inertia contribution.
struct KMeansPartial {
  std::size_t k = 0;
  std::size_t dim = 0;
  std::vector<double> sums;    ///< k * dim
  std::vector<std::size_t> counts;  ///< k
  double inertia = 0.0;

  KMeansPartial() = default;
  KMeansPartial(std::size_t k_, std::size_t dim_)
      : k(k_), dim(dim_), sums(k_ * dim_, 0.0), counts(k_, 0) {}

  void merge(const KMeansPartial& other);
};

/// Centroid set, row-major (k * dim).
struct Centroids {
  std::size_t k = 0;
  std::size_t dim = 0;
  std::vector<double> values;

  const double* centroid(std::size_t c) const { return values.data() + c * dim; }
};

/// Assigns each point of `block` to its nearest centroid and accumulates
/// partial sums; the hot loop of the workload.
KMeansPartial kmeans_assign(const PointBlock& block, const Centroids& centroids);

/// Produces updated centroids from merged partials. Empty clusters keep
/// their previous position (standard Lloyd handling).
Centroids kmeans_update(const KMeansPartial& merged, const Centroids& previous);

/// Max movement of any centroid between two sets (convergence metric).
double centroid_shift(const Centroids& a, const Centroids& b);

/// Generates `n` points around `k` well-separated Gaussian cluster centers
/// in `dim` dimensions; `separation` controls center spacing relative to
/// the within-cluster stddev (>= ~6 yields cleanly separable data that
/// tests can assert convergence on).
PointBlock generate_clustered_points(std::size_t n, std::size_t k,
                                     std::size_t dim, std::uint64_t seed,
                                     double separation = 8.0);

/// Picks `k` initial centroids from the data (every n/k-th point:
/// deterministic, spread across clusters for generated data).
Centroids initial_centroids(const PointBlock& block, std::size_t k);

/// Serializes a block to a byte string and back. The uncached iterative
/// baseline re-decodes its partitions every generation, paying the real
/// deserialization cost Pilot-Memory avoids (experiment E5).
std::string serialize_points(const PointBlock& block);
PointBlock deserialize_points(const std::string& bytes);

/// Single-process reference implementation for correctness tests.
struct KMeansReferenceResult {
  Centroids centroids;
  double inertia = 0.0;
  int iterations = 0;
};
KMeansReferenceResult kmeans_reference(const PointBlock& block, std::size_t k,
                                       int max_iterations, double tolerance);

}  // namespace pa::engines
