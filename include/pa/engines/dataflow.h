#pragma once
/// \file dataflow.h
/// \brief Dataflow engine: multi-stage DAG pipelines over compute units
/// (paper Table I "Dataflow"; the Dryad/LGDF2 lineage of Sec. III-A).
///
/// A graph is a set of stages; each stage has a parallelism (task count)
/// and a body executed once per task index. A stage becomes runnable when
/// all of its upstream stages finished. Stages exchange data through the
/// shared Pilot-Memory store handed to every task in its context.

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "pa/core/pilot_compute_service.h"
#include "pa/mem/in_memory_store.h"

namespace pa::engines {

/// What a dataflow task sees.
struct StageContext {
  int task_index = 0;
  int parallelism = 1;
  mem::InMemoryStore* store = nullptr;  ///< inter-stage data plane
};

using StageBody = std::function<void(const StageContext&)>;

struct StageResult {
  std::string name;
  double seconds = 0.0;  ///< barrier-to-barrier stage time
  int tasks = 0;
};

struct DataflowResult {
  double total_seconds = 0.0;
  std::vector<StageResult> stages;  ///< in completion order
};

/// DAG of named stages. Build the graph, then `run` it to completion.
class DataflowGraph {
 public:
  explicit DataflowGraph(mem::InMemoryStore& store);

  /// Adds a stage; `dependencies` are names of previously added stages.
  /// Throws pa::InvalidArgument on duplicate names, unknown dependencies
  /// or parallelism < 1 (cycles are impossible by construction since
  /// dependencies must already exist).
  void add_stage(const std::string& name, int parallelism, StageBody body,
                 const std::vector<std::string>& dependencies = {});

  std::size_t stage_count() const { return stages_.size(); }

  /// Executes the graph on `service` (active LocalRuntime pilot).
  /// Independent stages run concurrently (their units interleave on the
  /// pilot); each stage completes before its dependents start.
  DataflowResult run(core::PilotComputeService& service,
                     double timeout_seconds = 600.0);

  /// Topological order (by dependency level, then insertion). Exposed for
  /// testing and for tools that visualize the plan.
  std::vector<std::string> topological_order() const;

 private:
  struct Stage {
    std::string name;
    int parallelism = 1;
    StageBody body;
    std::set<std::string> deps;
    std::size_t order = 0;  ///< insertion index
  };

  mem::InMemoryStore& store_;
  std::map<std::string, Stage> stages_;
  std::size_t next_order_ = 0;
};

}  // namespace pa::engines
