#pragma once
/// \file iterative.h
/// \brief Iterative engine: generation-based execution with Pilot-Memory
/// caching (paper Table I "Iterative", refs [60], [68]).
///
/// Each generation submits one compute unit per data partition; partials
/// are merged by the driver, the model (centroids) is broadcast through
/// the store, and the loop continues until convergence. Two data paths:
///  * **cached** — partitions are decoded once into Pilot-Memory and
///    reused every generation;
///  * **uncached** — every generation re-decodes its partition from the
///    serialized bytes, modelling the re-read from storage that
///    pre-caching runtimes pay (E5's baseline).

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pa/core/pilot_compute_service.h"
#include "pa/engines/kmeans.h"
#include "pa/mem/in_memory_store.h"

namespace pa::engines {

struct KMeansJobConfig {
  std::size_t k = 4;
  int max_iterations = 50;
  double tolerance = 1e-4;
  int partitions = 8;
  bool use_cache = true;       ///< Pilot-Memory on/off (the E5 ablation)
  /// Models the storage tier the partitions are (re)read from: every load
  /// additionally occupies the core for bytes/bandwidth seconds, the way
  /// a blocking read from Lustre/HDFS would. 0 disables (pure in-memory
  /// decode). Applies to both modes — cached pays it once, uncached every
  /// generation.
  double reload_bandwidth_bytes_per_s = 0.0;
  double timeout_seconds = 600.0;
};

struct KMeansJobResult {
  Centroids centroids;
  double inertia = 0.0;
  int iterations = 0;
  double total_seconds = 0.0;
  double load_seconds = 0.0;     ///< time spent (de)serializing partitions
  std::vector<double> iteration_seconds;
};

/// Distributed K-means over the Pilot-API.
class KMeansEngine {
 public:
  /// `store` backs the cached path; it may be shared with other engines.
  KMeansEngine(core::PilotComputeService& service, mem::InMemoryStore& store);

  /// Registers the dataset: splits `block` into `config.partitions`
  /// serialized partitions under `dataset` keys. Call once per dataset.
  void load_dataset(const std::string& dataset, const PointBlock& block,
                    int partitions);

  /// Runs Lloyd iterations until convergence or max_iterations.
  KMeansJobResult run(const std::string& dataset,
                      const KMeansJobConfig& config);

 private:
  struct PartitionSet {
    std::vector<std::string> serialized;  ///< the "on-disk" representation
    std::size_t dim = 0;
    std::size_t total_points = 0;
  };

  core::PilotComputeService& service_;
  mem::InMemoryStore& store_;
  std::map<std::string, PartitionSet> datasets_;
};

}  // namespace pa::engines
