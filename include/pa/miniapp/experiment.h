#pragma once
/// \file experiment.h
/// \brief Mini-App experiment framework (paper Sec. V-C, Fig. 5; ref [32]).
///
/// Automates the build-assess-refine loop: declare factors and levels
/// (experimental design, Jain [29]), run the full-factorial sweep with
/// repetitions, collect named metrics per trial, and emit both raw CSV and
/// aggregated summary tables. Every benchmark binary in bench/ is written
/// against this so experiments stay reproducible (fixed per-trial seeds)
/// and comparable.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "pa/common/config.h"
#include "pa/common/stats.h"
#include "pa/common/table.h"

namespace pa::miniapp {

/// Full-factorial experimental design.
class ExperimentDesign {
 public:
  /// Adds a factor with string levels (kept in the given order).
  void add_factor(const std::string& name, std::vector<std::string> levels);
  /// Numeric conveniences.
  void add_factor(const std::string& name, const std::vector<double>& levels);
  void add_factor(const std::string& name,
                  const std::vector<std::int64_t>& levels);

  void set_repetitions(int reps);
  int repetitions() const { return repetitions_; }

  std::size_t factor_count() const { return factors_.size(); }
  const std::vector<std::string>& factor_names() const { return names_; }

  /// All level combinations (cartesian product) in row-major order of the
  /// factors as added; each combination is a Config {factor: level}.
  std::vector<pa::Config> combinations() const;

  /// combinations() x repetitions.
  std::size_t trial_count() const {
    return combinations().size() * static_cast<std::size_t>(repetitions_);
  }

 private:
  std::vector<std::string> names_;
  std::map<std::string, std::vector<std::string>> factors_;
  int repetitions_ = 1;
};

/// One trial's outcome.
struct Observation {
  pa::Config factors;
  int repetition = 0;
  std::uint64_t seed = 0;
  std::map<std::string, double> metrics;
};

/// Collected observations with reporting helpers.
class ResultSet {
 public:
  void add(Observation observation);
  std::size_t size() const { return observations_.size(); }
  const std::vector<Observation>& observations() const { return observations_; }

  /// Names of all metrics seen (sorted).
  std::vector<std::string> metric_names() const;

  /// Raw table: one row per observation (factor columns + metric columns).
  pa::Table to_table(const std::string& title = "") const;

  /// Aggregated: one row per factor combination with mean and stddev of
  /// `metric` over repetitions.
  pa::Table summary_table(const std::string& metric,
                          const std::string& title = "") const;

  /// Mean of `metric` over observations matching `where` (all factors in
  /// `where` equal). Throws pa::NotFound when nothing matches.
  double mean_metric(const std::string& metric, const pa::Config& where) const;

  /// All samples of `metric` matching `where`.
  pa::SampleSet metric_samples(const std::string& metric,
                               const pa::Config& where) const;

 private:
  static bool matches(const Observation& obs, const pa::Config& where);
  std::vector<Observation> observations_;
  std::vector<std::string> factor_names_;  ///< from the first observation
};

/// Drives a trial function over a design.
class ExperimentRunner {
 public:
  /// The trial receives the factor combination and a per-trial seed
  /// (deterministic in combination index + repetition) and returns its
  /// metrics.
  using TrialFn = std::function<std::map<std::string, double>(
      const pa::Config& factors, std::uint64_t seed)>;

  ExperimentRunner(std::string name, TrialFn trial);

  /// Runs all trials sequentially; `base_seed` decorrelates whole sweeps.
  ResultSet run(const ExperimentDesign& design, std::uint64_t base_seed = 1);

  /// If set, called after each trial (progress reporting).
  void set_progress(std::function<void(std::size_t done, std::size_t total)>
                        progress) {
    progress_ = std::move(progress);
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  TrialFn trial_;
  std::function<void(std::size_t, std::size_t)> progress_;
};

}  // namespace pa::miniapp
