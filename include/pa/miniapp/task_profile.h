#pragma once
/// \file task_profile.h
/// \brief Synapse-style synthetic task profiles (paper ref [35]:
/// "Synapse: Synthetic application profiler and emulator").
///
/// A `TaskProfile` describes a task by its resource consumption —
/// compute, read/write I/O, memory — independent of any machine. A
/// `MachineProfile` prices those consumptions. Together they produce
/// either a *predicted duration* (for the simulated runtime) or an
/// *emulating payload* (for the local runtime) that really burns the
/// compute share and touches the memory share, which is how Synapse
/// replays profiled applications on new resources.

#include <cstdint>
#include <functional>
#include <vector>

#include "pa/common/rng.h"
#include "pa/core/types.h"

namespace pa::miniapp {

/// Machine-independent task resource description.
struct TaskProfile {
  double compute_gflop = 1.0;     ///< floating-point work
  double read_bytes = 0.0;        ///< input I/O volume
  double write_bytes = 0.0;       ///< output I/O volume
  double memory_bytes = 0.0;      ///< peak working set (touched by emulator)

  /// Element-wise scaling (e.g. profile of a 2x larger input).
  TaskProfile scaled(double factor) const {
    return {compute_gflop * factor, read_bytes * factor,
            write_bytes * factor, memory_bytes * factor};
  }
};

/// What a core/storage of the target machine delivers.
struct MachineProfile {
  double gflops = 2.0;            ///< per core, sustained
  double read_bandwidth = 5e8;    ///< bytes/s
  double write_bandwidth = 3e8;   ///< bytes/s

  /// Predicted wall time of a profile on one core of this machine
  /// (sequential phases, the Synapse cost model's first-order form).
  double predict_seconds(const TaskProfile& task) const;
};

/// Builds a compute-unit description from a profile:
///  * `duration` is the machine prediction (drives the SimRuntime);
///  * `work` emulates the task on the LocalRuntime — burns the compute
///    share of the predicted time and walks a buffer of `memory_bytes`
///    (I/O phases are emulated as time, since there is no real file).
core::ComputeUnitDescription make_profiled_unit(const TaskProfile& task,
                                                const MachineProfile& machine,
                                                int cores = 1);

/// A batch of profiled units with sizes drawn from a distribution of
/// scale factors (heterogeneous bags with controlled shape).
std::vector<core::ComputeUnitDescription> make_profiled_batch(
    std::size_t count, const TaskProfile& base, const MachineProfile& machine,
    const pa::DurationDistribution& scale_distribution, pa::Rng& rng,
    int cores = 1);

}  // namespace pa::miniapp
