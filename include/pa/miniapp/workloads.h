#pragma once
/// \file workloads.h
/// \brief Synthetic workload generators for the Mini-App framework
/// (paper Sec. II-C1: "simplified, synthetic workloads", refs [33]-[35]).
///
/// One generator per application scenario of Table I:
///  * heterogeneous task batches (task-parallel);
///  * text corpora (data-parallel wordcount);
///  * genome reads + reference (MapReduce k-mer matching, the sequence
///    alignment stand-in);
///  * detector frames + reconstruction kernel (light-source streaming).

#include <cstdint>
#include <string>
#include <vector>

#include "pa/common/rng.h"
#include "pa/core/types.h"

namespace pa::miniapp {

/// Batch of compute-unit descriptions with sampled durations.
/// When `real_work` is true each unit carries a CPU-burning payload of its
/// sampled duration (LocalRuntime); otherwise only the declared duration
/// is set (SimRuntime).
std::vector<core::ComputeUnitDescription> make_task_batch(
    std::size_t count, int cores_per_task,
    const pa::DurationDistribution& duration, pa::Rng& rng, bool real_work);

// --- text (wordcount) ---

/// Zipf-ish corpus: `lines` lines of `words_per_line` words drawn from a
/// `vocabulary`-word dictionary with rank-skewed frequencies, so reducers
/// see realistic key imbalance.
std::vector<std::string> generate_text_corpus(std::size_t lines,
                                              std::size_t words_per_line,
                                              std::size_t vocabulary,
                                              std::uint64_t seed);

/// Splits a line into whitespace-separated words.
std::vector<std::string> split_words(const std::string& line);

// --- genomics (k-mer matching) ---

/// Random DNA string over {A, C, G, T}.
std::string generate_dna(std::size_t length, std::uint64_t seed);

/// `count` reads of `read_length` sampled from `reference` with a
/// per-base error rate (substitutions), as a sequencer would produce.
std::vector<std::string> generate_reads(const std::string& reference,
                                        std::size_t count,
                                        std::size_t read_length,
                                        double error_rate,
                                        std::uint64_t seed);

/// All k-mers of a string (size() - k + 1 of them).
std::vector<std::string> extract_kmers(const std::string& sequence,
                                       std::size_t k);

// --- light-source frames (streaming) ---

/// Synthetic 2D detector frame: Poisson-ish background noise plus a few
/// Gaussian peaks (diffraction spots).
struct DetectorFrame {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::vector<std::uint16_t> pixels;

  std::uint16_t at(std::uint32_t x, std::uint32_t y) const {
    return pixels[y * width + x];
  }
};

DetectorFrame generate_frame(std::uint32_t width, std::uint32_t height,
                             int peaks, pa::Rng& rng);

/// Wire format used as streaming message payloads.
std::string serialize_frame(const DetectorFrame& frame);
DetectorFrame deserialize_frame(const std::string& bytes);

/// Reconstruction kernel: 3x3 box smoothing followed by thresholded peak
/// detection (local maxima above background + 5 sigma). Returns the peak
/// count — the quantity a light-source pipeline extracts per frame.
struct ReconstructionResult {
  int peaks_found = 0;
  double background_mean = 0.0;
  double background_sigma = 0.0;
};
ReconstructionResult reconstruct_frame(const DetectorFrame& frame);

}  // namespace pa::miniapp
