#pragma once
/// \file engine.h
/// \brief Deterministic discrete-event simulation (DES) engine.
///
/// All simulated infrastructure (batch clusters, HTC pools, cloud
/// providers, networks) and the SimRuntime pilot agents are driven by one
/// `sim::Engine`. Events at equal timestamps fire in scheduling order, so a
/// run is a pure function of (model, seed) — the determinism property the
/// experiment framework depends on (DESIGN.md invariants).

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <utility>

#include "pa/common/error.h"

namespace pa::sim {

/// Simulated time in seconds.
using Time = double;

/// Opaque handle to a scheduled event; usable with `Engine::cancel`.
using EventId = std::uint64_t;

constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Single-threaded event queue with a virtual clock.
///
/// Not thread-safe by design: the simulation stack is sequential and
/// deterministic; the concurrent stack lives in `pa::rt::LocalRuntime`.
class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time. Starts at 0.
  Time now() const { return now_; }

  /// Schedules `cb` to run at absolute time `t` (must be >= now()).
  EventId schedule_at(Time t, Callback cb);

  /// Schedules `cb` to run `delay` seconds from now (delay >= 0).
  EventId schedule(Time delay, Callback cb) {
    PA_REQUIRE_ARG(delay >= 0.0, "negative delay: " << delay);
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event. Returns false if it already ran, was
  /// cancelled, or never existed.
  bool cancel(EventId id);

  /// Runs one event; returns false if the queue is empty.
  bool step();

  /// Runs until the queue is empty.
  void run();

  /// Runs all events with time <= t, then sets the clock to exactly t
  /// (even if no event fired). Returns the new now().
  Time run_until(Time t);

  /// Number of events still pending (cancelled events excluded).
  std::size_t pending() const { return queue_.size(); }

  /// Total number of events executed so far.
  std::uint64_t processed() const { return processed_; }

  /// Time of the earliest pending event, or kTimeInfinity when empty.
  Time next_event_time() const;

 private:
  // Key: (time, sequence) gives FIFO order among same-time events.
  using Key = std::pair<Time, std::uint64_t>;

  struct Entry {
    EventId id;
    Callback cb;
  };

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::map<Key, Entry> queue_;
  std::map<EventId, Key> by_id_;
};

/// Repeating timer helper: fires `cb` every `period` seconds until
/// stopped or the engine drains. The callback may call `stop()`.
class PeriodicTimer {
 public:
  PeriodicTimer(Engine& engine, Time period, std::function<void()> cb);
  ~PeriodicTimer();
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }

 private:
  void arm();

  Engine& engine_;
  Time period_;
  std::function<void()> cb_;
  EventId pending_ = 0;
  bool running_ = false;
};

}  // namespace pa::sim
