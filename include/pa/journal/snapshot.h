#pragma once
/// \file snapshot.h
/// \brief Compacted point-in-time images of the manager state.
///
/// A snapshot file reuses the wal's frame format (length | crc | payload)
/// so the torn-tail scanner validates it too: a header record carries the
/// wal sequence number the image covers, followed by one record per pilot
/// and unit. Snapshots are written atomically (tmp file + fsync + rename),
/// so a crash mid-snapshot leaves the previous snapshot intact; a crash
/// after the rename but before the wal truncation merely leaves stale wal
/// records, which recovery skips by sequence number.

#include <string>

#include "pa/journal/replayer.h"

namespace pa::journal {

class Snapshot {
 public:
  /// Atomically replaces `path` with a snapshot of `image`.
  static void write(const std::string& path, const ManagerImage& image);

  /// Loads `path` into `out`. Returns false (leaving `out` untouched) when
  /// the file is missing, torn, or structurally invalid — recovery then
  /// falls back to a full wal replay.
  static bool load(const std::string& path, ManagerImage* out);
};

}  // namespace pa::journal
