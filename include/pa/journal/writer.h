#pragma once
/// \file writer.h
/// \brief Append-only journal writer with group commit.
///
/// `append()` assigns the sequence number and enqueues the record — the
/// hot path never encodes or touches the filesystem. A background flusher
/// thread drains the queue, encodes the pending records, writes them with
/// one `write(2)` and (in group-commit mode) one `fsync(2)`, amortizing
/// both the serialization and the sync cost over the batch exactly as
/// database WALs do. Durability guarantee: the
/// on-disk file is always a byte prefix of the appended stream, possibly
/// ending in a torn frame if the process died mid-write — which the reader
/// detects and the recovery coordinator truncates.

#include <cstdint>
#include <deque>
#include <string>
#include <thread>

#include "pa/check/mutex.h"
#include "pa/journal/record.h"
#include "pa/obs/metrics.h"

namespace pa::journal {

struct WriterConfig {
  /// Durability mode.
  enum class Sync {
    kNone,         ///< never fsync; OS decides (fastest, weakest)
    kGroup,        ///< one fsync per drained batch (group commit; default)
    kEveryRecord,  ///< append() blocks until its record is fsynced
  };
  Sync sync = Sync::kGroup;
  /// Max records the flusher coalesces into one write/fsync.
  std::size_t max_batch_records = 512;
  /// Truncate an existing file on open (false = append to it).
  bool truncate_existing = false;
};

/// Thread-safe append-only writer. All methods may be called from any
/// thread; `close()` (or destruction) flushes and joins the flusher.
class Writer {
 public:
  /// Opens (creating if needed) `path`. `first_seq` seeds the sequence
  /// counter — recovery passes `last replayed seq + 1` so a resumed
  /// journal stays strictly monotonic.
  explicit Writer(std::string path, WriterConfig config = {},
                  std::uint64_t first_seq = 1);
  ~Writer();

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Stamps `record.seq`, enqueues the record and returns the seq.
  /// In kEveryRecord mode, blocks until the record is durable.
  std::uint64_t append(Record record) PA_EXCLUDES(mutex_);

  /// Blocks until every previously appended record is written (and, in
  /// syncing modes, fsynced).
  void flush() PA_EXCLUDES(mutex_);

  /// Flushes, stops the flusher thread and closes the file. Idempotent;
  /// a concurrent second caller may return before the first finishes
  /// joining the flusher (same contract as ThreadPool::shutdown).
  void close() PA_EXCLUDES(mutex_);

  /// Empties the log file (after a snapshot made its contents redundant).
  /// Pending records are flushed first; the seq counter keeps advancing.
  void truncate_log() PA_EXCLUDES(mutex_);

  std::uint64_t next_seq() const PA_EXCLUDES(mutex_);
  const std::string& path() const { return path_; }

  /// Exports "journal.records", "journal.flushes", "journal.flushed_bytes"
  /// counters and "journal.flush_seconds" / "journal.batch_records"
  /// histograms. Pass nullptr to detach; registry must outlive attachment.
  /// Instrument handles are resolved once here (registry handles are
  /// stable for its lifetime), so the append/flush hot paths never take
  /// the registry lock.
  void set_metrics(obs::MetricsRegistry* metrics) PA_EXCLUDES(mutex_);

 private:
  /// Pre-resolved instrument handles (null when detached).
  struct MetricsHandles {
    obs::Counter* records = nullptr;
    obs::Counter* flushes = nullptr;
    obs::Counter* flushed_bytes = nullptr;
    obs::Histogram* flush_seconds = nullptr;
    obs::Histogram* batch_records = nullptr;
  };

  void flusher_loop() PA_EXCLUDES(mutex_);
  /// Pops and encodes up to max_batch_records pending frames into one
  /// contiguous byte batch. Outputs the highest seq popped and the record
  /// count.
  std::string encode_batch(std::uint64_t& last_seq,
                           std::size_t& batch_records) PA_REQUIRES(mutex_);
  /// Writes (and, per config, fsyncs) one encoded batch. Runs with the
  /// lock dropped — `fd` is passed by value and the handles are stable.
  void write_batch(int fd, const std::string& batch,
                   std::size_t batch_records, MetricsHandles handles);

  const std::string path_;
  const WriterConfig config_;

  mutable check::Mutex mutex_{check::LockRank::kJournalWriter,
                              "journal::Writer"};
  check::CondVar work_cv_;     ///< flusher wakeups
  check::CondVar durable_cv_;  ///< flush()/append() waiters
  int fd_ PA_GUARDED_BY(mutex_) = -1;
  std::deque<Record> pending_ PA_GUARDED_BY(mutex_);  ///< seq-stamped
  std::uint64_t next_seq_ PA_GUARDED_BY(mutex_) = 1;
  /// Highest seq written (+synced); starts at first_seq - 1.
  std::uint64_t durable_seq_ PA_GUARDED_BY(mutex_) = 0;
  bool draining_ PA_GUARDED_BY(mutex_) = false;  ///< flusher mid write/fsync
  bool closing_ PA_GUARDED_BY(mutex_) = false;
  bool closed_ PA_GUARDED_BY(mutex_) = false;
  MetricsHandles metrics_ PA_GUARDED_BY(mutex_);

  std::thread flusher_;
};

}  // namespace pa::journal
