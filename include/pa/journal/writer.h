#pragma once
/// \file writer.h
/// \brief Append-only journal writer with group commit.
///
/// `append()` assigns the sequence number and enqueues the record — the
/// hot path never encodes or touches the filesystem. A background flusher
/// thread drains the queue, encodes the pending records, writes them with
/// one `write(2)` and (in group-commit mode) one `fsync(2)`, amortizing
/// both the serialization and the sync cost over the batch exactly as
/// database WALs do. Durability guarantee: the
/// on-disk file is always a byte prefix of the appended stream, possibly
/// ending in a torn frame if the process died mid-write — which the reader
/// detects and the recovery coordinator truncates.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "pa/journal/record.h"
#include "pa/obs/metrics.h"

namespace pa::journal {

struct WriterConfig {
  /// Durability mode.
  enum class Sync {
    kNone,         ///< never fsync; OS decides (fastest, weakest)
    kGroup,        ///< one fsync per drained batch (group commit; default)
    kEveryRecord,  ///< append() blocks until its record is fsynced
  };
  Sync sync = Sync::kGroup;
  /// Max records the flusher coalesces into one write/fsync.
  std::size_t max_batch_records = 512;
  /// Truncate an existing file on open (false = append to it).
  bool truncate_existing = false;
};

/// Thread-safe append-only writer. All methods may be called from any
/// thread; `close()` (or destruction) flushes and joins the flusher.
class Writer {
 public:
  /// Opens (creating if needed) `path`. `first_seq` seeds the sequence
  /// counter — recovery passes `last replayed seq + 1` so a resumed
  /// journal stays strictly monotonic.
  explicit Writer(std::string path, WriterConfig config = {},
                  std::uint64_t first_seq = 1);
  ~Writer();

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Stamps `record.seq`, enqueues the record and returns the seq.
  /// In kEveryRecord mode, blocks until the record is durable.
  std::uint64_t append(Record record);

  /// Blocks until every previously appended record is written (and, in
  /// syncing modes, fsynced).
  void flush();

  /// Flushes, stops the flusher thread and closes the file. Idempotent.
  void close();

  /// Empties the log file (after a snapshot made its contents redundant).
  /// Pending records are flushed first; the seq counter keeps advancing.
  void truncate_log();

  std::uint64_t next_seq() const;
  const std::string& path() const { return path_; }

  /// Exports "journal.records", "journal.flushes", "journal.flushed_bytes"
  /// counters and "journal.flush_seconds" / "journal.batch_records"
  /// histograms. Pass nullptr to detach; registry must outlive attachment.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  void flusher_loop();
  /// Drains up to max_batch_records pending frames; returns highest seq
  /// written, 0 if nothing was pending. Called with `mutex_` held; drops
  /// the lock around file I/O.
  std::uint64_t drain_locked(std::unique_lock<std::mutex>& lock);

  const std::string path_;
  const WriterConfig config_;
  int fd_ = -1;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;     ///< flusher wakeups
  std::condition_variable durable_cv_;  ///< flush()/append() waiters
  std::deque<Record> pending_;  ///< seq-stamped; encoded by the flusher
  std::uint64_t next_seq_ = 1;
  std::uint64_t durable_seq_ = 0;  ///< highest seq written (+synced);
                                   ///< starts at first_seq - 1
  bool draining_ = false;          ///< flusher is mid write/fsync
  bool closing_ = false;
  bool closed_ = false;

  obs::MetricsRegistry* metrics_ = nullptr;
  std::thread flusher_;
};

}  // namespace pa::journal
